// sfg_ioconv — convert between the legacy one-file-per-rank layout and the
// sfg_io single-container format (ISSUE 8), meshconv-style. Both
// directions preserve every byte and verify CRCs; see docs/io.md.
//
//   sfg_ioconv pack   <dir> <container>   # files -> one container
//   sfg_ioconv unpack <container> <dir>   # container -> files
//   sfg_ioconv verify <container>         # CRC-check every chunk (mmap)
//   sfg_ioconv list   <container>         # chunk table

#include <cstdio>
#include <cstring>
#include <exception>

#include "io/container.hpp"
#include "io/ioconv.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: sfg_ioconv pack <dir> <container>\n"
               "       sfg_ioconv unpack <container> <dir>\n"
               "       sfg_ioconv verify <container>\n"
               "       sfg_ioconv list <container>\n");
  return 2;
}

int run(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* cmd = argv[1];
  using namespace sfg::io;

  if (std::strcmp(cmd, "pack") == 0 && argc == 4) {
    const ConvStats s = pack_directory(argv[2], argv[3]);
    std::printf("packed %d files (%llu bytes) from %s into %s (verified)\n",
                s.files, static_cast<unsigned long long>(s.bytes), argv[2],
                argv[3]);
    return 0;
  }
  if (std::strcmp(cmd, "unpack") == 0 && argc == 4) {
    const ConvStats s = unpack_container(argv[2], argv[3]);
    std::printf(
        "unpacked %d chunks (%llu bytes) from %s into %s (verified)\n",
        s.files, static_cast<unsigned long long>(s.bytes), argv[2],
        argv[3]);
    return 0;
  }
  if (std::strcmp(cmd, "verify") == 0 && argc == 3) {
    const ConvStats s = verify_container(argv[2]);
    std::printf("%s: %d chunks, %llu payload bytes, all CRCs OK\n",
                argv[2], s.files, static_cast<unsigned long long>(s.bytes));
    return 0;
  }
  if (std::strcmp(cmd, "list") == 0 && argc == 3) {
    const Container c = Container::open_ro(argv[2]);
    std::printf("%-40s %12s %10s  %s\n", "name", "bytes", "offset", "crc32");
    for (const ChunkInfo& info : c.chunks())
      std::printf("%-40s %12llu %10llu  %08x\n", info.name.c_str(),
                  static_cast<unsigned long long>(info.bytes),
                  static_cast<unsigned long long>(info.offset), info.crc);
    std::printf("%zu chunks, %llu file bytes (%llu dead)\n",
                c.chunks().size(),
                static_cast<unsigned long long>(c.file_bytes()),
                static_cast<unsigned long long>(c.dead_bytes()));
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sfg_ioconv: %s\n", e.what());
    return 1;
  }
}

// sfg_loadgen — deterministic load-test driver for the sharded front-end
// (ISSUE 9). The workload (Poisson arrivals over a zipfian earthquake
// catalogue) is a pure function of --seed: the same flags print or drive
// the identical request stream on any machine.
//
// Two modes:
//
//   --emit   print the workload as protocol lines (one JSON request per
//            line) for piping into sfg_frontd;
//   default  drive an in-process front-end with the workload and print a
//            one-object JSON report (the BENCH_loadtest.json shape).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "service/loadgen.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: sfg_loadgen [--seed N] [--requests N] [--rate R] [--events N]"
      " [--zipf S] [--shards N] [--workers N] [--lru N] [--scale S]"
      " [--work-dir PATH] [--emit]\n");
}

}  // namespace

int main(int argc, char** argv) {
  sfg::service::LoadgenConfig load;
  load.base = sfg::service::loadgen_base_request();
  sfg::service::FrontendConfig front;
  front.work_dir = "loadgen_work";
  double time_scale = 0.0;  // default: submit back-to-back
  bool emit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed")
      load.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--requests") load.num_requests = std::atoi(next());
    else if (arg == "--rate") load.arrivals_per_second = std::atof(next());
    else if (arg == "--events") load.num_events = std::atoi(next());
    else if (arg == "--zipf") load.zipf_s = std::atof(next());
    else if (arg == "--shards") front.num_shards = std::atoi(next());
    else if (arg == "--workers") front.workers_per_shard = std::atoi(next());
    else if (arg == "--lru")
      front.lru_entries_per_shard =
          static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--scale") time_scale = std::atof(next());
    else if (arg == "--work-dir") front.work_dir = next();
    else if (arg == "--emit") emit = true;
    else {
      usage();
      return 2;
    }
  }

  const std::vector<sfg::service::TimedRequest> workload =
      sfg::service::generate_workload(load);
  if (emit) {
    for (const sfg::service::TimedRequest& t : workload)
      std::cout << sfg::service::request_to_json(t.request) << "\n";
    return 0;
  }

  sfg::service::ShardedFrontend frontend(front);
  const sfg::service::LoadTestReport r =
      sfg::service::run_workload(frontend, workload, time_scale);
  frontend.shutdown();
  std::cout << "{\"seed\": " << load.seed
            << ", \"requests\": " << load.num_requests
            << ", \"events\": " << load.num_events
            << ", \"shards\": " << front.num_shards
            << ", \"submitted\": " << r.submitted
            << ", \"completed\": " << r.completed
            << ", \"failed\": " << r.failed
            << ", \"rejected\": " << r.rejected
            << ", \"executed\": " << r.executed
            << ", \"distinct_keys\": " << r.distinct_keys
            << ", \"cache_hits\": " << r.cache_hits
            << ", \"memory_hits\": " << r.memory_hits
            << ", \"store_hits\": " << r.store_hits
            << ", \"coalesced_hits\": " << r.coalesced_hits
            << ", \"stolen\": " << r.stolen
            << ", \"spilled\": " << r.spilled
            << ", \"cache_hit_rate\": " << r.cache_hit_rate
            << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
            << ", \"jobs_per_minute\": " << r.jobs_per_minute
            << ", \"wall_seconds\": " << r.wall_seconds << "}\n";
  return r.failed == 0 ? 0 : 1;
}

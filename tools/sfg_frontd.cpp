// sfg_frontd — the sharded campaign front-end as a line server (ISSUE 9).
//
// Reads one JSON object per line on stdin, writes one JSON response per
// line on stdout (docs/service.md documents the protocol). A request line
// routes to one of --shards in-process service shards by consistent
// hashing on the request's content key; control lines:
//
//   {"cmd": "stats"}          aggregate counters so far
//   {"cmd": "job", "id": N}   one job's state
//   {"cmd": "wait"}           block until every submitted job is terminal
//
// On EOF the tool waits for outstanding jobs and (with --report) prints
// the full JSON report. Compose with sfg_loadgen --emit:
//
//   sfg_loadgen --emit --seed 7 --requests 100 | sfg_frontd --shards 4

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "service/frontend.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: sfg_frontd [--shards N] [--workers N] [--capacity N]"
               " [--lru N] [--work-dir PATH] [--report]\n");
}

}  // namespace

int main(int argc, char** argv) {
  sfg::service::FrontendConfig config;
  config.work_dir = "frontd_work";
  bool report = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--shards") config.num_shards = std::atoi(next());
    else if (arg == "--workers") config.workers_per_shard = std::atoi(next());
    else if (arg == "--capacity")
      config.shard_queue_capacity =
          static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--lru")
      config.lru_entries_per_shard =
          static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--work-dir") config.work_dir = next();
    else if (arg == "--report") report = true;
    else {
      usage();
      return 2;
    }
  }
  if (config.num_shards < 1 || config.workers_per_shard < 1 ||
      config.shard_queue_capacity < 1) {
    usage();
    return 2;
  }

  sfg::service::ShardedFrontend frontend(config);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::cout << frontend.handle_line(line) << "\n" << std::flush;
  }
  frontend.wait_all();
  frontend.shutdown();
  if (report) frontend.write_json_report(std::cout);

  const sfg::service::FrontendStats s = frontend.stats();
  std::fprintf(stderr,
               "sfg_frontd: %llu submitted, %llu completed, %llu failed, "
               "%llu rejected, cache hit rate %.3f\n",
               static_cast<unsigned long long>(s.submitted),
               static_cast<unsigned long long>(s.completed),
               static_cast<unsigned long long>(s.failed),
               static_cast<unsigned long long>(s.rejected),
               s.cache_hit_rate());
  return s.failed == 0 ? 0 : 1;
}

# Empty dependencies file for sfg_runtime.
# This may be replaced when dependencies are built.

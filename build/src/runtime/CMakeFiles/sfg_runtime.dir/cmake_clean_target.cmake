file(REMOVE_RECURSE
  "libsfg_runtime.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sfg_runtime.dir/exchanger.cpp.o"
  "CMakeFiles/sfg_runtime.dir/exchanger.cpp.o.d"
  "CMakeFiles/sfg_runtime.dir/smpi.cpp.o"
  "CMakeFiles/sfg_runtime.dir/smpi.cpp.o.d"
  "libsfg_runtime.a"
  "libsfg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sfg_mesh.dir/cartesian.cpp.o"
  "CMakeFiles/sfg_mesh.dir/cartesian.cpp.o.d"
  "CMakeFiles/sfg_mesh.dir/faces.cpp.o"
  "CMakeFiles/sfg_mesh.dir/faces.cpp.o.d"
  "CMakeFiles/sfg_mesh.dir/jacobian.cpp.o"
  "CMakeFiles/sfg_mesh.dir/jacobian.cpp.o.d"
  "CMakeFiles/sfg_mesh.dir/numbering.cpp.o"
  "CMakeFiles/sfg_mesh.dir/numbering.cpp.o.d"
  "CMakeFiles/sfg_mesh.dir/point_matcher.cpp.o"
  "CMakeFiles/sfg_mesh.dir/point_matcher.cpp.o.d"
  "CMakeFiles/sfg_mesh.dir/quality.cpp.o"
  "CMakeFiles/sfg_mesh.dir/quality.cpp.o.d"
  "CMakeFiles/sfg_mesh.dir/rcm.cpp.o"
  "CMakeFiles/sfg_mesh.dir/rcm.cpp.o.d"
  "libsfg_mesh.a"
  "libsfg_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/cartesian.cpp" "src/mesh/CMakeFiles/sfg_mesh.dir/cartesian.cpp.o" "gcc" "src/mesh/CMakeFiles/sfg_mesh.dir/cartesian.cpp.o.d"
  "/root/repo/src/mesh/faces.cpp" "src/mesh/CMakeFiles/sfg_mesh.dir/faces.cpp.o" "gcc" "src/mesh/CMakeFiles/sfg_mesh.dir/faces.cpp.o.d"
  "/root/repo/src/mesh/jacobian.cpp" "src/mesh/CMakeFiles/sfg_mesh.dir/jacobian.cpp.o" "gcc" "src/mesh/CMakeFiles/sfg_mesh.dir/jacobian.cpp.o.d"
  "/root/repo/src/mesh/numbering.cpp" "src/mesh/CMakeFiles/sfg_mesh.dir/numbering.cpp.o" "gcc" "src/mesh/CMakeFiles/sfg_mesh.dir/numbering.cpp.o.d"
  "/root/repo/src/mesh/point_matcher.cpp" "src/mesh/CMakeFiles/sfg_mesh.dir/point_matcher.cpp.o" "gcc" "src/mesh/CMakeFiles/sfg_mesh.dir/point_matcher.cpp.o.d"
  "/root/repo/src/mesh/quality.cpp" "src/mesh/CMakeFiles/sfg_mesh.dir/quality.cpp.o" "gcc" "src/mesh/CMakeFiles/sfg_mesh.dir/quality.cpp.o.d"
  "/root/repo/src/mesh/rcm.cpp" "src/mesh/CMakeFiles/sfg_mesh.dir/rcm.cpp.o" "gcc" "src/mesh/CMakeFiles/sfg_mesh.dir/rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sfg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quadrature/CMakeFiles/sfg_quadrature.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

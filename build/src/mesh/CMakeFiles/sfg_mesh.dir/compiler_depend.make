# Empty compiler generated dependencies file for sfg_mesh.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsfg_mesh.a"
)

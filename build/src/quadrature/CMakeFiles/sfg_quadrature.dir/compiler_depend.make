# Empty compiler generated dependencies file for sfg_quadrature.
# This may be replaced when dependencies are built.

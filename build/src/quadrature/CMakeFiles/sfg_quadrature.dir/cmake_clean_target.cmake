file(REMOVE_RECURSE
  "libsfg_quadrature.a"
)

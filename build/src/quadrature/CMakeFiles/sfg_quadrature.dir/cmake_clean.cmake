file(REMOVE_RECURSE
  "CMakeFiles/sfg_quadrature.dir/gll.cpp.o"
  "CMakeFiles/sfg_quadrature.dir/gll.cpp.o.d"
  "libsfg_quadrature.a"
  "libsfg_quadrature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_quadrature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsfg_kernels.a"
)

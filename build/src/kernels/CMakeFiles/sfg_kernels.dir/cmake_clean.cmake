file(REMOVE_RECURSE
  "CMakeFiles/sfg_kernels.dir/elastic_blas.cpp.o"
  "CMakeFiles/sfg_kernels.dir/elastic_blas.cpp.o.d"
  "CMakeFiles/sfg_kernels.dir/elastic_sse.cpp.o"
  "CMakeFiles/sfg_kernels.dir/elastic_sse.cpp.o.d"
  "CMakeFiles/sfg_kernels.dir/force_kernel.cpp.o"
  "CMakeFiles/sfg_kernels.dir/force_kernel.cpp.o.d"
  "libsfg_kernels.a"
  "libsfg_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sfg_kernels.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sfg_perf.dir/capacity.cpp.o"
  "CMakeFiles/sfg_perf.dir/capacity.cpp.o.d"
  "CMakeFiles/sfg_perf.dir/machines.cpp.o"
  "CMakeFiles/sfg_perf.dir/machines.cpp.o.d"
  "CMakeFiles/sfg_perf.dir/regression.cpp.o"
  "CMakeFiles/sfg_perf.dir/regression.cpp.o.d"
  "CMakeFiles/sfg_perf.dir/replay.cpp.o"
  "CMakeFiles/sfg_perf.dir/replay.cpp.o.d"
  "libsfg_perf.a"
  "libsfg_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sfg_perf.
# This may be replaced when dependencies are built.

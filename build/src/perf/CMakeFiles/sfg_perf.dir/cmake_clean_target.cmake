file(REMOVE_RECURSE
  "libsfg_perf.a"
)

file(REMOVE_RECURSE
  "libsfg_model.a"
)

# Empty dependencies file for sfg_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sfg_model.dir/attenuation.cpp.o"
  "CMakeFiles/sfg_model.dir/attenuation.cpp.o.d"
  "CMakeFiles/sfg_model.dir/earth_model.cpp.o"
  "CMakeFiles/sfg_model.dir/earth_model.cpp.o.d"
  "libsfg_model.a"
  "libsfg_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

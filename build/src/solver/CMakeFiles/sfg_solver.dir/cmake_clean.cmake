file(REMOVE_RECURSE
  "CMakeFiles/sfg_solver.dir/materials.cpp.o"
  "CMakeFiles/sfg_solver.dir/materials.cpp.o.d"
  "CMakeFiles/sfg_solver.dir/simulation.cpp.o"
  "CMakeFiles/sfg_solver.dir/simulation.cpp.o.d"
  "CMakeFiles/sfg_solver.dir/sources.cpp.o"
  "CMakeFiles/sfg_solver.dir/sources.cpp.o.d"
  "libsfg_solver.a"
  "libsfg_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

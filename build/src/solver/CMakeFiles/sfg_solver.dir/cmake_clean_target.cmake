file(REMOVE_RECURSE
  "libsfg_solver.a"
)

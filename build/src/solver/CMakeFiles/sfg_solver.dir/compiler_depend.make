# Empty compiler generated dependencies file for sfg_solver.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sfg_io.dir/mesh_files.cpp.o"
  "CMakeFiles/sfg_io.dir/mesh_files.cpp.o.d"
  "CMakeFiles/sfg_io.dir/seismogram_io.cpp.o"
  "CMakeFiles/sfg_io.dir/seismogram_io.cpp.o.d"
  "libsfg_io.a"
  "libsfg_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

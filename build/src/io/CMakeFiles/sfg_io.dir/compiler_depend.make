# Empty compiler generated dependencies file for sfg_io.
# This may be replaced when dependencies are built.

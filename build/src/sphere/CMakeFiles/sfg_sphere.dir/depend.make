# Empty dependencies file for sfg_sphere.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsfg_sphere.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sfg_sphere.dir/cubed_sphere.cpp.o"
  "CMakeFiles/sfg_sphere.dir/cubed_sphere.cpp.o.d"
  "CMakeFiles/sfg_sphere.dir/layers.cpp.o"
  "CMakeFiles/sfg_sphere.dir/layers.cpp.o.d"
  "CMakeFiles/sfg_sphere.dir/mesher.cpp.o"
  "CMakeFiles/sfg_sphere.dir/mesher.cpp.o.d"
  "libsfg_sphere.a"
  "libsfg_sphere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_sphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsfg_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sfg_common.dir/log.cpp.o"
  "CMakeFiles/sfg_common.dir/log.cpp.o.d"
  "CMakeFiles/sfg_common.dir/table.cpp.o"
  "CMakeFiles/sfg_common.dir/table.cpp.o.d"
  "libsfg_common.a"
  "libsfg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

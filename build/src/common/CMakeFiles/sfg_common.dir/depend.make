# Empty dependencies file for sfg_common.
# This may be replaced when dependencies are built.

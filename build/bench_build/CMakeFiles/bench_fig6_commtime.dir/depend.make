# Empty dependencies file for bench_fig6_commtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig6_commtime"
  "../bench/bench_fig6_commtime.pdb"
  "CMakeFiles/bench_fig6_commtime.dir/bench_fig6_commtime.cpp.o"
  "CMakeFiles/bench_fig6_commtime.dir/bench_fig6_commtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_commtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_sse_kernels"
  "../bench/bench_sse_kernels.pdb"
  "CMakeFiles/bench_sse_kernels.dir/bench_sse_kernels.cpp.o"
  "CMakeFiles/bench_sse_kernels.dir/bench_sse_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sse_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_cuthill_mckee"
  "../bench/bench_cuthill_mckee.pdb"
  "CMakeFiles/bench_cuthill_mckee.dir/bench_cuthill_mckee.cpp.o"
  "CMakeFiles/bench_cuthill_mckee.dir/bench_cuthill_mckee.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cuthill_mckee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

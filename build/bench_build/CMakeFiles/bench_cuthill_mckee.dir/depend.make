# Empty dependencies file for bench_cuthill_mckee.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_attenuation"
  "../bench/bench_attenuation.pdb"
  "CMakeFiles/bench_attenuation.dir/bench_attenuation.cpp.o"
  "CMakeFiles/bench_attenuation.dir/bench_attenuation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attenuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_io_merged.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_io_merged"
  "../bench/bench_io_merged.pdb"
  "CMakeFiles/bench_io_merged.dir/bench_io_merged.cpp.o"
  "CMakeFiles/bench_io_merged.dir/bench_io_merged.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_merged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig5_diskspace"
  "../bench/bench_fig5_diskspace.pdb"
  "CMakeFiles/bench_fig5_diskspace.dir/bench_fig5_diskspace.cpp.o"
  "CMakeFiles/bench_fig5_diskspace.dir/bench_fig5_diskspace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_diskspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_diskspace.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table_systems.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table_systems"
  "../bench/bench_table_systems.pdb"
  "CMakeFiles/bench_table_systems.dir/bench_table_systems.cpp.o"
  "CMakeFiles/bench_table_systems.dir/bench_table_systems.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

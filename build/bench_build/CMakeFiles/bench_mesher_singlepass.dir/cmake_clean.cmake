file(REMOVE_RECURSE
  "../bench/bench_mesher_singlepass"
  "../bench/bench_mesher_singlepass.pdb"
  "CMakeFiles/bench_mesher_singlepass.dir/bench_mesher_singlepass.cpp.o"
  "CMakeFiles/bench_mesher_singlepass.dir/bench_mesher_singlepass.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesher_singlepass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_mesher_singlepass.
# This may be replaced when dependencies are built.

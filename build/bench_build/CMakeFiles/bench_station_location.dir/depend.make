# Empty dependencies file for bench_station_location.
# This may be replaced when dependencies are built.

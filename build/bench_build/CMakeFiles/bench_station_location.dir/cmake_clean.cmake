file(REMOVE_RECURSE
  "../bench/bench_station_location"
  "../bench/bench_station_location.pdb"
  "CMakeFiles/bench_station_location.dir/bench_station_location.cpp.o"
  "CMakeFiles/bench_station_location.dir/bench_station_location.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_station_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

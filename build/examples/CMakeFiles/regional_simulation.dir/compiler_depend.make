# Empty compiler generated dependencies file for regional_simulation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/regional_simulation.dir/regional_simulation.cpp.o"
  "CMakeFiles/regional_simulation.dir/regional_simulation.cpp.o.d"
  "regional_simulation"
  "regional_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for global_earthquake.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/global_earthquake.dir/global_earthquake.cpp.o"
  "CMakeFiles/global_earthquake.dir/global_earthquake.cpp.o.d"
  "global_earthquake"
  "global_earthquake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_earthquake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

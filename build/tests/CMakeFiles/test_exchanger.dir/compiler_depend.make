# Empty compiler generated dependencies file for test_exchanger.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sphere.dir/test_sphere.cpp.o"
  "CMakeFiles/test_sphere.dir/test_sphere.cpp.o.d"
  "test_sphere"
  "test_sphere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_sphere.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_faces.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_faces.dir/test_faces.cpp.o"
  "CMakeFiles/test_faces.dir/test_faces.cpp.o.d"
  "test_faces"
  "test_faces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

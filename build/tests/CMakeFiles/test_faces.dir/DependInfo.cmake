
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_faces.cpp" "tests/CMakeFiles/test_faces.dir/test_faces.cpp.o" "gcc" "tests/CMakeFiles/test_faces.dir/test_faces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mesh/CMakeFiles/sfg_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/sphere/CMakeFiles/sfg_sphere.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sfg_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sfg_model.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/sfg_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/quadrature/CMakeFiles/sfg_quadrature.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sfg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sfg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_globe_simulation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_globe_simulation.dir/test_globe_simulation.cpp.o"
  "CMakeFiles/test_globe_simulation.dir/test_globe_simulation.cpp.o.d"
  "test_globe_simulation"
  "test_globe_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_globe_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#pragma once

/// \file rcm.hpp
/// Element reordering for cache locality (paper §4.2): classical reverse
/// Cuthill-McKee on the element connectivity graph, plus the paper's
/// multilevel variant that forms groups of ~50-100 elements sized to fit
/// in L2 together.

#include <vector>

#include "mesh/hex_mesh.hpp"

namespace sfg {

/// Element adjacency: elements are neighbours when they share at least one
/// global point (faces, edges or corners). Requires numbering.
std::vector<std::vector<int>> element_adjacency(const HexMesh& mesh);

/// Classical reverse Cuthill-McKee ordering of an undirected graph given
/// as adjacency lists. Returns a permutation `order` such that order[newid]
/// = oldid. Handles disconnected graphs.
std::vector<int> reverse_cuthill_mckee(
    const std::vector<std::vector<int>>& adjacency);

/// The paper's multilevel variant: run RCM on the element graph, cut the
/// ordering into consecutive blocks of `block_size` elements (50-100 fits
/// L2), then order the blocks themselves by RCM on the block quotient
/// graph. Returns order[newid] = oldid.
std::vector<int> multilevel_cuthill_mckee(
    const std::vector<std::vector<int>>& adjacency, int block_size);

/// Graph bandwidth of a permutation: max |pos(u) - pos(v)| over edges.
/// RCM is expected to reduce this versus natural/random order.
int ordering_bandwidth(const std::vector<std::vector<int>>& adjacency,
                       const std::vector<int>& order);

/// Permute the elements of a mesh: element `order[newid]` becomes element
/// `newid`. All per-element arrays (coordinates, ibool, Jacobian tables if
/// present) are permuted consistently; global numbering is untouched.
void apply_element_permutation(HexMesh& mesh, const std::vector<int>& order);

}  // namespace sfg

#include "mesh/cartesian.hpp"

#include "mesh/jacobian.hpp"
#include "mesh/numbering.hpp"

namespace sfg {

HexMesh build_cartesian_box(const CartesianBoxSpec& spec,
                            const GllBasis& basis) {
  SFG_CHECK(spec.nx >= 1 && spec.ny >= 1 && spec.nz >= 1);
  SFG_CHECK(spec.lx > 0 && spec.ly > 0 && spec.lz > 0);
  HexMesh mesh;
  const int ngll = basis.num_points();
  mesh.allocate_points(ngll, spec.nx * spec.ny * spec.nz);

  const double hx = spec.lx / spec.nx;
  const double hy = spec.ly / spec.ny;
  const double hz = spec.lz / spec.nz;

  int e = 0;
  for (int ez = 0; ez < spec.nz; ++ez) {
    for (int ey = 0; ey < spec.ny; ++ey) {
      for (int ex = 0; ex < spec.nx; ++ex, ++e) {
        const std::size_t off = mesh.local_offset(e);
        for (int k = 0; k < ngll; ++k) {
          const double z =
              spec.z0 + hz * (ez + 0.5 * (basis.node(k) + 1.0));
          for (int j = 0; j < ngll; ++j) {
            const double y =
                spec.y0 + hy * (ey + 0.5 * (basis.node(j) + 1.0));
            for (int i = 0; i < ngll; ++i) {
              double x =
                  spec.x0 + hx * (ex + 0.5 * (basis.node(i) + 1.0));
              double yy = y, zz = z;
              if (spec.deform) spec.deform(x, yy, zz);
              const std::size_t p =
                  off + static_cast<std::size_t>(local_index(ngll, i, j, k));
              mesh.xstore[p] = x;
              mesh.ystore[p] = yy;
              mesh.zstore[p] = zz;
            }
          }
        }
      }
    }
  }

  build_global_numbering(mesh);
  compute_jacobian_tables(mesh, basis);
  return mesh;
}

CartesianSlice build_cartesian_slice(const CartesianBoxSpec& spec,
                                     const GllBasis& basis, int px, int py,
                                     int pz, int rx, int ry, int rz) {
  SFG_CHECK(px >= 1 && py >= 1 && pz >= 1);
  SFG_CHECK(rx >= 0 && rx < px && ry >= 0 && ry < py && rz >= 0 && rz < pz);
  SFG_CHECK_MSG(spec.nx % px == 0 && spec.ny % py == 0 && spec.nz % pz == 0,
                "elements must divide evenly across the process grid");

  const int lx = spec.nx / px, ly = spec.ny / py, lz = spec.nz / pz;
  const int ex0 = rx * lx, ey0 = ry * ly, ez0 = rz * lz;

  CartesianBoxSpec local = spec;
  local.nx = lx;
  local.ny = ly;
  local.nz = lz;
  local.lx = spec.lx * lx / spec.nx;
  local.ly = spec.ly * ly / spec.ny;
  local.lz = spec.lz * lz / spec.nz;
  local.x0 = spec.x0 + spec.lx / spec.nx * ex0;
  local.y0 = spec.y0 + spec.ly / spec.ny * ey0;
  local.z0 = spec.z0 + spec.lz / spec.nz * ez0;

  CartesianSlice slice;
  slice.mesh = build_cartesian_box(local, basis);

  // Global GLL lattice coordinates and boundary detection. gi spans
  // [0, nx*(ngll-1)] over the whole box; a point is an inter-slice
  // boundary candidate when it lies on an internal slice face.
  const HexMesh& mesh = slice.mesh;
  const int ngll = mesh.ngll;
  const int deg = ngll - 1;
  const std::int64_t span_y =
      static_cast<std::int64_t>(spec.ny) * deg + 1;
  const std::int64_t span_z =
      static_cast<std::int64_t>(spec.nz) * deg + 1;

  std::vector<bool> seen(static_cast<std::size_t>(mesh.nglob), false);
  int e = 0;
  for (int ez = 0; ez < lz; ++ez) {
    for (int ey = 0; ey < ly; ++ey) {
      for (int ex = 0; ex < lx; ++ex, ++e) {
        const std::size_t off = mesh.local_offset(e);
        for (int k = 0; k < ngll; ++k) {
          for (int j = 0; j < ngll; ++j) {
            for (int i = 0; i < ngll; ++i) {
              const int glob = mesh.ibool[off + static_cast<std::size_t>(
                                                    local_index(ngll, i, j, k))];
              if (seen[static_cast<std::size_t>(glob)]) continue;
              const std::int64_t gi = static_cast<std::int64_t>(ex0 + ex) * deg + i;
              const std::int64_t gj = static_cast<std::int64_t>(ey0 + ey) * deg + j;
              const std::int64_t gk = static_cast<std::int64_t>(ez0 + ez) * deg + k;
              const bool on_boundary =
                  (gi == static_cast<std::int64_t>(ex0) * deg && ex0 > 0) ||
                  (gi == static_cast<std::int64_t>(ex0 + lx) * deg &&
                   ex0 + lx < spec.nx) ||
                  (gj == static_cast<std::int64_t>(ey0) * deg && ey0 > 0) ||
                  (gj == static_cast<std::int64_t>(ey0 + ly) * deg &&
                   ey0 + ly < spec.ny) ||
                  (gk == static_cast<std::int64_t>(ez0) * deg && ez0 > 0) ||
                  (gk == static_cast<std::int64_t>(ez0 + lz) * deg &&
                   ez0 + lz < spec.nz);
              seen[static_cast<std::size_t>(glob)] = true;
              if (!on_boundary) continue;
              slice.boundary_keys.push_back((gi * span_y + gj) * span_z + gk);
              slice.boundary_points.push_back(glob);
            }
          }
        }
      }
    }
  }
  return slice;
}

}  // namespace sfg

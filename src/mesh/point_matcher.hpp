#pragma once

/// \file point_matcher.hpp
/// Tolerance-based 3-D point deduplication via a uniform hash grid.
///
/// The SEM global mesh identifies GLL points shared between neighbouring
/// elements (paper §2.4, Figure 3). Different elements — and, on the cubed
/// sphere, different chunks — compute the *same* physical point through
/// different analytic charts, so coordinates agree only to roundoff. The
/// matcher buckets points into cells of size `tolerance` and searches the
/// 27 surrounding cells, so two points within `tolerance` of each other
/// always receive the same id regardless of rounding-boundary placement.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sfg {

class PointMatcher {
 public:
  /// `tolerance` must be well below the smallest true point separation and
  /// well above coordinate roundoff (builders use ~1e-5 of the minimum GLL
  /// spacing).
  explicit PointMatcher(double tolerance);

  /// Return the id of the point at (x, y, z), creating a new id if no
  /// existing point lies within the tolerance.
  int add(double x, double y, double z);

  /// Number of distinct points seen so far.
  int size() const { return static_cast<int>(px_.size()); }

  double x(int id) const { return px_[static_cast<std::size_t>(id)]; }
  double y(int id) const { return py_[static_cast<std::size_t>(id)]; }
  double z(int id) const { return pz_[static_cast<std::size_t>(id)]; }

 private:
  struct CellKey {
    std::int64_t cx, cy, cz;
    bool operator==(const CellKey&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& k) const {
      std::uint64_t h = 1469598103934665603ull;
      auto mix = [&h](std::int64_t v) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ull;
      };
      mix(k.cx);
      mix(k.cy);
      mix(k.cz);
      return static_cast<std::size_t>(h);
    }
  };

  CellKey cell_of(double x, double y, double z) const;

  double tol_;
  double inv_cell_;
  std::vector<double> px_, py_, pz_;
  std::unordered_map<CellKey, std::vector<int>, CellHash> grid_;
};

}  // namespace sfg

#include "mesh/quality.hpp"

#include <cmath>
#include <limits>

#include "common/constants.hpp"

namespace sfg {

MeshQualityReport analyze_mesh_quality(const HexMesh& mesh,
                                       const aligned_vector<float>& vp,
                                       const aligned_vector<float>& vs,
                                       double courant) {
  SFG_CHECK(vp.size() == mesh.num_local_points());
  SFG_CHECK(vs.size() == mesh.num_local_points());
  const int ngll = mesh.ngll;

  MeshQualityReport rep;
  rep.courant_number = courant;
  rep.min_gll_spacing = std::numeric_limits<double>::max();
  rep.max_gll_spacing = 0.0;
  double min_dt = std::numeric_limits<double>::max();
  double slowest = std::numeric_limits<double>::max();

  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = mesh.xstore[a] - mesh.xstore[b];
    const double dy = mesh.ystore[a] - mesh.ystore[b];
    const double dz = mesh.zstore[a] - mesh.zstore[b];
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  };

  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    for (int k = 0; k < ngll; ++k) {
      for (int j = 0; j < ngll; ++j) {
        for (int i = 0; i < ngll; ++i) {
          const std::size_t p =
              off + static_cast<std::size_t>(local_index(ngll, i, j, k));
          const double vpp = vp[p];
          const double vss = vs[p];
          slowest = std::min(slowest, vss > 0.0 ? vss : vpp);
          auto consider = [&](std::size_t q) {
            const double h = dist(p, q);
            rep.min_gll_spacing = std::min(rep.min_gll_spacing, h);
            rep.max_gll_spacing = std::max(rep.max_gll_spacing, h);
            if (vpp > 0.0) min_dt = std::min(min_dt, h / vpp);
          };
          if (i + 1 < ngll)
            consider(off + static_cast<std::size_t>(
                               local_index(ngll, i + 1, j, k)));
          if (j + 1 < ngll)
            consider(off + static_cast<std::size_t>(
                               local_index(ngll, i, j + 1, k)));
          if (k + 1 < ngll)
            consider(off + static_cast<std::size_t>(
                               local_index(ngll, i, j, k + 1)));
        }
      }
    }
  }

  rep.dt_stable = courant * min_dt;
  // Shortest period: need kPointsPerWavelength GLL points per wavelength of
  // the slowest wave, limited by the coarsest sampling in the mesh.
  rep.shortest_period =
      kPointsPerWavelength * rep.max_gll_spacing / slowest;
  return rep;
}

std::vector<double> element_stable_dt(const HexMesh& mesh,
                                      const aligned_vector<float>& vp,
                                      double courant) {
  SFG_CHECK(vp.size() == mesh.num_local_points());
  const int ngll = mesh.ngll;

  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = mesh.xstore[a] - mesh.xstore[b];
    const double dy = mesh.ystore[a] - mesh.ystore[b];
    const double dz = mesh.zstore[a] - mesh.zstore[b];
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  };

  std::vector<double> dt(static_cast<std::size_t>(mesh.nspec), 0.0);
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    double min_dt = std::numeric_limits<double>::max();
    for (int k = 0; k < ngll; ++k) {
      for (int j = 0; j < ngll; ++j) {
        for (int i = 0; i < ngll; ++i) {
          const std::size_t p =
              off + static_cast<std::size_t>(local_index(ngll, i, j, k));
          const double vpp = vp[p];
          auto consider = [&](std::size_t q) {
            if (vpp > 0.0) min_dt = std::min(min_dt, dist(p, q) / vpp);
          };
          if (i + 1 < ngll)
            consider(off + static_cast<std::size_t>(
                               local_index(ngll, i + 1, j, k)));
          if (j + 1 < ngll)
            consider(off + static_cast<std::size_t>(
                               local_index(ngll, i, j + 1, k)));
          if (k + 1 < ngll)
            consider(off + static_cast<std::size_t>(
                               local_index(ngll, i, j, k + 1)));
        }
      }
    }
    dt[static_cast<std::size_t>(e)] = courant * min_dt;
  }
  return dt;
}

}  // namespace sfg

#include "mesh/coloring.hpp"

#include <algorithm>

namespace sfg {

std::vector<int> greedy_element_coloring(
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<int>& order) {
  const std::size_t n = adjacency.size();
  SFG_CHECK_MSG(order.size() == n,
                "coloring order must be a permutation of all vertices");
  std::vector<int> color_of(n, -1);
  std::vector<int> used;  // scratch: colors taken by neighbours
  for (int v : order) {
    SFG_CHECK(v >= 0 && static_cast<std::size_t>(v) < n);
    SFG_CHECK_MSG(color_of[static_cast<std::size_t>(v)] < 0,
                  "vertex " << v << " appears twice in the coloring order");
    used.clear();
    for (int w : adjacency[static_cast<std::size_t>(v)]) {
      const int c = color_of[static_cast<std::size_t>(w)];
      if (c >= 0) used.push_back(c);
    }
    std::sort(used.begin(), used.end());
    int c = 0;
    for (int u : used) {
      if (u > c) break;  // first gap found
      if (u == c) ++c;
    }
    color_of[static_cast<std::size_t>(v)] = c;
  }
  return color_of;
}

int num_colors(const std::vector<int>& color_of) {
  int max_c = -1;
  for (int c : color_of) max_c = std::max(max_c, c);
  return max_c + 1;
}

std::vector<std::vector<int>> color_batches(const std::vector<int>& elements,
                                            const std::vector<int>& color_of) {
  int nc = 0;
  for (int e : elements) {
    SFG_CHECK(e >= 0 && static_cast<std::size_t>(e) < color_of.size());
    nc = std::max(nc, color_of[static_cast<std::size_t>(e)] + 1);
  }
  std::vector<std::vector<int>> batches(static_cast<std::size_t>(nc));
  for (int e : elements)
    batches[static_cast<std::size_t>(color_of[static_cast<std::size_t>(e)])]
        .push_back(e);
  batches.erase(std::remove_if(batches.begin(), batches.end(),
                               [](const std::vector<int>& b) {
                                 return b.empty();
                               }),
                batches.end());
  return batches;
}

bool coloring_is_valid(const HexMesh& mesh,
                       const std::vector<int>& color_of) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(color_of.size() == static_cast<std::size_t>(mesh.nspec));
  for (int c : color_of)
    if (c < 0) return false;
  // Invert ibool (as element_adjacency does) and require all elements
  // touching one global point to carry distinct colors. A point is shared
  // by at most 8 corner-adjacent elements, so the per-point scan is cheap.
  std::vector<std::vector<int>> touching(
      static_cast<std::size_t>(mesh.nglob));
  const int ngll3 = mesh.ngll3();
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    for (int p = 0; p < ngll3; ++p) {
      auto& lst = touching[static_cast<std::size_t>(
          mesh.ibool[off + static_cast<std::size_t>(p)])];
      if (lst.empty() || lst.back() != e) lst.push_back(e);
    }
  }
  for (const auto& lst : touching) {
    for (std::size_t a = 0; a < lst.size(); ++a)
      for (std::size_t b = a + 1; b < lst.size(); ++b)
        if (color_of[static_cast<std::size_t>(lst[a])] ==
            color_of[static_cast<std::size_t>(lst[b])])
          return false;
  }
  return true;
}

}  // namespace sfg

#include "mesh/coloring.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>
#include <utility>

namespace sfg {

std::vector<int> greedy_element_coloring(
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<int>& order) {
  const std::size_t n = adjacency.size();
  SFG_CHECK_MSG(order.size() == n,
                "coloring order must be a permutation of all vertices");
  std::vector<int> color_of(n, -1);
  std::vector<int> used;  // scratch: colors taken by neighbours
  for (int v : order) {
    SFG_CHECK(v >= 0 && static_cast<std::size_t>(v) < n);
    SFG_CHECK_MSG(color_of[static_cast<std::size_t>(v)] < 0,
                  "vertex " << v << " appears twice in the coloring order");
    used.clear();
    for (int w : adjacency[static_cast<std::size_t>(v)]) {
      const int c = color_of[static_cast<std::size_t>(w)];
      if (c >= 0) used.push_back(c);
    }
    std::sort(used.begin(), used.end());
    int c = 0;
    for (int u : used) {
      if (u > c) break;  // first gap found
      if (u == c) ++c;
    }
    color_of[static_cast<std::size_t>(v)] = c;
  }
  return color_of;
}

int num_colors(const std::vector<int>& color_of) {
  int max_c = -1;
  for (int c : color_of) max_c = std::max(max_c, c);
  return max_c + 1;
}

std::vector<std::vector<int>> color_batches(const std::vector<int>& elements,
                                            const std::vector<int>& color_of) {
  int nc = 0;
  for (int e : elements) {
    SFG_CHECK(e >= 0 && static_cast<std::size_t>(e) < color_of.size());
    nc = std::max(nc, color_of[static_cast<std::size_t>(e)] + 1);
  }
  std::vector<std::vector<int>> batches(static_cast<std::size_t>(nc));
  for (int e : elements)
    batches[static_cast<std::size_t>(color_of[static_cast<std::size_t>(e)])]
        .push_back(e);
  batches.erase(std::remove_if(batches.begin(), batches.end(),
                               [](const std::vector<int>& b) {
                                 return b.empty();
                               }),
                batches.end());
  return batches;
}

namespace {

/// Marker for upper-color elements with no lower-color neighbour in their
/// pair: emitted at the end of their unit (they reuse nothing anyway).
constexpr std::size_t kNoAnchor = std::numeric_limits<std::size_t>::max();

/// Append `batch` split into num_slots balanced contiguous units.
void emit_plain_round(const std::vector<int>& batch, int tag, int num_slots,
                      ElementSchedule& out) {
  if (batch.empty()) return;
  const std::size_t base = out.items.size();
  out.items.insert(out.items.end(), batch.begin(), batch.end());
  ThreadPool::WorkRound round;
  round.tag = tag;
  const std::size_t n = batch.size();
  const std::size_t chunk =
      (n + static_cast<std::size_t>(num_slots) - 1) /
      static_cast<std::size_t>(num_slots);
  for (int s = 0; s < num_slots; ++s) {
    const std::size_t b = std::min(n, static_cast<std::size_t>(s) * chunk);
    const std::size_t e = std::min(n, b + chunk);
    round.units.push_back({base + b, base + e});
  }
  out.work.rounds.push_back(std::move(round));
}

/// Single-slot locality order: the closest order to the proximity (RCM)
/// traversal that still sums every global point in ascending color order.
/// The per-point constraint is a DAG (edges go from lower to upper color);
/// Kahn's algorithm with a min-heap keyed by proximity rank emits, at
/// every step, the most proximity-local element whose lower-color
/// point-sharing neighbours are all done. One round, one unit — with a
/// single consumer there is nothing to keep disjoint, only the per-point
/// color order to respect.
void emit_greedy_proximity_order(const HexMesh& mesh,
                                 const std::vector<std::vector<int>>& batches,
                                 const ScheduleOptions& opts,
                                 ElementSchedule& out) {
  std::size_t nsub = 0;
  for (const auto& b : batches) nsub += b.size();

  // Local ids in ascending-color order; priority = proximity rank (or the
  // flattened batch order when no rank is supplied, preserving today's
  // within-color sort).
  std::vector<int> elem_of(nsub);
  std::vector<std::size_t> prio(nsub);
  {
    std::size_t id = 0;
    for (const auto& b : batches)
      for (int e : b) {
        elem_of[id] = e;
        prio[id] = opts.proximity_rank.empty()
                       ? id
                       : opts.proximity_rank[static_cast<std::size_t>(e)];
        ++id;
      }
  }

  // Chain edges per global point: consecutive touchers in color order.
  // Chains are enough — transitivity gives the full per-point order.
  const int n3 = mesh.ngll3();
  std::vector<std::size_t> prev(static_cast<std::size_t>(mesh.nglob),
                                kNoAnchor);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t id = 0; id < nsub; ++id) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(elem_of[id]);
    for (int p = 0; p < n3; ++p) {
      const auto g = static_cast<std::size_t>(ib[p]);
      if (prev[g] != kNoAnchor && prev[g] != id)
        edges.push_back({prev[g], id});
      prev[g] = id;
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<std::vector<std::size_t>> succ(nsub);
  std::vector<std::size_t> indeg(nsub, 0);
  for (const auto& [a, b] : edges) {
    succ[a].push_back(b);
    ++indeg[b];
  }

  using Key = std::pair<std::size_t, std::size_t>;  // (priority, id)
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> ready;
  for (std::size_t id = 0; id < nsub; ++id)
    if (indeg[id] == 0) ready.push({prio[id], id});

  const std::size_t base = out.items.size();
  while (!ready.empty()) {
    const std::size_t id = ready.top().second;
    ready.pop();
    out.items.push_back(elem_of[id]);
    for (std::size_t s : succ[id])
      if (--indeg[s] == 0) ready.push({prio[s], s});
  }
  SFG_CHECK_MSG(out.items.size() - base == nsub,
                "constraint graph has a cycle — coloring is not a proper "
                "point-adjacency coloring");

  ThreadPool::WorkRound round;
  round.tag = kSchedRoundPaired;
  round.units.push_back({base, out.items.size()});
  out.work.rounds.push_back(std::move(round));
}

/// Batch-formation post-pass (ISSUE 6): group each work unit's items into
/// contiguous same-color runs of at most batch_lanes elements, recording
/// the cuts. Only permutes items WITHIN a unit (stable sort by color), so
/// invariants 1 and 2 are untouched, and the within-unit order stays
/// ascending in color — invariant 3 holds batch-wise exactly as it did
/// element-wise. Same-color lanes share no GLL point by the coloring
/// property, which is batch invariant B (disjoint lane footprints).
void form_batches(const std::vector<int>& color_of,
                  const ScheduleOptions& opts, ElementSchedule& out) {
  out.batch_lanes = opts.batch_lanes;
  out.batch_cut.clear();
  if (opts.batch_lanes <= 1) return;
  const auto lanes = static_cast<std::size_t>(opts.batch_lanes);

  // Units tile the item list; walk them in item order.
  std::vector<ThreadPool::WorkUnit> units;
  for (const auto& round : out.work.rounds)
    for (const ThreadPool::WorkUnit& u : round.units)
      if (u.begin < u.end) units.push_back(u);
  std::sort(units.begin(), units.end(),
            [](const ThreadPool::WorkUnit& a, const ThreadPool::WorkUnit& b) {
              return a.begin < b.begin;
            });

  auto color = [&](std::size_t i) {
    return color_of[static_cast<std::size_t>(out.items[i])];
  };
  out.batch_cut.push_back(0);
  for (const ThreadPool::WorkUnit& u : units) {
    std::stable_sort(
        out.items.begin() + static_cast<std::ptrdiff_t>(u.begin),
        out.items.begin() + static_cast<std::ptrdiff_t>(u.end),
        [&](int x, int y) {
          return color_of[static_cast<std::size_t>(x)] <
                 color_of[static_cast<std::size_t>(y)];
        });
    std::size_t start = u.begin;
    for (std::size_t i = u.begin; i < u.end; ++i) {
      const bool full = i + 1 - start == lanes;
      const bool color_break = i + 1 < u.end && color(i + 1) != color(i) &&
                               !opts.unsafe_batch_across_colors;
      if (i + 1 == u.end || full || color_break) {
        out.batch_cut.push_back(i + 1);
        start = i + 1;
      }
    }
  }
}

}  // namespace

ElementSchedule build_element_schedule(const HexMesh& mesh,
                                       const std::vector<int>& elements,
                                       const std::vector<int>& color_of,
                                       const ScheduleOptions& opts) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK_MSG(opts.num_slots >= 1, "schedule needs at least one slot");
  SFG_CHECK_MSG(opts.block_size >= 1, "block_size must be positive");
  SFG_CHECK_MSG(opts.batch_lanes >= 1, "batch_lanes must be positive");
  ElementSchedule out;
  out.num_slots = opts.num_slots;
  if (elements.empty()) {
    form_batches(color_of, opts, out);
    return out;
  }
  out.items.reserve(elements.size());

  std::vector<std::vector<int>> batches = color_batches(elements, color_of);

  // (a) within-color RCM proximity order: restores the §4.2 cache
  // blocking that coloring destroyed. Per-point summation order does not
  // depend on within-color order (one contribution per color per point),
  // so this is bit-neutral.
  if (!opts.proximity_rank.empty()) {
    SFG_CHECK(opts.proximity_rank.size() ==
              static_cast<std::size_t>(mesh.nspec));
    for (auto& b : batches)
      std::stable_sort(b.begin(), b.end(), [&](int x, int y) {
        return opts.proximity_rank[static_cast<std::size_t>(x)] <
               opts.proximity_rank[static_cast<std::size_t>(y)];
      });
  }

  if (!opts.interleave_pairs) {
    for (const auto& b : batches)
      emit_plain_round(b, kSchedRoundPlain, opts.num_slots, out);
    form_batches(color_of, opts, out);
    return out;
  }

  // (b) one slot: no concurrency to protect, so the pair construction
  // below would only limit locality. Emit the globally best order instead
  // — greedy proximity under the per-point ascending-color constraint.
  if (opts.num_slots == 1) {
    emit_greedy_proximity_order(mesh, batches, opts, out);
    form_batches(color_of, opts, out);
    return out;
  }

  // (c) interleaved color pairs. Point ownership within the lower color
  // is single-valued (no two same-color elements share a point), so one
  // stamped array resolves every upper-color element's footprint.
  const int n3 = mesh.ngll3();
  const int slots = opts.num_slots;
  std::vector<std::size_t> owner_pos(static_cast<std::size_t>(mesh.nglob));
  std::vector<int> owner_stamp(static_cast<std::size_t>(mesh.nglob), -1);

  for (std::size_t pair = 0; pair < batches.size(); pair += 2) {
    const std::vector<int>& lower = batches[pair];
    if (pair + 1 >= batches.size()) {
      // Odd tail: no partner color to interleave with.
      emit_plain_round(lower, kSchedRoundPlain, slots, out);
      break;
    }
    const std::vector<int>& upper = batches[pair + 1];
    const std::size_t nl = lower.size();

    // Slot cuts of the lower color: balanced, aligned to block_size
    // multiples when the rounding stays monotone (cache blocks survive
    // whole inside one unit).
    std::vector<std::size_t> cut(static_cast<std::size_t>(slots) + 1, 0);
    cut[static_cast<std::size_t>(slots)] = nl;
    const auto bs = static_cast<std::size_t>(opts.block_size);
    for (int s = 1; s < slots; ++s) {
      const std::size_t ideal =
          nl * static_cast<std::size_t>(s) / static_cast<std::size_t>(slots);
      std::size_t aligned = (ideal + bs / 2) / bs * bs;
      aligned = std::min(aligned, nl);
      cut[static_cast<std::size_t>(s)] =
          std::max(aligned, cut[static_cast<std::size_t>(s) - 1]);
    }
    auto slot_of_pos = [&](std::size_t pos) {
      int s = 0;
      while (pos >= cut[static_cast<std::size_t>(s) + 1]) ++s;
      return s;
    };

    const int stamp = static_cast<int>(pair);
    for (std::size_t i = 0; i < nl; ++i) {
      const int* ib = mesh.ibool.data() + mesh.local_offset(lower[i]);
      for (int p = 0; p < n3; ++p) {
        const auto g = static_cast<std::size_t>(ib[p]);
        owner_pos[g] = i;
        owner_stamp[g] = stamp;
      }
    }

    // Classify the upper color: (anchor position, element) per slot, or
    // residual when the footprint straddles slots.
    std::vector<std::vector<std::pair<std::size_t, int>>> per_slot(
        static_cast<std::size_t>(slots));
    std::vector<int> residual;
    std::vector<std::size_t> load(static_cast<std::size_t>(slots));
    for (int s = 0; s < slots; ++s)
      load[static_cast<std::size_t>(s)] =
          cut[static_cast<std::size_t>(s) + 1] -
          cut[static_cast<std::size_t>(s)];
    for (int e : upper) {
      const int* ib = mesh.ibool.data() + mesh.local_offset(e);
      int found_slot = -1;
      std::size_t anchor = kNoAnchor;
      bool straddles = false;
      for (int p = 0; p < n3; ++p) {
        const auto g = static_cast<std::size_t>(ib[p]);
        if (owner_stamp[g] != stamp) continue;
        const std::size_t pos = owner_pos[g];
        const int s = slot_of_pos(pos);
        if (found_slot < 0) {
          found_slot = s;
          anchor = pos;
        } else if (s != found_slot) {
          straddles = true;
          if (!opts.unsafe_skip_straddler_demotion) break;
        } else if (anchor == kNoAnchor || pos > anchor) {
          anchor = pos;
        }
      }
      if (straddles && !opts.unsafe_skip_straddler_demotion) {
        residual.push_back(e);
        continue;
      }
      if (found_slot < 0) {
        // No lower-color neighbour at all: free to go anywhere; pick the
        // lightest slot (lowest index on ties) for balance.
        found_slot = 0;
        for (int s = 1; s < slots; ++s)
          if (load[static_cast<std::size_t>(s)] <
              load[static_cast<std::size_t>(found_slot)])
            found_slot = s;
      }
      per_slot[static_cast<std::size_t>(found_slot)].push_back({anchor, e});
      ++load[static_cast<std::size_t>(found_slot)];
    }

    // Emit the pair round: per slot, merge the lower-color block with its
    // upper-color dependents, each placed right after the LAST lower
    // neighbour it touches — maximal reuse, and the c-before-c+1 per-point
    // order that keeps the schedule bit-identical to plain batches.
    ThreadPool::WorkRound round;
    round.tag = kSchedRoundPaired;
    for (int s = 0; s < slots; ++s) {
      auto& dep = per_slot[static_cast<std::size_t>(s)];
      std::stable_sort(dep.begin(), dep.end(),
                       [](const auto& x, const auto& y) {
                         return x.first < y.first;
                       });
      const std::size_t ub = out.items.size();
      std::size_t d = 0;
      for (std::size_t i = cut[static_cast<std::size_t>(s)];
           i < cut[static_cast<std::size_t>(s) + 1]; ++i) {
        out.items.push_back(lower[i]);
        while (d < dep.size() && dep[d].first == i)
          out.items.push_back(dep[d++].second);
      }
      while (d < dep.size()) out.items.push_back(dep[d++].second);
      round.units.push_back({ub, out.items.size()});
    }
    out.work.rounds.push_back(std::move(round));

    out.residual_elements += static_cast<int>(residual.size());
    emit_plain_round(residual, kSchedRoundResidual, slots, out);
  }
  form_batches(color_of, opts, out);
  return out;
}

std::string check_element_schedule(const HexMesh& mesh,
                                   const std::vector<int>& elements,
                                   const std::vector<int>& color_of,
                                   const ElementSchedule& schedule) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(color_of.size() == static_cast<std::size_t>(mesh.nspec));
  std::ostringstream err;
  const std::size_t n = elements.size();

  // Invariant 1: the flat item list is exactly the input element set.
  if (schedule.items.size() != n) {
    err << "schedule holds " << schedule.items.size() << " items, expected "
        << n;
    return err.str();
  }
  std::vector<int> times(static_cast<std::size_t>(mesh.nspec), 0);
  for (int e : schedule.items) {
    if (e < 0 || e >= mesh.nspec) {
      err << "scheduled element " << e << " out of range";
      return err.str();
    }
    if (++times[static_cast<std::size_t>(e)] > 1) {
      err << "element " << e << " scheduled more than once";
      return err.str();
    }
  }
  for (int e : elements)
    if (times[static_cast<std::size_t>(e)] != 1) {
      err << "element " << e << " of the input list is never scheduled";
      return err.str();
    }

  // Work units must tile the item list exactly once.
  std::vector<char> covered(n, 0);
  for (std::size_t r = 0; r < schedule.work.rounds.size(); ++r) {
    for (const ThreadPool::WorkUnit& u : schedule.work.rounds[r].units) {
      if (u.begin > u.end || u.end > n) {
        err << "round " << r << ": unit range [" << u.begin << ", " << u.end
            << ") out of bounds";
        return err.str();
      }
      for (std::size_t i = u.begin; i < u.end; ++i) {
        if (covered[i]) {
          err << "item " << i << " covered by two work units";
          return err.str();
        }
        covered[i] = 1;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    if (!covered[i]) {
      err << "item " << i << " (element " << schedule.items[i]
          << ") not covered by any work unit";
      return err.str();
    }

  // Batched schedules: the cuts must tile the item list without crossing
  // a unit boundary, and every batch's lanes must have pairwise-disjoint
  // point footprints (invariant B — checked FIRST, it is the property the
  // SoA scatter relies on) and carry a single color.
  if (schedule.batch_lanes > 1) {
    const auto& cut = schedule.batch_cut;
    if (cut.empty() || cut.front() != 0 || cut.back() != n) {
      err << "batch cuts do not tile the item list (got " << cut.size()
          << " cuts over " << n << " items)";
      return err.str();
    }
    std::vector<ThreadPool::WorkUnit> units;
    for (const auto& round : schedule.work.rounds)
      for (const ThreadPool::WorkUnit& u : round.units)
        if (u.begin < u.end) units.push_back(u);
    std::sort(units.begin(), units.end(),
              [](const ThreadPool::WorkUnit& a,
                 const ThreadPool::WorkUnit& b) { return a.begin < b.begin; });
    const int n3b = mesh.ngll3();
    std::vector<std::size_t> pt_batch(static_cast<std::size_t>(mesh.nglob),
                                      kNoAnchor);
    std::vector<int> pt_elem(static_cast<std::size_t>(mesh.nglob), -1);
    std::size_t unit_at = 0;
    for (std::size_t b = 0; b + 1 < cut.size(); ++b) {
      const std::size_t b0 = cut[b];
      const std::size_t b1 = cut[b + 1];
      if (b1 <= b0) {
        err << "batch " << b << " is empty or cuts are not ascending";
        return err.str();
      }
      if (b1 - b0 > static_cast<std::size_t>(schedule.batch_lanes)) {
        err << "batch " << b << " holds " << (b1 - b0)
            << " elements, more than batch_lanes=" << schedule.batch_lanes;
        return err.str();
      }
      while (unit_at < units.size() && units[unit_at].end <= b0) ++unit_at;
      if (unit_at >= units.size() || b0 < units[unit_at].begin ||
          b1 > units[unit_at].end) {
        err << "batch " << b << " [" << b0 << ", " << b1
            << ") straddles a work-unit boundary";
        return err.str();
      }
      for (std::size_t i = b0; i < b1; ++i) {
        const int e = schedule.items[i];
        const int* ib = mesh.ibool.data() + mesh.local_offset(e);
        for (int p = 0; p < n3b; ++p) {
          const auto g = static_cast<std::size_t>(ib[p]);
          if (pt_batch[g] == b && pt_elem[g] != e) {
            err << "batch " << b << ": lanes (elements " << pt_elem[g]
                << " and " << e << ") share global point " << g
                << " — SoA lane footprints must be disjoint";
            return err.str();
          }
          pt_batch[g] = b;
          pt_elem[g] = e;
        }
      }
      for (std::size_t i = b0 + 1; i < b1; ++i)
        if (color_of[static_cast<std::size_t>(schedule.items[i])] !=
            color_of[static_cast<std::size_t>(schedule.items[b0])]) {
          err << "batch " << b << " mixes colors "
              << color_of[static_cast<std::size_t>(schedule.items[b0])]
              << " and "
              << color_of[static_cast<std::size_t>(schedule.items[i])];
          return err.str();
        }
    }
  }

  // Invariant 2: within a round, concurrently-runnable units have
  // pairwise-disjoint GLL point footprints. Invariant 3: at every global
  // point, contributions arrive in strictly ascending color order (the
  // walk below is a valid per-point linearization exactly because of
  // invariant 2: at most one unit per round touches a point).
  const int n3 = mesh.ngll3();
  const auto ng = static_cast<std::size_t>(mesh.nglob);
  std::vector<std::size_t> pt_round(ng, kNoAnchor);
  std::vector<std::size_t> pt_unit(ng, 0);
  std::vector<int> last_color(ng, -1);
  for (std::size_t r = 0; r < schedule.work.rounds.size(); ++r) {
    const auto& units = schedule.work.rounds[r].units;
    for (std::size_t u = 0; u < units.size(); ++u) {
      for (std::size_t i = units[u].begin; i < units[u].end; ++i) {
        const int e = schedule.items[i];
        const int c = color_of[static_cast<std::size_t>(e)];
        const int* ib = mesh.ibool.data() + mesh.local_offset(e);
        for (int p = 0; p < n3; ++p) {
          const auto g = static_cast<std::size_t>(ib[p]);
          if (pt_round[g] == r && pt_unit[g] != u) {
            err << "round " << r << ": units " << pt_unit[g] << " and " << u
                << " share global point " << g << " (element " << e << ")";
            return err.str();
          }
          pt_round[g] = r;
          pt_unit[g] = u;
          if (c <= last_color[g]) {
            err << "global point " << g << ": color " << c << " of element "
                << e << " scheduled after color " << last_color[g]
                << " — per-point summation order diverges from plain "
                   "color batches";
            return err.str();
          }
          last_color[g] = c;
        }
      }
    }
  }
  return std::string();
}

// ---- clustered local time stepping (ISSUE 7) ----

std::vector<int> cluster_levels_from_dt(const std::vector<double>& element_dt,
                                        double dt_min, int max_levels) {
  SFG_CHECK_MSG(dt_min > 0.0, "LTS base step must be positive");
  SFG_CHECK_MSG(max_levels >= 1, "LTS needs at least one level");
  std::vector<int> level(element_dt.size(), 0);
  for (std::size_t e = 0; e < element_dt.size(); ++e) {
    SFG_CHECK_MSG(element_dt[e] >= dt_min,
                  "element " << e << " stable dt " << element_dt[e]
                             << " is below the base step " << dt_min
                             << " — the base step must be the global minimum");
    const int k =
        static_cast<int>(std::floor(std::log2(element_dt[e] / dt_min)));
    level[e] = std::clamp(k, 0, max_levels - 1);
  }
  return level;
}

std::vector<int> cluster_point_levels(const HexMesh& mesh,
                                      const std::vector<int>& level_of) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(level_of.size() == static_cast<std::size_t>(mesh.nspec));
  std::vector<int> pl(static_cast<std::size_t>(mesh.nglob),
                      std::numeric_limits<int>::max());
  const int n3 = mesh.ngll3();
  for (int e = 0; e < mesh.nspec; ++e) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    const int lv = level_of[static_cast<std::size_t>(e)];
    for (int p = 0; p < n3; ++p) {
      int& v = pl[static_cast<std::size_t>(ib[p])];
      v = std::min(v, lv);
    }
  }
  for (int& v : pl)
    if (v == std::numeric_limits<int>::max()) v = 0;
  return pl;
}

int clamp_cluster_levels(const HexMesh& mesh,
                         const std::vector<int>& point_level,
                         std::vector<int>& level_of) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(point_level.size() == static_cast<std::size_t>(mesh.nglob));
  SFG_CHECK(level_of.size() == static_cast<std::size_t>(mesh.nspec));
  const int n3 = mesh.ngll3();
  int changed = 0;
  for (int e = 0; e < mesh.nspec; ++e) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    int cap = std::numeric_limits<int>::max();
    for (int p = 0; p < n3; ++p)
      cap = std::min(cap, point_level[static_cast<std::size_t>(ib[p])] + 1);
    int& lv = level_of[static_cast<std::size_t>(e)];
    if (lv > cap) {
      lv = cap;
      ++changed;
    }
  }
  return changed;
}

ClusterPartition finalize_cluster_partition(const HexMesh& mesh,
                                            std::vector<int> level_of,
                                            std::vector<int> point_level) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(level_of.size() == static_cast<std::size_t>(mesh.nspec));
  SFG_CHECK(point_level.size() == static_cast<std::size_t>(mesh.nglob));
  ClusterPartition part;
  part.level_of = std::move(level_of);
  part.point_level = std::move(point_level);
  part.rate_of.assign(static_cast<std::size_t>(mesh.nspec), 0);
  const int n3 = mesh.ngll3();
  int max_level = 0;
  for (int e = 0; e < mesh.nspec; ++e) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    int r = std::numeric_limits<int>::max();
    for (int p = 0; p < n3; ++p)
      r = std::min(r, part.point_level[static_cast<std::size_t>(ib[p])]);
    part.rate_of[static_cast<std::size_t>(e)] = r;
    max_level =
        std::max(max_level, part.level_of[static_cast<std::size_t>(e)]);
  }
  part.num_levels = max_level + 1;
  return part;
}

ClusterPartition build_cluster_partition(const HexMesh& mesh,
                                         std::vector<int> level_of) {
  std::vector<int> point_level;
  for (;;) {
    point_level = cluster_point_levels(mesh, level_of);
    if (clamp_cluster_levels(mesh, point_level, level_of) == 0) break;
  }
  return finalize_cluster_partition(mesh, std::move(level_of),
                                    std::move(point_level));
}

std::vector<int> cluster_point_min_rate(const HexMesh& mesh,
                                        const std::vector<int>& rate_of) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(rate_of.size() == static_cast<std::size_t>(mesh.nspec));
  std::vector<int> mr(static_cast<std::size_t>(mesh.nglob), kNoTouchingRate);
  const int n3 = mesh.ngll3();
  for (int e = 0; e < mesh.nspec; ++e) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    const int r = rate_of[static_cast<std::size_t>(e)];
    for (int p = 0; p < n3; ++p) {
      int& v = mr[static_cast<std::size_t>(ib[p])];
      v = std::min(v, r);
    }
  }
  return mr;
}

InterfaceSet cluster_interface_points(const HexMesh& mesh,
                                      const std::vector<int>& point_level,
                                      const std::vector<int>& point_min_rate,
                                      const ClusterOptions& copts) {
  SFG_CHECK(point_level.size() == static_cast<std::size_t>(mesh.nglob));
  SFG_CHECK(point_min_rate.size() == static_cast<std::size_t>(mesh.nglob));
  InterfaceSet out;
  if (copts.unsafe_drop_interp_points) return out;
  for (int g = 0; g < mesh.nglob; ++g) {
    const int lv = point_level[static_cast<std::size_t>(g)];
    if (lv > 0 && point_min_rate[static_cast<std::size_t>(g)] < lv) {
      out.points.push_back(g);
      out.level.push_back(lv);
    }
  }
  return out;
}

ClusterSchedule build_cluster_schedule(const HexMesh& mesh,
                                       const std::vector<int>& elements,
                                       const std::vector<int>& color_of,
                                       const ClusterPartition& part,
                                       const ScheduleOptions& opts,
                                       const ClusterOptions& copts) {
  SFG_CHECK(part.level_of.size() == static_cast<std::size_t>(mesh.nspec));
  SFG_CHECK(part.rate_of.size() == static_cast<std::size_t>(mesh.nspec));
  const std::vector<int>& key =
      copts.unsafe_rate_from_own_level ? part.level_of : part.rate_of;
  int max_rate = 0;
  for (int e : elements) {
    SFG_CHECK(e >= 0 && e < mesh.nspec);
    max_rate = std::max(max_rate, key[static_cast<std::size_t>(e)]);
  }
  std::vector<std::vector<int>> buckets(static_cast<std::size_t>(max_rate) +
                                        1);
  for (int e : elements)
    buckets[static_cast<std::size_t>(key[static_cast<std::size_t>(e)])]
        .push_back(e);

  ClusterSchedule cs;
  for (int r = 0; r <= max_rate; ++r) {
    auto& b = buckets[static_cast<std::size_t>(r)];
    if (b.empty()) continue;
    cs.rates.push_back(r);
    cs.rate_elements.push_back(std::move(b));
  }
  if (copts.unsafe_merge_slowest_rates && cs.rates.size() >= 2) {
    auto& dst = cs.rate_elements[cs.rate_elements.size() - 2];
    const auto& src = cs.rate_elements.back();
    dst.insert(dst.end(), src.begin(), src.end());
    cs.rate_elements.pop_back();
    cs.rates.pop_back();
  }
  cs.rate_sched.reserve(cs.rates.size());
  for (const auto& lst : cs.rate_elements)
    cs.rate_sched.push_back(
        build_element_schedule(mesh, lst, color_of, opts));
  return cs;
}

std::string check_cluster_schedule(const HexMesh& mesh,
                                   const std::vector<int>& elements,
                                   const std::vector<int>& color_of,
                                   const ClusterPartition& part,
                                   const ClusterSchedule& cs) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(part.level_of.size() == static_cast<std::size_t>(mesh.nspec));
  SFG_CHECK(part.rate_of.size() == static_cast<std::size_t>(mesh.nspec));
  SFG_CHECK(part.point_level.size() == static_cast<std::size_t>(mesh.nglob));
  std::ostringstream err;

  if (cs.rate_elements.size() != cs.rates.size() ||
      cs.rate_sched.size() != cs.rates.size()) {
    err << "cluster schedule has " << cs.rates.size() << " rates but "
        << cs.rate_elements.size() << " buckets and " << cs.rate_sched.size()
        << " schedules";
    return err.str();
  }
  for (std::size_t i = 0; i < cs.rates.size(); ++i) {
    if (cs.rates[i] < 0 || cs.rates[i] >= part.num_levels) {
      err << "cluster rate " << cs.rates[i] << " outside [0, "
          << part.num_levels << ")";
      return err.str();
    }
    if (i > 0 && cs.rates[i] <= cs.rates[i - 1]) {
      err << "cluster rates not strictly ascending";
      return err.str();
    }
  }

  // C-A: the rate buckets tile the input element list exactly once...
  std::vector<int> times(static_cast<std::size_t>(mesh.nspec), 0);
  std::size_t total = 0;
  for (const auto& bucket : cs.rate_elements)
    for (int e : bucket) {
      if (e < 0 || e >= mesh.nspec) {
        err << "clustered element " << e << " out of range";
        return err.str();
      }
      if (++times[static_cast<std::size_t>(e)] > 1) {
        err << "element " << e << " appears in two cluster buckets";
        return err.str();
      }
      ++total;
    }
  if (total != elements.size()) {
    err << "cluster buckets hold " << total << " elements, expected "
        << elements.size();
    return err.str();
  }
  for (int e : elements)
    if (times[static_cast<std::size_t>(e)] != 1) {
      err << "element " << e << " of the input list is in no cluster bucket";
      return err.str();
    }

  // ... and every bucket is pure: bucket rate == marching rate. Catches
  // both mutated assignments (an element bucketed by its raw level marches
  // slower than its fastest point demands) and cross-cluster merges.
  for (std::size_t i = 0; i < cs.rates.size(); ++i)
    for (int e : cs.rate_elements[i])
      if (part.rate_of[static_cast<std::size_t>(e)] != cs.rates[i]) {
        err << "cluster bucket at rate " << cs.rates[i]
            << " contains element " << e << " marching at rate "
            << part.rate_of[static_cast<std::size_t>(e)]
            << " — cross-cluster merge or mutated assignment";
        return err.str();
      }

  // Rate and point-level consistency + C-C (rate-2 smoothing).
  const int n3 = mesh.ngll3();
  for (int e : elements) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    const int lv = part.level_of[static_cast<std::size_t>(e)];
    int min_pl = std::numeric_limits<int>::max();
    for (int p = 0; p < n3; ++p) {
      const auto g = static_cast<std::size_t>(ib[p]);
      const int pl = part.point_level[g];
      min_pl = std::min(min_pl, pl);
      if (pl > lv) {
        err << "global point " << ib[p] << " level " << pl
            << " exceeds the level " << lv << " of touching element " << e;
        return err.str();
      }
      if (lv > pl + 1) {
        err << "cluster levels not rate-2 smoothed: element " << e
            << " level " << lv << " exceeds point " << ib[p] << " level "
            << pl << " by more than one";
        return err.str();
      }
    }
    if (part.rate_of[static_cast<std::size_t>(e)] != min_pl) {
      err << "element " << e << " cluster rate "
          << part.rate_of[static_cast<std::size_t>(e)]
          << " disagrees with its min point level " << min_pl;
      return err.str();
    }
  }

  // C-B: every bucket's schedule satisfies invariants 1-3 (and B).
  for (std::size_t i = 0; i < cs.rates.size(); ++i) {
    const std::string sub = check_element_schedule(
        mesh, cs.rate_elements[i], color_of, cs.rate_sched[i]);
    if (!sub.empty()) {
      err << "rate " << cs.rates[i] << " schedule: " << sub;
      return err.str();
    }
  }
  return std::string();
}

std::string check_cluster_interfaces(const HexMesh& mesh,
                                     const std::vector<int>& elements,
                                     const ClusterPartition& part,
                                     const InterfaceSet& iset) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(part.rate_of.size() == static_cast<std::size_t>(mesh.nspec));
  SFG_CHECK(part.point_level.size() == static_cast<std::size_t>(mesh.nglob));
  std::ostringstream err;
  const auto ng = static_cast<std::size_t>(mesh.nglob);

  if (iset.level.size() != iset.points.size()) {
    err << "interpolation set holds " << iset.points.size() << " points but "
        << iset.level.size() << " levels";
    return err.str();
  }
  std::vector<char> in_iset(ng, 0);
  for (std::size_t i = 0; i < iset.points.size(); ++i) {
    const int g = iset.points[i];
    if (g < 0 || g >= mesh.nglob) {
      err << "interpolation point " << g << " out of range";
      return err.str();
    }
    if (i > 0 && g <= iset.points[i - 1]) {
      err << "interpolation points not strictly ascending";
      return err.str();
    }
    if (iset.level[i] != part.point_level[static_cast<std::size_t>(g)]) {
      err << "interpolation point " << g << " carries level "
          << iset.level[i] << ", partition says "
          << part.point_level[static_cast<std::size_t>(g)];
      return err.str();
    }
    if (iset.level[i] <= 0) {
      err << "level-0 point " << g
          << " in the interpolation set — it is due every substep";
      return err.str();
    }
    in_iset[static_cast<std::size_t>(g)] = 1;
  }

  const int n3 = mesh.ngll3();
  std::vector<int> touchers(ng, 0);
  for (int e : elements) {
    SFG_CHECK(e >= 0 && e < mesh.nspec);
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    for (int p = 0; p < n3; ++p)
      ++touchers[static_cast<std::size_t>(ib[p])];
  }

  // C-D: simulate one full fast round. Rate r fires at the substeps where
  // (n+1) is a multiple of 2^r; a point of level L is due where (n+1) is a
  // multiple of 2^L. The solver zeroes accelerations every substep and
  // discards the junk sitting at not-due points, so the invariant is
  // per-substep: at every DUE substep a point must receive exactly one
  // contribution from every touching element (all of them fire there,
  // since 2^rate divides 2^L); any contribution landing at a NOT-due
  // substep is a mid-stride gather — the firing element read the point's
  // displacement between its Newmark updates — and demands interpolation.
  const int stride = 1 << (part.num_levels - 1);
  std::vector<int> got(ng, 0);
  for (int n = 0; n < stride; ++n) {
    std::fill(got.begin(), got.end(), 0);
    for (int e : elements) {
      const int r = part.rate_of[static_cast<std::size_t>(e)];
      if (((n + 1) & ((1 << r) - 1)) != 0) continue;
      const int* ib = mesh.ibool.data() + mesh.local_offset(e);
      for (int p = 0; p < n3; ++p)
        ++got[static_cast<std::size_t>(ib[p])];
    }
    for (std::size_t g = 0; g < ng; ++g) {
      if (touchers[g] == 0) continue;
      const int lv = part.point_level[g];
      if (((n + 1) & ((1 << lv) - 1)) == 0) {
        if (got[g] != touchers[g]) {
          err << "global point " << g << " collected " << got[g]
              << " contributions at its due substep " << n
              << ", expected one from each of its " << touchers[g]
              << " touching elements";
          return err.str();
        }
      } else if (got[g] != 0 && !in_iset[g]) {
        err << "global point " << g << " (level " << lv
            << ") is gathered mid-stride at substep " << n
            << " but missing from the interpolation set — skipped "
               "interface interpolation";
        return err.str();
      }
    }
  }
  return std::string();
}

bool coloring_is_valid(const HexMesh& mesh,
                       const std::vector<int>& color_of) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(color_of.size() == static_cast<std::size_t>(mesh.nspec));
  for (int c : color_of)
    if (c < 0) return false;
  // Invert ibool (as element_adjacency does) and require all elements
  // touching one global point to carry distinct colors. A point is shared
  // by at most 8 corner-adjacent elements, so the per-point scan is cheap.
  std::vector<std::vector<int>> touching(
      static_cast<std::size_t>(mesh.nglob));
  const int ngll3 = mesh.ngll3();
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    for (int p = 0; p < ngll3; ++p) {
      auto& lst = touching[static_cast<std::size_t>(
          mesh.ibool[off + static_cast<std::size_t>(p)])];
      if (lst.empty() || lst.back() != e) lst.push_back(e);
    }
  }
  for (const auto& lst : touching) {
    for (std::size_t a = 0; a < lst.size(); ++a)
      for (std::size_t b = a + 1; b < lst.size(); ++b)
        if (color_of[static_cast<std::size_t>(lst[a])] ==
            color_of[static_cast<std::size_t>(lst[b])])
          return false;
  }
  return true;
}

}  // namespace sfg

#include "mesh/faces.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace sfg {

namespace {

/// The constant reference coordinate of each face (0=xi, 1=eta, 2=gamma)
/// and its value (-1 or +1).
struct FaceAxes {
  int normal_axis;
  int sign;  // +1 for the +1 face
};

FaceAxes face_axes(int face) {
  switch (face) {
    case 0: return {0, -1};
    case 1: return {0, +1};
    case 2: return {1, -1};
    case 3: return {1, +1};
    case 4: return {2, -1};
    case 5: return {2, +1};
    default: SFG_CHECK_MSG(false, "face index " << face << " out of range");
  }
  return {0, 0};
}

/// The 4 corner local indices of a face (for signatures).
std::array<int, 4> face_corners(int ngll, int face) {
  const int m = ngll - 1;
  auto li = [&](int i, int j, int k) { return local_index(ngll, i, j, k); };
  switch (face) {
    case 0: return {li(0, 0, 0), li(0, m, 0), li(0, 0, m), li(0, m, m)};
    case 1: return {li(m, 0, 0), li(m, m, 0), li(m, 0, m), li(m, m, m)};
    case 2: return {li(0, 0, 0), li(m, 0, 0), li(0, 0, m), li(m, 0, m)};
    case 3: return {li(0, m, 0), li(m, m, 0), li(0, m, m), li(m, m, m)};
    case 4: return {li(0, 0, 0), li(m, 0, 0), li(0, m, 0), li(m, m, 0)};
    case 5: return {li(0, 0, m), li(m, 0, m), li(0, m, m), li(m, m, m)};
    default: SFG_CHECK(false);
  }
  return {};
}

std::array<int, 4> face_signature(const HexMesh& mesh, int ispec, int face) {
  const std::size_t off = mesh.local_offset(ispec);
  std::array<int, 4> sig;
  const auto corners = face_corners(mesh.ngll, face);
  for (int c = 0; c < 4; ++c)
    sig[static_cast<std::size_t>(c)] =
        mesh.ibool[off + static_cast<std::size_t>(
                             corners[static_cast<std::size_t>(c)])];
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace

FaceData compute_face_data(const HexMesh& mesh, const GllBasis& basis,
                           int ispec, int face) {
  SFG_CHECK(mesh.has_jacobians());
  SFG_CHECK(ispec >= 0 && ispec < mesh.nspec);
  const int ngll = mesh.ngll;
  const FaceAxes ax = face_axes(face);
  const std::size_t off = mesh.local_offset(ispec);

  FaceData fd;
  fd.ispec = ispec;
  fd.face = face;
  fd.local_points.reserve(static_cast<std::size_t>(ngll * ngll));
  fd.normals.reserve(static_cast<std::size_t>(ngll * ngll));
  fd.weights.reserve(static_cast<std::size_t>(ngll * ngll));

  const int fixed = ax.sign > 0 ? ngll - 1 : 0;
  for (int b = 0; b < ngll; ++b) {
    for (int a = 0; a < ngll; ++a) {
      int i, j, k;
      switch (ax.normal_axis) {
        case 0: i = fixed; j = a; k = b; break;
        case 1: i = a; j = fixed; k = b; break;
        default: i = a; j = b; k = fixed; break;
      }
      const int lp = local_index(ngll, i, j, k);
      const std::size_t p = off + static_cast<std::size_t>(lp);

      // Gradient of the constant reference coordinate: its direction is
      // the face normal; |grad c| * jacobian3D is the surface Jacobian.
      double gx, gy, gz;
      switch (ax.normal_axis) {
        case 0: gx = mesh.xix[p]; gy = mesh.xiy[p]; gz = mesh.xiz[p]; break;
        case 1: gx = mesh.etax[p]; gy = mesh.etay[p]; gz = mesh.etaz[p]; break;
        default:
          gx = mesh.gammax[p];
          gy = mesh.gammay[p];
          gz = mesh.gammaz[p];
          break;
      }
      const double norm = std::sqrt(gx * gx + gy * gy + gz * gz);
      SFG_CHECK_MSG(norm > 0.0, "degenerate face normal");
      const double s = ax.sign / norm;

      fd.local_points.push_back(lp);
      fd.normals.push_back({gx * s, gy * s, gz * s});
      fd.weights.push_back(basis.weight(a) * basis.weight(b) *
                           static_cast<double>(mesh.jacobian[p]) * norm);
    }
  }
  return fd;
}

std::vector<ElementFace> find_boundary_faces(const HexMesh& mesh) {
  SFG_CHECK(mesh.numbered());
  std::map<std::array<int, 4>, int> count;
  for (int e = 0; e < mesh.nspec; ++e)
    for (int f = 0; f < 6; ++f) ++count[face_signature(mesh, e, f)];

  std::vector<ElementFace> result;
  for (int e = 0; e < mesh.nspec; ++e)
    for (int f = 0; f < 6; ++f)
      if (count[face_signature(mesh, e, f)] == 1) result.push_back({e, f});
  return result;
}

std::vector<ElementFace> find_interface_faces(
    const HexMesh& mesh, const std::vector<bool>& group_flag) {
  SFG_CHECK(mesh.numbered());
  SFG_CHECK(static_cast<int>(group_flag.size()) == mesh.nspec);
  std::map<std::array<int, 4>, std::vector<ElementFace>> owners;
  for (int e = 0; e < mesh.nspec; ++e)
    for (int f = 0; f < 6; ++f)
      owners[face_signature(mesh, e, f)].push_back({e, f});

  std::vector<ElementFace> result;
  for (const auto& [sig, faces] : owners) {
    if (faces.size() != 2) continue;
    const bool f0 = group_flag[static_cast<std::size_t>(faces[0].ispec)];
    const bool f1 = group_flag[static_cast<std::size_t>(faces[1].ispec)];
    if (f0 == f1) continue;
    result.push_back(f0 ? faces[0] : faces[1]);
  }
  return result;
}

}  // namespace sfg

#include "mesh/jacobian.hpp"

#include <cmath>

namespace sfg {

void compute_jacobian_tables(HexMesh& mesh, const GllBasis& basis) {
  SFG_CHECK(basis.num_points() == mesh.ngll);
  const int ngll = mesh.ngll;
  const std::size_t n = mesh.num_local_points();
  mesh.xix.assign(n, 0.0f);
  mesh.xiy.assign(n, 0.0f);
  mesh.xiz.assign(n, 0.0f);
  mesh.etax.assign(n, 0.0f);
  mesh.etay.assign(n, 0.0f);
  mesh.etaz.assign(n, 0.0f);
  mesh.gammax.assign(n, 0.0f);
  mesh.gammay.assign(n, 0.0f);
  mesh.gammaz.assign(n, 0.0f);
  mesh.jacobian.assign(n, 0.0f);

  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    for (int k = 0; k < ngll; ++k) {
      for (int j = 0; j < ngll; ++j) {
        for (int i = 0; i < ngll; ++i) {
          // d(x,y,z)/d(xi,eta,gamma) at node (i,j,k) via the derivative
          // matrix applied along each tensor direction.
          double xxi = 0, yxi = 0, zxi = 0;
          double xeta = 0, yeta = 0, zeta_ = 0;
          double xgam = 0, ygam = 0, zgam = 0;
          for (int m = 0; m < ngll; ++m) {
            const double hi = basis.hprime(i, m);
            const std::size_t pi =
                off + static_cast<std::size_t>(local_index(ngll, m, j, k));
            xxi += hi * mesh.xstore[pi];
            yxi += hi * mesh.ystore[pi];
            zxi += hi * mesh.zstore[pi];

            const double hj = basis.hprime(j, m);
            const std::size_t pj =
                off + static_cast<std::size_t>(local_index(ngll, i, m, k));
            xeta += hj * mesh.xstore[pj];
            yeta += hj * mesh.ystore[pj];
            zeta_ += hj * mesh.zstore[pj];

            const double hk = basis.hprime(k, m);
            const std::size_t pk =
                off + static_cast<std::size_t>(local_index(ngll, i, j, m));
            xgam += hk * mesh.xstore[pk];
            ygam += hk * mesh.ystore[pk];
            zgam += hk * mesh.zstore[pk];
          }

          const double det = xxi * (yeta * zgam - zeta_ * ygam) -
                             xeta * (yxi * zgam - zxi * ygam) +
                             xgam * (yxi * zeta_ - zxi * yeta);
          SFG_CHECK_MSG(det > 0.0, "inverted element ispec=" << e << " node ("
                                    << i << "," << j << "," << k << ")");
          const double inv = 1.0 / det;

          const std::size_t p =
              off + static_cast<std::size_t>(local_index(ngll, i, j, k));
          mesh.xix[p] = static_cast<float>((yeta * zgam - zeta_ * ygam) * inv);
          mesh.xiy[p] = static_cast<float>((xgam * zeta_ - xeta * zgam) * inv);
          mesh.xiz[p] = static_cast<float>((xeta * ygam - xgam * yeta) * inv);
          mesh.etax[p] = static_cast<float>((zxi * ygam - yxi * zgam) * inv);
          mesh.etay[p] = static_cast<float>((xxi * zgam - xgam * zxi) * inv);
          mesh.etaz[p] = static_cast<float>((xgam * yxi - xxi * ygam) * inv);
          mesh.gammax[p] =
              static_cast<float>((yxi * zeta_ - zxi * yeta) * inv);
          mesh.gammay[p] =
              static_cast<float>((zxi * xeta - xxi * zeta_) * inv);
          mesh.gammaz[p] =
              static_cast<float>((xxi * yeta - yxi * xeta) * inv);
          mesh.jacobian[p] = static_cast<float>(det);
        }
      }
    }
  }
}

double mesh_volume(const HexMesh& mesh, const GllBasis& basis) {
  SFG_CHECK(mesh.has_jacobians());
  const int ngll = mesh.ngll;
  double vol = 0.0;
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    for (int k = 0; k < ngll; ++k) {
      for (int j = 0; j < ngll; ++j) {
        for (int i = 0; i < ngll; ++i) {
          const std::size_t p =
              off + static_cast<std::size_t>(local_index(ngll, i, j, k));
          vol += basis.weight(i) * basis.weight(j) * basis.weight(k) *
                 static_cast<double>(mesh.jacobian[p]);
        }
      }
    }
  }
  return vol;
}

}  // namespace sfg

#include "mesh/point_matcher.hpp"

#include <cmath>

#include "common/check.hpp"

namespace sfg {

PointMatcher::PointMatcher(double tolerance) : tol_(tolerance) {
  SFG_CHECK_MSG(tolerance > 0.0, "PointMatcher tolerance must be positive");
  inv_cell_ = 1.0 / tol_;
}

PointMatcher::CellKey PointMatcher::cell_of(double x, double y,
                                            double z) const {
  return {static_cast<std::int64_t>(std::floor(x * inv_cell_)),
          static_cast<std::int64_t>(std::floor(y * inv_cell_)),
          static_cast<std::int64_t>(std::floor(z * inv_cell_))};
}

int PointMatcher::add(double x, double y, double z) {
  const CellKey center = cell_of(x, y, z);
  const double tol2 = tol_ * tol_;
  for (std::int64_t dz = -1; dz <= 1; ++dz) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const CellKey key{center.cx + dx, center.cy + dy, center.cz + dz};
        auto it = grid_.find(key);
        if (it == grid_.end()) continue;
        for (int id : it->second) {
          const double ddx = px_[static_cast<std::size_t>(id)] - x;
          const double ddy = py_[static_cast<std::size_t>(id)] - y;
          const double ddz = pz_[static_cast<std::size_t>(id)] - z;
          if (ddx * ddx + ddy * ddy + ddz * ddz <= tol2) return id;
        }
      }
    }
  }
  const int id = size();
  px_.push_back(x);
  py_.push_back(y);
  pz_.push_back(z);
  grid_[center].push_back(id);
  return id;
}

}  // namespace sfg

#include "mesh/rcm.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace sfg {

std::vector<std::vector<int>> element_adjacency(const HexMesh& mesh) {
  SFG_CHECK(mesh.numbered());
  // Invert ibool: global point -> list of touching elements.
  std::vector<std::vector<int>> touching(
      static_cast<std::size_t>(mesh.nglob));
  const int ngll3 = mesh.ngll3();
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    for (int p = 0; p < ngll3; ++p) {
      auto& lst = touching[static_cast<std::size_t>(
          mesh.ibool[off + static_cast<std::size_t>(p)])];
      if (lst.empty() || lst.back() != e) lst.push_back(e);
    }
  }
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(mesh.nspec));
  for (const auto& lst : touching) {
    for (std::size_t a = 0; a < lst.size(); ++a) {
      for (std::size_t b = a + 1; b < lst.size(); ++b) {
        adj[static_cast<std::size_t>(lst[a])].push_back(lst[b]);
        adj[static_cast<std::size_t>(lst[b])].push_back(lst[a]);
      }
    }
  }
  for (auto& neigh : adj) {
    std::sort(neigh.begin(), neigh.end());
    neigh.erase(std::unique(neigh.begin(), neigh.end()), neigh.end());
  }
  return adj;
}

std::vector<int> reverse_cuthill_mckee(
    const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  std::vector<int> degree(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    degree[static_cast<std::size_t>(v)] =
        static_cast<int>(adjacency[static_cast<std::size_t>(v)].size());

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));

  // Process every connected component, each seeded at a minimum-degree
  // unvisited vertex (the classical peripheral-node heuristic).
  for (;;) {
    int seed = -1;
    for (int v = 0; v < n; ++v) {
      if (visited[static_cast<std::size_t>(v)]) continue;
      if (seed < 0 || degree[static_cast<std::size_t>(v)] <
                          degree[static_cast<std::size_t>(seed)])
        seed = v;
    }
    if (seed < 0) break;

    std::vector<int> queue{seed};
    visited[static_cast<std::size_t>(seed)] = true;
    std::size_t head = 0;
    while (head < queue.size()) {
      const int v = queue[head++];
      order.push_back(v);
      std::vector<int> next;
      for (int w : adjacency[static_cast<std::size_t>(v)]) {
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          next.push_back(w);
        }
      }
      std::sort(next.begin(), next.end(), [&](int a, int b) {
        return degree[static_cast<std::size_t>(a)] <
               degree[static_cast<std::size_t>(b)];
      });
      queue.insert(queue.end(), next.begin(), next.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<int> multilevel_cuthill_mckee(
    const std::vector<std::vector<int>>& adjacency, int block_size) {
  SFG_CHECK(block_size >= 1);
  const std::vector<int> base = reverse_cuthill_mckee(adjacency);
  const int n = static_cast<int>(base.size());
  const int nblocks = (n + block_size - 1) / block_size;
  if (nblocks <= 1) return base;

  // Block id for each vertex under the base ordering.
  std::vector<int> block_of(static_cast<std::size_t>(n));
  for (int pos = 0; pos < n; ++pos)
    block_of[static_cast<std::size_t>(base[static_cast<std::size_t>(pos)])] =
        pos / block_size;

  // Quotient graph on blocks.
  std::vector<std::vector<int>> block_adj(
      static_cast<std::size_t>(nblocks));
  for (int v = 0; v < n; ++v) {
    for (int w : adjacency[static_cast<std::size_t>(v)]) {
      const int bv = block_of[static_cast<std::size_t>(v)];
      const int bw = block_of[static_cast<std::size_t>(w)];
      if (bv != bw) block_adj[static_cast<std::size_t>(bv)].push_back(bw);
    }
  }
  for (auto& neigh : block_adj) {
    std::sort(neigh.begin(), neigh.end());
    neigh.erase(std::unique(neigh.begin(), neigh.end()), neigh.end());
  }

  const std::vector<int> block_order = reverse_cuthill_mckee(block_adj);
  std::vector<int> block_pos(static_cast<std::size_t>(nblocks));
  for (int pos = 0; pos < nblocks; ++pos)
    block_pos[static_cast<std::size_t>(
        block_order[static_cast<std::size_t>(pos)])] = pos;

  // Emit blocks in quotient-RCM order, keeping the base order inside each.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> members(static_cast<std::size_t>(nblocks));
  for (int pos = 0; pos < n; ++pos) {
    const int v = base[static_cast<std::size_t>(pos)];
    members[static_cast<std::size_t>(pos / block_size)].push_back(v);
  }
  std::vector<int> blocks_sorted(static_cast<std::size_t>(nblocks));
  std::iota(blocks_sorted.begin(), blocks_sorted.end(), 0);
  std::sort(blocks_sorted.begin(), blocks_sorted.end(), [&](int a, int b) {
    return block_pos[static_cast<std::size_t>(a)] <
           block_pos[static_cast<std::size_t>(b)];
  });
  for (int b : blocks_sorted)
    for (int v : members[static_cast<std::size_t>(b)]) order.push_back(v);
  return order;
}

int ordering_bandwidth(const std::vector<std::vector<int>>& adjacency,
                       const std::vector<int>& order) {
  const int n = static_cast<int>(adjacency.size());
  SFG_CHECK(static_cast<int>(order.size()) == n);
  std::vector<int> pos(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p)
    pos[static_cast<std::size_t>(order[static_cast<std::size_t>(p)])] = p;
  int bw = 0;
  for (int v = 0; v < n; ++v)
    for (int w : adjacency[static_cast<std::size_t>(v)])
      bw = std::max(bw, std::abs(pos[static_cast<std::size_t>(v)] -
                                 pos[static_cast<std::size_t>(w)]));
  return bw;
}

namespace {
template <typename T, typename A>
void permute_element_array(std::vector<T, A>& arr, int nspec, int ngll3,
                           const std::vector<int>& order) {
  if (arr.empty()) return;
  std::vector<T, A> out(arr.size());
  for (int newid = 0; newid < nspec; ++newid) {
    const int oldid = order[static_cast<std::size_t>(newid)];
    std::copy_n(arr.begin() + static_cast<std::ptrdiff_t>(oldid) * ngll3,
                ngll3,
                out.begin() + static_cast<std::ptrdiff_t>(newid) * ngll3);
  }
  arr = std::move(out);
}
}  // namespace

void apply_element_permutation(HexMesh& mesh, const std::vector<int>& order) {
  SFG_CHECK(static_cast<int>(order.size()) == mesh.nspec);
  const int ngll3 = mesh.ngll3();
  permute_element_array(mesh.xstore, mesh.nspec, ngll3, order);
  permute_element_array(mesh.ystore, mesh.nspec, ngll3, order);
  permute_element_array(mesh.zstore, mesh.nspec, ngll3, order);
  permute_element_array(mesh.ibool, mesh.nspec, ngll3, order);
  permute_element_array(mesh.xix, mesh.nspec, ngll3, order);
  permute_element_array(mesh.xiy, mesh.nspec, ngll3, order);
  permute_element_array(mesh.xiz, mesh.nspec, ngll3, order);
  permute_element_array(mesh.etax, mesh.nspec, ngll3, order);
  permute_element_array(mesh.etay, mesh.nspec, ngll3, order);
  permute_element_array(mesh.etaz, mesh.nspec, ngll3, order);
  permute_element_array(mesh.gammax, mesh.nspec, ngll3, order);
  permute_element_array(mesh.gammay, mesh.nspec, ngll3, order);
  permute_element_array(mesh.gammaz, mesh.nspec, ngll3, order);
  permute_element_array(mesh.jacobian, mesh.nspec, ngll3, order);
}

}  // namespace sfg

#include "mesh/numbering.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "mesh/point_matcher.hpp"

namespace sfg {

double min_gll_spacing(const HexMesh& mesh) {
  const int ngll = mesh.ngll;
  double best = std::numeric_limits<double>::max();
  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = mesh.xstore[a] - mesh.xstore[b];
    const double dy = mesh.ystore[a] - mesh.ystore[b];
    const double dz = mesh.zstore[a] - mesh.zstore[b];
    return std::sqrt(dx * dx + dy * dy + dz * dz);
  };
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    for (int k = 0; k < ngll; ++k) {
      for (int j = 0; j < ngll; ++j) {
        for (int i = 0; i < ngll; ++i) {
          const std::size_t p =
              off + static_cast<std::size_t>(local_index(ngll, i, j, k));
          if (i + 1 < ngll)
            best = std::min(
                best,
                dist(p, off + static_cast<std::size_t>(
                               local_index(ngll, i + 1, j, k))));
          if (j + 1 < ngll)
            best = std::min(
                best,
                dist(p, off + static_cast<std::size_t>(
                               local_index(ngll, i, j + 1, k))));
          if (k + 1 < ngll)
            best = std::min(
                best,
                dist(p, off + static_cast<std::size_t>(
                               local_index(ngll, i, j, k + 1))));
        }
      }
    }
  }
  return best;
}

int build_global_numbering(HexMesh& mesh, double tolerance) {
  SFG_CHECK_MSG(mesh.nspec > 0, "mesh has no elements");
  if (tolerance <= 0.0) {
    tolerance = 1e-5 * min_gll_spacing(mesh);
    SFG_CHECK_MSG(tolerance > 0.0, "degenerate mesh: zero GLL spacing");
  }
  PointMatcher matcher(tolerance);
  const std::size_t n = mesh.num_local_points();
  mesh.ibool.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    mesh.ibool[p] = matcher.add(mesh.xstore[p], mesh.ystore[p],
                                mesh.zstore[p]);
  }
  mesh.nglob = matcher.size();
  return mesh.nglob;
}

void renumber_global_points_by_first_touch(HexMesh& mesh) {
  SFG_CHECK(mesh.numbered());
  std::vector<int> new_id(static_cast<std::size_t>(mesh.nglob), -1);
  int next = 0;
  for (int& g : mesh.ibool) {
    int& m = new_id[static_cast<std::size_t>(g)];
    if (m < 0) m = next++;
    g = m;
  }
  SFG_CHECK(next == mesh.nglob);
}

double average_global_stride(const HexMesh& mesh) {
  SFG_CHECK(mesh.numbered());
  if (mesh.ibool.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t p = 0; p + 1 < mesh.ibool.size(); ++p) {
    sum += std::abs(static_cast<double>(mesh.ibool[p + 1]) -
                    static_cast<double>(mesh.ibool[p]));
  }
  return sum / static_cast<double>(mesh.ibool.size() - 1);
}

GlobalCoordinates global_coordinates(const HexMesh& mesh) {
  SFG_CHECK(mesh.numbered());
  GlobalCoordinates g;
  g.x.assign(static_cast<std::size_t>(mesh.nglob), 0.0);
  g.y.assign(static_cast<std::size_t>(mesh.nglob), 0.0);
  g.z.assign(static_cast<std::size_t>(mesh.nglob), 0.0);
  for (std::size_t p = 0; p < mesh.num_local_points(); ++p) {
    const auto gi = static_cast<std::size_t>(mesh.ibool[p]);
    g.x[gi] = mesh.xstore[p];
    g.y[gi] = mesh.ystore[p];
    g.z[gi] = mesh.zstore[p];
  }
  return g;
}

}  // namespace sfg

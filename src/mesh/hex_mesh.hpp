#pragma once

/// \file hex_mesh.hpp
/// The unstructured spectral-element hexahedral mesh container shared by
/// every mesh builder (Cartesian test boxes and the cubed-sphere global
/// mesher) and consumed by the solver.
///
/// Layout follows SPECFEM3D_GLOBE: per-element local GLL point arrays
/// indexed [ispec][k][j][i] with i fastest, an `ibool` indirection from
/// local points to global degrees of freedom, and per-point inverse-mapping
/// derivative tables (xix..gammaz) plus the Jacobian determinant stored in
/// single precision for the solver's force kernels.

#include <cstddef>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"

namespace sfg {

/// Local point index within an element: i fastest, then j, then k.
inline int local_index(int ngll, int i, int j, int k) {
  return (k * ngll + j) * ngll + i;
}

/// Unstructured conforming hexahedral spectral-element mesh.
///
/// Builders fill `ngll`, `nspec` and the local coordinate arrays, then call
/// build_global_numbering() and compute_jacobian_tables() (see
/// numbering.hpp / jacobian.hpp) to derive the rest.
struct HexMesh {
  int ngll = 0;   ///< GLL points per edge (degree + 1)
  int nspec = 0;  ///< number of spectral elements
  int nglob = 0;  ///< number of distinct global points (0 until numbered)

  /// Local GLL point coordinates, size nspec * ngll^3 each (double: mesh
  /// geometry is computed in float64 even though the solver runs float32).
  aligned_vector<double> xstore, ystore, zstore;

  /// Local -> global point map, size nspec * ngll^3, values in [0, nglob).
  std::vector<int> ibool;

  /// Inverse mapping derivatives d(xi,eta,gamma)/d(x,y,z) and Jacobian
  /// determinant at each local point, size nspec * ngll^3 each.
  aligned_vector<float> xix, xiy, xiz;
  aligned_vector<float> etax, etay, etaz;
  aligned_vector<float> gammax, gammay, gammaz;
  aligned_vector<float> jacobian;

  int ngll3() const { return ngll * ngll * ngll; }
  std::size_t num_local_points() const {
    return static_cast<std::size_t>(nspec) * static_cast<std::size_t>(ngll3());
  }
  std::size_t local_offset(int ispec) const {
    SFG_ASSERT(ispec >= 0 && ispec < nspec);
    return static_cast<std::size_t>(ispec) * static_cast<std::size_t>(ngll3());
  }

  /// Allocate the coordinate arrays for `nspec` elements of order `ngll`.
  void allocate_points(int ngll_in, int nspec_in) {
    SFG_CHECK(ngll_in >= 2 && nspec_in >= 0);
    ngll = ngll_in;
    nspec = nspec_in;
    const std::size_t n = num_local_points();
    xstore.assign(n, 0.0);
    ystore.assign(n, 0.0);
    zstore.assign(n, 0.0);
  }

  /// True once global numbering has been built.
  bool numbered() const { return nglob > 0 && !ibool.empty(); }
  /// True once Jacobian tables have been computed.
  bool has_jacobians() const { return !jacobian.empty(); }
};

/// Coordinates of global point `iglob` obtained from any local copy.
/// Requires numbering. O(1) via a representative local point table built
/// on demand is not kept here; callers needing all global coordinates use
/// global_coordinates() below.
struct GlobalCoordinates {
  std::vector<double> x, y, z;  ///< size nglob each
};

/// Gather one representative coordinate per global point.
GlobalCoordinates global_coordinates(const HexMesh& mesh);

}  // namespace sfg

#pragma once

/// \file cartesian.hpp
/// Structured Cartesian box mesh builder.
///
/// Not part of the global Earth mesher, but the workhorse of the validation
/// suite: plane-wave convergence, energy conservation, attenuation decay,
/// fluid-solid coupling and kernel-equivalence tests all run on boxes where
/// analytic solutions exist.

#include <functional>

#include "mesh/hex_mesh.hpp"
#include "quadrature/gll.hpp"

namespace sfg {

struct CartesianBoxSpec {
  int nx = 1, ny = 1, nz = 1;        ///< elements per direction
  double lx = 1.0, ly = 1.0, lz = 1.0;  ///< box extents
  double x0 = 0.0, y0 = 0.0, z0 = 0.0;  ///< origin corner
  /// Optional smooth coordinate deformation applied to every GLL point,
  /// used to create curved-element test meshes.
  std::function<void(double&, double&, double&)> deform;
};

/// Build a conforming box mesh: fills coordinates, global numbering and
/// Jacobian tables. Element order is k-major (z slowest), then j, then i.
HexMesh build_cartesian_box(const CartesianBoxSpec& spec,
                            const GllBasis& basis);

/// A mesh slice of a domain-decomposed box, plus the cross-rank-consistent
/// integer keys of its inter-slice boundary points (input for
/// smpi::Exchanger discovery; see runtime/exchanger.hpp).
struct CartesianSlice {
  HexMesh mesh;
  /// Parallel arrays: boundary point keys and the local global-point ids
  /// they refer to.
  std::vector<std::int64_t> boundary_keys;
  std::vector<int> boundary_points;
};

/// Decompose `spec` over a px x py x pz process grid and build the slice
/// for process coordinates (rx, ry, rz). Elements per direction must
/// divide evenly. Keys are derived from the global GLL lattice, so they
/// match exactly across ranks.
CartesianSlice build_cartesian_slice(const CartesianBoxSpec& spec,
                                     const GllBasis& basis, int px, int py,
                                     int pz, int rx, int ry, int rz);

}  // namespace sfg

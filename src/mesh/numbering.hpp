#pragma once

/// \file numbering.hpp
/// Local -> global numbering (the `ibool` table) and global-point
/// renumbering for cache locality (paper §4.2).

#include "mesh/hex_mesh.hpp"

namespace sfg {

/// Build mesh.ibool / mesh.nglob by deduplicating local GLL coordinates
/// with the given absolute tolerance. Returns the number of global points.
///
/// If `tolerance` <= 0 a tolerance is derived automatically as 1e-5 times
/// the smallest adjacent-GLL-point distance in the mesh.
int build_global_numbering(HexMesh& mesh, double tolerance = 0.0);

/// Renumber global points in order of first appearance when walking
/// elements in their current order (SPECFEM's locality renumbering: global
/// array strides become small for the common points of consecutive
/// elements). Requires numbering; preserves nglob.
void renumber_global_points_by_first_touch(HexMesh& mesh);

/// Smallest distance between adjacent GLL points of any element edge.
/// Used for tolerance derivation and for the Courant estimate.
double min_gll_spacing(const HexMesh& mesh);

/// Average memory stride |ibool(p+1) - ibool(p)| along the element-major
/// walk — the locality figure of merit the Cuthill-McKee sorting of §4.2
/// optimizes.
double average_global_stride(const HexMesh& mesh);

}  // namespace sfg

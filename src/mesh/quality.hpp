#pragma once

/// \file quality.hpp
/// Mesh resolution and stability analysis (paper §3): the grid spacing is
/// set by >= 5 GLL points per shortest wavelength and the explicit Newmark
/// scheme is conditionally stable with a Courant bound on the time step.

#include <vector>

#include "common/aligned.hpp"
#include "mesh/hex_mesh.hpp"
#include "quadrature/gll.hpp"

namespace sfg {

struct MeshQualityReport {
  double min_gll_spacing = 0.0;   ///< smallest adjacent GLL point distance
  double max_gll_spacing = 0.0;   ///< largest adjacent GLL point distance
  double dt_stable = 0.0;         ///< Courant-stable time step estimate
  double shortest_period = 0.0;   ///< shortest accurately resolved period
  double courant_number = 0.0;    ///< Courant factor used for dt_stable
};

/// Analyze resolution and stability given per-local-point P- and S-wave
/// speeds (vs entries of 0 mark fluid points, where vp governs both).
///
/// dt_stable = courant * min(spacing / vp); shortest_period is derived from
/// the "5 points per wavelength" rule using the *largest* GLL spacing and
/// the slowest wave speed present (min of vs>0 else vp).
MeshQualityReport analyze_mesh_quality(const HexMesh& mesh,
                                       const aligned_vector<float>& vp,
                                       const aligned_vector<float>& vs,
                                       double courant = 0.4);

/// Per-element Courant-stable time step: the same `courant * min(spacing /
/// vp)` bound analyze_mesh_quality takes the global minimum of, restricted
/// to each element's own adjacent GLL pairs. Feeds the clustered-LTS level
/// bucketing (cluster_levels_from_dt), where cluster k marches at
/// `2^k * dt_min`.
std::vector<double> element_stable_dt(const HexMesh& mesh,
                                      const aligned_vector<float>& vp,
                                      double courant = 0.4);

}  // namespace sfg

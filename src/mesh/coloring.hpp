#pragma once

/// \file coloring.hpp
/// Greedy element coloring on the shared-GLL-point adjacency (the same
/// graph §4.2's Cuthill-McKee sorting runs on): two elements get different
/// colors whenever they share a global point, so the nodal force scatter of
/// all elements within one color is race-free and a color can be dispatched
/// across threads without atomics.
///
/// Coloring composes with the RCM / multilevel element order: vertices are
/// colored in a caller-supplied processing order and batches preserve that
/// relative order, so the cache-blocking benefits of §4.2 survive inside
/// each color.

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "mesh/hex_mesh.hpp"

namespace sfg {

/// Greedy first-fit coloring of an undirected graph given as adjacency
/// lists. Vertices are assigned the smallest color unused by their already
/// colored neighbours, visiting them in `order` (a permutation of all
/// vertices; pass an RCM order to keep neighbouring elements in few,
/// contiguous colors). Returns color_of[vertex] in [0, num_colors).
std::vector<int> greedy_element_coloring(
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<int>& order);

/// Number of distinct colors in a coloring (max + 1; 0 when empty).
int num_colors(const std::vector<int>& color_of);

/// Bucket a subset of elements (in processing order) by color: returns one
/// batch per color that actually occurs, ordered by ascending color, each
/// preserving the relative order of `elements`. Empty colors produce no
/// batch.
std::vector<std::vector<int>> color_batches(const std::vector<int>& elements,
                                            const std::vector<int>& color_of);

/// True when no two elements of the same color share a global point — the
/// property that makes the within-color force scatter race-free.
bool coloring_is_valid(const HexMesh& mesh,
                       const std::vector<int>& color_of);

// ---- locality-aware threaded schedule (second-level pass, ISSUE 4) ----
//
// Plain color batches are race-free but cache-hostile: within one color no
// two elements share a GLL point, so consecutive elements reuse nothing of
// the freshly gathered/scattered global values (~25% single-thread penalty
// recorded for PR 1). The second-level pass rebuilds the schedule as
// INTERLEAVED COLOR PAIRS: elements of color c are cut into per-slot
// cache blocks ordered by RCM proximity, and each element of color c+1
// whose point-sharing neighbours all fall inside one block is placed in
// that block's work unit RIGHT AFTER its neighbours — it reuses their
// just-scattered points while the unit stays sequential. Elements of
// color c+1 whose neighbours straddle two blocks are demoted to a
// RESIDUAL round that runs after the pair round's barrier.
//
// With a SINGLE slot (num_slots == 1) there is no concurrency to protect,
// so the pass instead emits the globally best order: a greedy proximity
// traversal (Kahn's algorithm over the per-point lower-color-first
// constraint DAG, min-heap keyed by RCM rank) — the closest order to the
// legacy sequential RCM traversal that still satisfies invariant 3 below,
// i.e. that stays bit-identical with every threaded run.
//
// Invariants, proven at build time and re-checkable with
// check_element_schedule:
//  1. every element of the input list is scheduled exactly once;
//  2. work units of one round have pairwise-disjoint GLL point
//     footprints (concurrent execution is race-free without atomics);
//  3. at every global point, scheduled contributions arrive in strictly
//     ascending color order — the same per-point summation order as the
//     plain color batches, which is what makes every schedule variant and
//     every slot/thread count BIT-IDENTICAL to the others.

/// Round tags stored in ThreadPool::WorkRound::tag.
enum ScheduleRoundTag : int {
  kSchedRoundPlain = 0,     ///< single color (odd tail / plain mode)
  kSchedRoundPaired = 1,    ///< interleaved color pair
  kSchedRoundResidual = 2,  ///< demoted straddlers of the upper color
};

struct ScheduleOptions {
  /// Concurrent work-unit slots per round. Usually the thread count;
  /// results are bit-identical across slot counts (invariant 3).
  int num_slots = 1;
  /// Interleave color pairs (the locality pass). false = plain batches
  /// expressed as a schedule (one color per round, contiguous splits).
  bool interleave_pairs = true;
  /// Cache-block granularity: slot cuts of the lower color land on
  /// multiples of this many elements when balance allows (the §4.2
  /// multilevel blocks; 50-100 elements fit L2).
  int block_size = 64;
  /// Optional proximity ranking (size nspec): elements within one color
  /// are ordered by ascending rank (pass an RCM position to restore §4.2
  /// locality inside colors). Empty keeps the input order.
  std::vector<int> proximity_rank;
  /// TEST ONLY: skip the straddler demotion, assigning every upper-color
  /// element to the block of its first neighbour even when its footprint
  /// spans several blocks. This deliberately VIOLATES invariant 2; the
  /// property harness uses it to prove the checker catches a broken
  /// builder. Never set in production code.
  bool unsafe_skip_straddler_demotion = false;
  /// SIMD batch width for the Batched kernel variant (ISSUE 6): when > 1,
  /// a post-pass groups each work unit's items into contiguous batches of
  /// at most this many same-color elements (batch invariant B below) and
  /// records the cuts in ElementSchedule::batch_cut. 1 = no batching.
  int batch_lanes = 1;
  /// TEST ONLY: let a batch run across a color boundary inside a unit.
  /// Point-sharing neighbours always carry different colors, so this
  /// deliberately VIOLATES batch invariant B (disjoint lane footprints);
  /// the property harness uses it to prove check_element_schedule rejects
  /// a straddling batch. Never set in production code.
  bool unsafe_batch_across_colors = false;
};

/// A built schedule: `work` units index into the flat `items` element
/// list. Execute with ThreadPool::parallel_for_schedule (or inline, round
/// by round, unit by unit — same results by invariant 3).
struct ElementSchedule {
  std::vector<int> items;          ///< flattened element ids
  ThreadPool::WorkSchedule work;   ///< rounds of per-slot ranges in items
  int num_slots = 0;
  int residual_elements = 0;       ///< demoted to residual rounds
  /// SIMD element batches (filled when ScheduleOptions::batch_lanes > 1):
  /// batch b is items[batch_cut[b], batch_cut[b+1]), never larger than
  /// batch_lanes, never crossing a work-unit boundary, and — batch
  /// invariant B — all lanes share one color, so by the coloring property
  /// their GLL point footprints are pairwise disjoint and the lanes can be
  /// packed/scattered as one SoA block. Invariants 1-3 are untouched: the
  /// batch pass only permutes items WITHIN a unit (stable color grouping),
  /// which preserves the per-point ascending-color order.
  std::vector<std::size_t> batch_cut;
  int batch_lanes = 1;
  bool empty() const { return items.empty(); }
};

/// Build the locality-aware schedule for `elements` (any subset of the
/// mesh, in processing order) under a coloring of the whole mesh.
ElementSchedule build_element_schedule(const HexMesh& mesh,
                                       const std::vector<int>& elements,
                                       const std::vector<int>& color_of,
                                       const ScheduleOptions& opts);

/// Verify the three schedule invariants above against the mesh — plus,
/// for batched schedules (batch_lanes > 1), that the batch cuts tile the
/// item list inside unit boundaries and that every batch's lanes have
/// pairwise-disjoint point footprints and a single color (invariant B).
/// Returns an empty string when the schedule is sound, else a description
/// of the first violation. Used at schedule-build time (SFG_CHECK) and by
/// the property-test harness.
std::string check_element_schedule(const HexMesh& mesh,
                                   const std::vector<int>& elements,
                                   const std::vector<int>& color_of,
                                   const ElementSchedule& schedule);

}  // namespace sfg

#pragma once

/// \file coloring.hpp
/// Greedy element coloring on the shared-GLL-point adjacency (the same
/// graph §4.2's Cuthill-McKee sorting runs on): two elements get different
/// colors whenever they share a global point, so the nodal force scatter of
/// all elements within one color is race-free and a color can be dispatched
/// across threads without atomics.
///
/// Coloring composes with the RCM / multilevel element order: vertices are
/// colored in a caller-supplied processing order and batches preserve that
/// relative order, so the cache-blocking benefits of §4.2 survive inside
/// each color.

#include <vector>

#include "mesh/hex_mesh.hpp"

namespace sfg {

/// Greedy first-fit coloring of an undirected graph given as adjacency
/// lists. Vertices are assigned the smallest color unused by their already
/// colored neighbours, visiting them in `order` (a permutation of all
/// vertices; pass an RCM order to keep neighbouring elements in few,
/// contiguous colors). Returns color_of[vertex] in [0, num_colors).
std::vector<int> greedy_element_coloring(
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<int>& order);

/// Number of distinct colors in a coloring (max + 1; 0 when empty).
int num_colors(const std::vector<int>& color_of);

/// Bucket a subset of elements (in processing order) by color: returns one
/// batch per color that actually occurs, ordered by ascending color, each
/// preserving the relative order of `elements`. Empty colors produce no
/// batch.
std::vector<std::vector<int>> color_batches(const std::vector<int>& elements,
                                            const std::vector<int>& color_of);

/// True when no two elements of the same color share a global point — the
/// property that makes the within-color force scatter race-free.
bool coloring_is_valid(const HexMesh& mesh,
                       const std::vector<int>& color_of);

}  // namespace sfg

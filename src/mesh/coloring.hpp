#pragma once

/// \file coloring.hpp
/// Greedy element coloring on the shared-GLL-point adjacency (the same
/// graph §4.2's Cuthill-McKee sorting runs on): two elements get different
/// colors whenever they share a global point, so the nodal force scatter of
/// all elements within one color is race-free and a color can be dispatched
/// across threads without atomics.
///
/// Coloring composes with the RCM / multilevel element order: vertices are
/// colored in a caller-supplied processing order and batches preserve that
/// relative order, so the cache-blocking benefits of §4.2 survive inside
/// each color.

#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "mesh/hex_mesh.hpp"

namespace sfg {

/// Greedy first-fit coloring of an undirected graph given as adjacency
/// lists. Vertices are assigned the smallest color unused by their already
/// colored neighbours, visiting them in `order` (a permutation of all
/// vertices; pass an RCM order to keep neighbouring elements in few,
/// contiguous colors). Returns color_of[vertex] in [0, num_colors).
std::vector<int> greedy_element_coloring(
    const std::vector<std::vector<int>>& adjacency,
    const std::vector<int>& order);

/// Number of distinct colors in a coloring (max + 1; 0 when empty).
int num_colors(const std::vector<int>& color_of);

/// Bucket a subset of elements (in processing order) by color: returns one
/// batch per color that actually occurs, ordered by ascending color, each
/// preserving the relative order of `elements`. Empty colors produce no
/// batch.
std::vector<std::vector<int>> color_batches(const std::vector<int>& elements,
                                            const std::vector<int>& color_of);

/// True when no two elements of the same color share a global point — the
/// property that makes the within-color force scatter race-free.
bool coloring_is_valid(const HexMesh& mesh,
                       const std::vector<int>& color_of);

// ---- locality-aware threaded schedule (second-level pass, ISSUE 4) ----
//
// Plain color batches are race-free but cache-hostile: within one color no
// two elements share a GLL point, so consecutive elements reuse nothing of
// the freshly gathered/scattered global values (~25% single-thread penalty
// recorded for PR 1). The second-level pass rebuilds the schedule as
// INTERLEAVED COLOR PAIRS: elements of color c are cut into per-slot
// cache blocks ordered by RCM proximity, and each element of color c+1
// whose point-sharing neighbours all fall inside one block is placed in
// that block's work unit RIGHT AFTER its neighbours — it reuses their
// just-scattered points while the unit stays sequential. Elements of
// color c+1 whose neighbours straddle two blocks are demoted to a
// RESIDUAL round that runs after the pair round's barrier.
//
// With a SINGLE slot (num_slots == 1) there is no concurrency to protect,
// so the pass instead emits the globally best order: a greedy proximity
// traversal (Kahn's algorithm over the per-point lower-color-first
// constraint DAG, min-heap keyed by RCM rank) — the closest order to the
// legacy sequential RCM traversal that still satisfies invariant 3 below,
// i.e. that stays bit-identical with every threaded run.
//
// Invariants, proven at build time and re-checkable with
// check_element_schedule:
//  1. every element of the input list is scheduled exactly once;
//  2. work units of one round have pairwise-disjoint GLL point
//     footprints (concurrent execution is race-free without atomics);
//  3. at every global point, scheduled contributions arrive in strictly
//     ascending color order — the same per-point summation order as the
//     plain color batches, which is what makes every schedule variant and
//     every slot/thread count BIT-IDENTICAL to the others.

/// Round tags stored in ThreadPool::WorkRound::tag.
enum ScheduleRoundTag : int {
  kSchedRoundPlain = 0,     ///< single color (odd tail / plain mode)
  kSchedRoundPaired = 1,    ///< interleaved color pair
  kSchedRoundResidual = 2,  ///< demoted straddlers of the upper color
};

struct ScheduleOptions {
  /// Concurrent work-unit slots per round. Usually the thread count;
  /// results are bit-identical across slot counts (invariant 3).
  int num_slots = 1;
  /// Interleave color pairs (the locality pass). false = plain batches
  /// expressed as a schedule (one color per round, contiguous splits).
  bool interleave_pairs = true;
  /// Cache-block granularity: slot cuts of the lower color land on
  /// multiples of this many elements when balance allows (the §4.2
  /// multilevel blocks; 50-100 elements fit L2).
  int block_size = 64;
  /// Optional proximity ranking (size nspec): elements within one color
  /// are ordered by ascending rank (pass an RCM position to restore §4.2
  /// locality inside colors). Empty keeps the input order.
  std::vector<int> proximity_rank;
  /// TEST ONLY: skip the straddler demotion, assigning every upper-color
  /// element to the block of its first neighbour even when its footprint
  /// spans several blocks. This deliberately VIOLATES invariant 2; the
  /// property harness uses it to prove the checker catches a broken
  /// builder. Never set in production code.
  bool unsafe_skip_straddler_demotion = false;
  /// SIMD batch width for the Batched kernel variant (ISSUE 6): when > 1,
  /// a post-pass groups each work unit's items into contiguous batches of
  /// at most this many same-color elements (batch invariant B below) and
  /// records the cuts in ElementSchedule::batch_cut. 1 = no batching.
  int batch_lanes = 1;
  /// TEST ONLY: let a batch run across a color boundary inside a unit.
  /// Point-sharing neighbours always carry different colors, so this
  /// deliberately VIOLATES batch invariant B (disjoint lane footprints);
  /// the property harness uses it to prove check_element_schedule rejects
  /// a straddling batch. Never set in production code.
  bool unsafe_batch_across_colors = false;
};

/// A built schedule: `work` units index into the flat `items` element
/// list. Execute with ThreadPool::parallel_for_schedule (or inline, round
/// by round, unit by unit — same results by invariant 3).
struct ElementSchedule {
  std::vector<int> items;          ///< flattened element ids
  ThreadPool::WorkSchedule work;   ///< rounds of per-slot ranges in items
  int num_slots = 0;
  int residual_elements = 0;       ///< demoted to residual rounds
  /// SIMD element batches (filled when ScheduleOptions::batch_lanes > 1):
  /// batch b is items[batch_cut[b], batch_cut[b+1]), never larger than
  /// batch_lanes, never crossing a work-unit boundary, and — batch
  /// invariant B — all lanes share one color, so by the coloring property
  /// their GLL point footprints are pairwise disjoint and the lanes can be
  /// packed/scattered as one SoA block. Invariants 1-3 are untouched: the
  /// batch pass only permutes items WITHIN a unit (stable color grouping),
  /// which preserves the per-point ascending-color order.
  std::vector<std::size_t> batch_cut;
  int batch_lanes = 1;
  bool empty() const { return items.empty(); }
};

/// Build the locality-aware schedule for `elements` (any subset of the
/// mesh, in processing order) under a coloring of the whole mesh.
ElementSchedule build_element_schedule(const HexMesh& mesh,
                                       const std::vector<int>& elements,
                                       const std::vector<int>& color_of,
                                       const ScheduleOptions& opts);

/// Verify the three schedule invariants above against the mesh — plus,
/// for batched schedules (batch_lanes > 1), that the batch cuts tile the
/// item list inside unit boundaries and that every batch's lanes have
/// pairwise-disjoint point footprints and a single color (invariant B).
/// Returns an empty string when the schedule is sound, else a description
/// of the first violation. Used at schedule-build time (SFG_CHECK) and by
/// the property-test harness.
std::string check_element_schedule(const HexMesh& mesh,
                                   const std::vector<int>& elements,
                                   const std::vector<int>& color_of,
                                   const ElementSchedule& schedule);

// ---- clustered local time stepping (third-level pass, ISSUE 7) ----
//
// Rate-2 clustered LTS (Breuer & Heinecke): elements are bucketed into dt
// clusters from the per-element stable-dt estimate; cluster k marches at
// `2^k * dt_min`, so a fast crustal region no longer pins the whole mesh
// to its Courant bound. A cluster round is just another schedule level:
// within each round the existing color/interleave/batch machinery runs
// unchanged, one ElementSchedule per marching rate.
//
// Vocabulary:
//  * LEVEL of an element: floor(log2(dt_e / dt_min)), clamped to
//    [0, max_levels), then rate-2 smoothed so neighbouring levels differ
//    by at most one across any shared GLL point.
//  * LEVEL of a point: min level over all touching elements (with MPI the
//    caller min-exchanges this across ranks). A point of level L is "due"
//    — its Newmark update fires — every 2^L base substeps.
//  * RATE of an element: min point level over its own points. An element
//    must be evaluated whenever any of its points is due, so it marches
//    at the rate of its fastest point; by smoothing, rate ∈ {level-1,
//    level}.
//  * INTERFACE points: points gathered mid-stride by a faster-marching
//    toucher. Their displacement must be served by time interpolation
//    from the stride-start state instead of the (not yet advanced)
//    Newmark value.
//
// Cluster invariants, proven at build time (check_cluster_schedule +
// check_cluster_interfaces) and by the property harness:
//  C-A. the rate buckets tile the input element list exactly once, and
//       every bucket is pure: each element's bucket rate equals its
//       partition rate (min point level) — no cross-cluster merges and
//       no mutated assignments;
//  C-B. each bucket's ElementSchedule satisfies invariants 1-3 (and B)
//       above — the per-rate rounds are race-free and bit-stable;
//  C-C. levels are rate-2 smoothed: every element's level exceeds the
//       level of any of its points by at most one;
//  C-D (invariant C of the issue): over one full fast round of
//       2^(num_levels-1) substeps, every point receives a contribution
//       from EVERY touching element exactly once per due substep, and
//       any point gathered at a substep where it is NOT due is in the
//       interface interpolation set — i.e. it is served by a correctly-
//       interpolated displacement from its slower cluster.

/// TEST ONLY injection teeth for the cluster builders — each deliberately
/// breaks one cluster invariant so the property harness can prove the
/// checkers catch that builder-bug class. Never set in production code.
struct ClusterOptions {
  /// Bucket elements by their raw LEVEL instead of their marching RATE:
  /// elements demoted by a faster neighbouring point march too slowly and
  /// miss due substeps (mutated cluster assignment; violates C-A/C-D).
  bool unsafe_rate_from_own_level = false;
  /// Drop every point from the interface interpolation set: mid-stride
  /// gathers read stale un-interpolated displacement (violates C-D).
  bool unsafe_drop_interp_points = false;
  /// Merge the two slowest rate buckets into one marching at the faster
  /// rate (cross-cluster footprint merge; violates C-A).
  bool unsafe_merge_slowest_rates = false;
};

/// The cluster partition of one rank's mesh.
struct ClusterPartition {
  int num_levels = 1;            ///< cluster count (max level + 1)
  std::vector<int> level_of;     ///< per element, rate-2 smoothed
  std::vector<int> point_level;  ///< per global point: min toucher level
  std::vector<int> rate_of;      ///< per element: min point level
};

/// Bucket per-element stable dt estimates into LTS levels relative to the
/// base step dt_min: level = clamp(floor(log2(dt_e / dt_min)), 0,
/// max_levels - 1). Not yet smoothed.
std::vector<int> cluster_levels_from_dt(const std::vector<double>& element_dt,
                                        double dt_min, int max_levels);

/// Per-point min level over all local touching elements.
std::vector<int> cluster_point_levels(const HexMesh& mesh,
                                      const std::vector<int>& level_of);

/// One rate-2 smoothing sweep: clamp every element's level to (min level
/// over its points) + 1. `point_level` may already include remote minima
/// (min-exchanged). Returns the number of elements lowered; iterate to a
/// fixed point (with MPI, re-exchange point levels between sweeps).
int clamp_cluster_levels(const HexMesh& mesh,
                         const std::vector<int>& point_level,
                         std::vector<int>& level_of);

/// Derive rate_of / point_level from externally smoothed levels (the MPI
/// path: point_level already carries remote minima). num_levels is the
/// LOCAL max level + 1; the caller may widen it to the global count.
ClusterPartition finalize_cluster_partition(const HexMesh& mesh,
                                            std::vector<int> level_of,
                                            std::vector<int> point_level);

/// Serial convenience: smooth `level_of` to a fixed point on this rank
/// alone, then finalize.
ClusterPartition build_cluster_partition(const HexMesh& mesh,
                                         std::vector<int> level_of);

/// Per-point min marching RATE over all local touching elements (the
/// caller min-exchanges this across ranks; kNoTouchingRate where no
/// element touches the point).
std::vector<int> cluster_point_min_rate(const HexMesh& mesh,
                                        const std::vector<int>& rate_of);
constexpr int kNoTouchingRate = 1 << 20;

/// Cluster-interface interpolation set: the points whose displacement must
/// be time-interpolated mid-stride, with their levels. A point qualifies
/// iff its level L > 0 and some toucher (on any rank — hence the
/// min-exchanged `point_min_rate`) marches at a rate below L. Points are
/// ascending.
struct InterfaceSet {
  std::vector<int> points;
  std::vector<int> level;
};
InterfaceSet cluster_interface_points(const HexMesh& mesh,
                                      const std::vector<int>& point_level,
                                      const std::vector<int>& point_min_rate,
                                      const ClusterOptions& copts = {});

/// A built cluster schedule for one element subset: one ElementSchedule
/// per occupied marching rate, ascending. Rate r's schedule runs on the
/// substeps where (n+1) is a multiple of 2^r.
struct ClusterSchedule {
  std::vector<int> rates;                     ///< ascending, distinct
  std::vector<std::vector<int>> rate_elements;
  std::vector<ElementSchedule> rate_sched;
  bool empty() const { return rates.empty(); }
};

/// Bucket `elements` by marching rate and build one locality-aware
/// ElementSchedule per bucket (same opts as build_element_schedule — the
/// color/interleave/batch machinery runs unchanged within each cluster
/// round).
ClusterSchedule build_cluster_schedule(const HexMesh& mesh,
                                       const std::vector<int>& elements,
                                       const std::vector<int>& color_of,
                                       const ClusterPartition& part,
                                       const ScheduleOptions& opts,
                                       const ClusterOptions& copts = {});

/// Verify cluster invariants C-A, C-B and C-C against the mesh: bucket
/// tiling + purity, per-rate schedule soundness (check_element_schedule on
/// every bucket), rate/level/point-level consistency and rate-2 smoothing.
/// Empty string when sound, else the first violation.
std::string check_cluster_schedule(const HexMesh& mesh,
                                   const std::vector<int>& elements,
                                   const std::vector<int>& color_of,
                                   const ClusterPartition& part,
                                   const ClusterSchedule& cs);

/// Verify cluster invariant C-D by simulating one full fast round of
/// 2^(num_levels-1) substeps: every point must collect a contribution from
/// every touching element of `elements` exactly once per due substep, and
/// every point gathered mid-stride (at a non-due substep) must be in the
/// interpolation set. `iset` may be a superset of the locally-derivable
/// interface points (remote fast touchers). Empty string when sound.
std::string check_cluster_interfaces(const HexMesh& mesh,
                                     const std::vector<int>& elements,
                                     const ClusterPartition& part,
                                     const InterfaceSet& iset);

}  // namespace sfg

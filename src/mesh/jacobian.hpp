#pragma once

/// \file jacobian.hpp
/// Per-GLL-point Jacobian tables of the isoparametric element mapping
/// (paper §2.2): derivatives of the reference coordinates (xi, eta, gamma)
/// with respect to physical coordinates, and the Jacobian determinant.
///
/// The mapping x(xi,eta,gamma) is represented by its values at the GLL
/// points (degree-N geometry), so d x / d xi is computed exactly for the
/// interpolant with the Lagrange derivative matrix — the same machinery the
/// solver uses on fields.

#include "mesh/hex_mesh.hpp"
#include "quadrature/gll.hpp"

namespace sfg {

/// Fill mesh.xix .. mesh.gammaz and mesh.jacobian from the local
/// coordinate arrays. Fails if any element is inverted (non-positive
/// Jacobian determinant).
void compute_jacobian_tables(HexMesh& mesh, const GllBasis& basis);

/// Total mesh volume by GLL quadrature: sum of w_i w_j w_k |J|. Exact for
/// affine elements; spectrally accurate for curved ones. Used by tests
/// (e.g. spherical-shell volume vs 4/3 pi (r2^3 - r1^3)).
double mesh_volume(const HexMesh& mesh, const GllBasis& basis);

}  // namespace sfg

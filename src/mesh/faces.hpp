#pragma once

/// \file faces.hpp
/// Element-face enumeration and surface quadrature data, used for
/// absorbing boundaries (regional mode), the free-surface check, and the
/// fluid-solid coupling surfaces at the CMB/ICB (paper §3).
///
/// Faces are numbered 0..5: {xi=-1, xi=+1, eta=-1, eta=+1, gamma=-1,
/// gamma=+1}. A face of ngll x ngll GLL points carries, at each point, the
/// unit outward normal and the surface Jacobian (area element) times the
/// 2-D quadrature weight.

#include <array>
#include <vector>

#include "mesh/hex_mesh.hpp"
#include "quadrature/gll.hpp"

namespace sfg {

/// One element face with surface quadrature data.
struct FaceData {
  int ispec = -1;
  int face = -1;  ///< 0..5 as described above
  /// Local point index (within the element) of each of the ngll^2 face
  /// points, row-major in the face's own (a, b) coordinates.
  std::vector<int> local_points;
  /// Unit outward normal at each face point (outward w.r.t. the element).
  std::vector<std::array<double, 3>> normals;
  /// jacobian2D * w_a * w_b at each face point: the weight of the surface
  /// integral contribution.
  std::vector<double> weights;
};

/// Compute surface quadrature data for face `face` of element `ispec`.
FaceData compute_face_data(const HexMesh& mesh, const GllBasis& basis,
                           int ispec, int face);

/// An (ispec, face) pair.
struct ElementFace {
  int ispec;
  int face;
};

/// Faces on the mesh boundary: faces whose full set of global points is
/// not shared with any other element's face. Requires numbering.
std::vector<ElementFace> find_boundary_faces(const HexMesh& mesh);

/// Faces between two element groups: returns faces of elements flagged
/// `true` whose opposite neighbour is flagged `false` (e.g. solid elements
/// facing fluid ones at the CMB). Each interface surface appears once,
/// seen from the `true` side.
std::vector<ElementFace> find_interface_faces(
    const HexMesh& mesh, const std::vector<bool>& group_flag);

}  // namespace sfg

#pragma once

/// \file cubed_sphere.hpp
/// The gnomonic "cubed sphere" mapping (paper §3, Figure 4; Ronchi et al.,
/// Sadourny): the globe is split into 6 chunks, each an angularly-uniform
/// image of a cube face, further subdivided into NPROC_XI^2 mesh slices
/// per chunk for a total of 6 * NPROC_XI^2 slices.
///
/// Implementation note: every surface node lives on an integer lattice of
/// the cube surface, (a, b, c) in [0, N]^3 with at least one coordinate in
/// {0, N}. The mapped direction is simply
///     d(a, b, c) = normalize( (t(a), t(b), t(c)) ),
///     t(w) = tan( (w/N - 1/2) * pi/2 ),
/// which is angularly equidistant along cube edges (the classical gnomonic
/// chart). Because chunk edges and corners then carry IDENTICAL integer
/// lattice coordinates regardless of which chunk computes them, cross-chunk
/// point matching is exact — no floating-point tolerance, no edge
/// correspondence tables. This is what makes the distributed global mesh
/// assembly (paper §2.4) watertight at chunk boundaries, where points are
/// shared by up to 3 chunks (cube corners).

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace sfg {

/// Chunk ids 0..5 map to the cube faces +x, -x, +y, -y, +z, -z.
inline constexpr int kChunkFaceCount = 6;

/// Map chunk-local face-lattice coordinates (u, v) in [0, N] to integer
/// cube-surface coordinates (a, b, c). Orientations are chosen so that the
/// induced (u, v, radius) element mapping has positive Jacobian for every
/// chunk.
std::array<std::int64_t, 3> chunk_to_cube(int chunk, std::int64_t u,
                                          std::int64_t v, std::int64_t n);

/// Unit direction of the cube-surface lattice point (a, b, c).
std::array<double, 3> cube_direction(std::int64_t a, std::int64_t b,
                                     std::int64_t c, std::int64_t n);

/// Canonical integer key of a cube-surface lattice point; identical for
/// every chunk that touches the point.
std::int64_t cube_surface_key(std::int64_t a, std::int64_t b,
                              std::int64_t c, std::int64_t n);

/// Number of distinct surface lattice points: 6 N^2 + 2.
std::int64_t cube_surface_point_count(std::int64_t n);

/// True if (u, v) lies on the boundary of the chunk's own face lattice
/// (i.e. the point is shared with one or two neighbouring chunks).
bool on_chunk_edge(std::int64_t u, std::int64_t v, std::int64_t n);

}  // namespace sfg

#pragma once

/// \file layers.hpp
/// Radial layering of the global mesh: element layers between the Earth
/// model's discontinuities (ICB, CMB, 670, 400, Moho...), with radial
/// element counts chosen to keep elements near-cubic at the top of each
/// layer.
///
/// Substitution note (see DESIGN.md): SPECFEM3D_GLOBE uses mesh-doubling
/// bricks to coarsen the angular resolution with depth; here the angular
/// resolution is uniform and only the radial element size is graded. The
/// scaling experiments of the paper depend on element counts and interface
/// areas, which this grading reproduces; the doubling is a constant-factor
/// cost optimization.

#include <vector>

#include "model/earth_model.hpp"

namespace sfg {

/// One radial element layer: uniform elements between r_bot and r_top.
struct RadialLayer {
  double r_bot = 0.0;
  double r_top = 0.0;
  int n_elem = 1;       ///< radial elements within this layer
  bool fluid = false;   ///< true for outer-core-type layers
};

/// Build radial layers for the shell [r_min, model.surface_radius()]:
/// one group per model region between discontinuities (regions thinner
/// than `min_layer_fraction` of the target spacing are merged into their
/// neighbour), each split into ceil(thickness / target) uniform element
/// layers where target = (pi/2) * r_top / nex_xi (the angular element size
/// at the top of the region).
std::vector<RadialLayer> build_radial_layers(const EarthModel& model,
                                             double r_min, int nex_xi,
                                             double min_layer_fraction = 0.3);

/// Total radial element count.
int total_radial_elements(const std::vector<RadialLayer>& layers);

/// Number of distinct radial GLL lattice levels (shared interfaces counted
/// once): total_elements * (ngll - 1) + 1.
int radial_lattice_size(const std::vector<RadialLayer>& layers, int ngll);

}  // namespace sfg

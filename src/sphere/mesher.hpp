#pragma once

/// \file mesher.hpp
/// The meshfem3D-equivalent mesher (paper §3): builds one cubed-sphere
/// mesh slice per rank — 6 chunks x NPROC_XI^2 slices for the globe, or a
/// single chunk with absorbing side/bottom boundaries for regional runs.
/// Resolution is controlled by NEX_XI exactly as in the paper
/// (shortest period = 256 * 17 / NEX_XI seconds).
///
/// The mesher also implements the §4.4 experiment: the legacy v4.0
/// behaviour ran the mesh-generation loop twice (once for geometry, once
/// more to populate material properties), which "slowed down the mesher by
/// a factor of two"; the merged single-pass mode assigns properties right
/// after each element is created.

#include <cstdint>
#include <vector>

#include "mesh/faces.hpp"
#include "mesh/hex_mesh.hpp"
#include "solver/materials.hpp"
#include "sphere/layers.hpp"

namespace sfg {

struct GlobeMeshSpec {
  int nex_xi = 16;    ///< elements along each chunk edge (global)
  int nproc_xi = 1;   ///< slices along each chunk edge
  int nchunks = 6;    ///< 6 = global, 1 = regional
  /// Inner cut-off radius of the shell. 0 selects the default: 55% of the
  /// innermost discontinuity (inside the inner core for PREM).
  /// Substitution note: SPECFEM3D_GLOBE fills the centre with an inflated
  /// central cube; this reproduction truncates the inner core with a small
  /// free-surface cavity instead (see DESIGN.md).
  double r_min = 0.0;
  const EarthModel* model = nullptr;
  bool legacy_two_pass = false;  ///< §4.4 experiment switch
};

struct MesherStats {
  double geometry_seconds = 0.0;
  double materials_seconds = 0.0;
  double total_seconds = 0.0;
  int nspec = 0;
  int nglob = 0;
  int radial_elements = 0;
  std::uint64_t mesh_bytes = 0;  ///< memory footprint of mesh + materials
};

struct GlobeSlice {
  HexMesh mesh;
  MaterialFields materials;
  /// Inter-slice boundary candidates for smpi::Exchanger discovery.
  std::vector<std::int64_t> boundary_keys;
  std::vector<int> boundary_points;
  /// Outer absorbing faces (regional mode: 4 sides + bottom; global mode:
  /// empty — the inner cavity boundary is left free, see DESIGN.md).
  std::vector<ElementFace> absorbing_faces;
  std::vector<RadialLayer> layers;
  MesherStats stats;
};

/// Total ranks for a spec: nchunks * nproc_xi^2.
int globe_rank_count(const GlobeMeshSpec& spec);

/// Build the slice owned by `rank` (chunk-major: rank = chunk * nproc^2 +
/// sq * nproc + sp).
GlobeSlice build_globe_slice(const GlobeMeshSpec& spec, const GllBasis& basis,
                             int rank);

/// Build the whole domain as one serial mesh (all chunks, all slices) —
/// used for validation against decomposed runs and for small examples.
GlobeSlice build_globe_serial(const GlobeMeshSpec& spec,
                              const GllBasis& basis);

/// Resolved default inner radius for a spec.
double effective_r_min(const GlobeMeshSpec& spec);

}  // namespace sfg

#include "sphere/cubed_sphere.hpp"

#include <cmath>

#include "common/constants.hpp"

namespace sfg {

std::array<std::int64_t, 3> chunk_to_cube(int chunk, std::int64_t u,
                                          std::int64_t v, std::int64_t n) {
  SFG_CHECK(u >= 0 && u <= n && v >= 0 && v <= n);
  switch (chunk) {
    case 0: return {n, u, v};          // +x
    case 1: return {0, n - u, v};      // -x
    case 2: return {n - u, n, v};      // +y
    case 3: return {u, 0, v};          // -y
    case 4: return {u, v, n};          // +z
    case 5: return {n - u, v, 0};      // -z
    default:
      SFG_CHECK_MSG(false, "chunk " << chunk << " out of range");
  }
  return {};
}

std::array<double, 3> cube_direction(std::int64_t a, std::int64_t b,
                                     std::int64_t c, std::int64_t n) {
  auto t = [n](std::int64_t w) {
    return std::tan((static_cast<double>(w) / static_cast<double>(n) - 0.5) *
                    (kPi / 2.0));
  };
  const double x = t(a), y = t(b), z = t(c);
  const double inv = 1.0 / std::sqrt(x * x + y * y + z * z);
  return {x * inv, y * inv, z * inv};
}

std::int64_t cube_surface_key(std::int64_t a, std::int64_t b,
                              std::int64_t c, std::int64_t n) {
  SFG_CHECK(a >= 0 && a <= n && b >= 0 && b <= n && c >= 0 && c <= n);
  SFG_CHECK_MSG(a == 0 || a == n || b == 0 || b == n || c == 0 || c == n,
                "point is not on the cube surface");
  const std::int64_t m = n + 1;
  return (a * m + b) * m + c;
}

std::int64_t cube_surface_point_count(std::int64_t n) {
  return 6 * n * n + 2;
}

bool on_chunk_edge(std::int64_t u, std::int64_t v, std::int64_t n) {
  return u == 0 || u == n || v == 0 || v == n;
}

}  // namespace sfg

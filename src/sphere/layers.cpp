#include "sphere/layers.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/constants.hpp"

namespace sfg {

std::vector<RadialLayer> build_radial_layers(const EarthModel& model,
                                             double r_min, int nex_xi,
                                             double min_layer_fraction) {
  const double r_surface = model.surface_radius();
  SFG_CHECK(r_min >= 0.0 && r_min < r_surface);
  SFG_CHECK(nex_xi >= 1);

  // Region boundaries: r_min, discontinuities inside, surface.
  std::vector<double> bounds = {r_min};
  for (double r : model.discontinuity_radii())
    if (r > r_min * 1.0000001 && r < r_surface * 0.9999999)
      bounds.push_back(r);
  bounds.push_back(r_surface);
  std::sort(bounds.begin(), bounds.end());

  // Merge regions that are very thin compared with the local target
  // element size (the mesher cannot afford sliver layers at low NEX; the
  // real code merges crustal layers the same way).
  std::vector<double> merged = {bounds.front()};
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    const double r_top = bounds[i];
    const double target = (kPi / 2.0) * r_top / nex_xi;
    const double thickness = r_top - merged.back();
    const bool is_last = i + 1 == bounds.size();
    if (thickness < min_layer_fraction * target && !is_last) continue;
    if (is_last && thickness < min_layer_fraction * target &&
        merged.size() > 1) {
      // Merge a too-thin top region downward instead of keeping a sliver.
      merged.back() = r_top;
      continue;
    }
    merged.push_back(r_top);
  }
  SFG_CHECK(merged.size() >= 2);

  std::vector<RadialLayer> layers;
  for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
    RadialLayer layer;
    layer.r_bot = merged[i];
    layer.r_top = merged[i + 1];
    const double target = (kPi / 2.0) * layer.r_top / nex_xi;
    layer.n_elem = std::max(
        1, static_cast<int>(std::lround((layer.r_top - layer.r_bot) /
                                        target)));
    // Fluid if the region's midpoint is fluid in the model.
    layer.fluid =
        model.at_radius(0.5 * (layer.r_bot + layer.r_top)).is_fluid();
    layers.push_back(layer);
  }
  return layers;
}

int total_radial_elements(const std::vector<RadialLayer>& layers) {
  int n = 0;
  for (const auto& l : layers) n += l.n_elem;
  return n;
}

int radial_lattice_size(const std::vector<RadialLayer>& layers, int ngll) {
  return total_radial_elements(layers) * (ngll - 1) + 1;
}

}  // namespace sfg

#include "sphere/mesher.hpp"

#include <cmath>
#include <unordered_map>

#include "common/timer.hpp"
#include "mesh/jacobian.hpp"
#include "sphere/cubed_sphere.hpp"

namespace sfg {

int globe_rank_count(const GlobeMeshSpec& spec) {
  return spec.nchunks * spec.nproc_xi * spec.nproc_xi;
}

double effective_r_min(const GlobeMeshSpec& spec) {
  if (spec.r_min > 0.0) return spec.r_min;
  const auto discs = spec.model->discontinuity_radii();
  if (discs.empty()) return 0.3 * spec.model->surface_radius();
  return 0.55 * discs.front();
}

namespace {

/// Geometry of one slice: which chunk and which element window it covers.
struct SliceWindow {
  int chunk;
  int e1_lo, e1_hi;  ///< element range along u
  int e2_lo, e2_hi;  ///< element range along v
};

SliceWindow decode_rank(const GlobeMeshSpec& spec, int rank) {
  const int nproc = spec.nproc_xi;
  SFG_CHECK(rank >= 0 && rank < globe_rank_count(spec));
  SliceWindow w;
  w.chunk = rank / (nproc * nproc);
  const int rem = rank % (nproc * nproc);
  const int sq = rem / nproc;
  const int sp = rem % nproc;
  const int per = spec.nex_xi / nproc;
  SFG_CHECK_MSG(per * nproc == spec.nex_xi,
                "NEX_XI must be divisible by NPROC_XI");
  w.e1_lo = sp * per;
  w.e1_hi = (sp + 1) * per;
  w.e2_lo = sq * per;
  w.e2_hi = (sq + 1) * per;
  return w;
}

/// Radial placement of every element layer: flattened (r_bot, r_top,
/// radial lattice offset) per radial element.
struct RadialElements {
  std::vector<double> r_bot, r_top;
  std::vector<int> lattice_offset;  ///< radial GLL index of the bottom
  int lattice_size = 0;
};

RadialElements flatten_layers(const std::vector<RadialLayer>& layers,
                              int ngll) {
  RadialElements re;
  int offset = 0;
  for (const auto& layer : layers) {
    const double h = (layer.r_top - layer.r_bot) / layer.n_elem;
    for (int s = 0; s < layer.n_elem; ++s) {
      re.r_bot.push_back(layer.r_bot + s * h);
      re.r_top.push_back(layer.r_bot + (s + 1) * h);
      re.lattice_offset.push_back(offset);
      offset += ngll - 1;
    }
  }
  re.lattice_size = offset + 1;
  return re;
}

struct FillResult {
  std::vector<std::int64_t> point_keys;  ///< per local point
};

/// Fill coordinates and keys for all elements of the windows in order:
/// radial element slowest, then e2, then e1; nodes k (radial), j (v),
/// i (u) with i fastest — the standard SPECFEM layout.
FillResult fill_elements(HexMesh& mesh, const GlobeMeshSpec& spec,
                         const GllBasis& basis,
                         const std::vector<SliceWindow>& windows,
                         const RadialElements& re) {
  const int ngll = basis.num_points();
  const std::int64_t lat_n =
      static_cast<std::int64_t>(spec.nex_xi) * (ngll - 1);

  int nspec = 0;
  for (const auto& w : windows)
    nspec += (w.e1_hi - w.e1_lo) * (w.e2_hi - w.e2_lo) *
             static_cast<int>(re.r_bot.size());
  mesh.allocate_points(ngll, nspec);

  FillResult fr;
  fr.point_keys.resize(mesh.num_local_points());

  std::size_t e = 0;
  for (const auto& w : windows) {
    for (std::size_t rad = 0; rad < re.r_bot.size(); ++rad) {
      for (int e2 = w.e2_lo; e2 < w.e2_hi; ++e2) {
        for (int e1 = w.e1_lo; e1 < w.e1_hi; ++e1, ++e) {
          const std::size_t off = mesh.local_offset(static_cast<int>(e));
          for (int k = 0; k < ngll; ++k) {
            const double r =
                re.r_bot[rad] +
                0.5 * (basis.node(k) + 1.0) * (re.r_top[rad] - re.r_bot[rad]);
            const std::int64_t r_idx =
                re.lattice_offset[rad] + k;
            for (int j = 0; j < ngll; ++j) {
              const std::int64_t v =
                  static_cast<std::int64_t>(e2) * (ngll - 1) + j;
              for (int i = 0; i < ngll; ++i) {
                const std::int64_t u =
                    static_cast<std::int64_t>(e1) * (ngll - 1) + i;
                const auto abc = chunk_to_cube(w.chunk, u, v, lat_n);
                const auto dir =
                    cube_direction(abc[0], abc[1], abc[2], lat_n);
                const std::size_t p =
                    off + static_cast<std::size_t>(
                              local_index(ngll, i, j, k));
                mesh.xstore[p] = r * dir[0];
                mesh.ystore[p] = r * dir[1];
                mesh.zstore[p] = r * dir[2];
                fr.point_keys[p] =
                    cube_surface_key(abc[0], abc[1], abc[2], lat_n) *
                        re.lattice_size +
                    r_idx;
              }
            }
          }
        }
      }
    }
  }
  return fr;
}

/// Exact global numbering from the integer point keys.
void number_by_keys(HexMesh& mesh, const std::vector<std::int64_t>& keys) {
  std::unordered_map<std::int64_t, int> ids;
  ids.reserve(keys.size());
  mesh.ibool.resize(keys.size());
  int next = 0;
  for (std::size_t p = 0; p < keys.size(); ++p) {
    auto [it, inserted] = ids.emplace(keys[p], next);
    if (inserted) ++next;
    mesh.ibool[p] = it->second;
  }
  mesh.nglob = next;
}

}  // namespace

GlobeSlice build_globe_slice(const GlobeMeshSpec& spec, const GllBasis& basis,
                             int rank) {
  SFG_CHECK(spec.model != nullptr);
  SFG_CHECK(spec.nchunks == 1 || spec.nchunks == 6);
  WallTimer total_timer;

  GlobeSlice slice;
  const double r_min = effective_r_min(spec);
  slice.layers = build_radial_layers(*spec.model, r_min, spec.nex_xi);
  const RadialElements re = flatten_layers(slice.layers, basis.num_points());
  const SliceWindow w = decode_rank(spec, rank);

  // ---- geometry pass(es) ----
  WallTimer geom_timer;
  FillResult fr = fill_elements(slice.mesh, spec, basis, {w}, re);
  if (spec.legacy_two_pass) {
    // Legacy v4.0 behaviour (§4.4): the mesher ran twice internally; the
    // second pass recomputes the geometry while populating properties.
    HexMesh scratch;
    FillResult fr2 = fill_elements(scratch, spec, basis, {w}, re);
    (void)fr2;
  }
  number_by_keys(slice.mesh, fr.point_keys);
  compute_jacobian_tables(slice.mesh, basis);
  slice.stats.geometry_seconds = geom_timer.seconds();

  // ---- material assignment ----
  WallTimer mat_timer;
  slice.materials = assign_materials_radial(slice.mesh, *spec.model);
  slice.stats.materials_seconds = mat_timer.seconds();

  // ---- inter-slice boundary candidates ----
  const int ngll = basis.num_points();
  const std::int64_t lat_n =
      static_cast<std::int64_t>(spec.nex_xi) * (ngll - 1);
  const std::int64_t u_lo = static_cast<std::int64_t>(w.e1_lo) * (ngll - 1);
  const std::int64_t u_hi = static_cast<std::int64_t>(w.e1_hi) * (ngll - 1);
  const std::int64_t v_lo = static_cast<std::int64_t>(w.e2_lo) * (ngll - 1);
  const std::int64_t v_hi = static_cast<std::int64_t>(w.e2_hi) * (ngll - 1);
  const bool global_mode = spec.nchunks == kChunkFaceCount;

  std::vector<bool> seen(static_cast<std::size_t>(slice.mesh.nglob), false);
  {
    std::size_t e = 0;
    for (std::size_t rad = 0; rad < re.r_bot.size(); ++rad) {
      for (int e2 = w.e2_lo; e2 < w.e2_hi; ++e2) {
        for (int e1 = w.e1_lo; e1 < w.e1_hi; ++e1, ++e) {
          const std::size_t off = slice.mesh.local_offset(static_cast<int>(e));
          for (int k = 0; k < ngll; ++k) {
            for (int j = 0; j < ngll; ++j) {
              const std::int64_t v =
                  static_cast<std::int64_t>(e2) * (ngll - 1) + j;
              for (int i = 0; i < ngll; ++i) {
                const std::int64_t u =
                    static_cast<std::int64_t>(e1) * (ngll - 1) + i;
                const std::size_t p =
                    off + static_cast<std::size_t>(
                              local_index(ngll, i, j, k));
                const int glob = slice.mesh.ibool[p];
                if (seen[static_cast<std::size_t>(glob)]) continue;
                // Shared with a neighbouring slice (same chunk) or, in
                // global mode, with a neighbouring chunk at the chunk edge.
                const bool shared =
                    (u == u_lo && (w.e1_lo > 0 || global_mode)) ||
                    (u == u_hi && (w.e1_hi < spec.nex_xi || global_mode)) ||
                    (v == v_lo && (w.e2_lo > 0 || global_mode)) ||
                    (v == v_hi && (w.e2_hi < spec.nex_xi || global_mode));
                seen[static_cast<std::size_t>(glob)] = true;
                if (!shared) continue;
                slice.boundary_keys.push_back(fr.point_keys[p]);
                slice.boundary_points.push_back(glob);
              }
            }
          }
        }
      }
    }
  }

  // ---- absorbing faces for regional mode: 4 sides + bottom ----
  if (!global_mode) {
    std::size_t e = 0;
    for (std::size_t rad = 0; rad < re.r_bot.size(); ++rad) {
      for (int e2 = w.e2_lo; e2 < w.e2_hi; ++e2) {
        for (int e1 = w.e1_lo; e1 < w.e1_hi; ++e1, ++e) {
          const int ie = static_cast<int>(e);
          if (e1 == 0) slice.absorbing_faces.push_back({ie, 0});
          if (e1 == spec.nex_xi - 1) slice.absorbing_faces.push_back({ie, 1});
          if (e2 == 0) slice.absorbing_faces.push_back({ie, 2});
          if (e2 == spec.nex_xi - 1) slice.absorbing_faces.push_back({ie, 3});
          if (rad == 0) slice.absorbing_faces.push_back({ie, 4});
        }
      }
    }
  }

  slice.stats.nspec = slice.mesh.nspec;
  slice.stats.nglob = slice.mesh.nglob;
  slice.stats.radial_elements = total_radial_elements(slice.layers);
  slice.stats.mesh_bytes =
      slice.mesh.num_local_points() *
          (3 * sizeof(double) + 10 * sizeof(float) + sizeof(int) +
           6 * sizeof(float)) +
      static_cast<std::uint64_t>(slice.mesh.nglob) * 10 * sizeof(float);
  slice.stats.total_seconds = total_timer.seconds();
  return slice;
}

GlobeSlice build_globe_serial(const GlobeMeshSpec& spec,
                              const GllBasis& basis) {
  SFG_CHECK(spec.model != nullptr);
  WallTimer total_timer;

  GlobeSlice out;
  const double r_min = effective_r_min(spec);
  out.layers = build_radial_layers(*spec.model, r_min, spec.nex_xi);
  const RadialElements re = flatten_layers(out.layers, basis.num_points());

  std::vector<SliceWindow> windows;
  for (int chunk = 0; chunk < spec.nchunks; ++chunk)
    windows.push_back({chunk, 0, spec.nex_xi, 0, spec.nex_xi});

  WallTimer geom_timer;
  FillResult fr = fill_elements(out.mesh, spec, basis, windows, re);
  number_by_keys(out.mesh, fr.point_keys);
  compute_jacobian_tables(out.mesh, basis);
  out.stats.geometry_seconds = geom_timer.seconds();

  WallTimer mat_timer;
  out.materials = assign_materials_radial(out.mesh, *spec.model);
  out.stats.materials_seconds = mat_timer.seconds();

  if (spec.nchunks == 1) {
    std::size_t e = 0;
    for (std::size_t rad = 0; rad < re.r_bot.size(); ++rad) {
      for (int e2 = 0; e2 < spec.nex_xi; ++e2) {
        for (int e1 = 0; e1 < spec.nex_xi; ++e1, ++e) {
          const int ie = static_cast<int>(e);
          if (e1 == 0) out.absorbing_faces.push_back({ie, 0});
          if (e1 == spec.nex_xi - 1) out.absorbing_faces.push_back({ie, 1});
          if (e2 == 0) out.absorbing_faces.push_back({ie, 2});
          if (e2 == spec.nex_xi - 1) out.absorbing_faces.push_back({ie, 3});
          if (rad == 0) out.absorbing_faces.push_back({ie, 4});
        }
      }
    }
  }

  out.stats.nspec = out.mesh.nspec;
  out.stats.nglob = out.mesh.nglob;
  out.stats.radial_elements = total_radial_elements(out.layers);
  out.stats.total_seconds = total_timer.seconds();
  return out;
}

}  // namespace sfg

#pragma once

/// \file materials.hpp
/// Per-GLL-point material fields for a mesh region and their assignment
/// from an Earth model (paper §4.4: the mesher "populate[s] this geometry
/// with material properties — the velocity of the seismic waves and the
/// density of the rocks in each mesh element").

#include <functional>
#include <vector>

#include "common/aligned.hpp"
#include "mesh/hex_mesh.hpp"
#include "model/attenuation.hpp"
#include "model/earth_model.hpp"

namespace sfg {

/// Material properties sampled at every local GLL point of a mesh.
/// kappav/muv hold the moduli the force kernel consumes: when attenuation
/// is prepared, muv is scaled to the unrelaxed modulus and mu_relaxed
/// keeps the original for the memory-variable update.
struct MaterialFields {
  aligned_vector<float> rho;
  aligned_vector<float> kappav;
  aligned_vector<float> muv;
  aligned_vector<float> vp;
  aligned_vector<float> vs;
  aligned_vector<float> q_mu;       ///< per-point quality factor (0: none)
  aligned_vector<float> mu_relaxed; ///< filled by prepare_attenuation
  std::vector<bool> element_is_fluid;  ///< per element (vs == 0 throughout)

  std::size_t size() const { return rho.size(); }
  bool has_fluid() const;
  bool has_solid() const;
};

/// Sample `model` at the radius of every GLL point (for spherical meshes
/// centred on the origin).
MaterialFields assign_materials_radial(const HexMesh& mesh,
                                       const EarthModel& model);

/// Sample an arbitrary callback at every GLL point (for Cartesian tests).
MaterialFields assign_materials(
    const HexMesh& mesh,
    const std::function<MaterialSample(double, double, double)>& sample_at);

/// Scale muv to the unrelaxed modulus for the given SLS fit and record the
/// relaxed modulus. Per-point Q is honored by scaling the modulus defect
/// with q_ref / q_point (the standard single-fit-many-Q trick). Points in
/// fluid elements are untouched.
void prepare_attenuation(MaterialFields& mat, const SlsSeries& sls);

}  // namespace sfg

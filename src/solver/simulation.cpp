#include "solver/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "common/log.hpp"
#include "io/blob_store.hpp"
#include "mesh/coloring.hpp"
#include "mesh/numbering.hpp"
#include "mesh/rcm.hpp"

namespace sfg {

Simulation::ThreadScratch::ThreadScratch(int ngll, bool attenuation,
                                         const ForceKernel& kernel)
    : ws(ngll) {
  // Per-variant allocation (ISSUE 6 satellite): SoA batch scratch only
  // under the Batched kernel, element-wise r_sum only on the
  // element-at-a-time paths; BlasLike sizes its staging buffers lazily
  // inside elastic_blas.
  if (kernel.variant() == KernelVariant::Batched) {
    bws = std::make_unique<BatchWorkspace>(ngll, kernel.lanes());
    if (attenuation)
      for (auto& comp : r_sum_soa) comp.assign(bws->stride, 0.0f);
  } else if (attenuation) {
    for (auto& comp : r_sum)
      comp.assign(static_cast<std::size_t>(ws.padded), 0.0f);
  }
}

Simulation::Simulation(const HexMesh& mesh, const GllBasis& basis,
                       MaterialFields materials, SimulationConfig config,
                       smpi::Communicator* comm,
                       const smpi::Exchanger* exchanger)
    : mesh_(mesh),
      basis_(basis),
      mat_(std::move(materials)),
      cfg_(std::move(config)),
      comm_(comm),
      exchanger_(exchanger),
      kernel_(basis,
              resolve_kernel_choice(cfg_.kernel, basis.num_points(),
                                    std::getenv("SFG_KERNEL")),
              cfg_.attenuation),
      profile_(cfg_.metrics.enabled, cfg_.metrics.timeline,
               cfg_.metrics.max_timeline_events) {
  SFG_CHECK(mesh_.numbered() && mesh_.has_jacobians());
  SFG_CHECK(mat_.size() == mesh_.num_local_points());
  SFG_CHECK_MSG(cfg_.dt > 0.0, "time step must be positive");
  SFG_CHECK_MSG((comm_ == nullptr) == (exchanger_ == nullptr),
                "parallel runs need both a communicator and an exchanger");
  SFG_CHECK_MSG(cfg_.num_threads >= 1, "num_threads must be at least 1");

  // One-line ISA/variant report (ISSUE 6 satellite): what the Auto/env
  // resolution actually picked for this run.
  batched_ = kernel_.variant() == KernelVariant::Batched;
  SFG_INFO("force kernel: variant="
           << kernel_variant_name(kernel_.variant())
           << " isa=" << simd::isa_name(kernel_.isa())
           << " lanes=" << kernel_.lanes()
           << (std::getenv("SFG_KERNEL") != nullptr ? " (SFG_KERNEL override)"
                                                    : ""));

  for (int e = 0; e < mesh_.nspec; ++e) {
    if (mat_.element_is_fluid[static_cast<std::size_t>(e)])
      fluid_elements_.push_back(e);
    else
      solid_elements_.push_back(e);
  }

  // The fluid phase exchanges chi_ddot across ranks, so every rank must
  // take part whenever ANY rank carries fluid elements — a rank whose
  // slice happens to be all-solid still contributes (zero) halo values.
  global_has_fluid_ = !fluid_elements_.empty();
  if (comm_ != nullptr)
    global_has_fluid_ = comm_->allreduce_one<std::uint64_t>(
                            global_has_fluid_ ? 1 : 0, smpi::ReduceOp::Max) !=
                        0;

  // Clustered LTS partition (ISSUE 7): built before the schedule variant
  // resolves because a multi-cluster run forces a colored schedule.
  build_cluster_partition_lts();

  scratch_.reserve(static_cast<std::size_t>(cfg_.num_threads));
  for (int t = 0; t < cfg_.num_threads; ++t)
    scratch_.push_back(std::make_unique<ThreadScratch>(
        basis.num_points(), cfg_.attenuation, kernel_));
  if (cfg_.num_threads > 1)
    pool_ = std::make_unique<ThreadPool>(cfg_.num_threads);

  // Resolve the schedule variant (ISSUE 4). Auto keeps the historical
  // default at one thread (sequential, or plain colored when forced) and
  // upgrades threaded runs to the locality-aware interleaved schedule —
  // bit-identical to plain colored by the ascending-color summation order.
  schedule_ = cfg_.schedule;
  if (schedule_ == SolverSchedule::Auto) {
    if (cfg_.num_threads > 1)
      schedule_ = SolverSchedule::Interleaved;
    else if (lts_num_levels_ > 1)
      // Multi-cluster LTS runs through per-rate element schedules; the
      // interleaved variant keeps its locality pass and proof machinery.
      schedule_ = SolverSchedule::Interleaved;
    else
      schedule_ = cfg_.force_colored_schedule ? SolverSchedule::Colored
                                              : SolverSchedule::Sequential;
  }
  SFG_CHECK_MSG(
      schedule_ != SolverSchedule::Sequential || cfg_.num_threads == 1,
      "the sequential schedule requires num_threads == 1");
  SFG_CHECK_MSG(
      schedule_ != SolverSchedule::Sequential || lts_num_levels_ == 1,
      "multi-cluster LTS requires a colored schedule");
  colored_schedule_ = schedule_ != SolverSchedule::Sequential;

  const auto ng = static_cast<std::size_t>(mesh_.nglob);
  displ_.assign(ng * 3, 0.0f);
  veloc_.assign(ng * 3, 0.0f);
  accel_.assign(ng * 3, 0.0f);
  if (global_has_fluid_) {
    chi_.assign(ng, 0.0f);
    chi_dot_.assign(ng, 0.0f);
    chi_ddot_.assign(ng, 0.0f);
  }

  if (cfg_.attenuation) {
    SFG_CHECK_MSG(cfg_.sls.has_value(),
                  "attenuation requires a fitted SlsSeries in the config");
    SFG_CHECK_MSG(!mat_.mu_relaxed.empty(),
                  "attenuation requires prepare_attenuation() on materials");
    const SlsSeries& sls = *cfg_.sls;
    SFG_CHECK(sls.num_sls() <= 10);
    r_mem_.resize(static_cast<std::size_t>(sls.num_sls()));
    const std::size_t n = mesh_.num_local_points();
    for (auto& per_sls : r_mem_)
      for (auto& comp : per_sls) comp.assign(n, 0.0f);
    att_factor_.assign(n, 0.0f);
    for (std::size_t p = 0; p < n; ++p) {
      const float q = mat_.q_mu[p];
      if (q > 0.0f && mat_.mu_relaxed[p] > 0.0f)
        att_factor_[p] = static_cast<float>(
            2.0 * mat_.mu_relaxed[p] * (sls.target_q / q));
    }
    for (int l = 0; l < sls.num_sls(); ++l) {
      const double a =
          std::exp(-cfg_.dt / sls.tau_sigma[static_cast<std::size_t>(l)]);
      exp_a_[l] = a;
      one_minus_a_[l] = 1.0 - a;
    }
  }

  if (cfg_.rotation) SFG_CHECK(cfg_.omega_rad_s != 0.0);

  if (cfg_.gravity) {
    SFG_CHECK_MSG(cfg_.gravity_model != nullptr,
                  "gravity requires an EarthModel for g(r)");
    const EarthModel& em = *cfg_.gravity_model;
    const std::size_t n = mesh_.num_local_points();
    grav_g_.assign(n, 0.0f);
    grav_dgdr_.assign(n, 0.0f);
    grav_drhodr_.assign(n, 0.0f);
    grav_rx_.assign(n, 0.0f);
    grav_ry_.assign(n, 0.0f);
    grav_rz_.assign(n, 0.0f);
    grav_invr_.assign(n, 0.0f);
    w3jac_.assign(n, 0.0f);
    const double dr = 1000.0;  // finite-difference step for dg/dr, drho/dr
    const int ngll3 = mesh_.ngll3();
    for (int e = 0; e < mesh_.nspec; ++e) {
      // Element radial midpoint: density derivatives are sampled one-sided
      // TOWARD the element interior so that model discontinuities (the CMB
      // density jump!) never contaminate the smooth-layer derivative.
      const std::size_t off = mesh_.local_offset(e);
      double r_mid = 0.0;
      for (int pp = 0; pp < ngll3; ++pp) {
        const std::size_t q = off + static_cast<std::size_t>(pp);
        r_mid += std::sqrt(mesh_.xstore[q] * mesh_.xstore[q] +
                           mesh_.ystore[q] * mesh_.ystore[q] +
                           mesh_.zstore[q] * mesh_.zstore[q]);
      }
      r_mid /= ngll3;
      for (int pp = 0; pp < ngll3; ++pp) {
        const std::size_t p = off + static_cast<std::size_t>(pp);
        const double x = mesh_.xstore[p], y = mesh_.ystore[p],
                     z = mesh_.zstore[p];
        const double r = std::sqrt(x * x + y * y + z * z);
        SFG_CHECK_MSG(r > 10.0 * dr, "gravity needs a spherical shell mesh");
        grav_g_[p] = static_cast<float>(em.gravity(r));
        grav_dgdr_[p] = static_cast<float>(
            (em.gravity(r + dr) - em.gravity(r - dr)) / (2.0 * dr));
        const double inward = r_mid > r ? dr : -dr;
        grav_drhodr_[p] = static_cast<float>(
            (em.at_radius(r + inward).rho - em.at_radius(r).rho) / inward);
        grav_rx_[p] = static_cast<float>(x / r);
        grav_ry_[p] = static_cast<float>(y / r);
        grav_rz_[p] = static_cast<float>(z / r);
        grav_invr_[p] = static_cast<float>(1.0 / r);
      }
    }
    const int ngll = mesh_.ngll;
    for (int e = 0; e < mesh_.nspec; ++e) {
      const std::size_t off = mesh_.local_offset(e);
      for (int k = 0; k < ngll; ++k)
        for (int j = 0; j < ngll; ++j)
          for (int i = 0; i < ngll; ++i) {
            const std::size_t p =
                off + static_cast<std::size_t>(local_index(ngll, i, j, k));
            w3jac_[p] = static_cast<float>(basis_.weight(i) *
                                           basis_.weight(j) *
                                           basis_.weight(k) *
                                           mesh_.jacobian[p]);
          }
    }
  }

  build_mass_matrices();
  build_coupling_surface();
  build_absorbing_points();
  build_colored_schedule();
}

void Simulation::build_colored_schedule() {
  solid_boundary_batches_.clear();
  solid_interior_batches_.clear();
  fluid_batches_.clear();
  sched_solid_boundary_ = ElementSchedule{};
  sched_solid_interior_ = ElementSchedule{};
  sched_fluid_ = ElementSchedule{};
  packed_solid_boundary_ = PackedBatches{};
  packed_solid_interior_ = PackedBatches{};
  packed_fluid_ = PackedBatches{};
  packed_seq_solid_ = PackedBatches{};
  packed_seq_fluid_ = PackedBatches{};
  lts_sched_boundary_ = ClusterSchedule{};
  lts_sched_interior_ = ClusterSchedule{};
  lts_packed_boundary_.clear();
  lts_packed_interior_.clear();
  num_boundary_elements_ = 0;
  if (!colored_schedule_) {
    if (batched_) {
      // Sequential + batched: consecutive legacy-order runs. Lanes are
      // arithmetically independent and scattered one by one in item
      // order, so the per-point summation order is exactly the legacy
      // element loop's.
      packed_seq_solid_ = pack_sequential(solid_elements_);
      packed_seq_fluid_ = pack_sequential(fluid_elements_);
    }
    return;
  }

  // Color in the current processing order so a caller-supplied RCM /
  // multilevel order (§4.2 cache blocking) survives inside each color.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(mesh_.nspec));
  for (int e : solid_elements_) order.push_back(e);
  for (int e : fluid_elements_) order.push_back(e);
  const std::vector<std::vector<int>> adjacency = element_adjacency(mesh_);
  const std::vector<int> color_of = greedy_element_coloring(adjacency, order);

  // Split solid elements into boundary (touch a halo point per the
  // exchanger's interface lists) and interior sets; interior elements are
  // free to compute while the halo exchange is in flight.
  std::vector<char> halo_point(static_cast<std::size_t>(mesh_.nglob), 0);
  if (exchanger_ != nullptr) {
    for (const smpi::Interface& iface : exchanger_->interfaces())
      for (int p : iface.local_points)
        halo_point[static_cast<std::size_t>(p)] = 1;
  }
  const int n3 = mesh_.ngll3();
  auto touches_halo = [&](int e) {
    const int* ib = mesh_.ibool.data() + mesh_.local_offset(e);
    for (int p = 0; p < n3; ++p)
      if (halo_point[static_cast<std::size_t>(ib[p])]) return true;
    return false;
  };
  std::vector<int> boundary, interior;
  for (int e : solid_elements_)
    (touches_halo(e) ? boundary : interior).push_back(e);
  num_boundary_elements_ = static_cast<int>(boundary.size());

  solid_boundary_batches_ = color_batches(boundary, color_of);
  solid_interior_batches_ = color_batches(interior, color_of);
  fluid_batches_ = color_batches(fluid_elements_, color_of);

  // Second-level locality pass (ISSUE 4): order elements within each
  // color by RCM proximity, then interleave color pairs into per-slot
  // work units with disjoint point footprints. The three schedule
  // invariants are re-proven here against the built result, so a broken
  // builder can never reach the time loop.
  ScheduleOptions opts;
  opts.num_slots = cfg_.num_threads;
  opts.interleave_pairs = schedule_ == SolverSchedule::Interleaved;
  opts.batch_lanes = batched_ ? kernel_.lanes() : 1;
  // Proximity reference = the legacy processing order itself (the mesher
  // already stores elements in its §4.2 cache-blocked order, and the
  // element-indexed arrays stream in exactly that order). Re-deriving an
  // RCM permutation here would fight the storage order it is meant to
  // approximate.
  opts.proximity_rank.assign(static_cast<std::size_t>(mesh_.nspec), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos)
    opts.proximity_rank[static_cast<std::size_t>(order[pos])] =
        static_cast<int>(pos);

  if (lts_active_ && lts_num_levels_ > 1) {
    // Clustered LTS (ISSUE 7): one checked schedule per marching rate, so
    // the existing color/interleave/batch machinery runs unchanged within
    // each cluster round. The Simulation refuses to march on any schedule
    // the cluster checker rejects (invariants C-A..C-B), exactly as the
    // single-rate path refuses a broken element schedule.
    auto build_cluster_checked = [&](const std::vector<int>& elems) {
      ClusterSchedule cs = build_cluster_schedule(mesh_, elems, color_of,
                                                  lts_part_, opts,
                                                  cfg_.lts.cluster);
      const std::string err =
          check_cluster_schedule(mesh_, elems, color_of, lts_part_, cs);
      SFG_CHECK_MSG(err.empty(),
                    "cluster schedule invariant violated: " << err);
      return cs;
    };
    lts_sched_boundary_ = build_cluster_checked(boundary);
    lts_sched_interior_ = build_cluster_checked(interior);
    if (batched_) {
      for (const ElementSchedule& s : lts_sched_boundary_.rate_sched)
        lts_packed_boundary_.push_back(pack_batches(s.items, s.batch_cut));
      for (const ElementSchedule& s : lts_sched_interior_.rate_sched)
        lts_packed_interior_.push_back(pack_batches(s.items, s.batch_cut));
    }
    return;
  }

  // The Batched kernel always executes colored variants through element
  // schedules (plain rounds for Colored), so the SoA batch cuts exist
  // and are invariant-checked for every variant.
  if (schedule_ != SolverSchedule::Interleaved && !batched_) return;

  auto build_checked = [&](const std::vector<int>& elems) {
    ElementSchedule s = build_element_schedule(mesh_, elems, color_of, opts);
    const std::string err =
        check_element_schedule(mesh_, elems, color_of, s);
    SFG_CHECK_MSG(err.empty(), "schedule invariant violated: " << err);
    return s;
  };
  sched_solid_boundary_ = build_checked(boundary);
  sched_solid_interior_ = build_checked(interior);
  sched_fluid_ = build_checked(fluid_elements_);
  if (batched_) {
    packed_solid_boundary_ = pack_batches(sched_solid_boundary_.items,
                                          sched_solid_boundary_.batch_cut);
    packed_solid_interior_ = pack_batches(sched_solid_interior_.items,
                                          sched_solid_interior_.batch_cut);
    packed_fluid_ = pack_batches(sched_fluid_.items, sched_fluid_.batch_cut);
  }
}

Simulation::PackedBatches Simulation::pack_batches(
    const std::vector<int>& items, const std::vector<std::size_t>& cut) const {
  PackedBatches pb;
  pb.lanes = kernel_.lanes();
  const int lanes = pb.lanes;
  pb.stride = static_cast<std::size_t>(
                  padded_block_size(mesh_.ngll, lanes)) *
              static_cast<std::size_t>(lanes);
  pb.cut = cut;
  const std::size_t nb = cut.empty() ? 0 : cut.size() - 1;
  pb.elems.assign(nb * static_cast<std::size_t>(lanes), -1);
  pb.counts.assign(nb, 0);
  const std::size_t total = nb * pb.stride;
  for (auto* v : {&pb.xix, &pb.xiy, &pb.xiz, &pb.etax, &pb.etay, &pb.etaz,
                  &pb.gammax, &pb.gammay, &pb.gammaz, &pb.jacobian,
                  &pb.kappav, &pb.muv, &pb.rho})
    v->assign(total, 0.0f);
  if (cfg_.gravity)
    for (auto* v : {&pb.grav_g, &pb.grav_dgdr, &pb.grav_drhodr, &pb.grav_rx,
                    &pb.grav_ry, &pb.grav_rz, &pb.grav_invr})
      v->assign(total, 0.0f);

  const int n3 = mesh_.ngll3();
  for (std::size_t b = 0; b < nb; ++b) {
    const std::size_t b0 = cut[b];
    const std::size_t count = cut[b + 1] - b0;
    SFG_CHECK(count >= 1 && count <= static_cast<std::size_t>(lanes));
    pb.counts[b] = static_cast<int>(count);
    for (int l = 0; l < lanes; ++l) {
      const bool real = static_cast<std::size_t>(l) < count;
      // Pad lanes replicate lane 0's tables: valid numerics everywhere,
      // and their results are simply never scattered.
      const int e = items[b0 + (real ? static_cast<std::size_t>(l) : 0)];
      if (real) pb.elems[b * static_cast<std::size_t>(lanes) +
                         static_cast<std::size_t>(l)] = e;
      const std::size_t off = mesh_.local_offset(e);
      auto pack = [&](const float* src, aligned_vector<float>& dst) {
        float* d = dst.data() + b * pb.stride + static_cast<std::size_t>(l);
        for (int p = 0; p < n3; ++p)
          d[static_cast<std::size_t>(p) * static_cast<std::size_t>(lanes)] =
              src[p];
      };
      pack(mesh_.xix.data() + off, pb.xix);
      pack(mesh_.xiy.data() + off, pb.xiy);
      pack(mesh_.xiz.data() + off, pb.xiz);
      pack(mesh_.etax.data() + off, pb.etax);
      pack(mesh_.etay.data() + off, pb.etay);
      pack(mesh_.etaz.data() + off, pb.etaz);
      pack(mesh_.gammax.data() + off, pb.gammax);
      pack(mesh_.gammay.data() + off, pb.gammay);
      pack(mesh_.gammaz.data() + off, pb.gammaz);
      pack(mesh_.jacobian.data() + off, pb.jacobian);
      pack(mat_.kappav.data() + off, pb.kappav);
      pack(mat_.muv.data() + off, pb.muv);
      pack(mat_.rho.data() + off, pb.rho);
      if (cfg_.gravity) {
        pack(grav_g_.data() + off, pb.grav_g);
        pack(grav_dgdr_.data() + off, pb.grav_dgdr);
        pack(grav_drhodr_.data() + off, pb.grav_drhodr);
        pack(grav_rx_.data() + off, pb.grav_rx);
        pack(grav_ry_.data() + off, pb.grav_ry);
        pack(grav_rz_.data() + off, pb.grav_rz);
        pack(grav_invr_.data() + off, pb.grav_invr);
      }
    }
  }
  return pb;
}

Simulation::PackedBatches Simulation::pack_sequential(
    const std::vector<int>& elems) const {
  const auto lanes = static_cast<std::size_t>(kernel_.lanes());
  std::vector<std::size_t> cut{0};
  while (cut.back() < elems.size())
    cut.push_back(std::min(elems.size(), cut.back() + lanes));
  return pack_batches(elems, cut);
}

int Simulation::num_solid_batches() const {
  return static_cast<int>(solid_boundary_batches_.size() +
                          solid_interior_batches_.size());
}

int Simulation::num_residual_elements() const {
  int n = sched_solid_boundary_.residual_elements +
          sched_solid_interior_.residual_elements +
          sched_fluid_.residual_elements;
  for (const ElementSchedule& s : lts_sched_boundary_.rate_sched)
    n += s.residual_elements;
  for (const ElementSchedule& s : lts_sched_interior_.rate_sched)
    n += s.residual_elements;
  return n;
}

void Simulation::build_mass_matrices() {
  const auto ng = static_cast<std::size_t>(mesh_.nglob);
  aligned_vector<float> mass_solid(ng, 0.0f);
  aligned_vector<float> mass_fluid(ng, 0.0f);
  const int ngll = mesh_.ngll;

  auto accumulate = [&](int e, aligned_vector<float>& mass, bool fluid) {
    const std::size_t off = mesh_.local_offset(e);
    for (int k = 0; k < ngll; ++k) {
      for (int j = 0; j < ngll; ++j) {
        for (int i = 0; i < ngll; ++i) {
          const std::size_t p =
              off + static_cast<std::size_t>(local_index(ngll, i, j, k));
          const double w3 =
              basis_.weight(i) * basis_.weight(j) * basis_.weight(k);
          const double jac = mesh_.jacobian[p];
          // Solid mass density rho; fluid "mass" is 1/kappa (the weak form
          // of (1/kappa) chi_ddot).
          const double density =
              fluid ? 1.0 / mat_.kappav[p] : mat_.rho[p];
          mass[static_cast<std::size_t>(mesh_.ibool[p])] +=
              static_cast<float>(w3 * jac * density);
        }
      }
    }
  };
  for (int e : solid_elements_) accumulate(e, mass_solid, false);
  for (int e : fluid_elements_) accumulate(e, mass_fluid, true);

  // Assemble across ranks so shared points carry the full mass. The fluid
  // exchange must run on every rank or on none (it is pairwise with all
  // neighbours), so it is gated on the GLOBAL fluid flag, not the local
  // element list — an all-solid slice of a mesh with an outer core still
  // participates with zero contributions.
  if (exchanger_ != nullptr) {
    exchanger_->assemble_add(*comm_, mass_solid.data(), 1);
    if (global_has_fluid_)
      exchanger_->assemble_add(*comm_, mass_fluid.data(), 1);
  }

  rmass_inv_solid_.assign(ng, 0.0f);
  rmass_inv_fluid_.assign(ng, 0.0f);
  for (std::size_t g = 0; g < ng; ++g) {
    if (mass_solid[g] > 0.0f) rmass_inv_solid_[g] = 1.0f / mass_solid[g];
    if (mass_fluid[g] > 0.0f) rmass_inv_fluid_[g] = 1.0f / mass_fluid[g];
  }
}

void Simulation::build_coupling_surface() {
  if (fluid_elements_.empty() || solid_elements_.empty()) return;
  const auto faces = find_interface_faces(mesh_, mat_.element_is_fluid);
  for (const ElementFace& ef : faces) {
    const FaceData fd = compute_face_data(mesh_, basis_, ef.ispec, ef.face);
    const std::size_t off = mesh_.local_offset(ef.ispec);
    for (std::size_t q = 0; q < fd.local_points.size(); ++q) {
      CouplingPoint cp;
      cp.iglob = mesh_.ibool[off + static_cast<std::size_t>(
                                       fd.local_points[q])];
      cp.nx = fd.normals[q][0];
      cp.ny = fd.normals[q][1];
      cp.nz = fd.normals[q][2];
      cp.weight = fd.weights[q];
      coupling_.push_back(cp);
    }
  }
}

void Simulation::build_absorbing_points() {
  for (const ElementFace& ef : cfg_.absorbing_faces) {
    const FaceData fd = compute_face_data(mesh_, basis_, ef.ispec, ef.face);
    const std::size_t off = mesh_.local_offset(ef.ispec);
    for (std::size_t q = 0; q < fd.local_points.size(); ++q) {
      AbsorbingPoint ap;
      ap.local = off + static_cast<std::size_t>(fd.local_points[q]);
      ap.iglob = mesh_.ibool[ap.local];
      ap.nx = fd.normals[q][0];
      ap.ny = fd.normals[q][1];
      ap.nz = fd.normals[q][2];
      ap.weight = fd.weights[q];
      absorbing_.push_back(ap);
    }
  }
}

void Simulation::add_source(const PointSource& source) {
  DiscreteSource ds = discretize_source(mesh_, basis_, source);
  SFG_CHECK_MSG(
      !mat_.element_is_fluid[static_cast<std::size_t>(ds.ispec)],
      "sources must lie in the solid region");
  sources_.push_back(std::move(ds));
}

int Simulation::add_receiver(double x, double y, double z, bool exact) {
  ReceiverState rs;
  rs.loc = exact ? locate_point_exact(mesh_, basis_, x, y, z)
                 : locate_point_nearest(mesh_, basis_, x, y, z);
  const std::vector<double> w = interpolation_weights(basis_, rs.loc);
  const std::size_t off = mesh_.local_offset(rs.loc.ispec);
  for (int p = 0; p < mesh_.ngll3(); ++p) {
    // Skip negligible weights to keep the per-step cost of exact stations
    // visible but bounded; nearest stations reduce to a single node.
    if (std::abs(w[static_cast<std::size_t>(p)]) < 1e-14) continue;
    rs.node_glob.push_back(mesh_.ibool[off + static_cast<std::size_t>(p)]);
    rs.weights.push_back(w[static_cast<std::size_t>(p)]);
  }
  receivers_.push_back(std::move(rs));
  return static_cast<int>(receivers_.size()) - 1;
}

// Deterministic owner election for points on slice boundaries (ISSUE 3
// bugfix). A source/receiver sitting exactly on a shared interface locates
// with (near-)identical error on every adjacent rank; without a collective
// decision each of them would add it and the injected amplitude scales
// with the number of claimants. Elect by allreduce-Min on the location
// error, then break ties (floating-point-identical errors on shared faces
// are the common case, not the exception) by lowest rank.
bool Simulation::elect_owner(double error_m) const {
  if (comm_ == nullptr) return true;
  const double best = comm_->allreduce_one(error_m, smpi::ReduceOp::Min);
  // Everything within a whisker of the best error is a claimant; the
  // relative slack absorbs cross-rank rounding in the Newton locate.
  const double slack = 1e-9 * (1.0 + std::abs(best));
  const std::int64_t claim =
      error_m <= best + slack ? comm_->rank()
                              : std::numeric_limits<std::int64_t>::max();
  return comm_->allreduce_one(claim, smpi::ReduceOp::Min) == comm_->rank();
}

bool Simulation::add_source_global(const PointSource& source) {
  const LocatedPoint loc =
      locate_point_exact(mesh_, basis_, source.x, source.y, source.z);
  if (!elect_owner(loc.error_m)) return false;
  add_source(source);
  return true;
}

int Simulation::add_receiver_global(double x, double y, double z,
                                    bool exact) {
  const LocatedPoint loc = exact ? locate_point_exact(mesh_, basis_, x, y, z)
                                 : locate_point_nearest(mesh_, basis_, x, y, z);
  if (!elect_owner(loc.error_m)) return -1;
  return add_receiver(x, y, z, exact);
}

void Simulation::set_solid_element_order(const std::vector<int>& order) {
  SFG_CHECK_MSG(order.size() == solid_elements_.size(),
                "order must cover exactly the solid elements");
  std::vector<bool> seen(static_cast<std::size_t>(mesh_.nspec), false);
  for (int e : order) {
    SFG_CHECK(e >= 0 && e < mesh_.nspec);
    SFG_CHECK_MSG(!mat_.element_is_fluid[static_cast<std::size_t>(e)] &&
                      !seen[static_cast<std::size_t>(e)],
                  "order must be a permutation of the solid elements");
    seen[static_cast<std::size_t>(e)] = true;
  }
  solid_elements_ = order;
  build_colored_schedule();
}

void Simulation::set_initial_condition(
    const std::function<std::array<double, 3>(double, double, double)>&
        displ_at,
    const std::function<std::array<double, 3>(double, double, double)>&
        veloc_at) {
  SFG_CHECK(displ_at != nullptr);
  const GlobalCoordinates gc = global_coordinates(mesh_);
  for (std::size_t g = 0; g < static_cast<std::size_t>(mesh_.nglob); ++g) {
    const auto u = displ_at(gc.x[g], gc.y[g], gc.z[g]);
    displ_[g * 3 + 0] = static_cast<float>(u[0]);
    displ_[g * 3 + 1] = static_cast<float>(u[1]);
    displ_[g * 3 + 2] = static_cast<float>(u[2]);
    if (veloc_at) {
      const auto v = veloc_at(gc.x[g], gc.y[g], gc.z[g]);
      veloc_[g * 3 + 0] = static_cast<float>(v[0]);
      veloc_[g * 3 + 1] = static_cast<float>(v[1]);
      veloc_[g * 3 + 2] = static_cast<float>(v[2]);
    }
  }
}

ElementPointers Simulation::element_pointers(int ispec) const {
  const std::size_t off = mesh_.local_offset(ispec);
  ElementPointers ep;
  ep.xix = mesh_.xix.data() + off;
  ep.xiy = mesh_.xiy.data() + off;
  ep.xiz = mesh_.xiz.data() + off;
  ep.etax = mesh_.etax.data() + off;
  ep.etay = mesh_.etay.data() + off;
  ep.etaz = mesh_.etaz.data() + off;
  ep.gammax = mesh_.gammax.data() + off;
  ep.gammay = mesh_.gammay.data() + off;
  ep.gammaz = mesh_.gammaz.data() + off;
  ep.jacobian = mesh_.jacobian.data() + off;
  ep.kappav = mat_.kappav.data() + off;
  ep.muv = mat_.muv.data() + off;
  ep.rho = mat_.rho.data() + off;
  if (cfg_.gravity) {
    ep.grav_g = grav_g_.data() + off;
    ep.grav_dgdr = grav_dgdr_.data() + off;
    ep.grav_drhodr = grav_drhodr_.data() + off;
    ep.grav_rx = grav_rx_.data() + off;
    ep.grav_ry = grav_ry_.data() + off;
    ep.grav_rz = grav_rz_.data() + off;
    ep.grav_invr = grav_invr_.data() + off;
  }
  return ep;
}

// The gather/scatter pair is the hot indirection of the solver: one cached
// ibool pointer per element replaces the per-point offset arithmetic
// (measurable at NGLL = 5, where each element makes 125 * 6 global
// accesses).
void Simulation::gather_element_displ(int ispec, KernelWorkspace& ws) {
  const int* ib = mesh_.ibool.data() + mesh_.local_offset(ispec);
  const int n3 = mesh_.ngll3();
  const float* d = displ_.data();
  float* ux = ws.ux.data();
  float* uy = ws.uy.data();
  float* uz = ws.uz.data();
  for (int p = 0; p < n3; ++p) {
    const std::size_t g = static_cast<std::size_t>(ib[p]) * 3;
    ux[p] = d[g + 0];
    uy[p] = d[g + 1];
    uz[p] = d[g + 2];
  }
}

void Simulation::scatter_element_forces(int ispec,
                                        const KernelWorkspace& ws) {
  const int* ib = mesh_.ibool.data() + mesh_.local_offset(ispec);
  const int n3 = mesh_.ngll3();
  float* a = accel_.data();
  const float* fx = ws.fx.data();
  const float* fy = ws.fy.data();
  const float* fz = ws.fz.data();
  for (int p = 0; p < n3; ++p) {
    const std::size_t g = static_cast<std::size_t>(ib[p]) * 3;
    a[g + 0] += fx[p];
    a[g + 1] += fy[p];
    a[g + 2] += fz[p];
  }
}

void Simulation::update_memory_variables(int ispec,
                                         const KernelWorkspace& ws) {
  const SlsSeries& sls = *cfg_.sls;
  const std::size_t off = mesh_.local_offset(ispec);
  const int n3 = mesh_.ngll3();
  for (int l = 0; l < sls.num_sls(); ++l) {
    const auto a = static_cast<float>(exp_a_[l]);
    const auto b = static_cast<float>(one_minus_a_[l] *
                                      sls.y[static_cast<std::size_t>(l)]);
    auto& rl = r_mem_[static_cast<std::size_t>(l)];
    for (int c = 0; c < 5; ++c) {
      float* r = rl[static_cast<std::size_t>(c)].data() + off;
      const float* eps = ws.epsdev[c].data();
      const float* fac = att_factor_.data() + off;
      for (int p = 0; p < n3; ++p) r[p] = a * r[p] + b * fac[p] * eps[p];
    }
  }
}

void Simulation::process_fluid_element(int ispec, KernelWorkspace& ws) {
  const int* ib = mesh_.ibool.data() + mesh_.local_offset(ispec);
  const int n3 = mesh_.ngll3();
  const float* c = chi_.data();
  float* wchi = ws.chi.data();
  for (int p = 0; p < n3; ++p)
    wchi[p] = c[static_cast<std::size_t>(ib[p])];
  kernel_.compute_acoustic(element_pointers(ispec), ws);
  float* cdd = chi_ddot_.data();
  const float* fchi = ws.fchi.data();
  for (int p = 0; p < n3; ++p)
    cdd[static_cast<std::size_t>(ib[p])] += fchi[p];
}

void Simulation::process_fluid_batch(const PackedBatches& pb, std::size_t b,
                                     ThreadScratch& scratch) {
  BatchWorkspace& ws = *scratch.bws;
  const int lanes = pb.lanes;
  const int count = pb.counts[b];
  const int n3 = mesh_.ngll3();
  const auto ln = static_cast<std::size_t>(lanes);

  const float* c = chi_.data();
  for (int l = 0; l < lanes; ++l) {
    // Pad lanes replicate lane 0 (never scattered).
    const int e =
        pb.elems[b * ln + static_cast<std::size_t>(l < count ? l : 0)];
    const int* ib = mesh_.ibool.data() + mesh_.local_offset(e);
    float* wchi = ws.chi.data() + static_cast<std::size_t>(l);
    for (int p = 0; p < n3; ++p)
      wchi[static_cast<std::size_t>(p) * ln] =
          c[static_cast<std::size_t>(ib[p])];
  }

  BatchPointers bp;
  const std::size_t boff = b * pb.stride;
  bp.xix = pb.xix.data() + boff;
  bp.xiy = pb.xiy.data() + boff;
  bp.xiz = pb.xiz.data() + boff;
  bp.etax = pb.etax.data() + boff;
  bp.etay = pb.etay.data() + boff;
  bp.etaz = pb.etaz.data() + boff;
  bp.gammax = pb.gammax.data() + boff;
  bp.gammay = pb.gammay.data() + boff;
  bp.gammaz = pb.gammaz.data() + boff;
  bp.jacobian = pb.jacobian.data() + boff;
  bp.kappav = pb.kappav.data() + boff;
  bp.muv = pb.muv.data() + boff;
  bp.rho = pb.rho.data() + boff;

  kernel_.compute_acoustic_batched(bp, ws);

  float* cdd = chi_ddot_.data();
  for (int l = 0; l < count; ++l) {
    const int e = pb.elems[b * ln + static_cast<std::size_t>(l)];
    const int* ib = mesh_.ibool.data() + mesh_.local_offset(e);
    const float* fchi = ws.fchi.data() + static_cast<std::size_t>(l);
    for (int p = 0; p < n3; ++p)
      cdd[static_cast<std::size_t>(ib[p])] +=
          fchi[static_cast<std::size_t>(p) * ln];
  }
}

void Simulation::process_solid_batch(const PackedBatches& pb, std::size_t b,
                                     ThreadScratch& scratch) {
  BatchWorkspace& ws = *scratch.bws;
  const int lanes = pb.lanes;
  const int count = pb.counts[b];
  const int n3 = mesh_.ngll3();
  const auto ln = static_cast<std::size_t>(lanes);

  // Gather: real lanes from their elements, pad lanes replicate lane 0
  // (their results are never scattered).
  const float* d = displ_.data();
  for (int l = 0; l < lanes; ++l) {
    const int e = pb.elems[b * ln + static_cast<std::size_t>(l < count ? l : 0)];
    const int* ib = mesh_.ibool.data() + mesh_.local_offset(e);
    float* ux = ws.ux.data() + static_cast<std::size_t>(l);
    float* uy = ws.uy.data() + static_cast<std::size_t>(l);
    float* uz = ws.uz.data() + static_cast<std::size_t>(l);
    for (int p = 0; p < n3; ++p) {
      const std::size_t g = static_cast<std::size_t>(ib[p]) * 3;
      const std::size_t q = static_cast<std::size_t>(p) * ln;
      ux[q] = d[g + 0];
      uy[q] = d[g + 1];
      uz[q] = d[g + 2];
    }
  }

  BatchPointers bp;
  const std::size_t boff = b * pb.stride;
  bp.xix = pb.xix.data() + boff;
  bp.xiy = pb.xiy.data() + boff;
  bp.xiz = pb.xiz.data() + boff;
  bp.etax = pb.etax.data() + boff;
  bp.etay = pb.etay.data() + boff;
  bp.etaz = pb.etaz.data() + boff;
  bp.gammax = pb.gammax.data() + boff;
  bp.gammay = pb.gammay.data() + boff;
  bp.gammaz = pb.gammaz.data() + boff;
  bp.jacobian = pb.jacobian.data() + boff;
  bp.kappav = pb.kappav.data() + boff;
  bp.muv = pb.muv.data() + boff;
  bp.rho = pb.rho.data() + boff;
  if (cfg_.gravity) {
    bp.grav_g = pb.grav_g.data() + boff;
    bp.grav_dgdr = pb.grav_dgdr.data() + boff;
    bp.grav_drhodr = pb.grav_drhodr.data() + boff;
    bp.grav_rx = pb.grav_rx.data() + boff;
    bp.grav_ry = pb.grav_ry.data() + boff;
    bp.grav_rz = pb.grav_rz.data() + boff;
    bp.grav_invr = pb.grav_invr.data() + boff;
  }

  if (cfg_.attenuation) {
    // Strided memory-variable pre-sums, mirroring the element path per
    // lane (pad lanes stay zero — harmless, never scattered).
    const std::size_t used = static_cast<std::size_t>(n3) * ln;
    for (auto& comp : scratch.r_sum_soa)
      std::fill(comp.data(), comp.data() + used, 0.0f);
    for (int l = 0; l < count; ++l) {
      const int e = pb.elems[b * ln + static_cast<std::size_t>(l)];
      const std::size_t off = mesh_.local_offset(e);
      float* sxx = scratch.r_sum_soa[0].data() + static_cast<std::size_t>(l);
      float* syy = scratch.r_sum_soa[1].data() + static_cast<std::size_t>(l);
      float* szz = scratch.r_sum_soa[2].data() + static_cast<std::size_t>(l);
      float* sxy = scratch.r_sum_soa[3].data() + static_cast<std::size_t>(l);
      float* sxz = scratch.r_sum_soa[4].data() + static_cast<std::size_t>(l);
      float* syz = scratch.r_sum_soa[5].data() + static_cast<std::size_t>(l);
      for (const auto& rl : r_mem_) {
        const float* rxx = rl[0].data() + off;
        const float* ryy = rl[1].data() + off;
        const float* rxy = rl[2].data() + off;
        const float* rxz = rl[3].data() + off;
        const float* ryz = rl[4].data() + off;
        for (int p = 0; p < n3; ++p) {
          const std::size_t q = static_cast<std::size_t>(p) * ln;
          sxx[q] += rxx[p];
          syy[q] += ryy[p];
          szz[q] -= rxx[p] + ryy[p];  // deviatoric: R_zz = -(R_xx + R_yy)
          sxy[q] += rxy[p];
          sxz[q] += rxz[p];
          syz[q] += ryz[p];
        }
      }
    }
    for (int c6 = 0; c6 < 6; ++c6)
      bp.r_sum[c6] = scratch.r_sum_soa[static_cast<std::size_t>(c6)].data();
  }

  kernel_.compute_elastic_batched(bp, ws);

  // Scatter real lanes one by one in item order — the same per-point
  // summation order as the element-at-a-time path.
  float* a = accel_.data();
  for (int l = 0; l < count; ++l) {
    const int e = pb.elems[b * ln + static_cast<std::size_t>(l)];
    const std::size_t off = mesh_.local_offset(e);
    const int* ib = mesh_.ibool.data() + off;
    const float* fx = ws.fx.data() + static_cast<std::size_t>(l);
    const float* fy = ws.fy.data() + static_cast<std::size_t>(l);
    const float* fz = ws.fz.data() + static_cast<std::size_t>(l);
    for (int p = 0; p < n3; ++p) {
      const std::size_t g = static_cast<std::size_t>(ib[p]) * 3;
      const std::size_t q = static_cast<std::size_t>(p) * ln;
      a[g + 0] += fx[q];
      a[g + 1] += fy[q];
      a[g + 2] += fz[q];
    }
    if (cfg_.gravity) {
      const float* gx = ws.gx.data() + static_cast<std::size_t>(l);
      const float* gy = ws.gy.data() + static_cast<std::size_t>(l);
      const float* gz = ws.gz.data() + static_cast<std::size_t>(l);
      for (int p = 0; p < n3; ++p) {
        const auto g = static_cast<std::size_t>(ib[p]);
        const float w = w3jac_[off + static_cast<std::size_t>(p)];
        const std::size_t q = static_cast<std::size_t>(p) * ln;
        a[g * 3 + 0] += w * gx[q];
        a[g * 3 + 1] += w * gy[q];
        a[g * 3 + 2] += w * gz[q];
      }
    }
  }

  if (cfg_.attenuation) {
    auto update = [&] {
      const SlsSeries& sls = *cfg_.sls;
      for (int l = 0; l < count; ++l) {
        const int e = pb.elems[b * ln + static_cast<std::size_t>(l)];
        const std::size_t off = mesh_.local_offset(e);
        for (int s = 0; s < sls.num_sls(); ++s) {
          const auto ea = static_cast<float>(exp_a_[s]);
          const auto eb = static_cast<float>(
              one_minus_a_[s] * sls.y[static_cast<std::size_t>(s)]);
          auto& rl = r_mem_[static_cast<std::size_t>(s)];
          for (int c5 = 0; c5 < 5; ++c5) {
            float* r = rl[static_cast<std::size_t>(c5)].data() + off;
            const float* eps =
                ws.epsdev[c5].data() + static_cast<std::size_t>(l);
            const float* fac = att_factor_.data() + off;
            for (int p = 0; p < n3; ++p)
              r[p] = ea * r[p] +
                     eb * fac[p] * eps[static_cast<std::size_t>(p) * ln];
          }
        }
      }
    };
    if (profile_.enabled()) {
      WallTimer t_att;
      update();
      scratch.attenuation_seconds += t_att.seconds();
    } else {
      update();
    }
  }
}

void Simulation::run_solid_batches(
    const std::vector<std::vector<int>>& batches) {
  for (const std::vector<int>& batch : batches) {
    if (pool_ == nullptr) {
      for (int e : batch) process_solid_element(e, *scratch_[0]);
    } else {
      pool_->parallel_for_chunked(
          batch.size(), [&](int t, std::size_t b, std::size_t n) {
            ThreadScratch& ts = *scratch_[static_cast<std::size_t>(t)];
            for (std::size_t i = b; i < n; ++i)
              process_solid_element(batch[i], ts);
          });
    }
  }
}

void Simulation::run_fluid_batches(
    const std::vector<std::vector<int>>& batches) {
  for (const std::vector<int>& batch : batches) {
    if (pool_ == nullptr) {
      for (int e : batch) process_fluid_element(e, scratch_[0]->ws);
    } else {
      pool_->parallel_for_chunked(
          batch.size(), [&](int t, std::size_t b, std::size_t n) {
            KernelWorkspace& ws = scratch_[static_cast<std::size_t>(t)]->ws;
            for (std::size_t i = b; i < n; ++i)
              process_fluid_element(batch[i], ws);
          });
    }
  }
}

void Simulation::run_element_schedule(const ElementSchedule& schedule,
                                      const PackedBatches* packed,
                                      bool solid) {
  const std::vector<int>& items = schedule.items;
  auto run_range = [&](int t, std::size_t b, std::size_t e) {
    ThreadScratch& ts = *scratch_[static_cast<std::size_t>(t)];
    if (packed != nullptr) {
      // Batched kernel: whole batches tile every unit range (checked at
      // schedule build), so walk the cuts covering [b, e).
      const auto& cut = packed->cut;
      auto bi = static_cast<std::size_t>(
          std::lower_bound(cut.begin(), cut.end(), b) - cut.begin());
      for (; bi + 1 < cut.size() && cut[bi] < e; ++bi) {
        if (solid)
          process_solid_batch(*packed, bi, ts);
        else
          process_fluid_batch(*packed, bi, ts);
      }
    } else if (solid) {
      for (std::size_t i = b; i < e; ++i)
        process_solid_element(items[i], ts);
    } else {
      for (std::size_t i = b; i < e; ++i)
        process_fluid_element(items[i], ts.ws);
    }
  };
  // Paired and plain rounds both feed SchedulePaired; residual rounds are
  // reported separately so the report shows how much work the straddler
  // demotion costs. Both are nested inside the enclosing solid/fluid
  // phase and excluded from the wall-time-sum invariant.
  auto record_round = [&](int /*round*/, int tag, double seconds) {
    if (!profile_.enabled()) return;
    const metrics::Phase phase = tag == kSchedRoundResidual
                                     ? metrics::Phase::ScheduleResidual
                                     : metrics::Phase::SchedulePaired;
    profile_.record(phase, profile_.now() - seconds, seconds);
  };
  if (pool_ == nullptr) {
    // Inline path (1 slot): same round/unit traversal order, same
    // per-point summation order, hence bit-identical to the pooled path.
    for (const ThreadPool::WorkRound& round : schedule.work.rounds) {
      if (round.units.empty()) continue;
      std::size_t n = 0;
      for (const ThreadPool::WorkUnit& u : round.units) n += u.size();
      if (n == 0) continue;
      WallTimer t_round;
      for (const ThreadPool::WorkUnit& u : round.units)
        if (u.begin < u.end) run_range(0, u.begin, u.end);
      record_round(0, round.tag, t_round.seconds());
    }
  } else {
    pool_->parallel_for_schedule(schedule.work, run_range, record_round);
  }
}

/// Elementwise-independent global update, chunked over the pool. Chunk
/// boundaries never change results (each index is written once), so this
/// is bit-identical at any thread count.
void Simulation::parallel_over(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (pool_ == nullptr) {
    fn(0, n);
    return;
  }
  pool_->parallel_for_chunked(
      n, [&](int, std::size_t b, std::size_t e) { fn(b, e); });
}

void Simulation::compute_fluid_forces() {
  {
    metrics::PhaseScope ps(&profile_, metrics::Phase::FluidForces);

    // Element contributions.
    if (colored_schedule_ &&
        (schedule_ == SolverSchedule::Interleaved || batched_)) {
      run_element_schedule(sched_fluid_, batched_ ? &packed_fluid_ : nullptr,
                           /*solid=*/false);
    } else if (colored_schedule_) {
      run_fluid_batches(fluid_batches_);
    } else if (batched_) {
      for (std::size_t b = 0; b < packed_seq_fluid_.num_batches(); ++b)
        process_fluid_batch(packed_seq_fluid_, b, *scratch_[0]);
    } else {
      for (int e : fluid_elements_)
        process_fluid_element(e, scratch_[0]->ws);
    }

    // Solid -> fluid coupling: continuity of normal displacement supplies
    // the boundary term with the solid displacement at t^{n+1}.
    for (const CouplingPoint& cp : coupling_) {
      const auto g = static_cast<std::size_t>(cp.iglob);
      const double un = displ_[g * 3 + 0] * cp.nx +
                        displ_[g * 3 + 1] * cp.ny +
                        displ_[g * 3 + 2] * cp.nz;
      chi_ddot_[g] += static_cast<float>(cp.weight * un);
    }
  }

  if (exchanger_ != nullptr) {
    metrics::PhaseScope ps(&profile_, metrics::Phase::HaloWait);
    exchanger_->assemble_add(*comm_, chi_ddot_.data(), 1);
  }

  metrics::PhaseScope ps(&profile_, metrics::Phase::MassUpdate);
  parallel_over(chi_ddot_.size(), [&](std::size_t b, std::size_t n) {
    for (std::size_t g = b; g < n; ++g)
      chi_ddot_[g] *= rmass_inv_fluid_[g];
  });
}

void Simulation::process_solid_element(int e, ThreadScratch& scratch) {
  KernelWorkspace& ws = scratch.ws;
  const int n3 = mesh_.ngll3();
  gather_element_displ(e, ws);
  ElementPointers ep = element_pointers(e);
  if (cfg_.attenuation) {
    // Pre-sum the memory variables over the SLSs for this element.
    const std::size_t off = mesh_.local_offset(e);
    for (int c = 0; c < 6; ++c) {
      float* dst = scratch.r_sum[static_cast<std::size_t>(c)].data();
      for (int p = 0; p < n3; ++p) dst[p] = 0.0f;
    }
    for (const auto& rl : r_mem_) {
      const float* rxx = rl[0].data() + off;
      const float* ryy = rl[1].data() + off;
      const float* rxy = rl[2].data() + off;
      const float* rxz = rl[3].data() + off;
      const float* ryz = rl[4].data() + off;
      float* sxx = scratch.r_sum[0].data();
      float* syy = scratch.r_sum[1].data();
      float* szz = scratch.r_sum[2].data();
      float* sxy = scratch.r_sum[3].data();
      float* sxz = scratch.r_sum[4].data();
      float* syz = scratch.r_sum[5].data();
      for (int p = 0; p < n3; ++p) {
        sxx[p] += rxx[p];
        syy[p] += ryy[p];
        szz[p] -= rxx[p] + ryy[p];  // deviatoric: R_zz = -(R_xx + R_yy)
        sxy[p] += rxy[p];
        sxz[p] += rxz[p];
        syz[p] += ryz[p];
      }
    }
    for (int c = 0; c < 6; ++c)
      ep.r_sum[c] = scratch.r_sum[static_cast<std::size_t>(c)].data();
  }
  kernel_.compute_elastic(ep, ws);
  scatter_element_forces(e, ws);
  if (cfg_.gravity) {
    // Collocated body force: accel += w3 * jacobian * h at each node.
    const std::size_t off = mesh_.local_offset(e);
    const int* ib = mesh_.ibool.data() + off;
    for (int p = 0; p < n3; ++p) {
      const auto g = static_cast<std::size_t>(ib[p]);
      const float w = w3jac_[off + static_cast<std::size_t>(p)];
      accel_[g * 3 + 0] += w * ws.gx[static_cast<std::size_t>(p)];
      accel_[g * 3 + 1] += w * ws.gy[static_cast<std::size_t>(p)];
      accel_[g * 3 + 2] += w * ws.gz[static_cast<std::size_t>(p)];
    }
  }
  if (cfg_.attenuation) {
    if (profile_.enabled()) {
      // Per-element nested timing: folded into the AttenuationUpdate
      // phase once per step by record_attenuation_time(). Each thread
      // touches only its own scratch slot.
      WallTimer t_att;
      update_memory_variables(e, ws);
      scratch.attenuation_seconds += t_att.seconds();
    } else {
      update_memory_variables(e, ws);
    }
  }
}

void Simulation::record_attenuation_time() {
  if (!profile_.enabled() || !cfg_.attenuation) return;
  double total = 0.0;
  for (const auto& s : scratch_) total += s->attenuation_seconds;
  const double delta = total - att_seconds_reported_;
  if (delta <= 0.0) return;
  att_seconds_reported_ = total;
  profile_.record(metrics::Phase::AttenuationUpdate,
                  profile_.now() - delta, delta);
}

void Simulation::compute_solid_forces() {
  if (!colored_schedule_) {
    metrics::PhaseScope ps(&profile_, metrics::Phase::SolidForces);
    if (batched_) {
      for (std::size_t b = 0; b < packed_seq_solid_.num_batches(); ++b)
        process_solid_batch(packed_seq_solid_, b, *scratch_[0]);
    } else {
      for (int e : solid_elements_) process_solid_element(e, *scratch_[0]);
    }
  } else {
    // Boundary elements first: once they (and the cheap surface terms
    // below) have contributed, every halo point holds its final local
    // value and the exchange can start.
    metrics::PhaseScope ps(&profile_, metrics::Phase::SolidBoundary);
    if (schedule_ == SolverSchedule::Interleaved || batched_)
      run_element_schedule(sched_solid_boundary_,
                           batched_ ? &packed_solid_boundary_ : nullptr,
                           /*solid=*/true);
    else
      run_solid_batches(solid_boundary_batches_);
  }

  metrics::PhaseScope ps_surface(&profile_,
                                 metrics::Phase::SourceInjection);

  // Fluid -> solid coupling: fluid pressure p = -chi_ddot acts as a
  // traction chi_ddot * n_solid = -chi_ddot * n_fluid on the solid.
  for (const CouplingPoint& cp : coupling_) {
    const auto g = static_cast<std::size_t>(cp.iglob);
    const double f = cp.weight * static_cast<double>(chi_ddot_[g]);
    accel_[g * 3 + 0] -= static_cast<float>(f * cp.nx);
    accel_[g * 3 + 1] -= static_cast<float>(f * cp.ny);
    accel_[g * 3 + 2] -= static_cast<float>(f * cp.nz);
  }

  // Stacey absorbing boundary: traction -rho (vp vn n + vs vt).
  for (const AbsorbingPoint& ap : absorbing_) {
    const auto g = static_cast<std::size_t>(ap.iglob);
    const double vx = veloc_[g * 3 + 0];
    const double vy = veloc_[g * 3 + 1];
    const double vz = veloc_[g * 3 + 2];
    const double vn = vx * ap.nx + vy * ap.ny + vz * ap.nz;
    const double rho = mat_.rho[ap.local];
    const double vp = mat_.vp[ap.local];
    const double vs = mat_.vs[ap.local];
    const double tn = rho * vp * vn;
    accel_[g * 3 + 0] -= static_cast<float>(
        ap.weight * (tn * ap.nx + rho * vs * (vx - vn * ap.nx)));
    accel_[g * 3 + 1] -= static_cast<float>(
        ap.weight * (tn * ap.ny + rho * vs * (vy - vn * ap.ny)));
    accel_[g * 3 + 2] -= static_cast<float>(
        ap.weight * (tn * ap.nz + rho * vs * (vz - vn * ap.nz)));
  }

  // Sources.
  inject_sources();
  ps_surface.stop();

  // Comm/compute overlap (§5): open the halo exchange as soon as every
  // halo point carries its final local value, hide it behind the interior
  // batches, and only then wait. Interior elements touch no halo point, so
  // they never race with the exchange snapshot or accumulation.
  if (colored_schedule_) {
    if (exchanger_ != nullptr) {
      metrics::PhaseScope ps(&profile_, metrics::Phase::HaloBegin);
      exchanger_->assemble_add_begin(*comm_, accel_.data(), 3);
    }
    {
      metrics::PhaseScope ps(&profile_, metrics::Phase::SolidInterior);
      WallTimer t_interior;
      if (schedule_ == SolverSchedule::Interleaved || batched_)
        run_element_schedule(sched_solid_interior_,
                             batched_ ? &packed_solid_interior_ : nullptr,
                             /*solid=*/true);
      else
        run_solid_batches(solid_interior_batches_);
      if (exchanger_ != nullptr)
        overlap_compute_seconds_ += t_interior.seconds();
    }
    if (exchanger_ != nullptr) {
      metrics::PhaseScope ps(&profile_, metrics::Phase::HaloWait);
      WallTimer t_wait;
      exchanger_->assemble_add_end(*comm_);
      overlap_wait_seconds_ += t_wait.seconds();
    }
  } else if (exchanger_ != nullptr) {
    metrics::PhaseScope ps(&profile_, metrics::Phase::HaloWait);
    exchanger_->assemble_add(*comm_, accel_.data(), 3);
  }

  metrics::PhaseScope ps_mass(&profile_, metrics::Phase::MassUpdate);
  const auto ng = static_cast<std::size_t>(mesh_.nglob);
  parallel_over(ng, [&](std::size_t b, std::size_t n) {
    for (std::size_t g = b; g < n; ++g) {
      const float rm = rmass_inv_solid_[g];
      accel_[g * 3 + 0] *= rm;
      accel_[g * 3 + 1] *= rm;
      accel_[g * 3 + 2] *= rm;
    }
  });

  // Coriolis force: a -= 2 omega x v (exact after mass division because
  // the term's weak form shares the diagonal mass matrix).
  if (cfg_.rotation) {
    const double two_om = 2.0 * cfg_.omega_rad_s;
    parallel_over(ng, [&](std::size_t b, std::size_t n) {
      for (std::size_t g = b; g < n; ++g) {
        const double vx = veloc_[g * 3 + 0];
        const double vy = veloc_[g * 3 + 1];
        if (rmass_inv_solid_[g] == 0.0f) continue;
        accel_[g * 3 + 0] += static_cast<float>(two_om * vy);
        accel_[g * 3 + 1] -= static_cast<float>(two_om * vx);
      }
    });
  }
}

void Simulation::inject_sources() {
  const int n3 = mesh_.ngll3();
  for (const DiscreteSource& src : sources_) {
    const double s = src.stf(time_ + cfg_.dt);
    const std::size_t off = mesh_.local_offset(src.ispec);
    for (int p = 0; p < n3; ++p) {
      const auto& f = src.node_force[static_cast<std::size_t>(p)];
      if (f[0] == 0.0 && f[1] == 0.0 && f[2] == 0.0) continue;
      const auto g = static_cast<std::size_t>(
          mesh_.ibool[off + static_cast<std::size_t>(p)]);
      accel_[g * 3 + 0] += static_cast<float>(f[0] * s);
      accel_[g * 3 + 1] += static_cast<float>(f[1] * s);
      accel_[g * 3 + 2] += static_cast<float>(f[2] * s);
    }
  }
}

void Simulation::exchange_point_min(std::vector<int>& values) const {
  if (exchanger_ == nullptr) return;
  // Levels and rates are tiny non-negative integers (kNoTouchingRate =
  // 2^20 at worst) — exactly representable in float, so the round trip
  // through the float-typed exchanger is lossless.
  std::vector<float> f(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    f[i] = static_cast<float>(values[i]);
  exchanger_->assemble_min(*comm_, f.data(), 1);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<int>(f[i]);
}

void Simulation::build_cluster_partition_lts() {
  lts_active_ = cfg_.lts.enabled;
  if (!lts_active_) return;

  std::vector<int> level_of;
  if (cfg_.lts.element_dt.empty()) {
    level_of.assign(static_cast<std::size_t>(mesh_.nspec), 0);
  } else {
    SFG_CHECK_MSG(cfg_.lts.element_dt.size() ==
                      static_cast<std::size_t>(mesh_.nspec),
                  "lts.element_dt must carry one stable dt per element");
    level_of =
        cluster_levels_from_dt(cfg_.lts.element_dt, cfg_.dt,
                               cfg_.lts.max_levels);
  }
  // Fluid elements march at the base rate: the acoustic potential has no
  // interface interpolation yet.
  for (int e : fluid_elements_) level_of[static_cast<std::size_t>(e)] = 0;

  // Rate-2 smoothing to a CROSS-RANK fixed point: point levels are
  // min-combined across ranks before each clamp so an element whose fast
  // neighbour lives on another rank still steps down. Terminates because
  // levels only ever decrease.
  std::vector<int> point_level;
  for (;;) {
    point_level = cluster_point_levels(mesh_, level_of);
    exchange_point_min(point_level);
    int changed = clamp_cluster_levels(mesh_, point_level, level_of);
    if (comm_ != nullptr)
      changed = static_cast<int>(comm_->allreduce_one<std::uint64_t>(
          static_cast<std::uint64_t>(changed), smpi::ReduceOp::Max));
    if (changed == 0) break;
  }
  lts_part_ = finalize_cluster_partition(mesh_, std::move(level_of),
                                         std::move(point_level));

  lts_num_levels_ = lts_part_.num_levels;
  if (comm_ != nullptr)
    lts_num_levels_ = static_cast<int>(comm_->allreduce_one<std::uint64_t>(
        static_cast<std::uint64_t>(lts_num_levels_), smpi::ReduceOp::Max));

  if (lts_num_levels_ > 1) {
    // Feature restrictions: these carry per-substep element or boundary
    // state the interface interpolation does not serve yet. Refuse loudly
    // instead of producing silently wrong physics.
    SFG_CHECK_MSG(!cfg_.attenuation,
                  "multi-cluster LTS does not support attenuation");
    SFG_CHECK_MSG(!cfg_.rotation,
                  "multi-cluster LTS does not support rotation");
    SFG_CHECK_MSG(!global_has_fluid_,
                  "multi-cluster LTS does not support fluid regions");
    SFG_CHECK_MSG(cfg_.absorbing_faces.empty(),
                  "multi-cluster LTS does not support absorbing boundaries");
  }

  // Interface set from the min-combined marching rates (the exchanged
  // values keep the interpolation-set membership — and hence the displ
  // trajectory of every shared point — bit-consistent across ranks).
  std::vector<int> min_rate = cluster_point_min_rate(mesh_, lts_part_.rate_of);
  exchange_point_min(min_rate);
  lts_interp_ = cluster_interface_points(mesh_, lts_part_.point_level,
                                         min_rate, cfg_.lts.cluster);

  // Invariant C-D at construction: every mid-stride gather is covered by
  // the interpolation set. A partition that fails cannot march.
  const std::string err =
      check_cluster_interfaces(mesh_, solid_elements_, lts_part_, lts_interp_);
  SFG_CHECK_MSG(err.empty(), "cluster schedule invariant violated: " << err);

  const auto ng = static_cast<std::size_t>(mesh_.nglob);
  a_pred_.assign(ng * 3, 0.0f);
  const std::size_t ni = lts_interp_.points.size();
  interp_u0_.assign(ni * 3, 0.0f);
  interp_v0_.assign(ni * 3, 0.0f);
  interp_a0_.assign(ni * 3, 0.0f);
  lts_clock_.assign(static_cast<std::size_t>(lts_num_levels_), 0);

  SFG_INFO("clustered LTS: levels=" << lts_num_levels_
           << " interface_points=" << ni);
}

void Simulation::lts_predict() {
  const double dt = cfg_.dt;
  const auto ng = static_cast<std::size_t>(mesh_.nglob);
  const int n = it_;  // substep about to execute
  const int* plevel = lts_part_.point_level.data();
  const std::size_t ni = lts_interp_.points.size();

  // Degenerate single-cluster run (globally one level, hence no interface
  // points): every point is due every substep and a_pred_ mirrors accel_,
  // so the legacy fused loop computes the same bits without the extra
  // a_pred_/level streams (which otherwise cost a few percent of a step).
  if (lts_num_levels_ == 1) {
    const double dt2 = 0.5 * dt * dt;
    parallel_over(ng * 3, [&](std::size_t b, std::size_t e) {
      for (std::size_t g = b; g < e; ++g) {
        displ_[g] += static_cast<float>(dt * veloc_[g] + dt2 * accel_[g]);
        veloc_[g] += static_cast<float>(0.5 * dt * accel_[g]);
        accel_[g] = 0.0f;
      }
    });
    return;
  }

  // Stride-start Taylor snapshot of the interface points, BEFORE the
  // masked predictor moves them: u0/v0 are the stride-boundary kinematics,
  // a0 the acceleration latched at the owning cluster's last corrector.
  if (ni > 0) {
    metrics::PhaseScope ps(&profile_, metrics::Phase::LtsInterpolate);
    for (std::size_t i = 0; i < ni; ++i) {
      const int lv = lts_interp_.level[i];
      if ((n & ((1 << lv) - 1)) != 0) continue;
      const auto g = static_cast<std::size_t>(lts_interp_.points[i]) * 3;
      for (int c = 0; c < 3; ++c) {
        interp_u0_[i * 3 + static_cast<std::size_t>(c)] = displ_[g + c];
        interp_v0_[i * 3 + static_cast<std::size_t>(c)] = veloc_[g + c];
        interp_a0_[i * 3 + static_cast<std::size_t>(c)] = a_pred_[g + c];
      }
    }
  }

  // Masked predictor: a level-L point takes its full 2^L dt stride at the
  // stride-start substep and rests otherwise; acceleration is zeroed at
  // EVERY point every substep (partial sums at resting points are junk by
  // construction and discarded). At one cluster (L == 0 everywhere)
  // dtL == dt bitwise, a_pred_ mirrors accel_, and this loop performs
  // exactly the legacy update — the bit-identity the golden legs pin.
  parallel_over(ng, [&](std::size_t b, std::size_t e) {
    for (std::size_t g = b; g < e; ++g) {
      const int lv = plevel[g];
      if ((static_cast<int>(n) & ((1 << lv) - 1)) == 0) {
        const double dtL = dt * static_cast<double>(1 << lv);
        const double dtL2 = 0.5 * dtL * dtL;
        for (int c = 0; c < 3; ++c) {
          const std::size_t q = g * 3 + static_cast<std::size_t>(c);
          displ_[q] +=
              static_cast<float>(dtL * veloc_[q] + dtL2 * a_pred_[q]);
          veloc_[q] += static_cast<float>(0.5 * dtL * a_pred_[q]);
        }
      }
      accel_[g * 3 + 0] = 0.0f;
      accel_[g * 3 + 1] = 0.0f;
      accel_[g * 3 + 2] = 0.0f;
    }
  });

  // Interface interpolation: faster neighbours gather these points
  // mid-stride, so their displacement must read the owning cluster's
  // trajectory at THIS substep's target time, not the full-stride jump
  // the predictor just wrote. Evaluate the Taylor polynomial at
  // s = (p + 1) dt into the stride (double math, one float round).
  if (ni > 0) {
    metrics::PhaseScope ps(&profile_, metrics::Phase::LtsInterpolate);
    for (std::size_t i = 0; i < ni; ++i) {
      const int lv = lts_interp_.level[i];
      const int p = n & ((1 << lv) - 1);
      const double s = static_cast<double>(p + 1) * dt;
      const auto g = static_cast<std::size_t>(lts_interp_.points[i]) * 3;
      for (int c = 0; c < 3; ++c) {
        const std::size_t q = i * 3 + static_cast<std::size_t>(c);
        displ_[g + c] = static_cast<float>(
            static_cast<double>(interp_u0_[q]) + s * interp_v0_[q] +
            0.5 * s * s * interp_a0_[q]);
      }
    }
  }
}

void Simulation::lts_correct() {
  const double dt = cfg_.dt;
  const auto ng = static_cast<std::size_t>(mesh_.nglob);
  const int n = it_;
  const int* plevel = lts_part_.point_level.data();

  // Degenerate single-cluster run: legacy corrector (a_pred_ stays at its
  // initial zeros — nothing reads it at one level, and checkpoints of a
  // single-cluster run round-trip those zeros consistently), plus the
  // rate-0 clock.
  if (lts_num_levels_ == 1) {
    parallel_over(ng * 3, [&](std::size_t b, std::size_t e) {
      for (std::size_t g = b; g < e; ++g)
        veloc_[g] += static_cast<float>(0.5 * dt * accel_[g]);
    });
    ++lts_clock_[0];
    return;
  }

  // Masked corrector: points due this substep finish their stride with
  // the freshly assembled acceleration and latch it for the next
  // predictor. Not-due points keep their half-updated velocity; their
  // accel_ holds junk that the next substep zeroes.
  parallel_over(ng, [&](std::size_t b, std::size_t e) {
    for (std::size_t g = b; g < e; ++g) {
      const int lv = plevel[g];
      if (((n + 1) & ((1 << lv) - 1)) != 0) continue;
      const double dtL = dt * static_cast<double>(1 << lv);
      for (int c = 0; c < 3; ++c) {
        const std::size_t q = g * 3 + static_cast<std::size_t>(c);
        veloc_[q] += static_cast<float>(0.5 * dtL * accel_[q]);
        a_pred_[q] = accel_[q];
      }
    }
  });

  // Per-rate stride clocks (checkpointed): clock[r] == step_count() >> r
  // after every step.
  for (int r = 0; r < lts_num_levels_; ++r)
    if (((n + 1) & ((1 << r) - 1)) == 0)
      ++lts_clock_[static_cast<std::size_t>(r)];
}

void Simulation::compute_solid_forces_lts() {
  const int n = it_;
  auto rate_active = [&](int r) { return ((n + 1) & ((1 << r) - 1)) == 0; };

  // Boundary clusters first (ascending rate — the per-point summation
  // order is (rate, color) lexicographic, fixed across thread counts),
  // then the halo exchange opens and the interior clusters hide it.
  {
    metrics::PhaseScope ps(&profile_, metrics::Phase::SolidBoundary);
    for (std::size_t ri = 0; ri < lts_sched_boundary_.rates.size(); ++ri)
      if (rate_active(lts_sched_boundary_.rates[ri]))
        run_element_schedule(
            lts_sched_boundary_.rate_sched[ri],
            batched_ ? &lts_packed_boundary_[ri] : nullptr,
            /*solid=*/true);
  }

  {
    // Sources fire every substep: the injection lands on the assembled
    // acceleration of whatever points are due now and is junk-discarded
    // elsewhere, so each cluster integrates the STF at its own rate.
    metrics::PhaseScope ps(&profile_, metrics::Phase::SourceInjection);
    inject_sources();
  }

  if (exchanger_ != nullptr) {
    metrics::PhaseScope ps(&profile_, metrics::Phase::HaloBegin);
    exchanger_->assemble_add_begin(*comm_, accel_.data(), 3);
  }
  {
    metrics::PhaseScope ps(&profile_, metrics::Phase::SolidInterior);
    WallTimer t_interior;
    for (std::size_t ri = 0; ri < lts_sched_interior_.rates.size(); ++ri)
      if (rate_active(lts_sched_interior_.rates[ri]))
        run_element_schedule(
            lts_sched_interior_.rate_sched[ri],
            batched_ ? &lts_packed_interior_[ri] : nullptr,
            /*solid=*/true);
    if (exchanger_ != nullptr)
      overlap_compute_seconds_ += t_interior.seconds();
  }
  if (exchanger_ != nullptr) {
    metrics::PhaseScope ps(&profile_, metrics::Phase::HaloWait);
    WallTimer t_wait;
    exchanger_->assemble_add_end(*comm_);
    overlap_wait_seconds_ += t_wait.seconds();
  }

  // Unmasked mass division: cheap, and the junk at not-due points stays
  // junk (discarded by the masked corrector/predictor pair).
  metrics::PhaseScope ps_mass(&profile_, metrics::Phase::MassUpdate);
  const auto ng = static_cast<std::size_t>(mesh_.nglob);
  parallel_over(ng, [&](std::size_t b, std::size_t e) {
    for (std::size_t g = b; g < e; ++g) {
      const float rm = rmass_inv_solid_[g];
      accel_[g * 3 + 0] *= rm;
      accel_[g * 3 + 1] *= rm;
      accel_[g * 3 + 2] *= rm;
    }
  });
}

void Simulation::step() {
  // Fault-plan hook: a planned rank death fires here, before any of this
  // step's collective communication, so peers abort instead of deadlock.
  if (comm_ != nullptr) comm_->notify_step(it_);
  profile_.begin_step();
  WallTimer t_step;

  const double dt = cfg_.dt;
  const double dt2 = 0.5 * dt * dt;
  const auto ng = static_cast<std::size_t>(mesh_.nglob);

  {
    metrics::PhaseScope ps(&profile_, metrics::Phase::NewmarkPredictor);
    // ---- Newmark predictor ----
    if (lts_active_) {
      // Masked per-cluster predictor + interface interpolation; at one
      // cluster this is the loop below, bit for bit.
      lts_predict();
    } else {
      parallel_over(ng * 3, [&](std::size_t b, std::size_t n) {
        for (std::size_t g = b; g < n; ++g) {
          displ_[g] += static_cast<float>(dt * veloc_[g] + dt2 * accel_[g]);
          veloc_[g] += static_cast<float>(0.5 * dt * accel_[g]);
          accel_[g] = 0.0f;
        }
      });
    }
    if (global_has_fluid_) {
      parallel_over(ng, [&](std::size_t b, std::size_t n) {
        for (std::size_t g = b; g < n; ++g) {
          chi_[g] +=
              static_cast<float>(dt * chi_dot_[g] + dt2 * chi_ddot_[g]);
          chi_dot_[g] += static_cast<float>(0.5 * dt * chi_ddot_[g]);
          chi_ddot_[g] = 0.0f;
        }
      });
    }
  }
  // The fluid phase is collective (chi_ddot assembly), so it is gated on
  // the global fluid flag: all-solid ranks of a mixed mesh participate
  // with zero local contributions.
  if (global_has_fluid_) compute_fluid_forces();

  if (lts_active_ && lts_num_levels_ > 1)
    compute_solid_forces_lts();
  else
    compute_solid_forces();

  {
    metrics::PhaseScope ps(&profile_, metrics::Phase::NewmarkCorrector);
    // ---- Newmark corrector ----
    if (lts_active_) {
      lts_correct();
    } else {
      parallel_over(ng * 3, [&](std::size_t b, std::size_t n) {
        for (std::size_t g = b; g < n; ++g)
          veloc_[g] += static_cast<float>(0.5 * dt * accel_[g]);
      });
    }
    if (global_has_fluid_) {
      parallel_over(ng, [&](std::size_t b, std::size_t n) {
        for (std::size_t g = b; g < n; ++g)
          chi_dot_[g] += static_cast<float>(0.5 * dt * chi_ddot_[g]);
      });
    }
  }

  time_ += dt;
  ++it_;

  if (comm_ != nullptr) comm_->add_virtual_compute(flops_per_step());
  if (it_ % cfg_.record_every == 0) {
    metrics::PhaseScope ps(&profile_, metrics::Phase::SeismogramRecord);
    record_receivers();
  }
  record_attenuation_time();
  profile_.end_step(t_step.seconds());

  // Periodic checkpoint cadence (ISSUE 5). After the profile close so the
  // snapshot carries this step's metric counters, and gated on it_ so a
  // restored run re-checkpoints on the same schedule it was saved under.
  if (cfg_.checkpoint_interval_steps > 0 &&
      it_ % cfg_.checkpoint_interval_steps == 0) {
    if (cfg_.checkpoint_store)
      write_checkpoint(*cfg_.checkpoint_store, cfg_.checkpoint_path,
                       cfg_.checkpoint_identity);
    else
      write_checkpoint(cfg_.checkpoint_path, cfg_.checkpoint_identity);
  }
}

void Simulation::run(int nsteps) {
  for (int s = 0; s < nsteps; ++s) step();
}

void Simulation::record_receivers() {
  for (ReceiverState& rs : receivers_) {
    double u[3] = {0.0, 0.0, 0.0};
    for (std::size_t n = 0; n < rs.node_glob.size(); ++n) {
      const auto g = static_cast<std::size_t>(rs.node_glob[n]);
      const double w = rs.weights[n];
      u[0] += w * displ_[g * 3 + 0];
      u[1] += w * displ_[g * 3 + 1];
      u[2] += w * displ_[g * 3 + 2];
    }
    rs.seis.time.push_back(time_);
    rs.seis.displ.push_back({u[0], u[1], u[2]});
  }
}

const Seismogram& Simulation::seismogram(int receiver) const {
  SFG_CHECK(receiver >= 0 &&
            receiver < static_cast<int>(receivers_.size()));
  return receivers_[static_cast<std::size_t>(receiver)].seis;
}

const LocatedPoint& Simulation::receiver_location(int receiver) const {
  SFG_CHECK(receiver >= 0 &&
            receiver < static_cast<int>(receivers_.size()));
  return receivers_[static_cast<std::size_t>(receiver)].loc;
}

EnergySnapshot Simulation::compute_energy() {
  EnergySnapshot es;
  const int ngll = mesh_.ngll;
  const int n3 = mesh_.ngll3();

  // Element-wise kinetic and strain energy: safe to sum across ranks
  // because every element is owned by exactly one rank.
  KernelWorkspace& ws = scratch_[0]->ws;
  for (int e : solid_elements_) {
    const std::size_t off = mesh_.local_offset(e);
    gather_element_displ(e, ws);
    ElementPointers ep = element_pointers(e);
    if (cfg_.attenuation) {
      for (int c = 0; c < 6; ++c) ep.r_sum[c] = nullptr;
    }
    kernel_.compute_elastic(ep, ws);
    for (int k = 0; k < ngll; ++k) {
      for (int j = 0; j < ngll; ++j) {
        for (int i = 0; i < ngll; ++i) {
          const int lp = local_index(ngll, i, j, k);
          const std::size_t p = off + static_cast<std::size_t>(lp);
          const auto g = static_cast<std::size_t>(mesh_.ibool[p]);
          const double w3 =
              basis_.weight(i) * basis_.weight(j) * basis_.weight(k);
          const double m = w3 * mesh_.jacobian[p] * mat_.rho[p];
          const double vx = veloc_[g * 3 + 0], vy = veloc_[g * 3 + 1],
                       vz = veloc_[g * 3 + 2];
          es.kinetic += 0.5 * m * (vx * vx + vy * vy + vz * vz);
          // strain energy = -1/2 u . f_element (f = -K_e u)
          es.potential -=
              0.5 * (static_cast<double>(displ_[g * 3 + 0]) *
                         ws.fx[static_cast<std::size_t>(lp)] +
                     static_cast<double>(displ_[g * 3 + 1]) *
                         ws.fy[static_cast<std::size_t>(lp)] +
                     static_cast<double>(displ_[g * 3 + 2]) *
                         ws.fz[static_cast<std::size_t>(lp)]);
        }
      }
    }
  }

  // Fluid energy: kinetic = |grad chi|^2 / (2 rho), compressional =
  // chi_ddot^2 / (2 kappa) — evaluated element-wise via the same scheme.
  for (int e : fluid_elements_) {
    const std::size_t off = mesh_.local_offset(e);
    for (int p = 0; p < n3; ++p)
      ws.chi[static_cast<std::size_t>(p)] = chi_[static_cast<std::size_t>(
          mesh_.ibool[off + static_cast<std::size_t>(p)])];
    // Reference-coordinate gradients of chi.
    for (int k = 0; k < ngll; ++k) {
      for (int j = 0; j < ngll; ++j) {
        for (int i = 0; i < ngll; ++i) {
          double g1 = 0, g2 = 0, g3 = 0;
          for (int l = 0; l < ngll; ++l) {
            g1 += ws.chi[static_cast<std::size_t>(
                      local_index(ngll, l, j, k))] *
                  basis_.hprime(i, l);
            g2 += ws.chi[static_cast<std::size_t>(
                      local_index(ngll, i, l, k))] *
                  basis_.hprime(j, l);
            g3 += ws.chi[static_cast<std::size_t>(
                      local_index(ngll, i, j, l))] *
                  basis_.hprime(k, l);
          }
          const std::size_t p =
              off + static_cast<std::size_t>(local_index(ngll, i, j, k));
          const double gx =
              mesh_.xix[p] * g1 + mesh_.etax[p] * g2 + mesh_.gammax[p] * g3;
          const double gy =
              mesh_.xiy[p] * g1 + mesh_.etay[p] * g2 + mesh_.gammay[p] * g3;
          const double gz =
              mesh_.xiz[p] * g1 + mesh_.etaz[p] * g2 + mesh_.gammaz[p] * g3;
          const double w3 =
              basis_.weight(i) * basis_.weight(j) * basis_.weight(k);
          const double vol = w3 * mesh_.jacobian[p];
          const auto g = static_cast<std::size_t>(mesh_.ibool[p]);
          es.fluid += vol * (gx * gx + gy * gy + gz * gz) /
                      (2.0 * mat_.rho[p]);
          es.fluid += vol * static_cast<double>(chi_ddot_[g]) *
                      chi_ddot_[g] / (2.0 * mat_.kappav[p]);
        }
      }
    }
  }

  if (comm_ != nullptr) {
    double vals[3] = {es.kinetic, es.potential, es.fluid};
    comm_->allreduce(vals, 3, smpi::ReduceOp::Sum);
    es.kinetic = vals[0];
    es.potential = vals[1];
    es.fluid = vals[2];
  }
  return es;
}

std::uint64_t Simulation::flops_per_step() const {
  std::uint64_t f =
      kernel_.elastic_flops_per_element() * solid_elements_.size() +
      kernel_.acoustic_flops_per_element() * fluid_elements_.size();
  // Newmark updates: ~10 flops per dof.
  f += static_cast<std::uint64_t>(mesh_.nglob) * 3ull * 10ull;
  if (cfg_.attenuation && cfg_.sls.has_value()) {
    // memory-variable update: nsls * 5 comps * 3 flops per local point
    f += static_cast<std::uint64_t>(cfg_.sls->num_sls()) * 5ull * 3ull *
         mesh_.num_local_points();
  }
  return f;
}

std::uint64_t Simulation::comm_bytes_per_step() const {
  if (exchanger_ == nullptr) return 0;
  std::uint64_t floats = exchanger_->floats_per_exchange(3);
  if (global_has_fluid_) floats += exchanger_->floats_per_exchange(1);
  return floats * sizeof(float);
}

metrics::RunReport Simulation::metrics_report(
    const std::string& label) const {
  metrics::RunReport r;
  r.label = label;
  r.rank = comm_ != nullptr ? comm_->rank() : 0;
  r.nranks = comm_ != nullptr ? comm_->size() : 1;
  r.steps = profile_.steps();
  r.wall_seconds = profile_.total_wall_seconds();
  r.phase_seconds = profile_.phase_seconds();
  r.phase_counts = profile_.phase_counts();
  if (comm_ != nullptr) {
    r.comm = metrics::summarize_comm(comm_->stats());
    r.has_comm = true;
  }
  if (pool_ != nullptr) {
    r.thread_busy_seconds = pool_->busy_seconds();
    r.thread_span_seconds = pool_->span_seconds();
  }
  return r;
}

void Simulation::write_metrics_report(std::ostream& os,
                                      const std::string& label) const {
  metrics::write_report(os, metrics_report(label));
}

metrics::RankTimeline Simulation::metrics_timeline() const {
  metrics::RankTimeline tl;
  tl.rank = comm_ != nullptr ? comm_->rank() : 0;
  tl.events = profile_.timeline();
  return tl;
}

}  // namespace sfg

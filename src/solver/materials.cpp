#include "solver/materials.hpp"

#include <cmath>

namespace sfg {

bool MaterialFields::has_fluid() const {
  for (bool f : element_is_fluid)
    if (f) return true;
  return false;
}

bool MaterialFields::has_solid() const {
  for (bool f : element_is_fluid)
    if (!f) return true;
  return false;
}

namespace {

MaterialFields assign_impl(
    const HexMesh& mesh,
    const std::function<MaterialSample(double, double, double)>& sample_at) {
  const std::size_t n = mesh.num_local_points();
  MaterialFields mat;
  mat.rho.assign(n, 0.0f);
  mat.kappav.assign(n, 0.0f);
  mat.muv.assign(n, 0.0f);
  mat.vp.assign(n, 0.0f);
  mat.vs.assign(n, 0.0f);
  mat.q_mu.assign(n, 0.0f);
  mat.element_is_fluid.assign(static_cast<std::size_t>(mesh.nspec), false);

  const int ngll3 = mesh.ngll3();
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    // Element centroid, used to nudge boundary points inward: GLL points
    // on element faces lie exactly ON model discontinuities (the mesher
    // honors them), and each element must take its material from ITS side
    // of the discontinuity, not the neighbour's.
    double cx = 0.0, cy = 0.0, cz = 0.0;
    for (int p = 0; p < ngll3; ++p) {
      const std::size_t q = off + static_cast<std::size_t>(p);
      cx += mesh.xstore[q];
      cy += mesh.ystore[q];
      cz += mesh.zstore[q];
    }
    cx /= ngll3;
    cy /= ngll3;
    cz /= ngll3;

    bool all_fluid = true;
    constexpr double kNudge = 1e-6;
    for (int p = 0; p < ngll3; ++p) {
      const std::size_t q = off + static_cast<std::size_t>(p);
      const MaterialSample s =
          sample_at(mesh.xstore[q] + kNudge * (cx - mesh.xstore[q]),
                    mesh.ystore[q] + kNudge * (cy - mesh.ystore[q]),
                    mesh.zstore[q] + kNudge * (cz - mesh.zstore[q]));
      SFG_CHECK_MSG(s.rho > 0.0 && s.vp > 0.0,
                    "invalid material sample at element " << e);
      mat.rho[q] = static_cast<float>(s.rho);
      mat.vp[q] = static_cast<float>(s.vp);
      mat.vs[q] = static_cast<float>(s.vs);
      mat.kappav[q] = static_cast<float>(s.kappa());
      mat.muv[q] = static_cast<float>(s.mu());
      mat.q_mu[q] = static_cast<float>(s.q_mu);
      if (!s.is_fluid()) all_fluid = false;
    }
    mat.element_is_fluid[static_cast<std::size_t>(e)] = all_fluid;
  }
  return mat;
}

}  // namespace

MaterialFields assign_materials_radial(const HexMesh& mesh,
                                       const EarthModel& model) {
  return assign_impl(mesh, [&model](double x, double y, double z) {
    return model.at_radius(std::sqrt(x * x + y * y + z * z));
  });
}

MaterialFields assign_materials(
    const HexMesh& mesh,
    const std::function<MaterialSample(double, double, double)>& sample_at) {
  return assign_impl(mesh, sample_at);
}

void prepare_attenuation(MaterialFields& mat, const SlsSeries& sls) {
  SFG_CHECK(!mat.muv.empty());
  SFG_CHECK_MSG(mat.mu_relaxed.empty(), "attenuation already prepared");
  mat.mu_relaxed = mat.muv;
  double sum_y = 0.0;
  for (double yl : sls.y) sum_y += yl;
  for (std::size_t p = 0; p < mat.size(); ++p) {
    const float q = mat.q_mu[p];
    if (q <= 0.0f || mat.muv[p] <= 0.0f) continue;
    const double scale = sls.target_q / static_cast<double>(q);
    mat.muv[p] = static_cast<float>(mat.mu_relaxed[p] *
                                    (1.0 + sum_y * scale));
  }
}

}  // namespace sfg

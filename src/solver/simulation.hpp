#pragma once

/// \file simulation.hpp
/// The specfem3D-equivalent solver: explicit Newmark time marching of the
/// assembled global system M Ü + K U = F (paper §2.4) on a spectral-element
/// mesh with solid (elastic) and fluid (acoustic-potential) regions.
///
/// Physics included, matching the SPECFEM3D_GLOBE feature set the paper
/// describes: anelastic attenuation via SLS memory variables, non-iterative
/// solid-fluid coupling based on the displacement vector (paper §1, ref
/// [4]), Coriolis terms for Earth rotation, Stacey absorbing boundaries for
/// regional (1-chunk) mode, moment-tensor point sources and seismogram
/// recording at stations located either exactly (interpolated) or at the
/// nearest GLL point (paper §4.4).
///
/// Parallel runs: each MPI rank (smpi thread) owns one mesh slice plus an
/// Exchanger; the only communication in the time loop is the assembly of
/// the acceleration fields across slice boundaries, as in the real code.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "io/snapshot.hpp"
#include "kernels/force_kernel.hpp"
#include "mesh/coloring.hpp"
#include "mesh/faces.hpp"
#include "mesh/hex_mesh.hpp"
#include "model/attenuation.hpp"
#include "perf/metrics.hpp"
#include "runtime/exchanger.hpp"
#include "runtime/smpi.hpp"
#include "solver/materials.hpp"
#include "solver/sources.hpp"

namespace sfg {

/// Element-schedule variants for the time loop (ISSUE 4). All colored
/// variants share one per-point summation order (ascending color), so
/// every {Colored, Interleaved} x thread-count combination produces
/// BIT-IDENTICAL results; only Sequential (the legacy element-order loop)
/// differs, by float-summation reordering within roundoff.
enum class SolverSchedule {
  /// Sequential at num_threads == 1, Interleaved when threaded (or
  /// Colored at 1 thread when force_colored_schedule is set).
  Auto,
  /// Legacy element-order loop. Requires num_threads == 1.
  Sequential,
  /// Plain color batches (PR 1): race-free but cache-hostile (~25%
  /// single-thread tax — within one color no two elements share points).
  Colored,
  /// Locality-aware interleaved color pairs (mesh/coloring.hpp second-
  /// level pass): recovers the gather/scatter reuse inside each work
  /// unit while footprint disjointness is proven at schedule build.
  Interleaved,
};

struct SimulationConfig {
  double dt = 0.0;
  /// Force-kernel variant (ISSUE 6). Auto resolves to the SIMD-batched
  /// kernel on the widest ISA this build compiled AND this CPU supports
  /// (scalar lanes otherwise) — see resolve_kernel_choice. The env var
  /// SFG_KERNEL=reference|blas|sse|batched|auto|batched-<isa> overrides
  /// whatever is set here; the resolved choice is SFG_INFO-logged once
  /// at construction.
  KernelVariant kernel = KernelVariant::Auto;

  /// Anelastic attenuation (paper §6: 1.8x runtime when on).
  bool attenuation = false;
  std::optional<SlsSeries> sls;  ///< required when attenuation is on

  /// Coriolis force of Earth rotation (omega around +z).
  bool rotation = false;
  double omega_rad_s = 0.0;

  /// Self-gravitation in the Cowling approximation: the perturbation of
  /// the gravitational potential is neglected but the background field
  /// g(r) of `gravity_model` acts on the displaced masses. Only
  /// meaningful for spherical meshes centred at the origin.
  bool gravity = false;
  const EarthModel* gravity_model = nullptr;

  /// Stacey absorbing boundary faces (regional mode). Empty = none.
  std::vector<ElementFace> absorbing_faces;

  /// Record seismograms every this many steps.
  int record_every = 1;

  /// On-node threads for the element loops and global field updates.
  /// 1 (the default) is the bit-identical legacy sequential path; > 1
  /// switches to the colored element schedule (race-free scatter) with
  /// the halo exchange overlapped by interior-element compute.
  int num_threads = 1;

  /// Run the colored/overlapped schedule even at num_threads == 1. The
  /// schedule fixes the per-point summation order independently of the
  /// thread count, so a forced-colored 1-thread run is bit-identical to
  /// any multi-threaded run (the determinism reference). Legacy alias:
  /// only consulted when `schedule` is Auto (maps to Colored).
  bool force_colored_schedule = false;

  /// Element-schedule selection; Auto resolves from num_threads and
  /// force_colored_schedule (see SolverSchedule).
  SolverSchedule schedule = SolverSchedule::Auto;

  /// Rate-2 clustered local time stepping (ISSUE 7). When enabled,
  /// elements are bucketed into dt clusters from `element_dt` (the
  /// per-element stable-dt estimate, see element_stable_dt); cluster k is
  /// evaluated every 2^k base steps, so `dt` — which stays the global
  /// fast step — no longer taxes the slow regions with the fast region's
  /// Courant bound. step() still advances exactly one base step of `dt`;
  /// with an empty `element_dt` every element lands in cluster 0 and the
  /// scheme degenerates to the global-dt path BIT-IDENTICALLY.
  ///
  /// Multi-cluster runs refuse attenuation, rotation, fluid regions and
  /// absorbing boundaries (their element updates carry per-step state the
  /// interpolation scheme does not yet serve) and require a colored
  /// schedule. Fluid elements are pinned to cluster 0.
  struct LtsOptions {
    bool enabled = false;
    /// Cluster-count cap: levels clamp to [0, max_levels).
    int max_levels = 8;
    /// Per-element stable dt (size nspec); empty = single cluster.
    std::vector<double> element_dt;
    /// TEST ONLY: injection teeth forwarded to the cluster builders so
    /// tests can prove the Simulation refuses an unsound cluster
    /// schedule. Never set in production code.
    ClusterOptions cluster;
  };
  LtsOptions lts;

  /// IPM-style per-step observability (ISSUE 3): phase timers, comm
  /// histograms, thread busy fractions. Default on (report-only); the
  /// Chrome-trace timeline is opt-in.
  metrics::MetricsConfig metrics;

  /// Periodic checkpointing (ISSUE 5): when > 0, write_checkpoint fires
  /// after every step whose index is a multiple of this cadence,
  /// overwriting `checkpoint_path` with `checkpoint_identity` (the
  /// snapshot write is atomic: unique tmp file + fsync + rename). 0
  /// disables.
  int checkpoint_interval_steps = 0;
  std::string checkpoint_path;
  io::SnapshotIdentity checkpoint_identity;
  /// sfg_io backend for periodic checkpoints (ISSUE 8): when set,
  /// `checkpoint_path` is the blob key inside this store (e.g. a chunk
  /// name in one shared container) instead of a filesystem path. Ranks of
  /// one run may share a store; ContainerStore serializes writers.
  std::shared_ptr<io::BlobStore> checkpoint_store;
};

/// Peek at a checkpoint file without a Simulation: the step index stored
/// in `path` when it opens cleanly under `identity`, or -1 when the file
/// is missing, corrupted, truncated, or pinned to a different identity.
/// Lets a supervisor decide whether a set of per-rank checkpoints is a
/// consistent restart point before building any rank state.
std::int64_t checkpoint_step(const std::string& path,
                             const io::SnapshotIdentity& identity);

/// Same peek against blob `key` of an sfg_io store (ISSUE 8) — a torn or
/// truncated container rejects wholesale, so this returns -1 for every
/// rank rather than ever serving partial state.
std::int64_t checkpoint_step(const io::BlobStore& store,
                             const std::string& key,
                             const io::SnapshotIdentity& identity);

/// Recorded three-component seismogram at one station.
struct Seismogram {
  std::vector<double> time;
  std::vector<std::array<double, 3>> displ;
};

/// Element-wise energy accounting (safe to sum across ranks).
struct EnergySnapshot {
  double kinetic = 0.0;    ///< solid kinetic energy
  double potential = 0.0;  ///< solid strain energy
  double fluid = 0.0;      ///< fluid kinetic + compressional energy
  double total() const { return kinetic + potential + fluid; }
};

class Simulation {
 public:
  /// `mesh`, `materials` describe this rank's slice. For parallel runs
  /// pass the rank's communicator and a pre-built exchanger over the
  /// slice-boundary points; both null for serial runs.
  Simulation(const HexMesh& mesh, const GllBasis& basis,
             MaterialFields materials, SimulationConfig config,
             smpi::Communicator* comm = nullptr,
             const smpi::Exchanger* exchanger = nullptr);

  // ---- setup ----
  void add_source(const PointSource& source);
  /// Add a station; returns its index. exact=true uses Lagrange
  /// interpolation at the located reference coordinates, exact=false the
  /// nearest-GLL-point shortcut of §4.4.
  int add_receiver(double x, double y, double z, bool exact = true);

  /// Collective source registration (ISSUE 3 bugfix). Every rank calls
  /// this with the same source; exactly one rank — elected by allreduce on
  /// (location error, rank), lowest error then lowest rank winning — adds
  /// it and returns true. Fixes the duplicated-source bug when the point
  /// lies on a slice boundary shared by several ranks, where the previous
  /// locate-locally-and-add pattern injected the source once per rank.
  /// All ranks must call in the same order (two allreduces per call).
  bool add_source_global(const PointSource& source);
  /// Collective receiver registration with the same owner election.
  /// Returns the receiver index on the owning rank, -1 elsewhere.
  int add_receiver_global(double x, double y, double z, bool exact = true);
  /// Override the order in which solid elements are processed (§4.2 loop
  /// order experiments). Must be a permutation of the solid element list.
  void set_solid_element_order(const std::vector<int>& order);

  /// Set initial displacement / velocity fields from callbacks evaluated
  /// at the global point coordinates (validation runs without a source).
  void set_initial_condition(
      const std::function<std::array<double, 3>(double, double, double)>&
          displ_at,
      const std::function<std::array<double, 3>(double, double, double)>&
          veloc_at = nullptr);

  // ---- time marching ----
  void step();
  void run(int nsteps);
  double time() const { return time_; }
  int step_count() const { return it_; }

  // ---- checkpoint / restart (ISSUE 2) ----
  /// Write this rank's full time-marching state (wavefields, attenuation
  /// memory variables, step index, recorded seismogram samples) to a
  /// versioned, CRC-protected per-rank snapshot. `identity` pins the run
  /// configuration (NEX/NPROC/nchunks/rank/nranks); restore rejects any
  /// mismatch. Restoring and running to completion is bit-identical to an
  /// uninterrupted run — the contract test_checkpoint enforces.
  void write_checkpoint(const std::string& path,
                        const io::SnapshotIdentity& identity) const;
  /// Same state written as blob `key` of an sfg_io store (ISSUE 8): the
  /// bytes are identical to the per-rank file, only the placement differs.
  void write_checkpoint(io::BlobStore& store, const std::string& key,
                        const io::SnapshotIdentity& identity) const;
  /// Load a snapshot written by write_checkpoint into a Simulation built
  /// with the same mesh, materials and config. Throws sfg::CheckError on
  /// corrupted/truncated files or identity/layout mismatches.
  void restore_checkpoint(const std::string& path,
                          const io::SnapshotIdentity& identity);
  /// Restore from blob `key` of an sfg_io store.
  void restore_checkpoint(const io::BlobStore& store, const std::string& key,
                          const io::SnapshotIdentity& identity);

  // ---- observation ----
  const Seismogram& seismogram(int receiver) const;
  const LocatedPoint& receiver_location(int receiver) const;
  EnergySnapshot compute_energy();  ///< collective when running parallel

  const aligned_vector<float>& displ() const { return displ_; }
  const aligned_vector<float>& veloc() const { return veloc_; }
  const aligned_vector<float>& accel() const { return accel_; }
  const aligned_vector<float>& chi() const { return chi_; }
  const aligned_vector<float>& chi_dot() const { return chi_dot_; }

  int nglob() const { return mesh_.nglob; }
  int num_solid_elements() const {
    return static_cast<int>(solid_elements_.size());
  }
  int num_fluid_elements() const {
    return static_cast<int>(fluid_elements_.size());
  }

  /// Analytic flop count of one time step on this rank (for the
  /// sustained-FLOPS model of paper §5).
  std::uint64_t flops_per_step() const;

  /// Bytes exchanged per step by the assembly communication on this rank.
  std::uint64_t comm_bytes_per_step() const;

  // ---- comm/compute overlap accounting (colored schedule only) ----
  /// Accumulated wall time spent computing interior elements inside the
  /// open halo-exchange window (between assemble_add_begin and _end).
  double overlap_compute_seconds() const { return overlap_compute_seconds_; }
  /// Accumulated wall time blocked in assemble_add_end after the interior
  /// work ran out — the part of the exchange NOT hidden by compute.
  double overlap_wait_seconds() const { return overlap_wait_seconds_; }
  int num_boundary_elements() const { return num_boundary_elements_; }
  /// Number of race-free solid batches (boundary + interior color groups)
  /// in the colored schedule; 0 on the legacy sequential path.
  int num_solid_batches() const;
  /// The schedule variant actually running (config Auto resolved).
  SolverSchedule active_schedule() const { return schedule_; }
  /// Upper-color elements demoted to residual rounds across the solid and
  /// fluid interleaved schedules (0 unless Interleaved with > 1 slot).
  int num_residual_elements() const;

  // ---- per-step observability (ISSUE 3) ----
  /// The raw per-phase profile accumulated while stepping (empty when
  /// cfg_.metrics.enabled is false).
  const metrics::StepProfile& step_profile() const { return profile_; }
  /// Assemble the end-of-run report for this rank: phase breakdown, comm
  /// summary (from smpi::CommStats, same accounting as bench_fig6),
  /// per-thread busy fractions.
  metrics::RunReport metrics_report(const std::string& label = {}) const;
  /// Write the human-readable report (metrics_report) to `os`.
  void write_metrics_report(std::ostream& os,
                            const std::string& label = {}) const;
  /// This rank's timeline slices (requires cfg_.metrics.timeline). Merge
  /// the per-rank timelines with metrics::write_chrome_trace.
  metrics::RankTimeline metrics_timeline() const;

  // ---- clustered LTS observability (ISSUE 7) ----
  /// Number of dt clusters on this rank's partition after cross-rank
  /// smoothing (1 when LTS is off or every element shares one cluster).
  int lts_num_levels() const { return lts_num_levels_; }
  /// Cluster-interface GLL points receiving time-interpolated kinematics.
  int lts_num_interface_points() const {
    return static_cast<int>(lts_interp_.points.size());
  }
  /// Per-rate substep clocks: lts_clock()[r] counts completed rate-r
  /// strides; invariant clock[r] == step_count() >> r.
  const std::vector<std::int64_t>& lts_clock() const { return lts_clock_; }
  /// The smoothed cluster partition (empty level_of when LTS is off).
  const ClusterPartition& lts_partition() const { return lts_part_; }

 private:
  /// Shared bodies of the path- and store-based checkpoint entry points:
  /// both serialize/restore exactly the same sections.
  io::SnapshotWriter checkpoint_snapshot() const;
  void restore_from(const io::SnapshotReader& reader,
                    const std::string& label);

  struct CouplingPoint {
    int iglob;
    double nx, ny, nz;  ///< normal outward from the FLUID region
    double weight;      ///< jacobian2D x quadrature weight
  };
  struct AbsorbingPoint {
    int iglob;
    std::size_t local;  ///< mesh-local point (for rho, vp, vs lookup)
    double nx, ny, nz;
    double weight;
  };
  struct ReceiverState {
    LocatedPoint loc;
    std::vector<int> node_glob;       ///< element nodes' global ids
    std::vector<double> weights;      ///< interpolation weights
    Seismogram seis;
  };

  /// Per-thread compute state: the kernel workspace plus the attenuation
  /// memory-variable pre-sums, so every thread processes elements without
  /// sharing scratch. Allocation is per-variant (ISSUE 6 satellite): the
  /// SoA batch workspace and strided r_sum exist only under the Batched
  /// kernel, the element-wise r_sum only on the element-at-a-time paths —
  /// each sized once at construction, never per call.
  struct ThreadScratch {
    KernelWorkspace ws;
    std::array<aligned_vector<float>, 6> r_sum;
    /// Batched-variant scratch: the [point][lane] workspace and the
    /// matching strided attenuation pre-sums.
    std::unique_ptr<BatchWorkspace> bws;
    std::array<aligned_vector<float>, 6> r_sum_soa;
    /// Wall time this thread spent in update_memory_variables (nested
    /// inside the solid phases; only accumulated when metrics are on).
    double attenuation_seconds = 0.0;
    ThreadScratch(int ngll, bool attenuation, const ForceKernel& kernel);
  };

  /// SoA-packed static element tables for the Batched kernel (ISSUE 6):
  /// per batch, up to `lanes` elements' Jacobian/material/gravity tables
  /// interleaved [point][lane], packed ONCE at schedule build. Pad lanes
  /// replicate lane 0 so every lane computes valid numerics (rho != 0
  /// under the acoustic division); only real lanes are scattered.
  struct PackedBatches {
    int lanes = 0;
    std::size_t stride = 0;        ///< floats per field per batch
    std::vector<std::size_t> cut;  ///< batch b = items[cut[b], cut[b+1])
    std::vector<int> elems;        ///< [batch * lanes + lane], -1 = pad
    std::vector<int> counts;       ///< real lanes per batch
    aligned_vector<float> xix, xiy, xiz, etax, etay, etaz, gammax, gammay,
        gammaz, jacobian, kappav, muv, rho;
    aligned_vector<float> grav_g, grav_dgdr, grav_drhodr, grav_rx, grav_ry,
        grav_rz, grav_invr;
    std::size_t num_batches() const { return counts.size(); }
  };

  void build_mass_matrices();
  void build_coupling_surface();
  void build_absorbing_points();
  void build_colored_schedule();
  /// Build the smoothed cluster partition + interface set from
  /// cfg_.lts (cross-rank fixed-point smoothing via assemble_min);
  /// SFG_CHECKs the multi-cluster feature restrictions and the interface
  /// invariant (C-D) before any state is allocated.
  void build_cluster_partition_lts();
  /// Min-combine an int-valued per-point field across ranks (levels /
  /// rates fit exactly in float). No-op when serial.
  void exchange_point_min(std::vector<int>& values) const;
  /// Masked Newmark predictor for clustered LTS: points due this substep
  /// take a full stride of their level's dt from a_pred_; interface
  /// points get time-interpolated displacement instead.
  void lts_predict();
  /// Masked corrector: due points finish their stride and latch accel
  /// into a_pred_; per-rate clocks advance.
  void lts_correct();
  /// Per-rate force pass: every cluster whose rate divides the current
  /// substep runs its own checked schedule (boundary before the halo
  /// exchange, interior overlapped), ascending rate.
  void compute_solid_forces_lts();
  /// Shared source injection (legacy + LTS force paths).
  void inject_sources();
  void compute_fluid_forces();
  void compute_solid_forces();
  void process_solid_element(int ispec, ThreadScratch& scratch);
  void process_fluid_element(int ispec, KernelWorkspace& ws);
  void run_solid_batches(const std::vector<std::vector<int>>& batches);
  void run_fluid_batches(const std::vector<std::vector<int>>& batches);
  /// Pack the static SoA tables for the batches `cut` carves out of
  /// `items` (the Batched kernel's gather-once data).
  PackedBatches pack_batches(const std::vector<int>& items,
                             const std::vector<std::size_t>& cut) const;
  /// Sequential-schedule packing: consecutive runs of `elems` in legacy
  /// order, so the per-lane scatter preserves the legacy per-point
  /// summation order exactly.
  PackedBatches pack_sequential(const std::vector<int>& elems) const;
  /// Gather/compute/scatter one SoA batch (and its per-lane attenuation
  /// memory update) — the batched counterpart of process_solid_element.
  void process_solid_batch(const PackedBatches& pb, std::size_t b,
                           ThreadScratch& scratch);
  void process_fluid_batch(const PackedBatches& pb, std::size_t b,
                           ThreadScratch& scratch);
  /// Execute a precomputed interleaved schedule (solid or fluid), via the
  /// pool when threaded or inline at one thread; paired/residual round
  /// times feed the SchedulePaired/ScheduleResidual nested phase timers.
  /// With `packed` non-null the unit ranges are walked batch-wise (whole
  /// batches tile every unit — checked at schedule build).
  void run_element_schedule(const ElementSchedule& schedule,
                            const PackedBatches* packed, bool solid);
  void parallel_over(std::size_t n,
                     const std::function<void(std::size_t, std::size_t)>& fn);
  void gather_element_displ(int ispec, KernelWorkspace& ws);
  void scatter_element_forces(int ispec, const KernelWorkspace& ws);
  ElementPointers element_pointers(int ispec) const;
  void update_memory_variables(int ispec, const KernelWorkspace& ws);
  void record_receivers();
  /// True iff this rank wins the (error, rank) allreduce election for a
  /// point located with error `error_m`. Collective; serial runs own all.
  bool elect_owner(double error_m) const;
  /// Fold per-thread attenuation time into the profile as the nested
  /// AttenuationUpdate phase (called once per step).
  void record_attenuation_time();

  const HexMesh& mesh_;
  const GllBasis& basis_;
  MaterialFields mat_;
  SimulationConfig cfg_;
  smpi::Communicator* comm_;
  const smpi::Exchanger* exchanger_;

  ForceKernel kernel_;

  std::vector<int> solid_elements_;
  std::vector<int> fluid_elements_;

  // Threading (ISSUE 1): per-thread scratch, the pool (null at 1 thread)
  // and the colored element schedule. Solid colors are split into
  // boundary batches (elements touching a halo point — computed before the
  // exchange starts) and interior batches (overlapped with the exchange).
  std::vector<std::unique_ptr<ThreadScratch>> scratch_;
  std::unique_ptr<ThreadPool> pool_;
  SolverSchedule schedule_ = SolverSchedule::Sequential;  ///< resolved
  bool colored_schedule_ = false;  ///< any colored variant active
  std::vector<std::vector<int>> solid_boundary_batches_;
  std::vector<std::vector<int>> solid_interior_batches_;
  std::vector<std::vector<int>> fluid_batches_;
  // Interleaved color-pair schedules (ISSUE 4), validated at build time.
  ElementSchedule sched_solid_boundary_;
  ElementSchedule sched_solid_interior_;
  ElementSchedule sched_fluid_;
  // Batched-kernel SoA packs (ISSUE 6): one per schedule under colored
  // variants, plus the legacy-order sequential packs. Empty unless the
  // resolved kernel variant is Batched.
  bool batched_ = false;
  PackedBatches packed_solid_boundary_;
  PackedBatches packed_solid_interior_;
  PackedBatches packed_fluid_;
  PackedBatches packed_seq_solid_;
  PackedBatches packed_seq_fluid_;
  int num_boundary_elements_ = 0;
  bool global_has_fluid_ = false;  ///< fluid anywhere across all ranks

  // Clustered LTS (ISSUE 7). lts_active_ means cfg_.lts.enabled; the
  // masked predictor/corrector run whenever it is set (bit-identical to
  // the legacy update at one cluster), the per-rate force pass only when
  // lts_num_levels_ > 1.
  bool lts_active_ = false;
  int lts_num_levels_ = 1;  ///< global (allreduced) cluster count
  ClusterPartition lts_part_;
  ClusterSchedule lts_sched_boundary_;
  ClusterSchedule lts_sched_interior_;
  std::vector<PackedBatches> lts_packed_boundary_;
  std::vector<PackedBatches> lts_packed_interior_;
  InterfaceSet lts_interp_;
  /// Each point's acceleration at its last due corrector (nglob * 3):
  /// the masked predictor reads it so a slow point's stride uses the
  /// acceleration of its own cluster clock, not a faster cluster's.
  aligned_vector<float> a_pred_;
  /// Stride-start kinematic snapshots at the interface points
  /// (ninterp * 3 each): displ, veloc, accel at the owning cluster's
  /// last stride boundary, the Taylor basis of the interpolation.
  aligned_vector<float> interp_u0_, interp_v0_, interp_a0_;
  /// Completed strides per rate; checkpointed and checked on restore.
  std::vector<std::int64_t> lts_clock_;
  double overlap_compute_seconds_ = 0.0;
  double overlap_wait_seconds_ = 0.0;

  // Observability (ISSUE 3): the per-step phase profile and the running
  // total of per-thread attenuation time already folded into it.
  metrics::StepProfile profile_;
  double att_seconds_reported_ = 0.0;

  // Global fields (nglob * 3 and nglob).
  aligned_vector<float> displ_, veloc_, accel_;
  aligned_vector<float> chi_, chi_dot_, chi_ddot_;
  aligned_vector<float> rmass_inv_solid_;  ///< 1/M, 0 where no solid mass
  aligned_vector<float> rmass_inv_fluid_;

  // Attenuation memory variables: [sls][component 0..4][local solid point]
  // (components xx, yy, xy, xz, yz; zz = -(xx + yy)), plus the per-point
  // factor 2 mu_relaxed * (Q_ref / Q_point).
  std::vector<std::array<aligned_vector<float>, 5>> r_mem_;
  aligned_vector<float> att_factor_;
  double exp_a_[10] = {0};  ///< exp(-dt/tau_l)
  double one_minus_a_[10] = {0};

  // Gravity tables per local point (filled when cfg_.gravity).
  aligned_vector<float> grav_g_, grav_dgdr_, grav_drhodr_;
  aligned_vector<float> grav_rx_, grav_ry_, grav_rz_, grav_invr_;
  aligned_vector<float> w3jac_;  ///< w_i w_j w_k * jacobian per local point

  std::vector<CouplingPoint> coupling_;
  std::vector<AbsorbingPoint> absorbing_;
  std::vector<DiscreteSource> sources_;
  std::vector<ReceiverState> receivers_;

  double time_ = 0.0;
  int it_ = 0;
};

}  // namespace sfg

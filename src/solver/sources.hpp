#pragma once

/// \file sources.hpp
/// Earthquake sources, source-time functions, and point location in the
/// mesh (paper §2.1: the source is a point force / moment tensor; §4.4:
/// station location can use a costly nonlinear algorithm with
/// interpolation, or snap to the closest GLL point when the mesh is dense).

#include <array>
#include <functional>
#include <vector>

#include "mesh/hex_mesh.hpp"
#include "quadrature/gll.hpp"

namespace sfg {

// ---- source-time functions ----

/// S(t) callable. Factory helpers below build the standard wavelets.
using SourceTimeFunction = std::function<double(double)>;

/// Ricker wavelet with dominant frequency f0, delayed by t0.
SourceTimeFunction ricker_wavelet(double f0, double t0);
/// Gaussian pulse: exp(-((t-t0)/sigma)^2).
SourceTimeFunction gaussian_pulse(double sigma, double t0);
/// Smooth ramp 0 -> 1 (Heaviside-like, for quasi-static checks).
SourceTimeFunction smooth_ramp(double rise_time, double t0);

// ---- point location ----

/// A located point: the element containing it and its reference
/// coordinates inside that element.
struct LocatedPoint {
  int ispec = -1;
  double xi = 0.0, eta = 0.0, gamma = 0.0;
  double error_m = 0.0;  ///< distance between target and located position
  /// True iff the Newton iteration CONVERGED within the element-size
  /// tolerance. False for nearest-GLL snaps and for targets outside this
  /// rank's slice (where the located point is the clamped best fit and
  /// error_m the honest residual).
  bool exact = false;
};

/// Index of the nearest rank-local GLL point. Element-centroid prefiltered
/// (ISSUE 3): prices each element by its center node plus a conservative
/// radius, and scans only the elements whose ball can beat the best upper
/// bound. Returns exactly the brute-force winner.
std::size_t nearest_local_point(const HexMesh& mesh, double x, double y,
                                double z);
/// Reference O(num_local_points) scan (kept for tests/benchmarks).
std::size_t nearest_local_point_brute(const HexMesh& mesh, double x,
                                      double y, double z);

/// The costly "nonlinear algorithm" (§4.4): find the closest GLL point,
/// then Newton-iterate the inverse of the isoparametric mapping to locate
/// (xi, eta, gamma) exactly. error_m is the residual mapping error
/// (~roundoff for points inside the mesh).
LocatedPoint locate_point_exact(const HexMesh& mesh, const GllBasis& basis,
                                double x, double y, double z);

/// The fast high-resolution alternative (§4.4): snap to the closest GLL
/// point; error_m is the snap distance, "negligible from a geophysical
/// point of view" once the mesh is dense.
LocatedPoint locate_point_nearest(const HexMesh& mesh, const GllBasis& basis,
                                  double x, double y, double z);

/// Lagrange interpolation weights of a located point: w[(k*ngll+j)*ngll+i]
/// = l_i(xi) l_j(eta) l_k(gamma). For nearest-located points this is a
/// one-hot vector.
std::vector<double> interpolation_weights(const GllBasis& basis,
                                          const LocatedPoint& loc);

// ---- sources ----

/// A seismic point source: either a force vector or a moment tensor
/// (M, symmetric, 6 independent components) applied at one point with a
/// source-time function.
struct PointSource {
  double x = 0.0, y = 0.0, z = 0.0;
  std::array<double, 3> force{0.0, 0.0, 0.0};
  /// Moment tensor components Mxx, Myy, Mzz, Mxy, Mxz, Myz (N*m).
  std::array<double, 6> moment{0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  SourceTimeFunction stf;

  bool has_moment() const {
    for (double m : moment)
      if (m != 0.0) return true;
    return false;
  }
};

/// A source localized in the mesh and expanded onto element nodes:
/// at each time step, accel[node] += coefficient[node] * S(t).
struct DiscreteSource {
  int ispec = -1;
  /// Per local node of the element: 3-component force coefficient.
  std::vector<std::array<double, 3>> node_force;
  SourceTimeFunction stf;
};

/// Discretize a point source. Force sources use the interpolation weights
/// directly; moment tensors use the gradient of the test functions at the
/// source point (f = -M . grad(delta) in the weak form).
DiscreteSource discretize_source(const HexMesh& mesh, const GllBasis& basis,
                                 const PointSource& source);

}  // namespace sfg

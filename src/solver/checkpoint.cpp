#include "io/blob_store.hpp"
#include "io/snapshot.hpp"
#include "solver/simulation.hpp"

/// \file checkpoint.cpp
/// Simulation::write_checkpoint / restore_checkpoint (ISSUE 2).
///
/// The snapshot captures exactly the state the Newmark scheme carries
/// across a step boundary: displ/veloc/accel (accel at end-of-step feeds
/// the next predictor), the acoustic potential triple for fluid regions,
/// the SLS attenuation memory variables, the step index and clock, and the
/// seismogram samples recorded so far (so the *final* seismograms of a
/// restarted run equal the uninterrupted ones bit for bit). Sources are
/// pure functions of time_, so no RNG or source state is needed beyond the
/// clock itself.

namespace sfg {

namespace {

/// Layout fingerprint stored in the "meta" section, checked on restore so
/// a snapshot can never be loaded into a structurally different run even
/// when the SnapshotIdentity happens to match.
struct CheckpointMeta {
  std::int64_t step = 0;
  double time = 0.0;
  double dt = 0.0;
  std::int32_t nglob = 0;
  std::int32_t nspec = 0;
  std::int32_t ngll = 0;
  std::int32_t nsls = 0;
  std::int32_t has_fluid = 0;
  std::int32_t nreceivers = 0;
  std::int32_t nsources = 0;
  /// Clustered LTS (ISSUE 7): global cluster count when LTS is active,
  /// 0 when it is off — a snapshot can never silently cross the LTS
  /// on/off boundary — plus the interface-point count pinning the
  /// interpolation-buffer layout.
  std::int32_t lts_levels = 0;
  std::int32_t lts_ninterp = 0;
};

/// Cumulative phase-metric counters (ISSUE 3): saved so a resumed run's
/// end-of-run report carries the full history of the run it continues.
/// Wall-clock seconds are machine-dependent and excluded from any
/// bit-identity contract — only the *counts* are asserted by
/// test_checkpoint (a restored run must reproduce the same per-phase
/// segment counts as an uninterrupted one).
struct MetricsCheckpoint {
  std::int64_t steps = 0;
  double total_wall = 0.0;
  std::uint64_t counts[metrics::kNumPhases] = {0};
  double seconds[metrics::kNumPhases] = {0.0};
};

}  // namespace

io::SnapshotWriter Simulation::checkpoint_snapshot() const {
  io::SnapshotWriter writer;

  CheckpointMeta meta;
  meta.step = it_;
  meta.time = time_;
  meta.dt = cfg_.dt;
  meta.nglob = mesh_.nglob;
  meta.nspec = mesh_.nspec;
  meta.ngll = mesh_.ngll;
  meta.nsls = static_cast<std::int32_t>(r_mem_.size());
  meta.has_fluid = global_has_fluid_ ? 1 : 0;
  meta.nreceivers = static_cast<std::int32_t>(receivers_.size());
  meta.nsources = static_cast<std::int32_t>(sources_.size());
  meta.lts_levels = lts_active_ ? lts_num_levels_ : 0;
  meta.lts_ninterp = static_cast<std::int32_t>(lts_interp_.points.size());
  writer.add_values("meta", &meta, 1);

  writer.add_values("displ", displ_.data(), displ_.size());
  writer.add_values("veloc", veloc_.data(), veloc_.size());
  writer.add_values("accel", accel_.data(), accel_.size());
  if (global_has_fluid_) {
    writer.add_values("chi", chi_.data(), chi_.size());
    writer.add_values("chi_dot", chi_dot_.data(), chi_dot_.size());
    writer.add_values("chi_ddot", chi_ddot_.data(), chi_ddot_.size());
  }
  for (std::size_t l = 0; l < r_mem_.size(); ++l)
    for (int c = 0; c < 5; ++c) {
      const auto& v = r_mem_[l][static_cast<std::size_t>(c)];
      writer.add_values("r_mem." + std::to_string(l) + "." +
                            std::to_string(c),
                        v.data(), v.size());
    }
  // Clustered LTS state: the latched per-cluster accelerations, the
  // stride-start interface snapshots and the per-rate clocks are exactly
  // what the masked predictor reads mid-stride — without them a restored
  // multi-cluster run would diverge at the first slow-cluster substep.
  if (lts_active_) {
    writer.add_values("lts.a_pred", a_pred_.data(), a_pred_.size());
    writer.add_values("lts.u0", interp_u0_.data(), interp_u0_.size());
    writer.add_values("lts.v0", interp_v0_.data(), interp_v0_.size());
    writer.add_values("lts.a0", interp_a0_.data(), interp_a0_.size());
    writer.add_vector("lts.clock", lts_clock_);
  }

  for (std::size_t r = 0; r < receivers_.size(); ++r) {
    const Seismogram& s = receivers_[r].seis;
    writer.add_vector("recv." + std::to_string(r) + ".time", s.time);
    writer.add_values("recv." + std::to_string(r) + ".displ",
                      s.displ.empty() ? nullptr : s.displ.data()->data(),
                      s.displ.size() * 3);
  }

  if (profile_.enabled()) {
    MetricsCheckpoint mc;
    mc.steps = profile_.steps();
    mc.total_wall = profile_.total_wall_seconds();
    for (int p = 0; p < metrics::kNumPhases; ++p) {
      mc.counts[p] = profile_.phase_counts()[static_cast<std::size_t>(p)];
      mc.seconds[p] = profile_.phase_seconds()[static_cast<std::size_t>(p)];
    }
    writer.add_values("metrics", &mc, 1);
  }

  return writer;
}

void Simulation::write_checkpoint(const std::string& path,
                                  const io::SnapshotIdentity& identity) const {
  checkpoint_snapshot().write(path, identity);
}

void Simulation::write_checkpoint(io::BlobStore& store,
                                  const std::string& key,
                                  const io::SnapshotIdentity& identity) const {
  checkpoint_snapshot().write(store, key, identity);
}

std::int64_t checkpoint_step(const std::string& path,
                             const io::SnapshotIdentity& identity) {
  try {
    const io::SnapshotReader reader =
        io::SnapshotReader::open(path, identity);
    return reader.read_value<CheckpointMeta>("meta").step;
  } catch (const CheckError&) {
    return -1;  // missing / truncated / corrupted / wrong identity
  }
}

std::int64_t checkpoint_step(const io::BlobStore& store,
                             const std::string& key,
                             const io::SnapshotIdentity& identity) {
  try {
    const io::SnapshotReader reader =
        io::SnapshotReader::open(store, key, identity);
    return reader.read_value<CheckpointMeta>("meta").step;
  } catch (const CheckError&) {
    return -1;  // missing store/blob, torn container, wrong identity
  }
}

void Simulation::restore_checkpoint(const std::string& path,
                                    const io::SnapshotIdentity& identity) {
  restore_from(io::SnapshotReader::open(path, identity), path);
}

void Simulation::restore_checkpoint(const io::BlobStore& store,
                                    const std::string& key,
                                    const io::SnapshotIdentity& identity) {
  restore_from(io::SnapshotReader::open(store, key, identity),
               store.describe() + ":" + key);
}

void Simulation::restore_from(const io::SnapshotReader& reader,
                              const std::string& label) {
  const std::string& path = label;

  const auto meta = reader.read_value<CheckpointMeta>("meta");
  SFG_CHECK_MSG(meta.nglob == mesh_.nglob && meta.nspec == mesh_.nspec &&
                    meta.ngll == mesh_.ngll,
                "checkpoint '" << path << "' holds a mesh of nglob="
                               << meta.nglob << " nspec=" << meta.nspec
                               << " ngll=" << meta.ngll
                               << ", this simulation has nglob="
                               << mesh_.nglob << " nspec=" << mesh_.nspec
                               << " ngll=" << mesh_.ngll);
  SFG_CHECK_MSG(meta.dt == cfg_.dt, "checkpoint '"
                                        << path << "' was taken at dt="
                                        << meta.dt << ", this run uses dt="
                                        << cfg_.dt);
  SFG_CHECK_MSG(meta.nsls == static_cast<std::int32_t>(r_mem_.size()),
                "checkpoint '" << path << "' has " << meta.nsls
                               << " SLS memory-variable sets, this run has "
                               << r_mem_.size());
  SFG_CHECK_MSG(meta.has_fluid == (global_has_fluid_ ? 1 : 0),
                "checkpoint '" << path
                               << "' fluid flag does not match this run");
  SFG_CHECK_MSG(meta.nreceivers ==
                    static_cast<std::int32_t>(receivers_.size()),
                "checkpoint '" << path << "' recorded " << meta.nreceivers
                               << " receivers, this run has "
                               << receivers_.size());
  SFG_CHECK_MSG(meta.nsources == static_cast<std::int32_t>(sources_.size()),
                "checkpoint '" << path << "' had " << meta.nsources
                               << " sources, this run has "
                               << sources_.size());
  SFG_CHECK_MSG(meta.lts_levels == (lts_active_ ? lts_num_levels_ : 0),
                "checkpoint '"
                    << path << "' was taken with LTS "
                    << (meta.lts_levels > 0
                            ? "on (" + std::to_string(meta.lts_levels) +
                                  " clusters)"
                            : std::string("off"))
                    << ", this run has "
                    << (lts_active_ ? std::to_string(lts_num_levels_) +
                                          " clusters"
                                    : std::string("LTS off")));
  SFG_CHECK_MSG(
      meta.lts_ninterp ==
          static_cast<std::int32_t>(lts_interp_.points.size()),
      "checkpoint '" << path << "' holds " << meta.lts_ninterp
                     << " LTS interface points, this run has "
                     << lts_interp_.points.size());

  auto load_field = [&](const char* name, aligned_vector<float>& field) {
    const auto v = reader.read_vector<float>(name);
    SFG_CHECK_MSG(v.size() == field.size(),
                  "checkpoint section '" << name << "' has " << v.size()
                                         << " floats, expected "
                                         << field.size());
    std::copy(v.begin(), v.end(), field.begin());
  };
  load_field("displ", displ_);
  load_field("veloc", veloc_);
  load_field("accel", accel_);
  if (global_has_fluid_) {
    load_field("chi", chi_);
    load_field("chi_dot", chi_dot_);
    load_field("chi_ddot", chi_ddot_);
  }
  for (std::size_t l = 0; l < r_mem_.size(); ++l)
    for (int c = 0; c < 5; ++c)
      load_field(("r_mem." + std::to_string(l) + "." + std::to_string(c))
                     .c_str(),
                 r_mem_[l][static_cast<std::size_t>(c)]);

  for (std::size_t r = 0; r < receivers_.size(); ++r) {
    Seismogram& s = receivers_[r].seis;
    s.time = reader.read_vector<double>("recv." + std::to_string(r) +
                                        ".time");
    const auto flat = reader.read_vector<double>("recv." +
                                                 std::to_string(r) +
                                                 ".displ");
    SFG_CHECK_MSG(flat.size() == s.time.size() * 3,
                  "checkpoint receiver " << r
                                         << " sample counts disagree");
    s.displ.resize(s.time.size());
    for (std::size_t i = 0; i < s.displ.size(); ++i)
      s.displ[i] = {flat[i * 3 + 0], flat[i * 3 + 1], flat[i * 3 + 2]};
  }

  // Optional section: snapshots written with metrics disabled (or by the
  // pre-ISSUE-3 format) simply leave the profile at its current state.
  if (profile_.enabled() && reader.has("metrics")) {
    const auto mc = reader.read_value<MetricsCheckpoint>("metrics");
    std::array<std::uint64_t, metrics::kNumPhases> counts{};
    std::array<double, metrics::kNumPhases> seconds{};
    for (int p = 0; p < metrics::kNumPhases; ++p) {
      counts[static_cast<std::size_t>(p)] = mc.counts[p];
      seconds[static_cast<std::size_t>(p)] = mc.seconds[p];
    }
    profile_.restore_counts(static_cast<int>(mc.steps), counts, seconds,
                            mc.total_wall);
  }

  if (lts_active_) {
    load_field("lts.a_pred", a_pred_);
    load_field("lts.u0", interp_u0_);
    load_field("lts.v0", interp_v0_);
    load_field("lts.a0", interp_a0_);
    const auto clock = reader.read_vector<std::int64_t>("lts.clock");
    SFG_CHECK_MSG(clock.size() == lts_clock_.size(),
                  "checkpoint '" << path << "' holds " << clock.size()
                                 << " LTS clocks, this run has "
                                 << lts_clock_.size());
    // Clock soundness: clock[r] counts completed rate-r strides, so it
    // must equal step >> r — a snapshot violating that was written by a
    // broken marcher and cannot be resumed.
    for (std::size_t r = 0; r < clock.size(); ++r)
      SFG_CHECK_MSG(clock[r] == (meta.step >> r),
                    "checkpoint '" << path << "' LTS clock[" << r << "] = "
                                   << clock[r] << " disagrees with step "
                                   << meta.step << " (expected "
                                   << (meta.step >> r) << ")");
    lts_clock_ = clock;
  }

  it_ = static_cast<int>(meta.step);
  time_ = meta.time;
}

}  // namespace sfg

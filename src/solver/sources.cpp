#include "solver/sources.hpp"

#include <cmath>
#include <limits>

#include "common/constants.hpp"

namespace sfg {

SourceTimeFunction ricker_wavelet(double f0, double t0) {
  SFG_CHECK(f0 > 0.0);
  return [f0, t0](double t) {
    const double a = kPi * f0 * (t - t0);
    const double a2 = a * a;
    return (1.0 - 2.0 * a2) * std::exp(-a2);
  };
}

SourceTimeFunction gaussian_pulse(double sigma, double t0) {
  SFG_CHECK(sigma > 0.0);
  return [sigma, t0](double t) {
    const double a = (t - t0) / sigma;
    return std::exp(-a * a);
  };
}

SourceTimeFunction smooth_ramp(double rise_time, double t0) {
  SFG_CHECK(rise_time > 0.0);
  return [rise_time, t0](double t) {
    const double a = (t - t0) / rise_time;
    if (a <= 0.0) return 0.0;
    if (a >= 1.0) return 1.0;
    return a * a * (3.0 - 2.0 * a);  // smoothstep
  };
}

namespace {

/// Evaluate the isoparametric mapping and its Jacobian at reference
/// coordinates (xi, eta, gamma) inside element ispec.
void evaluate_mapping(const HexMesh& mesh, const GllBasis& basis, int ispec,
                      double xi, double eta, double gamma, double pos[3],
                      double jac[3][3]) {
  const int n = mesh.ngll;
  std::vector<double> li(static_cast<std::size_t>(n)),
      lj(static_cast<std::size_t>(n)), lk(static_cast<std::size_t>(n));
  std::vector<double> dli(static_cast<std::size_t>(n)),
      dlj(static_cast<std::size_t>(n)), dlk(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    li[static_cast<std::size_t>(m)] = basis.lagrange(m, xi);
    lj[static_cast<std::size_t>(m)] = basis.lagrange(m, eta);
    lk[static_cast<std::size_t>(m)] = basis.lagrange(m, gamma);
    dli[static_cast<std::size_t>(m)] = basis.lagrange_derivative(m, xi);
    dlj[static_cast<std::size_t>(m)] = basis.lagrange_derivative(m, eta);
    dlk[static_cast<std::size_t>(m)] = basis.lagrange_derivative(m, gamma);
  }
  for (int a = 0; a < 3; ++a) {
    pos[a] = 0.0;
    for (int b = 0; b < 3; ++b) jac[a][b] = 0.0;
  }
  const std::size_t off = mesh.local_offset(ispec);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const std::size_t p =
            off + static_cast<std::size_t>(local_index(n, i, j, k));
        const double c[3] = {mesh.xstore[p], mesh.ystore[p], mesh.zstore[p]};
        const double w = li[static_cast<std::size_t>(i)] *
                         lj[static_cast<std::size_t>(j)] *
                         lk[static_cast<std::size_t>(k)];
        const double wx = dli[static_cast<std::size_t>(i)] *
                          lj[static_cast<std::size_t>(j)] *
                          lk[static_cast<std::size_t>(k)];
        const double wy = li[static_cast<std::size_t>(i)] *
                          dlj[static_cast<std::size_t>(j)] *
                          lk[static_cast<std::size_t>(k)];
        const double wz = li[static_cast<std::size_t>(i)] *
                          lj[static_cast<std::size_t>(j)] *
                          dlk[static_cast<std::size_t>(k)];
        for (int a = 0; a < 3; ++a) {
          pos[a] += c[a] * w;
          jac[a][0] += c[a] * wx;  // d pos_a / d xi
          jac[a][1] += c[a] * wy;
          jac[a][2] += c[a] * wz;
        }
      }
    }
  }
}

bool invert3(const double m[3][3], double inv[3][3]) {
  const double det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
                     m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
                     m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  if (std::abs(det) < 1e-300) return false;
  const double d = 1.0 / det;
  inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * d;
  inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * d;
  inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * d;
  inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * d;
  inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * d;
  inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * d;
  inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * d;
  inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * d;
  inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * d;
  return true;
}

inline double dist2_to(const HexMesh& mesh, std::size_t p, double x,
                       double y, double z) {
  const double dx = mesh.xstore[p] - x;
  const double dy = mesh.ystore[p] - y;
  const double dz = mesh.zstore[p] - z;
  return dx * dx + dy * dy + dz * dz;
}

/// Local index of the GLL node at the middle of the element — always an
/// actual mesh point, so its distance is a valid upper bound for the
/// nearest-point search.
inline int center_node(int ngll) {
  const int m = ngll / 2;
  return local_index(ngll, m, m, m);
}

/// Inflation applied to the corner-based element radius below: on curved
/// (cubed-sphere) elements a mid-face GLL node can sit slightly farther
/// from the center node than any corner, so the raw corner maximum could
/// under-estimate the true point-set radius and wrongly prune an element.
/// 25% covers any realistic element curvature at the cost of scanning a
/// few extra elements.
constexpr double kRadiusSafety = 1.25;

/// Element radius estimate: max distance of the 8 corner nodes to the
/// center node (scale with kRadiusSafety before using as a pruning bound).
double element_radius(const HexMesh& mesh, int e) {
  const int n = mesh.ngll;
  const std::size_t off = mesh.local_offset(e);
  const std::size_t c = off + static_cast<std::size_t>(center_node(n));
  double r2 = 0.0;
  for (int k = 0; k < n; k += n - 1)
    for (int j = 0; j < n; j += n - 1)
      for (int i = 0; i < n; i += n - 1) {
        const std::size_t p =
            off + static_cast<std::size_t>(local_index(n, i, j, k));
        r2 = std::max(r2, dist2_to(mesh, p, mesh.xstore[c], mesh.ystore[c],
                                   mesh.zstore[c]));
      }
  return std::sqrt(r2);
}

}  // namespace

std::size_t nearest_local_point_brute(const HexMesh& mesh, double x,
                                      double y, double z) {
  double best = std::numeric_limits<double>::max();
  std::size_t best_p = 0;
  for (std::size_t p = 0; p < mesh.num_local_points(); ++p) {
    const double d2 = dist2_to(mesh, p, x, y, z);
    if (d2 < best) {
      best = d2;
      best_p = p;
    }
  }
  return best_p;
}

std::size_t nearest_local_point(const HexMesh& mesh, double x, double y,
                                double z) {
  // Element-centroid prefilter (ISSUE 3 perf fix). The old brute-force
  // scan touched every local GLL point — O(nspec * ngll^3) per station,
  // which dominates setup when locating hundreds of stations on a large
  // slice. Pass 1 prices every element by its center node (an actual mesh
  // point, so the minimum is a valid upper bound U); pass 2 scans the
  // points of only those elements whose ball [center, radius] can beat U.
  // Elements are visited in index order with strict '<' updates, so the
  // winner (lowest point index among equal distances) is IDENTICAL to the
  // brute-force scan — test_point_location asserts this.
  const int n3 = mesh.ngll3();
  if (mesh.nspec == 0 || n3 == 0) return 0;

  const int cnode = center_node(mesh.ngll);
  std::vector<double> center_d2(static_cast<std::size_t>(mesh.nspec));
  double upper2 = std::numeric_limits<double>::max();
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t c =
        mesh.local_offset(e) + static_cast<std::size_t>(cnode);
    const double d2 = dist2_to(mesh, c, x, y, z);
    center_d2[static_cast<std::size_t>(e)] = d2;
    upper2 = std::min(upper2, d2);
  }
  const double upper = std::sqrt(upper2);

  double best = std::numeric_limits<double>::max();
  std::size_t best_p = 0;
  for (int e = 0; e < mesh.nspec; ++e) {
    const double dc = std::sqrt(center_d2[static_cast<std::size_t>(e)]);
    // Conservative lower bound on the distance to any point of e; the
    // relative slack absorbs sqrt rounding so no candidate is ever lost.
    const double lb = dc - kRadiusSafety * element_radius(mesh, e);
    if (lb > upper * (1.0 + 1e-12) + 1e-300) continue;
    const std::size_t off = mesh.local_offset(e);
    for (int p = 0; p < n3; ++p) {
      const double d2 = dist2_to(mesh, off + static_cast<std::size_t>(p),
                                 x, y, z);
      if (d2 < best) {
        best = d2;
        best_p = off + static_cast<std::size_t>(p);
      }
    }
  }
  return best_p;
}

LocatedPoint locate_point_nearest(const HexMesh& mesh, const GllBasis& basis,
                                  double x, double y, double z) {
  const std::size_t p = nearest_local_point(mesh, x, y, z);
  const int ngll3 = mesh.ngll3();
  LocatedPoint loc;
  loc.ispec = static_cast<int>(p) / ngll3;
  const int lp = static_cast<int>(p) % ngll3;
  const int i = lp % mesh.ngll;
  const int j = (lp / mesh.ngll) % mesh.ngll;
  const int k = lp / (mesh.ngll * mesh.ngll);
  loc.xi = basis.node(i);
  loc.eta = basis.node(j);
  loc.gamma = basis.node(k);
  const double dx = mesh.xstore[p] - x;
  const double dy = mesh.ystore[p] - y;
  const double dz = mesh.zstore[p] - z;
  loc.error_m = std::sqrt(dx * dx + dy * dy + dz * dz);
  loc.exact = false;
  return loc;
}

namespace {

/// Newton-iterate inside one element, clamped to the reference cube.
LocatedPoint newton_in_element(const HexMesh& mesh, const GllBasis& basis,
                               int ispec, double x, double y, double z,
                               double xi, double eta, double gamma) {
  double pos[3], jac[3][3], inv[3][3];
  for (int it = 0; it < 50; ++it) {
    evaluate_mapping(mesh, basis, ispec, xi, eta, gamma, pos, jac);
    const double rx = pos[0] - x, ry = pos[1] - y, rz = pos[2] - z;
    if (!invert3(jac, inv)) break;
    const double dxi = inv[0][0] * rx + inv[0][1] * ry + inv[0][2] * rz;
    const double deta = inv[1][0] * rx + inv[1][1] * ry + inv[1][2] * rz;
    const double dgam = inv[2][0] * rx + inv[2][1] * ry + inv[2][2] * rz;
    xi -= dxi;
    eta -= deta;
    gamma -= dgam;
    xi = std::clamp(xi, -1.0, 1.0);
    eta = std::clamp(eta, -1.0, 1.0);
    gamma = std::clamp(gamma, -1.0, 1.0);
    if (std::abs(dxi) + std::abs(deta) + std::abs(dgam) < 1e-14) break;
  }
  evaluate_mapping(mesh, basis, ispec, xi, eta, gamma, pos, jac);
  LocatedPoint loc;
  loc.ispec = ispec;
  loc.xi = xi;
  loc.eta = eta;
  loc.gamma = gamma;
  loc.exact = true;
  const double dx = pos[0] - x, dy = pos[1] - y, dz = pos[2] - z;
  loc.error_m = std::sqrt(dx * dx + dy * dy + dz * dz);
  return loc;
}

}  // namespace

LocatedPoint locate_point_exact(const HexMesh& mesh, const GllBasis& basis,
                                double x, double y, double z) {
  // The nearest GLL point may sit on a face/edge/corner shared by several
  // elements, and only one of them contains the target: Newton-iterate in
  // EVERY element sharing that global point and keep the best fit.
  const LocatedPoint seed = locate_point_nearest(mesh, basis, x, y, z);
  const std::size_t seed_local = nearest_local_point(mesh, x, y, z);
  const int seed_glob = mesh.ibool[seed_local];

  LocatedPoint best;
  best.error_m = std::numeric_limits<double>::max();
  const int ngll3 = mesh.ngll3();
  std::vector<char> tried(static_cast<std::size_t>(mesh.nspec), 0);
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    bool shares = false;
    for (int p = 0; p < ngll3 && !shares; ++p)
      shares = mesh.ibool[off + static_cast<std::size_t>(p)] == seed_glob;
    if (!shares) continue;
    tried[static_cast<std::size_t>(e)] = 1;
    // Seed at the shared point's reference coordinates within THIS element.
    double sxi = 0, seta = 0, sgam = 0;
    for (int p = 0; p < ngll3; ++p) {
      if (mesh.ibool[off + static_cast<std::size_t>(p)] != seed_glob)
        continue;
      sxi = basis.node(p % mesh.ngll);
      seta = basis.node((p / mesh.ngll) % mesh.ngll);
      sgam = basis.node(p / (mesh.ngll * mesh.ngll));
      break;
    }
    const LocatedPoint cand =
        newton_in_element(mesh, basis, e, x, y, z, sxi, seta, sgam);
    if (cand.error_m < best.error_m) best = cand;
  }
  if (best.ispec < 0) return seed;  // degenerate mesh: fall back

  // Mislocation fix (ISSUE 3): on curved elements the target can lie
  // inside an element that does NOT touch the nearest GLL node, and the
  // clamped Newton iteration above then converges to a point on a face of
  // the wrong element. The old code returned that clamped result silently
  // flagged exact=true. Validate the converged residual against a
  // tolerance scaled to the local element size and, if it fails, widen the
  // candidate set to every element whose bounding ball could contain the
  // target before giving up.
  const double scale = element_radius(mesh, best.ispec);
  const double tol = std::max(1e-6 * scale, 1e-9);
  if (best.error_m > tol) {
    for (int e = 0; e < mesh.nspec; ++e) {
      if (tried[static_cast<std::size_t>(e)]) continue;
      const std::size_t c = mesh.local_offset(e) +
                            static_cast<std::size_t>(center_node(mesh.ngll));
      const double dc = std::sqrt(dist2_to(mesh, c, x, y, z));
      if (dc - kRadiusSafety * element_radius(mesh, e) > best.error_m)
        continue;
      const LocatedPoint cand =
          newton_in_element(mesh, basis, e, x, y, z, 0.0, 0.0, 0.0);
      if (cand.error_m < best.error_m) best = cand;
      if (best.error_m <= tol) break;
    }
  }
  // Honest degrade: points outside this rank's slice (or outside the mesh
  // entirely) report the true residual and exact=false instead of a
  // silently clamped "exact" location. error_m stays the tie-break key of
  // Simulation::elect_owner.
  best.exact = best.error_m <= tol;
  return best;
}

std::vector<double> interpolation_weights(const GllBasis& basis,
                                          const LocatedPoint& loc) {
  const int n = basis.num_points();
  std::vector<double> w(static_cast<std::size_t>(n * n * n));
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        w[static_cast<std::size_t>(local_index(n, i, j, k))] =
            basis.lagrange(i, loc.xi) * basis.lagrange(j, loc.eta) *
            basis.lagrange(k, loc.gamma);
  return w;
}

DiscreteSource discretize_source(const HexMesh& mesh, const GllBasis& basis,
                                 const PointSource& source) {
  SFG_CHECK_MSG(source.stf, "source needs a source-time function");
  const LocatedPoint loc =
      locate_point_exact(mesh, basis, source.x, source.y, source.z);
  const int n = mesh.ngll;

  DiscreteSource ds;
  ds.ispec = loc.ispec;
  ds.stf = source.stf;
  ds.node_force.assign(static_cast<std::size_t>(mesh.ngll3()),
                       {0.0, 0.0, 0.0});

  // Inverse Jacobian at the source point for physical gradients.
  double pos[3], jac[3][3], inv[3][3];
  evaluate_mapping(mesh, basis, loc.ispec, loc.xi, loc.eta, loc.gamma, pos,
                   jac);
  SFG_CHECK(invert3(jac, inv));  // inv[r][c] = d ref_r / d x_c

  const auto& M = source.moment;
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const double li = basis.lagrange(i, loc.xi);
        const double lj = basis.lagrange(j, loc.eta);
        const double lk = basis.lagrange(k, loc.gamma);
        const double dli = basis.lagrange_derivative(i, loc.xi);
        const double dlj = basis.lagrange_derivative(j, loc.eta);
        const double dlk = basis.lagrange_derivative(k, loc.gamma);

        const double gref[3] = {dli * lj * lk, li * dlj * lk, li * lj * dlk};
        // grad_phys_c = sum_r gref[r] * d ref_r / d x_c
        double g[3];
        for (int c = 0; c < 3; ++c)
          g[c] = gref[0] * inv[0][c] + gref[1] * inv[1][c] +
                 gref[2] * inv[2][c];

        auto& f = ds.node_force[static_cast<std::size_t>(
            local_index(n, i, j, k))];
        const double shape = li * lj * lk;
        // Point force: F_a * l(x_s); moment tensor: M_ab * d_b l(x_s).
        f[0] = source.force[0] * shape + M[0] * g[0] + M[3] * g[1] +
               M[4] * g[2];
        f[1] = source.force[1] * shape + M[3] * g[0] + M[1] * g[1] +
               M[5] * g[2];
        f[2] = source.force[2] * shape + M[4] * g[0] + M[5] * g[1] +
               M[2] * g[2];
      }
    }
  }
  return ds;
}

}  // namespace sfg

#include "perf/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "model/earth_model.hpp"
#include "sphere/layers.hpp"

namespace sfg {

KernelProfile sem_kernel_profile(int ngll, bool attenuation) {
  const double n = ngll;
  const double n3 = n * n * n;
  const double n4 = n3 * n;
  KernelProfile p;
  double pointwise = 45 + 25 + 54 + 24;
  if (attenuation) pointwise += 20;
  p.flops_per_element = 36.0 * n4 + pointwise * n3;
  // Streamed data per element per step: 10 mapping tables + 2 moduli +
  // ibool + 3-component gather + read-modify-write scatter, 4 bytes each
  // (plus the int ibool).
  p.bytes_per_element = (10 + 2 + 1 + 3 + 6) * 4.0 * n3;
  if (attenuation) p.bytes_per_element += (5 * 3 + 6) * 4.0 * n3;
  return p;
}

double sustained_gflops_per_core(const MachineSpec& machine) {
  // Bandwidth-bound model calibrated once against Franklin's published
  // sustained rate (24 Tflops on 12,150 cores -> 1.975 GF/core with
  // 5.3 GB/s/core): 0.3727 flops sustained per byte/s of stream bandwidth.
  constexpr double kFlopsPerByteOfBandwidth = 1.975 / 5.3;
  constexpr double kPeakCap = 0.45;
  return std::min(kPeakCap * machine.peak_gflops_per_core,
                  kFlopsPerByteOfBandwidth * machine.mem_bw_gb_per_core);
}

GlobeSizeModel estimate_globe_size(int nex, int ngll) {
  static PremModel prem;
  GlobeSizeModel m;
  m.nex = nex;
  GlobeMeshSpec spec;
  spec.nex_xi = nex;
  spec.model = &prem;
  const auto layers =
      build_radial_layers(prem, effective_r_min(spec), nex);
  m.radial_elements = total_radial_elements(layers);
  m.elements = 6ull * static_cast<std::uint64_t>(nex) * nex *
               static_cast<std::uint64_t>(m.radial_elements);
  const std::uint64_t n3 = static_cast<std::uint64_t>(ngll) * ngll * ngll;
  m.local_points = m.elements * n3;
  const std::uint64_t deg3 = static_cast<std::uint64_t>(ngll - 1) *
                             (ngll - 1) * (ngll - 1);
  m.global_points = m.elements * deg3;  // asymptotic (boundaries +O(n^2))
  // Solver-resident bytes: 10 float tables + int ibool + 6 material floats
  // per local point, 10 floats of fields/mass per global point.
  m.memory_bytes = m.local_points * (10 * 4 + 4 + 6 * 4) +
                   m.global_points * 10 * 4;
  // Legacy handoff (§4.1): coordinates in double + tables + materials +
  // ibool + rmass, as written by write_legacy_mesh_files.
  m.legacy_disk_bytes = m.local_points * (3 * 8 + 10 * 4 + 4 + 6 * 4) +
                        m.global_points * 4;
  return m;
}

namespace {

/// Element count of a PRODUCTION-style mesh (SPECFEM's doubling bricks
/// coarsen the mesh with depth so element size tracks the local shortest
/// wavelength). Model: h(r) = v_min(r) * T / (points-per-wavelength /
/// (ngll-1)) and elements = 6 * integral (pi r / (2 h))^2 / h dr over the
/// solid/fluid shell. This reproduces the paper's footprint scaling
/// (~NEX^3) with the production constant, unlike our uniform-angular
/// research mesh which carries ~8x more deep-mantle elements.
double production_elements(int nex) {
  static PremModel prem;
  const double period = shortest_period_seconds(nex);
  const double r_min = 0.55 * kIcbRadiusM;
  const int nsteps = 2000;
  const double dr = (kEarthRadiusM - r_min) / nsteps;
  double elements = 0.0;
  for (int i = 0; i < nsteps; ++i) {
    const double r = r_min + (i + 0.5) * dr;
    const MaterialSample s = prem.at_radius(r);
    const double v = s.is_fluid() ? s.vp : s.vs;
    // 5 GLL points per wavelength; an element of degree 4 spans 4 GLL
    // intervals, i.e. ~0.8 wavelengths.
    const double h = v * period / kPointsPerWavelength * 4.0;
    const double columns = std::pow(kPi * r / (2.0 * h), 2.0);
    elements += 6.0 * columns / h * dr;
  }
  return elements;
}

}  // namespace

std::uint64_t predict_slice_comm_bytes_per_step(int nex, int nproc_xi,
                                                int ngll) {
  static PremModel prem;
  GlobeMeshSpec spec;
  spec.nex_xi = nex;
  spec.model = &prem;
  const auto layers =
      build_radial_layers(prem, effective_r_min(spec), nex);
  const std::uint64_t r_lat =
      static_cast<std::uint64_t>(radial_lattice_size(layers, ngll));
  // Four slice sides, (nex/nproc)*(ngll-1)+1 surface points each, full
  // radial extent, 3 displacement components (+1 potential where fluid —
  // folded in as a 10% surcharge), both directions, 4 bytes.
  const std::uint64_t side_points =
      (static_cast<std::uint64_t>(nex / nproc_xi) * (ngll - 1) + 1) * r_lat;
  const std::uint64_t floats = 2ull * 4ull * side_points * 3ull;
  return static_cast<std::uint64_t>(1.1 * static_cast<double>(floats) * 4.0);
}

RunPrediction predict_run(const MachineSpec& machine, int nex, int nproc_xi,
                          double event_seconds, bool attenuation,
                          double dt_reference, int nex_reference) {
  // Modeling only: NEX need not divide NPROC here (the paper quotes
  // NEX_XI = 4848 on 102^2-slice chunks).
  SFG_CHECK(nex > 0 && nproc_xi > 0);
  RunPrediction p;
  p.machine = &machine;
  p.nex = nex;
  p.nproc_xi = nproc_xi;
  p.cores = cores_for_nproc_xi(nproc_xi);
  p.shortest_period_s = shortest_period_seconds(nex);

  // Courant time step scales like 1/NEX from the measured reference.
  p.dt_s = dt_reference * static_cast<double>(nex_reference) / nex;
  p.steps = static_cast<std::uint64_t>(event_seconds / p.dt_s);

  // Production-mesh element count, shared across the cores.
  const double elements = production_elements(nex);
  const double elements_per_core = elements / p.cores;

  const KernelProfile prof = sem_kernel_profile(5, attenuation);
  const double gf_core = sustained_gflops_per_core(machine);
  const double flops_per_step_core =
      elements_per_core * prof.flops_per_element;
  // Attenuation costs ~1.8x runtime at near-constant flops rate (paper
  // §6): the memory-variable updates are bandwidth-, not flops-heavy.
  const double attenuation_time_factor = attenuation ? 1.8 : 1.0;
  p.compute_seconds = static_cast<double>(p.steps) * flops_per_step_core /
                      (gf_core * 1e9) * attenuation_time_factor;

  // Communication: per-step assembly exchange through the NIC.
  const double bytes_step = static_cast<double>(
      predict_slice_comm_bytes_per_step(nex, nproc_xi));
  const double msg_count = 8.0;  // 4 sides, both directions
  const double t_comm_step =
      msg_count * machine.net_latency_us * 1e-6 +
      bytes_step / (machine.net_bandwidth_gb * 1e9);
  p.comm_seconds = static_cast<double>(p.steps) * t_comm_step;

  p.wall_seconds = p.compute_seconds + p.comm_seconds;
  p.comm_fraction = p.comm_seconds / p.wall_seconds;

  // Whole-application sustained rate: kernel rate derated by comm share.
  p.sustained_tflops =
      p.cores * gf_core * (1.0 - p.comm_fraction) / 1000.0;

  // Memory & legacy-disk footprints of the production mesh.
  const double n3 = 125.0, deg3 = 64.0;
  const double mem_bytes =
      elements * (n3 * (10 * 4 + 4 + 6 * 4) + deg3 * 10 * 4);
  p.memory_tb = mem_bytes / 1e12;
  p.memory_gb_per_core = mem_bytes / p.cores / 1e9;
  p.legacy_disk_tb =
      elements * (n3 * (3 * 8 + 10 * 4 + 4 + 6 * 4) + deg3 * 4) / 1e12;
  p.fits_in_memory = p.memory_gb_per_core < machine.mem_per_core_gb;
  return p;
}

}  // namespace sfg

#pragma once

/// \file regression.hpp
/// The curve-fitting machinery of the paper's §5: "we fitted a function to
/// the actual measured communication times for a given resolution" and
/// "using the fitted function, we were able to predict the totaled
/// execution time ... within 12% error". Power laws are fitted in log-log
/// space by linear least squares.

#include <vector>

namespace sfg {

/// y = a * x^b fitted on (x, y) pairs (all strictly positive).
struct PowerLaw {
  double a = 0.0;
  double b = 0.0;
  double evaluate(double x) const;
  /// Largest |predicted/actual - 1| over the fitted points.
  double max_relative_error = 0.0;
};

PowerLaw fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y);

/// y = a * x1^b1 * x2^b2 (e.g. comm time vs resolution and core count).
struct PowerLaw2 {
  double a = 0.0;
  double b1 = 0.0;
  double b2 = 0.0;
  double evaluate(double x1, double x2) const;
  double max_relative_error = 0.0;
};

PowerLaw2 fit_power_law2(const std::vector<double>& x1,
                         const std::vector<double>& x2,
                         const std::vector<double>& y);

}  // namespace sfg

#pragma once

/// \file machines.hpp
/// The four systems of the paper (§5), with the published figures: Ranger
/// (TACC Sun Constellation, full-CLOS InfiniBand), Franklin (NERSC XT4),
/// Kraken (NICS XT4) and Jaguar (ORNL XT4), all SeaStar 3-D torus except
/// Ranger. Per-core memory bandwidth drives the sustained-FLOPS
/// differences the paper reports (Jaguar, "which has better memory
/// bandwidth per processor, sustained 35.7 Tflops (a higher flops rate)").

#include <string>
#include <vector>

namespace sfg {

struct MachineSpec {
  std::string name;
  int total_cores = 0;
  double ghz = 0.0;
  double peak_gflops_per_core = 0.0;
  double peak_tflops = 0.0;       ///< system theoretical peak
  double rmax_tflops = 0.0;       ///< measured LINPACK (0 if unpublished)
  double mem_per_core_gb = 0.0;
  double mem_bw_gb_per_core = 0.0;  ///< sustainable stream-like bandwidth
  double net_latency_us = 0.0;
  double net_bandwidth_gb = 0.0;  ///< per-link injection bandwidth, GB/s
  std::string interconnect;
};

/// The paper's four systems.
const MachineSpec& ranger();
const MachineSpec& franklin();
const MachineSpec& kraken();
const MachineSpec& jaguar();
const std::vector<MachineSpec>& all_machines();

/// Find by (case-sensitive) name; throws if unknown.
const MachineSpec& machine_by_name(const std::string& name);

}  // namespace sfg

#pragma once

/// \file replay.hpp
/// PSiNS-style trace replay (the paper measured its production flops with
/// PSiNSlight [18] and modeled communication from IPM profiles): captured
/// smpi traces — per-rank sequences of virtual-compute segments and
/// communication events — are replayed through a parametric machine model
/// to obtain wall-clock time, communication time and sustained flops at
/// machine speeds the host does not have.

#include <vector>

#include "perf/machines.hpp"
#include "runtime/smpi.hpp"

namespace sfg {

struct NetworkModel {
  double latency_s = 2e-6;
  double bandwidth_Bps = 1e9;
};

NetworkModel network_for(const MachineSpec& machine);

struct ReplayResult {
  double wall_seconds = 0.0;        ///< max finish time over ranks
  double total_comm_seconds = 0.0;  ///< summed over all ranks (Figure 6's y)
  double total_compute_seconds = 0.0;
  double max_comm_seconds = 0.0;    ///< worst single rank
  std::uint64_t total_flops = 0;
  double sustained_gflops = 0.0;    ///< total_flops / wall_seconds
  double comm_fraction = 0.0;       ///< total comm / total busy time
};

/// Replay the traces of all ranks. Compute segments are timed from their
/// virtual flop counts at `seconds_per_flop`; send/recv pairs are matched
/// in posting order per (source, destination); collectives cost a
/// log2(P)-depth latency tree plus bandwidth.
ReplayResult replay_traces(
    const std::vector<std::vector<smpi::TraceEvent>>& traces,
    double seconds_per_flop, const NetworkModel& net);

}  // namespace sfg

#include "perf/replay.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.hpp"

namespace sfg {

NetworkModel network_for(const MachineSpec& machine) {
  NetworkModel net;
  net.latency_s = machine.net_latency_us * 1e-6;
  net.bandwidth_Bps = machine.net_bandwidth_gb * 1e9;
  return net;
}

ReplayResult replay_traces(
    const std::vector<std::vector<smpi::TraceEvent>>& traces,
    double seconds_per_flop, const NetworkModel& net) {
  using smpi::TraceEvent;
  const int nranks = static_cast<int>(traces.size());
  SFG_CHECK(nranks >= 1);

  std::vector<double> clock(static_cast<std::size_t>(nranks), 0.0);
  std::vector<std::size_t> next(static_cast<std::size_t>(nranks), 0);
  std::vector<double> comm_time(static_cast<std::size_t>(nranks), 0.0);
  std::vector<double> compute_time(static_cast<std::size_t>(nranks), 0.0);

  // Completion times of sends, keyed by (src, dst), in posting order.
  std::map<std::pair<int, int>, std::vector<double>> send_ready;
  std::map<std::pair<int, int>, std::size_t> recv_matched;

  // Collective rendezvous: ranks arriving at their k-th collective wait
  // for everyone's k-th collective.
  std::vector<std::size_t> coll_index(static_cast<std::size_t>(nranks), 0);
  std::vector<std::vector<double>> coll_arrival;  // [collective][rank]

  const double log2p = std::max(1.0, std::log2(static_cast<double>(nranks)));

  std::uint64_t total_flops = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < nranks; ++r) {
      const auto& trace = traces[static_cast<std::size_t>(r)];
      while (next[static_cast<std::size_t>(r)] < trace.size()) {
        const TraceEvent& ev = trace[next[static_cast<std::size_t>(r)]];
        const double compute = static_cast<double>(ev.compute_flops) *
                               seconds_per_flop;

        if (ev.kind == TraceEvent::Kind::Send) {
          clock[static_cast<std::size_t>(r)] += compute;
          compute_time[static_cast<std::size_t>(r)] += compute;
          total_flops += ev.compute_flops;
          const double post = net.latency_s;
          clock[static_cast<std::size_t>(r)] += post;
          comm_time[static_cast<std::size_t>(r)] += post;
          send_ready[{r, ev.peer}].push_back(
              clock[static_cast<std::size_t>(r)] +
              static_cast<double>(ev.bytes) / net.bandwidth_Bps);
          ++next[static_cast<std::size_t>(r)];
          progress = true;
          continue;
        }

        if (ev.kind == TraceEvent::Kind::Fault) {
          // Injected fault or recv-retry timeout: purely local — the rank
          // burns its compute segment plus the lost wait time recorded in
          // mpi_seconds. Lets replay price the retry cost of faulty runs.
          clock[static_cast<std::size_t>(r)] += compute + ev.mpi_seconds;
          compute_time[static_cast<std::size_t>(r)] += compute;
          comm_time[static_cast<std::size_t>(r)] += ev.mpi_seconds;
          total_flops += ev.compute_flops;
          ++next[static_cast<std::size_t>(r)];
          progress = true;
          continue;
        }

        if (ev.kind == TraceEvent::Kind::Recv) {
          auto& ready = send_ready[{ev.peer, r}];
          auto& matched = recv_matched[{ev.peer, r}];
          if (matched >= ready.size()) break;  // matching send not posted
          const double available = ready[matched];
          ++matched;
          const double start =
              clock[static_cast<std::size_t>(r)] + compute;
          compute_time[static_cast<std::size_t>(r)] += compute;
          total_flops += ev.compute_flops;
          const double finish = std::max(start, available);
          comm_time[static_cast<std::size_t>(r)] += finish - start;
          clock[static_cast<std::size_t>(r)] = finish;
          ++next[static_cast<std::size_t>(r)];
          progress = true;
          continue;
        }

        // Collective (Barrier / Allreduce / Gather): rendezvous of the
        // k-th collective across all ranks.
        const std::size_t k = coll_index[static_cast<std::size_t>(r)];
        if (coll_arrival.size() <= k)
          coll_arrival.resize(k + 1,
                              std::vector<double>(
                                  static_cast<std::size_t>(nranks), -1.0));
        if (coll_arrival[k][static_cast<std::size_t>(r)] < 0.0) {
          const double arrive =
              clock[static_cast<std::size_t>(r)] + compute;
          compute_time[static_cast<std::size_t>(r)] += compute;
          total_flops += ev.compute_flops;
          coll_arrival[k][static_cast<std::size_t>(r)] = arrive;
        }
        bool all_arrived = true;
        double latest = 0.0;
        for (double a : coll_arrival[k]) {
          if (a < 0.0) {
            all_arrived = false;
            break;
          }
          latest = std::max(latest, a);
        }
        if (!all_arrived) break;
        double cost = net.latency_s * log2p;
        if (ev.kind == TraceEvent::Kind::Allreduce)
          cost = 2.0 * log2p *
                 (net.latency_s +
                  static_cast<double>(ev.bytes) / net.bandwidth_Bps);
        if (ev.kind == TraceEvent::Kind::Gather)
          cost = log2p * net.latency_s +
                 nranks * static_cast<double>(ev.bytes) / net.bandwidth_Bps;
        const double finish = latest + cost;
        comm_time[static_cast<std::size_t>(r)] +=
            finish - coll_arrival[k][static_cast<std::size_t>(r)];
        clock[static_cast<std::size_t>(r)] = finish;
        ++coll_index[static_cast<std::size_t>(r)];
        ++next[static_cast<std::size_t>(r)];
        progress = true;
      }
    }
  }

  for (int r = 0; r < nranks; ++r)
    SFG_CHECK_MSG(next[static_cast<std::size_t>(r)] ==
                      traces[static_cast<std::size_t>(r)].size(),
                  "replay deadlock: rank " << r << " stuck at event "
                                           << next[static_cast<std::size_t>(r)]);

  ReplayResult res;
  for (int r = 0; r < nranks; ++r) {
    res.wall_seconds =
        std::max(res.wall_seconds, clock[static_cast<std::size_t>(r)]);
    res.total_comm_seconds += comm_time[static_cast<std::size_t>(r)];
    res.total_compute_seconds += compute_time[static_cast<std::size_t>(r)];
    res.max_comm_seconds =
        std::max(res.max_comm_seconds, comm_time[static_cast<std::size_t>(r)]);
  }
  res.total_flops = total_flops;
  if (res.wall_seconds > 0.0)
    res.sustained_gflops =
        static_cast<double>(total_flops) / res.wall_seconds / 1e9;
  const double busy = res.total_comm_seconds + res.total_compute_seconds;
  if (busy > 0.0) res.comm_fraction = res.total_comm_seconds / busy;
  return res;
}

}  // namespace sfg

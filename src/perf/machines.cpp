#include "perf/machines.hpp"

#include "common/check.hpp"

namespace sfg {

// Core counts, clocks, peaks and Rmax are from the paper's §5 text; the
// per-core memory bandwidths are nominal sustainable figures for the
// respective node architectures (DDR2 dual-/quad-core Opterons; Ranger's
// four-socket nodes had markedly less bandwidth per core), chosen so the
// bandwidth-bounded kernel model reproduces the ORDERING the paper
// reports; network figures are nominal SeaStar2 / IB-SDR values.

const MachineSpec& ranger() {
  static const MachineSpec m{
      "Ranger",   62976, 2.0, 8.0,  504.0, 326.0, 2.0,
      2.2,        2.3,   0.9, "InfiniBand full-CLOS"};
  return m;
}

const MachineSpec& franklin() {
  static const MachineSpec m{
      "Franklin", 19320, 2.6, 5.2,  101.5, 85.0,  2.0,
      5.3,        6.0,   1.2, "SeaStar2 3-D torus"};
  return m;
}

const MachineSpec& kraken() {
  static const MachineSpec m{
      "Kraken",   18048, 2.3, 9.2,  166.0, 0.0,   1.0,
      3.2,        6.0,   1.2, "SeaStar 3-D torus"};
  return m;
}

const MachineSpec& jaguar() {
  static const MachineSpec m{
      "Jaguar",   31328, 2.1, 8.4,  263.0, 205.0, 2.0,
      3.4,        6.0,   1.2, "SeaStar 3-D torus"};
  return m;
}

const std::vector<MachineSpec>& all_machines() {
  static const std::vector<MachineSpec> machines = {ranger(), franklin(),
                                                    kraken(), jaguar()};
  return machines;
}

const MachineSpec& machine_by_name(const std::string& name) {
  for (const auto& m : all_machines())
    if (m.name == name) return m;
  SFG_CHECK_MSG(false, "unknown machine " << name);
  return ranger();
}

}  // namespace sfg

#include "perf/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace sfg::metrics {

// ---- Histogram ----

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  SFG_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bound");
  SFG_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

// ---- Registry ----

Counter& Registry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(name,
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  return *it->second;
}

// ---- phases ----

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::NewmarkPredictor: return "newmark_predictor";
    case Phase::FluidForces: return "fluid_forces";
    case Phase::SolidForces: return "solid_forces";
    case Phase::SolidBoundary: return "solid_boundary";
    case Phase::SolidInterior: return "solid_interior";
    case Phase::HaloBegin: return "halo_begin";
    case Phase::HaloWait: return "halo_wait";
    case Phase::SourceInjection: return "source_injection";
    case Phase::MassUpdate: return "mass_update";
    case Phase::NewmarkCorrector: return "newmark_corrector";
    case Phase::SeismogramRecord: return "seismogram_record";
    case Phase::AttenuationUpdate: return "attenuation_update";
    case Phase::SchedulePaired: return "schedule_paired";
    case Phase::ScheduleResidual: return "schedule_residual";
    case Phase::LtsInterpolate: return "lts_interpolate";
    case Phase::Count: break;
  }
  return "?";
}

bool phase_is_nested(Phase p) {
  // Nested phases run inside a top-level phase (attenuation inside the
  // solid loops; schedule rounds inside SolidBoundary/SolidInterior/
  // FluidForces; LTS interpolation inside NewmarkPredictor) and are
  // excluded from the wall-time-sum invariant.
  return p == Phase::AttenuationUpdate || p == Phase::SchedulePaired ||
         p == Phase::ScheduleResidual || p == Phase::LtsInterpolate;
}

// ---- StepProfile ----

StepProfile::StepProfile(bool enabled, bool timeline,
                         std::size_t max_timeline_events)
    : enabled_(enabled),
      timeline_(enabled && timeline),
      max_events_(max_timeline_events) {}

void StepProfile::begin_step() {
  if (!enabled_) return;
  current_.fill(0.0);
}

void StepProfile::record(Phase phase, double start_s, double dur_s) {
  if (!enabled_) return;
  const auto i = static_cast<std::size_t>(phase);
  current_[i] += dur_s;
  totals_[i] += dur_s;
  ++counts_[i];
  if (timeline_ && events_.size() < max_events_) {
    TimelineEvent ev;
    ev.phase = static_cast<std::int32_t>(phase);
    ev.step = steps_;
    ev.start_s = start_s;
    ev.dur_s = dur_s;
    events_.push_back(ev);
  }
}

void StepProfile::end_step(double step_wall_seconds) {
  if (!enabled_) return;
  last_step_ = current_;
  last_wall_ = step_wall_seconds;
  total_wall_ += step_wall_seconds;
  ++steps_;
}

double StepProfile::accounted_seconds() const {
  double s = 0.0;
  for (int p = 0; p < kNumPhases; ++p)
    if (!phase_is_nested(static_cast<Phase>(p)))
      s += totals_[static_cast<std::size_t>(p)];
  return s;
}

void StepProfile::restore_counts(
    int steps, const std::array<std::uint64_t, kNumPhases>& counts,
    const std::array<double, kNumPhases>& seconds,
    double total_wall_seconds) {
  steps_ = steps;
  counts_ = counts;
  totals_ = seconds;
  total_wall_ = total_wall_seconds;
}

// ---- comm summaries ----

std::uint64_t msg_size_bucket_bound(int bucket) {
  return std::uint64_t{64} << bucket;
}

double CommSummary::comm_fraction(double compute_seconds) const {
  const double busy = total_seconds() + compute_seconds;
  return busy > 0.0 ? total_seconds() / busy : 0.0;
}

CommSummary summarize_comm(const smpi::CommStats& stats) {
  CommSummary s;
  s.send_seconds = stats.send_seconds;
  s.recv_seconds = stats.recv_seconds;
  s.collective_seconds = stats.collective_seconds;
  s.bytes_sent = stats.bytes_sent;
  s.bytes_received = stats.bytes_received;
  s.send_count = stats.send_count;
  s.recv_count = stats.recv_count;
  s.collective_count = stats.collective_count;
  s.sent_size_hist = stats.sent_size_hist;
  return s;
}

CommSummary summarize_comm_trace(
    const std::vector<smpi::TraceEvent>& trace) {
  using smpi::TraceEvent;
  CommSummary s;
  for (const TraceEvent& ev : trace) {
    switch (ev.kind) {
      case TraceEvent::Kind::Send:
        s.send_seconds += ev.mpi_seconds;
        s.bytes_sent += ev.bytes;
        ++s.send_count;
        ++s.sent_size_hist[static_cast<std::size_t>(
            smpi::msg_size_bucket(ev.bytes))];
        break;
      case TraceEvent::Kind::Recv:
        s.recv_seconds += ev.mpi_seconds;
        s.bytes_received += ev.bytes;
        ++s.recv_count;
        break;
      case TraceEvent::Kind::Barrier:
      case TraceEvent::Kind::Allreduce:
      case TraceEvent::Kind::Gather:
        s.collective_seconds += ev.mpi_seconds;
        ++s.collective_count;
        break;
      case TraceEvent::Kind::Fault:
        break;  // fault bookkeeping is not communication volume
    }
  }
  return s;
}

// ---- report writer ----

namespace {

std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  return buf;
}

std::string fmt_bytes(std::uint64_t b) {
  char buf[64];
  if (b >= (1ull << 30))
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(b) / (1ull << 30));
  else if (b >= (1ull << 20))
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(b) / (1ull << 20));
  else if (b >= (1ull << 10))
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(b) / (1ull << 10));
  else
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(b));
  return buf;
}

}  // namespace

void write_report(std::ostream& os, const RunReport& r) {
  os << "== sfg_metrics report";
  if (!r.label.empty()) os << " — " << r.label;
  os << " ==\n";
  os << "rank " << r.rank << "/" << r.nranks;
  if (r.nex > 0) os << ", NEX " << r.nex;
  os << ", " << r.steps << " steps, wall " << fmt_seconds(r.wall_seconds)
     << "\n";

  // Per-phase table. Percentages are of the summed top-level phase time so
  // they add to ~100; nested phases are flagged and excluded.
  double accounted = 0.0;
  for (int p = 0; p < kNumPhases; ++p)
    if (!phase_is_nested(static_cast<Phase>(p)))
      accounted += r.phase_seconds[static_cast<std::size_t>(p)];
  os << "\n  phase                 total        per step     share\n";
  for (int p = 0; p < kNumPhases; ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (r.phase_counts[i] == 0) continue;
    const Phase ph = static_cast<Phase>(p);
    const double per_step =
        r.steps > 0 ? r.phase_seconds[i] / r.steps : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "  %-20s  %-11s  %-11s  %5.1f %%%s\n",
                  phase_name(ph), fmt_seconds(r.phase_seconds[i]).c_str(),
                  fmt_seconds(per_step).c_str(),
                  accounted > 0.0 ? 100.0 * r.phase_seconds[i] / accounted
                                  : 0.0,
                  phase_is_nested(ph) ? "  (nested)" : "");
    os << line;
  }
  os << "  accounted " << fmt_seconds(accounted) << " of wall "
     << fmt_seconds(r.wall_seconds) << "\n";

  if (r.has_comm) {
    const CommSummary& c = r.comm;
    const double compute = std::max(0.0, r.wall_seconds - c.total_seconds());
    char line[256];
    std::snprintf(line, sizeof(line),
                  "\n  comm: %s (send %s, recv %s, coll %s) — "
                  "comm fraction %.2f %% (Fig. 6 metric)\n",
                  fmt_seconds(c.total_seconds()).c_str(),
                  fmt_seconds(c.send_seconds).c_str(),
                  fmt_seconds(c.recv_seconds).c_str(),
                  fmt_seconds(c.collective_seconds).c_str(),
                  100.0 * c.comm_fraction(compute));
    os << line;
    os << "  sent " << fmt_bytes(c.bytes_sent) << " in " << c.send_count
       << " msgs, received " << fmt_bytes(c.bytes_received) << " in "
       << c.recv_count << " msgs, " << c.collective_count
       << " collectives\n";
    os << "  message sizes (sent):\n";
    for (int b = 0; b < kMsgSizeBuckets; ++b) {
      const auto n = c.sent_size_hist[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      std::snprintf(line, sizeof(line), "    <= %-9s %llu\n",
                    b == kMsgSizeBuckets - 1
                        ? "inf"
                        : fmt_bytes(msg_size_bucket_bound(b)).c_str(),
                    static_cast<unsigned long long>(n));
      os << line;
    }
  }

  if (!r.thread_busy_seconds.empty() && r.thread_span_seconds > 0.0) {
    os << "\n  threads (busy fraction of " << r.thread_busy_seconds.size()
       << "-way parallel regions, span "
       << fmt_seconds(r.thread_span_seconds) << "):\n";
    for (std::size_t t = 0; t < r.thread_busy_seconds.size(); ++t) {
      char line[128];
      std::snprintf(line, sizeof(line), "    thread %-3zu %-11s %5.1f %%\n",
                    t, fmt_seconds(r.thread_busy_seconds[t]).c_str(),
                    100.0 * r.thread_busy_seconds[t] /
                        r.thread_span_seconds);
      os << line;
    }
  }
}

// ---- chrome trace writer ----

void write_chrome_trace(std::ostream& os,
                        const std::vector<RankTimeline>& ranks) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const RankTimeline& rt : ranks) {
    // Metadata: name the process after the rank.
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << rt.rank
       << ",\"tid\":0,\"args\":{\"name\":\"rank " << rt.rank << "\"}}";

    std::vector<TimelineEvent> sorted = rt.events;
    std::sort(sorted.begin(), sorted.end(),
              [](const TimelineEvent& a, const TimelineEvent& b) {
                return a.start_s < b.start_s;
              });
    for (const TimelineEvent& ev : sorted) {
      const Phase ph = static_cast<Phase>(ev.phase);
      // Nested phases go on their own tid row so slices never overlap
      // within a row (Perfetto renders overlapping same-tid slices badly).
      const int tid = phase_is_nested(ph) ? 1 : 0;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",{\"name\":\"%s\",\"cat\":\"solver\",\"ph\":\"X\","
                    "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                    "\"args\":{\"step\":%d}}",
                    phase_name(ph), rt.rank, tid, ev.start_s * 1e6,
                    ev.dur_s * 1e6, ev.step);
      os << buf;
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace sfg::metrics

#pragma once

/// \file metrics.hpp
/// sfg_metrics (ISSUE 3): the always-on, low-overhead observability layer
/// in the spirit of IPM (the paper built everything in §5 — the fitted
/// communication model of Fig. 6, the runtime model of Fig. 7 and the
/// PSiNS 62K-core predictions — on *measured* per-rank comm/compute
/// fractions collected by an always-on profiler).
///
/// Three pieces:
///  1. a registry of named monotonic counters, gauges and fixed-bucket
///     histograms (for ad-hoc instrumentation anywhere in the stack),
///  2. per-rank, per-step PHASE TIMERS for the solver hot loop
///     (StepProfile + PhaseScope): each time step is decomposed into a
///     fixed taxonomy of disjoint phases whose durations sum to the step
///     wall time, plus nested sub-timers (attenuation) that overlap their
///     parents and are excluded from the sum invariant,
///  3. exporters: a human-readable end-of-run report (per-phase times,
///     comm fraction, message-size histogram, per-thread busy fractions —
///     directly comparable to Fig. 6 / bench_fig6_commtime) and a Chrome
///     `chrome://tracing` / Perfetto JSON timeline writer.
///
/// The same report shape can be produced from a live smpi::CommStats or
/// from a captured TraceEvent stream (summarize_comm_trace), so replayed
/// traces and real runs are read with the same tooling.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "runtime/smpi.hpp"

namespace sfg::metrics {

// ---- registry primitives ----

/// Monotonically increasing event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge (e.g. "elements per rank", "overlap fraction").
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts samples v with v <= bounds[i]
/// (the last bucket is the overflow bucket, bound = +inf implied). Bounds
/// are fixed at registration so recording is a branch-free linear scan —
/// cheap for the short bucket lists used here.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// counts.size() == upper_bounds().size() + 1 (overflow last).
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const std::vector<double>& upper_bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Name -> metric registry. Lookup happens at registration time; hot paths
/// keep the returned reference (stable: metrics are never removed).
/// Not thread-safe: one registry per rank, like smpi::Communicator.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers on first use; later calls with the same name return the
  /// existing histogram (bounds of later calls are ignored).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The SimulationConfig knob (ISSUE 3). Default: on, report-only —
/// collection is a dozen clock reads per step (<2% measured on the NEX=8
/// globe, see bench_metrics_overhead); the timeline is opt-in because it
/// allocates per-slice events.
struct MetricsConfig {
  bool enabled = true;    ///< collect phase timers / counters
  bool timeline = false;  ///< additionally keep Chrome-trace slices
  std::size_t max_timeline_events = 1u << 20;  ///< cap (~24 MB)
};

// ---- solver phase taxonomy ----

/// The per-step phase taxonomy of the Newmark hot loop. Top-level phases
/// are disjoint: their per-step durations sum (within timer resolution and
/// loop overhead) to the step wall time. `AttenuationUpdate` is NESTED
/// inside the solid-force phases (the memory-variable update runs per
/// element inside them) and is excluded from the sum invariant.
enum class Phase : int {
  NewmarkPredictor = 0,  ///< displ/veloc predictor + accel reset
  FluidForces,           ///< fluid element kernels + coupling + mass divide
  SolidForces,           ///< legacy unsplit solid element loop
  SolidBoundary,         ///< colored schedule: halo-touching batches
  SolidInterior,         ///< colored schedule: batches overlapped w/ halo
  HaloBegin,             ///< assemble_add_begin (snapshot + post)
  HaloWait,              ///< assemble_add / _end (blocking comm time)
  SourceInjection,       ///< coupling/absorbing surface terms + sources
  MassUpdate,            ///< accel *= 1/M (+ Coriolis)
  NewmarkCorrector,      ///< velocity corrector half-steps
  SeismogramRecord,      ///< receiver interpolation + append
  AttenuationUpdate,     ///< NESTED: SLS memory-variable update
  SchedulePaired,        ///< NESTED: interleaved paired/plain rounds
  ScheduleResidual,      ///< NESTED: demoted-straddler residual rounds
  LtsInterpolate,        ///< NESTED: cluster-interface time interpolation
  Count
};

inline constexpr int kNumPhases = static_cast<int>(Phase::Count);

const char* phase_name(Phase p);
/// Nested phases overlap a top-level phase and do not enter the
/// phase-sum-equals-wall-time invariant.
bool phase_is_nested(Phase p);

/// One timeline slice, Chrome-tracing style (times relative to the
/// profile's epoch, in seconds).
struct TimelineEvent {
  std::int32_t phase = 0;  ///< static_cast<int>(Phase)
  std::int32_t step = 0;   ///< time-step index the slice belongs to
  double start_s = 0.0;
  double dur_s = 0.0;
};

/// Per-rank, per-step phase accounting. `record` accumulates a duration
/// into the current step; `end_step` closes the step with its measured
/// wall time. Totals, segment counts and (optionally) begin/end timeline
/// events are kept; per-step last breakdown supports the sum invariant
/// test without storing full history.
class StepProfile {
 public:
  StepProfile() : StepProfile(true, false) {}
  StepProfile(bool enabled, bool timeline,
              std::size_t max_timeline_events = 1u << 20);

  bool enabled() const { return enabled_; }
  bool timeline_enabled() const { return timeline_; }

  /// Seconds since this profile's epoch (construction).
  double now() const { return epoch_.seconds(); }

  void begin_step();
  /// Record `dur_s` of `phase` that began at `start_s` (profile time).
  void record(Phase phase, double start_s, double dur_s);
  void end_step(double step_wall_seconds);

  int steps() const { return steps_; }
  double total_wall_seconds() const { return total_wall_; }
  const std::array<double, kNumPhases>& phase_seconds() const {
    return totals_;
  }
  const std::array<std::uint64_t, kNumPhases>& phase_counts() const {
    return counts_;
  }
  /// Phase breakdown of the most recently completed step.
  const std::array<double, kNumPhases>& last_step_seconds() const {
    return last_step_;
  }
  double last_step_wall_seconds() const { return last_wall_; }

  /// Sum of non-nested phase seconds (the comparand of the wall-time
  /// invariant).
  double accounted_seconds() const;

  const std::vector<TimelineEvent>& timeline() const { return events_; }

  /// Restart support: overwrite the cumulative counters (checkpoint
  /// restore makes a resumed run carry the full history of the run it
  /// continues — see solver/checkpoint.cpp).
  void restore_counts(int steps,
                      const std::array<std::uint64_t, kNumPhases>& counts,
                      const std::array<double, kNumPhases>& seconds,
                      double total_wall_seconds);

 private:
  bool enabled_;
  bool timeline_;
  std::size_t max_events_;
  WallTimer epoch_;
  int steps_ = 0;
  double total_wall_ = 0.0;
  double last_wall_ = 0.0;
  std::array<double, kNumPhases> totals_{};
  std::array<std::uint64_t, kNumPhases> counts_{};
  std::array<double, kNumPhases> current_{};
  std::array<double, kNumPhases> last_step_{};
  std::vector<TimelineEvent> events_;
};

/// RAII phase timer: no-op when `profile` is null or disabled, otherwise
/// one clock read at entry and one at exit. Not meant for per-element
/// granularity — per-step phase boundaries only (~a dozen per step).
class PhaseScope {
 public:
  PhaseScope(StepProfile* profile, Phase phase)
      : profile_(profile != nullptr && profile->enabled() ? profile
                                                          : nullptr),
        phase_(phase),
        start_(profile_ != nullptr ? profile_->now() : 0.0) {}
  ~PhaseScope() { stop(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// End the scope early (idempotent).
  void stop() {
    if (profile_ == nullptr) return;
    profile_->record(phase_, start_, profile_->now() - start_);
    profile_ = nullptr;
  }

 private:
  StepProfile* profile_;
  Phase phase_;
  double start_;
};

// ---- communication summary (IPM-style) ----

/// Shared message-size bucketing: bucket i holds messages of
/// size <= 64 << i bytes; the last bucket is unbounded. Matches
/// smpi::CommStats::kMsgSizeBuckets.
inline constexpr int kMsgSizeBuckets = smpi::CommStats::kMsgSizeBuckets;
std::uint64_t msg_size_bucket_bound(int bucket);  ///< upper bound, bytes

/// Per-rank communication summary in the shape of an IPM banner; built
/// either from live smpi::CommStats or from a captured TraceEvent stream,
/// so real runs and PSiNS-style replays print identically.
struct CommSummary {
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  double collective_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t send_count = 0;
  std::uint64_t recv_count = 0;
  std::uint64_t collective_count = 0;
  std::array<std::uint64_t, kMsgSizeBuckets> sent_size_hist{};

  double total_seconds() const {
    return send_seconds + recv_seconds + collective_seconds;
  }
  /// comm / (comm + compute); the paper's §5 metric (1.9-4.2% measured).
  double comm_fraction(double compute_seconds) const;
};

CommSummary summarize_comm(const smpi::CommStats& stats);
/// Replay integration: the same summary from a captured event trace
/// (compute time is the trace's virtual-compute segments; pass the
/// replayed per-rank comm seconds if pricing on a model machine).
CommSummary summarize_comm_trace(const std::vector<smpi::TraceEvent>& trace);

// ---- end-of-run report ----

/// Everything the human-readable end-of-run report prints for one rank.
struct RunReport {
  std::string label;       ///< e.g. "globe NEX=8"
  int rank = 0;
  int nranks = 1;
  int nex = 0;             ///< 0 = unknown / not a globe run
  int steps = 0;
  double wall_seconds = 0.0;
  std::array<double, kNumPhases> phase_seconds{};
  std::array<std::uint64_t, kNumPhases> phase_counts{};
  CommSummary comm;
  bool has_comm = false;
  std::vector<double> thread_busy_seconds;  ///< per pool thread
  double thread_span_seconds = 0.0;         ///< summed parallel-region span
};

/// Write the per-phase table, comm fraction (the Fig. 6 comparable), the
/// message-size histogram and per-thread busy fractions.
void write_report(std::ostream& os, const RunReport& report);

// ---- Chrome tracing / Perfetto timeline ----

/// One rank's timeline for the merged trace file.
struct RankTimeline {
  int rank = 0;
  std::vector<TimelineEvent> events;
};

/// Write a `chrome://tracing` / Perfetto-loadable JSON trace: one pid per
/// rank, complete ("ph":"X") events with microsecond timestamps, sorted by
/// start time within each rank. The output is a single JSON object with a
/// `traceEvents` array.
void write_chrome_trace(std::ostream& os,
                        const std::vector<RankTimeline>& ranks);

}  // namespace sfg::metrics

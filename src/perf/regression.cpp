#include "perf/regression.hpp"

#include <cmath>

#include "common/check.hpp"
#include "model/attenuation.hpp"  // solve_dense

namespace sfg {

double PowerLaw::evaluate(double x) const { return a * std::pow(x, b); }

PowerLaw fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y) {
  SFG_CHECK(x.size() == y.size() && x.size() >= 2);
  // Least squares on log y = log a + b log x.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    SFG_CHECK_MSG(x[i] > 0 && y[i] > 0, "power-law fit needs positive data");
    const double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  PowerLaw law;
  const double denom = n * sxx - sx * sx;
  SFG_CHECK_MSG(std::abs(denom) > 1e-12, "degenerate x values");
  law.b = (n * sxy - sx * sy) / denom;
  law.a = std::exp((sy - law.b * sx) / n);
  for (std::size_t i = 0; i < x.size(); ++i)
    law.max_relative_error = std::max(
        law.max_relative_error, std::abs(law.evaluate(x[i]) / y[i] - 1.0));
  return law;
}

double PowerLaw2::evaluate(double x1, double x2) const {
  return a * std::pow(x1, b1) * std::pow(x2, b2);
}

PowerLaw2 fit_power_law2(const std::vector<double>& x1,
                         const std::vector<double>& x2,
                         const std::vector<double>& y) {
  SFG_CHECK(x1.size() == y.size() && x2.size() == y.size() && y.size() >= 3);
  // Normal equations for log y = c0 + b1 log x1 + b2 log x2.
  std::vector<double> ata(9, 0.0), atb(3, 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    SFG_CHECK(x1[i] > 0 && x2[i] > 0 && y[i] > 0);
    const double row[3] = {1.0, std::log(x1[i]), std::log(x2[i])};
    const double ly = std::log(y[i]);
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c)
        ata[static_cast<std::size_t>(r * 3 + c)] += row[r] * row[c];
      atb[static_cast<std::size_t>(r)] += row[r] * ly;
    }
  }
  const std::vector<double> sol = solve_dense(std::move(ata), std::move(atb));
  PowerLaw2 law;
  law.a = std::exp(sol[0]);
  law.b1 = sol[1];
  law.b2 = sol[2];
  for (std::size_t i = 0; i < y.size(); ++i)
    law.max_relative_error =
        std::max(law.max_relative_error,
                 std::abs(law.evaluate(x1[i], x2[i]) / y[i] - 1.0));
  return law;
}

}  // namespace sfg

#pragma once

/// \file capacity.hpp
/// The paper's §5 performance models: sustained-FLOPS model, memory and
/// disk footprints, communication volume, and full run predictions for a
/// target resolution on a target machine — the workflow that told the team
/// 62K cores with 1.85 GB/core would break the 2-second barrier.

#include <cstdint>

#include "perf/machines.hpp"
#include "sphere/mesher.hpp"

namespace sfg {

/// Static cost profile of the SEM force kernel.
struct KernelProfile {
  double flops_per_element = 0.0;  ///< per element per time step
  double bytes_per_element = 0.0;  ///< streamed bytes per element per step
  double arithmetic_intensity() const {
    return flops_per_element / bytes_per_element;
  }
};

/// Analytic profile for degree ngll-1 elements (matches
/// ForceKernel::elastic_flops_per_element).
KernelProfile sem_kernel_profile(int ngll, bool attenuation);

/// Sustained GFLOPS per core for the SEM kernel on a machine. The kernel
/// is effectively memory-bandwidth bound on 2008-era Opterons (the paper
/// singles out Jaguar's "better memory bandwidth per processor" for its
/// higher flops rate); the proportionality constant is calibrated once
/// against Franklin's published 24 Tflops on 12,150 cores, capped at 45%
/// of theoretical peak.
double sustained_gflops_per_core(const MachineSpec& machine);

/// Analytic size of a global PREM run at a given NEX (validated against
/// the real mesher in tests).
struct GlobeSizeModel {
  int nex = 0;
  int radial_elements = 0;
  std::uint64_t elements = 0;       ///< spectral elements, all 6 chunks
  std::uint64_t local_points = 0;   ///< elements * ngll^3
  std::uint64_t global_points = 0;  ///< approximate distinct points
  std::uint64_t memory_bytes = 0;   ///< solver-resident memory, all ranks
  std::uint64_t legacy_disk_bytes = 0;  ///< §4.1 mesher->solver handoff
};

GlobeSizeModel estimate_globe_size(int nex, int ngll = 5);

/// Prediction of one production run (paper §6 style).
struct RunPrediction {
  const MachineSpec* machine = nullptr;
  int nex = 0;
  int nproc_xi = 0;
  int cores = 0;
  double shortest_period_s = 0.0;
  double dt_s = 0.0;
  std::uint64_t steps = 0;
  double compute_seconds = 0.0;     ///< per core
  double comm_seconds = 0.0;        ///< per core
  double wall_seconds = 0.0;
  double comm_fraction = 0.0;
  double sustained_tflops = 0.0;    ///< whole application
  double memory_tb = 0.0;
  double memory_gb_per_core = 0.0;
  double legacy_disk_tb = 0.0;
  bool fits_in_memory = false;
};

/// Predict a global run of `event_seconds` of wave propagation at NEX on
/// `nproc_xi`^2 x 6 cores of `machine`. `dt_reference` calibrates the
/// Courant step: pass the measured stable dt of a small local run at
/// `nex_reference` (dt scales like 1/NEX).
RunPrediction predict_run(const MachineSpec& machine, int nex, int nproc_xi,
                          double event_seconds, bool attenuation,
                          double dt_reference, int nex_reference);

/// Per-rank assembly-communication bytes per time step for a slice of a
/// global NEX/NPROC run (analytic; validated against real slices).
std::uint64_t predict_slice_comm_bytes_per_step(int nex, int nproc_xi,
                                                int ngll = 5);

}  // namespace sfg

#include "common/simd.hpp"

namespace sfg::simd {

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Sse: return "sse";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
    case Isa::Neon: return "neon";
  }
  return "?";
}

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Sse:
#if defined(__x86_64__) || defined(__i386__)
      // __builtin_cpu_supports folds in the OS XSAVE state checks.
      return __builtin_cpu_supports("sse4.1") != 0;
#else
      return false;
#endif
    case Isa::Avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::Avx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case Isa::Neon:
#if defined(__ARM_NEON)
      // NEON is baseline on AArch64; on 32-bit ARM the compile flag
      // already implies the target guarantees it.
      return true;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace sfg::simd

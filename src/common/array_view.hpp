#pragma once

/// \file array_view.hpp
/// Lightweight non-owning multi-dimensional views over contiguous storage.
///
/// Index order is row-major with the LAST index fastest, matching the
/// layout used throughout the solver: a field stored as [ispec][k][j][i]
/// is viewed as Span4D<T>(ptr, nspec, ngll, ngll, ngll) and addressed
/// v(ispec, k, j, i).

#include <cstddef>

#include "common/check.hpp"

namespace sfg {

template <typename T>
class Span2D {
 public:
  Span2D() = default;
  Span2D(T* data, std::size_t n0, std::size_t n1)
      : data_(data), n0_(n0), n1_(n1) {}

  T& operator()(std::size_t i, std::size_t j) const {
    SFG_ASSERT(i < n0_ && j < n1_);
    return data_[i * n1_ + j];
  }
  std::size_t extent0() const { return n0_; }
  std::size_t extent1() const { return n1_; }
  std::size_t size() const { return n0_ * n1_; }
  T* data() const { return data_; }
  T* row(std::size_t i) const {
    SFG_ASSERT(i < n0_);
    return data_ + i * n1_;
  }

 private:
  T* data_ = nullptr;
  std::size_t n0_ = 0, n1_ = 0;
};

template <typename T>
class Span3D {
 public:
  Span3D() = default;
  Span3D(T* data, std::size_t n0, std::size_t n1, std::size_t n2)
      : data_(data), n0_(n0), n1_(n1), n2_(n2) {}

  T& operator()(std::size_t i, std::size_t j, std::size_t k) const {
    SFG_ASSERT(i < n0_ && j < n1_ && k < n2_);
    return data_[(i * n1_ + j) * n2_ + k];
  }
  std::size_t extent0() const { return n0_; }
  std::size_t extent1() const { return n1_; }
  std::size_t extent2() const { return n2_; }
  std::size_t size() const { return n0_ * n1_ * n2_; }
  T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t n0_ = 0, n1_ = 0, n2_ = 0;
};

template <typename T>
class Span4D {
 public:
  Span4D() = default;
  Span4D(T* data, std::size_t n0, std::size_t n1, std::size_t n2,
         std::size_t n3)
      : data_(data), n0_(n0), n1_(n1), n2_(n2), n3_(n3) {}

  T& operator()(std::size_t i, std::size_t j, std::size_t k,
                std::size_t l) const {
    SFG_ASSERT(i < n0_ && j < n1_ && k < n2_ && l < n3_);
    return data_[((i * n1_ + j) * n2_ + k) * n3_ + l];
  }
  std::size_t extent0() const { return n0_; }
  std::size_t extent1() const { return n1_; }
  std::size_t extent2() const { return n2_; }
  std::size_t extent3() const { return n3_; }
  std::size_t size() const { return n0_ * n1_ * n2_ * n3_; }
  T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t n0_ = 0, n1_ = 0, n2_ = 0, n3_ = 0;
};

}  // namespace sfg

#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sfg {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  auto rule = [&]() {
    for (std::size_t c = 0; c < width.size(); ++c)
      os << "+" << std::string(width[c] + 2, '-');
    os << "+\n";
  };
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) emit(r);
  rule();
  return os.str();
}

void AsciiTable::print() const {
  std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_g(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string fmt_bytes(double bytes) {
  const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int s = 0;
  while (bytes >= 1024.0 && s < 5) {
    bytes /= 1024.0;
    ++s;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, suffix[s]);
  return buf;
}

}  // namespace sfg

#pragma once

/// \file aligned.hpp
/// 64-byte-aligned allocation for SIMD-friendly field storage.
///
/// Solver fields and padded element blocks (5x5x5 floats padded to 128, see
/// paper §4.3) must be aligned so that SSE loads on block boundaries are
/// aligned loads.

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace sfg {

inline constexpr std::size_t kCacheLineBytes = 64;

/// STL-compatible allocator returning 64-byte-aligned storage.
template <typename T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;

  /// Explicit rebind: the non-type Alignment parameter defeats the
  /// standard library's automatic rebind detection.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(Alignment, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Contiguous 64-byte-aligned vector; the default container for solver
/// fields, Jacobian tables, and padded kernel blocks.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace sfg

#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool for on-node parallelism inside one rank.
/// One primitive is provided: parallel_for_chunked splits an index range
/// into at most one contiguous chunk per thread and runs the chunks
/// concurrently, blocking the caller until all complete. Chunk boundaries
/// depend only on (n, num_threads), never on scheduling, so any
/// thread-count-independent work assignment stays deterministic.
///
/// The calling thread participates as thread 0; a pool of size 1 owns no
/// worker threads and runs everything inline, which keeps the
/// single-threaded solver path free of synchronization entirely.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sfg {

class ThreadPool {
 public:
  /// fn(thread, begin, end): process items [begin, end) on `thread`
  /// (0 .. num_threads-1). Each thread id runs at most one chunk per call,
  /// so `thread` can index per-thread scratch without further locking.
  using ChunkFn =
      std::function<void(int thread, std::size_t begin, std::size_t end)>;

  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return nthreads_; }

  /// Run fn over [0, n) split into ceil(n / num_threads)-sized chunks.
  /// Blocks until every chunk finished. The first exception thrown by any
  /// chunk is rethrown on the calling thread (after all chunks complete).
  /// Not reentrant: fn must not call back into the same pool.
  void parallel_for_chunked(std::size_t n, const ChunkFn& fn);

  // ---- busy/idle accounting (ISSUE 3: color-schedule imbalance) ----
  // Each thread accumulates the wall time it spends inside its chunks;
  // the caller accumulates the span of every parallel region. Idle time
  // of thread t is span - busy[t]. Reads are safe any time the pool is
  // quiescent (parallel_for_chunked synchronizes before returning).
  double thread_busy_seconds(int thread) const;
  std::vector<double> busy_seconds() const;
  /// Summed wall-clock span of all parallel_for_chunked calls.
  double span_seconds() const { return span_seconds_; }
  std::uint64_t parallel_calls() const { return calls_; }

 private:
  void worker_main(int thread);
  void run_chunk(int thread, const ChunkFn& fn, std::size_t n);

  int nthreads_;
  std::vector<std::thread> workers_;

  /// One cache line per thread so chunk-time accumulation never bounces.
  struct alignas(64) ThreadTime {
    double busy = 0.0;
  };
  std::vector<ThreadTime> thread_time_;
  double span_seconds_ = 0.0;
  std::uint64_t calls_ = 0;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped once per parallel_for call
  int remaining_ = 0;             ///< workers still running this generation
  std::size_t job_n_ = 0;
  const ChunkFn* job_fn_ = nullptr;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace sfg

#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool for on-node parallelism inside one rank.
/// Two primitives are provided:
///
///  * parallel_for_chunked splits an index range into at most one
///    contiguous chunk per thread and runs the chunks concurrently,
///    blocking the caller until all complete. Chunk boundaries depend only
///    on (n, num_threads), never on scheduling, so any
///    thread-count-independent work assignment stays deterministic.
///
///  * parallel_for_schedule consumes PRECOMPUTED work units instead of
///    naive contiguous chunks: a WorkSchedule is a sequence of rounds,
///    each round a set of index ranges whose footprints the schedule
///    builder has proven mutually disjoint (see mesh/coloring.hpp). All
///    units of one round run concurrently; rounds are separated by a
///    barrier. Which thread runs which unit never affects results, so the
///    same schedule is bit-identical at any thread count.
///
/// The calling thread participates as thread 0; a pool of size 1 owns no
/// worker threads and runs everything inline, which keeps the
/// single-threaded solver path free of synchronization entirely.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sfg {

class ThreadPool {
 public:
  /// fn(thread, begin, end): process items [begin, end) on `thread`
  /// (0 .. num_threads-1). Each thread id runs at most one chunk per call,
  /// so `thread` can index per-thread scratch without further locking.
  using ChunkFn =
      std::function<void(int thread, std::size_t begin, std::size_t end)>;

  /// One precomputed work unit: a half-open index range into an array the
  /// caller owns (for the solver: a slice of a flattened element list).
  struct WorkUnit {
    std::size_t begin = 0, end = 0;
    std::size_t size() const { return end - begin; }
  };
  /// One round of a schedule: units that may run CONCURRENTLY. The
  /// schedule builder is responsible for proving their footprints
  /// disjoint. `tag` is opaque to the pool (the solver uses it to
  /// distinguish paired / residual / plain rounds for phase timing).
  struct WorkRound {
    std::vector<WorkUnit> units;
    int tag = 0;
  };
  /// A full schedule: rounds execute in order with a barrier in between.
  struct WorkSchedule {
    std::vector<WorkRound> rounds;
    /// Total items covered by all units of all rounds.
    std::size_t total_items() const;
  };
  /// Called on the calling thread after each round completes, with the
  /// round index, its tag and its wall-clock duration.
  using RoundObserver =
      std::function<void(int round, int tag, double seconds)>;

  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return nthreads_; }

  /// Run fn over [0, n) split into ceil(n / num_threads)-sized chunks.
  /// Blocks until every chunk finished. The first exception thrown by any
  /// chunk is rethrown on the calling thread (after all chunks complete).
  /// Not reentrant: fn must not call back into the same pool.
  ///
  /// A call with n == 0 is a documented no-op: fn is never invoked, no
  /// workers are woken, and neither the per-thread busy accounting nor
  /// span_seconds()/parallel_calls() are touched.
  void parallel_for_chunked(std::size_t n, const ChunkFn& fn);

  /// Execute a precomputed schedule: for each round, run fn once per
  /// non-empty unit (fn(thread, unit.begin, unit.end)), all units of the
  /// round concurrently, then barrier before the next round. Rounds whose
  /// units are all empty are skipped entirely (observer not called). Each
  /// executed round counts as one parallel region in the busy/span
  /// accounting; exceptions propagate as in parallel_for_chunked, aborting
  /// before later rounds run.
  void parallel_for_schedule(const WorkSchedule& schedule, const ChunkFn& fn,
                             const RoundObserver& observer = nullptr);

  // ---- busy/idle accounting (ISSUE 3: color-schedule imbalance) ----
  // Each thread accumulates the wall time it spends inside its chunks;
  // the caller accumulates the span of every parallel region. Idle time
  // of thread t is span - busy[t]. Reads are safe any time the pool is
  // quiescent (parallel_for_chunked synchronizes before returning).
  double thread_busy_seconds(int thread) const;
  std::vector<double> busy_seconds() const;
  /// Summed wall-clock span of all parallel_for_chunked calls.
  double span_seconds() const { return span_seconds_; }
  std::uint64_t parallel_calls() const { return calls_; }

 private:
  void worker_main(int thread);
  void run_chunk(int thread, const ChunkFn& fn, std::size_t n);

  int nthreads_;
  std::vector<std::thread> workers_;

  /// One cache line per thread so chunk-time accumulation never bounces.
  struct alignas(64) ThreadTime {
    double busy = 0.0;
  };
  std::vector<ThreadTime> thread_time_;
  double span_seconds_ = 0.0;
  std::uint64_t calls_ = 0;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped once per parallel_for call
  int remaining_ = 0;             ///< workers still running this generation
  std::size_t job_n_ = 0;
  const ChunkFn* job_fn_ = nullptr;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace sfg

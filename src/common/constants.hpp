#pragma once

/// \file constants.hpp
/// Physical constants and the SPECFEM3D_GLOBE resolution relations used
/// throughout the paper (Carrington et al., SC 2008).

#include <cmath>

#include "common/check.hpp"

namespace sfg {

/// Earth radius in meters (PREM).
inline constexpr double kEarthRadiusM = 6371000.0;
/// Radius of the core-mantle boundary (CMB), meters (PREM).
inline constexpr double kCmbRadiusM = 3480000.0;
/// Radius of the inner-core boundary (ICB), meters (PREM).
inline constexpr double kIcbRadiusM = 1221500.0;
/// Moho discontinuity radius, meters (PREM: 24.4 km depth).
inline constexpr double kMohoRadiusM = 6346600.0;
/// The 670 km discontinuity radius, meters.
inline constexpr double k670RadiusM = 5701000.0;
/// The 400 km discontinuity radius, meters.
inline constexpr double k400RadiusM = 5971000.0;

inline constexpr double kPi = 3.14159265358979323846;
/// Earth's sidereal rotation rate, rad/s.
inline constexpr double kEarthOmega = 7.292115e-5;
/// Gravitational constant, m^3 kg^-1 s^-2.
inline constexpr double kGravityG = 6.67430e-11;

/// Number of cubed-sphere chunks covering the globe.
inline constexpr int kNumChunks = 6;

/// Grid points (GLL) per shortest wavelength required for accuracy
/// (paper §3: "at least 5 grid points per shortest seismic wavelength").
inline constexpr double kPointsPerWavelength = 5.0;

/// Paper (Figure 5 caption): Resolution = 256 * 17 / Wave Period, i.e.
/// shortest accurately-resolved period in seconds for a given NEX_XI.
/// Checks from the paper text: NEX 96 -> 45.3 s, NEX 640 -> 6.8 s,
/// Jaguar run NEX ~ 2240 -> 1.94 s, Ranger run NEX ~ 2368 -> 1.84 s.
inline double shortest_period_seconds(int nex_xi) {
  SFG_CHECK(nex_xi > 0);
  return 256.0 * 17.0 / static_cast<double>(nex_xi);
}

/// Inverse of shortest_period_seconds: smallest NEX_XI resolving `period_s`.
inline int nex_for_period(double period_s) {
  SFG_CHECK(period_s > 0.0);
  return static_cast<int>(std::ceil(256.0 * 17.0 / period_s));
}

/// Total MPI ranks for a global (6-chunk) run: 6 * NPROC_XI^2.
/// Checks from the paper: NPROC 45 -> 12150 (Franklin), 40 -> 9600,
/// 46 -> 12696, 54 -> 17496 (Kraken), 70 -> 29400 (Jaguar),
/// 73 -> 31974 (Ranger), 102 -> 62424 (the 62K Ranger target).
inline int cores_for_nproc_xi(int nproc_xi) {
  SFG_CHECK(nproc_xi > 0);
  return kNumChunks * nproc_xi * nproc_xi;
}

}  // namespace sfg

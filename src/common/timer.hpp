#pragma once

/// \file timer.hpp
/// Monotonic wall-clock timers and a cumulative stopwatch used by the
/// IPM-style instrumentation layer (paper §5) and the benchmark harness.

#include <chrono>

namespace sfg {

/// Monotonic wall-clock timer. Construction starts it.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating stopwatch: many start/stop intervals summed, as needed for
/// per-callsite communication-time accounting.
class Stopwatch {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += t_.seconds();
      ++intervals_;
      running_ = false;
    }
  }
  double total_seconds() const { return total_; }
  long intervals() const { return intervals_; }
  void clear() { total_ = 0.0; intervals_ = 0; running_ = false; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  long intervals_ = 0;
  bool running_ = false;
};

}  // namespace sfg

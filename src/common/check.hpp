#pragma once

/// \file check.hpp
/// Error-handling primitives used across the library.
///
/// SFG_CHECK is always on and reports precondition/contract violations with
/// file/line context; SFG_ASSERT compiles out in NDEBUG builds and is meant
/// for hot inner loops.

#include <sstream>
#include <stdexcept>
#include <string>

namespace sfg {

/// Exception thrown by SFG_CHECK on contract violation. All expected
/// failure modes inside the library surface as this type at API boundaries.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "SFG_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace sfg

#define SFG_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) ::sfg::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define SFG_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream sfg_os_;                                     \
      sfg_os_ << msg;                                                 \
      ::sfg::detail::check_failed(#cond, __FILE__, __LINE__, sfg_os_.str()); \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define SFG_ASSERT(cond) ((void)0)
#else
#define SFG_ASSERT(cond) SFG_CHECK(cond)
#endif

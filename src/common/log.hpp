#pragma once

/// \file log.hpp
/// Minimal leveled logging. Default level is Warn so that library code is
/// quiet inside tests; benches and examples raise it to Info.

#include <sstream>
#include <string>

namespace sfg {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace sfg

#define SFG_LOG(level, expr)                               \
  do {                                                     \
    if (static_cast<int>(level) >=                         \
        static_cast<int>(::sfg::log_level())) {            \
      std::ostringstream sfg_log_os_;                      \
      sfg_log_os_ << expr;                                 \
      ::sfg::detail::log_emit(level, sfg_log_os_.str());   \
    }                                                      \
  } while (0)

#define SFG_DEBUG(expr) SFG_LOG(::sfg::LogLevel::Debug, expr)
#define SFG_INFO(expr) SFG_LOG(::sfg::LogLevel::Info, expr)
#define SFG_WARN(expr) SFG_LOG(::sfg::LogLevel::Warn, expr)
#define SFG_ERROR(expr) SFG_LOG(::sfg::LogLevel::Error, expr)

#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace sfg {

ThreadPool::ThreadPool(int num_threads) : nthreads_(num_threads) {
  SFG_CHECK_MSG(num_threads >= 1, "thread pool needs at least one thread");
  thread_time_.resize(static_cast<std::size_t>(num_threads));
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t)
    workers_.emplace_back([this, t] { worker_main(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(int thread, const ChunkFn& fn, std::size_t n) {
  const std::size_t chunk =
      (n + static_cast<std::size_t>(nthreads_) - 1) /
      static_cast<std::size_t>(nthreads_);
  const std::size_t begin =
      std::min(n, static_cast<std::size_t>(thread) * chunk);
  const std::size_t end = std::min(n, begin + chunk);
  if (begin < end) {
    // Each thread writes only its own padded slot; the completion
    // handshake in parallel_for_chunked publishes it to the caller.
    WallTimer t;
    fn(thread, begin, end);
    thread_time_[static_cast<std::size_t>(thread)].busy += t.seconds();
  }
}

double ThreadPool::thread_busy_seconds(int thread) const {
  SFG_CHECK(thread >= 0 && thread < nthreads_);
  return thread_time_[static_cast<std::size_t>(thread)].busy;
}

std::vector<double> ThreadPool::busy_seconds() const {
  std::vector<double> out(static_cast<std::size_t>(nthreads_));
  for (int t = 0; t < nthreads_; ++t)
    out[static_cast<std::size_t>(t)] =
        thread_time_[static_cast<std::size_t>(t)].busy;
  return out;
}

void ThreadPool::worker_main(int thread) {
  std::uint64_t seen = 0;
  for (;;) {
    const ChunkFn* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_fn_;
      n = job_n_;
    }
    try {
      run_chunk(thread, *fn, n);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

std::size_t ThreadPool::WorkSchedule::total_items() const {
  std::size_t n = 0;
  for (const WorkRound& r : rounds)
    for (const WorkUnit& u : r.units) n += u.size();
  return n;
}

void ThreadPool::parallel_for_schedule(const WorkSchedule& schedule,
                                       const ChunkFn& fn,
                                       const RoundObserver& observer) {
  for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
    const WorkRound& round = schedule.rounds[r];
    std::size_t nonempty = 0;
    for (const WorkUnit& u : round.units)
      if (u.begin < u.end) ++nonempty;
    if (nonempty == 0) continue;
    WallTimer t_round;
    // Dispatch over unit indices: each thread executes a contiguous run
    // of units. Any unit-to-thread mapping gives identical results —
    // units of one round have disjoint footprints by construction.
    parallel_for_chunked(
        round.units.size(), [&](int thread, std::size_t ub, std::size_t ue) {
          for (std::size_t u = ub; u < ue; ++u) {
            const WorkUnit& unit = round.units[u];
            if (unit.begin < unit.end) fn(thread, unit.begin, unit.end);
          }
        });
    if (observer)
      observer(static_cast<int>(r), round.tag, t_round.seconds());
  }
}

void ThreadPool::parallel_for_chunked(std::size_t n, const ChunkFn& fn) {
  // Documented no-op: no fn call, no busy/span/call accounting.
  if (n == 0) return;
  WallTimer span;
  if (nthreads_ == 1) {
    fn(0, 0, n);
    thread_time_[0].busy += span.seconds();
    span_seconds_ += span.seconds();
    ++calls_;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SFG_CHECK_MSG(job_fn_ == nullptr,
                  "parallel_for_chunked is not reentrant");
    job_fn_ = &fn;
    job_n_ = n;
    remaining_ = nthreads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  std::exception_ptr my_error;
  try {
    run_chunk(0, fn, n);
  } catch (...) {
    my_error = std::current_exception();
  }

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_fn_ = nullptr;
    error = first_error_ ? first_error_ : my_error;
    first_error_ = nullptr;
  }
  span_seconds_ += span.seconds();
  ++calls_;
  if (error) std::rethrow_exception(error);
}

}  // namespace sfg

#pragma once

/// \file simd.hpp
/// Portable fixed-width float vector layer for the batched force kernels
/// (ISSUE 6). Each backend is a small struct of static operations over an
/// opaque register type:
///
///   V::width                     lanes per register
///   V::reg                       the register type
///   V::load(p) / V::store(p, r)  unaligned contiguous load / store
///   V::set1(x) / V::zero()       broadcast / all-zero
///   V::add / V::sub / V::mul     lanewise arithmetic
///   V::madd(a, b, c)             a * b + c, DELIBERATELY UNFUSED
///
/// madd is a separate multiply and add in every backend — never an FMA
/// instruction — and the translation unit instantiating the batched
/// kernels is compiled with -ffp-contract=off so the scalar backend cannot
/// be contracted either. That is what makes the batched kernel's output
/// BIT-IDENTICAL across scalar/SSE/AVX2/AVX-512 backends (the lane-order
/// bit-identity contract, see docs/kernels.md). Backends trade a little
/// peak FLOPS for that property; the kernels are bandwidth-bound (paper
/// §4.3), so the cost is noise.
///
/// Backends compile only where their ISA is available at compile time
/// (__SSE2__ / __AVX2__ / __AVX512F__ / __ARM_NEON); whether the CPU can
/// execute them is a separate RUNTIME question answered by cpu_supports().
/// The kernels layer combines both into the widest usable backend
/// (best_batched_isa in kernels/force_kernel.hpp).

#if defined(__SSE2__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace sfg::simd {

/// Instruction-set tiers, narrowest to widest. Scalar is always available.
enum class Isa { Scalar, Sse, Avx2, Avx512, Neon };

const char* isa_name(Isa isa);

/// Vector width (float lanes) of an ISA tier.
constexpr int isa_width(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return 4;  // batched scalar packs 4 lanes by default
    case Isa::Sse: return 4;
    case Isa::Avx2: return 8;
    case Isa::Avx512: return 16;
    case Isa::Neon: return 4;
  }
  return 1;
}

/// Runtime CPU-feature test (cpuid / platform macros). True when the
/// HARDWARE can execute the tier — independent of whether this binary
/// compiled a backend for it.
bool cpu_supports(Isa isa);

/// Scalar reference backend with a compile-time lane count. With
/// -ffp-contract=off it produces bit-identical results to the SIMD
/// backends of the same width — the property the batched kernel tests pin.
template <int W>
struct ScalarVec {
  static constexpr int width = W;
  struct reg {
    float v[W];
  };
  static reg load(const float* p) {
    reg r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(float* p, reg r) {
    for (int i = 0; i < W; ++i) p[i] = r.v[i];
  }
  static reg set1(float x) {
    reg r;
    for (int i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  static reg zero() { return set1(0.0f); }
  static reg add(reg a, reg b) {
    reg r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static reg sub(reg a, reg b) {
    reg r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  static reg mul(reg a, reg b) {
    reg r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  static reg div(reg a, reg b) {
    reg r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] / b.v[i];
    return r;
  }
  static reg madd(reg a, reg b, reg c) { return add(mul(a, b), c); }
};

#if defined(__SSE2__)
struct SseVec {
  static constexpr int width = 4;
  using reg = __m128;
  static reg load(const float* p) { return _mm_loadu_ps(p); }
  static void store(float* p, reg r) { _mm_storeu_ps(p, r); }
  static reg set1(float x) { return _mm_set1_ps(x); }
  static reg zero() { return _mm_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm_div_ps(a, b); }
  static reg madd(reg a, reg b, reg c) {
    return _mm_add_ps(_mm_mul_ps(a, b), c);  // unfused on purpose
  }
};
#endif

#if defined(__AVX2__)
struct Avx2Vec {
  static constexpr int width = 8;
  using reg = __m256;
  static reg load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, reg r) { _mm256_storeu_ps(p, r); }
  static reg set1(float x) { return _mm256_set1_ps(x); }
  static reg zero() { return _mm256_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm256_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm256_div_ps(a, b); }
  static reg madd(reg a, reg b, reg c) {
    return _mm256_add_ps(_mm256_mul_ps(a, b), c);  // unfused on purpose
  }
};
#endif

#if defined(__AVX512F__)
struct Avx512Vec {
  static constexpr int width = 16;
  using reg = __m512;
  static reg load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, reg r) { _mm512_storeu_ps(p, r); }
  static reg set1(float x) { return _mm512_set1_ps(x); }
  static reg zero() { return _mm512_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm512_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm512_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm512_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm512_div_ps(a, b); }
  static reg madd(reg a, reg b, reg c) {
    return _mm512_add_ps(_mm512_mul_ps(a, b), c);  // unfused on purpose
  }
};
#endif

#if defined(__ARM_NEON)
struct NeonVec {
  static constexpr int width = 4;
  using reg = float32x4_t;
  static reg load(const float* p) { return vld1q_f32(p); }
  static void store(float* p, reg r) { vst1q_f32(p, r); }
  static reg set1(float x) { return vdupq_n_f32(x); }
  static reg zero() { return vdupq_n_f32(0.0f); }
  static reg add(reg a, reg b) { return vaddq_f32(a, b); }
  static reg sub(reg a, reg b) { return vsubq_f32(a, b); }
  static reg mul(reg a, reg b) { return vmulq_f32(a, b); }
  static reg div(reg a, reg b) { return vdivq_f32(a, b); }
  static reg madd(reg a, reg b, reg c) {
    // vmlaq may fuse on some cores; explicit mul + add keeps the
    // bit-identity contract.
    return vaddq_f32(vmulq_f32(a, b), c);
  }
};
#endif

}  // namespace sfg::simd

#pragma once

/// \file table.hpp
/// ASCII table printer used by the benchmark harness to print
/// "paper value vs reproduced value" rows for every figure/table.

#include <string>
#include <vector>

namespace sfg {

/// Column-aligned ASCII table with a title, header row, and data rows.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Render the table to a string (with trailing newline).
  std::string render() const;

  /// Render and write to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with %.*g style, trimmed. Convenience for table cells.
std::string fmt_g(double value, int precision = 4);

/// Format bytes with an IEC suffix (KiB/MiB/GiB/TiB).
std::string fmt_bytes(double bytes);

}  // namespace sfg

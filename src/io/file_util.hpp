#pragma once

/// \file file_util.hpp
/// Durable file-write primitives shared by every sfg_io writer (ISSUE 8).
///
/// The write discipline every on-disk artifact follows:
///
///   1. write the full image to a UNIQUE temporary name next to the target
///      (`<path>.tmp.<pid>.<seq>` — two concurrent writers of the same
///      path never collide, and a crashed writer's litter is identifiable),
///   2. fsync the temporary file (data must be on stable storage BEFORE
///      the rename publishes the name — otherwise a crash can leave a
///      valid-looking path with torn contents),
///   3. rename over the target (atomic on POSIX),
///   4. fsync the containing directory (the rename itself is metadata the
///      directory must persist).
///
/// Any failure removes the temporary file before throwing, so no `.tmp`
/// litter survives for a later glob to pick up.

#include <cstddef>
#include <string>

namespace sfg::io {

/// A unique temporary name next to `path`: `<path>.tmp.<pid>.<seq>` with
/// a process-wide atomic sequence number.
std::string unique_tmp_path(const std::string& path);

/// Write `bytes` of `data` to `path` with the full durability protocol
/// above. Throws sfg::CheckError on any failure (after unlinking the
/// temporary file).
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t bytes);

/// fsync an open descriptor; throws CheckError naming `what` on failure.
void fsync_fd(int fd, const std::string& what);

/// fsync the directory containing `path` (persists renames/creates of
/// entries inside it). Throws CheckError on failure.
void fsync_parent_dir(const std::string& path);

}  // namespace sfg::io

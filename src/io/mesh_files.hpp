#pragma once

/// \file mesh_files.hpp
/// The legacy mesher -> solver file handoff of SPECFEM3D_GLOBE v4.0
/// (paper §4.1): the stable version wrote "up to 51 files per core" that
/// the solver then read back — over 3.2 million files at 62K cores, and
/// 14-108 TB of traffic at the target resolutions (Figure 5). The merged
/// application passes the same data in memory.
///
/// This module reproduces the legacy path faithfully (one binary file per
/// array per rank, 51 files including parameters and boundary data) so the
/// Figure 5 disk-space study and the §4.1 merged-vs-file benchmark run
/// against real I/O.

#include <cstdint>
#include <string>

#include "sphere/mesher.hpp"

namespace sfg::io {
class Container;
}

namespace sfg {

/// Number of files the legacy writer produces per rank.
inline constexpr int kLegacyFilesPerRank = 51;

/// Write a slice in the legacy multi-file format under
/// `dir/proc<rank>_*.bin`. Returns the total bytes written.
std::uint64_t write_legacy_mesh_files(const std::string& dir, int rank,
                                      const GlobeSlice& slice);

/// Read a slice back from the legacy files. Jacobian tables and materials
/// are read, not recomputed (as the solver did). The GllBasis is needed
/// only for sanity checks.
GlobeSlice read_legacy_mesh_files(const std::string& dir, int rank);

/// Write the same 51 arrays as chunks of one sfg_io container (ISSUE 8).
/// Chunk names are the legacy file names (`proc<rank>_<name>.bin`) and
/// payloads the exact file bytes, so `sfg_ioconv unpack` reproduces the
/// legacy layout bit for bit. The caller commits the container. Returns
/// the payload bytes appended.
std::uint64_t write_mesh_container(io::Container& out, int rank,
                                   const GlobeSlice& slice);

/// Read a slice back from container chunks written by write_mesh_container
/// (or packed from legacy files by `sfg_ioconv pack`).
GlobeSlice read_mesh_container(const io::Container& in, int rank);

/// Total size in bytes of all regular files under `dir` (the measured
/// quantity of Figure 5).
std::uint64_t directory_bytes(const std::string& dir);

/// Number of regular files under `dir`.
int directory_file_count(const std::string& dir);

/// Delete the legacy files of one rank (cleanup between runs).
void remove_legacy_mesh_files(const std::string& dir, int rank);

}  // namespace sfg

#include "io/mesh_files.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/check.hpp"
#include "io/container.hpp"

namespace sfg {

namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x53464d46;  // "SFMF"
constexpr std::size_t kArrayHeaderBytes = 2 * sizeof(std::uint64_t);

std::string array_name(int rank, const char* name) {
  char buf[576];
  std::snprintf(buf, sizeof(buf), "proc%06d_%s.bin", rank, name);
  return buf;
}

/// Where one serialized array goes: a legacy per-rank file or a container
/// chunk. The blob handed to put() is the complete legacy file image
/// ([magic, count] header + raw values), so both backends store identical
/// bytes and sfg_ioconv round-trips are bit-exact.
class ArraySink {
 public:
  virtual ~ArraySink() = default;
  virtual void put(const std::string& name, const std::byte* blob,
                   std::size_t bytes) = 0;
};

class DirSink final : public ArraySink {
 public:
  explicit DirSink(std::string dir) : dir_(std::move(dir)) {}
  void put(const std::string& name, const std::byte* blob,
           std::size_t bytes) override {
    const std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    SFG_CHECK_MSG(out.good(), "cannot open " << path);
    out.write(reinterpret_cast<const char*>(blob),
              static_cast<std::streamsize>(bytes));
    SFG_CHECK_MSG(out.good(), "write to " << path << " failed");
  }

 private:
  std::string dir_;
};

class ContainerSink final : public ArraySink {
 public:
  explicit ContainerSink(io::Container& c) : c_(c) {}
  void put(const std::string& name, const std::byte* blob,
           std::size_t bytes) override {
    c_.append(name, blob, bytes);
  }

 private:
  io::Container& c_;
};

/// Where serialized arrays come from; get() returns the whole blob so the
/// reader can bounds-check the declared count against the actual size.
class ArraySrc {
 public:
  virtual ~ArraySrc() = default;
  virtual std::vector<std::byte> get(const std::string& name) const = 0;
};

class DirSrc final : public ArraySrc {
 public:
  explicit DirSrc(std::string dir) : dir_(std::move(dir)) {}
  std::vector<std::byte> get(const std::string& name) const override {
    const std::string path = dir_ + "/" + name;
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    SFG_CHECK_MSG(in.good(), "cannot open " << path);
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::byte> blob(static_cast<std::size_t>(size));
    if (size > 0) in.read(reinterpret_cast<char*>(blob.data()), size);
    SFG_CHECK_MSG(in.good(), "cannot read " << path);
    return blob;
  }

 private:
  std::string dir_;
};

class ContainerSrc final : public ArraySrc {
 public:
  explicit ContainerSrc(const io::Container& c) : c_(c) {}
  std::vector<std::byte> get(const std::string& name) const override {
    return c_.read(name);  // CRC-verified
  }

 private:
  const io::Container& c_;
};

template <typename T>
std::uint64_t write_array(ArraySink& sink, int rank, const char* name,
                          const T* data, std::uint64_t count) {
  std::vector<std::byte> blob(kArrayHeaderBytes +
                              static_cast<std::size_t>(count) * sizeof(T));
  const std::uint64_t header[2] = {kMagic, count};
  std::memcpy(blob.data(), header, sizeof(header));
  if (count > 0)
    std::memcpy(blob.data() + kArrayHeaderBytes, data,
                static_cast<std::size_t>(count) * sizeof(T));
  sink.put(array_name(rank, name), blob.data(), blob.size());
  return blob.size();
}

template <typename T>
std::vector<T> read_array(const ArraySrc& src, int rank, const char* name) {
  const std::string file = array_name(rank, name);
  const std::vector<std::byte> blob = src.get(file);
  SFG_CHECK_MSG(blob.size() >= kArrayHeaderBytes,
                "mesh array '" << file << "' is truncated: " << blob.size()
                               << " bytes, header alone needs "
                               << kArrayHeaderBytes);
  std::uint64_t header[2];
  std::memcpy(header, blob.data(), sizeof(header));
  SFG_CHECK_MSG(header[0] == kMagic, "bad magic in " << file);
  const std::uint64_t count = header[1];
  const std::size_t avail = blob.size() - kArrayHeaderBytes;
  // Bound first (guards the multiplication), then demand an exact match so
  // a short write and a long one both fail loudly.
  SFG_CHECK_MSG(count <= avail / sizeof(T),
                "mesh array '" << file << "' declares " << count
                               << " values of " << sizeof(T)
                               << " bytes but only " << avail
                               << " payload bytes follow the header "
                                  "(truncated file)");
  SFG_CHECK_MSG(count * sizeof(T) == avail,
                "mesh array '" << file << "' has " << avail
                               << " payload bytes, expected exactly "
                               << count * sizeof(T));
  std::vector<T> data(static_cast<std::size_t>(count));
  if (count > 0)
    std::memcpy(data.data(), blob.data() + kArrayHeaderBytes,
                static_cast<std::size_t>(count) * sizeof(T));
  return data;
}

}  // namespace

namespace {

/// The 51-array mesh handoff, serialized through whichever backend `sink`
/// is (legacy per-rank files or container chunks — identical bytes).
std::uint64_t write_mesh_arrays(ArraySink& sink, int rank,
                                const GlobeSlice& slice) {
  const HexMesh& m = slice.mesh;
  const MaterialFields& mat = slice.materials;
  std::uint64_t bytes = 0;

  // 1: scalar parameters
  const std::int64_t params[8] = {
      m.ngll,
      m.nspec,
      m.nglob,
      static_cast<std::int64_t>(slice.layers.size()),
      static_cast<std::int64_t>(slice.boundary_keys.size()),
      static_cast<std::int64_t>(slice.absorbing_faces.size()),
      slice.stats.radial_elements,
      0};
  bytes += write_array(sink, rank, "parameters", params, 8);

  // 2-4: coordinates
  bytes += write_array(sink, rank, "xstore", m.xstore.data(),
                       m.num_local_points());
  bytes += write_array(sink, rank, "ystore", m.ystore.data(),
                       m.num_local_points());
  bytes += write_array(sink, rank, "zstore", m.zstore.data(),
                       m.num_local_points());
  // 5-14: inverse-mapping tables
  bytes += write_array(sink, rank, "xix", m.xix.data(), m.num_local_points());
  bytes += write_array(sink, rank, "xiy", m.xiy.data(), m.num_local_points());
  bytes += write_array(sink, rank, "xiz", m.xiz.data(), m.num_local_points());
  bytes += write_array(sink, rank, "etax", m.etax.data(), m.num_local_points());
  bytes += write_array(sink, rank, "etay", m.etay.data(), m.num_local_points());
  bytes += write_array(sink, rank, "etaz", m.etaz.data(), m.num_local_points());
  bytes += write_array(sink, rank, "gammax", m.gammax.data(),
                       m.num_local_points());
  bytes += write_array(sink, rank, "gammay", m.gammay.data(),
                       m.num_local_points());
  bytes += write_array(sink, rank, "gammaz", m.gammaz.data(),
                       m.num_local_points());
  bytes += write_array(sink, rank, "jacobian", m.jacobian.data(),
                       m.num_local_points());
  // 15: ibool
  bytes += write_array(sink, rank, "ibool", m.ibool.data(), m.ibool.size());
  // 16-21: materials
  bytes += write_array(sink, rank, "rho", mat.rho.data(), mat.rho.size());
  bytes += write_array(sink, rank, "kappav", mat.kappav.data(),
                       mat.kappav.size());
  bytes += write_array(sink, rank, "muv", mat.muv.data(), mat.muv.size());
  bytes += write_array(sink, rank, "vp", mat.vp.data(), mat.vp.size());
  bytes += write_array(sink, rank, "vs", mat.vs.data(), mat.vs.size());
  bytes += write_array(sink, rank, "qmu", mat.q_mu.data(), mat.q_mu.size());
  // 22: fluid flags
  std::vector<std::uint8_t> fluid(mat.element_is_fluid.size());
  for (std::size_t e = 0; e < fluid.size(); ++e)
    fluid[e] = mat.element_is_fluid[e] ? 1 : 0;
  bytes += write_array(sink, rank, "idoubling", fluid.data(), fluid.size());
  // 23: radial layers
  std::vector<double> lay;
  for (const auto& l : slice.layers) {
    lay.push_back(l.r_bot);
    lay.push_back(l.r_top);
    lay.push_back(static_cast<double>(l.n_elem));
    lay.push_back(l.fluid ? 1.0 : 0.0);
  }
  bytes += write_array(sink, rank, "layers", lay.data(), lay.size());
  // 24-25: MPI interface candidates
  bytes += write_array(sink, rank, "iboolfaces_keys",
                       slice.boundary_keys.data(),
                       slice.boundary_keys.size());
  bytes += write_array(sink, rank, "iboolfaces_points",
                       slice.boundary_points.data(),
                       slice.boundary_points.size());
  // 26: absorbing faces
  std::vector<std::int32_t> absf;
  for (const auto& ef : slice.absorbing_faces) {
    absf.push_back(ef.ispec);
    absf.push_back(ef.face);
  }
  bytes += write_array(sink, rank, "abs_boundary", absf.data(), absf.size());

  // 27-51: the remaining legacy per-rank files (2-D boundary jacobians,
  // normals and element lists per domain face, coupling surfaces, MPI
  // buffer layouts, attenuation tables, station metadata, addressing,
  // checksums) — written with their real contents where available.
  const GllBasis basis(m.ngll - 1);
  const char* groups[5] = {"xmin", "xmax", "ymin", "ymax", "bottom"};
  for (int g = 0; g < 5; ++g) {
    std::vector<std::int32_t> elems;
    std::vector<double> normals, weights;
    for (const auto& ef : slice.absorbing_faces) {
      const bool in_group =
          (g < 4 && ef.face == g) || (g == 4 && ef.face == 4);
      if (!in_group) continue;
      const FaceData fd = compute_face_data(m, basis, ef.ispec, ef.face);
      elems.push_back(ef.ispec);
      for (std::size_t q = 0; q < fd.normals.size(); ++q) {
        normals.insert(normals.end(), fd.normals[q].begin(),
                       fd.normals[q].end());
        weights.push_back(fd.weights[q]);
      }
    }
    std::string base = std::string("ibelm_") + groups[g];
    bytes += write_array(sink, rank, base.c_str(), elems.data(), elems.size());
    base = std::string("normal_") + groups[g];
    bytes += write_array(sink, rank, base.c_str(), normals.data(),
                         normals.size());
    base = std::string("jacobian2D_") + groups[g];
    bytes += write_array(sink, rank, base.c_str(), weights.data(),
                         weights.size());
  }
  // coupling (fluid-solid) surface files
  std::vector<std::int32_t> cpl_faces;
  {
    const auto ifaces = find_interface_faces(m, mat.element_is_fluid);
    for (const auto& ef : ifaces) {
      cpl_faces.push_back(ef.ispec);
      cpl_faces.push_back(ef.face);
    }
  }
  bytes += write_array(sink, rank, "ibelm_moho_fluid", cpl_faces.data(),
                       cpl_faces.size());
  // attenuation placeholder tables (tau values stored per run in v4.0)
  const double att[6] = {1.0, 2.0, 3.0, 0.1, 0.2, 0.3};
  bytes += write_array(sink, rank, "attenuation", att, 6);
  // addressing: chunk/slice topology
  const std::int32_t addressing[4] = {rank, 0, 0, 0};
  bytes += write_array(sink, rank, "addressing", addressing, 4);
  // GLL basis tables (nodes + weights), as the solver re-read them
  std::vector<double> gll;
  for (int i = 0; i < m.ngll; ++i) {
    gll.push_back(basis.node(i));
    gll.push_back(basis.weight(i));
  }
  bytes += write_array(sink, rank, "gll_tables", gll.data(), gll.size());
  // stations metadata (none by default)
  bytes += write_array(sink, rank, "stations",
                       static_cast<const double*>(nullptr), 0);
  // unassembled mass-matrix diagonal (the solver re-read rmass in v4.0)
  {
    std::vector<float> rmass(static_cast<std::size_t>(m.nglob), 0.0f);
    const int ngll = m.ngll;
    for (int e = 0; e < m.nspec; ++e) {
      const std::size_t off = m.local_offset(e);
      for (int k = 0; k < ngll; ++k)
        for (int j = 0; j < ngll; ++j)
          for (int i = 0; i < ngll; ++i) {
            const std::size_t p =
                off + static_cast<std::size_t>(local_index(ngll, i, j, k));
            rmass[static_cast<std::size_t>(m.ibool[p])] +=
                static_cast<float>(basis.weight(i) * basis.weight(j) *
                                   basis.weight(k) * m.jacobian[p] *
                                   mat.rho[p]);
          }
    }
    bytes += write_array(sink, rank, "rmass", rmass.data(), rmass.size());
  }
  // per-layer element counts
  {
    std::vector<std::int32_t> counts;
    for (const auto& l : slice.layers) counts.push_back(l.n_elem);
    bytes += write_array(sink, rank, "nspec_layers", counts.data(),
                         counts.size());
  }
  // format version + quality summary
  const std::int32_t version[2] = {4, 0};  // "v4.0", the stable release
  bytes += write_array(sink, rank, "version", version, 2);
  const double quality[2] = {slice.stats.geometry_seconds,
                             slice.stats.materials_seconds};
  bytes += write_array(sink, rank, "mesher_timing", quality, 2);
  // checksum file
  const std::uint64_t checksum[1] = {bytes};
  bytes += write_array(sink, rank, "checksum", checksum, 1);
  return bytes;
}

GlobeSlice read_mesh_arrays(const ArraySrc& src, int rank) {
  GlobeSlice slice;
  const auto params = read_array<std::int64_t>(src, rank, "parameters");
  SFG_CHECK(params.size() == 8);
  HexMesh& m = slice.mesh;
  m.ngll = static_cast<int>(params[0]);
  m.nspec = static_cast<int>(params[1]);
  m.nglob = static_cast<int>(params[2]);
  slice.stats.radial_elements = static_cast<int>(params[6]);

  auto to_aligned_d = [](std::vector<double> v) {
    return aligned_vector<double>(v.begin(), v.end());
  };
  auto to_aligned_f = [](std::vector<float> v) {
    return aligned_vector<float>(v.begin(), v.end());
  };

  m.xstore = to_aligned_d(read_array<double>(src, rank, "xstore"));
  m.ystore = to_aligned_d(read_array<double>(src, rank, "ystore"));
  m.zstore = to_aligned_d(read_array<double>(src, rank, "zstore"));
  m.xix = to_aligned_f(read_array<float>(src, rank, "xix"));
  m.xiy = to_aligned_f(read_array<float>(src, rank, "xiy"));
  m.xiz = to_aligned_f(read_array<float>(src, rank, "xiz"));
  m.etax = to_aligned_f(read_array<float>(src, rank, "etax"));
  m.etay = to_aligned_f(read_array<float>(src, rank, "etay"));
  m.etaz = to_aligned_f(read_array<float>(src, rank, "etaz"));
  m.gammax = to_aligned_f(read_array<float>(src, rank, "gammax"));
  m.gammay = to_aligned_f(read_array<float>(src, rank, "gammay"));
  m.gammaz = to_aligned_f(read_array<float>(src, rank, "gammaz"));
  m.jacobian = to_aligned_f(read_array<float>(src, rank, "jacobian"));
  m.ibool = read_array<int>(src, rank, "ibool");

  MaterialFields& mat = slice.materials;
  mat.rho = to_aligned_f(read_array<float>(src, rank, "rho"));
  mat.kappav = to_aligned_f(read_array<float>(src, rank, "kappav"));
  mat.muv = to_aligned_f(read_array<float>(src, rank, "muv"));
  mat.vp = to_aligned_f(read_array<float>(src, rank, "vp"));
  mat.vs = to_aligned_f(read_array<float>(src, rank, "vs"));
  mat.q_mu = to_aligned_f(read_array<float>(src, rank, "qmu"));
  const auto fluid = read_array<std::uint8_t>(src, rank, "idoubling");
  mat.element_is_fluid.assign(fluid.size(), false);
  for (std::size_t e = 0; e < fluid.size(); ++e)
    mat.element_is_fluid[e] = fluid[e] != 0;

  const auto lay = read_array<double>(src, rank, "layers");
  SFG_CHECK(lay.size() % 4 == 0);
  for (std::size_t i = 0; i < lay.size(); i += 4) {
    RadialLayer l;
    l.r_bot = lay[i];
    l.r_top = lay[i + 1];
    l.n_elem = static_cast<int>(lay[i + 2]);
    l.fluid = lay[i + 3] != 0.0;
    slice.layers.push_back(l);
  }
  slice.boundary_keys =
      read_array<std::int64_t>(src, rank, "iboolfaces_keys");
  slice.boundary_points = read_array<int>(src, rank, "iboolfaces_points");
  const auto absf = read_array<std::int32_t>(src, rank, "abs_boundary");
  SFG_CHECK(absf.size() % 2 == 0);
  for (std::size_t i = 0; i < absf.size(); i += 2)
    slice.absorbing_faces.push_back({absf[i], absf[i + 1]});

  // Read the remaining legacy files in full (the solver did): the data is
  // redundant with what we reconstruct above, but the I/O cost is real.
  for (const char* g : {"xmin", "xmax", "ymin", "ymax", "bottom"}) {
    (void)read_array<std::int32_t>(src, rank,
                                   (std::string("ibelm_") + g).c_str());
    (void)read_array<double>(src, rank, (std::string("normal_") + g).c_str());
    (void)read_array<double>(src, rank,
                             (std::string("jacobian2D_") + g).c_str());
  }
  (void)read_array<std::int32_t>(src, rank, "ibelm_moho_fluid");
  (void)read_array<double>(src, rank, "attenuation");
  (void)read_array<std::int32_t>(src, rank, "addressing");
  (void)read_array<double>(src, rank, "gll_tables");
  (void)read_array<double>(src, rank, "stations");
  (void)read_array<float>(src, rank, "rmass");
  (void)read_array<std::int32_t>(src, rank, "nspec_layers");
  (void)read_array<std::int32_t>(src, rank, "version");
  (void)read_array<double>(src, rank, "mesher_timing");
  (void)read_array<std::uint64_t>(src, rank, "checksum");

  slice.stats.nspec = m.nspec;
  slice.stats.nglob = m.nglob;
  return slice;
}

}  // namespace

std::uint64_t write_legacy_mesh_files(const std::string& dir, int rank,
                                      const GlobeSlice& slice) {
  fs::create_directories(dir);
  DirSink sink(dir);
  const std::uint64_t bytes = write_mesh_arrays(sink, rank, slice);
  SFG_CHECK(directory_file_count(dir) % kLegacyFilesPerRank == 0);
  return bytes;
}

GlobeSlice read_legacy_mesh_files(const std::string& dir, int rank) {
  return read_mesh_arrays(DirSrc(dir), rank);
}

std::uint64_t write_mesh_container(io::Container& out, int rank,
                                   const GlobeSlice& slice) {
  ContainerSink sink(out);
  return write_mesh_arrays(sink, rank, slice);
}

GlobeSlice read_mesh_container(const io::Container& in, int rank) {
  return read_mesh_arrays(ContainerSrc(in), rank);
}

std::uint64_t directory_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir))
    if (entry.is_regular_file()) total += entry.file_size();
  return total;
}

int directory_file_count(const std::string& dir) {
  int count = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir))
    if (entry.is_regular_file()) ++count;
  return count;
}

void remove_legacy_mesh_files(const std::string& dir, int rank) {
  if (!fs::exists(dir)) return;
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "proc%06d_", rank);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().rfind(prefix, 0) == 0)
      fs::remove(entry.path());
  }
}

}  // namespace sfg

#pragma once

/// \file blob_store.hpp
/// The pluggable-format layer of `sfg_io` (ISSUE 8), in the style of the
/// meshfile `mf_userio` design: one small vtable of open/read/write/list
/// operations, N storage formats behind it. Callers (ResultStore, the
/// solver's checkpoint path, seismogram output, MeshCache spill) address
/// named blobs and never hard-code a path layout; which backend serves
/// them is a config choice:
///
///  * DirectoryStore — the legacy one-file-per-blob layout (`<dir>/<key>`),
///    every write made durable via the atomic_write_file protocol
///    (unique tmp, fsync, rename, directory fsync).
///  * ContainerStore — all blobs as chunks of ONE sfg_io container file
///    (container.hpp), each write an append + committed index; O(1) files
///    per store regardless of ranks × intervals. Thread-safe: concurrent
///    rank writers serialize on an internal lock.
///
/// Blob keys are flat names (no '/'); both backends reject anything that
/// could escape the store.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "io/container.hpp"

namespace sfg::io {

/// Which BlobStore backend a subsystem should open (the config knob the
/// service, solver checkpoint path and examples select by).
enum class IoBackendKind : std::int32_t {
  PerRankFiles = 0,  ///< one file per blob (legacy layout)
  Container = 1,     ///< one sfg_io container per store
};

const char* io_backend_name(IoBackendKind kind);

/// The open/read/write/list vtable every storage format implements.
class BlobStore {
 public:
  virtual ~BlobStore() = default;

  /// Durably store `bytes` under `key` (overwrites an existing blob).
  virtual void write(const std::string& key, const void* data,
                     std::size_t bytes) = 0;
  /// Read a blob back; throws sfg::CheckError when absent or corrupt.
  virtual std::vector<std::byte> read(const std::string& key) const = 0;
  virtual bool contains(const std::string& key) const = 0;
  /// Every stored key, in unspecified order.
  virtual std::vector<std::string> list() const = 0;
  /// Number of filesystem objects this store occupies (the Figure 5
  /// metric: O(blobs) for the per-file backend, O(1) for the container).
  virtual int file_count() const = 0;
  /// Human-readable location for error messages.
  virtual std::string describe() const = 0;
};

/// Legacy layout: one file per blob under `dir` (created if needed).
class DirectoryStore final : public BlobStore {
 public:
  explicit DirectoryStore(std::string dir);

  void write(const std::string& key, const void* data,
             std::size_t bytes) override;
  std::vector<std::byte> read(const std::string& key) const override;
  bool contains(const std::string& key) const override;
  std::vector<std::string> list() const override;
  int file_count() const override;
  std::string describe() const override;

  std::string path_for(const std::string& key) const;

 private:
  std::string dir_;
};

/// Single-container layout: every blob a chunk of `path` (an sfg_io
/// container, created if needed). Writes append + commit under a lock so
/// concurrent rank writers interleave safely; reads of already-written
/// chunks go through the same shared index.
class ContainerStore final : public BlobStore {
 public:
  explicit ContainerStore(const std::string& path);

  void write(const std::string& key, const void* data,
             std::size_t bytes) override;
  std::vector<std::byte> read(const std::string& key) const override;
  bool contains(const std::string& key) const override;
  std::vector<std::string> list() const override;
  int file_count() const override;
  std::string describe() const override;

  /// Write many blobs under ONE commit (one fsync for the batch).
  void write_batch(
      const std::vector<std::pair<std::string, std::vector<std::byte>>>&
          blobs);

  const std::string& container_path() const;

 private:
  mutable std::mutex mutex_;
  Container container_;
};

/// Open `kind` at `location`: the blob directory for PerRankFiles, the
/// container file path for Container.
std::unique_ptr<BlobStore> make_store(IoBackendKind kind,
                                      const std::string& location);

}  // namespace sfg::io

#include "io/container.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "io/file_util.hpp"
#include "io/snapshot.hpp"  // crc32

namespace sfg::io {

namespace {

constexpr std::array<char, 8> kHeaderMagic = {'S', 'F', 'G', 'C',
                                              'O', 'N', 'T', '\0'};
constexpr std::array<char, 8> kEndMagic = {'S', 'F', 'G', 'C',
                                           'E', 'N', 'D', '\0'};
constexpr std::uint32_t kChunkMarker = 0x4B4E4843;  // "CHNK"
constexpr std::uint32_t kIndexMarker = 0x58444E49;  // "INDX" reversed LE

constexpr std::uint64_t kHeaderBytes = 16;
// index offset (8) + its CRC (4) + end magic (8)
constexpr std::uint64_t kFooterBytes = 20;

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + bytes);
}

template <typename T>
void append_value(std::vector<std::byte>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_bytes(out, &value, sizeof(T));
}

/// Bounds-checked sequential parser (the snapshot Cursor discipline): a
/// truncated or lying index fails with offsets, never reads garbage.
class Cursor {
 public:
  Cursor(const std::byte* data, std::size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read_into(&value, sizeof(T));
    return value;
  }

  void read_into(void* dest, std::size_t bytes) {
    SFG_CHECK_MSG(pos_ + bytes <= size_,
                  "container '" << path_ << "' index is truncated (needed "
                                << bytes << " bytes at index offset " << pos_
                                << ", index region has " << size_ << ")");
    std::memcpy(dest, data_ + pos_, bytes);
    pos_ += bytes;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  const std::string& path_;
  std::size_t pos_ = 0;
};

std::uint64_t record_bytes(const ChunkInfo& c) {
  return 4 + 4 + 8 + c.name.size() + c.bytes + 4;
}

}  // namespace

Container Container::create(const std::string& path) {
  Container c;
  c.path_ = path;
  c.writable_ = true;
  c.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  SFG_CHECK_MSG(c.fd_ >= 0, "cannot create container '"
                                << path << "': " << std::strerror(errno));
  std::vector<std::byte> header;
  append_bytes(header, kHeaderMagic.data(), kHeaderMagic.size());
  append_value(header, kContainerVersion);
  append_value(header, std::uint32_t{0});
  c.pwrite_exact_or_throw(header);
  c.append_pos_ = kHeaderBytes;
  c.dirty_ = true;  // not readable until the first commit
  return c;
}

void Container::pread_exact(void* dest, std::size_t bytes,
                            std::uint64_t offset, const char* what) const {
  if (bytes == 0) return;  // empty chunk: dest may be null, memcpy/pread forbid that
  if (map_ != nullptr) {
    SFG_CHECK_MSG(offset + bytes <= map_bytes_,
                  "container '" << path_ << "' is truncated reading " << what
                                << " (needed " << bytes << " bytes at offset "
                                << offset << ", file has " << map_bytes_
                                << ")");
    std::memcpy(dest, static_cast<const std::byte*>(map_) + offset, bytes);
    return;
  }
  auto* p = static_cast<char*>(dest);
  std::size_t done = 0;
  while (done < bytes) {
    const ::ssize_t n =
        ::pread(fd_, p + done, bytes - done,
                static_cast<::off_t>(offset + done));
    SFG_CHECK_MSG(n > 0, "container '"
                             << path_ << "' is truncated reading " << what
                             << " (needed " << bytes << " bytes at offset "
                             << offset << ", got " << done << ")");
    done += static_cast<std::size_t>(n);
  }
}

Container Container::open_rw(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return create(path);
  Container c = open_ro(path, ReadMode::Pread);
  // Re-open the validated file writable; appends resume at the index
  // (the index + footer are re-emitted by the next commit).
  ::close(c.fd_);
  c.fd_ = ::open(path.c_str(), O_RDWR);
  SFG_CHECK_MSG(c.fd_ >= 0, "cannot reopen container '"
                                << path << "' writable: "
                                << std::strerror(errno));
  c.writable_ = true;
  return c;
}

Container Container::open_ro(const std::string& path, ReadMode mode) {
  Container c;
  c.path_ = path;
  c.writable_ = false;
  c.fd_ = ::open(path.c_str(), O_RDONLY);
  SFG_CHECK_MSG(c.fd_ >= 0, "cannot open container '"
                                << path << "': " << std::strerror(errno));
  struct ::stat st;
  SFG_CHECK(::fstat(c.fd_, &st) == 0);
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (mode == ReadMode::Mmap && file_size > 0) {
    void* m = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, c.fd_, 0);
    SFG_CHECK_MSG(m != MAP_FAILED, "cannot mmap container '"
                                       << path << "': "
                                       << std::strerror(errno));
    c.map_ = m;
    c.map_bytes_ = file_size;
  }
  c.load_index_or_throw(file_size);
  return c;
}

void Container::load_index_or_throw(std::uint64_t file_size) {
  SFG_CHECK_MSG(file_size >= kHeaderBytes + kFooterBytes,
                "container '" << path_ << "' is truncated (only "
                              << file_size << " bytes, a valid container "
                              << "needs at least "
                              << kHeaderBytes + kFooterBytes << ")");

  std::array<char, 8> magic;
  pread_exact(magic.data(), magic.size(), 0, "header magic");
  SFG_CHECK_MSG(std::memcmp(magic.data(), kHeaderMagic.data(), 8) == 0,
                "'" << path_ << "' is not an sfg_io container (bad magic)");
  std::uint32_t version = 0;
  pread_exact(&version, sizeof(version), 8, "format version");
  SFG_CHECK_MSG(version == kContainerVersion,
                "container '" << path_ << "' has format version " << version
                              << ", this build reads version "
                              << kContainerVersion);

  // Footer: end magic pinned to end-of-file, then the index offset it
  // vouches for. A container whose footer is not EXACTLY at EOF (torn
  // append, truncation, trailing garbage) is rejected wholesale.
  std::array<char, 8> end_magic;
  pread_exact(end_magic.data(), 8, file_size - 8, "end magic");
  SFG_CHECK_MSG(std::memcmp(end_magic.data(), kEndMagic.data(), 8) == 0,
                "container '" << path_
                              << "' has no valid footer at end-of-file "
                                 "(torn append or truncated commit — "
                                 "rejecting the whole container)");
  std::uint64_t index_offset = 0;
  std::uint32_t footer_crc = 0;
  pread_exact(&index_offset, 8, file_size - kFooterBytes, "index offset");
  pread_exact(&footer_crc, 4, file_size - kFooterBytes + 8,
              "footer CRC");
  SFG_CHECK_MSG(crc32(&index_offset, sizeof(index_offset)) == footer_crc,
                "container '" << path_
                              << "' footer failed its CRC check (corrupted "
                                 "or truncated file)");
  SFG_CHECK_MSG(index_offset >= kHeaderBytes &&
                    index_offset <= file_size - kFooterBytes,
                "container '" << path_ << "' footer points its index at "
                              << index_offset << ", outside the file ("
                              << file_size << " bytes)");

  // Parse the index region [index_offset, file_size - footer) with the
  // bounds-checked cursor, then CRC it before trusting any entry.
  const std::size_t index_bytes =
      static_cast<std::size_t>(file_size - kFooterBytes - index_offset);
  std::vector<std::byte> index(index_bytes);
  pread_exact(index.data(), index_bytes, index_offset, "chunk index");
  Cursor cur(index.data(), index.size(), path_);
  const std::uint32_t marker = cur.read<std::uint32_t>();
  SFG_CHECK_MSG(marker == kIndexMarker,
                "container '" << path_
                              << "' index marker is wrong (corrupted "
                                 "index or footer offset)");
  SFG_CHECK_MSG(index_bytes >= 4 + 4,
                "container '" << path_ << "' index region is too small");
  const std::uint32_t stored_crc = [&] {
    std::uint32_t v;
    std::memcpy(&v, index.data() + index.size() - 4, 4);
    return v;
  }();
  const std::uint32_t computed_crc =
      crc32(index.data() + 4, index.size() - 4 - 4);
  SFG_CHECK_MSG(stored_crc == computed_crc,
                "container '" << path_
                              << "' index failed its CRC check (corrupted "
                                 "or truncated file)");

  const std::uint32_t count = cur.read<std::uint32_t>();
  chunks_.clear();
  chunks_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ChunkInfo c;
    const std::uint32_t name_len = cur.read<std::uint32_t>();
    c.name.resize(name_len);
    cur.read_into(c.name.data(), name_len);
    c.offset = cur.read<std::uint64_t>();
    c.bytes = cur.read<std::uint64_t>();
    c.crc = cur.read<std::uint32_t>();
    SFG_CHECK_MSG(c.offset >= kHeaderBytes &&
                      c.offset + record_bytes(c) <= index_offset,
                  "container '" << path_ << "' chunk '" << c.name
                                << "' record [" << c.offset << ", +"
                                << record_bytes(c)
                                << ") lies outside the chunk region");
    chunks_.push_back(std::move(c));
  }
  SFG_CHECK_MSG(cur.pos() == index.size() - 4,
                "container '" << path_ << "' index has "
                              << (index.size() - 4 - cur.pos())
                              << " trailing bytes after the last entry");

  append_pos_ = index_offset;
  dead_bytes_ = 0;
  std::uint64_t live = 0;
  for (const ChunkInfo& c : chunks_) live += record_bytes(c);
  dead_bytes_ = index_offset - kHeaderBytes - live;
  view_verified_.assign(chunks_.size(), false);
}

void Container::pwrite_exact_or_throw(const std::vector<std::byte>& data) {
  pwrite_exact_or_throw(data.data(), data.size(), append_pos_);
}

void Container::pwrite_exact_or_throw(const void* data, std::size_t bytes,
                                      std::uint64_t offset) {
  const auto* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < bytes) {
    const ::ssize_t n = ::pwrite(fd_, p + done, bytes - done,
                                 static_cast<::off_t>(offset + done));
    if (n < 0 && errno == EINTR) continue;
    SFG_CHECK_MSG(n > 0, "write to container '"
                             << path_ << "' failed at offset "
                             << offset + done << ": "
                             << std::strerror(errno));
    done += static_cast<std::size_t>(n);
  }
}

void Container::append(const std::string& name, const void* data,
                       std::size_t bytes) {
  SFG_CHECK_MSG(writable_, "container '" << path_ << "' is read-only");
  SFG_CHECK_MSG(!name.empty(), "container chunk needs a name");

  ChunkInfo info;
  info.name = name;
  info.offset = append_pos_;
  info.bytes = bytes;
  info.crc = crc32(data, bytes);

  std::vector<std::byte> record;
  record.reserve(static_cast<std::size_t>(record_bytes(info)));
  append_value(record, kChunkMarker);
  append_value(record, static_cast<std::uint32_t>(name.size()));
  append_value(record, static_cast<std::uint64_t>(bytes));
  append_bytes(record, name.data(), name.size());
  append_bytes(record, data, bytes);
  append_value(record, info.crc);
  pwrite_exact_or_throw(record);
  append_pos_ += record.size();
  dirty_ = true;

  const std::size_t existing = index_of(name);
  if (existing == chunks_.size()) {
    chunks_.push_back(std::move(info));
  } else {
    // Superseded: the old record's bytes stay in the file as dead space
    // until a pack/compaction rewrites the container.
    dead_bytes_ += record_bytes(chunks_[existing]);
    chunks_[existing] = std::move(info);
  }
}

void Container::commit() {
  SFG_CHECK_MSG(writable_, "container '" << path_ << "' is read-only");
  std::vector<std::byte> tail;
  append_value(tail, kIndexMarker);
  append_value(tail, static_cast<std::uint32_t>(chunks_.size()));
  for (const ChunkInfo& c : chunks_) {
    append_value(tail, static_cast<std::uint32_t>(c.name.size()));
    append_bytes(tail, c.name.data(), c.name.size());
    append_value(tail, c.offset);
    append_value(tail, c.bytes);
    append_value(tail, c.crc);
  }
  const std::uint32_t index_crc = crc32(tail.data() + 4, tail.size() - 4);
  append_value(tail, index_crc);
  const std::uint64_t index_offset = append_pos_;
  append_value(tail, index_offset);
  append_value(tail, crc32(&index_offset, sizeof(index_offset)));
  append_bytes(tail, kEndMagic.data(), kEndMagic.size());
  pwrite_exact_or_throw(tail);

  // A reopened container may hold stale bytes past the new footer (the
  // previous, larger index) — trim them so the footer is exactly at EOF,
  // then make the whole image durable.
  const std::uint64_t end = append_pos_ + tail.size();
  SFG_CHECK_MSG(::ftruncate(fd_, static_cast<::off_t>(end)) == 0,
                "cannot truncate container '" << path_ << "' to " << end
                                              << " bytes: "
                                              << std::strerror(errno));
  fsync_fd(fd_, "container '" + path_ + "'");
  dirty_ = false;
}

bool Container::has(const std::string& name) const {
  return index_of(name) != chunks_.size();
}

std::size_t Container::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < chunks_.size(); ++i)
    if (chunks_[i].name == name) return i;
  return chunks_.size();
}

const ChunkInfo& Container::info(const std::string& name) const {
  const std::size_t i = index_of(name);
  SFG_CHECK_MSG(i != chunks_.size(), "container '" << path_
                                                   << "' has no chunk '"
                                                   << name << "'");
  return chunks_[i];
}

void Container::verify_record_header(const ChunkInfo& c) const {
  std::uint32_t marker = 0, name_len = 0;
  std::uint64_t payload_len = 0;
  pread_exact(&marker, 4, c.offset, "chunk marker");
  pread_exact(&name_len, 4, c.offset + 4, "chunk name length");
  pread_exact(&payload_len, 8, c.offset + 8, "chunk payload length");
  SFG_CHECK_MSG(marker == kChunkMarker && name_len == c.name.size() &&
                    payload_len == c.bytes,
                "container '" << path_ << "' chunk '" << c.name
                              << "' record at offset " << c.offset
                              << " disagrees with the index (corrupted "
                                 "chunk region)");
}

std::vector<std::byte> Container::read(const std::string& name) const {
  const ChunkInfo& c = info(name);
  verify_record_header(c);
  std::vector<std::byte> payload(static_cast<std::size_t>(c.bytes));
  pread_exact(payload.data(), payload.size(),
              c.offset + 16 + c.name.size(), "chunk payload");
  SFG_CHECK_MSG(crc32(payload.data(), payload.size()) == c.crc,
                "container '" << path_ << "' chunk '" << name
                              << "' failed its CRC check (corrupted or "
                                 "truncated file)");
  return payload;
}

std::span<const std::byte> Container::view(const std::string& name) const {
  SFG_CHECK_MSG(map_ != nullptr,
                "container '" << path_
                              << "' was not opened in Mmap mode; use "
                                 "read() or open_ro(path, ReadMode::Mmap)");
  const std::size_t i = index_of(name);
  SFG_CHECK_MSG(i != chunks_.size(), "container '" << path_
                                                   << "' has no chunk '"
                                                   << name << "'");
  const ChunkInfo& c = chunks_[i];
  const std::uint64_t payload_off = c.offset + 16 + c.name.size();
  SFG_CHECK_MSG(payload_off + c.bytes <= map_bytes_,
                "container '" << path_ << "' chunk '" << name
                              << "' payload extends past end-of-file");
  const auto* base = static_cast<const std::byte*>(map_) + payload_off;
  if (!view_verified_[i]) {
    verify_record_header(c);
    SFG_CHECK_MSG(crc32(base, static_cast<std::size_t>(c.bytes)) == c.crc,
                  "container '" << path_ << "' chunk '" << name
                                << "' failed its CRC check (corrupted or "
                                   "truncated file)");
    view_verified_[i] = true;
  }
  return {base, static_cast<std::size_t>(c.bytes)};
}

void Container::close() {
  if (map_ != nullptr) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Container::Container(Container&& other) noexcept { *this = std::move(other); }

Container& Container::operator=(Container&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    writable_ = other.writable_;
    dirty_ = other.dirty_;
    append_pos_ = other.append_pos_;
    dead_bytes_ = other.dead_bytes_;
    chunks_ = std::move(other.chunks_);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    view_verified_ = std::move(other.view_verified_);
  }
  return *this;
}

Container::~Container() { close(); }

}  // namespace sfg::io

#include "io/ioconv.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "io/file_util.hpp"

namespace sfg::io {

namespace fs = std::filesystem;

namespace {

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  SFG_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> out(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(out.data()), size);
  SFG_CHECK_MSG(in.good(), "cannot read '" << path << "'");
  return out;
}

std::vector<std::string> relative_files(const std::string& dir) {
  SFG_CHECK_MSG(fs::is_directory(dir),
                "'" << dir << "' is not a directory");
  std::vector<std::string> names;
  for (const auto& e : fs::recursive_directory_iterator(dir))
    if (e.is_regular_file())
      names.push_back(
          fs::relative(e.path(), dir).generic_string());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

ConvStats pack_directory(const std::string& dir,
                         const std::string& container_path, bool verify) {
  const std::vector<std::string> names = relative_files(dir);
  ConvStats stats;
  {
    Container out = Container::create(container_path);
    for (const std::string& name : names) {
      const std::vector<std::byte> data = read_file(dir + "/" + name);
      out.append(name, data.data(), data.size());
      ++stats.files;
      stats.bytes += data.size();
    }
    out.commit();
  }
  if (verify) {
    const Container back =
        Container::open_ro(container_path, Container::ReadMode::Mmap);
    SFG_CHECK_MSG(back.chunks().size() == names.size(),
                  "packed container '" << container_path << "' lists "
                                       << back.chunks().size()
                                       << " chunks, expected "
                                       << names.size());
    for (const std::string& name : names) {
      const auto chunk = back.view(name);  // CRC-verified
      const std::vector<std::byte> file = read_file(dir + "/" + name);
      SFG_CHECK_MSG(chunk.size() == file.size() &&
                        (file.empty() ||
                         std::memcmp(chunk.data(), file.data(),
                                     file.size()) == 0),
                    "packed chunk '" << name
                                     << "' does not match its source file");
    }
  }
  return stats;
}

ConvStats unpack_container(const std::string& container_path,
                           const std::string& dir, bool verify) {
  const Container in =
      Container::open_ro(container_path, Container::ReadMode::Pread);
  fs::create_directories(dir);
  ConvStats stats;
  for (const ChunkInfo& c : in.chunks()) {
    SFG_CHECK_MSG(c.name.find("..") == std::string::npos &&
                      !c.name.empty() && c.name.front() != '/',
                  "container chunk name '" << c.name
                                           << "' would escape '" << dir
                                           << "'");
    const std::vector<std::byte> data = in.read(c.name);  // CRC-verified
    const std::string path = dir + "/" + c.name;
    const std::size_t slash = path.find_last_of('/');
    fs::create_directories(path.substr(0, slash));
    atomic_write_file(path, data.data(), data.size());
    if (verify) {
      const std::vector<std::byte> back = read_file(path);
      SFG_CHECK_MSG(back == data, "unpacked file '"
                                      << path
                                      << "' does not match its chunk");
    }
    ++stats.files;
    stats.bytes += data.size();
  }
  return stats;
}

ConvStats verify_container(const std::string& container_path) {
  const Container in =
      Container::open_ro(container_path, Container::ReadMode::Mmap);
  ConvStats stats;
  for (const ChunkInfo& c : in.chunks()) {
    (void)in.view(c.name);  // CRC + record-header verification
    ++stats.files;
    stats.bytes += c.bytes;
  }
  return stats;
}

}  // namespace sfg::io

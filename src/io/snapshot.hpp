#pragma once

/// \file snapshot.hpp
/// Versioned, CRC-protected binary snapshot container used by the solver's
/// checkpoint/restart path (ISSUE 2). The design follows the shape of
/// PETSc's DMPlex parallel checkpoint formats: one file per rank, a header
/// that pins the run configuration (NEX, NPROC, nchunks, rank, nranks) so a
/// snapshot can never be restored into a mismatched decomposition, named
/// sections so the layout can evolve without breaking old readers, and a
/// whole-file CRC32 so corruption and truncation are detected instead of
/// silently producing wrong physics.
///
/// File layout (little-endian, as written by the host):
///   8 bytes  magic "SFGSNAP\0"
///   u32      format version (kSnapshotVersion)
///   5 × i32  SnapshotIdentity {nex, nproc, nchunks, rank, nranks}
///   u32      section count
///   per section: u32 name length, name bytes, u64 payload bytes
///   section payloads, in table order
///   u32      CRC32 over everything after the magic
///
/// All failure modes (bad magic, unknown version, identity mismatch,
/// truncation, CRC mismatch, missing/short section) throw sfg::CheckError
/// with a message naming the file and the problem.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace sfg::io {

class BlobStore;

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected). Chainable via `seed`.
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

/// Pins a snapshot to one run configuration; restore rejects any mismatch.
struct SnapshotIdentity {
  std::int32_t nex = 0;      ///< elements per chunk edge (NEX_XI)
  std::int32_t nproc = 0;    ///< process grid edge per chunk (NPROC_XI)
  std::int32_t nchunks = 1;  ///< cubed-sphere chunks (or 1 for box runs)
  std::int32_t rank = 0;     ///< owning rank of this per-rank file
  std::int32_t nranks = 1;   ///< world size the run was decomposed for

  bool operator==(const SnapshotIdentity&) const = default;
};

/// Accumulates named sections in memory, then writes one snapshot file.
class SnapshotWriter {
 public:
  void add_section(const std::string& name, const void* data,
                   std::size_t bytes);

  template <typename T>
  void add_values(const std::string& name, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    add_section(name, data, count * sizeof(T));
  }
  template <typename T>
  void add_vector(const std::string& name, const std::vector<T>& v) {
    add_values(name, v.data(), v.size());
  }

  /// The complete file image (magic + header + sections + CRC) that
  /// write() puts on disk — also what the BlobStore backends store.
  std::vector<std::byte> serialize(const SnapshotIdentity& identity) const;

  /// Durable atomic write: serialize to a uniquely-named temp file in the
  /// target directory, fsync it, rename over `path`, then fsync the parent
  /// directory so the rename itself survives a crash (docs/io.md). The
  /// temp file is removed on every failure path.
  void write(const std::string& path, const SnapshotIdentity& identity) const;

  /// Store the snapshot as blob `key` in `store` (per-rank files or the
  /// single-container backend — the bytes are identical either way).
  void write(BlobStore& store, const std::string& key,
             const SnapshotIdentity& identity) const;

 private:
  struct Section {
    std::string name;
    std::vector<std::byte> payload;
  };
  std::vector<Section> sections_;
};

/// Loads and validates a snapshot file, then serves sections by name.
class SnapshotReader {
 public:
  /// Read `path`, verify magic/version/CRC, and check the stored identity
  /// against `expected`. Throws CheckError on any mismatch.
  static SnapshotReader open(const std::string& path,
                             const SnapshotIdentity& expected);

  /// Same validation over an in-memory image; `label` names the source in
  /// error messages (a path, or "<container>:<key>").
  static SnapshotReader parse(const std::vector<std::byte>& file,
                              const std::string& label,
                              const SnapshotIdentity& expected);

  /// Read blob `key` from `store` and validate it like open(path) does.
  static SnapshotReader open(const BlobStore& store, const std::string& key,
                             const SnapshotIdentity& expected);

  const SnapshotIdentity& identity() const { return identity_; }

  bool has(const std::string& name) const;
  /// Section payload; throws CheckError if absent.
  const std::vector<std::byte>& section(const std::string& name) const;

  template <typename T>
  std::vector<T> read_vector(const std::string& name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto& raw = section(name);
    SFG_CHECK_MSG(raw.size() % sizeof(T) == 0,
                  "snapshot section '" << name << "' has " << raw.size()
                                       << " bytes, not a multiple of "
                                       << sizeof(T));
    std::vector<T> out(raw.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  template <typename T>
  T read_value(const std::string& name) const {
    const auto v = read_vector<T>(name);
    SFG_CHECK_MSG(v.size() == 1, "snapshot section '"
                                     << name << "' holds " << v.size()
                                     << " values, expected exactly 1");
    return v[0];
  }

 private:
  SnapshotIdentity identity_;
  std::vector<std::pair<std::string, std::vector<std::byte>>> sections_;
};

}  // namespace sfg::io

#include "io/blob_store.hpp"

#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "io/file_util.hpp"

namespace sfg::io {

namespace fs = std::filesystem;

namespace {

void check_key(const std::string& key, const std::string& where) {
  SFG_CHECK_MSG(!key.empty(), "blob key may not be empty (" << where << ")");
  SFG_CHECK_MSG(key.find('/') == std::string::npos &&
                    key.find("..") == std::string::npos,
                "blob key '" << key << "' must be a flat name (" << where
                             << ")");
}

}  // namespace

const char* io_backend_name(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::PerRankFiles: return "per-rank-files";
    case IoBackendKind::Container: return "container";
  }
  return "unknown";
}

// ---------------------------------------------------------------- files --

DirectoryStore::DirectoryStore(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
}

std::string DirectoryStore::path_for(const std::string& key) const {
  return dir_ + "/" + key;
}

void DirectoryStore::write(const std::string& key, const void* data,
                           std::size_t bytes) {
  check_key(key, describe());
  atomic_write_file(path_for(key), data, bytes);
}

std::vector<std::byte> DirectoryStore::read(const std::string& key) const {
  check_key(key, describe());
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  SFG_CHECK_MSG(in.good(), "cannot open blob '" << path << "'");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> out(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(out.data()), size);
  SFG_CHECK_MSG(in.good(), "cannot read blob '" << path << "'");
  return out;
}

bool DirectoryStore::contains(const std::string& key) const {
  check_key(key, describe());
  return fs::is_regular_file(path_for(key));
}

std::vector<std::string> DirectoryStore::list() const {
  std::vector<std::string> keys;
  for (const auto& e : fs::directory_iterator(dir_))
    if (e.is_regular_file()) keys.push_back(e.path().filename().string());
  return keys;
}

int DirectoryStore::file_count() const {
  int count = 0;
  for (const auto& e : fs::directory_iterator(dir_))
    if (e.is_regular_file()) ++count;
  return count;
}

std::string DirectoryStore::describe() const {
  return "per-rank-files store '" + dir_ + "'";
}

// ------------------------------------------------------------ container --

ContainerStore::ContainerStore(const std::string& path)
    : container_(Container::open_rw(path)) {}

void ContainerStore::write(const std::string& key, const void* data,
                           std::size_t bytes) {
  check_key(key, describe());
  std::lock_guard<std::mutex> lock(mutex_);
  container_.append(key, data, bytes);
  container_.commit();
}

void ContainerStore::write_batch(
    const std::vector<std::pair<std::string, std::vector<std::byte>>>&
        blobs) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, data] : blobs) {
    check_key(key, describe());
    container_.append(key, data.data(), data.size());
  }
  container_.commit();
}

std::vector<std::byte> ContainerStore::read(const std::string& key) const {
  check_key(key, describe());
  std::lock_guard<std::mutex> lock(mutex_);
  return container_.read(key);
}

bool ContainerStore::contains(const std::string& key) const {
  check_key(key, describe());
  std::lock_guard<std::mutex> lock(mutex_);
  return container_.has(key);
}

std::vector<std::string> ContainerStore::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(container_.chunks().size());
  for (const ChunkInfo& c : container_.chunks()) keys.push_back(c.name);
  return keys;
}

int ContainerStore::file_count() const { return 1; }

std::string ContainerStore::describe() const {
  return "container store '" + container_.path() + "'";
}

const std::string& ContainerStore::container_path() const {
  return container_.path();
}

std::unique_ptr<BlobStore> make_store(IoBackendKind kind,
                                      const std::string& location) {
  switch (kind) {
    case IoBackendKind::PerRankFiles:
      return std::make_unique<DirectoryStore>(location);
    case IoBackendKind::Container: {
      // The container lives at `location` + ".sfgc" when `location` names
      // a directory-style root, so both backends accept the same config
      // string. A path already carrying the extension is used as-is.
      std::string path = location;
      if (path.size() < 5 || path.substr(path.size() - 5) != ".sfgc")
        path += ".sfgc";
      const std::size_t slash = path.find_last_of('/');
      if (slash != std::string::npos)
        fs::create_directories(path.substr(0, slash));
      return std::make_unique<ContainerStore>(path);
    }
  }
  SFG_CHECK_MSG(false, "unknown IoBackendKind");
  return nullptr;
}

}  // namespace sfg::io

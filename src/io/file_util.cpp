#include "io/file_util.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"

namespace sfg::io {

namespace {

/// Directory component of `path` ("." when there is none).
std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// RAII unlink: removes `path` at scope exit unless disarmed, so every
/// failure path of a writer cleans up its temporary file.
struct UnlinkGuard {
  std::string path;
  bool armed = true;
  ~UnlinkGuard() {
    if (armed) ::unlink(path.c_str());
  }
  void disarm() { armed = false; }
};

}  // namespace

std::string unique_tmp_path(const std::string& path) {
  static std::atomic<std::uint64_t> seq{0};
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid())) +
         "." + std::to_string(seq.fetch_add(1));
}

void fsync_fd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    const int err = errno;
    SFG_CHECK_MSG(false, "fsync of " << what << " failed: "
                                     << std::strerror(err));
  }
}

void fsync_parent_dir(const std::string& path) {
  const std::string dir = parent_dir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  SFG_CHECK_MSG(fd >= 0, "cannot open directory '"
                             << dir << "' to fsync the rename of '" << path
                             << "': " << std::strerror(errno));
  // Some filesystems refuse fsync on directory fds; that is a reportable
  // durability failure, not something to paper over.
  const bool ok = ::fsync(fd) == 0;
  const int err = errno;
  ::close(fd);
  SFG_CHECK_MSG(ok, "fsync of directory '" << dir << "' failed: "
                                           << std::strerror(err));
}

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t bytes) {
  const std::string tmp = unique_tmp_path(path);
  UnlinkGuard guard{tmp};

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  SFG_CHECK_MSG(fd >= 0, "cannot open '" << tmp << "' for writing: "
                                         << std::strerror(errno));
  const auto* p = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < bytes) {
    const ::ssize_t n = ::write(fd, p + written, bytes - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      SFG_CHECK_MSG(false, "write to '" << tmp << "' failed after "
                                        << written << "/" << bytes
                                        << " bytes: " << std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  // Data must reach stable storage BEFORE the rename publishes the path:
  // rename-then-crash with unflushed data leaves a valid-looking file
  // holding torn contents, which defeats every "last consistent
  // checkpoint" argument built on top of this writer.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    SFG_CHECK_MSG(false,
                  "fsync of '" << tmp << "' failed: " << std::strerror(err));
  }
  SFG_CHECK_MSG(::close(fd) == 0, "close of '" << tmp << "' failed: "
                                               << std::strerror(errno));

  SFG_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot rename '" << tmp << "' to '" << path
                                  << "': " << std::strerror(errno));
  guard.disarm();  // the tmp name no longer exists
  fsync_parent_dir(path);
}

}  // namespace sfg::io

#include "io/seismogram_io.hpp"

#include <cstdio>
#include <memory>

#include "common/check.hpp"

namespace sfg {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

std::uint64_t write_seismogram(const std::string& prefix,
                               const Seismogram& seis) {
  SFG_CHECK_MSG(seis.displ.size() == seis.time.size(),
                "seismogram has " << seis.time.size() << " time samples but "
                                  << seis.displ.size()
                                  << " displacement samples");
  const char* comp_name[3] = {"X", "Y", "Z"};
  std::uint64_t bytes = 0;
  for (int c = 0; c < 3; ++c) {
    const std::string path = prefix + "." + comp_name[c] + ".semd";
    FilePtr f(std::fopen(path.c_str(), "w"));
    SFG_CHECK_MSG(f != nullptr,
                  "cannot open " << path << " for writing (missing directory "
                                 << "or unwritable prefix?)");
    for (std::size_t i = 0; i < seis.time.size(); ++i) {
      const int n = std::fprintf(f.get(), "%.9e %.9e\n", seis.time[i],
                                 seis.displ[i][static_cast<std::size_t>(c)]);
      // fprintf reports short writes (full disk, I/O error) as a negative
      // return; treat anything but the full line as failure.
      SFG_CHECK_MSG(n > 0 && std::ferror(f.get()) == 0,
                    "short write to " << path << " at sample " << i
                                      << " (disk full?)");
      bytes += static_cast<std::uint64_t>(n);
    }
    // Errors buffered by stdio may only surface at flush/close: a clean
    // fclose is part of the durability contract.
    std::FILE* raw = f.release();
    const bool flush_ok = std::fflush(raw) == 0 && std::ferror(raw) == 0;
    const bool close_ok = std::fclose(raw) == 0;
    SFG_CHECK_MSG(flush_ok && close_ok,
                  "failed to flush " << path << " (disk full?)");
  }
  return bytes;
}

Seismogram read_seismogram_component(const std::string& path,
                                     int component) {
  SFG_CHECK(component >= 0 && component < 3);
  FilePtr f(std::fopen(path.c_str(), "r"));
  SFG_CHECK_MSG(f != nullptr, "cannot open " << path);
  Seismogram seis;
  double t, v;
  int matched;
  while ((matched = std::fscanf(f.get(), "%lf %lf", &t, &v)) == 2) {
    seis.time.push_back(t);
    std::array<double, 3> u{0.0, 0.0, 0.0};
    u[static_cast<std::size_t>(component)] = v;
    seis.displ.push_back(u);
  }
  SFG_CHECK_MSG(std::ferror(f.get()) == 0,
                "I/O error while reading " << path);
  // A half-parsed pair (time with no value) means the file was truncated
  // mid-sample; leftover non-numeric bytes mean it is not a seismogram.
  SFG_CHECK_MSG(matched != 1,
                path << " is truncated: trailing time sample "
                     << seis.time.size() << " has no displacement value");
  const int trailing = std::fgetc(f.get());
  SFG_CHECK_MSG(trailing == EOF,
                path << " has non-numeric bytes after sample "
                     << seis.time.size() << " — not a *.semd seismogram?");
  SFG_CHECK_MSG(!seis.time.empty(),
                path << " holds no samples (empty or non-numeric file)");
  return seis;
}

}  // namespace sfg

#include "io/seismogram_io.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace sfg {

std::uint64_t write_seismogram(const std::string& prefix,
                               const Seismogram& seis) {
  const char* comp_name[3] = {"X", "Y", "Z"};
  std::uint64_t bytes = 0;
  for (int c = 0; c < 3; ++c) {
    const std::string path = prefix + "." + comp_name[c] + ".semd";
    std::FILE* f = std::fopen(path.c_str(), "w");
    SFG_CHECK_MSG(f != nullptr, "cannot open " << path);
    for (std::size_t i = 0; i < seis.time.size(); ++i) {
      const int n = std::fprintf(f, "%.9e %.9e\n", seis.time[i],
                                 seis.displ[i][static_cast<std::size_t>(c)]);
      SFG_CHECK(n > 0);
      bytes += static_cast<std::uint64_t>(n);
    }
    std::fclose(f);
  }
  return bytes;
}

Seismogram read_seismogram_component(const std::string& path,
                                     int component) {
  SFG_CHECK(component >= 0 && component < 3);
  std::FILE* f = std::fopen(path.c_str(), "r");
  SFG_CHECK_MSG(f != nullptr, "cannot open " << path);
  Seismogram seis;
  double t, v;
  while (std::fscanf(f, "%lf %lf", &t, &v) == 2) {
    seis.time.push_back(t);
    std::array<double, 3> u{0.0, 0.0, 0.0};
    u[static_cast<std::size_t>(component)] = v;
    seis.displ.push_back(u);
  }
  std::fclose(f);
  return seis;
}

}  // namespace sfg

#include "io/seismogram_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/check.hpp"
#include "io/blob_store.hpp"

namespace sfg {

namespace {

constexpr const char* kComponentName[3] = {"X", "Y", "Z"};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Parse "time value" rows from an in-memory component file; `label` names
/// the source (a path, or "<container>:<key>") in error messages.
Seismogram parse_component(const std::string& text, const std::string& label,
                           int component) {
  SFG_CHECK(component >= 0 && component < 3);
  Seismogram seis;
  const char* p = text.c_str();
  for (;;) {
    char* after = nullptr;
    const double t = std::strtod(p, &after);
    if (after == p) break;  // no leading number: end of samples
    p = after;
    const double v = std::strtod(p, &after);
    // A half-parsed pair (time with no value) means the file was truncated
    // mid-sample.
    SFG_CHECK_MSG(after != p,
                  label << " is truncated: trailing time sample "
                        << seis.time.size() << " has no displacement value");
    p = after;
    seis.time.push_back(t);
    std::array<double, 3> u{0.0, 0.0, 0.0};
    u[static_cast<std::size_t>(component)] = v;
    seis.displ.push_back(u);
  }
  while (*p == ' ' || *p == '\t' || *p == '\r' || *p == '\n') ++p;
  SFG_CHECK_MSG(*p == '\0',
                label << " has non-numeric bytes after sample "
                      << seis.time.size() << " — not a *.semd seismogram?");
  SFG_CHECK_MSG(!seis.time.empty(),
                label << " holds no samples (empty or non-numeric file)");
  return seis;
}

}  // namespace

std::string format_seismogram_component(const Seismogram& seis,
                                        int component) {
  SFG_CHECK(component >= 0 && component < 3);
  SFG_CHECK_MSG(seis.displ.size() == seis.time.size(),
                "seismogram has " << seis.time.size() << " time samples but "
                                  << seis.displ.size()
                                  << " displacement samples");
  std::string out;
  out.reserve(seis.time.size() * 34);
  char line[64];
  for (std::size_t i = 0; i < seis.time.size(); ++i) {
    const int n =
        std::snprintf(line, sizeof(line), "%.9e %.9e\n", seis.time[i],
                      seis.displ[i][static_cast<std::size_t>(component)]);
    SFG_CHECK(n > 0 && static_cast<std::size_t>(n) < sizeof(line));
    out.append(line, static_cast<std::size_t>(n));
  }
  return out;
}

std::uint64_t write_seismogram(const std::string& prefix,
                               const Seismogram& seis) {
  std::uint64_t bytes = 0;
  for (int c = 0; c < 3; ++c) {
    const std::string text = format_seismogram_component(seis, c);
    const std::string path = prefix + "." + kComponentName[c] + ".semd";
    FilePtr f(std::fopen(path.c_str(), "w"));
    SFG_CHECK_MSG(f != nullptr,
                  "cannot open " << path << " for writing (missing directory "
                                 << "or unwritable prefix?)");
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f.get());
    SFG_CHECK_MSG(written == text.size() && std::ferror(f.get()) == 0,
                  "short write to " << path << " (" << written << " of "
                                    << text.size()
                                    << " bytes — disk full?)");
    // Errors buffered by stdio may only surface at flush/close: a clean
    // fclose is part of the durability contract.
    std::FILE* raw = f.release();
    const bool flush_ok = std::fflush(raw) == 0 && std::ferror(raw) == 0;
    const bool close_ok = std::fclose(raw) == 0;
    SFG_CHECK_MSG(flush_ok && close_ok,
                  "failed to flush " << path << " (disk full?)");
    bytes += text.size();
  }
  return bytes;
}

std::uint64_t write_seismogram(io::BlobStore& store,
                               const std::string& prefix,
                               const Seismogram& seis) {
  std::uint64_t bytes = 0;
  for (int c = 0; c < 3; ++c) {
    const std::string text = format_seismogram_component(seis, c);
    store.write(prefix + "." + kComponentName[c] + ".semd", text.data(),
                text.size());
    bytes += text.size();
  }
  return bytes;
}

Seismogram read_seismogram_component(const std::string& path,
                                     int component) {
  SFG_CHECK(component >= 0 && component < 3);
  FilePtr f(std::fopen(path.c_str(), "rb"));
  SFG_CHECK_MSG(f != nullptr, "cannot open " << path);
  std::string text;
  char buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
    text.append(buf, n);
  SFG_CHECK_MSG(std::ferror(f.get()) == 0,
                "I/O error while reading " << path);
  return parse_component(text, path, component);
}

Seismogram read_seismogram_component(const io::BlobStore& store,
                                     const std::string& key, int component) {
  const std::vector<std::byte> blob = store.read(key);
  std::string text(reinterpret_cast<const char*>(blob.data()), blob.size());
  return parse_component(text, store.describe() + ":" + key, component);
}

std::unique_ptr<io::BlobStore> open_seismogram_sink(const std::string& dir) {
  return io::make_store(io::IoBackendKind::Container,
                        (dir.empty() ? std::string(".") : dir) +
                            "/seismograms.sfgc");
}

}  // namespace sfg

#pragma once

/// \file ioconv.hpp
/// Conversion between the legacy one-file-per-rank layout and the sfg_io
/// single-container format (ISSUE 8) — the library behind the
/// `sfg_ioconv` CLI (tools/sfg_ioconv.cpp), meshconv-style.
///
/// Both directions preserve bytes exactly: a chunk's payload IS the file's
/// content, keyed by the file's path relative to the packed directory. So
/// `pack` then `unpack` reproduces every input file bit for bit (the
/// round-trip test test_io_container proves it), and a container written
/// directly by `write_mesh_container` unpacks into files identical to
/// `write_legacy_mesh_files` output.

#include <cstdint>
#include <string>

#include "io/container.hpp"

namespace sfg::io {

struct ConvStats {
  int files = 0;             ///< files packed / unpacked / verified
  std::uint64_t bytes = 0;   ///< payload bytes moved
};

/// Pack every regular file under `dir` (recursively; chunk names are the
/// paths relative to `dir`) into a fresh container at `container_path`.
/// When `verify` is set, the committed container is reopened and every
/// chunk CRC-checked and byte-compared against its source file.
ConvStats pack_directory(const std::string& dir,
                         const std::string& container_path,
                         bool verify = true);

/// Unpack every chunk of `container_path` into files under `dir`
/// (created if needed), each written with the durable atomic protocol.
/// Chunk reads are CRC-verified; with `verify` set, the written files are
/// re-read and byte-compared against the chunks.
ConvStats unpack_container(const std::string& container_path,
                           const std::string& dir, bool verify = true);

/// Open `container_path` (Mmap mode — the random-access read path) and
/// CRC-verify every chunk. Throws sfg::CheckError on the first failure.
ConvStats verify_container(const std::string& container_path);

}  // namespace sfg::io

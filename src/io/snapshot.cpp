#include "io/snapshot.hpp"

#include <array>
#include <fstream>

#include "io/blob_store.hpp"
#include "io/file_util.hpp"

namespace sfg::io {

namespace {

constexpr std::array<char, 8> kMagic = {'S', 'F', 'G', 'S',
                                        'N', 'A', 'P', '\0'};

/// Slicing-by-8 CRC-32 tables: t[0] is the classic byte table; t[s][i]
/// advances a byte through s additional zero bytes, so eight table lookups
/// fold eight input bytes at once (~8x the byte-at-a-time throughput —
/// this CRC runs over every container chunk and snapshot payload, so it
/// sits on the checkpoint/result write path).
const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (int s = 1; s < 8; ++s)
      for (std::uint32_t i = 0; i < 256; ++i)
        t[static_cast<std::size_t>(s)][i] =
            (t[static_cast<std::size_t>(s - 1)][i] >> 8) ^
            t[0][t[static_cast<std::size_t>(s - 1)][i] & 0xFFu];
    return t;
  }();
  return tables;
}

void append_bytes(std::vector<std::byte>& out, const void* data,
                  std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  out.insert(out.end(), p, p + bytes);
}

template <typename T>
void append_value(std::vector<std::byte>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  append_bytes(out, &value, sizeof(T));
}

/// Sequential parser over a loaded file; every read is bounds-checked so a
/// truncated file fails with a clear message instead of reading garbage.
class Cursor {
 public:
  Cursor(const std::vector<std::byte>& data, const std::string& path)
      : data_(data), path_(path) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read_into(&value, sizeof(T));
    return value;
  }

  void read_into(void* dest, std::size_t bytes) {
    SFG_CHECK_MSG(pos_ + bytes <= data_.size(),
                  "snapshot '" << path_ << "' is truncated (needed "
                               << bytes << " bytes at offset " << pos_
                               << ", file has " << data_.size() << ")");
    if (bytes == 0) return;  // dest may be a null .data() of an empty array
    std::memcpy(dest, data_.data() + pos_, bytes);
    pos_ += bytes;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::vector<std::byte>& data_;
  const std::string& path_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  const auto& t = crc_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  while (bytes >= 8) {  // slicing-by-8 fast path (little-endian layout)
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    bytes -= 8;
  }
  for (std::size_t i = 0; i < bytes; ++i)
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void SnapshotWriter::add_section(const std::string& name, const void* data,
                                 std::size_t bytes) {
  SFG_CHECK_MSG(!name.empty(), "snapshot section needs a name");
  for (const Section& s : sections_)
    SFG_CHECK_MSG(s.name != name,
                  "duplicate snapshot section '" << name << "'");
  Section s;
  s.name = name;
  s.payload.resize(bytes);
  if (bytes > 0) std::memcpy(s.payload.data(), data, bytes);
  sections_.push_back(std::move(s));
}

std::vector<std::byte> SnapshotWriter::serialize(
    const SnapshotIdentity& identity) const {
  std::vector<std::byte> file;
  append_bytes(file, kMagic.data(), kMagic.size());

  std::vector<std::byte> body;  // everything after the magic, before CRC
  append_value(body, kSnapshotVersion);
  append_value(body, identity.nex);
  append_value(body, identity.nproc);
  append_value(body, identity.nchunks);
  append_value(body, identity.rank);
  append_value(body, identity.nranks);
  append_value(body, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    append_value(body, static_cast<std::uint32_t>(s.name.size()));
    append_bytes(body, s.name.data(), s.name.size());
    append_value(body, static_cast<std::uint64_t>(s.payload.size()));
  }
  for (const Section& s : sections_)
    append_bytes(body, s.payload.data(), s.payload.size());

  const std::uint32_t crc = crc32(body.data(), body.size());
  append_bytes(file, body.data(), body.size());
  append_value(file, crc);
  return file;
}

void SnapshotWriter::write(const std::string& path,
                           const SnapshotIdentity& identity) const {
  const std::vector<std::byte> file = serialize(identity);
  atomic_write_file(path, file.data(), file.size());
}

void SnapshotWriter::write(BlobStore& store, const std::string& key,
                           const SnapshotIdentity& identity) const {
  const std::vector<std::byte> file = serialize(identity);
  store.write(key, file.data(), file.size());
}

SnapshotReader SnapshotReader::open(const std::string& path,
                                    const SnapshotIdentity& expected) {
  std::vector<std::byte> file;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    SFG_CHECK_MSG(in.good(), "cannot open snapshot '" << path << "'");
    const std::streamsize size = in.tellg();
    in.seekg(0);
    file.resize(static_cast<std::size_t>(size));
    if (size > 0)
      in.read(reinterpret_cast<char*>(file.data()), size);
    SFG_CHECK_MSG(in.good(), "cannot read snapshot '" << path << "'");
  }
  return parse(file, path, expected);
}

SnapshotReader SnapshotReader::open(const BlobStore& store,
                                    const std::string& key,
                                    const SnapshotIdentity& expected) {
  return parse(store.read(key), store.describe() + ":" + key, expected);
}

SnapshotReader SnapshotReader::parse(const std::vector<std::byte>& file,
                                     const std::string& label,
                                     const SnapshotIdentity& expected) {
  const std::string& path = label;
  SFG_CHECK_MSG(file.size() >= kMagic.size() + sizeof(std::uint32_t),
                "snapshot '" << path << "' is truncated (only "
                             << file.size() << " bytes)");
  SFG_CHECK_MSG(std::memcmp(file.data(), kMagic.data(), kMagic.size()) == 0,
                "'" << path << "' is not an SFG snapshot (bad magic)");

  // Verify the trailing CRC over everything between magic and CRC before
  // trusting any field.
  const std::size_t body_size =
      file.size() - kMagic.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, file.data() + kMagic.size() + body_size,
              sizeof(stored_crc));
  const std::uint32_t computed_crc =
      crc32(file.data() + kMagic.size(), body_size);
  SFG_CHECK_MSG(stored_crc == computed_crc,
                "snapshot '" << path
                             << "' failed CRC check (corrupted or "
                                "truncated file)");

  std::vector<std::byte> body(file.begin() + static_cast<std::ptrdiff_t>(
                                                 kMagic.size()),
                              file.end() - sizeof(std::uint32_t));
  Cursor cur(body, path);

  const std::uint32_t version = cur.read<std::uint32_t>();
  SFG_CHECK_MSG(version == kSnapshotVersion,
                "snapshot '" << path << "' has format version " << version
                             << ", this build reads version "
                             << kSnapshotVersion);

  SnapshotReader reader;
  reader.identity_.nex = cur.read<std::int32_t>();
  reader.identity_.nproc = cur.read<std::int32_t>();
  reader.identity_.nchunks = cur.read<std::int32_t>();
  reader.identity_.rank = cur.read<std::int32_t>();
  reader.identity_.nranks = cur.read<std::int32_t>();
  SFG_CHECK_MSG(
      reader.identity_ == expected,
      "snapshot '" << path << "' was written for NEX=" << reader.identity_.nex
                   << " NPROC=" << reader.identity_.nproc << " nchunks="
                   << reader.identity_.nchunks << " rank="
                   << reader.identity_.rank << "/" << reader.identity_.nranks
                   << ", but this run expects NEX=" << expected.nex
                   << " NPROC=" << expected.nproc << " nchunks="
                   << expected.nchunks << " rank=" << expected.rank << "/"
                   << expected.nranks);

  const std::uint32_t nsections = cur.read<std::uint32_t>();
  std::vector<std::pair<std::string, std::uint64_t>> table;
  table.reserve(nsections);
  for (std::uint32_t i = 0; i < nsections; ++i) {
    const std::uint32_t name_len = cur.read<std::uint32_t>();
    std::string name(name_len, '\0');
    cur.read_into(name.data(), name_len);
    const std::uint64_t bytes = cur.read<std::uint64_t>();
    table.emplace_back(std::move(name), bytes);
  }
  for (auto& [name, bytes] : table) {
    std::vector<std::byte> payload(static_cast<std::size_t>(bytes));
    cur.read_into(payload.data(), payload.size());
    reader.sections_.emplace_back(std::move(name), std::move(payload));
  }
  SFG_CHECK_MSG(cur.pos() == body.size(),
                "snapshot '" << path << "' has " << (body.size() - cur.pos())
                             << " trailing bytes after the last section");
  return reader;
}

bool SnapshotReader::has(const std::string& name) const {
  for (const auto& [n, _] : sections_)
    if (n == name) return true;
  return false;
}

const std::vector<std::byte>& SnapshotReader::section(
    const std::string& name) const {
  for (const auto& [n, payload] : sections_)
    if (n == name) return payload;
  SFG_CHECK_MSG(false, "snapshot has no section '" << name << "'");
  throw CheckError("unreachable");
}

}  // namespace sfg::io

#pragma once

/// \file container.hpp
/// The `sfg_io` single-file chunked container (ISSUE 8): one seekable file
/// holding many named, individually CRC-32'd chunks behind a chunk index —
/// the aggregated-write layout that replaces the one-file-per-rank(-per-
/// interval) pattern whose file COUNT, not bandwidth, is the Figure 5
/// scaling wall (3.2M mesher files at 62K ranks). The design extends the
/// `sfg_snapshot` primitives (same CRC-32, same bounds-checked parse
/// discipline) the way Hapla et al.'s DMPlex parallel mesh I/O aggregates
/// per-rank data into shared containers.
///
/// File layout (little-endian, as written by the host):
///
///   header   8 bytes  magic "SFGCONT\0"
///            u32      format version (kContainerVersion)
///            u32      reserved (0)
///   chunks   per chunk record:
///            u32      chunk marker "CHNK"
///            u32      name length
///            u64      payload bytes
///            name bytes, payload bytes
///            u32      CRC-32 of the payload
///   index    u32      index marker "XDNI"
///            u32      chunk count
///            per entry: u32 name length, name bytes,
///                       u64 record offset, u64 payload bytes, u32 CRC-32
///            u32      CRC-32 over the index body (count + entries)
///   footer   u64      index offset
///            u32      CRC-32 of the index-offset field
///            8 bytes  end magic "SFGCEND\0"
///
/// Commit protocol: `append` pwrites chunk records at the tail (overwriting
/// the previous index+footer, which `commit` re-emits after the new
/// chunks); `commit` writes index + footer, truncates any stale tail, and
/// fsyncs. A reader accepts a container ONLY when the footer sits exactly
/// at end-of-file and index + per-chunk CRCs all verify — a torn append or
/// truncation at ANY byte offset is rejected with a clear error, never
/// partially served. Appending an existing name supersedes it (the old
/// record becomes dead space, see dead_bytes(); `sfg_ioconv pack` compacts).
///
/// Instances are not thread-safe; `ContainerStore` (blob_store.hpp) adds
/// the lock the multi-rank writers share.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sfg::io {

inline constexpr std::uint32_t kContainerVersion = 1;

/// One chunk as listed by the index.
struct ChunkInfo {
  std::string name;
  std::uint64_t offset = 0;  ///< file offset of the chunk record
  std::uint64_t bytes = 0;   ///< payload bytes
  std::uint32_t crc = 0;     ///< CRC-32 of the payload
};

class Container {
 public:
  /// Random-access strategy for read-only opens: positioned reads
  /// (pread) or a whole-file read-only memory map.
  enum class ReadMode { Pread, Mmap };

  /// Create a new empty container at `path` (truncates an existing file),
  /// open for appending. The file is not valid to read until commit().
  static Container create(const std::string& path);
  /// Open an existing container for appending (full validation first), or
  /// create it when absent.
  static Container open_rw(const std::string& path);
  /// Open read-only; throws sfg::CheckError on any structural or CRC
  /// problem (bad magic, bad version, truncation anywhere, torn index).
  static Container open_ro(const std::string& path,
                           ReadMode mode = ReadMode::Pread);

  Container(Container&& other) noexcept;
  Container& operator=(Container&& other) noexcept;
  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;
  ~Container();

  const std::string& path() const { return path_; }
  bool writable() const { return writable_; }
  /// True when appends exist that commit() has not yet published.
  bool dirty() const { return dirty_; }

  // ---- writer ops (throw when opened read-only) ----
  /// Append one named chunk. A repeated name supersedes the old chunk in
  /// the index; its bytes become dead space until a pack/compaction.
  void append(const std::string& name, const void* data, std::size_t bytes);
  /// Publish every append so far: write index + footer at the tail,
  /// truncate stale bytes, fsync. The container on disk is valid exactly
  /// when the last commit() returned.
  void commit();

  // ---- reader ops ----
  bool has(const std::string& name) const;
  /// Index order (append order of the surviving chunks).
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }
  const ChunkInfo& info(const std::string& name) const;
  /// Read and CRC-verify one chunk's payload.
  std::vector<std::byte> read(const std::string& name) const;
  /// Zero-copy payload view (Mmap mode only); CRC-verified on first
  /// access to each chunk.
  std::span<const std::byte> view(const std::string& name) const;

  std::uint64_t file_bytes() const { return append_pos_; }
  /// Bytes of superseded chunk records still occupying the file.
  std::uint64_t dead_bytes() const { return dead_bytes_; }

  void close();

 private:
  Container() = default;
  void load_index_or_throw(std::uint64_t file_size);
  std::size_t index_of(const std::string& name) const;
  void pread_exact(void* dest, std::size_t bytes, std::uint64_t offset,
                   const char* what) const;
  void pwrite_exact_or_throw(const std::vector<std::byte>& data);
  void pwrite_exact_or_throw(const void* data, std::size_t bytes,
                             std::uint64_t offset);
  void verify_record_header(const ChunkInfo& c) const;

  std::string path_;
  int fd_ = -1;
  bool writable_ = false;
  bool dirty_ = false;
  std::uint64_t append_pos_ = 0;  ///< where the next record (or index) goes
  std::uint64_t dead_bytes_ = 0;
  std::vector<ChunkInfo> chunks_;
  // Mmap read path.
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  mutable std::vector<bool> view_verified_;
};

}  // namespace sfg::io

#pragma once

/// \file seismogram_io.hpp
/// ASCII seismogram output in the classic SPECFEM ".semd" style: one file
/// per component with "time value" rows, plus a combined reader for tests
/// and examples.

#include <string>

#include "solver/simulation.hpp"

namespace sfg {

/// Write `seis` as three files `<prefix>.{X,Y,Z}.semd` (time displacement
/// per line, scientific notation). Returns the total bytes written.
std::uint64_t write_seismogram(const std::string& prefix,
                               const Seismogram& seis);

/// Read one component file back.
Seismogram read_seismogram_component(const std::string& path, int component);

}  // namespace sfg

#pragma once

/// \file seismogram_io.hpp
/// ASCII seismogram output in the classic SPECFEM ".semd" style: one file
/// per component with "time value" rows, plus a combined reader for tests
/// and examples.

#include <memory>
#include <string>

#include "solver/simulation.hpp"

namespace sfg::io {
class BlobStore;
}

namespace sfg {

/// The exact text of one component file ("time value" rows, scientific
/// notation) — shared by the path and BlobStore writers so every backend
/// stores identical bytes.
std::string format_seismogram_component(const Seismogram& seis,
                                        int component);

/// Write `seis` as three files `<prefix>.{X,Y,Z}.semd` (time displacement
/// per line, scientific notation). Returns the total bytes written.
std::uint64_t write_seismogram(const std::string& prefix,
                               const Seismogram& seis);

/// Write the three components as blobs `<prefix>.{X,Y,Z}.semd` in `store`
/// (per-rank files or the single-container backend, ISSUE 8).
std::uint64_t write_seismogram(io::BlobStore& store,
                               const std::string& prefix,
                               const Seismogram& seis);

/// Read one component file back.
Seismogram read_seismogram_component(const std::string& path, int component);

/// Read one component back from blob `key` of `store`.
Seismogram read_seismogram_component(const io::BlobStore& store,
                                     const std::string& key, int component);

/// Open the DEFAULT seismogram sink of a run directory: the single
/// container `<dir>/seismograms.sfgc` holding every station's
/// `<code>.{X,Y,Z}.semd` blobs. Thread-safe for concurrent rank writers,
/// and O(1) filesystem objects per run however many stations record —
/// globe runs route their .semd output here instead of scattering three
/// loose files per station into the working directory.
std::unique_ptr<io::BlobStore> open_seismogram_sink(const std::string& dir);

}  // namespace sfg

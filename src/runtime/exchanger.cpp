#include "runtime/exchanger.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace sfg::smpi {

namespace {

constexpr int kTagPost = 9001;   ///< rank -> arbiter: candidate keys
constexpr int kTagReply = 9002;  ///< arbiter -> rank: (key, peer) pairs

/// Arbiter rank for a key: cheap splittable hash, uniform across ranks.
int arbiter_of(std::int64_t key, int nranks) {
  std::uint64_t z = static_cast<std::uint64_t>(key) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<int>((z ^ (z >> 31)) % static_cast<std::uint64_t>(nranks));
}

}  // namespace

Exchanger Exchanger::build(Communicator& comm,
                           std::vector<PointCandidate> candidates) {
  const int nranks = comm.size();
  const int self = comm.rank();

  // Local sanity: duplicate keys within one rank are a builder bug.
  {
    std::vector<std::int64_t> keys;
    keys.reserve(candidates.size());
    for (const auto& c : candidates) keys.push_back(c.key);
    std::sort(keys.begin(), keys.end());
    SFG_CHECK_MSG(std::adjacent_find(keys.begin(), keys.end()) == keys.end(),
                  "duplicate interface keys posted by rank " << self);
  }

  // ---- Phase 1: post candidate keys to their arbiters. ----
  std::vector<std::vector<std::int64_t>> post(
      static_cast<std::size_t>(nranks));
  for (const auto& c : candidates)
    post[static_cast<std::size_t>(arbiter_of(c.key, nranks))].push_back(c.key);

  std::vector<Request> reqs;
  for (int dest = 0; dest < nranks; ++dest) {
    const auto& keys = post[static_cast<std::size_t>(dest)];
    reqs.push_back(
        comm.isend_n(dest, kTagPost, keys.data(), keys.size()));
  }

  // ---- Phase 2: as arbiter, group keys by the set of posting ranks. ----
  // Exchange the maximum post size first so receive buffers can be sized
  // exactly (the classic MPI_Probe-free pattern).
  std::map<std::int64_t, std::vector<int>> groups;
  std::uint64_t my_max_post = 0;
  for (const auto& keys : post)
    my_max_post = std::max(my_max_post,
                           static_cast<std::uint64_t>(keys.size()));
  const std::uint64_t global_max_post =
      comm.allreduce_one(my_max_post, ReduceOp::Max);

  // Discovery receives use the bounded-wait path so a faulty transport
  // surfaces as SimulationAborted rather than a hang during setup.
  const RecvPolicy build_policy{};

  std::vector<std::int64_t> inbuf(static_cast<std::size_t>(global_max_post));
  for (int src = 0; src < nranks; ++src) {
    const std::size_t got =
        comm.recv_n_retry(src, kTagPost, inbuf.data(), inbuf.size(),
                          build_policy);
    for (std::size_t i = 0; i < got; ++i) groups[inbuf[i]].push_back(src);
  }
  comm.wait_all(reqs);

  // ---- Phase 3: reply (key, peer) pairs to every participant. ----
  std::vector<std::vector<std::int64_t>> reply(
      static_cast<std::size_t>(nranks));
  for (const auto& [key, ranks] : groups) {
    if (ranks.size() < 2) continue;
    for (int r : ranks) {
      for (int peer : ranks) {
        if (peer == r) continue;
        reply[static_cast<std::size_t>(r)].push_back(key);
        reply[static_cast<std::size_t>(r)].push_back(peer);
      }
    }
  }
  std::uint64_t my_max_reply = 0;
  for (const auto& v : reply)
    my_max_reply = std::max(my_max_reply,
                            static_cast<std::uint64_t>(v.size()));
  const std::uint64_t global_max_reply =
      comm.allreduce_one(my_max_reply, ReduceOp::Max);

  std::vector<Request> reply_reqs;
  for (int dest = 0; dest < nranks; ++dest) {
    const auto& v = reply[static_cast<std::size_t>(dest)];
    reply_reqs.push_back(comm.isend_n(dest, kTagReply, v.data(), v.size()));
  }

  // ---- Phase 4: build per-neighbour interfaces sorted by key. ----
  std::unordered_map<std::int64_t, int> key_to_local;
  key_to_local.reserve(candidates.size() * 2);
  for (const auto& c : candidates) key_to_local.emplace(c.key, c.local_point);

  std::map<int, std::vector<std::int64_t>> neighbor_keys;
  std::vector<std::int64_t> rbuf(static_cast<std::size_t>(global_max_reply));
  for (int src = 0; src < nranks; ++src) {
    const std::size_t got =
        comm.recv_n_retry(src, kTagReply, rbuf.data(), rbuf.size(),
                          build_policy);
    SFG_CHECK(got % 2 == 0);
    for (std::size_t i = 0; i < got; i += 2) {
      const std::int64_t key = rbuf[i];
      const int peer = static_cast<int>(rbuf[i + 1]);
      neighbor_keys[peer].push_back(key);
    }
  }
  comm.wait_all(reply_reqs);

  Exchanger ex;
  for (auto& [peer, keys] : neighbor_keys) {
    std::sort(keys.begin(), keys.end());
    Interface iface;
    iface.neighbor_rank = peer;
    iface.local_points.reserve(keys.size());
    for (std::int64_t key : keys) {
      auto it = key_to_local.find(key);
      SFG_CHECK_MSG(it != key_to_local.end(),
                    "arbiter reported unknown key to rank " << self);
      iface.local_points.push_back(it->second);
    }
    ex.interfaces_.push_back(std::move(iface));
  }
  ex.send_buffers_.resize(ex.interfaces_.size());
  ex.recv_buffers_.resize(ex.interfaces_.size());
  return ex;
}

void Exchanger::assemble_add(Communicator& comm, float* field,
                             int ncomp) const {
  assemble_add_begin(comm, field, ncomp);
  assemble_add_end(comm);
}

void Exchanger::assemble_add_begin(Communicator& comm, float* field,
                                   int ncomp) const {
  constexpr int kTagAssemble = kAssembleTag;
  SFG_CHECK_MSG(pending_field_ == nullptr,
                "assemble_add_begin called with an exchange already in "
                "flight");
  const std::size_t ni = interfaces_.size();

  // Snapshot local values into all send buffers BEFORE any accumulation so
  // that multi-rank shared points sum every owner's independent
  // contribution exactly once.
  for (std::size_t n = 0; n < ni; ++n) {
    const Interface& iface = interfaces_[n];
    auto& buf = send_buffers_[n];
    buf.resize(iface.local_points.size() * static_cast<std::size_t>(ncomp));
    std::size_t w = 0;
    for (int p : iface.local_points)
      for (int c = 0; c < ncomp; ++c)
        buf[w++] = field[static_cast<std::size_t>(p) * ncomp + c];
  }

  pending_requests_.clear();
  pending_requests_.reserve(2 * ni);
  for (std::size_t n = 0; n < ni; ++n) {
    auto& rbuf = recv_buffers_[n];
    rbuf.resize(send_buffers_[n].size());
    pending_requests_.push_back(
        comm.irecv_n(interfaces_[n].neighbor_rank, kTagAssemble, rbuf.data(),
                     rbuf.size()));
  }
  for (std::size_t n = 0; n < ni; ++n) {
    pending_requests_.push_back(
        comm.isend_n(interfaces_[n].neighbor_rank, kTagAssemble,
                     send_buffers_[n].data(), send_buffers_[n].size()));
  }
  pending_field_ = field;
  pending_ncomp_ = ncomp;
}

void Exchanger::assemble_add_end(Communicator& comm) const {
  SFG_CHECK_MSG(pending_field_ != nullptr,
                "assemble_add_end without a matching assemble_add_begin");
  // Bounded wait: a dropped halo message triggers retransmit-and-retry
  // instead of blocking forever (ISSUE 2 exchanger audit).
  comm.wait_all_retry(pending_requests_, recv_policy_);

  float* field = pending_field_;
  const int ncomp = pending_ncomp_;
  for (std::size_t n = 0; n < interfaces_.size(); ++n) {
    const Interface& iface = interfaces_[n];
    const auto& rbuf = recv_buffers_[n];
    std::size_t r = 0;
    for (int p : iface.local_points)
      for (int c = 0; c < ncomp; ++c)
        field[static_cast<std::size_t>(p) * ncomp + c] += rbuf[r++];
  }
  pending_requests_.clear();
  pending_field_ = nullptr;
  pending_ncomp_ = 0;
}

void Exchanger::assemble_min(Communicator& comm, float* field,
                             int ncomp) const {
  // Distinct tag keeps a setup-time min-combine from ever crossing an
  // in-flight additive halo exchange.
  constexpr int kTagMin = kAssembleTag + 1;
  SFG_CHECK_MSG(pending_field_ == nullptr,
                "assemble_min called with an exchange already in flight");
  const std::size_t ni = interfaces_.size();
  for (std::size_t n = 0; n < ni; ++n) {
    const Interface& iface = interfaces_[n];
    auto& buf = send_buffers_[n];
    buf.resize(iface.local_points.size() * static_cast<std::size_t>(ncomp));
    std::size_t w = 0;
    for (int p : iface.local_points)
      for (int c = 0; c < ncomp; ++c)
        buf[w++] = field[static_cast<std::size_t>(p) * ncomp + c];
  }
  std::vector<Request> reqs;
  reqs.reserve(2 * ni);
  for (std::size_t n = 0; n < ni; ++n) {
    auto& rbuf = recv_buffers_[n];
    rbuf.resize(send_buffers_[n].size());
    reqs.push_back(comm.irecv_n(interfaces_[n].neighbor_rank, kTagMin,
                                rbuf.data(), rbuf.size()));
  }
  for (std::size_t n = 0; n < ni; ++n) {
    reqs.push_back(comm.isend_n(interfaces_[n].neighbor_rank, kTagMin,
                                send_buffers_[n].data(),
                                send_buffers_[n].size()));
  }
  comm.wait_all_retry(reqs, recv_policy_);
  for (std::size_t n = 0; n < ni; ++n) {
    const Interface& iface = interfaces_[n];
    const auto& rbuf = recv_buffers_[n];
    std::size_t r = 0;
    for (int p : iface.local_points)
      for (int c = 0; c < ncomp; ++c) {
        float& v = field[static_cast<std::size_t>(p) * ncomp + c];
        v = std::min(v, rbuf[r]);
        ++r;
      }
  }
}

std::uint64_t Exchanger::floats_per_exchange(int ncomp) const {
  std::uint64_t total = 0;
  for (const auto& iface : interfaces_)
    total += 2ull * iface.local_points.size() *
             static_cast<std::uint64_t>(ncomp);
  return total;
}

}  // namespace sfg::smpi

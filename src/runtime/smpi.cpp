#include "runtime/smpi.hpp"

#include <exception>
#include <thread>

namespace sfg::smpi {

// ---- World ----

World::World(int nranks) : nranks_(nranks) {
  SFG_CHECK_MSG(nranks >= 1, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  comms_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comms_.push_back(std::unique_ptr<Communicator>(new Communicator(this, r)));
  }
}

World::~World() = default;

Communicator& World::comm(int rank) {
  SFG_CHECK(rank >= 0 && rank < nranks_);
  return *comms_[static_cast<std::size_t>(rank)];
}

void World::deliver(int dest, int src, int tag, const void* data,
                    std::size_t bytes) {
  SFG_CHECK_MSG(dest >= 0 && dest < nranks_, "send to invalid rank " << dest);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    Message msg;
    msg.tag = tag;
    msg.payload.resize(bytes);
    if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
    box.queues[{src, tag}].push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::size_t World::take(int self, int src, int tag, void* data,
                        std::size_t max_bytes) {
  SFG_CHECK_MSG(src >= 0 && src < nranks_, "recv from invalid rank " << src);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::make_pair(src, tag);
  box.cv.wait(lock, [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto it = box.queues.find(key);
  Message msg = std::move(it->second.front());
  it->second.erase(it->second.begin());
  SFG_CHECK_MSG(msg.payload.size() <= max_bytes,
                "message of " << msg.payload.size()
                              << " bytes exceeds receive buffer of "
                              << max_bytes);
  if (!msg.payload.empty())
    std::memcpy(data, msg.payload.data(), msg.payload.size());
  return msg.payload.size();
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_.mutex);
  const std::uint64_t gen = barrier_.generation;
  if (++barrier_.arrived == nranks_) {
    barrier_.arrived = 0;
    ++barrier_.generation;
    barrier_.cv.notify_all();
  } else {
    barrier_.cv.wait(lock, [&] { return barrier_.generation != gen; });
  }
}

// ---- Communicator ----

int Communicator::size() const { return world_->size(); }

void Communicator::record(TraceEvent::Kind kind, int peer,
                          std::uint64_t bytes, double mpi_seconds) {
  if (!trace_enabled_) {
    pending_flops_ = 0;
    segment_timer_.reset();
    return;
  }
  TraceEvent ev;
  ev.kind = kind;
  ev.peer = peer;
  ev.bytes = bytes;
  ev.mpi_seconds = mpi_seconds;
  ev.compute_seconds = segment_timer_.seconds() - mpi_seconds;
  if (ev.compute_seconds < 0.0) ev.compute_seconds = 0.0;
  ev.compute_flops = pending_flops_;
  trace_.push_back(ev);
  pending_flops_ = 0;
  segment_timer_.reset();
}

void Communicator::send_bytes(int dest, int tag, const void* data,
                              std::size_t bytes) {
  WallTimer t;
  world_->deliver(dest, rank_, tag, data, bytes);
  const double dt = t.seconds();
  stats_.send_seconds += dt;
  stats_.bytes_sent += bytes;
  ++stats_.send_count;
  record(TraceEvent::Kind::Send, dest, bytes, dt);
}

std::size_t Communicator::recv_bytes(int src, int tag, void* data,
                                     std::size_t max_bytes) {
  WallTimer t;
  const std::size_t got = world_->take(rank_, src, tag, data, max_bytes);
  const double dt = t.seconds();
  stats_.recv_seconds += dt;
  stats_.bytes_received += got;
  ++stats_.recv_count;
  record(TraceEvent::Kind::Recv, src, got, dt);
  return got;
}

Request Communicator::isend_bytes(int dest, int tag, const void* data,
                                  std::size_t bytes) {
  // Eager delivery at post time; the Request is a completed handle.
  WallTimer t;
  world_->deliver(dest, rank_, tag, data, bytes);
  const double dt = t.seconds();
  stats_.send_seconds += dt;
  stats_.bytes_sent += bytes;
  ++stats_.send_count;
  record(TraceEvent::Kind::Send, dest, bytes, dt);
  Request req;
  req.kind = Request::Kind::Send;
  req.peer = dest;
  req.tag = tag;
  return req;
}

Request Communicator::irecv_bytes(int src, int tag, void* data,
                                  std::size_t max_bytes) {
  Request req;
  req.kind = Request::Kind::Recv;
  req.peer = src;
  req.tag = tag;
  req.dest = data;
  req.max_bytes = max_bytes;
  return req;
}

void Communicator::wait(Request& request) {
  switch (request.kind) {
    case Request::Kind::None:
    case Request::Kind::Send:
      return;  // sends complete at post time
    case Request::Kind::Recv: {
      WallTimer t;
      request.received_bytes = world_->take(rank_, request.peer, request.tag,
                                            request.dest, request.max_bytes);
      const double dt = t.seconds();
      stats_.recv_seconds += dt;
      stats_.bytes_received += request.received_bytes;
      ++stats_.recv_count;
      record(TraceEvent::Kind::Recv, request.peer, request.received_bytes,
             dt);
      request.kind = Request::Kind::None;
      return;
    }
  }
}

void Communicator::wait_all(std::vector<Request>& requests) {
  for (Request& r : requests) wait(r);
}

void Communicator::barrier() {
  WallTimer t;
  world_->barrier_wait();
  const double dt = t.seconds();
  stats_.collective_seconds += dt;
  ++stats_.collective_count;
  record(TraceEvent::Kind::Barrier, -1, 0, dt);
}

void Communicator::gather_bytes(int root, const void* data, std::size_t bytes,
                                void* out) {
  WallTimer t;
  constexpr int kGatherTag = -434343;
  if (rank_ == root) {
    SFG_CHECK(out != nullptr);
    auto* base = static_cast<std::byte*>(out);
    if (bytes > 0)
      std::memcpy(base + static_cast<std::size_t>(rank_) * bytes, data, bytes);
    for (int src = 0; src < size(); ++src) {
      if (src == root) continue;
      const std::size_t got = world_->take(
          rank_, src, kGatherTag,
          base + static_cast<std::size_t>(src) * bytes, bytes);
      SFG_CHECK(got == bytes);
    }
  } else {
    world_->deliver(root, rank_, kGatherTag, data, bytes);
  }
  const double dt = t.seconds();
  stats_.collective_seconds += dt;
  ++stats_.collective_count;
  record(TraceEvent::Kind::Gather, root, bytes, dt);
}

// ---- run_ranks ----

std::vector<CommStats> run_ranks(
    int nranks, const std::function<void(Communicator&)>& body,
    bool enable_trace, std::vector<std::vector<TraceEvent>>* traces_out) {
  World world(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    Communicator& comm = world.comm(r);
    comm.enable_trace(enable_trace);
    threads.emplace_back([&, r]() {
      try {
        body(world.comm(r));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);

  std::vector<CommStats> stats;
  stats.reserve(static_cast<std::size_t>(nranks));
  if (traces_out) traces_out->clear();
  for (int r = 0; r < nranks; ++r) {
    stats.push_back(world.comm(r).stats());
    if (traces_out) traces_out->push_back(world.comm(r).trace());
  }
  return stats;
}

}  // namespace sfg::smpi

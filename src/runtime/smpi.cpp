#include "runtime/smpi.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <thread>

namespace sfg::smpi {

// ---- World ----

World::World(int nranks) : nranks_(nranks) {
  SFG_CHECK_MSG(nranks >= 1, "world needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  comms_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comms_.push_back(std::unique_ptr<Communicator>(new Communicator(this, r)));
  }
}

World::~World() = default;

Communicator& World::comm(int rank) {
  SFG_CHECK(rank >= 0 && rank < nranks_);
  return *comms_[static_cast<std::size_t>(rank)];
}

void World::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(abort_mutex_);
    if (!aborted_.load(std::memory_order_relaxed)) abort_reason_ = reason;
  }
  aborted_.store(true, std::memory_order_release);
  // Wake every rank blocked in a mailbox or the barrier; their wait
  // predicates observe the abort flag and throw SimulationAborted.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_.mutex);
    barrier_.cv.notify_all();
  }
}

void World::throw_aborted() const {
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(abort_mutex_);
    reason = abort_reason_;
  }
  throw SimulationAborted(reason.empty() ? "simulation aborted" : reason);
}

void World::deliver(int dest, int src, int tag, const void* data,
                    std::size_t bytes, CommStats* sender_stats) {
  SFG_CHECK_MSG(dest >= 0 && dest < nranks_, "send to invalid rank " << dest);
  check_aborted();
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    const auto key = std::make_pair(src, tag);
    Message msg;
    msg.tag = tag;
    msg.seq = box.next_seq[key]++;
    msg.release = Clock::now();
    msg.payload.resize(bytes);
    if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);

    FaultPlan::Decision verdict;
    if (plan_ != nullptr)
      verdict = plan_->decide_message(src, dest, tag, msg.seq);
    if (!verdict.fault) {
      box.queues[key].push_back(std::move(msg));
    } else {
      switch (verdict.kind) {
        case MessageFaultRule::Kind::Drop:
          // Held in limbo until the receiver requests a retransmit —
          // modelling a transport that retransmits on NACK.
          box.limbo[key].push_back(std::move(msg));
          if (sender_stats) ++sender_stats->messages_dropped;
          break;
        case MessageFaultRule::Kind::Duplicate: {
          Message copy = msg;  // same sequence number on purpose
          box.queues[key].push_back(std::move(msg));
          box.queues[key].push_back(std::move(copy));
          if (sender_stats) ++sender_stats->messages_duplicated;
          break;
        }
        case MessageFaultRule::Kind::Delay:
          msg.release = Clock::now() + std::chrono::duration_cast<
                                           Clock::duration>(
                                           std::chrono::duration<double>(
                                               verdict.delay_seconds));
          box.queues[key].push_back(std::move(msg));
          if (sender_stats) ++sender_stats->messages_delayed;
          break;
      }
    }
  }
  box.cv.notify_all();
}

std::optional<std::size_t> World::take_impl(
    int self, int src, int tag, void* data, std::size_t max_bytes,
    const std::optional<Clock::time_point>& deadline, CommStats* stats) {
  SFG_CHECK_MSG(src >= 0 && src < nranks_, "recv from invalid rank " << src);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::make_pair(src, tag);

  for (;;) {
    if (aborted()) throw_aborted();
    const Clock::time_point now = Clock::now();
    auto it = box.queues.find(key);
    std::optional<Clock::time_point> next_release;
    if (it != box.queues.end()) {
      auto& queue = it->second;
      const std::uint64_t expected = box.expected_seq[key];
      // Purge stale duplicates (seq already consumed), then look for the
      // next in-sequence message that has been released.
      for (std::size_t i = 0; i < queue.size();) {
        if (queue[i].seq < expected) {
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
          if (stats) ++stats->duplicates_discarded;
          continue;
        }
        if (queue[i].seq == expected) {
          if (queue[i].release <= now) {
            Message msg = std::move(queue[i]);
            queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
            ++box.expected_seq[key];
            // Purge any remaining copies of the sequence number just
            // consumed, so duplicate accounting does not wait for a
            // subsequent receive on this channel.
            for (std::size_t j = i; j < queue.size();) {
              if (queue[j].seq < box.expected_seq[key]) {
                queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(j));
                if (stats) ++stats->duplicates_discarded;
              } else {
                ++j;
              }
            }
            SFG_CHECK_MSG(msg.payload.size() <= max_bytes,
                          "message of " << msg.payload.size()
                                        << " bytes exceeds receive buffer of "
                                        << max_bytes);
            if (!msg.payload.empty())
              std::memcpy(data, msg.payload.data(), msg.payload.size());
            return msg.payload.size();
          }
          next_release = queue[i].release;  // delayed: wake when visible
        }
        ++i;
      }
    }

    // Nothing deliverable yet: sleep until a new message, the release time
    // of a delayed in-sequence message, or the caller's deadline.
    std::optional<Clock::time_point> wake = deadline;
    if (next_release && (!wake || *next_release < *wake))
      wake = next_release;
    if (deadline && now >= *deadline) return std::nullopt;
    if (wake)
      box.cv.wait_until(lock, *wake);
    else
      box.cv.wait(lock);
  }
}

std::size_t World::take(int self, int src, int tag, void* data,
                        std::size_t max_bytes, CommStats* stats) {
  auto got = take_impl(self, src, tag, data, max_bytes, std::nullopt, stats);
  SFG_CHECK(got.has_value());
  return *got;
}

std::optional<std::size_t> World::take_timeout(int self, int src, int tag,
                                               void* data,
                                               std::size_t max_bytes,
                                               double timeout_seconds,
                                               CommStats* stats) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  return take_impl(self, src, tag, data, max_bytes, deadline, stats);
}

void World::retransmit(int self, int src, int tag, CommStats* stats) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    const auto key = std::make_pair(src, tag);
    auto it = box.limbo.find(key);
    if (it != box.limbo.end() && !it->second.empty()) {
      auto& queue = box.queues[key];
      for (Message& msg : it->second) queue.push_back(std::move(msg));
      it->second.clear();
    }
  }
  if (stats) ++stats->retransmits_requested;
  box.cv.notify_all();
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_.mutex);
  check_aborted();
  const std::uint64_t gen = barrier_.generation;
  if (++barrier_.arrived == nranks_) {
    barrier_.arrived = 0;
    ++barrier_.generation;
    barrier_.cv.notify_all();
  } else {
    barrier_.cv.wait(lock, [&] {
      return barrier_.generation != gen || aborted();
    });
    if (barrier_.generation == gen) throw_aborted();
  }
}

// ---- Communicator ----

int Communicator::size() const { return world_->size(); }

void Communicator::record(TraceEvent::Kind kind, int peer,
                          std::uint64_t bytes, double mpi_seconds) {
  if (!trace_enabled_) {
    pending_flops_ = 0;
    segment_timer_.reset();
    return;
  }
  TraceEvent ev;
  ev.kind = kind;
  ev.peer = peer;
  ev.bytes = bytes;
  ev.mpi_seconds = mpi_seconds;
  ev.compute_seconds = segment_timer_.seconds() - mpi_seconds;
  if (ev.compute_seconds < 0.0) ev.compute_seconds = 0.0;
  ev.compute_flops = pending_flops_;
  trace_.push_back(ev);
  pending_flops_ = 0;
  segment_timer_.reset();
}

void Communicator::notify_step(int step) {
  if (world_->plan_ == nullptr) return;
  if (!world_->plan_->death_at(rank_, step)) return;
  ++stats_.fault_aborts;
  record(TraceEvent::Kind::Fault, -1, 0, 0.0);
  std::ostringstream os;
  os << "rank " << rank_ << " killed by fault plan at step " << step;
  world_->abort(os.str());
  throw SimulationAborted(os.str());
}

void Communicator::check_collective_fault() {
  world_->check_aborted();
  if (world_->plan_ == nullptr) return;
  const CollectiveTimeoutRule* rule =
      world_->plan_->collective_timeout_at(rank_,
                                           stats_.collective_count + 1);
  if (rule == nullptr) return;
  ++stats_.fault_aborts;
  // The modelled timeout cost lands in the trace so replay can price it.
  record(TraceEvent::Kind::Fault, -1, 0, rule->timeout_seconds);
  std::ostringstream os;
  os << "collective #" << (stats_.collective_count + 1) << " on rank "
     << rank_ << " timed out (fault plan)";
  world_->abort(os.str());
  throw SimulationAborted(os.str());
}

void Communicator::send_bytes(int dest, int tag, const void* data,
                              std::size_t bytes) {
  WallTimer t;
  world_->deliver(dest, rank_, tag, data, bytes, &stats_);
  const double dt = t.seconds();
  stats_.send_seconds += dt;
  stats_.bytes_sent += bytes;
  ++stats_.send_count;
  ++stats_.sent_size_hist[static_cast<std::size_t>(msg_size_bucket(bytes))];
  record(TraceEvent::Kind::Send, dest, bytes, dt);
}

std::size_t Communicator::recv_bytes(int src, int tag, void* data,
                                     std::size_t max_bytes) {
  WallTimer t;
  const std::size_t got =
      world_->take(rank_, src, tag, data, max_bytes, &stats_);
  const double dt = t.seconds();
  stats_.recv_seconds += dt;
  stats_.bytes_received += got;
  ++stats_.recv_count;
  record(TraceEvent::Kind::Recv, src, got, dt);
  return got;
}

std::optional<std::size_t> Communicator::recv_bytes_timeout(
    int src, int tag, void* data, std::size_t max_bytes,
    double timeout_seconds) {
  WallTimer t;
  const auto got = world_->take_timeout(rank_, src, tag, data, max_bytes,
                                        timeout_seconds, &stats_);
  const double dt = t.seconds();
  if (!got.has_value()) {
    record(TraceEvent::Kind::Fault, src, 0, dt);
    return std::nullopt;
  }
  stats_.recv_seconds += dt;
  stats_.bytes_received += *got;
  ++stats_.recv_count;
  record(TraceEvent::Kind::Recv, src, *got, dt);
  return got;
}

std::size_t Communicator::recv_bytes_retry(int src, int tag, void* data,
                                           std::size_t max_bytes,
                                           const RecvPolicy& policy) {
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    const auto got =
        recv_bytes_timeout(src, tag, data, max_bytes,
                           policy.timeout_seconds);
    if (got.has_value()) return *got;
    if (attempt == policy.max_retries) break;
    ++stats_.recv_retries;
    request_retransmit(src, tag);
  }
  std::ostringstream os;
  os << "rank " << rank_ << " recv from " << src << " tag " << tag
     << " timed out after " << (policy.max_retries + 1) << " attempts of "
     << policy.timeout_seconds << " s";
  world_->abort(os.str());
  throw SimulationAborted(os.str());
}

void Communicator::request_retransmit(int src, int tag) {
  world_->retransmit(rank_, src, tag, &stats_);
}

Request Communicator::isend_bytes(int dest, int tag, const void* data,
                                  std::size_t bytes) {
  // Eager delivery at post time; the Request is a completed handle.
  WallTimer t;
  world_->deliver(dest, rank_, tag, data, bytes, &stats_);
  const double dt = t.seconds();
  stats_.send_seconds += dt;
  stats_.bytes_sent += bytes;
  ++stats_.send_count;
  ++stats_.sent_size_hist[static_cast<std::size_t>(msg_size_bucket(bytes))];
  record(TraceEvent::Kind::Send, dest, bytes, dt);
  Request req;
  req.kind = Request::Kind::Send;
  req.peer = dest;
  req.tag = tag;
  return req;
}

Request Communicator::irecv_bytes(int src, int tag, void* data,
                                  std::size_t max_bytes) {
  Request req;
  req.kind = Request::Kind::Recv;
  req.peer = src;
  req.tag = tag;
  req.dest = data;
  req.max_bytes = max_bytes;
  return req;
}

void Communicator::wait(Request& request) {
  switch (request.kind) {
    case Request::Kind::None:
    case Request::Kind::Send:
      return;  // sends complete at post time
    case Request::Kind::Recv: {
      WallTimer t;
      request.received_bytes =
          world_->take(rank_, request.peer, request.tag, request.dest,
                       request.max_bytes, &stats_);
      const double dt = t.seconds();
      stats_.recv_seconds += dt;
      stats_.bytes_received += request.received_bytes;
      ++stats_.recv_count;
      record(TraceEvent::Kind::Recv, request.peer, request.received_bytes,
             dt);
      request.kind = Request::Kind::None;
      return;
    }
  }
}

void Communicator::wait_retry(Request& request, const RecvPolicy& policy) {
  switch (request.kind) {
    case Request::Kind::None:
    case Request::Kind::Send:
      return;
    case Request::Kind::Recv:
      request.received_bytes =
          recv_bytes_retry(request.peer, request.tag, request.dest,
                           request.max_bytes, policy);
      request.kind = Request::Kind::None;
      return;
  }
}

void Communicator::wait_all(std::vector<Request>& requests) {
  for (Request& r : requests) wait(r);
}

void Communicator::wait_all_retry(std::vector<Request>& requests,
                                  const RecvPolicy& policy) {
  for (Request& r : requests) wait_retry(r, policy);
}

void Communicator::barrier() {
  check_collective_fault();
  WallTimer t;
  world_->barrier_wait();
  const double dt = t.seconds();
  stats_.collective_seconds += dt;
  ++stats_.collective_count;
  record(TraceEvent::Kind::Barrier, -1, 0, dt);
}

void Communicator::gather_bytes(int root, const void* data, std::size_t bytes,
                                void* out) {
  check_collective_fault();
  WallTimer t;
  constexpr int kGatherTag = -434343;
  if (rank_ == root) {
    SFG_CHECK(out != nullptr);
    auto* base = static_cast<std::byte*>(out);
    if (bytes > 0)
      std::memcpy(base + static_cast<std::size_t>(rank_) * bytes, data, bytes);
    for (int src = 0; src < size(); ++src) {
      if (src == root) continue;
      const std::size_t got = world_->take(
          rank_, src, kGatherTag,
          base + static_cast<std::size_t>(src) * bytes, bytes, &stats_);
      SFG_CHECK(got == bytes);
    }
  } else {
    world_->deliver(root, rank_, kGatherTag, data, bytes, &stats_);
  }
  const double dt = t.seconds();
  stats_.collective_seconds += dt;
  ++stats_.collective_count;
  record(TraceEvent::Kind::Gather, root, bytes, dt);
}

// ---- run_ranks ----

namespace {

std::vector<CommStats> run_ranks_impl(
    int nranks, const FaultPlan* plan,
    const std::function<void(Communicator&)>& body, bool enable_trace,
    std::vector<std::vector<TraceEvent>>* traces_out) {
  World world(nranks);
  if (plan != nullptr) world.set_fault_plan(plan);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    Communicator& comm = world.comm(r);
    comm.enable_trace(enable_trace);
    threads.emplace_back([&, r]() {
      try {
        body(world.comm(r));
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // A dead rank must not leave its peers blocked forever: tear the
        // world down so everyone unblocks with SimulationAborted.
        std::ostringstream os;
        os << "rank " << r << " terminated with an exception";
        world.abort(os.str());
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root cause over the SimulationAborted cascade it triggered.
  std::exception_ptr first_abort;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const SimulationAborted&) {
      if (!first_abort) first_abort = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (first_abort) std::rethrow_exception(first_abort);

  std::vector<CommStats> stats;
  stats.reserve(static_cast<std::size_t>(nranks));
  if (traces_out) traces_out->clear();
  for (int r = 0; r < nranks; ++r) {
    stats.push_back(world.comm(r).stats());
    if (traces_out) traces_out->push_back(world.comm(r).trace());
  }
  return stats;
}

}  // namespace

std::vector<CommStats> run_ranks(
    int nranks, const std::function<void(Communicator&)>& body,
    bool enable_trace, std::vector<std::vector<TraceEvent>>* traces_out) {
  return run_ranks_impl(nranks, nullptr, body, enable_trace, traces_out);
}

std::vector<CommStats> run_ranks_with_faults(
    int nranks, const FaultPlan& plan,
    const std::function<void(Communicator&)>& body, bool enable_trace,
    std::vector<std::vector<TraceEvent>>* traces_out) {
  return run_ranks_impl(nranks, &plan, body, enable_trace, traces_out);
}

}  // namespace sfg::smpi

#pragma once

/// \file fault.hpp
/// Deterministic fault injection for the smpi runtime (ISSUE 2).
///
/// The paper's 62K-core campaigns (§6) only succeeded because failures at
/// scale were planned for; this reproduction models them explicitly. A
/// FaultPlan is a seeded, declarative schedule of injectable faults:
///
///   - message drop        : a delivery is diverted to a "limbo" store on
///                           the destination and only becomes visible after
///                           the receiver requests a retransmit (modelling
///                           a transport-level retransmission),
///   - message duplication : the payload is enqueued twice with the same
///                           sequence number; the reliability layer in
///                           World::take discards the duplicate,
///   - delayed delivery    : the message is enqueued but stays invisible
///                           until a wall-clock release time,
///   - rank death          : a rank aborts when the solver reaches a given
///                           time step (Communicator::notify_step),
///   - collective timeout  : a rank's n-th collective call times out.
///
/// Probabilistic rules draw their verdict from a pure hash of
/// (seed, src, dst, tag, seq), so a seeded plan injects the *same* faults
/// on the *same* messages run after run, independent of thread scheduling.
/// Occurrence-capped wildcard rules are the one exception: the cap is
/// consumed first-come-first-served across channels.
///
/// Plans never match the runtime's internal negative tags (allreduce /
/// gather plumbing) unless a rule names such a tag exactly — dropping those
/// would break collectives that have no retry path by design.

#include <cstdint>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace sfg::smpi {

/// Thrown when a run is torn down by the fault layer: a planned rank death
/// or collective timeout, an exhausted recv retry budget, or any peer
/// aborting the shared World. All ranks blocked in communication are woken
/// and throw this instead of deadlocking.
class SimulationAborted : public std::runtime_error {
 public:
  explicit SimulationAborted(const std::string& what)
      : std::runtime_error(what) {}
};

/// Wildcards for message-fault rules.
inline constexpr int kAnyRank = -1;
inline constexpr int kAnyTag = std::numeric_limits<int>::min();

struct MessageFaultRule {
  enum class Kind : std::uint8_t { Drop, Duplicate, Delay };
  Kind kind = Kind::Drop;
  int src = kAnyRank;  ///< sending rank, kAnyRank = any
  int dst = kAnyRank;  ///< receiving rank, kAnyRank = any
  int tag = kAnyTag;   ///< kAnyTag matches any *user* tag (>= 0)
  /// Probability a matching message is hit; decided by a pure hash of
  /// (plan seed, src, dst, tag, seq) so it is reproducible run-to-run.
  double probability = 1.0;
  /// Stop after this many injections (-1 = unlimited).
  int max_occurrences = -1;
  /// Delay rules: how long the message stays invisible to the receiver.
  double delay_seconds = 0.0;
};

struct RankDeathRule {
  int rank = 0;
  int step = 0;  ///< dies when notify_step(step) is reached
};

struct CollectiveTimeoutRule {
  int rank = 0;
  std::uint64_t nth_collective = 1;  ///< 1-based count on that rank
  double timeout_seconds = 0.0;      ///< modelled cost charged to the trace
};

/// A seeded, declarative schedule of faults. Built once before run_ranks
/// and shared read-only by every rank (occurrence counters are internally
/// synchronized).
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0x5F61F417u) : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  std::uint64_t seed() const { return seed_; }

  // ---- declarative builders ----
  void add_message_fault(const MessageFaultRule& rule) {
    message_rules_.push_back(rule);
    occurrences_.push_back(0);
  }
  void drop_messages(int src, int dst, int tag, double probability = 1.0,
                     int max_occurrences = -1) {
    MessageFaultRule r;
    r.kind = MessageFaultRule::Kind::Drop;
    r.src = src;
    r.dst = dst;
    r.tag = tag;
    r.probability = probability;
    r.max_occurrences = max_occurrences;
    add_message_fault(r);
  }
  void duplicate_messages(int src, int dst, int tag,
                          double probability = 1.0,
                          int max_occurrences = -1) {
    MessageFaultRule r;
    r.kind = MessageFaultRule::Kind::Duplicate;
    r.src = src;
    r.dst = dst;
    r.tag = tag;
    r.probability = probability;
    r.max_occurrences = max_occurrences;
    add_message_fault(r);
  }
  void delay_messages(int src, int dst, int tag, double delay_seconds,
                      double probability = 1.0, int max_occurrences = -1) {
    MessageFaultRule r;
    r.kind = MessageFaultRule::Kind::Delay;
    r.src = src;
    r.dst = dst;
    r.tag = tag;
    r.probability = probability;
    r.max_occurrences = max_occurrences;
    r.delay_seconds = delay_seconds;
    add_message_fault(r);
  }
  void kill_rank(int rank, int step) { deaths_.push_back({rank, step}); }
  void timeout_collective(int rank, std::uint64_t nth_collective,
                          double timeout_seconds) {
    coll_timeouts_.push_back({rank, nth_collective, timeout_seconds});
  }

  bool empty() const {
    return message_rules_.empty() && deaths_.empty() &&
           coll_timeouts_.empty();
  }

  // ---- runtime queries ----

  struct Decision {
    MessageFaultRule::Kind kind = MessageFaultRule::Kind::Drop;
    bool fault = false;
    double delay_seconds = 0.0;
  };

  /// Verdict for one message, identified by its per-channel sequence
  /// number. Consumes occurrence budget when a capped rule fires.
  Decision decide_message(int src, int dst, int tag,
                          std::uint64_t seq) const;

  /// True if `rank` is scheduled to die at `step`.
  bool death_at(int rank, int step) const;

  /// Timeout rule (if any) for the given rank's nth collective call.
  const CollectiveTimeoutRule* collective_timeout_at(
      int rank, std::uint64_t nth) const;

 private:
  std::uint64_t seed_;
  std::vector<MessageFaultRule> message_rules_;
  mutable std::vector<int> occurrences_;  ///< per-rule injection counts
  mutable std::mutex mutex_;              ///< guards occurrences_
  std::vector<RankDeathRule> deaths_;
  std::vector<CollectiveTimeoutRule> coll_timeouts_;
};

}  // namespace sfg::smpi

#pragma once

/// \file exchanger.hpp
/// Distributed assembly of the global system (paper §2.4): grid points on
/// slice faces, edges and corners are shared between ranks, and the
/// contributions computed on each rank must be summed across all owners
/// before time marching.
///
/// Discovery uses a scalable key-rendezvous: every shared point carries an
/// integer key that all ranks compute identically (builders derive it from
/// the global mesh lattice, so matching is exact — no floating-point
/// tolerance). Each key is hashed to an "arbiter" rank; ranks post their
/// candidate keys to arbiters, arbiters group them and tell every
/// participant who else shares each key. Assembly then exchanges packed
/// buffers with each neighbour and sums — the pre-exchange snapshot
/// guarantees correctness for points shared by any number of ranks
/// (chunk corners on the cubed sphere are shared by 3 slices, slice
/// corners by 4).

#include <cstdint>
#include <vector>

#include "runtime/smpi.hpp"

namespace sfg::smpi {

/// Shared points with one neighbouring rank, in an order both sides agree
/// on (ascending key).
struct Interface {
  int neighbor_rank = -1;
  std::vector<int> local_points;  ///< local global-point ids, key-ascending
};

/// Candidate shared point: a cross-rank-consistent integer key plus the
/// local global-point id it refers to on this rank.
struct PointCandidate {
  std::int64_t key;
  int local_point;
};

class Exchanger {
 public:
  /// Tag used for assembly payload exchange; public so tests and fault
  /// plans can target halo traffic precisely.
  static constexpr int kAssembleTag = 9100;

  /// Collective over all ranks of `comm`: discover which candidate points
  /// are shared with which ranks. Candidates with keys nobody else posted
  /// produce no interface entries.
  static Exchanger build(Communicator& comm,
                         std::vector<PointCandidate> candidates);

  const std::vector<Interface>& interfaces() const { return interfaces_; }

  /// Number of distinct ranks this rank shares points with.
  int num_neighbors() const { return static_cast<int>(interfaces_.size()); }

  /// Sum contributions across ranks: for an interleaved field of `ncomp`
  /// floats per global point (field[point * ncomp + c]), exchange the
  /// pre-assembly local values with every neighbour and add. Collective.
  /// Equivalent to assemble_add_begin immediately followed by
  /// assemble_add_end.
  void assemble_add(Communicator& comm, float* field, int ncomp) const;

  /// Split assembly, first half: snapshot the interface values of `field`
  /// and post all sends and receives, then return without waiting. The
  /// caller may compute on any point NOT shared with a neighbour until
  /// assemble_add_end — that window is where interior-element work hides
  /// the communication (paper §5's overlap). At most one exchange may be
  /// in flight per Exchanger; `field` must stay alive until the end call.
  void assemble_add_begin(Communicator& comm, float* field, int ncomp) const;

  /// Split assembly, second half: wait for the neighbours' contributions
  /// and accumulate them into the field passed to assemble_add_begin.
  void assemble_add_end(Communicator& comm) const;

  /// Min-combine across ranks: like assemble_add but every shared value is
  /// replaced by the minimum over all owners. Setup-time collective (used
  /// to make the clustered-LTS point levels and min marching rates
  /// cross-rank consistent); blocking, no split variant.
  void assemble_min(Communicator& comm, float* field, int ncomp) const;

  /// Total floats exchanged per assemble_add call (both directions),
  /// for communication-volume accounting.
  std::uint64_t floats_per_exchange(int ncomp) const;

  /// Bounded-wait policy applied to every receive in assembly and
  /// discovery. Receives either complete, retry after a timeout (pulling
  /// back fault-dropped messages), or abort the world — never hang.
  void set_recv_policy(const RecvPolicy& policy) { recv_policy_ = policy; }
  const RecvPolicy& recv_policy() const { return recv_policy_; }

 private:
  RecvPolicy recv_policy_{};
  std::vector<Interface> interfaces_;
  // scratch buffers sized once (mutable usage avoided: sized in build).
  mutable std::vector<std::vector<float>> send_buffers_;
  mutable std::vector<std::vector<float>> recv_buffers_;
  // split-assembly state between begin and end
  mutable std::vector<Request> pending_requests_;
  mutable float* pending_field_ = nullptr;
  mutable int pending_ncomp_ = 0;
};

}  // namespace sfg::smpi

#include "runtime/fault.hpp"

namespace sfg::smpi {

namespace {

/// SplitMix64-style finalizer over the combined message identity. Pure:
/// the same (seed, src, dst, tag, seq) always yields the same verdict.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double hash_to_unit(std::uint64_t seed, std::uint64_t rule_index, int src,
                    int dst, int tag, std::uint64_t seq) {
  std::uint64_t h = seed + 0x9E3779B97F4A7C15ull * (rule_index + 1);
  h = mix(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) |
               (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
                << 32)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix(h ^ seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool rule_matches(const MessageFaultRule& r, int src, int dst, int tag) {
  if (r.src != kAnyRank && r.src != src) return false;
  if (r.dst != kAnyRank && r.dst != dst) return false;
  // Wildcard tags never match the runtime's internal (negative) channels.
  if (r.tag == kAnyTag) return tag >= 0;
  return r.tag == tag;
}

}  // namespace

FaultPlan::Decision FaultPlan::decide_message(int src, int dst, int tag,
                                              std::uint64_t seq) const {
  Decision d;
  if (message_rules_.empty()) return d;
  for (std::size_t i = 0; i < message_rules_.size(); ++i) {
    const MessageFaultRule& r = message_rules_[i];
    if (!rule_matches(r, src, dst, tag)) continue;
    if (r.probability < 1.0 &&
        hash_to_unit(seed_, i, src, dst, tag, seq) >= r.probability)
      continue;
    if (r.max_occurrences >= 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (occurrences_[i] >= r.max_occurrences) continue;
      ++occurrences_[i];
    }
    d.fault = true;
    d.kind = r.kind;
    d.delay_seconds = r.delay_seconds;
    return d;  // first matching rule wins
  }
  return d;
}

bool FaultPlan::death_at(int rank, int step) const {
  for (const RankDeathRule& r : deaths_)
    if (r.rank == rank && r.step == step) return true;
  return false;
}

const CollectiveTimeoutRule* FaultPlan::collective_timeout_at(
    int rank, std::uint64_t nth) const {
  for (const CollectiveTimeoutRule& r : coll_timeouts_)
    if (r.rank == rank && r.nth_collective == nth) return &r;
  return nullptr;
}

}  // namespace sfg::smpi

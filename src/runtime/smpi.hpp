#pragma once

/// \file smpi.hpp
/// An in-process message-passing runtime with the MPI subset
/// SPECFEM3D_GLOBE uses, plus built-in IPM-style instrumentation
/// (paper §5) and event-trace capture for PSiNS-style replay.
///
/// Substitution note (see DESIGN.md): the paper ran on 12K-62K real cores.
/// Here each rank is a thread in one process; the *algorithm* (buffer
/// packing, nonblocking exchange, assembly sums, collectives) runs for
/// real, while large-scale timing comes from replaying the captured trace
/// through a parametric machine model (src/perf). Blocking sends are
/// eager-buffered so that rank counts far beyond the host's core count
/// still make progress.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace sfg::smpi {

/// Reduction operations supported by allreduce.
enum class ReduceOp { Sum, Min, Max };

/// One recorded communication event, for IPM-style accounting and
/// PSiNS-style replay. `compute_seconds` / `compute_flops` describe the
/// computation segment since the previous event on the same rank.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    Send,       ///< isend or blocking send posted
    Recv,       ///< message received (recv or wait on irecv)
    Barrier,
    Allreduce,
    Gather,
  };
  Kind kind;
  int peer = -1;              ///< destination (Send) / source (Recv)
  std::uint64_t bytes = 0;    ///< payload size
  double mpi_seconds = 0.0;   ///< wall time spent inside the call
  double compute_seconds = 0.0;
  std::uint64_t compute_flops = 0;  ///< virtual work since previous event
};

/// Per-rank IPM-style summary: time, bytes and counts per call type.
struct CommStats {
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  double collective_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t send_count = 0;
  std::uint64_t recv_count = 0;
  std::uint64_t collective_count = 0;

  double total_seconds() const {
    return send_seconds + recv_seconds + collective_seconds;
  }
};

class World;

/// Handle for a nonblocking operation; resolved by Communicator::wait.
struct Request {
  enum class Kind : std::uint8_t { None, Send, Recv } kind = Kind::None;
  int peer = -1;
  int tag = -1;
  void* dest = nullptr;           ///< irecv destination buffer
  std::size_t max_bytes = 0;      ///< irecv capacity
  std::size_t received_bytes = 0; ///< filled by wait
};

/// Per-rank endpoint. All communication goes through this object; it is
/// NOT thread-safe (each rank owns exactly one, as in MPI).
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Eager-buffered blocking send (always completes locally).
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  /// Blocking receive from `src` with `tag`; returns byte count.
  std::size_t recv_bytes(int src, int tag, void* data, std::size_t max_bytes);

  /// Nonblocking send: same delivery as send_bytes, but the time is
  /// attributed when posted and the request participates in wait_all.
  Request isend_bytes(int dest, int tag, const void* data, std::size_t bytes);
  /// Nonblocking receive: completion happens inside wait/wait_all.
  Request irecv_bytes(int src, int tag, void* data, std::size_t max_bytes);

  void wait(Request& request);
  void wait_all(std::vector<Request>& requests);

  void barrier();

  /// Elementwise allreduce over `count` values of T in-place.
  template <typename T>
  void allreduce(T* values, std::size_t count, ReduceOp op);

  template <typename T>
  T allreduce_one(T value, ReduceOp op) {
    allreduce(&value, 1, op);
    return value;
  }

  /// Gather fixed-size blocks to `root`; out must hold size()*bytes at root.
  void gather_bytes(int root, const void* data, std::size_t bytes, void* out);

  // Typed convenience wrappers.
  template <typename T>
  void send_n(int dest, int tag, const T* data, std::size_t count) {
    send_bytes(dest, tag, data, count * sizeof(T));
  }
  template <typename T>
  std::size_t recv_n(int src, int tag, T* data, std::size_t count) {
    return recv_bytes(src, tag, data, count * sizeof(T)) / sizeof(T);
  }
  template <typename T>
  Request isend_n(int dest, int tag, const T* data, std::size_t count) {
    return isend_bytes(dest, tag, data, count * sizeof(T));
  }
  template <typename T>
  Request irecv_n(int src, int tag, T* data, std::size_t count) {
    return irecv_bytes(src, tag, data, count * sizeof(T));
  }

  /// Credit `flops` of virtual computation to the trace (used by the
  /// solver so that replay does not depend on oversubscribed wall time).
  void add_virtual_compute(std::uint64_t flops) { pending_flops_ += flops; }

  const CommStats& stats() const { return stats_; }
  const std::vector<TraceEvent>& trace() const { return trace_; }
  /// Enable per-event trace capture (off by default; stats always on).
  void enable_trace(bool on) { trace_enabled_ = on; }

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  void record(TraceEvent::Kind kind, int peer, std::uint64_t bytes,
              double mpi_seconds);

  World* world_;
  int rank_;
  CommStats stats_;
  std::vector<TraceEvent> trace_;
  bool trace_enabled_ = false;
  std::uint64_t pending_flops_ = 0;
  WallTimer segment_timer_;  ///< measures compute segments between calls
};

/// Shared state for a set of ranks; create via run_ranks or directly for
/// step-by-step tests.
class World {
 public:
  explicit World(int nranks);
  ~World();

  int size() const { return nranks_; }
  /// The endpoint for `rank`; each must be used by exactly one thread.
  Communicator& comm(int rank);

 private:
  friend class Communicator;

  struct Message {
    int tag;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // keyed by (src, tag); FIFO per key preserves MPI ordering semantics.
    std::map<std::pair<int, int>, std::vector<Message>> queues;
  };
  struct BarrierState {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
  };
  struct ReduceState {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
    std::vector<std::byte> accumulator;
    std::function<void(void*, const void*)> combine;
  };

  void deliver(int dest, int src, int tag, const void* data,
               std::size_t bytes);
  std::size_t take(int self, int src, int tag, void* data,
                   std::size_t max_bytes);
  void barrier_wait();

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Communicator>> comms_;
  BarrierState barrier_;
  ReduceState reduce_;
};

/// Launch `nranks` threads each running `body(comm)`; joins all threads.
/// The first exception thrown by any rank is rethrown after join.
/// Returns per-rank comm statistics.
std::vector<CommStats> run_ranks(
    int nranks, const std::function<void(Communicator&)>& body,
    bool enable_trace = false,
    std::vector<std::vector<TraceEvent>>* traces_out = nullptr);

// ---- template implementation ----

namespace detail {
template <typename T>
void combine_values(T* acc, const T* in, std::size_t count, ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < count; ++i) acc[i] += in[i];
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < count; ++i)
        if (in[i] < acc[i]) acc[i] = in[i];
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < count; ++i)
        if (in[i] > acc[i]) acc[i] = in[i];
      break;
  }
}
}  // namespace detail

template <typename T>
void Communicator::allreduce(T* values, std::size_t count, ReduceOp op) {
  // Simple two-phase implementation: reduce to rank 0 through the shared
  // accumulator, then broadcast. Counted as one collective per rank.
  static_assert(std::is_trivially_copyable_v<T>);
  WallTimer t;
  const std::size_t bytes = count * sizeof(T);

  // Phase 1: everyone contributes into rank-0-owned accumulator.
  // Implemented with plain messages to keep World simple and the pattern
  // observable in traces: ranks send to 0, rank 0 combines and sends back.
  constexpr int kReduceTag = -424242;
  if (rank_ == 0) {
    std::vector<T> incoming(count);
    for (int src = 1; src < size(); ++src) {
      const std::size_t got =
          world_->take(0, src, kReduceTag, incoming.data(), bytes);
      SFG_CHECK(got == bytes);
      detail::combine_values(values, incoming.data(), count, op);
    }
    for (int dest = 1; dest < size(); ++dest)
      world_->deliver(dest, 0, kReduceTag + 1, values, bytes);
  } else {
    world_->deliver(0, rank_, kReduceTag, values, bytes);
    const std::size_t got =
        world_->take(rank_, 0, kReduceTag + 1, values, bytes);
    SFG_CHECK(got == bytes);
  }

  stats_.collective_seconds += t.seconds();
  ++stats_.collective_count;
  record(TraceEvent::Kind::Allreduce, -1, bytes, t.seconds());
}

}  // namespace sfg::smpi

#pragma once

/// \file smpi.hpp
/// An in-process message-passing runtime with the MPI subset
/// SPECFEM3D_GLOBE uses, plus built-in IPM-style instrumentation
/// (paper §5) and event-trace capture for PSiNS-style replay.
///
/// Substitution note (see DESIGN.md): the paper ran on 12K-62K real cores.
/// Here each rank is a thread in one process; the *algorithm* (buffer
/// packing, nonblocking exchange, assembly sums, collectives) runs for
/// real, while large-scale timing comes from replaying the captured trace
/// through a parametric machine model (src/perf). Blocking sends are
/// eager-buffered so that rank counts far beyond the host's core count
/// still make progress.
///
/// Reliability layer (ISSUE 2): every (src, dst, tag) channel carries
/// per-message sequence numbers. Receives deliver strictly in sequence
/// order, discard duplicates, and can time out and request a retransmit of
/// messages a FaultPlan diverted to limbo. A World-wide abort (planned
/// rank death, collective timeout, exhausted retries, or any rank dying
/// with an exception) wakes every blocked rank with SimulationAborted
/// instead of deadlocking.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "runtime/fault.hpp"

namespace sfg::smpi {

/// Reduction operations supported by allreduce.
enum class ReduceOp { Sum, Min, Max };

/// One recorded communication event, for IPM-style accounting and
/// PSiNS-style replay. `compute_seconds` / `compute_flops` describe the
/// computation segment since the previous event on the same rank.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    Send,       ///< isend or blocking send posted
    Recv,       ///< message received (recv or wait on irecv)
    Barrier,
    Allreduce,
    Gather,
    Fault,      ///< injected fault or recv retry; mpi_seconds = lost time
  };
  Kind kind;
  int peer = -1;              ///< destination (Send) / source (Recv)
  std::uint64_t bytes = 0;    ///< payload size
  double mpi_seconds = 0.0;   ///< wall time spent inside the call
  double compute_seconds = 0.0;
  std::uint64_t compute_flops = 0;  ///< virtual work since previous event
};

/// Per-rank IPM-style summary: time, bytes and counts per call type, plus
/// fault-injection accounting (ISSUE 2) and a fixed-bucket message-size
/// histogram (ISSUE 3: the sfg_metrics report's comm section).
struct CommStats {
  /// Message-size buckets: bucket i counts point-to-point sends of
  /// size <= 64 << i bytes; the last bucket is unbounded. 16 buckets span
  /// 64 B .. 2 MiB, the range the assembly exchange actually uses.
  static constexpr int kMsgSizeBuckets = 16;

  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  double collective_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t send_count = 0;
  std::uint64_t recv_count = 0;
  std::uint64_t collective_count = 0;
  std::array<std::uint64_t, kMsgSizeBuckets> sent_size_hist{};

  // ---- fault counters ----
  std::uint64_t messages_dropped = 0;     ///< this rank's sends diverted to limbo
  std::uint64_t messages_duplicated = 0;  ///< this rank's sends enqueued twice
  std::uint64_t messages_delayed = 0;     ///< this rank's sends held back
  std::uint64_t duplicates_discarded = 0; ///< stale copies purged on receive
  std::uint64_t recv_retries = 0;         ///< recv timeouts followed by retry
  std::uint64_t retransmits_requested = 0;
  std::uint64_t fault_aborts = 0;         ///< plan-triggered aborts on this rank

  double total_seconds() const {
    return send_seconds + recv_seconds + collective_seconds;
  }
  std::uint64_t faults_injected() const {
    return messages_dropped + messages_duplicated + messages_delayed;
  }
};

/// Bucket index of a message of `bytes` in CommStats::sent_size_hist.
inline int msg_size_bucket(std::uint64_t bytes) {
  int b = 0;
  while (b < CommStats::kMsgSizeBuckets - 1 &&
         bytes > (std::uint64_t{64} << b))
    ++b;
  return b;
}

/// Bounded-wait policy for receive paths that must not hang: wait up to
/// `timeout_seconds`, then request a retransmit and try again, at most
/// `max_retries` times before aborting the world.
struct RecvPolicy {
  double timeout_seconds = 30.0;
  int max_retries = 2;
};

class World;

/// Handle for a nonblocking operation; resolved by Communicator::wait.
struct Request {
  enum class Kind : std::uint8_t { None, Send, Recv } kind = Kind::None;
  int peer = -1;
  int tag = -1;
  void* dest = nullptr;           ///< irecv destination buffer
  std::size_t max_bytes = 0;      ///< irecv capacity
  std::size_t received_bytes = 0; ///< filled by wait
};

/// Per-rank endpoint. All communication goes through this object; it is
/// NOT thread-safe (each rank owns exactly one, as in MPI).
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Eager-buffered blocking send (always completes locally).
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  /// Blocking receive from `src` with `tag`; returns byte count.
  std::size_t recv_bytes(int src, int tag, void* data, std::size_t max_bytes);

  /// Receive with a deadline: returns std::nullopt if nothing arrived
  /// within `timeout_seconds` (no retransmit is requested).
  std::optional<std::size_t> recv_bytes_timeout(int src, int tag, void* data,
                                                std::size_t max_bytes,
                                                double timeout_seconds);

  /// Bounded retry-with-timeout receive: on each timeout, request a
  /// retransmit of limbo messages on (src, tag) and try again. Exhausting
  /// the retry budget aborts the whole world (every blocked rank throws
  /// SimulationAborted) — a hang is never an outcome.
  std::size_t recv_bytes_retry(int src, int tag, void* data,
                               std::size_t max_bytes,
                               const RecvPolicy& policy);

  /// Nonblocking send: same delivery as send_bytes, but the time is
  /// attributed when posted and the request participates in wait_all.
  Request isend_bytes(int dest, int tag, const void* data, std::size_t bytes);
  /// Nonblocking receive: completion happens inside wait/wait_all.
  Request irecv_bytes(int src, int tag, void* data, std::size_t max_bytes);

  void wait(Request& request);
  void wait_all(std::vector<Request>& requests);
  /// wait with the bounded retry-with-timeout path on receive requests.
  void wait_retry(Request& request, const RecvPolicy& policy);
  void wait_all_retry(std::vector<Request>& requests,
                      const RecvPolicy& policy);

  /// Move any limbo (fault-dropped) messages on (src, tag) back into the
  /// live queue, as a transport-level retransmission would.
  void request_retransmit(int src, int tag);

  void barrier();

  /// Elementwise allreduce over `count` values of T in-place.
  template <typename T>
  void allreduce(T* values, std::size_t count, ReduceOp op);

  template <typename T>
  T allreduce_one(T value, ReduceOp op) {
    allreduce(&value, 1, op);
    return value;
  }

  /// Gather fixed-size blocks to `root`; out must hold size()*bytes at root.
  void gather_bytes(int root, const void* data, std::size_t bytes, void* out);

  // Typed convenience wrappers.
  template <typename T>
  void send_n(int dest, int tag, const T* data, std::size_t count) {
    send_bytes(dest, tag, data, count * sizeof(T));
  }
  template <typename T>
  std::size_t recv_n(int src, int tag, T* data, std::size_t count) {
    return recv_bytes(src, tag, data, count * sizeof(T)) / sizeof(T);
  }
  template <typename T>
  std::size_t recv_n_retry(int src, int tag, T* data, std::size_t count,
                           const RecvPolicy& policy) {
    return recv_bytes_retry(src, tag, data, count * sizeof(T), policy) /
           sizeof(T);
  }
  template <typename T>
  Request isend_n(int dest, int tag, const T* data, std::size_t count) {
    return isend_bytes(dest, tag, data, count * sizeof(T));
  }
  template <typename T>
  Request irecv_n(int src, int tag, T* data, std::size_t count) {
    return irecv_bytes(src, tag, data, count * sizeof(T));
  }

  /// Solver hook: announce the start of time step `step`. Triggers any
  /// planned rank death (throws SimulationAborted after waking all peers).
  void notify_step(int step);

  /// Credit `flops` of virtual computation to the trace (used by the
  /// solver so that replay does not depend on oversubscribed wall time).
  void add_virtual_compute(std::uint64_t flops) { pending_flops_ += flops; }

  const CommStats& stats() const { return stats_; }
  const std::vector<TraceEvent>& trace() const { return trace_; }
  /// Enable per-event trace capture (off by default; stats always on).
  void enable_trace(bool on) { trace_enabled_ = on; }

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  void record(TraceEvent::Kind kind, int peer, std::uint64_t bytes,
              double mpi_seconds);
  /// Check the planned collective-timeout fault before a collective runs.
  void check_collective_fault();

  World* world_;
  int rank_;
  CommStats stats_;
  std::vector<TraceEvent> trace_;
  bool trace_enabled_ = false;
  std::uint64_t pending_flops_ = 0;
  WallTimer segment_timer_;  ///< measures compute segments between calls
};

/// Shared state for a set of ranks; create via run_ranks or directly for
/// step-by-step tests.
class World {
 public:
  explicit World(int nranks);
  ~World();

  int size() const { return nranks_; }
  /// The endpoint for `rank`; each must be used by exactly one thread.
  Communicator& comm(int rank);

  /// Install a fault plan (must outlive the World; call before any rank
  /// communicates). Null disables injection.
  void set_fault_plan(const FaultPlan* plan) { plan_ = plan; }

  /// Tear the world down: wake every rank blocked in communication; they
  /// (and any rank entering a call later) throw SimulationAborted.
  void abort(const std::string& reason);
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  friend class Communicator;

  using Clock = std::chrono::steady_clock;

  struct Message {
    int tag;
    std::uint64_t seq = 0;          ///< per-(src, tag) channel sequence
    Clock::time_point release{};    ///< visible to take() from this time
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // keyed by (src, tag); delivered in channel-sequence order.
    std::map<std::pair<int, int>, std::vector<Message>> queues;
    // fault-dropped messages waiting for a retransmit request.
    std::map<std::pair<int, int>, std::vector<Message>> limbo;
    // sender-side next sequence number per (src, tag) channel.
    std::map<std::pair<int, int>, std::uint64_t> next_seq;
    // receiver-side cursor: the sequence number take() delivers next.
    std::map<std::pair<int, int>, std::uint64_t> expected_seq;
  };
  struct BarrierState {
    std::mutex mutex;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
  };

  void deliver(int dest, int src, int tag, const void* data,
               std::size_t bytes, CommStats* sender_stats);
  std::size_t take(int self, int src, int tag, void* data,
                   std::size_t max_bytes, CommStats* stats);
  /// As take(), but gives up after `timeout_seconds` (returns nullopt).
  std::optional<std::size_t> take_timeout(int self, int src, int tag,
                                          void* data, std::size_t max_bytes,
                                          double timeout_seconds,
                                          CommStats* stats);
  void retransmit(int self, int src, int tag, CommStats* stats);
  void barrier_wait();
  [[noreturn]] void throw_aborted() const;
  void check_aborted() const {
    if (aborted()) throw_aborted();
  }

  /// Shared core of take/take_timeout; returns nullopt on timeout.
  std::optional<std::size_t> take_impl(
      int self, int src, int tag, void* data, std::size_t max_bytes,
      const std::optional<Clock::time_point>& deadline, CommStats* stats);

  int nranks_;
  const FaultPlan* plan_ = nullptr;
  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mutex_;  ///< guards abort_reason_
  std::string abort_reason_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Communicator>> comms_;
  BarrierState barrier_;
};

/// Launch `nranks` threads each running `body(comm)`; joins all threads.
/// The first exception thrown by any rank is rethrown after join (a rank
/// failing with a non-abort exception aborts the world so no peer
/// deadlocks, and that root-cause exception is preferred over the
/// SimulationAborted cascade it triggers).
/// Returns per-rank comm statistics.
std::vector<CommStats> run_ranks(
    int nranks, const std::function<void(Communicator&)>& body,
    bool enable_trace = false,
    std::vector<std::vector<TraceEvent>>* traces_out = nullptr);

/// As run_ranks, with a fault plan installed before any rank starts.
std::vector<CommStats> run_ranks_with_faults(
    int nranks, const FaultPlan& plan,
    const std::function<void(Communicator&)>& body,
    bool enable_trace = false,
    std::vector<std::vector<TraceEvent>>* traces_out = nullptr);

// ---- template implementation ----

namespace detail {
template <typename T>
void combine_values(T* acc, const T* in, std::size_t count, ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < count; ++i) acc[i] += in[i];
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < count; ++i)
        if (in[i] < acc[i]) acc[i] = in[i];
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < count; ++i)
        if (in[i] > acc[i]) acc[i] = in[i];
      break;
  }
}
}  // namespace detail

template <typename T>
void Communicator::allreduce(T* values, std::size_t count, ReduceOp op) {
  // Simple two-phase implementation: reduce to rank 0 through the shared
  // accumulator, then broadcast. Counted as one collective per rank.
  static_assert(std::is_trivially_copyable_v<T>);
  check_collective_fault();
  WallTimer t;
  const std::size_t bytes = count * sizeof(T);

  // Phase 1: everyone contributes into rank-0-owned accumulator.
  // Implemented with plain messages to keep World simple and the pattern
  // observable in traces: ranks send to 0, rank 0 combines and sends back.
  constexpr int kReduceTag = -424242;
  if (rank_ == 0) {
    std::vector<T> incoming(count);
    for (int src = 1; src < size(); ++src) {
      const std::size_t got =
          world_->take(0, src, kReduceTag, incoming.data(), bytes, &stats_);
      SFG_CHECK(got == bytes);
      detail::combine_values(values, incoming.data(), count, op);
    }
    for (int dest = 1; dest < size(); ++dest)
      world_->deliver(dest, 0, kReduceTag + 1, values, bytes, &stats_);
  } else {
    world_->deliver(0, rank_, kReduceTag, values, bytes, &stats_);
    const std::size_t got =
        world_->take(rank_, 0, kReduceTag + 1, values, bytes, &stats_);
    SFG_CHECK(got == bytes);
  }

  stats_.collective_seconds += t.seconds();
  ++stats_.collective_count;
  record(TraceEvent::Kind::Allreduce, -1, bytes, t.seconds());
}

}  // namespace sfg::smpi

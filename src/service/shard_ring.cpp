#include "service/shard_ring.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sfg::service {

namespace {

/// SplitMix64-style finalizer — the same pure-hash idiom the fault plan
/// uses for its verdicts (runtime/fault.cpp): deterministic and well
/// distributed, no RNG state.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Ring position of one (shard, replica) virtual node.
std::uint64_t vnode_position(int shard, int replica) {
  std::uint64_t h = 0x53464753u;  // "SFGS": domain-separate from key hashes
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(shard)));
  h = mix(h ^
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(replica)));
  return h;
}

}  // namespace

ShardRing::ShardRing(int nshards, const ShardRingOptions& options)
    : nshards_(nshards), modulo_(options.unsafe_modulo_ring) {
  SFG_CHECK_MSG(nshards >= 1, "shard ring needs at least one shard");
  SFG_CHECK_MSG(options.vnodes >= 1,
                "shard ring needs at least one vnode per shard");
  if (modulo_) return;
  ring_.reserve(static_cast<std::size_t>(nshards) *
                static_cast<std::size_t>(options.vnodes));
  for (int s = 0; s < nshards; ++s)
    for (int r = 0; r < options.vnodes; ++r)
      ring_.push_back({vnode_position(s, r), s});
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    // Position collisions across shards are astronomically unlikely, but
    // the shard tiebreak keeps the ring a pure function of its inputs
    // even then.
    return a.position != b.position ? a.position < b.position
                                    : a.shard < b.shard;
  });
}

int ShardRing::shard_for(std::uint64_t key) const {
  if (modulo_)
    return static_cast<int>(key % static_cast<std::uint64_t>(nshards_));
  // Keys are already FNV-1a content hashes, but a finalizer round keeps
  // routing independent of any structure in the key construction.
  const std::uint64_t h = mix(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t pos) { return p.position < pos; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->shard;
}

}  // namespace sfg::service

#include "service/result_store.hpp"

#include <cstdio>
#include <filesystem>

#include "common/check.hpp"
#include "io/snapshot.hpp"

namespace sfg::service {

namespace fs = std::filesystem;

namespace {

/// The snapshot identity pins the key the file claims to hold: low/high
/// 32 bits of the request hash in the nex/nproc fields, so a file moved
/// to the wrong name (or a hash mismatch) is rejected at open.
io::SnapshotIdentity identity_for(RequestKey key) {
  io::SnapshotIdentity id;
  id.nex = static_cast<std::int32_t>(static_cast<std::uint32_t>(key));
  id.nproc = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(key >> 32));
  id.nchunks = 0;
  id.rank = 0;
  id.nranks = 0;
  return id;
}

}  // namespace

ResultStore::ResultStore(const std::string& dir, io::IoBackendKind backend)
    : dir_(dir), backend_(backend) {
  fs::create_directories(dir_);
  store_ = io::make_store(backend,
                          backend == io::IoBackendKind::Container
                              ? dir_ + "/results"
                              : dir_);
  for (const std::string& name : store_->list()) {
    if (name.size() != 20 || name.substr(16) != ".res") continue;
    RequestKey key = 0;
    if (std::sscanf(name.c_str(), "%16lx", &key) == 1) index_.insert(key);
  }
}

std::string ResultStore::key_hex(RequestKey key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016lx",
                static_cast<unsigned long>(key));
  return buf;
}

std::string ResultStore::path_for(RequestKey key) const {
  return dir_ + "/" + key_hex(key) + ".res";
}

bool ResultStore::contains(RequestKey key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(key) != 0;
}

std::optional<JobResult> ResultStore::load(RequestKey key) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(key) == 0) return std::nullopt;
    ++reads_;
  }
  const auto reader = io::SnapshotReader::open(
      *store_, key_hex(key) + ".res", identity_for(key));
  const auto nstations = reader.read_value<std::int32_t>("nstations");
  JobResult result;
  result.seismograms.resize(static_cast<std::size_t>(nstations));
  for (std::int32_t s = 0; s < nstations; ++s) {
    Seismogram& seis = result.seismograms[static_cast<std::size_t>(s)];
    const std::string base = "s" + std::to_string(s) + ".";
    seis.time = reader.read_vector<double>(base + "time");
    const auto flat = reader.read_vector<double>(base + "displ");
    SFG_CHECK_MSG(flat.size() == seis.time.size() * 3,
                  "result station " << s << " sample counts disagree in "
                                    << path_for(key));
    seis.displ.resize(seis.time.size());
    for (std::size_t i = 0; i < seis.displ.size(); ++i)
      seis.displ[i] = {flat[i * 3 + 0], flat[i * 3 + 1], flat[i * 3 + 2]};
  }
  return result;
}

void ResultStore::store(RequestKey key, const JobResult& result) {
  io::SnapshotWriter writer;
  const auto nstations = static_cast<std::int32_t>(
      result.seismograms.size());
  writer.add_values("nstations", &nstations, 1);
  for (std::int32_t s = 0; s < nstations; ++s) {
    const Seismogram& seis =
        result.seismograms[static_cast<std::size_t>(s)];
    const std::string base = "s" + std::to_string(s) + ".";
    writer.add_vector(base + "time", seis.time);
    writer.add_values(base + "displ",
                      seis.displ.empty() ? nullptr
                                         : seis.displ.data()->data(),
                      seis.displ.size() * 3);
  }
  writer.write(*store_, key_hex(key) + ".res", identity_for(key));
  std::lock_guard<std::mutex> lock(mutex_);
  index_.insert(key);
  ++writes_;
}

std::uint64_t ResultStore::reads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reads_;
}

std::uint64_t ResultStore::writes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

}  // namespace sfg::service

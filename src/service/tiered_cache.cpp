#include "service/tiered_cache.hpp"

#include "common/check.hpp"

namespace sfg::service {

TieredCache::TieredCache(ResultStore& store, std::size_t max_entries)
    : store_(store), max_entries_(max_entries) {}

std::shared_ptr<const JobResult> TieredCache::get(RequestKey key,
                                                  CacheTier* tier) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++memory_hits_;
      touch_locked(key);
      if (tier != nullptr) *tier = CacheTier::Memory;
      return it->second.value;
    }
  }
  // Store tier, outside the LRU lock (ResultStore has its own; a CRC
  // parse of a large result should not stall memory-tier hits).
  std::optional<JobResult> loaded = store_.load(key);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!loaded.has_value()) {
    ++misses_;
    if (tier != nullptr) *tier = CacheTier::Miss;
    return nullptr;
  }
  ++store_hits_;
  if (tier != nullptr) *tier = CacheTier::Store;
  // Promote. Two threads racing on the same key parsed identical bytes;
  // keep the incumbent's copy (waiters may already share it).
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto value = std::make_shared<const JobResult>(*std::move(loaded));
    insert_locked(key, value);
    return value;
  }
  touch_locked(key);
  return it->second.value;
}

void TieredCache::put(RequestKey key, const JobResult& result) {
  store_.store(key, result);  // durable tier first: never cache-only
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    touch_locked(key);  // content-addressed: same key = same bytes
    return;
  }
  insert_locked(key, std::make_shared<const JobResult>(result));
}

bool TieredCache::contains(RequestKey key) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(key) != 0) return true;
  }
  return store_.contains(key);
}

void TieredCache::touch_locked(RequestKey key) {
  auto it = entries_.find(key);
  recency_.erase(it->second.where);
  recency_.push_front(key);
  it->second.where = recency_.begin();
}

void TieredCache::insert_locked(RequestKey key,
                                std::shared_ptr<const JobResult> value) {
  if (max_entries_ == 0) return;  // memory tier disabled
  recency_.push_front(key);
  entries_[key] = Entry{std::move(value), recency_.begin()};
  while (entries_.size() > max_entries_) {
    const RequestKey victim = recency_.back();
    recency_.pop_back();
    entries_.erase(victim);
    ++evictions_;
  }
}

std::size_t TieredCache::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t TieredCache::memory_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_hits_;
}

std::uint64_t TieredCache::store_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_hits_;
}

std::uint64_t TieredCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t TieredCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace sfg::service

#include "service/service.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"

namespace sfg::service {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

CampaignService::CampaignService(const ServiceConfig& config)
    : cfg_(config),
      basis_(4),
      scheduler_(config.admission, CostModel{config.pricing_machine}),
      queue_(config.queue_capacity),
      store_(config.work_dir + "/results", config.io_backend),
      mesh_cache_(basis_) {
  SFG_CHECK_MSG(cfg_.num_workers >= 1, "service needs at least one worker");
  if (cfg_.mesh_cache_max_resident > 0)
    mesh_cache_.configure_spill(cfg_.work_dir + "/mesh_cache",
                                cfg_.mesh_cache_max_resident);
  workers_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int w = 0; w < cfg_.num_workers; ++w)
    workers_.emplace_back([this] { worker_main(); });
}

CampaignService::~CampaignService() { shutdown(); }

int CampaignService::submit(const JobRequest& request) {
  const RequestKey key = request_key(request);
  int id = -1;
  bool enqueue = false;
  QueueEntry entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = static_cast<int>(records_.size());
    JobRecord rec;
    rec.id = id;
    rec.request = request;
    rec.key = key;
    ++stats_.submitted;

    if (store_.contains(key)) {
      // Served straight from the content-addressed store.
      rec.state = JobState::Done;
      rec.cache_hit = true;
      ++stats_.completed;
      ++stats_.cache_hits;
      registry_.histogram("service.job_wall_seconds", {0.1, 1, 10, 60})
          .record(0.0);
      records_.push_back(std::move(rec));
      return id;
    }
    if (auto it = inflight_.find(key); it != inflight_.end()) {
      // Same physics already queued or running: coalesce onto it.
      rec.state = JobState::Coalesced;
      waiters_[key].push_back(id);
      ++pending_;
      records_.push_back(std::move(rec));
      return id;
    }

    RejectionReason why;
    const std::optional<double> cost = scheduler_.admit(request, &why);
    if (!cost.has_value()) {
      rec.state = JobState::Rejected;
      rec.error = why.message;
      ++stats_.rejected;
      records_.push_back(std::move(rec));
      return id;
    }
    rec.state = JobState::Queued;
    rec.predicted_core_seconds = *cost;
    stats_.predicted_core_seconds += *cost;
    inflight_[key] = id;
    ++pending_;
    records_.push_back(std::move(rec));

    entry.job_id = id;
    entry.priority = request.priority;
    entry.cost_core_seconds = *cost;
    enqueue = true;
  }
  // Blocking backpressure OUTSIDE the service lock: a full queue stalls
  // this submitter without stalling workers or other submitters.
  if (enqueue && !queue_.submit(entry))
    fail_job(id, key, "service shut down before the job could be queued");
  return id;
}

void CampaignService::worker_main() {
  while (auto entry = queue_.pop()) run_one(*entry);
}

void CampaignService::run_one(const QueueEntry& entry) {
  JobRequest request;
  RequestKey key = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    JobRecord& rec = record_locked(entry.job_id);
    rec.state = JobState::Running;
    request = rec.request;
    key = rec.key;
  }
  // Execution-time store check: a reopened store or an earlier identical
  // campaign may already hold the result.
  if (store_.contains(key)) {
    complete_job(entry.job_id, key, /*cache_hit=*/true);
    return;
  }

  const std::string scratch =
      cfg_.work_dir + "/jobs/" + std::to_string(entry.job_id);
  WallTimer timer;
  try {
    ExecutionOutcome out = execute_job(request, mesh_cache_, scratch,
                                       cfg_.max_retries, cfg_.io_backend);
    store_.store(key, out.result);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      JobRecord& rec = record_locked(entry.job_id);
      rec.attempts = out.attempts;
      rec.resumed_from_step = out.resumed_from_step;
      rec.steps_executed = out.steps_executed;
      rec.wall_seconds = timer.seconds();
      stats_.retries += static_cast<std::uint64_t>(
          std::max(0, out.attempts - 1));
      const CostModel& model = scheduler_.cost_model();
      const double executed =
          priced_core_seconds(request, out.steps_executed, model);
      const double clean =
          priced_core_seconds(request, request.nsteps, model);
      stats_.priced_core_seconds += executed;
      stats_.retry_overhead_core_seconds += executed - clean;
      // What the same fault would have cost without checkpoints: the dead
      // attempt's steps plus a full cold re-run.
      if (out.attempts > 1 && !request.fault.empty()) {
        const std::int64_t cold_steps =
            request.nsteps +
            std::min(request.fault.kill_step, request.nsteps);
        stats_.cold_restart_core_seconds +=
            priced_core_seconds(request, cold_steps, model);
      } else {
        stats_.cold_restart_core_seconds += executed;
      }
      registry_.histogram("service.job_wall_seconds", {0.1, 1, 10, 60})
          .record(rec.wall_seconds);
    }
    complete_job(entry.job_id, key, /*cache_hit=*/false);
  } catch (const std::exception& e) {
    fail_job(entry.job_id, key, e.what());
  }
}

void CampaignService::complete_job(int id, RequestKey key, bool cache_hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  JobRecord& rec = record_locked(id);
  rec.state = JobState::Done;
  rec.cache_hit = cache_hit;
  ++stats_.completed;
  if (cache_hit) ++stats_.cache_hits;
  SFG_CHECK(pending_ > 0);
  --pending_;
  inflight_.erase(key);
  if (auto it = waiters_.find(key); it != waiters_.end()) {
    for (int w : it->second) {
      JobRecord& wrec = record_locked(w);
      wrec.state = JobState::Done;
      wrec.cache_hit = true;
      ++stats_.completed;
      ++stats_.cache_hits;
      SFG_CHECK(pending_ > 0);
      --pending_;
    }
    waiters_.erase(it);
  }
  all_done_.notify_all();
}

void CampaignService::fail_job(int id, RequestKey key,
                               const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  JobRecord& rec = record_locked(id);
  rec.state = JobState::Failed;
  rec.error = error;
  ++stats_.failed;
  SFG_CHECK(pending_ > 0);
  --pending_;
  inflight_.erase(key);
  if (auto it = waiters_.find(key); it != waiters_.end()) {
    for (int w : it->second) {
      JobRecord& wrec = record_locked(w);
      wrec.state = JobState::Failed;
      wrec.error = "primary job " + std::to_string(id) + " failed: " + error;
      ++stats_.failed;
      SFG_CHECK(pending_ > 0);
      --pending_;
    }
    waiters_.erase(it);
  }
  all_done_.notify_all();
}

void CampaignService::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [&] { return pending_ == 0; });
}

void CampaignService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();  // pending entries drain, then workers exit
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

JobRecord CampaignService::job(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return record_locked(id);
}

std::vector<JobRecord> CampaignService::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::optional<JobResult> CampaignService::result(int id) const {
  RequestKey key = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const JobRecord& rec = record_locked(id);
    if (rec.state != JobState::Done) return std::nullopt;
    key = rec.key;
  }
  return store_.load(key);
}

JobRecord& CampaignService::record_locked(int id) {
  SFG_CHECK_MSG(id >= 0 && id < static_cast<int>(records_.size()),
                "unknown job id " << id);
  return records_[static_cast<std::size_t>(id)];
}

const JobRecord& CampaignService::record_locked(int id) const {
  SFG_CHECK_MSG(id >= 0 && id < static_cast<int>(records_.size()),
                "unknown job id " << id);
  return records_[static_cast<std::size_t>(id)];
}

CampaignStats CampaignService::stats_locked() const {
  CampaignStats s = stats_;
  s.mesh_cache_hits = mesh_cache_.hits();
  s.mesh_cache_misses = mesh_cache_.misses();
  s.queue_peak = queue_.peak_size();
  s.wall_seconds = lifetime_.seconds();
  return s;
}

CampaignStats CampaignService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_locked();
}

const metrics::Registry& CampaignService::registry() {
  std::lock_guard<std::mutex> lock(mutex_);
  const CampaignStats s = stats_locked();
  registry_.counter("service.jobs_submitted").inc(
      s.submitted - registry_.counter("service.jobs_submitted").value());
  registry_.counter("service.jobs_completed").inc(
      s.completed - registry_.counter("service.jobs_completed").value());
  registry_.counter("service.jobs_failed").inc(
      s.failed - registry_.counter("service.jobs_failed").value());
  registry_.counter("service.jobs_rejected").inc(
      s.rejected - registry_.counter("service.jobs_rejected").value());
  registry_.counter("service.cache_hits").inc(
      s.cache_hits - registry_.counter("service.cache_hits").value());
  registry_.counter("service.retries").inc(
      s.retries - registry_.counter("service.retries").value());
  registry_.counter("service.mesh_cache_hits").inc(
      s.mesh_cache_hits -
      registry_.counter("service.mesh_cache_hits").value());
  registry_.gauge("service.queue_peak")
      .set(static_cast<double>(s.queue_peak));
  registry_.gauge("service.cache_hit_rate").set(s.cache_hit_rate());
  registry_.gauge("service.jobs_per_minute").set(s.jobs_per_minute());
  registry_.gauge("service.retry_overhead_core_seconds")
      .set(s.retry_overhead_core_seconds);
  return registry_;
}

void CampaignService::write_json_report(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const CampaignStats s = stats_locked();
  os << "{\n  \"campaign\": {\n";
  os << "    \"jobs_submitted\": " << s.submitted << ",\n";
  os << "    \"jobs_completed\": " << s.completed << ",\n";
  os << "    \"jobs_failed\": " << s.failed << ",\n";
  os << "    \"jobs_rejected\": " << s.rejected << ",\n";
  os << "    \"cache_hits\": " << s.cache_hits << ",\n";
  os << "    \"cache_hit_rate\": " << s.cache_hit_rate() << ",\n";
  os << "    \"retries\": " << s.retries << ",\n";
  os << "    \"mesh_cache_hits\": " << s.mesh_cache_hits << ",\n";
  os << "    \"mesh_cache_misses\": " << s.mesh_cache_misses << ",\n";
  os << "    \"queue_peak\": " << s.queue_peak << ",\n";
  os << "    \"predicted_core_seconds\": " << s.predicted_core_seconds
     << ",\n";
  os << "    \"priced_core_seconds\": " << s.priced_core_seconds << ",\n";
  os << "    \"retry_overhead_core_seconds\": "
     << s.retry_overhead_core_seconds << ",\n";
  os << "    \"cold_restart_core_seconds\": "
     << s.cold_restart_core_seconds << ",\n";
  os << "    \"wall_seconds\": " << s.wall_seconds << ",\n";
  os << "    \"jobs_per_minute\": " << s.jobs_per_minute() << "\n";
  os << "  },\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const JobRecord& r = records_[i];
    os << "    {\"id\": " << r.id << ", \"state\": \""
       << job_state_name(r.state) << "\", \"priority\": "
       << r.request.priority << ", \"key\": \""
       << ResultStore::key_hex(r.key) << "\", \"cache_hit\": "
       << (r.cache_hit ? "true" : "false") << ", \"attempts\": "
       << r.attempts << ", \"resumed_from_step\": " << r.resumed_from_step
       << ", \"steps_executed\": " << r.steps_executed
       << ", \"predicted_core_seconds\": " << r.predicted_core_seconds
       << ", \"wall_seconds\": " << r.wall_seconds << ", \"error\": \""
       << json_escape(r.error) << "\"}"
       << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace sfg::service

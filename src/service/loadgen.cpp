#include "service/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace sfg::service {

namespace {

/// SplitMix64 finalizer — the same avalanche the fault injector and the
/// shard ring use, so "deterministic" means one construction everywhere.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from (seed, stream, index) — a counter-based
/// generator: no state, no call-order dependence.
double hash_to_unit(std::uint64_t seed, std::uint64_t stream,
                    std::uint64_t index) {
  const std::uint64_t h = mix(mix(seed ^ 0x4c4f4144u /* "LOAD" */) +
                              mix(stream) + mix(index) * 0x9e3779b97f4a7c15ull);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Signed jitter in [-amplitude, +amplitude).
double hash_to_jitter(std::uint64_t seed, std::uint64_t stream,
                      std::uint64_t index, double amplitude) {
  return (2.0 * hash_to_unit(seed, stream, index) - 1.0) * amplitude;
}

// Workload streams (arbitrary but frozen: changing one changes every
// committed BENCH_loadtest.json).
constexpr std::uint64_t kStreamArrival = 0;
constexpr std::uint64_t kStreamEvent = 1;
constexpr std::uint64_t kStreamJitterX = 3;
constexpr std::uint64_t kStreamJitterY = 4;
constexpr std::uint64_t kStreamJitterZ = 5;

}  // namespace

JobRequest loadgen_base_request() {
  JobRequest r;
  r.nex = 4;
  r.nranks = 1;
  r.model = BoxModel::UniformRock;
  r.extent_m = 4000.0;
  r.source = {1900.0, 2100.0, 2600.0, {0.0, 0.0, 1e10}, 9.0, 0.15};
  r.stations = {{1000.0, 1000.0, 3900.0}, {3000.0, 2000.0, 3900.0}};
  r.dt = 5e-4;
  r.nsteps = 40;
  return r;
}

std::vector<TimedRequest> generate_workload(const LoadgenConfig& config) {
  SFG_CHECK_MSG(config.num_requests >= 0, "negative request count");
  SFG_CHECK_MSG(config.num_events >= 1, "need at least one event");
  SFG_CHECK_MSG(config.arrivals_per_second > 0.0,
                "arrival rate must be positive");
  SFG_CHECK_MSG(config.priority_levels >= 1, "need >= 1 priority level");

  // Zipfian popularity CDF over the event catalogue: p(k) ~ 1/(k+1)^s.
  std::vector<double> cdf(static_cast<std::size_t>(config.num_events));
  double total = 0.0;
  for (int k = 0; k < config.num_events; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), config.zipf_s);
    cdf[static_cast<std::size_t>(k)] = total;
  }
  for (double& c : cdf) c /= total;

  // The catalogue itself: one jittered source per event, fixed for the
  // whole workload so every request for event k carries the same content
  // key (that is what makes the duplicates cacheable).
  std::vector<SourceSpec> catalogue(
      static_cast<std::size_t>(config.num_events), config.base.source);
  for (int k = 0; k < config.num_events; ++k) {
    const auto ku = static_cast<std::uint64_t>(k);
    SourceSpec& src = catalogue[static_cast<std::size_t>(k)];
    src.x += hash_to_jitter(config.seed, kStreamJitterX, ku,
                            config.source_jitter_m);
    src.y += hash_to_jitter(config.seed, kStreamJitterY, ku,
                            config.source_jitter_m);
    src.z += hash_to_jitter(config.seed, kStreamJitterZ, ku,
                            config.source_jitter_m);
  }

  std::vector<TimedRequest> out;
  out.reserve(static_cast<std::size_t>(config.num_requests));
  double clock_s = 0.0;
  for (int i = 0; i < config.num_requests; ++i) {
    const auto iu = static_cast<std::uint64_t>(i);
    // Poisson arrivals: exponential interarrival by inverse CDF.
    const double u = hash_to_unit(config.seed, kStreamArrival, iu);
    clock_s += -std::log1p(-u) / config.arrivals_per_second;

    const double e = hash_to_unit(config.seed, kStreamEvent, iu);
    const int event = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), e) - cdf.begin());

    TimedRequest t;
    t.arrival_s = clock_s;
    t.event = std::min(event, config.num_events - 1);
    t.request = config.base;
    t.request.source = catalogue[static_cast<std::size_t>(t.event)];
    // Priority cycles by submission index: it exercises the queue order
    // without touching the content key (priority is not hashed).
    t.request.priority = i % config.priority_levels;
    out.push_back(std::move(t));
  }
  return out;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

LoadTestReport run_workload(ShardedFrontend& frontend,
                            const std::vector<TimedRequest>& workload,
                            double time_scale) {
  WallTimer timer;
  std::set<RequestKey> distinct;
  for (const TimedRequest& t : workload) {
    distinct.insert(request_key(t.request));
    if (time_scale > 0.0) {
      const double target_s = t.arrival_s * time_scale;
      // Open loop: arrivals do not wait for completions. A saturated
      // fleet pushes latency up (visible in p99), not arrivals back —
      // except for the queue-full backpressure inside submit().
      for (;;) {
        const double remaining_s = target_s - timer.seconds();
        if (remaining_s <= 0.0) break;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(remaining_s, 2e-3)));
      }
    }
    frontend.submit(t.request);
  }
  frontend.wait_all();
  const double wall_s = timer.seconds();

  const FrontendStats stats = frontend.stats();
  std::vector<double> latencies_ms;
  for (const FrontendJob& job : frontend.jobs())
    if (job.state == JobState::Done)
      latencies_ms.push_back(job.latency_seconds() * 1e3);

  LoadTestReport report;
  report.submitted = stats.submitted;
  report.completed = stats.completed;
  report.failed = stats.failed;
  report.rejected = stats.rejected;
  report.executed = stats.executed;
  report.distinct_keys = distinct.size();
  report.cache_hits = stats.cache_hits;
  report.memory_hits = stats.memory_hits;
  report.store_hits = stats.store_hits;
  report.coalesced_hits = stats.coalesced_hits;
  report.stolen = stats.stolen;
  report.spilled = stats.spilled;
  report.cache_hit_rate = stats.cache_hit_rate();
  report.p50_ms = percentile(latencies_ms, 50.0);
  report.p99_ms = percentile(latencies_ms, 99.0);
  report.wall_seconds = wall_s;
  report.jobs_per_minute =
      wall_s > 0.0 ? 60.0 * static_cast<double>(stats.completed) / wall_s
                   : 0.0;
  return report;
}

}  // namespace sfg::service

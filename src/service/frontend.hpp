#pragma once

/// \file frontend.hpp
/// Sharded campaign front-end (ISSUE 9): the "millions of users" step of
/// the ROADMAP. One process-wide front door accepts job requests (C++
/// values or JSON lines — the `sfg_frontd` protocol) and routes each to
/// one of N in-process service shards by consistent hashing on the FNV-1a
/// content key, so duplicate requests from *different* users coalesce
/// globally no matter which user submitted first.
///
/// Anatomy of one shard: a bounded admission queue (priority desc, cost
/// asc, FIFO — the ISSUE-5 order), a fixed worker pool, and a TieredCache
/// (an in-memory LRU of parsed results over the ONE shared on-disk
/// ResultStore). The scheduler (capacity-model admission), mesh cache and
/// result store are shared across shards; the ring keeps each key's
/// lookups on one shard's LRU so the zipfian head stays resident.
///
/// Flow of one submission:
///
///   submit(request) — key = request_key, home = ring.shard_for(key)
///     ├─ home shard's tiered cache hits (memory or store) → Done
///     ├─ key already queued/running anywhere             → Coalesced
///     ├─ Scheduler::admit rejects (capacity gate)        → Rejected
///     └─ else → home shard's bounded queue; when the home queue is
///        SATURATED (or its workers are dead) the entry spills to the
///        least-loaded shard, and idle workers of other shards STEAL
///        from saturated/halted queues — a killed shard's backlog drains
///        with zero lost jobs (the fault-injection contract).
///
/// Latency accounting: every record carries submit/done times on the
/// front-end clock; the load-test harness (loadgen.*) turns them into
/// the p50/p99 figures gated in BENCH_loadtest.json.

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "perf/metrics.hpp"
#include "quadrature/gll.hpp"
#include "service/job.hpp"
#include "service/queue.hpp"
#include "service/result_store.hpp"
#include "service/scheduler.hpp"
#include "service/shard_ring.hpp"
#include "service/tiered_cache.hpp"
#include "service/worker.hpp"

namespace sfg::service {

struct FrontendConfig {
  int num_shards = 2;
  int workers_per_shard = 1;
  std::size_t shard_queue_capacity = 32;
  /// Memory-tier entries per shard LRU (0 disables the memory tier).
  std::size_t lru_entries_per_shard = 64;
  /// Queue depth at which other shards' idle workers may steal from a
  /// shard (0 = only when full). Halted shards are always stealable.
  std::size_t steal_threshold = 0;
  int max_retries = 2;
  /// Root directory: the shared result store under <work_dir>/results,
  /// per-job scratch under <work_dir>/jobs/<id>.
  std::string work_dir = "frontend_work";
  AdmissionPolicy admission;
  const MachineSpec* pricing_machine = nullptr;  ///< null = franklin()
  io::IoBackendKind io_backend = io::IoBackendKind::Container;
  std::size_t mesh_cache_max_resident = 0;
  ShardRingOptions ring;
};

/// The front-end's ledger entry for one submitted request.
struct FrontendJob {
  int id = -1;
  JobRequest request;
  RequestKey key = 0;
  int home_shard = -1;      ///< ring-assigned owner of the key
  int queued_shard = -1;    ///< where the entry actually queued (-1 = never)
  int executed_shard = -1;  ///< whose worker computed it (-1 = not computed)
  JobState state = JobState::Queued;
  bool cache_hit = false;   ///< served without computing (tier or coalesced)
  CacheTier tier = CacheTier::Miss;  ///< serving tier when cache_hit
  bool coalesced = false;   ///< duplicate served by an in-flight primary
  bool stolen = false;      ///< executed by a worker of another shard
  int attempts = 0;
  int resumed_from_step = -1;
  std::int64_t steps_executed = 0;
  double predicted_core_seconds = 0.0;
  double submit_time_s = 0.0;  ///< front-end clock
  double done_time_s = 0.0;    ///< front-end clock; 0 until terminal
  std::string error;

  /// Submission-to-terminal-state latency (the load-test metric).
  double latency_seconds() const { return done_time_s - submit_time_s; }
};

/// Aggregate front-end counters (also exported via the metrics Registry).
struct FrontendStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;      ///< memory + store + coalesced
  std::uint64_t memory_hits = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t coalesced_hits = 0;
  std::uint64_t executed = 0;        ///< jobs actually computed
  std::uint64_t stolen = 0;          ///< executed from another shard's queue
  std::uint64_t spilled = 0;         ///< queued off-home (saturation/halt)
  std::uint64_t retries = 0;
  std::uint64_t mesh_cache_hits = 0;
  std::uint64_t mesh_cache_misses = 0;
  std::size_t queue_peak = 0;        ///< max over shards
  double predicted_core_seconds = 0.0;
  double priced_core_seconds = 0.0;
  double wall_seconds = 0.0;

  double cache_hit_rate() const {
    return completed > 0 ? static_cast<double>(cache_hits) /
                               static_cast<double>(completed)
                         : 0.0;
  }
  double jobs_per_minute() const {
    return wall_seconds > 0.0
               ? 60.0 * static_cast<double>(completed) / wall_seconds
               : 0.0;
  }
};

/// Per-shard counters for the report and the load balance gates.
struct ShardStats {
  int shard = -1;
  bool halted = false;
  std::uint64_t routed = 0;    ///< submissions whose home this shard is
  std::uint64_t queued = 0;    ///< entries placed on this shard's queue
  std::uint64_t executed = 0;  ///< jobs computed by this shard's workers
  std::uint64_t stolen = 0;    ///< of executed, taken from another queue
  std::uint64_t memory_hits = 0;
  std::uint64_t store_hits = 0;
  std::size_t queue_peak = 0;
};

/// The per-shard bounded queues plus the spill/steal policy, all under one
/// lock (contention is per-job — nowhere near a hot path). Pop prefers the
/// worker's own shard; stealing is restricted to saturated or halted
/// queues so warm-shard locality survives normal operation.
class ShardQueueSet {
 public:
  ShardQueueSet(int nshards, std::size_t capacity,
                std::size_t steal_threshold);

  struct Popped {
    QueueEntry entry;
    int source = -1;  ///< shard whose queue held the entry
  };

  /// Queue on `home`; spill to the least-loaded shard with space when
  /// home is full or halted; block while EVERY live queue is full
  /// (backpressure). Returns the shard queued on, or -1 when closed.
  int submit(int home, QueueEntry entry);

  /// Blocking pop for a worker of `shard`: own queue first, then the best
  /// entry of a halted or saturated queue. nullopt when the shard is
  /// halted or the set is closed and drained.
  std::optional<Popped> pop_for(int shard);

  /// Mark a shard's workers dead: its pops return nullopt, its queue
  /// becomes unconditionally stealable and it stops accepting spills.
  void halt(int shard);
  bool halted(int shard) const;

  void close();  ///< submits fail; pops drain every queue, then end

  std::size_t size(int shard) const;
  std::size_t peak(int shard) const;

 private:
  struct Order {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      if (a.cost_core_seconds != b.cost_core_seconds)
        return a.cost_core_seconds < b.cost_core_seconds;
      return a.seq < b.seq;
    }
  };

  int spill_target_locked(int home) const;
  int steal_source_locked(int shard) const;

  const int nshards_;
  const std::size_t capacity_;
  const std::size_t threshold_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<std::set<QueueEntry, Order>> queues_;
  std::vector<std::size_t> peaks_;
  std::vector<bool> halted_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

class ShardedFrontend {
 public:
  explicit ShardedFrontend(const FrontendConfig& config);
  ~ShardedFrontend();  ///< shutdown() if still running

  ShardedFrontend(const ShardedFrontend&) = delete;
  ShardedFrontend& operator=(const ShardedFrontend&) = delete;

  /// Submit one request. Blocks only when every live shard queue is full.
  /// Always returns a job id (rejections get a Rejected record).
  int submit(const JobRequest& request);

  /// The line protocol (one JSON object per line, see docs/service.md):
  /// a request line returns a `{"id":..,"shard":..,"state":..}` response;
  /// `{"cmd":"stats"}`, `{"cmd":"job","id":N}` and `{"cmd":"wait"}` are
  /// control lines; malformed input returns an `{"error":..}` line.
  std::string handle_line(const std::string& line);

  void wait_all();   ///< block until every submitted job is terminal
  void shutdown();   ///< stop accepting, drain, join all workers

  /// Ops/fault hook: kill one shard's workers (joins them after their
  /// current job). Queued work on that shard is stolen by the others.
  void halt_shard(int shard);

  FrontendJob job(int id) const;
  std::vector<FrontendJob> jobs() const;
  std::optional<JobResult> result(int id) const;

  FrontendStats stats() const;
  std::vector<ShardStats> shard_stats() const;
  const ShardRing& ring() const { return ring_; }
  const ResultStore& store() const { return store_; }
  int num_shards() const { return cfg_.num_shards; }

  /// Snapshot the aggregate counters into the front-end's Registry
  /// (frontend.* counters/gauges + request latency histogram).
  const metrics::Registry& registry();

  /// Machine-readable report: aggregate block, per-shard array, jobs
  /// array — the shape bench_loadtest and sfg_frontd emit.
  void write_json_report(std::ostream& os) const;

 private:
  void worker_main(int shard);
  void run_one(const ShardQueueSet::Popped& popped, int executing_shard);
  void complete_job(int id, RequestKey key, bool cache_hit, CacheTier tier);
  void fail_job(int id, RequestKey key, const std::string& error);
  FrontendJob& record_locked(int id);
  const FrontendJob& record_locked(int id) const;
  FrontendStats stats_locked() const;

  const FrontendConfig cfg_;
  const GllBasis basis_;
  ShardRing ring_;
  Scheduler scheduler_;
  ShardQueueSet queues_;
  ResultStore store_;
  std::vector<std::unique_ptr<TieredCache>> caches_;  ///< one per shard
  MeshCache mesh_cache_;
  metrics::Registry registry_;
  WallTimer lifetime_;

  mutable std::mutex mutex_;
  std::condition_variable all_done_;
  std::vector<FrontendJob> records_;
  std::map<RequestKey, int> inflight_;   ///< global coalescing map
  std::map<RequestKey, std::vector<int>> waiters_;
  std::uint64_t pending_ = 0;
  FrontendStats stats_;
  std::vector<ShardStats> shard_stats_;
  std::vector<std::thread> workers_;     ///< shard-major order
  std::vector<bool> shard_joined_;       ///< halt_shard already joined it
  bool shut_down_ = false;
};

/// Serialize a request as one protocol line (the exact format
/// handle_line parses — round-tripping preserves the content key).
std::string request_to_json(const JobRequest& r);

/// Parse one protocol line into a request. Returns false and fills
/// `error` on malformed input. Exposed for the loadgen/frontd tools and
/// the protocol tests.
bool parse_request_json(const std::string& line, JobRequest* out,
                        std::string* error);

}  // namespace sfg::service

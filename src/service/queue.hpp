#pragma once

/// \file queue.hpp
/// Bounded MPMC admission queue of the campaign service (ISSUE 5).
///
/// Many submitter threads push, many worker threads pop. The queue is
/// BOUNDED: `submit` blocks while the queue is full (backpressure — the
/// paper's campaigns were gated by queue limits on every machine, §6),
/// `try_submit` refuses instead. Ordering is cost-aware: higher priority
/// first, then cheapest predicted completion first (shortest-job-first
/// within a priority band maximizes jobs/minute), then FIFO by submission
/// sequence so equal jobs never starve or reorder.
///
/// `close()` wakes everyone: pending entries still drain, then `pop`
/// returns nullopt and further submits fail. All operations are
/// linearizable under one internal mutex — contention is per-job, not
/// per-element, so this is nowhere near any hot path.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>

namespace sfg::service {

/// One queued unit of work (the record itself stays with the service).
struct QueueEntry {
  int job_id = -1;
  int priority = 0;             ///< higher runs first
  double cost_core_seconds = 0; ///< predicted cost; cheaper runs first
  std::uint64_t seq = 0;        ///< FIFO tiebreak, assigned by the queue
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Blocking submit: waits while the queue is full. Returns false iff the
  /// queue was closed (before or during the wait) — the entry is dropped.
  bool submit(QueueEntry entry) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || entries_.size() < capacity_; });
    if (closed_) return false;
    insert_locked(entry);
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking submit: false when full or closed.
  bool try_submit(QueueEntry entry) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || entries_.size() >= capacity_) return false;
    insert_locked(entry);
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop of the best entry (priority desc, cost asc, seq asc).
  /// Returns nullopt only when the queue is closed AND drained.
  std::optional<QueueEntry> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !entries_.empty(); });
    if (entries_.empty()) return std::nullopt;  // closed and drained
    QueueEntry e = *entries_.begin();
    entries_.erase(entries_.begin());
    not_full_.notify_one();
    return e;
  }

  /// Close the queue: submits fail from now on, pops drain then end.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  /// High-water mark of the queue depth (backpressure telemetry).
  std::size_t peak_size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
  }

 private:
  struct Order {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;
      if (a.cost_core_seconds != b.cost_core_seconds)
        return a.cost_core_seconds < b.cost_core_seconds;
      return a.seq < b.seq;
    }
  };

  void insert_locked(QueueEntry& entry) {
    entry.seq = next_seq_++;
    entries_.insert(entry);
    if (entries_.size() > peak_) peak_ = entries_.size();
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::set<QueueEntry, Order> entries_;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace sfg::service

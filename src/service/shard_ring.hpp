#pragma once

/// \file shard_ring.hpp
/// Consistent-hash shard routing for the campaign front-end (ISSUE 9).
///
/// The front-end spreads job requests over N service shards. Routing must
/// satisfy two properties the naive `key % nshards` cannot:
///
///  * global coalescing — identical content keys MUST land on the same
///    shard so duplicate requests from different users meet in one
///    in-flight map and one LRU tier, and
///  * bounded churn — growing or shrinking the fleet by one shard must
///    remap only ~keys/nshards keys, not nearly all of them (modulo
///    remaps ~(n-1)/n of the keyspace), so warm per-shard caches survive
///    a resize.
///
/// Classic consistent hashing delivers both: each shard owns `vnodes`
/// pseudo-random points ("virtual nodes") on a 64-bit ring, a key routes
/// to the owner of the first point at or clockwise of hash(key). Ring
/// positions are pure hashes of (shard, replica) — the ring for a given
/// (nshards, vnodes) is the same in every process, run after run, which
/// the load-test determinism contract relies on.

#include <cstdint>
#include <vector>

namespace sfg::service {

struct ShardRingOptions {
  /// Virtual nodes per shard. More vnodes = smoother key balance and
  /// finer-grained churn at O(nshards * vnodes) ring memory; 64 keeps
  /// the max/mean shard load under ~1.3 in the property tests.
  int vnodes = 64;
  /// Injection tooth for the property harness (ISSUE 9): route with the
  /// naive `key % nshards` instead of the ring. Exists ONLY to prove the
  /// bounded-churn test catches a modulo regression; never set it in
  /// production code.
  bool unsafe_modulo_ring = false;
};

/// Immutable routing table: build once per fleet shape, share read-only.
class ShardRing {
 public:
  explicit ShardRing(int nshards, const ShardRingOptions& options = {});

  int nshards() const { return nshards_; }

  /// The shard that owns `key`. Pure: same (nshards, vnodes, key) always
  /// routes identically, in every process.
  int shard_for(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t position;
    std::int32_t shard;
  };

  int nshards_;
  bool modulo_;
  std::vector<Point> ring_;  ///< sorted by position
};

}  // namespace sfg::service

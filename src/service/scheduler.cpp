#include "service/scheduler.hpp"

#include <mutex>
#include <sstream>

#include "common/check.hpp"
#include "perf/capacity.hpp"

namespace sfg::service {

namespace {
constexpr int kNgll = 5;  ///< degree-4 elements, as everywhere in the repo
}

double CostModel::seconds_per_flop() const {
  const MachineSpec& m = machine != nullptr ? *machine : franklin();
  return 1.0 / (sustained_gflops_per_core(m) * 1e9);
}

double predict_job_flops_per_step(const JobRequest& r) {
  SFG_CHECK_MSG(r.nex > 0, "job nex must be positive");
  const KernelProfile profile = sem_kernel_profile(kNgll, false);
  const double elements = static_cast<double>(r.nex) *
                          static_cast<double>(r.nex) *
                          static_cast<double>(r.nex);
  return elements * profile.flops_per_element;
}

double predict_core_seconds(const JobRequest& r, const CostModel& model) {
  return priced_core_seconds(r, r.nsteps, model);
}

double priced_core_seconds(const JobRequest& r, std::int64_t steps_executed,
                           const CostModel& model) {
  if (steps_executed <= 0) return 0.0;
  return predict_job_flops_per_step(r) *
         static_cast<double>(steps_executed) * model.seconds_per_flop();
}

Scheduler::Scheduler(const AdmissionPolicy& policy, const CostModel& model)
    : policy_(policy), model_(model) {}

std::optional<double> Scheduler::admit(const JobRequest& r,
                                       RejectionReason* why) {
  auto reject = [&](const std::string& msg) -> std::optional<double> {
    if (why != nullptr) why->message = msg;
    return std::nullopt;
  };

  if (r.nex <= 0) return reject("nex must be positive");
  if (r.nranks < 1) return reject("nranks must be >= 1");
  if (r.nranks > 1 && r.nex % r.nranks != 0)
    return reject("nex must divide evenly across nranks slices");
  if (r.nsteps <= 0) return reject("nsteps must be positive");
  if (r.dt <= 0.0) return reject("dt must be positive");
  if (r.extent_m <= 0.0) return reject("extent_m must be positive");
  if (r.stations.empty()) return reject("at least one station required");
  if (r.checkpoint_interval_steps < 0)
    return reject("checkpoint interval must be >= 0");
  if (!r.fault.empty() && r.nranks < 2)
    return reject("injected rank death needs nranks >= 2 (serial runs "
                  "have no communicator to fire it)");
  if (!r.fault.empty() && r.fault.kill_rank >= r.nranks)
    return reject("fault kill_rank outside the job's rank range");

  const double cost = predict_core_seconds(r, model_);
  if (cost > policy_.max_job_core_seconds) {
    std::ostringstream os;
    os << "predicted " << cost << " core-seconds exceeds the per-job gate "
       << policy_.max_job_core_seconds;
    return reject(os.str());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (committed_ + cost > policy_.max_campaign_core_seconds) {
    std::ostringstream os;
    os << "campaign budget exhausted: " << committed_ << " committed + "
       << cost << " requested > " << policy_.max_campaign_core_seconds;
    return reject(os.str());
  }
  committed_ += cost;
  return cost;
}

double Scheduler::committed_core_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return committed_;
}

}  // namespace sfg::service

#pragma once

/// \file tiered_cache.hpp
/// Per-shard tiered result cache of the campaign front-end (ISSUE 9):
/// a bounded in-memory LRU of deserialized JobResults layered over the
/// shared on-disk ResultStore.
///
/// Lookup tiers, cheapest first:
///
///   memory  — the LRU holds the parsed result; no store I/O at all
///             (the tiered-cache tests pin this via ResultStore::reads()),
///   store   — the shared content-addressed store holds the blob; the
///             parsed result is promoted into the LRU on the way out,
///   miss    — the job must execute; `put` then fills both tiers.
///
/// One TieredCache per shard, all over ONE ResultStore: the ring routes a
/// key to the same shard every time, so that shard's LRU accumulates the
/// popular (zipfian-head) entries while the store stays the single global
/// source of truth — a different shard (work stealing) or a reopened
/// campaign still hits at the store tier.
///
/// Thread-safe; hit/miss/eviction counters feed the front-end's
/// metrics::Registry.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "service/job.hpp"
#include "service/result_store.hpp"

namespace sfg::service {

/// Which tier served a lookup (Miss = neither).
enum class CacheTier : std::int32_t { Memory = 0, Store = 1, Miss = 2 };

inline const char* cache_tier_name(CacheTier t) {
  switch (t) {
    case CacheTier::Memory: return "memory";
    case CacheTier::Store:  return "store";
    case CacheTier::Miss:   return "miss";
  }
  return "?";
}

class TieredCache {
 public:
  /// LRU over `store` holding at most `max_entries` parsed results
  /// (0 = memory tier disabled, every hit reads the store).
  TieredCache(ResultStore& store, std::size_t max_entries);

  TieredCache(const TieredCache&) = delete;
  TieredCache& operator=(const TieredCache&) = delete;

  /// Look `key` up through the tiers. On a hit returns the shared parsed
  /// result and reports the serving tier; on a miss returns null.
  std::shared_ptr<const JobResult> get(RequestKey key, CacheTier* tier);

  /// Insert a freshly computed result: durably into the store, then into
  /// the memory tier (evicting the least-recently-used entry over cap).
  void put(RequestKey key, const JobResult& result);

  /// True when either tier holds the key (no promotion, no LRU touch).
  bool contains(RequestKey key) const;

  std::size_t resident() const;  ///< entries currently in the memory tier
  std::size_t capacity() const { return max_entries_; }
  std::uint64_t memory_hits() const;
  std::uint64_t store_hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  void touch_locked(RequestKey key);
  void insert_locked(RequestKey key, std::shared_ptr<const JobResult> value);

  ResultStore& store_;
  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  /// MRU-first recency list; the map holds an iterator into it so both
  /// touch and eviction are O(log n).
  std::list<RequestKey> recency_;
  struct Entry {
    std::shared_ptr<const JobResult> value;
    std::list<RequestKey>::iterator where;
  };
  std::map<RequestKey, Entry> entries_;
  std::uint64_t memory_hits_ = 0;
  std::uint64_t store_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sfg::service

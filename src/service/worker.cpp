#include "service/worker.hpp"

#include <filesystem>
#include <sstream>

#include "common/check.hpp"
#include "runtime/exchanger.hpp"
#include "runtime/fault.hpp"
#include "runtime/smpi.hpp"
#include "solver/simulation.hpp"

namespace sfg::service {

namespace fs = std::filesystem;

namespace {

MaterialSample rock_sample() {
  MaterialSample s;
  s.rho = 2500.0;
  s.vp = 3000.0;
  s.vs = 1800.0;
  s.q_mu = 80.0;
  return s;
}

MaterialSample water_sample() {
  MaterialSample s;
  s.rho = 1000.0;
  s.vp = 1500.0;
  s.vs = 0.0;
  s.q_mu = 0.0;
  return s;
}

/// The model axis of the cache key as a material sampler. The fluid band
/// of FluidLayer sits at z in [extent/4, extent/2), as in the mixed
/// fluid/solid validation boxes of the test suite.
MaterialSample sample_model(BoxModel model, double extent, double z) {
  if (model == BoxModel::FluidLayer && z >= 0.25 * extent &&
      z < 0.5 * extent)
    return water_sample();
  return rock_sample();
}

CartesianBoxSpec box_spec_for(const JobRequest& r) {
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = r.nex;
  spec.lx = spec.ly = spec.lz = r.extent_m;
  return spec;
}

std::string slice_key(const JobRequest& r, int rank) {
  std::ostringstream os;
  os << "box nex=" << r.nex << " nranks=" << r.nranks << " rank=" << rank
     << " model=" << static_cast<int>(r.model) << " extent=" << r.extent_m;
  return os.str();
}

PointSource point_source_for(const JobRequest& r) {
  PointSource src;
  src.x = r.source.x;
  src.y = r.source.y;
  src.z = r.source.z;
  src.force = r.source.force;
  src.stf = ricker_wavelet(r.source.f0, r.source.t0);
  return src;
}

io::SnapshotIdentity rank_identity(const JobRequest& r, int rank) {
  io::SnapshotIdentity id;
  id.nex = r.nex;
  id.nproc = r.nranks;
  id.nchunks = 1;
  id.rank = rank;
  id.nranks = r.nranks;
  return id;
}

std::string rank_checkpoint_path(const std::string& scratch_dir, int rank) {
  return scratch_dir + "/rank" + std::to_string(rank) + ".snap";
}

/// The step all ranks' periodic checkpoints agree on, or -1 when there is
/// no complete consistent set (missing file, unreadable file, or ranks
/// torn down between cadence boundaries with different last steps).
int consistent_checkpoint_step(const JobRequest& r,
                               const std::string& scratch_dir) {
  std::int64_t step = -1;
  for (int rank = 0; rank < r.nranks; ++rank) {
    const std::int64_t s = checkpoint_step(
        rank_checkpoint_path(scratch_dir, rank), rank_identity(r, rank));
    if (s <= 0) return -1;
    if (rank == 0)
      step = s;
    else if (s != step)
      return -1;
  }
  return static_cast<int>(step);
}

SimulationConfig config_for(const JobRequest& r,
                            const std::string& scratch_dir, int rank) {
  SimulationConfig cfg;
  cfg.dt = r.dt;
  if (r.checkpoint_interval_steps > 0) {
    cfg.checkpoint_interval_steps = r.checkpoint_interval_steps;
    cfg.checkpoint_path = rank_checkpoint_path(scratch_dir, rank);
    cfg.checkpoint_identity = rank_identity(r, rank);
  }
  return cfg;
}

}  // namespace

std::shared_ptr<const CachedSlice> MeshCache::get(const JobRequest& r,
                                                  int rank) {
  const std::string key = slice_key(r, rank);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slices_.find(key);
    if (it != slices_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Build outside the lock: slices are deterministic, so two threads
  // racing on the same key build identical objects and the loser's copy
  // is simply dropped.
  auto slice = std::make_shared<CachedSlice>();
  const CartesianBoxSpec spec = box_spec_for(r);
  if (r.nranks == 1) {
    slice->mesh = build_cartesian_box(spec, basis_);
  } else {
    CartesianSlice cs = build_cartesian_slice(spec, basis_, r.nranks, 1, 1,
                                              rank, 0, 0);
    slice->mesh = std::move(cs.mesh);
    slice->boundary_keys = std::move(cs.boundary_keys);
    slice->boundary_points = std::move(cs.boundary_points);
  }
  slice->materials = assign_materials(
      slice->mesh, [&](double, double, double z) {
        return sample_model(r.model, r.extent_m, z);
      });
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = slices_.emplace(key, std::move(slice));
  if (inserted)
    ++misses_;
  else
    ++hits_;
  return it->second;
}

std::uint64_t MeshCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t MeshCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

namespace {

/// One serial attempt (nranks == 1). Returns the collected result.
JobResult run_serial_attempt(const JobRequest& r, MeshCache& cache,
                             const std::string& scratch_dir,
                             int restore_step) {
  const auto slice = cache.get(r, 0);
  Simulation sim(slice->mesh, cache.basis(), slice->materials,
                 config_for(r, scratch_dir, 0));
  sim.add_source(point_source_for(r));
  std::vector<int> recv_ids;
  for (const StationSpec& st : r.stations)
    recv_ids.push_back(sim.add_receiver(st.x, st.y, st.z));
  if (restore_step > 0) {
    sim.restore_checkpoint(rank_checkpoint_path(scratch_dir, 0),
                           rank_identity(r, 0));
    SFG_CHECK(sim.step_count() == restore_step);
  }
  sim.run(r.nsteps - (restore_step > 0 ? restore_step : 0));
  JobResult result;
  for (int id : recv_ids) result.seismograms.push_back(sim.seismogram(id));
  return result;
}

/// One parallel attempt over a fresh smpi::World; `plan` (may be null)
/// is the injected fault schedule. Station slots are written by their
/// owning ranks only (disjoint indices; run_ranks joins before we read).
JobResult run_parallel_attempt(const JobRequest& r, MeshCache& cache,
                               const std::string& scratch_dir,
                               int restore_step,
                               const smpi::FaultPlan* plan) {
  JobResult result;
  result.seismograms.resize(r.stations.size());

  auto body = [&](smpi::Communicator& comm) {
    const int rank = comm.rank();
    const auto slice = cache.get(r, rank);
    std::vector<smpi::PointCandidate> cands;
    cands.reserve(slice->boundary_keys.size());
    for (std::size_t n = 0; n < slice->boundary_keys.size(); ++n)
      cands.push_back({slice->boundary_keys[n], slice->boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    Simulation sim(slice->mesh, cache.basis(), slice->materials,
                   config_for(r, scratch_dir, rank), &comm, &ex);
    sim.add_source_global(point_source_for(r));
    // (station index, local receiver id) pairs this rank owns.
    std::vector<std::pair<std::size_t, int>> owned;
    for (std::size_t s = 0; s < r.stations.size(); ++s) {
      const StationSpec& st = r.stations[s];
      const int id = sim.add_receiver_global(st.x, st.y, st.z);
      if (id >= 0) owned.emplace_back(s, id);
    }
    if (restore_step > 0) {
      sim.restore_checkpoint(rank_checkpoint_path(scratch_dir, rank),
                             rank_identity(r, rank));
      SFG_CHECK(sim.step_count() == restore_step);
    }
    sim.run(r.nsteps - (restore_step > 0 ? restore_step : 0));
    for (const auto& [s, id] : owned)
      result.seismograms[s] = sim.seismogram(id);
  };

  if (plan != nullptr)
    smpi::run_ranks_with_faults(r.nranks, *plan, body);
  else
    smpi::run_ranks(r.nranks, body);
  return result;
}

}  // namespace

ExecutionOutcome execute_job(const JobRequest& r, MeshCache& cache,
                             const std::string& scratch_dir,
                             int max_retries) {
  fs::create_directories(scratch_dir);
  ExecutionOutcome out;
  std::string last_error;

  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    // Retry placement: resume from the last consistent checkpoint set if
    // one exists; otherwise cold.
    const int restore_step =
        attempt == 0 ? -1 : consistent_checkpoint_step(r, scratch_dir);
    const int start_step = restore_step > 0 ? restore_step : 0;

    // The fault fires on the first attempt only: the model is a failed
    // node replaced before the retry, not a deterministic repeat crash.
    smpi::FaultPlan plan;
    const bool faulted = attempt == 0 && !r.fault.empty();
    if (faulted) plan.kill_rank(r.fault.kill_rank, r.fault.kill_step);

    try {
      out.attempts = attempt + 1;
      JobResult result =
          r.nranks == 1
              ? run_serial_attempt(r, cache, scratch_dir, restore_step)
              : run_parallel_attempt(r, cache, scratch_dir, restore_step,
                                     faulted ? &plan : nullptr);
      out.steps_executed += r.nsteps - start_step;
      out.resumed_from_step = restore_step > 0 ? restore_step : -1;
      out.result = std::move(result);
      std::error_code ec;
      fs::remove_all(scratch_dir, ec);  // best-effort scratch cleanup
      return out;
    } catch (const smpi::SimulationAborted& e) {
      last_error = e.what();
      // Price the work the dead attempt completed: a planned death at
      // step K means every rank marched up to ~K steps before the abort
      // (per-rank lockstep via the per-step halo exchange).
      if (faulted && r.fault.kill_step > start_step)
        out.steps_executed +=
            std::min(r.fault.kill_step, r.nsteps) - start_step;
    }
  }
  throw CheckError("job failed after " + std::to_string(max_retries + 1) +
                   " attempts; last error: " + last_error);
}

}  // namespace sfg::service

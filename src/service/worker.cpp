#include "service/worker.hpp"

#include <filesystem>
#include <sstream>

#include "common/check.hpp"
#include "runtime/exchanger.hpp"
#include "runtime/fault.hpp"
#include "runtime/smpi.hpp"
#include "solver/simulation.hpp"

namespace sfg::service {

namespace fs = std::filesystem;

namespace {

MaterialSample rock_sample() {
  MaterialSample s;
  s.rho = 2500.0;
  s.vp = 3000.0;
  s.vs = 1800.0;
  s.q_mu = 80.0;
  return s;
}

MaterialSample water_sample() {
  MaterialSample s;
  s.rho = 1000.0;
  s.vp = 1500.0;
  s.vs = 0.0;
  s.q_mu = 0.0;
  return s;
}

/// The model axis of the cache key as a material sampler. The fluid band
/// of FluidLayer sits at z in [extent/4, extent/2), as in the mixed
/// fluid/solid validation boxes of the test suite.
MaterialSample sample_model(BoxModel model, double extent, double z) {
  if (model == BoxModel::FluidLayer && z >= 0.25 * extent &&
      z < 0.5 * extent)
    return water_sample();
  return rock_sample();
}

CartesianBoxSpec box_spec_for(const JobRequest& r) {
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = r.nex;
  spec.lx = spec.ly = spec.lz = r.extent_m;
  return spec;
}

std::string slice_key(const JobRequest& r, int rank) {
  std::ostringstream os;
  os << "box nex=" << r.nex << " nranks=" << r.nranks << " rank=" << rank
     << " model=" << static_cast<int>(r.model) << " extent=" << r.extent_m;
  return os.str();
}

PointSource point_source_for(const JobRequest& r) {
  PointSource src;
  src.x = r.source.x;
  src.y = r.source.y;
  src.z = r.source.z;
  src.force = r.source.force;
  src.stf = ricker_wavelet(r.source.f0, r.source.t0);
  return src;
}

io::SnapshotIdentity rank_identity(const JobRequest& r, int rank) {
  io::SnapshotIdentity id;
  id.nex = r.nex;
  id.nproc = r.nranks;
  id.nchunks = 1;
  id.rank = rank;
  id.nranks = r.nranks;
  return id;
}

std::string rank_checkpoint_key(int rank) {
  return "rank" + std::to_string(rank) + ".snap";
}

/// The per-job checkpoint store: with the per-rank-files backend the keys
/// land as `<scratch_dir>/rankN.snap` (the pre-ISSUE-8 layout); with the
/// container backend every rank checkpoints into ONE
/// `<scratch_dir>/checkpoints.sfgc`.
std::shared_ptr<io::BlobStore> scratch_store(const std::string& scratch_dir,
                                             io::IoBackendKind backend) {
  return io::make_store(backend,
                        backend == io::IoBackendKind::Container
                            ? scratch_dir + "/checkpoints"
                            : scratch_dir);
}

/// The step all ranks' periodic checkpoints agree on, or -1 when there is
/// no complete consistent set (missing blob, unreadable blob, a torn
/// container — which rejects wholesale — or ranks torn down between
/// cadence boundaries with different last steps).
int consistent_checkpoint_step(const JobRequest& r,
                               const io::BlobStore& store) {
  std::int64_t step = -1;
  for (int rank = 0; rank < r.nranks; ++rank) {
    const std::int64_t s = checkpoint_step(store, rank_checkpoint_key(rank),
                                           rank_identity(r, rank));
    if (s <= 0) return -1;
    if (rank == 0)
      step = s;
    else if (s != step)
      return -1;
  }
  return static_cast<int>(step);
}

SimulationConfig config_for(const JobRequest& r,
                            std::shared_ptr<io::BlobStore> store, int rank) {
  SimulationConfig cfg;
  cfg.dt = r.dt;
  if (r.checkpoint_interval_steps > 0) {
    cfg.checkpoint_interval_steps = r.checkpoint_interval_steps;
    cfg.checkpoint_store = std::move(store);
    cfg.checkpoint_path = rank_checkpoint_key(rank);
    cfg.checkpoint_identity = rank_identity(r, rank);
  }
  return cfg;
}

/// CachedSlice <-> sfg_snapshot bytes, for the MeshCache spill path. The
/// identity is unused (slices are keyed by name); layout checks live in
/// the section sizes themselves.
std::vector<std::byte> serialize_slice(const CachedSlice& s) {
  io::SnapshotWriter w;
  const std::int32_t dims[3] = {s.mesh.ngll, s.mesh.nspec, s.mesh.nglob};
  w.add_values("dims", dims, 3);
  w.add_values("xstore", s.mesh.xstore.data(), s.mesh.xstore.size());
  w.add_values("ystore", s.mesh.ystore.data(), s.mesh.ystore.size());
  w.add_values("zstore", s.mesh.zstore.data(), s.mesh.zstore.size());
  w.add_vector("ibool", s.mesh.ibool);
  w.add_values("xix", s.mesh.xix.data(), s.mesh.xix.size());
  w.add_values("xiy", s.mesh.xiy.data(), s.mesh.xiy.size());
  w.add_values("xiz", s.mesh.xiz.data(), s.mesh.xiz.size());
  w.add_values("etax", s.mesh.etax.data(), s.mesh.etax.size());
  w.add_values("etay", s.mesh.etay.data(), s.mesh.etay.size());
  w.add_values("etaz", s.mesh.etaz.data(), s.mesh.etaz.size());
  w.add_values("gammax", s.mesh.gammax.data(), s.mesh.gammax.size());
  w.add_values("gammay", s.mesh.gammay.data(), s.mesh.gammay.size());
  w.add_values("gammaz", s.mesh.gammaz.data(), s.mesh.gammaz.size());
  w.add_values("jacobian", s.mesh.jacobian.data(), s.mesh.jacobian.size());
  const MaterialFields& m = s.materials;
  w.add_values("rho", m.rho.data(), m.rho.size());
  w.add_values("kappav", m.kappav.data(), m.kappav.size());
  w.add_values("muv", m.muv.data(), m.muv.size());
  w.add_values("vp", m.vp.data(), m.vp.size());
  w.add_values("vs", m.vs.data(), m.vs.size());
  w.add_values("q_mu", m.q_mu.data(), m.q_mu.size());
  w.add_values("mu_relaxed", m.mu_relaxed.data(), m.mu_relaxed.size());
  std::vector<std::uint8_t> fluid(m.element_is_fluid.size());
  for (std::size_t e = 0; e < fluid.size(); ++e)
    fluid[e] = m.element_is_fluid[e] ? 1 : 0;
  w.add_vector("fluid", fluid);
  w.add_vector("boundary_keys", s.boundary_keys);
  w.add_vector("boundary_points", s.boundary_points);
  return w.serialize(io::SnapshotIdentity{});
}

std::shared_ptr<const CachedSlice> parse_slice(
    const std::vector<std::byte>& bytes, const std::string& label) {
  const auto r =
      io::SnapshotReader::parse(bytes, label, io::SnapshotIdentity{});
  auto slice = std::make_shared<CachedSlice>();
  const auto dims = r.read_vector<std::int32_t>("dims");
  SFG_CHECK_MSG(dims.size() == 3,
                "spilled slice '" << label << "' has a malformed dims "
                                  << "section");
  HexMesh& mesh = slice->mesh;
  mesh.ngll = dims[0];
  mesh.nspec = dims[1];
  mesh.nglob = dims[2];
  auto load_d = [&](const char* name, aligned_vector<double>& out) {
    const auto v = r.read_vector<double>(name);
    out.assign(v.begin(), v.end());
  };
  auto load_f = [&](const char* name, aligned_vector<float>& out) {
    const auto v = r.read_vector<float>(name);
    out.assign(v.begin(), v.end());
  };
  load_d("xstore", mesh.xstore);
  load_d("ystore", mesh.ystore);
  load_d("zstore", mesh.zstore);
  mesh.ibool = r.read_vector<int>("ibool");
  load_f("xix", mesh.xix);
  load_f("xiy", mesh.xiy);
  load_f("xiz", mesh.xiz);
  load_f("etax", mesh.etax);
  load_f("etay", mesh.etay);
  load_f("etaz", mesh.etaz);
  load_f("gammax", mesh.gammax);
  load_f("gammay", mesh.gammay);
  load_f("gammaz", mesh.gammaz);
  load_f("jacobian", mesh.jacobian);
  SFG_CHECK_MSG(mesh.num_local_points() == mesh.xstore.size(),
                "spilled slice '" << label << "' coordinate count "
                                  << mesh.xstore.size()
                                  << " disagrees with dims "
                                  << mesh.num_local_points());
  MaterialFields& m = slice->materials;
  load_f("rho", m.rho);
  load_f("kappav", m.kappav);
  load_f("muv", m.muv);
  load_f("vp", m.vp);
  load_f("vs", m.vs);
  load_f("q_mu", m.q_mu);
  load_f("mu_relaxed", m.mu_relaxed);
  const auto fluid = r.read_vector<std::uint8_t>("fluid");
  m.element_is_fluid.assign(fluid.size(), false);
  for (std::size_t e = 0; e < fluid.size(); ++e)
    m.element_is_fluid[e] = fluid[e] != 0;
  slice->boundary_keys = r.read_vector<std::int64_t>("boundary_keys");
  slice->boundary_points = r.read_vector<int>("boundary_points");
  return slice;
}

}  // namespace

std::shared_ptr<const CachedSlice> MeshCache::get(const JobRequest& r,
                                                  int rank) {
  const std::string key = slice_key(r, rank);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slices_.find(key);
    if (it != slices_.end()) {
      ++hits_;
      last_use_[key] = ++tick_;
      return it->second;
    }
  }
  // Not resident: reload a spilled slice before rebuilding — the read is
  // CRC-verified, so a corrupted spill fails loudly instead of meshing
  // wrong geometry. Done outside the cache lock (ContainerStore has its
  // own); two threads racing on the key parse identical objects and the
  // loser's copy is simply dropped.
  if (spill_store_ != nullptr && spill_store_->contains(key)) {
    auto slice = parse_slice(spill_store_->read(key),
                             spill_store_->describe() + ":" + key);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = slices_.emplace(key, std::move(slice));
    if (inserted) ++spill_hits_;
    else ++hits_;
    last_use_[key] = ++tick_;
    evict_over_cap_locked();
    return it->second;
  }
  // Build outside the lock: slices are deterministic, so two threads
  // racing on the same key build identical objects and the loser's copy
  // is simply dropped.
  auto slice = std::make_shared<CachedSlice>();
  const CartesianBoxSpec spec = box_spec_for(r);
  if (r.nranks == 1) {
    slice->mesh = build_cartesian_box(spec, basis_);
  } else {
    CartesianSlice cs = build_cartesian_slice(spec, basis_, r.nranks, 1, 1,
                                              rank, 0, 0);
    slice->mesh = std::move(cs.mesh);
    slice->boundary_keys = std::move(cs.boundary_keys);
    slice->boundary_points = std::move(cs.boundary_points);
  }
  slice->materials = assign_materials(
      slice->mesh, [&](double, double, double z) {
        return sample_model(r.model, r.extent_m, z);
      });
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = slices_.emplace(key, std::move(slice));
  if (inserted)
    ++misses_;
  else
    ++hits_;
  last_use_[key] = ++tick_;
  evict_over_cap_locked();
  return it->second;
}

void MeshCache::configure_spill(const std::string& container_path,
                                std::size_t max_resident) {
  std::lock_guard<std::mutex> lock(mutex_);
  SFG_CHECK_MSG(max_resident > 0,
                "MeshCache spill needs max_resident >= 1");
  spill_store_ =
      io::make_store(io::IoBackendKind::Container, container_path);
  max_resident_ = max_resident;
  evict_over_cap_locked();
}

void MeshCache::evict_over_cap_locked() {
  if (max_resident_ == 0 || spill_store_ == nullptr) return;
  while (slices_.size() > max_resident_) {
    auto victim = slices_.end();
    std::uint64_t oldest = 0;
    for (auto it = slices_.begin(); it != slices_.end(); ++it) {
      const std::uint64_t t = last_use_[it->first];
      if (victim == slices_.end() || t < oldest) {
        victim = it;
        oldest = t;
      }
    }
    // Slices are immutable, so a key already spilled once never needs
    // rewriting — eviction is then just dropping the resident copy.
    if (!spill_store_->contains(victim->first)) {
      const std::vector<std::byte> bytes = serialize_slice(*victim->second);
      spill_store_->write(victim->first, bytes.data(), bytes.size());
      ++spills_;
    }
    last_use_.erase(victim->first);
    slices_.erase(victim);
  }
}

std::uint64_t MeshCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t MeshCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t MeshCache::spills() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spills_;
}

std::uint64_t MeshCache::spill_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spill_hits_;
}

std::size_t MeshCache::resident() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slices_.size();
}

namespace {

/// One serial attempt (nranks == 1). Returns the collected result.
JobResult run_serial_attempt(const JobRequest& r, MeshCache& cache,
                             std::shared_ptr<io::BlobStore> store,
                             int restore_step) {
  const auto slice = cache.get(r, 0);
  Simulation sim(slice->mesh, cache.basis(), slice->materials,
                 config_for(r, store, 0));
  sim.add_source(point_source_for(r));
  std::vector<int> recv_ids;
  for (const StationSpec& st : r.stations)
    recv_ids.push_back(sim.add_receiver(st.x, st.y, st.z));
  if (restore_step > 0) {
    sim.restore_checkpoint(*store, rank_checkpoint_key(0),
                           rank_identity(r, 0));
    SFG_CHECK(sim.step_count() == restore_step);
  }
  sim.run(r.nsteps - (restore_step > 0 ? restore_step : 0));
  JobResult result;
  for (int id : recv_ids) result.seismograms.push_back(sim.seismogram(id));
  return result;
}

/// One parallel attempt over a fresh smpi::World; `plan` (may be null)
/// is the injected fault schedule. Station slots are written by their
/// owning ranks only (disjoint indices; run_ranks joins before we read).
JobResult run_parallel_attempt(const JobRequest& r, MeshCache& cache,
                               std::shared_ptr<io::BlobStore> store,
                               int restore_step,
                               const smpi::FaultPlan* plan) {
  JobResult result;
  result.seismograms.resize(r.stations.size());

  auto body = [&](smpi::Communicator& comm) {
    const int rank = comm.rank();
    const auto slice = cache.get(r, rank);
    std::vector<smpi::PointCandidate> cands;
    cands.reserve(slice->boundary_keys.size());
    for (std::size_t n = 0; n < slice->boundary_keys.size(); ++n)
      cands.push_back({slice->boundary_keys[n], slice->boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    Simulation sim(slice->mesh, cache.basis(), slice->materials,
                   config_for(r, store, rank), &comm, &ex);
    sim.add_source_global(point_source_for(r));
    // (station index, local receiver id) pairs this rank owns.
    std::vector<std::pair<std::size_t, int>> owned;
    for (std::size_t s = 0; s < r.stations.size(); ++s) {
      const StationSpec& st = r.stations[s];
      const int id = sim.add_receiver_global(st.x, st.y, st.z);
      if (id >= 0) owned.emplace_back(s, id);
    }
    if (restore_step > 0) {
      sim.restore_checkpoint(*store, rank_checkpoint_key(rank),
                             rank_identity(r, rank));
      SFG_CHECK(sim.step_count() == restore_step);
    }
    sim.run(r.nsteps - (restore_step > 0 ? restore_step : 0));
    for (const auto& [s, id] : owned)
      result.seismograms[s] = sim.seismogram(id);
  };

  if (plan != nullptr)
    smpi::run_ranks_with_faults(r.nranks, *plan, body);
  else
    smpi::run_ranks(r.nranks, body);
  return result;
}

}  // namespace

ExecutionOutcome execute_job(const JobRequest& r, MeshCache& cache,
                             const std::string& scratch_dir,
                             int max_retries, io::IoBackendKind backend) {
  fs::create_directories(scratch_dir);
  const std::shared_ptr<io::BlobStore> store =
      scratch_store(scratch_dir, backend);
  ExecutionOutcome out;
  std::string last_error;

  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    // Retry placement: resume from the last consistent checkpoint set if
    // one exists; otherwise cold.
    const int restore_step =
        attempt == 0 ? -1 : consistent_checkpoint_step(r, *store);
    const int start_step = restore_step > 0 ? restore_step : 0;

    // The fault fires on the first attempt only: the model is a failed
    // node replaced before the retry, not a deterministic repeat crash.
    smpi::FaultPlan plan;
    const bool faulted = attempt == 0 && !r.fault.empty();
    if (faulted) plan.kill_rank(r.fault.kill_rank, r.fault.kill_step);

    try {
      out.attempts = attempt + 1;
      JobResult result =
          r.nranks == 1
              ? run_serial_attempt(r, cache, store, restore_step)
              : run_parallel_attempt(r, cache, store, restore_step,
                                     faulted ? &plan : nullptr);
      out.steps_executed += r.nsteps - start_step;
      out.resumed_from_step = restore_step > 0 ? restore_step : -1;
      out.result = std::move(result);
      std::error_code ec;
      fs::remove_all(scratch_dir, ec);  // best-effort scratch cleanup
      return out;
    } catch (const smpi::SimulationAborted& e) {
      last_error = e.what();
      // Price the work the dead attempt completed: a planned death at
      // step K means every rank marched up to ~K steps before the abort
      // (per-rank lockstep via the per-step halo exchange).
      if (faulted && r.fault.kill_step > start_step)
        out.steps_executed +=
            std::min(r.fault.kill_step, r.nsteps) - start_step;
    }
  }
  throw CheckError("job failed after " + std::to_string(max_retries + 1) +
                   " attempts; last error: " + last_error);
}

}  // namespace sfg::service

#pragma once

/// \file result_store.hpp
/// Content-addressed result cache of the campaign service (ISSUE 5).
///
/// Results (the per-station seismograms of one job) are stored under the
/// request's content hash in the versioned CRC-32 `sfg_snapshot` format
/// (io/snapshot.*) — the same format the solver's checkpoints use, so
/// corruption and truncation are detected on load instead of serving wrong
/// physics. Blob key per result: `<16-hex-digits>.res`, placed by the
/// selected sfg_io backend (ISSUE 8): one durably-written file per key
/// (PerRankFiles), or one chunk of a single `results.sfgc` container
/// (Container — O(1) files however many jobs a campaign caches).
///
/// The store is shared by all workers and submitters; an in-memory index
/// mirrors the backend (scanned once at construction, so a store reopened
/// over an old campaign directory serves the previous results —
/// cross-campaign caching for free).

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "io/blob_store.hpp"
#include "service/job.hpp"
#include "solver/simulation.hpp"

namespace sfg::service {

/// The physics output of one job: one seismogram per requested station,
/// in station order.
struct JobResult {
  std::vector<Seismogram> seismograms;
};

class ResultStore {
 public:
  /// Opens (and creates if needed) `dir` with the given sfg_io backend,
  /// indexing any existing results. The default keeps the legacy
  /// one-file-per-result layout; campaigns select the container backend
  /// through ServiceConfig::io_backend.
  explicit ResultStore(
      const std::string& dir,
      io::IoBackendKind backend = io::IoBackendKind::PerRankFiles);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  bool contains(RequestKey key) const;

  /// Load the result stored under `key`; nullopt when absent. Throws
  /// sfg::CheckError if the file exists but is corrupt (CRC/format).
  std::optional<JobResult> load(RequestKey key) const;

  /// Store `result` under `key` (overwrites an existing entry with the
  /// same key — content addressing makes that a no-op by construction).
  void store(RequestKey key, const JobResult& result);

  std::size_t size() const;
  const std::string& dir() const { return dir_; }
  io::IoBackendKind backend() const { return backend_; }
  /// Filesystem objects the store occupies (1 for the container backend).
  int file_count() const { return store_->file_count(); }
  /// Blob reads served from the backend (indexed `load` calls). The
  /// tiered-cache tests assert a memory-tier hit leaves this untouched.
  std::uint64_t reads() const;
  /// Blob writes issued to the backend (`store` calls).
  std::uint64_t writes() const;

  static std::string key_hex(RequestKey key);
  /// Filesystem path of one result — meaningful for the PerRankFiles
  /// backend only (container blobs share one file).
  std::string path_for(RequestKey key) const;

 private:
  std::string dir_;
  io::IoBackendKind backend_;
  std::unique_ptr<io::BlobStore> store_;
  mutable std::mutex mutex_;
  std::set<RequestKey> index_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace sfg::service

#pragma once

/// \file result_store.hpp
/// Content-addressed result cache of the campaign service (ISSUE 5).
///
/// Results (the per-station seismograms of one job) are stored under the
/// request's content hash in the versioned CRC-32 `sfg_snapshot` container
/// (io/snapshot.*) — the same format the solver's checkpoints use, so
/// corruption and truncation are detected on load instead of serving wrong
/// physics. One file per key: `<dir>/<16-hex-digits>.res`, written
/// tmp+rename (the snapshot writer's atomic-ish protocol), so a crashed
/// writer never leaves a half-result that a later campaign would trust.
///
/// The store is shared by all workers and submitters; an in-memory index
/// mirrors the directory (scanned once at construction, so a store
/// reopened over an old campaign directory serves the previous results —
/// cross-campaign caching for free).

#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "service/job.hpp"
#include "solver/simulation.hpp"

namespace sfg::service {

/// The physics output of one job: one seismogram per requested station,
/// in station order.
struct JobResult {
  std::vector<Seismogram> seismograms;
};

class ResultStore {
 public:
  /// Opens (and creates if needed) `dir`, indexing any existing results.
  explicit ResultStore(const std::string& dir);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  bool contains(RequestKey key) const;

  /// Load the result stored under `key`; nullopt when absent. Throws
  /// sfg::CheckError if the file exists but is corrupt (CRC/format).
  std::optional<JobResult> load(RequestKey key) const;

  /// Store `result` under `key` (overwrites an existing entry with the
  /// same key — content addressing makes that a no-op by construction).
  void store(RequestKey key, const JobResult& result);

  std::size_t size() const;
  const std::string& dir() const { return dir_; }

  static std::string key_hex(RequestKey key);
  std::string path_for(RequestKey key) const;

 private:
  std::string dir_;
  mutable std::mutex mutex_;
  std::set<RequestKey> index_;
};

}  // namespace sfg::service

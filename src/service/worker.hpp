#pragma once

/// \file worker.hpp
/// Job execution engine of the campaign service (ISSUE 5): the code one
/// worker context runs to turn a JobRequest into a JobResult.
///
/// Two pieces:
///
///  * MeshCache — meshes and material fields are pure functions of the
///    (NEX, NPROC, model, extent) axes of a request, and building them is
///    the per-run serial bottleneck the related DMPlex-workflow line of
///    work attacks. The cache shares one immutable slice per key across
///    all jobs and workers (Simulation copies what it mutates). With
///    configure_spill() it runs out-of-core (ISSUE 8): least-recently-used
///    slices beyond the resident cap serialize into one sfg_io container
///    and reload on their next use, bounding memory across a campaign of
///    many mesh shapes.
///
///  * execute_job — marches the request over an smpi::World (nranks
///    in-process ranks; serial fast path at nranks == 1), injecting the
///    request's FaultSpec into the FIRST attempt, writing periodic
///    per-rank checkpoints at the request's cadence, and on a fault abort
///    retrying from the last CONSISTENT checkpoint set (all ranks at the
///    same step — verified via the snapshots themselves) instead of from
///    scratch. The checkpoint/restart bit-identity contract (ISSUE 2)
///    makes a recovered job's seismograms equal a never-faulted run's bit
///    for bit.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/blob_store.hpp"
#include "mesh/cartesian.hpp"
#include "quadrature/gll.hpp"
#include "service/job.hpp"
#include "service/result_store.hpp"
#include "solver/materials.hpp"

namespace sfg::service {

/// Shared, immutable mesh+materials for one rank of one request shape.
struct CachedSlice {
  HexMesh mesh;
  MaterialFields materials;
  /// Inter-slice boundary point keys/ids (empty for serial meshes).
  std::vector<std::int64_t> boundary_keys;
  std::vector<int> boundary_points;
};

/// Thread-safe cache of built slices, keyed on (nex, nranks, rank, model,
/// extent) — the campaign-level mesh reuse.
class MeshCache {
 public:
  explicit MeshCache(const GllBasis& basis) : basis_(basis) {}

  MeshCache(const MeshCache&) = delete;
  MeshCache& operator=(const MeshCache&) = delete;

  /// The slice for `rank` of `r`'s decomposition (rank 0 of 1 = serial
  /// full box). Builds and caches on first use; reloads from the spill
  /// container when the slice was evicted.
  std::shared_ptr<const CachedSlice> get(const JobRequest& r, int rank);

  /// Switch to out-of-core mode: keep at most `max_resident` slices in
  /// memory, spilling the least-recently-used ones as chunks of the
  /// sfg_io container at `container_path`. Call before workers start.
  void configure_spill(const std::string& container_path,
                       std::size_t max_resident);

  const GllBasis& basis() const { return basis_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t spills() const;      ///< evictions written to the container
  std::uint64_t spill_hits() const;  ///< gets served by reloading a spill
  std::size_t resident() const;      ///< slices currently in memory

 private:
  void evict_over_cap_locked();

  const GllBasis& basis_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const CachedSlice>> slices_;
  /// Monotonic use tick per key — the LRU order of slices_.
  std::map<std::string, std::uint64_t> last_use_;
  std::uint64_t tick_ = 0;
  std::unique_ptr<io::BlobStore> spill_store_;
  std::size_t max_resident_ = 0;  ///< 0 = unbounded (no spilling)
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t spill_hits_ = 0;
};

/// What execute_job hands back to the service.
struct ExecutionOutcome {
  JobResult result;
  int attempts = 0;
  /// Step the successful attempt resumed from (-1 = ran cold).
  int resumed_from_step = -1;
  /// Per-rank steps marched, summed over attempts (failed attempts
  /// contribute the steps completed before the abort).
  std::int64_t steps_executed = 0;
};

/// Execute `r` to completion, retrying aborted attempts (at most
/// `max_retries` retries) from the last consistent periodic checkpoint
/// set under `scratch_dir` (cleaned up on success). `backend` places the
/// per-rank checkpoints: one file per rank, or all ranks as chunks of a
/// single `checkpoints.sfgc` container in the scratch directory (ISSUE 8).
/// Throws sfg::CheckError / std::runtime_error when the job cannot be
/// completed (bad request, retries exhausted).
ExecutionOutcome execute_job(
    const JobRequest& r, MeshCache& cache, const std::string& scratch_dir,
    int max_retries,
    io::IoBackendKind backend = io::IoBackendKind::PerRankFiles);

}  // namespace sfg::service

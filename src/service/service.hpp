#pragma once

/// \file service.hpp
/// CampaignService (ISSUE 5): the front door that turns single simulation
/// runs into a served workload — the paper's §6 multi-machine campaign as
/// a long-running process.
///
/// Flow of one submission:
///
///   submit(request)
///     ├─ result store already has the content key  → Done (cache hit)
///     ├─ same key already queued/running           → Coalesced (waits on
///     │                                              the primary, served
///     │                                              from the store)
///     ├─ Scheduler::admit rejects (capacity gate)  → Rejected
///     └─ else → bounded MPMC queue (blocks on backpressure), picked up
///        by a worker thread: executes over an smpi::World with periodic
///        checkpoints, retries aborted attempts from the last consistent
///        checkpoint set, stores the result content-addressed, completes
///        the job and every coalesced duplicate.
///
/// Metrics go through src/perf/metrics.*: a service-owned Registry holds
/// the aggregate counters/histograms; per-job figures live on JobRecord;
/// write_json_report emits the end-of-campaign machine-readable report
/// (jobs/min, cache hit rate, retry overhead in priced core-seconds).

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "perf/metrics.hpp"
#include "quadrature/gll.hpp"
#include "service/job.hpp"
#include "service/queue.hpp"
#include "service/result_store.hpp"
#include "service/scheduler.hpp"
#include "service/worker.hpp"

namespace sfg::service {

struct ServiceConfig {
  int num_workers = 2;
  std::size_t queue_capacity = 64;
  /// Retries per job after the first attempt (fault-aborted attempts
  /// resume from the last consistent checkpoint set).
  int max_retries = 2;
  /// Root directory: results under <work_dir>/results, per-job scratch
  /// (periodic checkpoints) under <work_dir>/jobs/<id>.
  std::string work_dir = "campaign_work";
  AdmissionPolicy admission;
  /// Pricing machine for admission and the report (null = franklin()).
  const MachineSpec* pricing_machine = nullptr;
  /// sfg_io backend (ISSUE 8) for the result store and per-job scratch
  /// checkpoints. The container default keeps a whole campaign at O(1)
  /// files — one results.sfgc plus one checkpoints.sfgc per in-flight job
  /// — instead of O(jobs x ranks).
  io::IoBackendKind io_backend = io::IoBackendKind::Container;
  /// Out-of-core mesh cache (0 = keep every slice resident): the maximum
  /// resident slices before LRU spilling into
  /// <work_dir>/mesh_cache.sfgc.
  std::size_t mesh_cache_max_resident = 0;
};

/// Aggregate campaign counters (also exported via the metrics Registry).
struct CampaignStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;   ///< Done, including cache hits
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;  ///< store hits + coalesced duplicates
  std::uint64_t retries = 0;     ///< extra attempts beyond the first
  std::uint64_t mesh_cache_hits = 0;
  std::uint64_t mesh_cache_misses = 0;
  double predicted_core_seconds = 0.0;  ///< admitted predictions
  double priced_core_seconds = 0.0;     ///< executed steps, model-priced
  /// Core-seconds of work re-marched because of faults (executed minus
  /// the fault-free price of every computed job) — what retry costs.
  double retry_overhead_core_seconds = 0.0;
  /// What the same faults would have cost with cold re-runs instead of
  /// retry-from-checkpoint (model-priced; compare with the line above).
  double cold_restart_core_seconds = 0.0;
  double wall_seconds = 0.0;  ///< service lifetime so far
  std::size_t queue_peak = 0;

  double cache_hit_rate() const {
    return completed > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(completed)
               : 0.0;
  }
  double jobs_per_minute() const {
    return wall_seconds > 0.0
               ? 60.0 * static_cast<double>(completed) / wall_seconds
               : 0.0;
  }
};

class CampaignService {
 public:
  explicit CampaignService(const ServiceConfig& config);
  ~CampaignService();  ///< shutdown() if still running

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Submit one request. Blocks while the queue is full (backpressure).
  /// Always returns a job id — rejected submissions get a JobRecord in
  /// state Rejected with the reason in `error`.
  int submit(const JobRequest& request);

  /// Block until every submitted job reached a terminal state.
  void wait_all();

  /// Stop accepting work, drain the queue, join the workers. Idempotent.
  void shutdown();

  JobRecord job(int id) const;
  std::vector<JobRecord> jobs() const;
  /// The job's result (from the content-addressed store); nullopt unless
  /// the job is Done.
  std::optional<JobResult> result(int id) const;

  CampaignStats stats() const;
  const ResultStore& store() const { return store_; }

  /// Snapshot the aggregate counters into the service's metrics Registry
  /// and return it (service.* counters/gauges + job-seconds histogram).
  const metrics::Registry& registry();

  /// End-of-campaign machine-readable report: one JSON object with a
  /// "campaign" aggregate block and a per-job "jobs" array.
  void write_json_report(std::ostream& os) const;

 private:
  void worker_main();
  void run_one(const QueueEntry& entry);
  /// Mark `id` Done (and serve every coalesced waiter of `key`).
  void complete_job(int id, RequestKey key, bool cache_hit);
  void fail_job(int id, RequestKey key, const std::string& error);
  JobRecord& record_locked(int id);
  const JobRecord& record_locked(int id) const;
  CampaignStats stats_locked() const;

  const ServiceConfig cfg_;
  const GllBasis basis_;
  Scheduler scheduler_;
  JobQueue queue_;
  ResultStore store_;
  MeshCache mesh_cache_;
  metrics::Registry registry_;
  WallTimer lifetime_;

  mutable std::mutex mutex_;
  std::condition_variable all_done_;
  std::vector<JobRecord> records_;
  /// Content key -> primary job id, for requests queued or running.
  std::map<RequestKey, int> inflight_;
  /// Content key -> coalesced duplicate job ids waiting on the primary.
  std::map<RequestKey, std::vector<int>> waiters_;
  std::uint64_t pending_ = 0;  ///< jobs not yet terminal
  CampaignStats stats_;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;
};

}  // namespace sfg::service

#pragma once

/// \file job.hpp
/// Campaign-service job model (ISSUE 5). A JobRequest is one simulation
/// request — event (source), model, resolution, stations, time-marching
/// parameters — the shape of one row of the paper's §6 campaign table
/// (Franklin/Kraken/Jaguar/Ranger runs planned ahead with the §5 models).
///
/// Requests are VALUES: trivially comparable, hashable, and serializable.
/// `request_key` is a content hash over exactly the fields that determine
/// the physics output; service-level knobs (priority, checkpoint cadence,
/// injected faults) are excluded, so two requests for the same physics
/// dedupe onto one cache entry even when their scheduling differs.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sfg::service {

/// Material models a job can request (the "model" axis of the cache key).
enum class BoxModel : std::int32_t {
  UniformRock = 0,  ///< homogeneous solid box
  FluidLayer = 1,   ///< solid box with a fluid band (solid-fluid coupling)
};

/// A recording station (located exactly, Lagrange-interpolated).
struct StationSpec {
  double x = 0.0, y = 0.0, z = 0.0;
};

/// The seismic event: a Ricker point force.
struct SourceSpec {
  double x = 0.0, y = 0.0, z = 0.0;
  std::array<double, 3> force{0.0, 0.0, 0.0};
  double f0 = 10.0;  ///< Ricker dominant frequency
  double t0 = 0.1;   ///< Ricker delay
};

/// Declarative fault to inject into a job's FIRST attempt (smpi::FaultPlan
/// is built from this by the worker). Excluded from the content key: a
/// fault changes how a run is executed, never what it computes.
struct FaultSpec {
  int kill_rank = -1;  ///< rank that dies (< 0 = no injected death)
  int kill_step = -1;  ///< time step the death fires at (notify_step)
  bool empty() const { return kill_rank < 0 || kill_step < 0; }
};

/// One simulation request. Box-mesh based (the validation workhorse of the
/// repo): `nex` is the element count per box edge — the same resolution
/// axis as the globe mesher's NEX — and `nranks` the 1-D slice
/// decomposition (the NPROC axis of the mesh-cache key).
struct JobRequest {
  // ---- mesh / model / resolution (cache-key fields) ----
  int nex = 4;
  int nranks = 1;  ///< 1 = serial, n = n x 1 x 1 slice decomposition
  BoxModel model = BoxModel::UniformRock;
  double extent_m = 1000.0;  ///< cubic box edge length

  // ---- event + stations (cache-key fields) ----
  SourceSpec source;
  std::vector<StationSpec> stations;

  // ---- time marching (cache-key fields) ----
  double dt = 1.5e-3;
  int nsteps = 60;

  // ---- service knobs (NOT in the content key) ----
  int priority = 0;  ///< higher runs first
  /// Periodic checkpoint cadence while the job runs (steps; 0 = only
  /// cold restarts on retry). Retries resume from the last consistent
  /// per-rank checkpoint set instead of from scratch.
  int checkpoint_interval_steps = 0;
  FaultSpec fault;  ///< injected into the first attempt only
};

/// Content-address of a request: FNV-1a over the canonical encoding of
/// the physics fields (mesh, model, event, stations, marching). Service
/// knobs are excluded — see the file comment.
using RequestKey = std::uint64_t;

namespace detail {
inline void hash_bytes(RequestKey& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;  // FNV-1a 64-bit prime
  }
}
template <typename T>
void hash_value(RequestKey& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  hash_bytes(h, &v, sizeof(v));
}
}  // namespace detail

inline RequestKey request_key(const JobRequest& r) {
  RequestKey h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  detail::hash_value(h, std::int32_t{r.nex});
  detail::hash_value(h, std::int32_t{r.nranks});
  detail::hash_value(h, static_cast<std::int32_t>(r.model));
  detail::hash_value(h, r.extent_m);
  detail::hash_value(h, r.source.x);
  detail::hash_value(h, r.source.y);
  detail::hash_value(h, r.source.z);
  detail::hash_value(h, r.source.force);
  detail::hash_value(h, r.source.f0);
  detail::hash_value(h, r.source.t0);
  detail::hash_value(h, static_cast<std::int32_t>(r.stations.size()));
  for (const StationSpec& s : r.stations) {
    detail::hash_value(h, s.x);
    detail::hash_value(h, s.y);
    detail::hash_value(h, s.z);
  }
  detail::hash_value(h, r.dt);
  detail::hash_value(h, std::int32_t{r.nsteps});
  return h;
}

/// Lifecycle of one submitted job.
enum class JobState : std::int32_t {
  Rejected,   ///< admission control refused it (cost gate / bad request)
  Queued,     ///< admitted, waiting in the MPMC queue
  Coalesced,  ///< duplicate of an in-flight request; waits for the primary
  Running,    ///< claimed by a worker
  Done,       ///< result available in the store
  Failed,     ///< all retry attempts exhausted (or non-retryable error)
};

inline const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Rejected:  return "rejected";
    case JobState::Queued:    return "queued";
    case JobState::Coalesced: return "coalesced";
    case JobState::Running:   return "running";
    case JobState::Done:      return "done";
    case JobState::Failed:    return "failed";
  }
  return "?";
}

/// The service's ledger entry for one submitted job.
struct JobRecord {
  int id = -1;
  JobRequest request;
  RequestKey key = 0;
  JobState state = JobState::Queued;
  bool cache_hit = false;  ///< served from the result store, not computed
  int attempts = 0;        ///< execution attempts (0 for cache hits)
  /// Step the last retry resumed from (-1 = never restarted / cold).
  int resumed_from_step = -1;
  /// Per-rank time steps actually marched, summed over attempts (failed
  /// attempts contribute the steps they completed before dying). With
  /// retry-from-checkpoint this is < the cold-restart total; the report
  /// prices the difference.
  std::int64_t steps_executed = 0;
  double predicted_core_seconds = 0.0;  ///< admission-time capacity price
  double wall_seconds = 0.0;            ///< measured execution wall time
  std::string error;                    ///< last failure message
};

}  // namespace sfg::service

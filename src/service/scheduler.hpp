#pragma once

/// \file scheduler.hpp
/// Cost-aware admission and pricing for the campaign service (ISSUE 5).
///
/// The paper's campaigns were PLANNED: the §5 capacity models priced every
/// run in core-seconds before it was submitted. The service does the same
/// with the repo's reproduction of those models (src/perf/capacity.*):
/// each job's predicted core-seconds gate admission (a per-job ceiling and
/// a whole-campaign budget), and the same price feeds the queue's
/// cheapest-completion-first order. After execution the SAME model prices
/// the steps a job *actually* marched — including the steps a failed
/// attempt wasted and the steps a checkpoint restart skipped — which is
/// how the report shows retry-from-checkpoint beating a cold re-run.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "perf/machines.hpp"
#include "service/job.hpp"

namespace sfg::service {

/// Pricing context: the machine whose sustained per-core rate converts
/// model flops into core-seconds (capacity.hpp's calibrated §5 rate).
struct CostModel {
  const MachineSpec* machine = nullptr;  ///< null = franklin()
  /// Seconds of one core for one model flop on `machine`.
  double seconds_per_flop() const;
};

/// Analytic flops of one time step of `r` across all its ranks (box of
/// nex^3 elements priced with the SEM kernel profile; fluid elements are
/// priced at the solid rate — a deliberate upper bound).
double predict_job_flops_per_step(const JobRequest& r);

/// Admission-time price: core-seconds to march the full request once.
double predict_core_seconds(const JobRequest& r, const CostModel& model);

/// Replay-style price of `steps_executed` per-rank steps of `r` (the same
/// per-step flop pricing applied to what actually ran).
double priced_core_seconds(const JobRequest& r, std::int64_t steps_executed,
                           const CostModel& model);

/// Admission gates. Defaults admit everything.
struct AdmissionPolicy {
  /// Reject any single job predicted above this (core-seconds).
  double max_job_core_seconds = 1e18;
  /// Reject once the sum of admitted predictions would exceed this.
  double max_campaign_core_seconds = 1e18;
};

/// Why a job was refused (empty optional from Scheduler::admit).
struct RejectionReason {
  std::string message;
};

/// Thread-safe admission controller: validates the request, prices it,
/// and consumes campaign budget. Pure bookkeeping — queue insertion stays
/// with the service.
class Scheduler {
 public:
  Scheduler(const AdmissionPolicy& policy, const CostModel& model);

  /// Price and admit `r`. Returns the predicted core-seconds, or nullopt
  /// with `why` filled when the request is invalid or over budget.
  std::optional<double> admit(const JobRequest& r, RejectionReason* why);

  /// Budget already committed to admitted jobs (core-seconds).
  double committed_core_seconds() const;

  const CostModel& cost_model() const { return model_; }

 private:
  const AdmissionPolicy policy_;
  const CostModel model_;
  mutable std::mutex mutex_;
  double committed_ = 0.0;
};

}  // namespace sfg::service

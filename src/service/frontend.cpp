#include "service/frontend.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace sfg::service {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest double representation that round-trips through strtod, so a
/// request serialized with request_to_json re-parses to the same content
/// key bit for bit.
std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const std::vector<double> kLatencyBuckets = {0.001, 0.01, 0.1, 1.0,
                                             10.0, 60.0};

}  // namespace

// ---- shard queue set ----

ShardQueueSet::ShardQueueSet(int nshards, std::size_t capacity,
                             std::size_t steal_threshold)
    : nshards_(nshards),
      capacity_(capacity),
      threshold_(steal_threshold == 0 || steal_threshold > capacity
                     ? capacity
                     : steal_threshold),
      queues_(static_cast<std::size_t>(nshards)),
      peaks_(static_cast<std::size_t>(nshards), 0),
      halted_(static_cast<std::size_t>(nshards), false) {
  SFG_CHECK_MSG(nshards >= 1, "queue set needs at least one shard");
  SFG_CHECK_MSG(capacity >= 1, "shard queues need capacity >= 1");
}

int ShardQueueSet::spill_target_locked(int home) const {
  int best = -1;
  std::size_t best_size = capacity_;  // only queues with space qualify
  for (int q = 0; q < nshards_; ++q) {
    if (q == home || halted_[static_cast<std::size_t>(q)]) continue;
    const std::size_t n = queues_[static_cast<std::size_t>(q)].size();
    if (n < best_size) {
      best = q;
      best_size = n;
    }
  }
  return best;
}

int ShardQueueSet::steal_source_locked(int shard) const {
  for (int d = 1; d < nshards_; ++d) {
    const auto q = static_cast<std::size_t>((shard + d) % nshards_);
    if (queues_[q].empty()) continue;
    // Steal only where locality is already lost: a dead shard's backlog,
    // a saturated queue, or the final drain after close().
    if (halted_[q] || closed_ || queues_[q].size() >= threshold_)
      return static_cast<int>(q);
  }
  return -1;
}

int ShardQueueSet::submit(int home, QueueEntry entry) {
  SFG_CHECK_MSG(home >= 0 && home < nshards_, "bad home shard " << home);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (closed_) return -1;
    const auto h = static_cast<std::size_t>(home);
    int target = -1;
    if (!halted_[h] && queues_[h].size() < capacity_)
      target = home;
    else
      target = spill_target_locked(home);
    if (target >= 0) {
      const auto t = static_cast<std::size_t>(target);
      entry.seq = next_seq_++;
      queues_[t].insert(entry);
      peaks_[t] = std::max(peaks_[t], queues_[t].size());
      // Wake every waiting worker: a saturated queue may just have become
      // stealable by any of them.
      not_empty_.notify_all();
      return target;
    }
    not_full_.wait(lock);  // backpressure: every live queue is full
  }
}

std::optional<ShardQueueSet::Popped> ShardQueueSet::pop_for(int shard) {
  SFG_CHECK_MSG(shard >= 0 && shard < nshards_, "bad shard " << shard);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (halted_[static_cast<std::size_t>(shard)]) return std::nullopt;
    int src = !queues_[static_cast<std::size_t>(shard)].empty()
                  ? shard
                  : steal_source_locked(shard);
    if (src >= 0) {
      auto& q = queues_[static_cast<std::size_t>(src)];
      Popped p{*q.begin(), src};
      q.erase(q.begin());
      not_full_.notify_all();
      return p;
    }
    if (closed_) return std::nullopt;  // closed and nothing left to drain
    not_empty_.wait(lock);
  }
}

void ShardQueueSet::halt(int shard) {
  SFG_CHECK_MSG(shard >= 0 && shard < nshards_, "bad shard " << shard);
  std::lock_guard<std::mutex> lock(mutex_);
  halted_[static_cast<std::size_t>(shard)] = true;
  // The dead shard's workers wake and exit; everyone else wakes because
  // the halted queue became stealable and stopped taking spills.
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool ShardQueueSet::halted(int shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return halted_[static_cast<std::size_t>(shard)];
}

void ShardQueueSet::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::size_t ShardQueueSet::size(int shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_[static_cast<std::size_t>(shard)].size();
}

std::size_t ShardQueueSet::peak(int shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peaks_[static_cast<std::size_t>(shard)];
}

// ---- front-end ----

ShardedFrontend::ShardedFrontend(const FrontendConfig& config)
    : cfg_(config),
      basis_(4),
      ring_(config.num_shards, config.ring),
      scheduler_(config.admission, CostModel{config.pricing_machine}),
      queues_(config.num_shards, config.shard_queue_capacity,
              config.steal_threshold),
      store_(config.work_dir + "/results", config.io_backend),
      mesh_cache_(basis_) {
  SFG_CHECK_MSG(cfg_.num_shards >= 1, "front-end needs at least one shard");
  SFG_CHECK_MSG(cfg_.workers_per_shard >= 1,
                "each shard needs at least one worker");
  caches_.reserve(static_cast<std::size_t>(cfg_.num_shards));
  shard_stats_.resize(static_cast<std::size_t>(cfg_.num_shards));
  for (int s = 0; s < cfg_.num_shards; ++s) {
    caches_.push_back(
        std::make_unique<TieredCache>(store_, cfg_.lru_entries_per_shard));
    shard_stats_[static_cast<std::size_t>(s)].shard = s;
  }
  if (cfg_.mesh_cache_max_resident > 0)
    mesh_cache_.configure_spill(cfg_.work_dir + "/mesh_cache",
                                cfg_.mesh_cache_max_resident);
  shard_joined_.assign(static_cast<std::size_t>(cfg_.num_shards), false);
  workers_.reserve(static_cast<std::size_t>(cfg_.num_shards) *
                   static_cast<std::size_t>(cfg_.workers_per_shard));
  for (int s = 0; s < cfg_.num_shards; ++s)
    for (int w = 0; w < cfg_.workers_per_shard; ++w)
      workers_.emplace_back([this, s] { worker_main(s); });
}

ShardedFrontend::~ShardedFrontend() { shutdown(); }

int ShardedFrontend::submit(const JobRequest& request) {
  const RequestKey key = request_key(request);
  const int home = ring_.shard_for(key);
  int id = -1;
  bool enqueue = false;
  QueueEntry entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = static_cast<int>(records_.size());
    FrontendJob rec;
    rec.id = id;
    rec.request = request;
    rec.key = key;
    rec.home_shard = home;
    rec.submit_time_s = lifetime_.seconds();
    ++stats_.submitted;
    ++shard_stats_[static_cast<std::size_t>(home)].routed;

    CacheTier tier = CacheTier::Miss;
    if (caches_[static_cast<std::size_t>(home)]->get(key, &tier) !=
        nullptr) {
      rec.state = JobState::Done;
      rec.cache_hit = true;
      rec.tier = tier;
      rec.done_time_s = lifetime_.seconds();
      ++stats_.completed;
      ++stats_.cache_hits;
      if (tier == CacheTier::Memory)
        ++stats_.memory_hits;
      else
        ++stats_.store_hits;
      registry_.histogram("frontend.latency_seconds", kLatencyBuckets)
          .record(rec.latency_seconds());
      records_.push_back(std::move(rec));
      return id;
    }
    if (auto it = inflight_.find(key); it != inflight_.end()) {
      // Global coalescing: the ring sent every holder of this key here,
      // so one in-flight map catches duplicates from every submitter.
      rec.state = JobState::Coalesced;
      rec.coalesced = true;
      waiters_[key].push_back(id);
      ++pending_;
      records_.push_back(std::move(rec));
      return id;
    }

    RejectionReason why;
    const std::optional<double> cost = scheduler_.admit(request, &why);
    if (!cost.has_value()) {
      rec.state = JobState::Rejected;
      rec.error = why.message;
      ++stats_.rejected;
      records_.push_back(std::move(rec));
      return id;
    }
    rec.state = JobState::Queued;
    rec.predicted_core_seconds = *cost;
    stats_.predicted_core_seconds += *cost;
    inflight_[key] = id;
    ++pending_;
    records_.push_back(std::move(rec));

    entry.job_id = id;
    entry.priority = request.priority;
    entry.cost_core_seconds = *cost;
    enqueue = true;
  }
  if (enqueue) {
    // Blocking backpressure OUTSIDE the front-end lock, exactly like the
    // single-process service: a full fleet stalls this submitter without
    // stalling workers or other submitters.
    const int queued_on = queues_.submit(home, entry);
    if (queued_on < 0) {
      fail_job(id, key,
               "front-end shut down before the job could be queued");
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      record_locked(id).queued_shard = queued_on;
      ++shard_stats_[static_cast<std::size_t>(queued_on)].queued;
      if (queued_on != home) ++stats_.spilled;
    }
  }
  return id;
}

void ShardedFrontend::worker_main(int shard) {
  while (auto popped = queues_.pop_for(shard)) run_one(*popped, shard);
}

void ShardedFrontend::run_one(const ShardQueueSet::Popped& popped,
                              int executing_shard) {
  const int id = popped.entry.job_id;
  JobRequest request;
  RequestKey key = 0;
  int home = 0;
  const bool stolen = popped.source != executing_shard;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FrontendJob& rec = record_locked(id);
    rec.state = JobState::Running;
    rec.executed_shard = executing_shard;
    rec.stolen = stolen;
    request = rec.request;
    key = rec.key;
    home = rec.home_shard;
  }
  const std::string scratch =
      cfg_.work_dir + "/jobs/" + std::to_string(id);
  try {
    ExecutionOutcome out = execute_job(request, mesh_cache_, scratch,
                                       cfg_.max_retries, cfg_.io_backend);
    // Results always land in the HOME shard's memory tier (plus the
    // shared store): the ring routes every future lookup of this key
    // there, even when a stolen execution ran elsewhere.
    caches_[static_cast<std::size_t>(home)]->put(key, out.result);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      FrontendJob& rec = record_locked(id);
      rec.attempts = out.attempts;
      rec.resumed_from_step = out.resumed_from_step;
      rec.steps_executed = out.steps_executed;
      ++stats_.executed;
      stats_.retries +=
          static_cast<std::uint64_t>(std::max(0, out.attempts - 1));
      stats_.priced_core_seconds += priced_core_seconds(
          request, out.steps_executed, scheduler_.cost_model());
      ShardStats& ss = shard_stats_[static_cast<std::size_t>(executing_shard)];
      ++ss.executed;
      if (stolen) {
        ++ss.stolen;
        ++stats_.stolen;
      }
    }
    complete_job(id, key, /*cache_hit=*/false, CacheTier::Miss);
  } catch (const std::exception& e) {
    fail_job(id, key, e.what());
  }
}

void ShardedFrontend::complete_job(int id, RequestKey key, bool cache_hit,
                                   CacheTier tier) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double now = lifetime_.seconds();
  FrontendJob& rec = record_locked(id);
  rec.state = JobState::Done;
  rec.cache_hit = cache_hit;
  rec.tier = tier;
  rec.done_time_s = now;
  ++stats_.completed;
  if (cache_hit) ++stats_.cache_hits;
  registry_.histogram("frontend.latency_seconds", kLatencyBuckets)
      .record(rec.latency_seconds());
  SFG_CHECK(pending_ > 0);
  --pending_;
  inflight_.erase(key);
  if (auto it = waiters_.find(key); it != waiters_.end()) {
    for (int w : it->second) {
      FrontendJob& wrec = record_locked(w);
      wrec.state = JobState::Done;
      wrec.cache_hit = true;
      wrec.done_time_s = now;
      ++stats_.completed;
      ++stats_.cache_hits;
      ++stats_.coalesced_hits;
      registry_.histogram("frontend.latency_seconds", kLatencyBuckets)
          .record(wrec.latency_seconds());
      SFG_CHECK(pending_ > 0);
      --pending_;
    }
    waiters_.erase(it);
  }
  all_done_.notify_all();
}

void ShardedFrontend::fail_job(int id, RequestKey key,
                               const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double now = lifetime_.seconds();
  FrontendJob& rec = record_locked(id);
  rec.state = JobState::Failed;
  rec.error = error;
  rec.done_time_s = now;
  ++stats_.failed;
  registry_.histogram("frontend.latency_seconds", kLatencyBuckets)
      .record(rec.latency_seconds());
  SFG_CHECK(pending_ > 0);
  --pending_;
  inflight_.erase(key);
  if (auto it = waiters_.find(key); it != waiters_.end()) {
    for (int w : it->second) {
      FrontendJob& wrec = record_locked(w);
      wrec.state = JobState::Failed;
      wrec.error = "primary job " + std::to_string(id) + " failed: " + error;
      wrec.done_time_s = now;
      ++stats_.failed;
      SFG_CHECK(pending_ > 0);
      --pending_;
    }
    waiters_.erase(it);
  }
  all_done_.notify_all();
}

void ShardedFrontend::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [&] { return pending_ == 0; });
}

void ShardedFrontend::halt_shard(int shard) {
  SFG_CHECK_MSG(shard >= 0 && shard < cfg_.num_shards,
                "unknown shard " << shard);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shard_joined_[static_cast<std::size_t>(shard)]) return;
    shard_stats_[static_cast<std::size_t>(shard)].halted = true;
  }
  queues_.halt(shard);
  // Join that shard's workers OUTSIDE the front-end mutex: a worker
  // finishing its current job needs the mutex to complete it.
  const std::size_t first = static_cast<std::size_t>(shard) *
                            static_cast<std::size_t>(cfg_.workers_per_shard);
  for (int w = 0; w < cfg_.workers_per_shard; ++w) {
    std::thread& t = workers_[first + static_cast<std::size_t>(w)];
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  shard_joined_[static_cast<std::size_t>(shard)] = true;
}

void ShardedFrontend::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queues_.close();  // pending entries drain (any live worker), then exit
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

FrontendJob ShardedFrontend::job(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return record_locked(id);
}

std::vector<FrontendJob> ShardedFrontend::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::optional<JobResult> ShardedFrontend::result(int id) const {
  RequestKey key = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const FrontendJob& rec = record_locked(id);
    if (rec.state != JobState::Done) return std::nullopt;
    key = rec.key;
  }
  return store_.load(key);
}

FrontendJob& ShardedFrontend::record_locked(int id) {
  SFG_CHECK_MSG(id >= 0 && id < static_cast<int>(records_.size()),
                "unknown job id " << id);
  return records_[static_cast<std::size_t>(id)];
}

const FrontendJob& ShardedFrontend::record_locked(int id) const {
  SFG_CHECK_MSG(id >= 0 && id < static_cast<int>(records_.size()),
                "unknown job id " << id);
  return records_[static_cast<std::size_t>(id)];
}

FrontendStats ShardedFrontend::stats_locked() const {
  FrontendStats s = stats_;
  s.mesh_cache_hits = mesh_cache_.hits();
  s.mesh_cache_misses = mesh_cache_.misses();
  for (int q = 0; q < cfg_.num_shards; ++q)
    s.queue_peak = std::max(s.queue_peak, queues_.peak(q));
  s.wall_seconds = lifetime_.seconds();
  return s;
}

FrontendStats ShardedFrontend::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_locked();
}

std::vector<ShardStats> ShardedFrontend::shard_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ShardStats> out = shard_stats_;
  for (int s = 0; s < cfg_.num_shards; ++s) {
    auto& ss = out[static_cast<std::size_t>(s)];
    const TieredCache& c = *caches_[static_cast<std::size_t>(s)];
    ss.memory_hits = c.memory_hits();
    ss.store_hits = c.store_hits();
    ss.queue_peak = queues_.peak(s);
    ss.halted = queues_.halted(s);
  }
  return out;
}

const metrics::Registry& ShardedFrontend::registry() {
  std::lock_guard<std::mutex> lock(mutex_);
  const FrontendStats s = stats_locked();
  auto sync = [&](const char* name, std::uint64_t value) {
    metrics::Counter& c = registry_.counter(name);
    c.inc(value - c.value());
  };
  sync("frontend.jobs_submitted", s.submitted);
  sync("frontend.jobs_completed", s.completed);
  sync("frontend.jobs_failed", s.failed);
  sync("frontend.jobs_rejected", s.rejected);
  sync("frontend.cache_hits", s.cache_hits);
  sync("frontend.cache_memory_hits", s.memory_hits);
  sync("frontend.cache_store_hits", s.store_hits);
  sync("frontend.coalesced_hits", s.coalesced_hits);
  sync("frontend.jobs_executed", s.executed);
  sync("frontend.jobs_stolen", s.stolen);
  sync("frontend.jobs_spilled", s.spilled);
  sync("frontend.retries", s.retries);
  registry_.gauge("frontend.cache_hit_rate").set(s.cache_hit_rate());
  registry_.gauge("frontend.jobs_per_minute").set(s.jobs_per_minute());
  registry_.gauge("frontend.queue_peak")
      .set(static_cast<double>(s.queue_peak));
  return registry_;
}

void ShardedFrontend::write_json_report(std::ostream& os) const {
  const std::vector<ShardStats> per_shard = shard_stats();
  std::lock_guard<std::mutex> lock(mutex_);
  const FrontendStats s = stats_locked();
  os << "{\n  \"frontend\": {\n";
  os << "    \"num_shards\": " << cfg_.num_shards << ",\n";
  os << "    \"jobs_submitted\": " << s.submitted << ",\n";
  os << "    \"jobs_completed\": " << s.completed << ",\n";
  os << "    \"jobs_failed\": " << s.failed << ",\n";
  os << "    \"jobs_rejected\": " << s.rejected << ",\n";
  os << "    \"jobs_executed\": " << s.executed << ",\n";
  os << "    \"cache_hits\": " << s.cache_hits << ",\n";
  os << "    \"cache_hit_rate\": " << s.cache_hit_rate() << ",\n";
  os << "    \"memory_hits\": " << s.memory_hits << ",\n";
  os << "    \"store_hits\": " << s.store_hits << ",\n";
  os << "    \"coalesced_hits\": " << s.coalesced_hits << ",\n";
  os << "    \"stolen\": " << s.stolen << ",\n";
  os << "    \"spilled\": " << s.spilled << ",\n";
  os << "    \"retries\": " << s.retries << ",\n";
  os << "    \"queue_peak\": " << s.queue_peak << ",\n";
  os << "    \"predicted_core_seconds\": " << s.predicted_core_seconds
     << ",\n";
  os << "    \"priced_core_seconds\": " << s.priced_core_seconds << ",\n";
  os << "    \"wall_seconds\": " << s.wall_seconds << ",\n";
  os << "    \"jobs_per_minute\": " << s.jobs_per_minute() << "\n";
  os << "  },\n  \"shards\": [\n";
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    const ShardStats& ss = per_shard[i];
    os << "    {\"shard\": " << ss.shard << ", \"halted\": "
       << (ss.halted ? "true" : "false") << ", \"routed\": " << ss.routed
       << ", \"queued\": " << ss.queued << ", \"executed\": " << ss.executed
       << ", \"stolen\": " << ss.stolen
       << ", \"memory_hits\": " << ss.memory_hits
       << ", \"store_hits\": " << ss.store_hits
       << ", \"queue_peak\": " << ss.queue_peak << "}"
       << (i + 1 < per_shard.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"jobs\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const FrontendJob& r = records_[i];
    os << "    {\"id\": " << r.id << ", \"state\": \""
       << job_state_name(r.state) << "\", \"key\": \""
       << ResultStore::key_hex(r.key) << "\", \"home_shard\": "
       << r.home_shard << ", \"executed_shard\": " << r.executed_shard
       << ", \"cache_hit\": " << (r.cache_hit ? "true" : "false")
       << ", \"tier\": \"" << cache_tier_name(r.tier)
       << "\", \"coalesced\": " << (r.coalesced ? "true" : "false")
       << ", \"stolen\": " << (r.stolen ? "true" : "false")
       << ", \"attempts\": " << r.attempts
       << ", \"latency_seconds\": " << r.latency_seconds()
       << ", \"error\": \"" << json_escape(r.error) << "\"}"
       << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// ---- the line protocol ----

namespace {

/// One parsed protocol value: the grammar is deliberately tiny — numbers,
/// strings, and flat arrays of numbers cover the whole request shape.
struct JsonValue {
  enum class Kind { Number, String, Array } kind = Kind::Number;
  double number = 0.0;
  std::string string;
  std::vector<double> array;
};

using JsonFields = std::vector<std::pair<std::string, JsonValue>>;

/// Recursive-descent scanner for one `{"key": value, ...}` line.
class LineScanner {
 public:
  explicit LineScanner(const std::string& s) : s_(s) {}

  bool parse_object(JsonFields* out, std::string* error) {
    skip_ws();
    if (!consume('{')) return fail("expected '{'", error);
    skip_ws();
    if (consume('}')) return finish(error);
    for (;;) {
      std::pair<std::string, JsonValue> field;
      if (!parse_string(&field.first, error)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key", error);
      if (!parse_value(&field.second, error)) return false;
      out->push_back(std::move(field));
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) return finish(error);
      return fail("expected ',' or '}'", error);
    }
  }

 private:
  bool finish(std::string* error) {
    skip_ws();
    if (i_ != s_.size()) return fail("trailing bytes after object", error);
    return true;
  }

  bool fail(const std::string& msg, std::string* error) {
    if (error != nullptr)
      *error = msg + " at byte " + std::to_string(i_);
    return false;
  }

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\r' || s_[i_] == '\n'))
      ++i_;
  }

  bool consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out, std::string* error) {
    skip_ws();
    if (!consume('"')) return fail("expected '\"'", error);
    out->clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= s_.size()) break;
        const char esc = s_[i_++];
        switch (esc) {
          case '"':  *out += '"'; break;
          case '\\': *out += '\\'; break;
          case 'n':  *out += '\n'; break;
          case 't':  *out += '\t'; break;
          default:
            return fail(std::string("unsupported escape '\\") + esc + "'",
                        error);
        }
        continue;
      }
      *out += c;
    }
    return fail("unterminated string", error);
  }

  bool parse_number(double* out, std::string* error) {
    skip_ws();
    const char* start = s_.c_str() + i_;
    char* after = nullptr;
    *out = std::strtod(start, &after);
    if (after == start) return fail("expected a number", error);
    i_ += static_cast<std::size_t>(after - start);
    return true;
  }

  bool parse_value(JsonValue* out, std::string* error) {
    skip_ws();
    if (i_ >= s_.size()) return fail("expected a value", error);
    if (s_[i_] == '"') {
      out->kind = JsonValue::Kind::String;
      return parse_string(&out->string, error);
    }
    if (s_[i_] == '[') {
      ++i_;
      out->kind = JsonValue::Kind::Array;
      skip_ws();
      if (consume(']')) return true;
      for (;;) {
        double v = 0.0;
        if (!parse_number(&v, error)) return false;
        out->array.push_back(v);
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'", error);
      }
    }
    out->kind = JsonValue::Kind::Number;
    return parse_number(&out->number, error);
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

bool value_as_int(const JsonValue& v, int* out) {
  if (v.kind != JsonValue::Kind::Number) return false;
  *out = static_cast<int>(v.number);
  return true;
}

std::string error_line(const std::string& message) {
  return "{\"error\": \"" + json_escape(message) + "\"}";
}

}  // namespace

std::string request_to_json(const JobRequest& r) {
  std::ostringstream os;
  os << "{\"nex\": " << r.nex << ", \"nranks\": " << r.nranks
     << ", \"model\": \""
     << (r.model == BoxModel::FluidLayer ? "fluid_layer" : "rock")
     << "\", \"extent_m\": " << json_double(r.extent_m)
     << ", \"source_x\": " << json_double(r.source.x)
     << ", \"source_y\": " << json_double(r.source.y)
     << ", \"source_z\": " << json_double(r.source.z)
     << ", \"force_x\": " << json_double(r.source.force[0])
     << ", \"force_y\": " << json_double(r.source.force[1])
     << ", \"force_z\": " << json_double(r.source.force[2])
     << ", \"f0\": " << json_double(r.source.f0)
     << ", \"t0\": " << json_double(r.source.t0)
     << ", \"dt\": " << json_double(r.dt) << ", \"nsteps\": " << r.nsteps
     << ", \"priority\": " << r.priority
     << ", \"checkpoint_interval_steps\": " << r.checkpoint_interval_steps
     << ", \"kill_rank\": " << r.fault.kill_rank
     << ", \"kill_step\": " << r.fault.kill_step << ", \"stations\": [";
  for (std::size_t s = 0; s < r.stations.size(); ++s) {
    const StationSpec& st = r.stations[s];
    os << (s > 0 ? ", " : "") << json_double(st.x) << ", "
       << json_double(st.y) << ", " << json_double(st.z);
  }
  os << "]}";
  return os.str();
}

bool parse_request_json(const std::string& line, JobRequest* out,
                        std::string* error) {
  JsonFields fields;
  LineScanner scanner(line);
  if (!scanner.parse_object(&fields, error)) return false;
  JobRequest r;
  for (const auto& [key, v] : fields) {
    bool ok = true;
    if (key == "nex") ok = value_as_int(v, &r.nex);
    else if (key == "nranks") ok = value_as_int(v, &r.nranks);
    else if (key == "nsteps") ok = value_as_int(v, &r.nsteps);
    else if (key == "priority") ok = value_as_int(v, &r.priority);
    else if (key == "checkpoint_interval_steps")
      ok = value_as_int(v, &r.checkpoint_interval_steps);
    else if (key == "kill_rank") ok = value_as_int(v, &r.fault.kill_rank);
    else if (key == "kill_step") ok = value_as_int(v, &r.fault.kill_step);
    else if (key == "extent_m" && v.kind == JsonValue::Kind::Number)
      r.extent_m = v.number;
    else if (key == "dt" && v.kind == JsonValue::Kind::Number)
      r.dt = v.number;
    else if (key == "source_x" && v.kind == JsonValue::Kind::Number)
      r.source.x = v.number;
    else if (key == "source_y" && v.kind == JsonValue::Kind::Number)
      r.source.y = v.number;
    else if (key == "source_z" && v.kind == JsonValue::Kind::Number)
      r.source.z = v.number;
    else if (key == "force_x" && v.kind == JsonValue::Kind::Number)
      r.source.force[0] = v.number;
    else if (key == "force_y" && v.kind == JsonValue::Kind::Number)
      r.source.force[1] = v.number;
    else if (key == "force_z" && v.kind == JsonValue::Kind::Number)
      r.source.force[2] = v.number;
    else if (key == "f0" && v.kind == JsonValue::Kind::Number)
      r.source.f0 = v.number;
    else if (key == "t0" && v.kind == JsonValue::Kind::Number)
      r.source.t0 = v.number;
    else if (key == "model") {
      if (v.kind == JsonValue::Kind::String)
        ok = (v.string == "rock" &&
              (r.model = BoxModel::UniformRock, true)) ||
             (v.string == "fluid_layer" &&
              (r.model = BoxModel::FluidLayer, true));
      else if (v.kind == JsonValue::Kind::Number)
        r.model = v.number != 0.0 ? BoxModel::FluidLayer
                                  : BoxModel::UniformRock;
      else
        ok = false;
      if (!ok && error != nullptr)
        *error = "model must be \"rock\", \"fluid_layer\" or 0/1";
      if (!ok) return false;
    } else if (key == "stations") {
      if (v.kind != JsonValue::Kind::Array || v.array.size() % 3 != 0) {
        if (error != nullptr)
          *error = "stations must be a flat [x, y, z, ...] array "
                   "(3 numbers per station)";
        return false;
      }
      r.stations.clear();
      for (std::size_t i = 0; i < v.array.size(); i += 3)
        r.stations.push_back(
            {v.array[i], v.array[i + 1], v.array[i + 2]});
    } else {
      if (error != nullptr) *error = "unknown request field \"" + key + "\"";
      return false;
    }
    if (!ok) {
      if (error != nullptr)
        *error = "field \"" + key + "\" has the wrong type";
      return false;
    }
  }
  *out = r;
  return true;
}

std::string ShardedFrontend::handle_line(const std::string& line) {
  JsonFields fields;
  std::string error;
  {
    LineScanner scanner(line);
    if (!scanner.parse_object(&fields, &error)) return error_line(error);
  }
  // Control lines carry a "cmd" field; everything else is a request.
  for (const auto& [key, v] : fields) {
    if (key != "cmd") continue;
    if (v.kind != JsonValue::Kind::String)
      return error_line("cmd must be a string");
    if (v.string == "stats") {
      const FrontendStats s = stats();
      std::ostringstream os;
      os << "{\"submitted\": " << s.submitted << ", \"completed\": "
         << s.completed << ", \"failed\": " << s.failed
         << ", \"rejected\": " << s.rejected << ", \"cache_hits\": "
         << s.cache_hits << ", \"cache_hit_rate\": " << s.cache_hit_rate()
         << ", \"jobs_per_minute\": " << s.jobs_per_minute() << "}";
      return os.str();
    }
    if (v.string == "wait") {
      wait_all();
      return "{\"ok\": true}";
    }
    if (v.string == "job") {
      for (const auto& [k2, v2] : fields) {
        int id = -1;
        if (k2 == "id" && value_as_int(v2, &id)) {
          if (id < 0 || id >= static_cast<int>(jobs().size()))
            return error_line("unknown job id " + std::to_string(id));
          const FrontendJob rec = job(id);
          std::ostringstream os;
          os << "{\"id\": " << rec.id << ", \"state\": \""
             << job_state_name(rec.state) << "\", \"shard\": "
             << rec.home_shard << ", \"cache\": \""
             << (rec.cache_hit ? cache_tier_name(rec.tier) : "none")
             << "\", \"latency_seconds\": " << rec.latency_seconds()
             << "}";
          return os.str();
        }
      }
      return error_line("cmd \"job\" needs a numeric \"id\"");
    }
    return error_line("unknown cmd \"" + v.string + "\"");
  }

  JobRequest request;
  if (!parse_request_json(line, &request, &error)) return error_line(error);
  const int id = submit(request);
  const FrontendJob rec = job(id);
  std::ostringstream os;
  os << "{\"id\": " << rec.id << ", \"key\": \""
     << ResultStore::key_hex(rec.key) << "\", \"shard\": "
     << rec.home_shard << ", \"state\": \"" << job_state_name(rec.state)
     << "\", \"cache\": \""
     << (rec.cache_hit ? cache_tier_name(rec.tier) : "none") << "\"";
  if (!rec.error.empty())
    os << ", \"error\": \"" << json_escape(rec.error) << "\"";
  os << "}";
  return os.str();
}

}  // namespace sfg::service

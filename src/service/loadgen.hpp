#pragma once

/// \file loadgen.hpp
/// Deterministic open-loop load generator for the sharded front-end
/// (ISSUE 9). The workload is a pure function of the seed — arrival
/// times, event popularity and request bodies all come from the same
/// counter-hash construction as the fault injector's verdicts
/// (runtime/fault.cpp), so a load test replays bit-identically on any
/// machine: no wall-clock, no RNG state, no submission-order dependence
/// in the workload DEFINITION. (Measurement — latency percentiles,
/// jobs/min — uses the wall clock; the gates in scripts/bench.sh bound
/// it loosely.)
///
/// Shape of the workload: Poisson arrivals at `arrivals_per_second`
/// (exponential interarrival via inverse CDF) over a zipfian catalogue of
/// `num_events` distinct earthquake events, p(k) ∝ 1/(k+1)^zipf_s. Each
/// event has a fixed source location (deterministic per-event jitter of
/// the base request), so two requests for the same event carry the same
/// FNV-1a content key — the duplicate traffic the tiered cache and the
/// global coalescer are there to absorb.

#include <cstdint>
#include <string>
#include <vector>

#include "service/frontend.hpp"
#include "service/job.hpp"

namespace sfg::service {

struct LoadgenConfig {
  std::uint64_t seed = 1;
  int num_requests = 200;
  /// Open-loop Poisson arrival rate (events per WORKLOAD second; the
  /// runner's `time_scale` maps workload seconds to wall seconds).
  double arrivals_per_second = 50.0;
  int num_events = 32;      ///< distinct earthquake catalogue size
  double zipf_s = 1.1;      ///< popularity skew, p(k) ~ 1/(k+1)^s
  int priority_levels = 3;  ///< request priority cycles through [0, levels)
  /// Physics template; per-event source jitter is applied on top.
  JobRequest base;
  double source_jitter_m = 200.0;
};

/// One generated request: arrival offset on the workload clock plus the
/// catalogue event it asks for.
struct TimedRequest {
  double arrival_s = 0.0;
  int event = 0;
  JobRequest request;
};

/// A small valid physics template the tools, bench and tests share.
JobRequest loadgen_base_request();

/// The pure workload function: same config (seed included) => the same
/// vector, element for element, bit for bit.
std::vector<TimedRequest> generate_workload(const LoadgenConfig& config);

/// What run_workload measures (latencies in milliseconds).
struct LoadTestReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t executed = 0;
  std::uint64_t distinct_keys = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t memory_hits = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t coalesced_hits = 0;
  std::uint64_t stolen = 0;
  std::uint64_t spilled = 0;
  double cache_hit_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double jobs_per_minute = 0.0;
  double wall_seconds = 0.0;
};

/// Drive a front-end with the workload, open loop: sleep to each request's
/// arrival time (scaled by `time_scale` wall-seconds per workload-second;
/// 0 = submit back-to-back), submit, then wait_all() and aggregate. The
/// report's latency figures are wall-clock; everything else is
/// deterministic for a deterministic workload.
LoadTestReport run_workload(ShardedFrontend& frontend,
                            const std::vector<TimedRequest>& workload,
                            double time_scale);

/// Nearest-rank percentile (p in [0,100]) of an unsorted sample; 0 when
/// empty. Exposed for the determinism tests.
double percentile(std::vector<double> values, double p);

}  // namespace sfg::service

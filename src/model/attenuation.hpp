#pragma once

/// \file attenuation.hpp
/// Constant-Q viscoelastic attenuation via a series of standard linear
/// solids (SLS), as used by SPECFEM3D_GLOBE (paper §6: turning attenuation
/// on costs ~1.8x runtime with a near-imperceptible Tflops drop).
///
/// The relaxation function of N SLSs gives
///   1/Q(omega) ~= sum_l y_l * (omega tau_l) / (1 + (omega tau_l)^2),
/// valid for Q >> 1. Relaxation times tau_l are log-spaced across the
/// simulated frequency band and the dimensionless moduli defects y_l are
/// fitted by linear least squares so that Q(omega) is flat across the band.

#include <vector>

namespace sfg {

/// A fitted SLS series for one target quality factor.
struct SlsSeries {
  double target_q = 0.0;
  double f_min = 0.0, f_max = 0.0;
  std::vector<double> tau_sigma;  ///< relaxation times (s), one per SLS
  std::vector<double> y;          ///< moduli defects, one per SLS

  int num_sls() const { return static_cast<int>(tau_sigma.size()); }

  /// 1 + sum y_l: ratio of unrelaxed to relaxed modulus.
  double unrelaxed_factor() const;

  /// Model prediction Q(omega) for validation.
  double q_at(double omega) const;

  /// Phase-velocity dispersion factor at omega relative to the relaxed
  /// modulus (physical dispersion that accompanies attenuation).
  double modulus_factor_at(double omega) const;
};

/// Fit `nsls` standard linear solids so Q(omega) ~ target_q across
/// [f_min, f_max] Hz. target_q must be positive (use attenuation-off in
/// the solver rather than an infinite Q here).
SlsSeries fit_constant_q(double target_q, double f_min, double f_max,
                         int nsls = 3);

/// Solve a small dense symmetric positive-definite system in place
/// (Gaussian elimination with partial pivoting); exposed for tests.
std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b);

}  // namespace sfg

#include "model/earth_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/constants.hpp"

namespace sfg {

namespace {

/// One PREM layer: cubic polynomials in normalized radius x = r / 6371 km,
/// in g/cm^3 and km/s (converted to SI on evaluation).
struct PremLayer {
  double r_top_km;  // layer extends from the previous layer's top to here
  double rho[4];
  double vp[4];
  double vs[4];
  double q_mu;      // 0 => fluid
  double q_kappa;
};

double poly(const double c[4], double x) {
  return c[0] + x * (c[1] + x * (c[2] + x * c[3]));
}

// PREM (Dziewonski & Anderson 1981), isotropic version; layers bottom-up.
// Radii in km; the ocean layer (6368-6371) is handled separately.
constexpr PremLayer kPrem[] = {
    // inner core
    {1221.5, {13.0885, 0.0, -8.8381, 0.0}, {11.2622, 0.0, -6.3640, 0.0},
     {3.6678, 0.0, -4.4475, 0.0}, 84.6, 1327.7},
    // outer core (fluid)
    {3480.0, {12.5815, -1.2638, -3.6426, -5.5281},
     {11.0487, -4.0362, 4.8023, -13.5732}, {0.0, 0.0, 0.0, 0.0}, 0.0,
     57823.0},
    // D'' layer
    {3630.0, {7.9565, -6.4761, 5.5283, -3.0807},
     {15.3891, -5.3181, 5.5242, -2.5514}, {6.9254, 1.4672, -2.0834, 0.9783},
     312.0, 57823.0},
    // lower mantle
    {5600.0, {7.9565, -6.4761, 5.5283, -3.0807},
     {24.9520, -40.4673, 51.4832, -26.6419},
     {11.1671, -13.7818, 17.4575, -9.2777}, 312.0, 57823.0},
    {5701.0, {7.9565, -6.4761, 5.5283, -3.0807},
     {29.2766, -23.6027, 5.5242, -2.5514},
     {22.3459, -17.2473, -2.0834, 0.9783}, 312.0, 57823.0},
    // transition zone
    {5771.0, {5.3197, -1.4836, 0.0, 0.0}, {19.0957, -9.8672, 0.0, 0.0},
     {9.9839, -4.9324, 0.0, 0.0}, 143.0, 57823.0},
    {5971.0, {11.2494, -8.0298, 0.0, 0.0}, {39.7027, -32.6166, 0.0, 0.0},
     {22.3512, -18.5856, 0.0, 0.0}, 143.0, 57823.0},
    {6151.0, {7.1089, -3.8045, 0.0, 0.0}, {20.3926, -12.2569, 0.0, 0.0},
     {8.9496, -4.4597, 0.0, 0.0}, 143.0, 57823.0},
    // low-velocity zone
    {6291.0, {2.6910, 0.6924, 0.0, 0.0}, {4.1875, 3.9382, 0.0, 0.0},
     {2.1519, 2.3481, 0.0, 0.0}, 80.0, 57823.0},
    // LID
    {6346.6, {2.6910, 0.6924, 0.0, 0.0}, {4.1875, 3.9382, 0.0, 0.0},
     {2.1519, 2.3481, 0.0, 0.0}, 600.0, 57823.0},
    // lower crust
    {6356.0, {2.9, 0.0, 0.0, 0.0}, {6.8, 0.0, 0.0, 0.0},
     {3.9, 0.0, 0.0, 0.0}, 600.0, 57823.0},
    // upper crust
    {6368.0, {2.6, 0.0, 0.0, 0.0}, {5.8, 0.0, 0.0, 0.0},
     {3.2, 0.0, 0.0, 0.0}, 600.0, 57823.0},
    // ocean (fluid); replaced by upper crust when with_ocean == false
    {6371.0, {1.020, 0.0, 0.0, 0.0}, {1.45, 0.0, 0.0, 0.0},
     {0.0, 0.0, 0.0, 0.0}, 0.0, 57823.0},
};
constexpr int kNumPremLayers = static_cast<int>(std::size(kPrem));

MaterialSample sample_layer(const PremLayer& layer, double x) {
  MaterialSample s;
  s.rho = poly(layer.rho, x) * 1000.0;  // g/cm^3 -> kg/m^3
  s.vp = poly(layer.vp, x) * 1000.0;    // km/s -> m/s
  s.vs = poly(layer.vs, x) * 1000.0;
  s.q_mu = layer.q_mu;
  s.q_kappa = layer.q_kappa;
  if (layer.q_mu == 0.0) s.vs = 0.0;  // fluid layers carry no shear
  return s;
}

int layer_index_for_radius(double r_km, bool with_ocean) {
  const int last = with_ocean ? kNumPremLayers - 1 : kNumPremLayers - 2;
  double bottom = 0.0;
  for (int l = 0; l <= last; ++l) {
    if (r_km <= kPrem[l].r_top_km || l == last) return l;
    bottom = kPrem[l].r_top_km;
  }
  (void)bottom;
  return last;
}

}  // namespace

PremModel::PremModel(bool with_ocean) : with_ocean_(with_ocean) {
  // Precompute M(<r) and g(r) on a fine grid by trapezoid integration of
  // 4 pi r^2 rho(r).
  const int n = 4000;
  const double dr = kEarthRadiusM / n;
  g_radii_.resize(static_cast<std::size_t>(n + 1));
  mass_values_.resize(static_cast<std::size_t>(n + 1));
  g_values_.resize(static_cast<std::size_t>(n + 1));
  double mass = 0.0;
  double prev_integrand = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double r = i * dr;
    const double rho = at_radius(std::max(r, 1.0)).rho;
    const double integrand = 4.0 * kPi * r * r * rho;
    if (i > 0) mass += 0.5 * (integrand + prev_integrand) * dr;
    prev_integrand = integrand;
    g_radii_[static_cast<std::size_t>(i)] = r;
    mass_values_[static_cast<std::size_t>(i)] = mass;
    g_values_[static_cast<std::size_t>(i)] =
        r > 0.0 ? kGravityG * mass / (r * r) : 0.0;
  }
}

MaterialSample PremModel::at_radius(double r_m) const {
  SFG_CHECK_MSG(r_m >= 0.0 && r_m <= kEarthRadiusM * 1.0001,
                "radius " << r_m << " outside the Earth");
  const double r_km = std::min(r_m, kEarthRadiusM) / 1000.0;
  const int l = layer_index_for_radius(r_km, with_ocean_);
  const double x = r_km / 6371.0;
  return sample_layer(kPrem[l], x);
}

std::vector<double> PremModel::discontinuity_radii() const {
  std::vector<double> radii = {kIcbRadiusM, kCmbRadiusM,
                               3630.0e3,  // top of D''
                               k670RadiusM, 5771.0e3, k400RadiusM,
                               6151.0e3, 6291.0e3, kMohoRadiusM, 6356.0e3};
  if (with_ocean_) radii.push_back(6368.0e3);
  std::sort(radii.begin(), radii.end());
  return radii;
}

double PremModel::surface_radius() const { return kEarthRadiusM; }

double PremModel::enclosed_mass(double r_m) const {
  SFG_CHECK(r_m >= 0.0);
  r_m = std::min(r_m, kEarthRadiusM);
  const double step = g_radii_[1] - g_radii_[0];
  const auto i = static_cast<std::size_t>(r_m / step);
  if (i + 1 >= mass_values_.size()) return mass_values_.back();
  const double f = (r_m - g_radii_[i]) / step;
  return mass_values_[i] * (1.0 - f) + mass_values_[i + 1] * f;
}

double PremModel::gravity(double r_m) const {
  SFG_CHECK(r_m >= 0.0);
  if (r_m >= kEarthRadiusM) {
    // Above the surface: point-mass field.
    return kGravityG * mass_values_.back() / (r_m * r_m);
  }
  const double step = g_radii_[1] - g_radii_[0];
  const auto i = static_cast<std::size_t>(r_m / step);
  if (i + 1 >= g_values_.size()) return g_values_.back();
  const double f = (r_m - g_radii_[i]) / step;
  return g_values_[i] * (1.0 - f) + g_values_[i + 1] * f;
}

HomogeneousModel::HomogeneousModel(MaterialSample sample,
                                   double surface_radius_m)
    : sample_(sample), surface_radius_m_(surface_radius_m) {
  SFG_CHECK(surface_radius_m > 0.0);
  SFG_CHECK(sample.rho > 0.0 && sample.vp > 0.0);
}

MaterialSample HomogeneousModel::at_radius(double) const { return sample_; }

double HomogeneousModel::gravity(double r_m) const {
  // Uniform density ball: g grows linearly inside, falls off outside.
  const double rho = sample_.rho;
  if (r_m <= surface_radius_m_)
    return 4.0 / 3.0 * kPi * kGravityG * rho * r_m;
  const double m =
      4.0 / 3.0 * kPi * rho * surface_radius_m_ * surface_radius_m_ *
      surface_radius_m_;
  return kGravityG * m / (r_m * r_m);
}

TwoLayerModel::TwoLayerModel(MaterialSample inner, MaterialSample outer,
                             double boundary_radius_m,
                             double surface_radius_m)
    : inner_(inner),
      outer_(outer),
      boundary_radius_m_(boundary_radius_m),
      surface_radius_m_(surface_radius_m) {
  SFG_CHECK(boundary_radius_m > 0.0 &&
            boundary_radius_m < surface_radius_m);
}

MaterialSample TwoLayerModel::at_radius(double r_m) const {
  return r_m <= boundary_radius_m_ ? inner_ : outer_;
}

}  // namespace sfg

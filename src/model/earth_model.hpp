#pragma once

/// \file earth_model.hpp
/// Radial Earth models assigning material properties to mesh points
/// (paper §3-4: the mesher populates geometry with "the velocity of the
/// seismic waves and the density of the rocks in each mesh element").
///
/// PremModel implements the Preliminary Reference Earth Model
/// (Dziewonski & Anderson 1981), the spherically-symmetric model
/// SPECFEM3D_GLOBE is benchmarked against: piecewise polynomials in
/// normalized radius for rho, vp, vs and the quality factors, with
/// discontinuities at the ICB, CMB, the 670/400 transitions and the Moho.

#include <memory>
#include <vector>

namespace sfg {

/// Material sample at one radius. SI units: kg/m^3 and m/s. Qmu == 0
/// denotes a fluid (no shear). Quality factors are dimensionless.
struct MaterialSample {
  double rho = 0.0;
  double vp = 0.0;
  double vs = 0.0;
  double q_mu = 0.0;
  double q_kappa = 57823.0;

  bool is_fluid() const { return vs <= 0.0; }
  double kappa() const { return rho * (vp * vp - 4.0 / 3.0 * vs * vs); }
  double mu() const { return rho * vs * vs; }
};

/// Interface for radial (1-D) Earth models.
class EarthModel {
 public:
  virtual ~EarthModel() = default;

  /// Properties at radius r (meters). For points exactly on a
  /// discontinuity the sample of the layer BELOW is returned; mesh layers
  /// query mid-layer radii so this never matters in practice.
  virtual MaterialSample at_radius(double r_m) const = 0;

  /// Radii (meters, ascending) of first-order discontinuities that the
  /// mesh must honor with element boundaries.
  virtual std::vector<double> discontinuity_radii() const = 0;

  /// Surface radius in meters.
  virtual double surface_radius() const = 0;

  /// Gravitational acceleration at radius r (m/s^2), from the model's own
  /// density profile: g(r) = G M(<r) / r^2. Used by the solver's gravity
  /// term and validated against g(R_earth) ~ 9.8.
  virtual double gravity(double r_m) const = 0;
};

/// PREM, isotropic version. The optional ocean layer is replaced by upper
/// crust by default (the standard "no ocean" configuration for global SEM
/// runs without the ocean-load approximation).
class PremModel : public EarthModel {
 public:
  explicit PremModel(bool with_ocean = false);

  MaterialSample at_radius(double r_m) const override;
  std::vector<double> discontinuity_radii() const override;
  double surface_radius() const override;
  double gravity(double r_m) const override;

  /// Mass enclosed within radius r, from the density polynomials (kg).
  double enclosed_mass(double r_m) const;

 private:
  bool with_ocean_;
  // Precomputed gravity profile (trapezoid integration of the density
  // polynomials on a fine radial grid).
  std::vector<double> g_radii_, g_values_, mass_values_;
};

/// Uniform whole-space (or sphere) model for validation tests.
class HomogeneousModel : public EarthModel {
 public:
  HomogeneousModel(MaterialSample sample, double surface_radius_m);

  MaterialSample at_radius(double r_m) const override;
  std::vector<double> discontinuity_radii() const override { return {}; }
  double surface_radius() const override { return surface_radius_m_; }
  double gravity(double r_m) const override;

 private:
  MaterialSample sample_;
  double surface_radius_m_;
};

/// Two-layer model (solid over fluid, or arbitrary) for coupling tests.
class TwoLayerModel : public EarthModel {
 public:
  TwoLayerModel(MaterialSample inner, MaterialSample outer,
                double boundary_radius_m, double surface_radius_m);

  MaterialSample at_radius(double r_m) const override;
  std::vector<double> discontinuity_radii() const override {
    return {boundary_radius_m_};
  }
  double surface_radius() const override { return surface_radius_m_; }
  double gravity(double) const override { return 0.0; }

 private:
  MaterialSample inner_, outer_;
  double boundary_radius_m_, surface_radius_m_;
};

}  // namespace sfg

#include "model/attenuation.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/constants.hpp"

namespace sfg {

double SlsSeries::unrelaxed_factor() const {
  double f = 1.0;
  for (double yl : y) f += yl;
  return f;
}

double SlsSeries::q_at(double omega) const {
  double inv_q = 0.0;
  for (int l = 0; l < num_sls(); ++l) {
    const double wt = omega * tau_sigma[static_cast<std::size_t>(l)];
    inv_q += y[static_cast<std::size_t>(l)] * wt / (1.0 + wt * wt);
  }
  SFG_CHECK(inv_q > 0.0);
  return 1.0 / inv_q;
}

double SlsSeries::modulus_factor_at(double omega) const {
  // Real part of the complex modulus relative to the relaxed modulus:
  // M(omega)/M_R = 1 + sum y_l (omega tau)^2 / (1 + (omega tau)^2).
  double f = 1.0;
  for (int l = 0; l < num_sls(); ++l) {
    const double wt = omega * tau_sigma[static_cast<std::size_t>(l)];
    f += y[static_cast<std::size_t>(l)] * wt * wt / (1.0 + wt * wt);
  }
  return f;
}

std::vector<double> solve_dense(std::vector<double> a,
                                std::vector<double> b) {
  const auto n = b.size();
  SFG_CHECK(a.size() == n * n);
  for (std::size_t col = 0; col < n; ++col) {
    // partial pivot
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[piv * n + col])) piv = r;
    SFG_CHECK_MSG(std::abs(a[piv * n + col]) > 1e-300, "singular system");
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[piv * n + c], a[col * n + c]);
      std::swap(b[piv], b[col]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= a[ri * n + c] * x[c];
    x[ri] = s / a[ri * n + ri];
  }
  return x;
}

SlsSeries fit_constant_q(double target_q, double f_min, double f_max,
                         int nsls) {
  SFG_CHECK_MSG(target_q > 0.0, "target Q must be positive");
  SFG_CHECK(f_min > 0.0 && f_max > f_min);
  SFG_CHECK(nsls >= 1 && nsls <= 10);

  SlsSeries s;
  s.target_q = target_q;
  s.f_min = f_min;
  s.f_max = f_max;

  // Relaxation times log-spaced so each SLS peaks inside the band.
  const double t_min = 1.0 / (2.0 * kPi * f_max);
  const double t_max = 1.0 / (2.0 * kPi * f_min);
  s.tau_sigma.resize(static_cast<std::size_t>(nsls));
  for (int l = 0; l < nsls; ++l) {
    const double frac = nsls == 1 ? 0.5 : static_cast<double>(l) / (nsls - 1);
    s.tau_sigma[static_cast<std::size_t>(l)] =
        t_min * std::pow(t_max / t_min, frac);
  }

  // Least squares: minimize sum_k (sum_l y_l g_l(w_k) - 1/Q)^2 over a
  // dense log grid of frequencies across the band.
  const int nfreq = 100;
  std::vector<double> ata(static_cast<std::size_t>(nsls * nsls), 0.0);
  std::vector<double> atb(static_cast<std::size_t>(nsls), 0.0);
  for (int k = 0; k < nfreq; ++k) {
    const double f =
        f_min * std::pow(f_max / f_min, static_cast<double>(k) / (nfreq - 1));
    const double w = 2.0 * kPi * f;
    std::vector<double> g(static_cast<std::size_t>(nsls));
    for (int l = 0; l < nsls; ++l) {
      const double wt = w * s.tau_sigma[static_cast<std::size_t>(l)];
      g[static_cast<std::size_t>(l)] = wt / (1.0 + wt * wt);
    }
    for (int a = 0; a < nsls; ++a) {
      for (int b = 0; b < nsls; ++b)
        ata[static_cast<std::size_t>(a * nsls + b)] +=
            g[static_cast<std::size_t>(a)] * g[static_cast<std::size_t>(b)];
      atb[static_cast<std::size_t>(a)] +=
          g[static_cast<std::size_t>(a)] / target_q;
    }
  }
  s.y = solve_dense(std::move(ata), std::move(atb));
  // Clip tiny negative values from the unconstrained solve; they only
  // appear for very wide bands with few SLSs.
  for (double& yl : s.y)
    if (yl < 0.0) yl = 0.0;
  return s;
}

}  // namespace sfg

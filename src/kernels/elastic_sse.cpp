// Manual SSE implementation of the elastic force kernel (paper §4.3):
// "we can load a vector unit with 4 floats, perform several multiply and
// add operations to compute the matrix-matrix product, and store the
// results in four consecutive elements of the result matrix. [...] since
// our matrices are of size 5 x 5 and not 4 x 4, we use vector instructions
// for 4 out of each set of 5 values and compute the last one serially."
//
// Specialized for NGLL = 5 with the 125 -> 128 float padding so that every
// 4-wide load starting inside a block stays within the block.

#include <xmmintrin.h>

#include "kernels/force_kernel.hpp"

namespace sfg {

namespace {

constexpr int kN = 5;
constexpr int kN3 = 125;

inline int idx(int i, int j, int k) { return (k * kN + j) * kN + i; }

/// out[i,j,k] = sum_l a[l,j,k] * m[i*5+l]   vectorized over i using the
/// transposed matrix mt[l*5+i] (so rows are contiguous in i).
inline void contract_dim0(const float* a, const float* mt, float* out) {
  for (int k = 0; k < kN; ++k) {
    for (int j = 0; j < kN; ++j) {
      const int base = (k * kN + j) * kN;
      __m128 acc = _mm_setzero_ps();
      float last = 0.0f;
      for (int l = 0; l < kN; ++l) {
        const __m128 av = _mm_set1_ps(a[base + l]);
        acc = _mm_add_ps(acc, _mm_mul_ps(av, _mm_loadu_ps(mt + l * kN)));
        last += a[base + l] * mt[l * kN + 4];
      }
      _mm_storeu_ps(out + base, acc);
      out[base + 4] = last;
    }
  }
}

/// out[i,j,k] = sum_l a[i,l,k] * m[j*5+l]   vectorized over i (contiguous).
inline void contract_dim1(const float* a, const float* m, float* out) {
  for (int k = 0; k < kN; ++k) {
    for (int j = 0; j < kN; ++j) {
      __m128 acc = _mm_setzero_ps();
      float last = 0.0f;
      for (int l = 0; l < kN; ++l) {
        const float c = m[j * kN + l];
        const int src = (k * kN + l) * kN;
        acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(c), _mm_loadu_ps(a + src)));
        last += c * a[src + 4];
      }
      const int dst = (k * kN + j) * kN;
      _mm_storeu_ps(out + dst, acc);
      out[dst + 4] = last;
    }
  }
}

/// out[i,j,k] = sum_l a[i,j,l] * m[k*5+l]   vectorized over i (contiguous).
inline void contract_dim2(const float* a, const float* m, float* out) {
  for (int k = 0; k < kN; ++k) {
    for (int j = 0; j < kN; ++j) {
      __m128 acc = _mm_setzero_ps();
      float last = 0.0f;
      for (int l = 0; l < kN; ++l) {
        const float c = m[k * kN + l];
        const int src = (l * kN + j) * kN;
        acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(c), _mm_loadu_ps(a + src)));
        last += c * a[src + 4];
      }
      const int dst = (k * kN + j) * kN;
      _mm_storeu_ps(out + dst, acc);
      out[dst + 4] = last;
    }
  }
}

}  // namespace

void ForceKernel::elastic_sse(const ElementPointers& ep,
                              KernelWorkspace& ws) const {
  SFG_ASSERT(ngll_ == kN && ws.padded >= kN3 + 3);
  const float* hT = hprimeT_.data();       // [l][i]
  const float* h = hprime_.data();         // [i][l]
  const float* hw = hprimewgll_.data();    // [l][i]

  // Stage 1: the 9 gradient temporaries, 3 contractions per component.
  contract_dim0(ws.ux.data(), hT, ws.t1x.data());
  contract_dim0(ws.uy.data(), hT, ws.t1y.data());
  contract_dim0(ws.uz.data(), hT, ws.t1z.data());
  contract_dim1(ws.ux.data(), h, ws.t2x.data());
  contract_dim1(ws.uy.data(), h, ws.t2y.data());
  contract_dim1(ws.uz.data(), h, ws.t2z.data());
  contract_dim2(ws.ux.data(), h, ws.t3x.data());
  contract_dim2(ws.uy.data(), h, ws.t3y.data());
  contract_dim2(ws.uz.data(), h, ws.t3z.data());

  pointwise_stress_and_second_stage(ep, ws);

  // Stage 3. The contraction matrices act with the summation index as the
  // matrix ROW here: sum_l n1[l,j,k] * hw[l*5+i] is a dim0 contraction
  // with an already-transposed matrix, i.e. contract_dim0 with hw itself;
  // for dims 1 and 2 the per-(j,k) coefficient is hw[l*5+j], which is the
  // transposed layout of the stage-1 case, handled by passing hwT below.
  // Build hwT once per call on the stack (25 floats).
  float hwT[kN * kN];
  for (int a = 0; a < kN; ++a)
    for (int b = 0; b < kN; ++b) hwT[a * kN + b] = hw[b * kN + a];

  contract_dim0(ws.n1x.data(), hw, ws.fx.data());   // reuse fx as temp A
  contract_dim0(ws.n1y.data(), hw, ws.fy.data());
  contract_dim0(ws.n1z.data(), hw, ws.fz.data());
  // dim1: sum_l n2[i,l,k] * hw[l*5+j] = contract_dim1 with m[j*5+l]=hwT
  contract_dim1(ws.n2x.data(), hwT, ws.tc1.data());  // reuse acoustic temps
  contract_dim1(ws.n2y.data(), hwT, ws.tc2.data());
  contract_dim1(ws.n2z.data(), hwT, ws.tc3.data());
  contract_dim2(ws.n3x.data(), hwT, ws.nc1.data());
  contract_dim2(ws.n3y.data(), hwT, ws.nc2.data());
  contract_dim2(ws.n3z.data(), hwT, ws.nc3.data());

  // Weighted combine: f = -(w_j w_k * A + w_i w_k * B + w_i w_j * C),
  // vectorized over i with one scalar tail, as everywhere else.
  const float* w = wgll_.data();
  const __m128 wi4 = _mm_loadu_ps(w);  // w_0..w_3
  for (int k = 0; k < kN; ++k) {
    for (int j = 0; j < kN; ++j) {
      const int base = (k * kN + j) * kN;
      const float wjk = w[j] * w[k];
      const __m128 wjk4 = _mm_set1_ps(wjk);
      const __m128 wk4 = _mm_set1_ps(w[k]);
      const __m128 wj4 = _mm_set1_ps(w[j]);
      const __m128 wik4 = _mm_mul_ps(wi4, wk4);
      const __m128 wij4 = _mm_mul_ps(wi4, wj4);

      const __m128 ax = _mm_mul_ps(wjk4, _mm_loadu_ps(ws.fx.data() + base));
      const __m128 bx = _mm_mul_ps(wik4, _mm_loadu_ps(ws.tc1.data() + base));
      const __m128 cx = _mm_mul_ps(wij4, _mm_loadu_ps(ws.nc1.data() + base));
      const __m128 ay = _mm_mul_ps(wjk4, _mm_loadu_ps(ws.fy.data() + base));
      const __m128 by = _mm_mul_ps(wik4, _mm_loadu_ps(ws.tc2.data() + base));
      const __m128 cy = _mm_mul_ps(wij4, _mm_loadu_ps(ws.nc2.data() + base));
      const __m128 az = _mm_mul_ps(wjk4, _mm_loadu_ps(ws.fz.data() + base));
      const __m128 bz = _mm_mul_ps(wik4, _mm_loadu_ps(ws.tc3.data() + base));
      const __m128 cz = _mm_mul_ps(wij4, _mm_loadu_ps(ws.nc3.data() + base));

      const __m128 zero = _mm_setzero_ps();
      const float lx = ws.fx[static_cast<std::size_t>(base + 4)];
      const float ly = ws.fy[static_cast<std::size_t>(base + 4)];
      const float lz = ws.fz[static_cast<std::size_t>(base + 4)];
      _mm_storeu_ps(ws.fx.data() + base,
                    _mm_sub_ps(zero, _mm_add_ps(ax, _mm_add_ps(bx, cx))));
      _mm_storeu_ps(ws.fy.data() + base,
                    _mm_sub_ps(zero, _mm_add_ps(ay, _mm_add_ps(by, cy))));
      _mm_storeu_ps(ws.fz.data() + base,
                    _mm_sub_ps(zero, _mm_add_ps(az, _mm_add_ps(bz, cz))));
      const float w4k = w[4] * w[k];
      const float w4j = w[4] * w[j];
      ws.fx[static_cast<std::size_t>(base + 4)] =
          -(wjk * lx + w4k * ws.tc1[static_cast<std::size_t>(base + 4)] +
            w4j * ws.nc1[static_cast<std::size_t>(base + 4)]);
      ws.fy[static_cast<std::size_t>(base + 4)] =
          -(wjk * ly + w4k * ws.tc2[static_cast<std::size_t>(base + 4)] +
            w4j * ws.nc2[static_cast<std::size_t>(base + 4)]);
      ws.fz[static_cast<std::size_t>(base + 4)] =
          -(wjk * lz + w4k * ws.tc3[static_cast<std::size_t>(base + 4)] +
            w4j * ws.nc3[static_cast<std::size_t>(base + 4)]);
    }
  }
}

}  // namespace sfg

/// \file elastic_batched.cpp
/// The Batched kernel variant (ISSUE 6): B elements packed in SoA
/// [point][lane] layout, the whole Newmark force kernel (both derivative
/// stages, pointwise stress incl. attenuation and gravity, and the
/// acoustic kernel) executed as one vector op per point across lanes.
/// Vertical vectorization needs no NGLL specialization — unlike the Sse
/// variant's 4+1 cutplane trick, every ngll works and there is no scalar
/// 5th-element tail.
///
/// THIS TRANSLATION UNIT IS COMPILED WITH -ffp-contract=off (see
/// src/kernels/CMakeLists.txt). Together with the unfused simd::*::madd
/// this guarantees every backend (scalar included) performs the exact
/// same IEEE operation sequence per lane, which is what makes the output
/// bit-identical across backends and independent of a lane's batch
/// companions — the lane-order bit-identity contract (docs/kernels.md),
/// pinned by tests/test_kernels.cpp the same way schedule invariants are.
/// The TU also gets -mavx512f so the widest x86 backend exists wherever
/// the toolchain can emit it; runtime dispatch never selects a backend
/// the CPU cannot execute.

#include "common/check.hpp"
#include "kernels/force_kernel.hpp"

namespace sfg {

bool batched_backend_compiled(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::Scalar:
      return true;
    case simd::Isa::Sse:
#if defined(__SSE2__)
      return true;
#else
      return false;
#endif
    case simd::Isa::Avx2:
#if defined(__AVX2__)
      return true;
#else
      return false;
#endif
    case simd::Isa::Avx512:
#if defined(__AVX512F__)
      return true;
#else
      return false;
#endif
    case simd::Isa::Neon:
#if defined(__ARM_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

simd::Isa best_batched_isa() {
  // Widest first. NEON and the x86 tiers are mutually exclusive targets,
  // so the order among them is moot; listing them all keeps this portable.
  for (simd::Isa isa : {simd::Isa::Avx512, simd::Isa::Avx2, simd::Isa::Sse,
                        simd::Isa::Neon})
    if (batched_backend_compiled(isa) && simd::cpu_supports(isa)) return isa;
  return simd::Isa::Scalar;
}

namespace {

inline int idx(int ngll, int i, int j, int k) {
  return (k * ngll + j) * ngll + i;
}

/// Elastic kernel across V::width SoA lanes. Mirrors elastic_reference /
/// pointwise_stress_and_second_stage expression by expression; the only
/// difference is that every scalar became a lane vector.
template <class V>
void elastic_batched_impl(int n, const float* h, const float* hw,
                          const float* w, bool attenuation,
                          const BatchPointers& bp, BatchWorkspace& ws) {
  constexpr int W = V::width;
  using reg = typename V::reg;
  const int n3 = n * n * n;

  const float* ux = ws.ux.data();
  const float* uy = ws.uy.data();
  const float* uz = ws.uz.data();
  float* t1x = ws.t1x.data();
  float* t1y = ws.t1y.data();
  float* t1z = ws.t1z.data();
  float* t2x = ws.t2x.data();
  float* t2y = ws.t2y.data();
  float* t2z = ws.t2z.data();
  float* t3x = ws.t3x.data();
  float* t3y = ws.t3y.data();
  float* t3z = ws.t3z.data();

  // Stage 1: gradient temporaries along the three cutplane directions.
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        reg sx1 = V::zero(), sy1 = V::zero(), sz1 = V::zero();
        reg sx2 = V::zero(), sy2 = V::zero(), sz2 = V::zero();
        reg sx3 = V::zero(), sy3 = V::zero(), sz3 = V::zero();
        for (int l = 0; l < n; ++l) {
          const reg hil = V::set1(h[i * n + l]);
          const int p1 = idx(n, l, j, k) * W;
          sx1 = V::madd(V::load(ux + p1), hil, sx1);
          sy1 = V::madd(V::load(uy + p1), hil, sy1);
          sz1 = V::madd(V::load(uz + p1), hil, sz1);

          const reg hjl = V::set1(h[j * n + l]);
          const int p2 = idx(n, i, l, k) * W;
          sx2 = V::madd(V::load(ux + p2), hjl, sx2);
          sy2 = V::madd(V::load(uy + p2), hjl, sy2);
          sz2 = V::madd(V::load(uz + p2), hjl, sz2);

          const reg hkl = V::set1(h[k * n + l]);
          const int p3 = idx(n, i, j, l) * W;
          sx3 = V::madd(V::load(ux + p3), hkl, sx3);
          sy3 = V::madd(V::load(uy + p3), hkl, sy3);
          sz3 = V::madd(V::load(uz + p3), hkl, sz3);
        }
        const int p = idx(n, i, j, k) * W;
        V::store(t1x + p, sx1);
        V::store(t1y + p, sy1);
        V::store(t1z + p, sz1);
        V::store(t2x + p, sx2);
        V::store(t2y + p, sy2);
        V::store(t2z + p, sz2);
        V::store(t3x + p, sx3);
        V::store(t3y + p, sy3);
        V::store(t3z + p, sz3);
      }
    }
  }

  // Stage 2: pointwise stress (attenuation, gravity) and the "new temp"
  // arrays, one vector of lanes per point.
  float* n1x = ws.n1x.data();
  float* n1y = ws.n1y.data();
  float* n1z = ws.n1z.data();
  float* n2x = ws.n2x.data();
  float* n2y = ws.n2y.data();
  float* n2z = ws.n2z.data();
  float* n3x = ws.n3x.data();
  float* n3y = ws.n3y.data();
  float* n3z = ws.n3z.data();

  const reg two_thirds = V::set1(2.0f / 3.0f);
  const reg two = V::set1(2.0f);
  const reg half = V::set1(0.5f);
  const reg three = V::set1(3.0f);

  for (int p = 0; p < n3; ++p) {
    const int q = p * W;
    const reg xixl = V::load(bp.xix + q);
    const reg xiyl = V::load(bp.xiy + q);
    const reg xizl = V::load(bp.xiz + q);
    const reg etaxl = V::load(bp.etax + q);
    const reg etayl = V::load(bp.etay + q);
    const reg etazl = V::load(bp.etaz + q);
    const reg gxl = V::load(bp.gammax + q);
    const reg gyl = V::load(bp.gammay + q);
    const reg gzl = V::load(bp.gammaz + q);
    const reg jac = V::load(bp.jacobian + q);

    const reg v1x = V::load(t1x + q), v2x = V::load(t2x + q),
              v3x = V::load(t3x + q);
    const reg v1y = V::load(t1y + q), v2y = V::load(t2y + q),
              v3y = V::load(t3y + q);
    const reg v1z = V::load(t1z + q), v2z = V::load(t2z + q),
              v3z = V::load(t3z + q);

    const reg duxdx =
        V::add(V::add(V::mul(xixl, v1x), V::mul(etaxl, v2x)),
               V::mul(gxl, v3x));
    const reg duxdy =
        V::add(V::add(V::mul(xiyl, v1x), V::mul(etayl, v2x)),
               V::mul(gyl, v3x));
    const reg duxdz =
        V::add(V::add(V::mul(xizl, v1x), V::mul(etazl, v2x)),
               V::mul(gzl, v3x));
    const reg duydx =
        V::add(V::add(V::mul(xixl, v1y), V::mul(etaxl, v2y)),
               V::mul(gxl, v3y));
    const reg duydy =
        V::add(V::add(V::mul(xiyl, v1y), V::mul(etayl, v2y)),
               V::mul(gyl, v3y));
    const reg duydz =
        V::add(V::add(V::mul(xizl, v1y), V::mul(etazl, v2y)),
               V::mul(gzl, v3y));
    const reg duzdx =
        V::add(V::add(V::mul(xixl, v1z), V::mul(etaxl, v2z)),
               V::mul(gxl, v3z));
    const reg duzdy =
        V::add(V::add(V::mul(xiyl, v1z), V::mul(etayl, v2z)),
               V::mul(gyl, v3z));
    const reg duzdz =
        V::add(V::add(V::mul(xizl, v1z), V::mul(etazl, v2z)),
               V::mul(gzl, v3z));

    const reg mul = V::load(bp.muv + q);
    const reg lambdal =
        V::sub(V::load(bp.kappav + q), V::mul(two_thirds, mul));
    const reg trace = V::add(V::add(duxdx, duydy), duzdz);

    reg sxx = V::add(V::mul(lambdal, trace),
                     V::mul(V::mul(two, mul), duxdx));
    reg syy = V::add(V::mul(lambdal, trace),
                     V::mul(V::mul(two, mul), duydy));
    reg szz = V::add(V::mul(lambdal, trace),
                     V::mul(V::mul(two, mul), duzdz));
    reg sxy = V::mul(mul, V::add(duxdy, duydx));
    reg sxz = V::mul(mul, V::add(duxdz, duzdx));
    reg syz = V::mul(mul, V::add(duydz, duzdy));

    if (attenuation) {
      const reg tr3 = V::div(trace, three);
      V::store(ws.epsdev[0].data() + q, V::sub(duxdx, tr3));
      V::store(ws.epsdev[1].data() + q, V::sub(duydy, tr3));
      V::store(ws.epsdev[2].data() + q, V::mul(half, V::add(duxdy, duydx)));
      V::store(ws.epsdev[3].data() + q, V::mul(half, V::add(duxdz, duzdx)));
      V::store(ws.epsdev[4].data() + q, V::mul(half, V::add(duydz, duzdy)));
      if (bp.r_sum[0] != nullptr) {
        sxx = V::sub(sxx, V::load(bp.r_sum[0] + q));
        syy = V::sub(syy, V::load(bp.r_sum[1] + q));
        szz = V::sub(szz, V::load(bp.r_sum[2] + q));
        sxy = V::sub(sxy, V::load(bp.r_sum[3] + q));
        sxz = V::sub(sxz, V::load(bp.r_sum[4] + q));
        syz = V::sub(syz, V::load(bp.r_sum[5] + q));
      }
    }

    if (bp.grav_g != nullptr) {
      // Cowling-approximation gravity body force — same hydrostatic-
      // prestress form and sign conventions as the reference kernel.
      const reg g = V::load(bp.grav_g + q);
      const reg gp = V::load(bp.grav_dgdr + q);
      const reg rhop = V::load(bp.grav_drhodr + q);
      const reg rx = V::load(bp.grav_rx + q);
      const reg ry = V::load(bp.grav_ry + q);
      const reg rz = V::load(bp.grav_rz + q);
      const reg invr = V::load(bp.grav_invr + q);
      const reg rho = V::load(bp.rho + q);
      const reg sx = V::load(ux + q);
      const reg sy = V::load(uy + q);
      const reg sz = V::load(uz + q);
      const reg sr = V::add(V::add(V::mul(sx, rx), V::mul(sy, ry)),
                            V::mul(sz, rz));
      const reg grad_sr_x =
          V::add(V::add(V::add(V::mul(rx, duxdx), V::mul(ry, duydx)),
                        V::mul(rz, duzdx)),
                 V::mul(V::sub(sx, V::mul(sr, rx)), invr));
      const reg grad_sr_y =
          V::add(V::add(V::add(V::mul(rx, duxdy), V::mul(ry, duydy)),
                        V::mul(rz, duzdy)),
                 V::mul(V::sub(sy, V::mul(sr, ry)), invr));
      const reg grad_sr_z =
          V::add(V::add(V::add(V::mul(rx, duxdz), V::mul(ry, duydz)),
                        V::mul(rz, duzdz)),
                 V::mul(V::sub(sz, V::mul(sr, rz)), invr));
      const reg radial =
          V::sub(V::mul(g, V::add(V::mul(rho, trace), V::mul(rhop, sr))),
                 V::mul(rho, V::mul(gp, sr)));
      V::store(ws.gx.data() + q,
               V::sub(V::mul(radial, rx),
                      V::mul(rho, V::mul(g, grad_sr_x))));
      V::store(ws.gy.data() + q,
               V::sub(V::mul(radial, ry),
                      V::mul(rho, V::mul(g, grad_sr_y))));
      V::store(ws.gz.data() + q,
               V::sub(V::mul(radial, rz),
                      V::mul(rho, V::mul(g, grad_sr_z))));
    }

    V::store(n1x + q,
             V::mul(jac, V::add(V::add(V::mul(sxx, xixl), V::mul(sxy, xiyl)),
                                V::mul(sxz, xizl))));
    V::store(n1y + q,
             V::mul(jac, V::add(V::add(V::mul(sxy, xixl), V::mul(syy, xiyl)),
                                V::mul(syz, xizl))));
    V::store(n1z + q,
             V::mul(jac, V::add(V::add(V::mul(sxz, xixl), V::mul(syz, xiyl)),
                                V::mul(szz, xizl))));
    V::store(n2x + q,
             V::mul(jac,
                    V::add(V::add(V::mul(sxx, etaxl), V::mul(sxy, etayl)),
                           V::mul(sxz, etazl))));
    V::store(n2y + q,
             V::mul(jac,
                    V::add(V::add(V::mul(sxy, etaxl), V::mul(syy, etayl)),
                           V::mul(syz, etazl))));
    V::store(n2z + q,
             V::mul(jac,
                    V::add(V::add(V::mul(sxz, etaxl), V::mul(syz, etayl)),
                           V::mul(szz, etazl))));
    V::store(n3x + q,
             V::mul(jac, V::add(V::add(V::mul(sxx, gxl), V::mul(sxy, gyl)),
                                V::mul(sxz, gzl))));
    V::store(n3y + q,
             V::mul(jac, V::add(V::add(V::mul(sxy, gxl), V::mul(syy, gyl)),
                                V::mul(syz, gzl))));
    V::store(n3z + q,
             V::mul(jac, V::add(V::add(V::mul(sxz, gxl), V::mul(syz, gyl)),
                                V::mul(szz, gzl))));
  }

  // Stage 3: transpose derivative application with quadrature weights.
  float* fx = ws.fx.data();
  float* fy = ws.fy.data();
  float* fz = ws.fz.data();
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const float wjk = w[j] * w[k];
      for (int i = 0; i < n; ++i) {
        const reg vwjk = V::set1(wjk);
        const reg vwik = V::set1(w[i] * w[k]);
        const reg vwij = V::set1(w[i] * w[j]);
        reg ax = V::zero(), ay = V::zero(), az = V::zero();
        reg bx = V::zero(), by = V::zero(), bz = V::zero();
        reg cx = V::zero(), cy = V::zero(), cz = V::zero();
        for (int l = 0; l < n; ++l) {
          const reg hwli = V::set1(hw[l * n + i]);
          const int p1 = idx(n, l, j, k) * W;
          ax = V::madd(V::load(n1x + p1), hwli, ax);
          ay = V::madd(V::load(n1y + p1), hwli, ay);
          az = V::madd(V::load(n1z + p1), hwli, az);

          const reg hwlj = V::set1(hw[l * n + j]);
          const int p2 = idx(n, i, l, k) * W;
          bx = V::madd(V::load(n2x + p2), hwlj, bx);
          by = V::madd(V::load(n2y + p2), hwlj, by);
          bz = V::madd(V::load(n2z + p2), hwlj, bz);

          const reg hwlk = V::set1(hw[l * n + k]);
          const int p3 = idx(n, i, j, l) * W;
          cx = V::madd(V::load(n3x + p3), hwlk, cx);
          cy = V::madd(V::load(n3y + p3), hwlk, cy);
          cz = V::madd(V::load(n3z + p3), hwlk, cz);
        }
        const int p = idx(n, i, j, k) * W;
        V::store(fx + p,
                 V::sub(V::zero(),
                        V::add(V::add(V::mul(vwjk, ax), V::mul(vwik, bx)),
                               V::mul(vwij, cx))));
        V::store(fy + p,
                 V::sub(V::zero(),
                        V::add(V::add(V::mul(vwjk, ay), V::mul(vwik, by)),
                               V::mul(vwij, cy))));
        V::store(fz + p,
                 V::sub(V::zero(),
                        V::add(V::add(V::mul(vwjk, az), V::mul(vwik, bz)),
                               V::mul(vwij, cz))));
      }
    }
  }
}

/// Acoustic kernel across lanes, mirroring ForceKernel::compute_acoustic.
template <class V>
void acoustic_batched_impl(int n, const float* h, const float* hw,
                           const float* w, const BatchPointers& bp,
                           BatchWorkspace& ws) {
  constexpr int W = V::width;
  using reg = typename V::reg;
  const int n3 = n * n * n;

  const float* chi = ws.chi.data();
  float* tc1 = ws.tc1.data();
  float* tc2 = ws.tc2.data();
  float* tc3 = ws.tc3.data();

  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        reg s1 = V::zero(), s2 = V::zero(), s3 = V::zero();
        for (int l = 0; l < n; ++l) {
          s1 = V::madd(V::load(chi + idx(n, l, j, k) * W),
                       V::set1(h[i * n + l]), s1);
          s2 = V::madd(V::load(chi + idx(n, i, l, k) * W),
                       V::set1(h[j * n + l]), s2);
          s3 = V::madd(V::load(chi + idx(n, i, j, l) * W),
                       V::set1(h[k * n + l]), s3);
        }
        const int p = idx(n, i, j, k) * W;
        V::store(tc1 + p, s1);
        V::store(tc2 + p, s2);
        V::store(tc3 + p, s3);
      }
    }
  }

  float* nc1 = ws.nc1.data();
  float* nc2 = ws.nc2.data();
  float* nc3 = ws.nc3.data();
  for (int p = 0; p < n3; ++p) {
    const int q = p * W;
    const reg c1 = V::load(tc1 + q);
    const reg c2 = V::load(tc2 + q);
    const reg c3 = V::load(tc3 + q);
    const reg xixl = V::load(bp.xix + q);
    const reg xiyl = V::load(bp.xiy + q);
    const reg xizl = V::load(bp.xiz + q);
    const reg etaxl = V::load(bp.etax + q);
    const reg etayl = V::load(bp.etay + q);
    const reg etazl = V::load(bp.etaz + q);
    const reg gxl = V::load(bp.gammax + q);
    const reg gyl = V::load(bp.gammay + q);
    const reg gzl = V::load(bp.gammaz + q);
    const reg dchidx =
        V::add(V::add(V::mul(xixl, c1), V::mul(etaxl, c2)), V::mul(gxl, c3));
    const reg dchidy =
        V::add(V::add(V::mul(xiyl, c1), V::mul(etayl, c2)), V::mul(gyl, c3));
    const reg dchidz =
        V::add(V::add(V::mul(xizl, c1), V::mul(etazl, c2)), V::mul(gzl, c3));
    // u_fluid = (1/rho) grad(chi): the weak form carries jac / rho.
    const reg fac = V::div(V::load(bp.jacobian + q), V::load(bp.rho + q));
    V::store(nc1 + q,
             V::mul(fac, V::add(V::add(V::mul(dchidx, xixl),
                                       V::mul(dchidy, xiyl)),
                                V::mul(dchidz, xizl))));
    V::store(nc2 + q,
             V::mul(fac, V::add(V::add(V::mul(dchidx, etaxl),
                                       V::mul(dchidy, etayl)),
                                V::mul(dchidz, etazl))));
    V::store(nc3 + q,
             V::mul(fac, V::add(V::add(V::mul(dchidx, gxl),
                                       V::mul(dchidy, gyl)),
                                V::mul(dchidz, gzl))));
  }

  float* fchi = ws.fchi.data();
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const float wjk = w[j] * w[k];
      for (int i = 0; i < n; ++i) {
        reg a = V::zero(), b = V::zero(), c = V::zero();
        for (int l = 0; l < n; ++l) {
          a = V::madd(V::load(nc1 + idx(n, l, j, k) * W),
                      V::set1(hw[l * n + i]), a);
          b = V::madd(V::load(nc2 + idx(n, i, l, k) * W),
                      V::set1(hw[l * n + j]), b);
          c = V::madd(V::load(nc3 + idx(n, i, j, l) * W),
                      V::set1(hw[l * n + k]), c);
        }
        V::store(fchi + idx(n, i, j, k) * W,
                 V::sub(V::zero(),
                        V::add(V::add(V::mul(V::set1(wjk), a),
                                      V::mul(V::set1(w[i] * w[k]), b)),
                               V::mul(V::set1(w[i] * w[j]), c))));
      }
    }
  }
}

}  // namespace

void ForceKernel::compute_elastic_batched(const BatchPointers& bp,
                                          BatchWorkspace& ws) const {
  SFG_CHECK_MSG(variant_ == KernelVariant::Batched,
                "compute_elastic_batched requires the Batched variant");
  SFG_ASSERT(ws.ngll == ngll_ && ws.lanes == lanes_);
  const float* h = hprime_.data();
  const float* hw = hprimewgll_.data();
  const float* w = wgll_.data();
  switch (isa_) {
    case simd::Isa::Scalar:
      switch (lanes_) {
        case 4:
          elastic_batched_impl<simd::ScalarVec<4>>(ngll_, h, hw, w,
                                                   attenuation_, bp, ws);
          return;
        case 8:
          elastic_batched_impl<simd::ScalarVec<8>>(ngll_, h, hw, w,
                                                   attenuation_, bp, ws);
          return;
        case 16:
          elastic_batched_impl<simd::ScalarVec<16>>(ngll_, h, hw, w,
                                                    attenuation_, bp, ws);
          return;
        default: break;
      }
      break;
    case simd::Isa::Sse:
#if defined(__SSE2__)
      elastic_batched_impl<simd::SseVec>(ngll_, h, hw, w, attenuation_, bp,
                                         ws);
      return;
#else
      break;
#endif
    case simd::Isa::Avx2:
#if defined(__AVX2__)
      elastic_batched_impl<simd::Avx2Vec>(ngll_, h, hw, w, attenuation_, bp,
                                          ws);
      return;
#else
      break;
#endif
    case simd::Isa::Avx512:
#if defined(__AVX512F__)
      elastic_batched_impl<simd::Avx512Vec>(ngll_, h, hw, w, attenuation_,
                                            bp, ws);
      return;
#else
      break;
#endif
    case simd::Isa::Neon:
#if defined(__ARM_NEON)
      elastic_batched_impl<simd::NeonVec>(ngll_, h, hw, w, attenuation_, bp,
                                          ws);
      return;
#else
      break;
#endif
  }
  SFG_CHECK_MSG(false, "no batched elastic backend for isa="
                           << simd::isa_name(isa_) << " lanes=" << lanes_);
}

void ForceKernel::compute_acoustic_batched(const BatchPointers& bp,
                                           BatchWorkspace& ws) const {
  SFG_CHECK_MSG(variant_ == KernelVariant::Batched,
                "compute_acoustic_batched requires the Batched variant");
  SFG_ASSERT(ws.ngll == ngll_ && ws.lanes == lanes_);
  const float* h = hprime_.data();
  const float* hw = hprimewgll_.data();
  const float* w = wgll_.data();
  switch (isa_) {
    case simd::Isa::Scalar:
      switch (lanes_) {
        case 4:
          acoustic_batched_impl<simd::ScalarVec<4>>(ngll_, h, hw, w, bp, ws);
          return;
        case 8:
          acoustic_batched_impl<simd::ScalarVec<8>>(ngll_, h, hw, w, bp, ws);
          return;
        case 16:
          acoustic_batched_impl<simd::ScalarVec<16>>(ngll_, h, hw, w, bp,
                                                     ws);
          return;
        default: break;
      }
      break;
    case simd::Isa::Sse:
#if defined(__SSE2__)
      acoustic_batched_impl<simd::SseVec>(ngll_, h, hw, w, bp, ws);
      return;
#else
      break;
#endif
    case simd::Isa::Avx2:
#if defined(__AVX2__)
      acoustic_batched_impl<simd::Avx2Vec>(ngll_, h, hw, w, bp, ws);
      return;
#else
      break;
#endif
    case simd::Isa::Avx512:
#if defined(__AVX512F__)
      acoustic_batched_impl<simd::Avx512Vec>(ngll_, h, hw, w, bp, ws);
      return;
#else
      break;
#endif
    case simd::Isa::Neon:
#if defined(__ARM_NEON)
      acoustic_batched_impl<simd::NeonVec>(ngll_, h, hw, w, bp, ws);
      return;
#else
      break;
#endif
  }
  SFG_CHECK_MSG(false, "no batched acoustic backend for isa="
                           << simd::isa_name(isa_) << " lanes=" << lanes_);
}

}  // namespace sfg

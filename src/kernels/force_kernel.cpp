#include "kernels/force_kernel.hpp"

#include <cstring>
#include <string>

#include "common/check.hpp"

namespace sfg {

const char* kernel_variant_name(KernelVariant v) {
  switch (v) {
    case KernelVariant::Reference: return "reference";
    case KernelVariant::BlasLike: return "blas";
    case KernelVariant::Sse: return "sse";
    case KernelVariant::Batched: return "batched";
    case KernelVariant::Auto: return "auto";
  }
  return "?";
}

KernelWorkspace::KernelWorkspace(int ngll_in)
    : ngll(ngll_in), padded(padded_block_size(ngll_in)) {
  const auto n = static_cast<std::size_t>(padded);
  for (auto* v : {&ux, &uy, &uz, &fx, &fy, &fz, &t1x, &t1y, &t1z, &t2x,
                  &t2y, &t2z, &t3x, &t3y, &t3z, &n1x, &n1y, &n1z, &n2x,
                  &n2y, &n2z, &n3x, &n3y, &n3z, &chi, &fchi, &tc1, &tc2,
                  &tc3, &nc1, &nc2, &nc3})
    v->assign(n, 0.0f);
  for (auto& e : epsdev) e.assign(n, 0.0f);
  gx.assign(n, 0.0f);
  gy.assign(n, 0.0f);
  gz.assign(n, 0.0f);
  // scratch_a/b/c deliberately stay empty: only the BlasLike variant
  // needs the cutplane copies, and it sizes them on first use.
}

BatchWorkspace::BatchWorkspace(int ngll_in, int lanes_in)
    : ngll(ngll_in),
      lanes(lanes_in),
      stride(static_cast<std::size_t>(padded_block_size(ngll_in, lanes_in)) *
             static_cast<std::size_t>(lanes_in)) {
  SFG_CHECK_MSG(lanes == 4 || lanes == 8 || lanes == 16,
                "batch lane count must be 4, 8 or 16, got " << lanes);
  for (auto* v : {&ux, &uy, &uz, &fx, &fy, &fz, &gx, &gy, &gz, &t1x, &t1y,
                  &t1z, &t2x, &t2y, &t2z, &t3x, &t3y, &t3z, &n1x, &n1y,
                  &n1z, &n2x, &n2y, &n2z, &n3x, &n3y, &n3z, &chi, &fchi,
                  &tc1, &tc2, &tc3, &nc1, &nc2, &nc3})
    v->assign(stride, 0.0f);
  for (auto& e : epsdev) e.assign(stride, 0.0f);
}

KernelChoice resolve_kernel_choice(KernelVariant requested, int ngll,
                                   const char* override_spec) {
  KernelChoice c;
  c.variant = requested;
  // The override spec (SFG_KERNEL) wins over the requested variant.
  std::string spec = override_spec != nullptr ? override_spec : "";
  if (!spec.empty()) {
    if (spec == "reference") {
      c.variant = KernelVariant::Reference;
    } else if (spec == "blas") {
      c.variant = KernelVariant::BlasLike;
    } else if (spec == "sse") {
      c.variant = KernelVariant::Sse;
    } else if (spec == "auto") {
      c.variant = KernelVariant::Auto;
    } else if (spec == "batched") {
      c.variant = KernelVariant::Batched;
    } else if (spec.rfind("batched-", 0) == 0) {
      c.variant = KernelVariant::Batched;
      const std::string back = spec.substr(8);
      if (back == "scalar") c.isa = simd::Isa::Scalar;
      else if (back == "sse") c.isa = simd::Isa::Sse;
      else if (back == "avx2") c.isa = simd::Isa::Avx2;
      else if (back == "avx512") c.isa = simd::Isa::Avx512;
      else if (back == "neon") c.isa = simd::Isa::Neon;
      else
        SFG_CHECK_MSG(false, "unknown batched backend '" << back
                             << "' in kernel spec '" << spec << "'");
      SFG_CHECK_MSG(batched_backend_compiled(c.isa),
                    "batched backend '" << back
                    << "' is not compiled into this binary");
      SFG_CHECK_MSG(simd::cpu_supports(c.isa),
                    "this CPU cannot execute the '" << back
                    << "' batched backend");
      c.lanes = simd::isa_width(c.isa);
      return c;
    } else {
      SFG_CHECK_MSG(false, "unknown kernel spec '" << spec
                           << "' (reference|blas|sse|batched|auto|"
                              "batched-<isa>)");
    }
  }
  if (c.variant == KernelVariant::Auto ||
      c.variant == KernelVariant::Batched) {
    c.variant = KernelVariant::Batched;
    c.isa = best_batched_isa();
    c.lanes = simd::isa_width(c.isa);
  }
  SFG_CHECK_MSG(c.variant != KernelVariant::Sse || ngll == 5,
                "the SSE kernel is specialized for NGLL = 5 (degree 4), as "
                "in SPECFEM3D_GLOBE");
  return c;
}

ForceKernel::ForceKernel(const GllBasis& basis, KernelVariant variant,
                         bool attenuation)
    : ForceKernel(basis,
                  resolve_kernel_choice(variant, basis.num_points()),
                  attenuation) {}

ForceKernel::ForceKernel(const GllBasis& basis, const KernelChoice& choice,
                         bool attenuation)
    : ngll_(basis.num_points()),
      variant_(choice.variant),
      attenuation_(attenuation) {
  SFG_CHECK_MSG(variant_ != KernelVariant::Auto,
                "Auto must be resolved before kernel construction");
  SFG_CHECK_MSG(variant_ != KernelVariant::Sse || ngll_ == 5,
                "the SSE kernel is specialized for NGLL = 5 (degree 4), as "
                "in SPECFEM3D_GLOBE");
  if (variant_ == KernelVariant::Batched) {
    isa_ = choice.isa;
    lanes_ = choice.lanes > 0 ? choice.lanes : simd::isa_width(isa_);
    SFG_CHECK_MSG(batched_backend_compiled(isa_),
                  "batched backend '" << simd::isa_name(isa_)
                  << "' is not compiled into this binary");
    SFG_CHECK_MSG(simd::cpu_supports(isa_),
                  "this CPU cannot execute the '" << simd::isa_name(isa_)
                  << "' batched backend");
    SFG_CHECK_MSG(
        isa_ != simd::Isa::Scalar
            ? lanes_ == simd::isa_width(isa_)
            : (lanes_ == 4 || lanes_ == 8 || lanes_ == 16),
        "lane count " << lanes_ << " does not match backend "
                      << simd::isa_name(isa_));
  }
  const auto n2 = static_cast<std::size_t>(ngll_ * ngll_);
  hprime_.resize(n2);
  hprimeT_.resize(n2);
  hprimewgll_.resize(n2);
  wgll_.resize(static_cast<std::size_t>(ngll_));
  for (int i = 0; i < ngll_; ++i) {
    wgll_[static_cast<std::size_t>(i)] = static_cast<float>(basis.weight(i));
    for (int l = 0; l < ngll_; ++l) {
      const auto h = static_cast<float>(basis.hprime(i, l));
      hprime_[static_cast<std::size_t>(i * ngll_ + l)] = h;
      hprimeT_[static_cast<std::size_t>(l * ngll_ + i)] = h;
      // row l, column i: w_l * l_i'(xi_l)
      hprimewgll_[static_cast<std::size_t>(l * ngll_ + i)] =
          static_cast<float>(basis.weight(l) * basis.hprime(l, i));
    }
  }
}

void ForceKernel::compute_elastic(const ElementPointers& ep,
                                  KernelWorkspace& ws) const {
  SFG_ASSERT(ws.ngll == ngll_);
  switch (variant_) {
    case KernelVariant::Reference: elastic_reference(ep, ws); return;
    case KernelVariant::BlasLike: elastic_blas(ep, ws); return;
    case KernelVariant::Sse: elastic_sse(ep, ws); return;
    // Single-element API of the batched variant: the reference path (the
    // batched entry points are compute_*_batched).
    case KernelVariant::Batched: elastic_reference(ep, ws); return;
    case KernelVariant::Auto: break;  // resolved at construction
  }
  SFG_CHECK_MSG(false, "unresolved kernel variant");
}

namespace {
inline int idx(int ngll, int i, int j, int k) {
  return (k * ngll + j) * ngll + i;
}
}  // namespace

// ---- shared stage 2 entry point: pointwise stress from the gradient
// temporaries, writing the "new temp" arrays.  ----
void ForceKernel::pointwise_stress_and_second_stage(
    const ElementPointers& ep, KernelWorkspace& ws) const {
  const int n = ngll_;
  const int n3 = n * n * n;

  for (int p = 0; p < n3; ++p) {
    const float xixl = ep.xix[p], xiyl = ep.xiy[p], xizl = ep.xiz[p];
    const float etaxl = ep.etax[p], etayl = ep.etay[p], etazl = ep.etaz[p];
    const float gxl = ep.gammax[p], gyl = ep.gammay[p], gzl = ep.gammaz[p];
    const float jac = ep.jacobian[p];

    const float duxdx = xixl * ws.t1x[p] + etaxl * ws.t2x[p] + gxl * ws.t3x[p];
    const float duxdy = xiyl * ws.t1x[p] + etayl * ws.t2x[p] + gyl * ws.t3x[p];
    const float duxdz = xizl * ws.t1x[p] + etazl * ws.t2x[p] + gzl * ws.t3x[p];
    const float duydx = xixl * ws.t1y[p] + etaxl * ws.t2y[p] + gxl * ws.t3y[p];
    const float duydy = xiyl * ws.t1y[p] + etayl * ws.t2y[p] + gyl * ws.t3y[p];
    const float duydz = xizl * ws.t1y[p] + etazl * ws.t2y[p] + gzl * ws.t3y[p];
    const float duzdx = xixl * ws.t1z[p] + etaxl * ws.t2z[p] + gxl * ws.t3z[p];
    const float duzdy = xiyl * ws.t1z[p] + etayl * ws.t2z[p] + gyl * ws.t3z[p];
    const float duzdz = xizl * ws.t1z[p] + etazl * ws.t2z[p] + gzl * ws.t3z[p];

    const float mul = ep.muv[p];
    const float lambdal = ep.kappav[p] - 2.0f / 3.0f * mul;
    const float trace = duxdx + duydy + duzdz;

    float sxx = lambdal * trace + 2.0f * mul * duxdx;
    float syy = lambdal * trace + 2.0f * mul * duydy;
    float szz = lambdal * trace + 2.0f * mul * duzdz;
    float sxy = mul * (duxdy + duydx);
    float sxz = mul * (duxdz + duzdx);
    float syz = mul * (duydz + duzdy);

    if (attenuation_) {
      // Deviatoric strain for the memory-variable update, and subtraction
      // of the running memory-variable sums from the stress (Komatitsch &
      // Tromp 1999 attenuation formulation with unrelaxed moduli).
      const float tr3 = trace / 3.0f;
      ws.epsdev[0][static_cast<std::size_t>(p)] = duxdx - tr3;
      ws.epsdev[1][static_cast<std::size_t>(p)] = duydy - tr3;
      ws.epsdev[2][static_cast<std::size_t>(p)] = 0.5f * (duxdy + duydx);
      ws.epsdev[3][static_cast<std::size_t>(p)] = 0.5f * (duxdz + duzdx);
      ws.epsdev[4][static_cast<std::size_t>(p)] = 0.5f * (duydz + duzdy);
      if (ep.r_sum[0] != nullptr) {
        sxx -= ep.r_sum[0][p];
        syy -= ep.r_sum[1][p];
        szz -= ep.r_sum[2][p];
        sxy -= ep.r_sum[3][p];
        sxz -= ep.r_sum[4][p];
        syz -= ep.r_sum[5][p];
      }
    }

    if (ep.grav_g != nullptr) {
      // Cowling-approximation gravity body force in the hydrostatic-
      // prestress (Lagrangian) form — the sign convention that yields a
      // neutrally stable term (the naive Eulerian-buoyancy signs are
      // exponentially unstable for PREM stratification):
      //   h = +g r_hat [rho div(s) + rho' s_r]
      //       - rho [ g' r_hat s_r + g grad(s_r) ],
      //   grad(s_r)_i = sum_j r_j d_i s_j + (s_i - s_r r_i) / r.
      const float g = ep.grav_g[p];
      const float gp = ep.grav_dgdr[p];
      const float rhop = ep.grav_drhodr[p];
      const float rx = ep.grav_rx[p], ry = ep.grav_ry[p], rz = ep.grav_rz[p];
      const float invr = ep.grav_invr[p];
      const float rho = ep.rho[p];
      const float sx = ws.ux[static_cast<std::size_t>(p)];
      const float sy = ws.uy[static_cast<std::size_t>(p)];
      const float sz = ws.uz[static_cast<std::size_t>(p)];
      const float sr = sx * rx + sy * ry + sz * rz;
      const float div_s = trace;
      const float grad_sr_x =
          rx * duxdx + ry * duydx + rz * duzdx + (sx - sr * rx) * invr;
      const float grad_sr_y =
          rx * duxdy + ry * duydy + rz * duzdy + (sy - sr * ry) * invr;
      const float grad_sr_z =
          rx * duxdz + ry * duydz + rz * duzdz + (sz - sr * rz) * invr;
      const float radial = g * (rho * div_s + rhop * sr) - rho * gp * sr;
      ws.gx[static_cast<std::size_t>(p)] = radial * rx - rho * g * grad_sr_x;
      ws.gy[static_cast<std::size_t>(p)] = radial * ry - rho * g * grad_sr_y;
      ws.gz[static_cast<std::size_t>(p)] = radial * rz - rho * g * grad_sr_z;
    }

    ws.n1x[static_cast<std::size_t>(p)] =
        jac * (sxx * xixl + sxy * xiyl + sxz * xizl);
    ws.n1y[static_cast<std::size_t>(p)] =
        jac * (sxy * xixl + syy * xiyl + syz * xizl);
    ws.n1z[static_cast<std::size_t>(p)] =
        jac * (sxz * xixl + syz * xiyl + szz * xizl);
    ws.n2x[static_cast<std::size_t>(p)] =
        jac * (sxx * etaxl + sxy * etayl + sxz * etazl);
    ws.n2y[static_cast<std::size_t>(p)] =
        jac * (sxy * etaxl + syy * etayl + syz * etazl);
    ws.n2z[static_cast<std::size_t>(p)] =
        jac * (sxz * etaxl + syz * etayl + szz * etazl);
    ws.n3x[static_cast<std::size_t>(p)] =
        jac * (sxx * gxl + sxy * gyl + sxz * gzl);
    ws.n3y[static_cast<std::size_t>(p)] =
        jac * (sxy * gxl + syy * gyl + syz * gzl);
    ws.n3z[static_cast<std::size_t>(p)] =
        jac * (sxz * gxl + syz * gyl + szz * gzl);
  }
}

void ForceKernel::elastic_reference(const ElementPointers& ep,
                                    KernelWorkspace& ws) const {
  const int n = ngll_;
  const float* h = hprime_.data();
  const float* hw = hprimewgll_.data();

  // Stage 1: gradient temporaries along the three cutplane directions.
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        float sx1 = 0, sy1 = 0, sz1 = 0;
        float sx2 = 0, sy2 = 0, sz2 = 0;
        float sx3 = 0, sy3 = 0, sz3 = 0;
        for (int l = 0; l < n; ++l) {
          const float hil = h[i * n + l];
          const int p1 = idx(n, l, j, k);
          sx1 += ws.ux[static_cast<std::size_t>(p1)] * hil;
          sy1 += ws.uy[static_cast<std::size_t>(p1)] * hil;
          sz1 += ws.uz[static_cast<std::size_t>(p1)] * hil;

          const float hjl = h[j * n + l];
          const int p2 = idx(n, i, l, k);
          sx2 += ws.ux[static_cast<std::size_t>(p2)] * hjl;
          sy2 += ws.uy[static_cast<std::size_t>(p2)] * hjl;
          sz2 += ws.uz[static_cast<std::size_t>(p2)] * hjl;

          const float hkl = h[k * n + l];
          const int p3 = idx(n, i, j, l);
          sx3 += ws.ux[static_cast<std::size_t>(p3)] * hkl;
          sy3 += ws.uy[static_cast<std::size_t>(p3)] * hkl;
          sz3 += ws.uz[static_cast<std::size_t>(p3)] * hkl;
        }
        const auto p = static_cast<std::size_t>(idx(n, i, j, k));
        ws.t1x[p] = sx1;
        ws.t1y[p] = sy1;
        ws.t1z[p] = sz1;
        ws.t2x[p] = sx2;
        ws.t2y[p] = sy2;
        ws.t2z[p] = sz2;
        ws.t3x[p] = sx3;
        ws.t3y[p] = sy3;
        ws.t3z[p] = sz3;
      }
    }
  }

  pointwise_stress_and_second_stage(ep, ws);

  // Stage 3: transpose derivative application with quadrature weights.
  const float* w = wgll_.data();
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const float wjk = w[j] * w[k];
      for (int i = 0; i < n; ++i) {
        const float wik = w[i] * w[k];
        const float wij = w[i] * w[j];
        float ax = 0, ay = 0, az = 0;
        float bx = 0, by = 0, bz = 0;
        float cx = 0, cy = 0, cz = 0;
        for (int l = 0; l < n; ++l) {
          const float hwli = hw[l * n + i];
          const int p1 = idx(n, l, j, k);
          ax += ws.n1x[static_cast<std::size_t>(p1)] * hwli;
          ay += ws.n1y[static_cast<std::size_t>(p1)] * hwli;
          az += ws.n1z[static_cast<std::size_t>(p1)] * hwli;

          const float hwlj = hw[l * n + j];
          const int p2 = idx(n, i, l, k);
          bx += ws.n2x[static_cast<std::size_t>(p2)] * hwlj;
          by += ws.n2y[static_cast<std::size_t>(p2)] * hwlj;
          bz += ws.n2z[static_cast<std::size_t>(p2)] * hwlj;

          const float hwlk = hw[l * n + k];
          const int p3 = idx(n, i, j, l);
          cx += ws.n3x[static_cast<std::size_t>(p3)] * hwlk;
          cy += ws.n3y[static_cast<std::size_t>(p3)] * hwlk;
          cz += ws.n3z[static_cast<std::size_t>(p3)] * hwlk;
        }
        const auto p = static_cast<std::size_t>(idx(n, i, j, k));
        ws.fx[p] = -(wjk * ax + wik * bx + wij * cx);
        ws.fy[p] = -(wjk * ay + wik * by + wij * cy);
        ws.fz[p] = -(wjk * az + wik * bz + wij * cz);
      }
    }
  }
}

void ForceKernel::compute_acoustic(const ElementPointers& ep,
                                   KernelWorkspace& ws) const {
  const int n = ngll_;
  const float* h = hprime_.data();
  const float* hw = hprimewgll_.data();

  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        float s1 = 0, s2 = 0, s3 = 0;
        for (int l = 0; l < n; ++l) {
          s1 += ws.chi[static_cast<std::size_t>(idx(n, l, j, k))] * h[i * n + l];
          s2 += ws.chi[static_cast<std::size_t>(idx(n, i, l, k))] * h[j * n + l];
          s3 += ws.chi[static_cast<std::size_t>(idx(n, i, j, l))] * h[k * n + l];
        }
        const auto p = static_cast<std::size_t>(idx(n, i, j, k));
        ws.tc1[p] = s1;
        ws.tc2[p] = s2;
        ws.tc3[p] = s3;
      }
    }
  }

  const int n3 = n * n * n;
  for (int p = 0; p < n3; ++p) {
    const float dchidx =
        ep.xix[p] * ws.tc1[static_cast<std::size_t>(p)] +
        ep.etax[p] * ws.tc2[static_cast<std::size_t>(p)] +
        ep.gammax[p] * ws.tc3[static_cast<std::size_t>(p)];
    const float dchidy =
        ep.xiy[p] * ws.tc1[static_cast<std::size_t>(p)] +
        ep.etay[p] * ws.tc2[static_cast<std::size_t>(p)] +
        ep.gammay[p] * ws.tc3[static_cast<std::size_t>(p)];
    const float dchidz =
        ep.xiz[p] * ws.tc1[static_cast<std::size_t>(p)] +
        ep.etaz[p] * ws.tc2[static_cast<std::size_t>(p)] +
        ep.gammaz[p] * ws.tc3[static_cast<std::size_t>(p)];
    // u_fluid = (1/rho) grad(chi): the weak form carries jac / rho.
    const float fac = ep.jacobian[p] / ep.rho[p];
    ws.nc1[static_cast<std::size_t>(p)] =
        fac * (dchidx * ep.xix[p] + dchidy * ep.xiy[p] + dchidz * ep.xiz[p]);
    ws.nc2[static_cast<std::size_t>(p)] =
        fac *
        (dchidx * ep.etax[p] + dchidy * ep.etay[p] + dchidz * ep.etaz[p]);
    ws.nc3[static_cast<std::size_t>(p)] =
        fac * (dchidx * ep.gammax[p] + dchidy * ep.gammay[p] +
               dchidz * ep.gammaz[p]);
  }

  const float* w = wgll_.data();
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const float wjk = w[j] * w[k];
      for (int i = 0; i < n; ++i) {
        float a = 0, b = 0, c = 0;
        for (int l = 0; l < n; ++l) {
          a += ws.nc1[static_cast<std::size_t>(idx(n, l, j, k))] * hw[l * n + i];
          b += ws.nc2[static_cast<std::size_t>(idx(n, i, l, k))] * hw[l * n + j];
          c += ws.nc3[static_cast<std::size_t>(idx(n, i, j, l))] * hw[l * n + k];
        }
        ws.fchi[static_cast<std::size_t>(idx(n, i, j, k))] =
            -(wjk * a + w[i] * w[k] * b + w[i] * w[j] * c);
      }
    }
  }
}

std::uint64_t ForceKernel::elastic_flops_per_element() const {
  const auto n = static_cast<std::uint64_t>(ngll_);
  const std::uint64_t n3 = n * n * n;
  const std::uint64_t n4 = n3 * n;
  // Stage 1: 9 temp arrays, 2 flops per summand: 18 n^4.
  // Pointwise: 9 partials (5 flops) + stress (~25) + 9 newtemps (6 flops).
  // Stage 3: 18 n^4 + weighted combine (~24 per point).
  std::uint64_t pointwise = 45 + 25 + 54 + 24;
  if (attenuation_) pointwise += 20;  // epsdev + memory-sum subtraction
  return 36 * n4 + pointwise * n3;
}

std::uint64_t ForceKernel::acoustic_flops_per_element() const {
  const auto n = static_cast<std::uint64_t>(ngll_);
  const std::uint64_t n3 = n * n * n;
  const std::uint64_t n4 = n3 * n;
  // 3 temps both stages (12 n^4) + pointwise (~15 + 18) + combine (~8).
  return 12 * n4 + 41 * n3;
}

}  // namespace sfg

// The "BLAS SGEMM" comparator of paper §4.3. The paper found that calling
// a vendor BLAS for the 5x5 cutplane products is a net LOSS: "the matrices
// are very small (5 x 5) and therefore the overhead of the BLAS routine is
// higher than what we can hope to gain", and cutplanes not linearly
// aligned in memory "would first require a memory copy to an aligned 2D
// block". This file reproduces that configuration faithfully: a generic
// runtime-dimension column-major SGEMM behind a non-inlinable call
// boundary, with cutplane staging copies where the data is not already a
// dense column-major operand.

#include <cstring>

#include "kernels/force_kernel.hpp"

namespace sfg {

namespace {

/// Generic column-major SGEMM: C(m,n) = A(m,k) * B(k,n), beta = 0.
/// Marked noinline to model the call overhead of an external BLAS.
__attribute__((noinline)) void sgemm_generic(int m, int n, int k,
                                             const float* a, int lda,
                                             const float* b, int ldb,
                                             float* c, int ldc) {
  for (int col = 0; col < n; ++col) {
    for (int row = 0; row < m; ++row) c[col * ldc + row] = 0.0f;
    for (int kk = 0; kk < k; ++kk) {
      const float bv = b[col * ldb + kk];
      const float* acol = a + kk * lda;
      float* ccol = c + col * ldc;
      for (int row = 0; row < m; ++row) ccol[row] += acol[row] * bv;
    }
  }
}

}  // namespace

void ForceKernel::elastic_blas(const ElementPointers& ep,
                               KernelWorkspace& ws) const {
  const int n = ngll_;
  const int n2 = n * n;

  // The staging buffers are only ever needed by this variant, so
  // KernelWorkspace no longer allocates them up front; size them on the
  // first call (n^2 floats each suffice, padded_block_size keeps the
  // historical 4-wide alignment headroom).
  const auto scratch = static_cast<std::size_t>(padded_block_size(n));
  if (ws.scratch_a.size() < scratch) {
    ws.scratch_a.assign(scratch, 0.0f);
    ws.scratch_b.assign(scratch, 0.0f);
    ws.scratch_c.assign(scratch, 0.0f);
  }

  // Column-major operand views:
  //  * hprimeT_[l*n+i] == h(i,l): H as a column-major (i,l) matrix.
  //  * hprime_[i*n+l]  == h(i,l): H^T as a column-major (l,i) matrix.
  //  * hprimewgll_[l*n+i]: matrix M(i,l) = w_l l_i'(xi_l), column-major.
  const float* Hcm = hprimeT_.data();
  const float* HTcm = hprime_.data();
  const float* HWcm = hprimewgll_.data();

  // dim0: out[i,(jk)] = sum_l M(i,l) s[l,(jk)] — one n x n^2 GEMM, the
  // operands are already dense column-major blocks.
  auto dim0 = [&](const float* s, const float* m, float* d) {
    sgemm_generic(n, n2, n, m, n, s, n, d, n);
  };
  // dim1: out[i,j,k] = sum_l s[i,l,k] MT(l,j) — per-k 5x5 GEMMs, each
  // staged through an aligned scratch copy as the paper describes.
  auto dim1 = [&](const float* s, const float* mt, float* d) {
    for (int k = 0; k < n; ++k) {
      const int off = k * n2;
      std::memcpy(ws.scratch_a.data(), s + off,
                  sizeof(float) * static_cast<std::size_t>(n2));
      sgemm_generic(n, n, n, ws.scratch_a.data(), n, mt, n,
                    ws.scratch_b.data(), n);
      std::memcpy(d + off, ws.scratch_b.data(),
                  sizeof(float) * static_cast<std::size_t>(n2));
    }
  };
  // dim2: out[(ij),k] = sum_l s[(ij),l] MT(l,k) — one n^2 x n GEMM.
  auto dim2 = [&](const float* s, const float* mt, float* d) {
    sgemm_generic(n2, n, n, s, n2, mt, n, d, n2);
  };

  // ---- Stage 1: gradient temporaries. ----
  dim0(ws.ux.data(), Hcm, ws.t1x.data());
  dim0(ws.uy.data(), Hcm, ws.t1y.data());
  dim0(ws.uz.data(), Hcm, ws.t1z.data());
  dim1(ws.ux.data(), HTcm, ws.t2x.data());
  dim1(ws.uy.data(), HTcm, ws.t2y.data());
  dim1(ws.uz.data(), HTcm, ws.t2z.data());
  dim2(ws.ux.data(), HTcm, ws.t3x.data());
  dim2(ws.uy.data(), HTcm, ws.t3y.data());
  dim2(ws.uz.data(), HTcm, ws.t3z.data());

  pointwise_stress_and_second_stage(ep, ws);

  // ---- Stage 3 contractions (weights applied afterwards). ----
  // dims 1/2 need HW^T as a column-major (l,j) matrix: one more staging
  // copy, exactly as a real BLAS port would perform.
  float* hwT = ws.scratch_c.data();  // n^2 floats fit in the padded block
  for (int j = 0; j < n; ++j)
    for (int l = 0; l < n; ++l)
      hwT[j * n + l] = hprimewgll_[static_cast<std::size_t>(l * n + j)];

  dim0(ws.n1x.data(), HWcm, ws.fx.data());
  dim0(ws.n1y.data(), HWcm, ws.fy.data());
  dim0(ws.n1z.data(), HWcm, ws.fz.data());
  dim1(ws.n2x.data(), hwT, ws.tc1.data());
  dim1(ws.n2y.data(), hwT, ws.tc2.data());
  dim1(ws.n2z.data(), hwT, ws.tc3.data());
  dim2(ws.n3x.data(), hwT, ws.nc1.data());
  dim2(ws.n3y.data(), hwT, ws.nc2.data());
  dim2(ws.n3z.data(), hwT, ws.nc3.data());

  // Weighted combine; fx/fy/fz currently hold the dim0 terms.
  const float* w = wgll_.data();
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      const float wjk = w[j] * w[k];
      for (int i = 0; i < n; ++i) {
        const float wik = w[i] * w[k];
        const float wij = w[i] * w[j];
        const auto p = static_cast<std::size_t>((k * n + j) * n + i);
        ws.fx[p] = -(wjk * ws.fx[p] + wik * ws.tc1[p] + wij * ws.nc1[p]);
        ws.fy[p] = -(wjk * ws.fy[p] + wik * ws.tc2[p] + wij * ws.nc2[p]);
        ws.fz[p] = -(wjk * ws.fz[p] + wik * ws.tc3[p] + wij * ws.nc3[p]);
      }
    }
  }
}

}  // namespace sfg

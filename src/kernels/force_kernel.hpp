#pragma once

/// \file force_kernel.hpp
/// The internal-force compute kernels of the solver — the code the paper
/// spends §4.3 optimizing. More than 70% of runtime is spent in two
/// routines ("the large solid mantle and crust, and the smaller fluid
/// outer core") that perform small matrix-matrix products (typically
/// 5 x 5) along cutplanes of 3-D arrays.
///
/// Three interchangeable variants are provided:
///  * Reference — clean nested loops (the "regular Fortran loops" the
///    paper compares against),
///  * BlasLike — a generic runtime-dimension SGEMM with cutplane copies,
///    reproducing why "using BLAS calls actually significantly slows down
///    the code" for 5 x 5 matrices,
///  * Sse — hand-written SSE intrinsics processing 4 of each 5 values in
///    vector registers and the 5th serially, with 5x5x5=125-float blocks
///    padded to 128 (the paper's 2.4% memory waste),
///  * Batched — B elements packed into [point][lane] SoA blocks and run
///    through the whole kernel one vector op per point (ISSUE 6), with a
///    runtime-dispatched backend (scalar/SSE/AVX2/AVX-512/NEON; see
///    common/simd.hpp and docs/kernels.md). Lanes are arithmetically
///    independent, so an element's forces are bit-identical regardless of
///    its batch companions or lane position — the lane-order bit-identity
///    contract the solver's batched schedules rely on.
///
/// All variants compute identical math and must agree to float tolerance
/// (enforced by tests/test_kernels.cpp).

#include <cstdint>

#include "common/aligned.hpp"
#include "common/simd.hpp"
#include "quadrature/gll.hpp"

namespace sfg {

enum class KernelVariant {
  Reference,
  BlasLike,
  Sse,
  Batched,
  /// Resolve to the best supported variant at runtime (Batched on the
  /// widest usable ISA backend). The SimulationConfig default.
  Auto,
};

const char* kernel_variant_name(KernelVariant v);

/// Padded length of an ngll^3 block, rounded up so `width`-wide vector
/// loads starting at any point index stay in bounds (125 -> 128 for
/// ngll = 5 at the classic 4-wide padding — the paper's 2.4% memory
/// waste). Generalized beyond the hard-coded 4 for the batched SoA
/// blocks, whose lane count follows the dispatched ISA width.
constexpr int padded_block_size(int ngll, int width = 4) {
  const int n3 = ngll * ngll * ngll;
  // ceil((n3 + width - 1) / width) * width
  return (n3 + 2 * (width - 1)) / width * width;
}
static_assert(padded_block_size(5) == 128, "the paper's 125->128 padding");
static_assert(padded_block_size(5, 8) == 136, "8-wide padding of 125");
static_assert(padded_block_size(5, 16) == 144, "16-wide padding of 125");

/// The widest batched-kernel backend that is both compiled into this
/// binary and executable on this CPU (runtime cpuid). Scalar when nothing
/// wider is usable.
simd::Isa best_batched_isa();

/// True when the batched-kernel translation unit compiled a backend for
/// `isa` (the compile-time half of dispatch; cpu_supports is the runtime
/// half).
bool batched_backend_compiled(simd::Isa isa);

/// A concrete kernel selection: the variant plus, for Batched, the ISA
/// backend and SoA lane count. Produced by resolve_kernel_choice.
struct KernelChoice {
  KernelVariant variant = KernelVariant::Reference;
  simd::Isa isa = simd::Isa::Scalar;  ///< Batched only
  int lanes = 1;                      ///< Batched only (4, 8 or 16)
};

/// Resolve a requested variant (possibly Auto) to a concrete choice.
/// `override_spec` is the SFG_KERNEL-style A/B-debugging override and
/// wins over `requested` when non-null/non-empty:
///   reference | blas | sse | batched | auto |
///   batched-scalar | batched-sse | batched-avx2 | batched-avx512 |
///   batched-neon
/// Auto (and plain "batched") picks best_batched_isa(). Throws CheckError
/// on an unknown spec or a backend the host cannot run; Sse additionally
/// requires ngll == 5.
KernelChoice resolve_kernel_choice(KernelVariant requested, int ngll,
                                   const char* override_spec = nullptr);

/// Per-element input pointers: inverse-mapping tables, Jacobian and
/// isotropic moduli, each an array of ngll^3 values for one element.
struct ElementPointers {
  const float* xix;
  const float* xiy;
  const float* xiz;
  const float* etax;
  const float* etay;
  const float* etaz;
  const float* gammax;
  const float* gammay;
  const float* gammaz;
  const float* jacobian;
  const float* kappav;  ///< unrelaxed bulk modulus (elastic) or kappa (fluid)
  const float* muv;     ///< unrelaxed shear modulus (elastic only)
  const float* rho;     ///< density (used by the acoustic kernel)

  /// Attenuation (optional): per-point running memory-variable sums for
  /// the 6 stress components, pre-summed over the SLSs
  /// (R_xx, R_yy, R_zz, R_xy, R_xz, R_yz). Null when attenuation is off.
  const float* r_sum[6] = {nullptr, nullptr, nullptr,
                           nullptr, nullptr, nullptr};

  /// Gravity in the Cowling approximation (optional): per-point g(r),
  /// dg/dr, drho/dr, the unit radial direction and 1/r. When grav_g is
  /// non-null the kernel also evaluates the body-force density
  ///   h = div(rho s) g_vec - rho grad(s . g_vec),   g_vec = -g r_hat,
  /// into the workspace gravity arrays (gx, gy, gz); the region code adds
  /// w3 * jacobian * h to the nodal forces (collocated body force).
  const float* grav_g = nullptr;
  const float* grav_dgdr = nullptr;
  const float* grav_drhodr = nullptr;
  const float* grav_rx = nullptr;
  const float* grav_ry = nullptr;
  const float* grav_rz = nullptr;
  const float* grav_invr = nullptr;
};

/// Scratch arrays for one element, 64-byte aligned and padded. Gathered
/// displacement goes in ux/uy/uz; the kernel writes the force contribution
/// (already carrying the weak-form minus sign) into fx/fy/fz; with
/// attenuation enabled it also writes the deviatoric strain (5 components:
/// dev_xx, dev_yy, dev_xy, dev_xz, dev_yz) for the memory-variable update.
struct KernelWorkspace {
  explicit KernelWorkspace(int ngll);

  int ngll;
  int padded;

  aligned_vector<float> ux, uy, uz;
  aligned_vector<float> fx, fy, fz;
  aligned_vector<float> epsdev[5];
  aligned_vector<float> gx, gy, gz;  ///< gravity body-force density

  // internal temporaries (both derivative stages), kept allocated
  aligned_vector<float> t1x, t1y, t1z, t2x, t2y, t2z, t3x, t3y, t3z;
  aligned_vector<float> n1x, n1y, n1z, n2x, n2y, n2z, n3x, n3y, n3z;

  // acoustic temporaries
  aligned_vector<float> chi, fchi, tc1, tc2, tc3, nc1, nc2, nc3;

  // BlasLike cutplane copy scratch. Allocated LAZILY by the BlasLike
  // variant on its first call (sized once, then reused) so the other
  // variants never pay for it — workspaces are per-thread and plentiful.
  aligned_vector<float> scratch_a, scratch_b, scratch_c;
};

/// SoA inputs for one batch of the Batched variant: every field is an
/// array of ngll^3 * lanes floats in [point][lane] layout — value of
/// point p, lane (element) l at index p * lanes + l. Built once per batch
/// by the solver (the tables never change during time marching); only the
/// displacement gather and the attenuation sums are per-step.
struct BatchPointers {
  const float* xix;
  const float* xiy;
  const float* xiz;
  const float* etax;
  const float* etay;
  const float* etaz;
  const float* gammax;
  const float* gammay;
  const float* gammaz;
  const float* jacobian;
  const float* kappav;
  const float* muv;
  const float* rho;

  /// Attenuation memory-variable sums (see ElementPointers::r_sum), in
  /// the same [point][lane] layout. Null when attenuation is off.
  const float* r_sum[6] = {nullptr, nullptr, nullptr,
                           nullptr, nullptr, nullptr};

  /// Gravity tables (see ElementPointers), [point][lane]. grav_g == null
  /// disables the gravity body-force evaluation.
  const float* grav_g = nullptr;
  const float* grav_dgdr = nullptr;
  const float* grav_drhodr = nullptr;
  const float* grav_rx = nullptr;
  const float* grav_ry = nullptr;
  const float* grav_rz = nullptr;
  const float* grav_invr = nullptr;
};

/// Scratch for one batch of B = lanes elements, mirroring KernelWorkspace
/// in [point][lane] SoA layout. Arrays are sized
/// padded_block_size(ngll, lanes) * lanes once at construction (the
/// generalized padding: any lanes-wide load starting at a valid flat
/// index stays in bounds) — sized here, never per call.
struct BatchWorkspace {
  BatchWorkspace(int ngll, int lanes);

  int ngll;
  int lanes;
  std::size_t stride;  ///< floats per field = padded * lanes

  aligned_vector<float> ux, uy, uz;
  aligned_vector<float> fx, fy, fz;
  aligned_vector<float> epsdev[5];
  aligned_vector<float> gx, gy, gz;

  aligned_vector<float> t1x, t1y, t1z, t2x, t2y, t2z, t3x, t3y, t3z;
  aligned_vector<float> n1x, n1y, n1z, n2x, n2y, n2z, n3x, n3y, n3z;

  aligned_vector<float> chi, fchi, tc1, tc2, tc3, nc1, nc2, nc3;
};

/// Precomputed float copies of the basis matrices in the layouts the
/// kernels consume.
class ForceKernel {
 public:
  /// `variant` may be Auto (or Batched): it is resolved through
  /// resolve_kernel_choice (no env override at this level — the solver
  /// applies SFG_KERNEL before constructing the kernel).
  ForceKernel(const GllBasis& basis, KernelVariant variant,
              bool attenuation = false);
  /// Explicit backend selection (tests, A/B benches).
  ForceKernel(const GllBasis& basis, const KernelChoice& choice,
              bool attenuation = false);

  KernelVariant variant() const { return variant_; }
  /// Batched backend ISA (Scalar for non-batched variants).
  simd::Isa isa() const { return isa_; }
  /// SoA batch width B (1 for non-batched variants).
  int lanes() const { return lanes_; }
  bool attenuation() const { return attenuation_; }
  int ngll() const { return ngll_; }

  /// Elastic (solid-region) force: consumes ws.ux/uy/uz, fills
  /// ws.fx/fy/fz (and ws.epsdev when attenuation is on). The Batched
  /// variant falls back to the reference path here — this is the
  /// single-element API (used e.g. by energy accounting).
  void compute_elastic(const ElementPointers& ep, KernelWorkspace& ws) const;

  /// Acoustic (fluid-region) force on the potential: consumes ws.chi,
  /// fills ws.fchi. Always the reference path except the Sse variant.
  void compute_acoustic(const ElementPointers& ep, KernelWorkspace& ws) const;

  /// Batched elastic force across ws.lanes SoA lanes: consumes
  /// ws.ux/uy/uz, fills ws.fx/fy/fz (+ ws.epsdev with attenuation,
  /// ws.gx/gy/gz with gravity inputs), all [point][lane]. Requires
  /// variant() == Batched and ws.lanes == lanes().
  void compute_elastic_batched(const BatchPointers& bp,
                               BatchWorkspace& ws) const;
  /// Batched acoustic force: consumes ws.chi, fills ws.fchi.
  void compute_acoustic_batched(const BatchPointers& bp,
                                BatchWorkspace& ws) const;

  /// Analytic floating-point operation count of compute_elastic for one
  /// element (used by the sustained-FLOPS model, paper §5).
  std::uint64_t elastic_flops_per_element() const;
  /// Same for compute_acoustic.
  std::uint64_t acoustic_flops_per_element() const;

  // Basis tables (row-major). hprime[i*ngll+l] = l_l'(xi_i).
  // hprimewgll[l*ngll+i] = w_l * l_i'(xi_l) (summation index l is the row).
  const float* hprime() const { return hprime_.data(); }
  const float* hprimewgll() const { return hprimewgll_.data(); }
  const float* wgll() const { return wgll_.data(); }

 private:
  void elastic_reference(const ElementPointers& ep, KernelWorkspace& ws) const;
  void elastic_blas(const ElementPointers& ep, KernelWorkspace& ws) const;
  void elastic_sse(const ElementPointers& ep, KernelWorkspace& ws) const;
  void pointwise_stress_and_second_stage(const ElementPointers& ep,
                                         KernelWorkspace& ws) const;

  int ngll_;
  KernelVariant variant_;
  simd::Isa isa_ = simd::Isa::Scalar;
  int lanes_ = 1;
  bool attenuation_;
  aligned_vector<float> hprime_;      // [i][l]
  aligned_vector<float> hprimeT_;     // [l][i] (transposed, for SSE)
  aligned_vector<float> hprimewgll_;  // [l][i]
  aligned_vector<float> wgll_;        // 1-D weights
};

}  // namespace sfg

#pragma once

/// \file gll.hpp
/// Gauss-Lobatto-Legendre (GLL) quadrature and Lagrange interpolation on
/// [-1, 1] (paper §2.3).
///
/// A spectral element of polynomial degree N carries (N+1)^3 GLL points.
/// GLL nodes are the endpoints ±1 plus the roots of P_N'(x); the weights
/// are w_i = 2 / (N (N+1) P_N(x_i)^2). The quadrature is exact for
/// polynomials of degree <= 2N-1, and the diagonal mass matrix of the SEM
/// follows from collocating the quadrature nodes with the interpolation
/// nodes.

#include <vector>

#include "common/array_view.hpp"

namespace sfg {

/// GLL nodes, weights and the Lagrange derivative matrix for degree N.
class GllBasis {
 public:
  /// Build the degree-`degree` basis (degree >= 1; SEM codes use 4..10).
  explicit GllBasis(int degree);

  int degree() const { return degree_; }
  /// Number of nodes per edge, N + 1 (SPECFEM's NGLLX).
  int num_points() const { return degree_ + 1; }

  /// Node i in [-1, 1], ascending; node(0) == -1, node(N) == +1.
  double node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  /// Quadrature weight associated with node i.
  double weight(int i) const { return weights_[static_cast<std::size_t>(i)]; }

  const std::vector<double>& nodes() const { return nodes_; }
  const std::vector<double>& weights() const { return weights_; }

  /// hprime(i, j) = l_j'(x_i): derivative of the j-th Lagrange cardinal
  /// polynomial at node i. This is SPECFEM's "hprime_xx" matrix; it drives
  /// the small matrix-matrix products of paper §4.3.
  double hprime(int i, int j) const {
    return hprime_[static_cast<std::size_t>(i * num_points() + j)];
  }
  Span2D<const double> hprime_matrix() const {
    return {hprime_.data(), static_cast<std::size_t>(num_points()),
            static_cast<std::size_t>(num_points())};
  }

  /// hprime_wgll(i, j) = w_i * l_j'(x_i), the weighted transpose-side
  /// matrix used in the force kernel (SPECFEM's hprimewgll_xx).
  double hprime_wgll(int i, int j) const {
    return hprime_wgll_[static_cast<std::size_t>(i * num_points() + j)];
  }

  /// Evaluate the j-th Lagrange cardinal polynomial at arbitrary x.
  double lagrange(int j, double x) const;

  /// Evaluate d/dx of the j-th Lagrange cardinal polynomial at arbitrary x.
  double lagrange_derivative(int j, double x) const;

 private:
  int degree_;
  std::vector<double> nodes_;
  std::vector<double> weights_;
  std::vector<double> hprime_;
  std::vector<double> hprime_wgll_;
};

/// Legendre polynomial P_n(x) (for tests and weight computation).
double legendre(int n, double x);
/// Derivative P_n'(x).
double legendre_derivative(int n, double x);

}  // namespace sfg

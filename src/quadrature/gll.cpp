#include "quadrature/gll.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/constants.hpp"

namespace sfg {

double legendre(int n, double x) {
  SFG_CHECK(n >= 0);
  if (n == 0) return 1.0;
  if (n == 1) return x;
  double pm1 = 1.0, p = x;
  for (int k = 2; k <= n; ++k) {
    const double pk = ((2.0 * k - 1.0) * x * p - (k - 1.0) * pm1) / k;
    pm1 = p;
    p = pk;
  }
  return p;
}

double legendre_derivative(int n, double x) {
  SFG_CHECK(n >= 0);
  if (n == 0) return 0.0;
  // (1 - x^2) P_n'(x) = n (P_{n-1}(x) - x P_n(x))
  const double denom = 1.0 - x * x;
  if (std::abs(denom) < 1e-14) {
    // P_n'(±1) = ±^(n+1) n(n+1)/2
    const double v = 0.5 * n * (n + 1.0);
    if (x > 0.0) return v;
    return (n % 2 == 0) ? -v : v;
  }
  return n * (legendre(n - 1, x) - x * legendre(n, x)) / denom;
}

namespace {

// Second derivative of P_n from the Legendre ODE:
// (1-x^2) P'' - 2x P' + n(n+1) P = 0.
double legendre_second_derivative(int n, double x) {
  const double denom = 1.0 - x * x;
  SFG_CHECK(std::abs(denom) > 1e-14);
  return (2.0 * x * legendre_derivative(n, x) -
          n * (n + 1.0) * legendre(n, x)) / denom;
}

}  // namespace

GllBasis::GllBasis(int degree) : degree_(degree) {
  SFG_CHECK_MSG(degree >= 1 && degree <= 32, "GLL degree out of range");
  const int np = degree + 1;
  nodes_.resize(static_cast<std::size_t>(np));
  weights_.resize(static_cast<std::size_t>(np));

  nodes_[0] = -1.0;
  nodes_[static_cast<std::size_t>(degree)] = 1.0;

  // Interior nodes: roots of P_N'(x), found by Newton iteration seeded with
  // Chebyshev-Gauss-Lobatto points (a classical, robust initialization).
  for (int i = 1; i < degree; ++i) {
    double x = -std::cos(kPi * i / degree);
    for (int it = 0; it < 100; ++it) {
      const double f = legendre_derivative(degree, x);
      const double fp = legendre_second_derivative(degree, x);
      const double dx = f / fp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    nodes_[static_cast<std::size_t>(i)] = x;
  }

  for (int i = 0; i < np; ++i) {
    const double p = legendre(degree, nodes_[static_cast<std::size_t>(i)]);
    weights_[static_cast<std::size_t>(i)] = 2.0 / (degree * np * p * p);
  }

  // Lagrange derivative matrix at the nodes. The standard closed form:
  //   l_j'(x_i) = (P_N(x_i) / P_N(x_j)) / (x_i - x_j),  i != j
  //   l_0'(x_0) = -N(N+1)/4,  l_N'(x_N) = +N(N+1)/4,  else 0 on diagonal.
  hprime_.resize(static_cast<std::size_t>(np * np));
  hprime_wgll_.resize(static_cast<std::size_t>(np * np));
  for (int i = 0; i < np; ++i) {
    for (int j = 0; j < np; ++j) {
      double v;
      if (i == j) {
        if (i == 0) {
          v = -0.25 * degree * np;
        } else if (i == degree) {
          v = 0.25 * degree * np;
        } else {
          v = 0.0;
        }
      } else {
        const double xi = nodes_[static_cast<std::size_t>(i)];
        const double xj = nodes_[static_cast<std::size_t>(j)];
        v = (legendre(degree, xi) / legendre(degree, xj)) / (xi - xj);
      }
      hprime_[static_cast<std::size_t>(i * np + j)] = v;
      hprime_wgll_[static_cast<std::size_t>(i * np + j)] =
          weights_[static_cast<std::size_t>(i)] * v;
    }
  }
}

double GllBasis::lagrange(int j, double x) const {
  const int np = num_points();
  SFG_CHECK(j >= 0 && j < np);
  double prod = 1.0;
  const double xj = nodes_[static_cast<std::size_t>(j)];
  for (int m = 0; m < np; ++m) {
    if (m == j) continue;
    const double xm = nodes_[static_cast<std::size_t>(m)];
    prod *= (x - xm) / (xj - xm);
  }
  return prod;
}

double GllBasis::lagrange_derivative(int j, double x) const {
  const int np = num_points();
  SFG_CHECK(j >= 0 && j < np);
  const double xj = nodes_[static_cast<std::size_t>(j)];
  double sum = 0.0;
  for (int k = 0; k < np; ++k) {
    if (k == j) continue;
    double prod = 1.0 / (xj - nodes_[static_cast<std::size_t>(k)]);
    for (int m = 0; m < np; ++m) {
      if (m == j || m == k) continue;
      const double xm = nodes_[static_cast<std::size_t>(m)];
      prod *= (x - xm) / (xj - xm);
    }
    sum += prod;
  }
  return sum;
}

}  // namespace sfg

#!/usr/bin/env bash
# CI-style gate (ISSUE 2, extended by ISSUE 3): build, run the fast tier-1
# test suite, then two sanitizer configurations —
#  * AddressSanitizer + UndefinedBehaviorSanitizer over the memory-heavy
#    solver/mesh/IO tests (build-asan/),
#  * ThreadSanitizer over the concurrency-heavy tests (build-tsan/).
#
# Usage: scripts/check.sh [--no-tsan] [--no-asan]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_TSAN=1
RUN_ASAN=1
for arg in "$@"; do
  case "${arg}" in
    --no-tsan) RUN_TSAN=0 ;;
    --no-asan) RUN_ASAN=0 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

echo "==> configure + build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "==> tier-1 tests (ctest -L tier1)"
ctest --test-dir build -L tier1 --output-on-failure -j "${JOBS}"

if [[ "${RUN_ASAN}" == "1" ]]; then
  ASAN_TESTS=(test_solver test_parallel_solver test_checkpoint test_metrics
              test_source_ownership test_point_location test_sphere
              test_exchanger test_io)
  echo "==> configure + build ASan+UBSan config (build-asan/)"
  cmake -B build-asan -S . -DSFG_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "${JOBS}" --target "${ASAN_TESTS[@]}"

  echo "==> memory/UB tests under ASan+UBSan"
  for t in "${ASAN_TESTS[@]}"; do
    echo "--> ${t}"
    ASAN_OPTIONS=detect_leaks=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      ./build-asan/tests/"${t}"
  done
fi

if [[ "${RUN_TSAN}" == "1" ]]; then
  echo "==> configure + build ThreadSanitizer config (build-tsan/)"
  cmake -B build-tsan -S . -DSFG_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" \
    --target test_threaded_solver test_smpi test_fault_injection

  echo "==> concurrency tests under TSan"
  for t in test_threaded_solver test_smpi test_fault_injection; do
    echo "--> ${t}"
    ./build-tsan/tests/"${t}"
  done
fi

echo "==> all checks passed"

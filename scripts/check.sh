#!/usr/bin/env bash
# CI-style gate (ISSUE 2, extended by ISSUEs 3 and 4): build, run the fast
# tier-1 test suite, then three extra configurations —
#  * AddressSanitizer + UndefinedBehaviorSanitizer over the memory-heavy
#    solver/mesh/IO tests (build-asan/),
#  * ThreadSanitizer over the concurrency-heavy tests (build-tsan/),
#  * a gcov coverage build (build-cov/) that reruns the tier-1 suite and
#    asserts line-coverage floors for src/mesh/, src/runtime/, src/perf/,
#    src/kernels/ and src/io/ — the directories the schedule/exchange and
#    durability correctness arguments live in.
#
# Usage: scripts/check.sh [--no-tsan] [--no-asan] [--no-coverage]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_TSAN=1
RUN_ASAN=1
RUN_COV=1
for arg in "$@"; do
  case "${arg}" in
    --no-tsan) RUN_TSAN=0 ;;
    --no-asan) RUN_ASAN=0 ;;
    --no-coverage) RUN_COV=0 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

echo "==> configure + build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "==> tier-1 tests (ctest -L tier1)"
ctest --test-dir build -L tier1 --output-on-failure -j "${JOBS}"

if [[ "${RUN_ASAN}" == "1" ]]; then
  ASAN_TESTS=(test_solver test_parallel_solver test_checkpoint test_metrics
              test_source_ownership test_point_location test_sphere
              test_exchanger test_io test_io_container test_kernels test_lts)
  echo "==> configure + build ASan+UBSan config (build-asan/)"
  cmake -B build-asan -S . -DSFG_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "${JOBS}" --target "${ASAN_TESTS[@]}"

  echo "==> memory/UB tests under ASan+UBSan"
  for t in "${ASAN_TESTS[@]}"; do
    echo "--> ${t}"
    ASAN_OPTIONS=detect_leaks=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      ./build-asan/tests/"${t}"
  done
fi

if [[ "${RUN_TSAN}" == "1" ]]; then
  echo "==> configure + build ThreadSanitizer config (build-tsan/)"
  cmake -B build-tsan -S . -DSFG_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" \
    --target test_threaded_solver test_smpi test_fault_injection \
             test_service test_schedule_property test_lts \
             test_frontend test_loadgen_determinism

  echo "==> concurrency tests under TSan"
  for t in test_threaded_solver test_smpi test_fault_injection \
           test_service test_schedule_property test_lts \
           test_frontend test_loadgen_determinism; do
    echo "--> ${t}"
    ./build-tsan/tests/"${t}"
  done
fi

if [[ "${RUN_COV}" == "1" ]]; then
  # Line-coverage floors (percent) asserted over the .cpp files of each
  # directory. Measured at introduction: mesh 98.1%, runtime 99.4%,
  # kernels 95.7%, io 95.1%.
  COV_FLOOR_MESH=90
  COV_FLOOR_RUNTIME=90
  COV_FLOOR_PERF=90
  COV_FLOOR_KERNELS=90
  COV_FLOOR_IO=90
  # The ISSUE-9 front-end sources only (frontend/shard_ring/tiered_cache/
  # loadgen), not all of src/service — pre-existing files keep their
  # historical coverage profile.
  COV_FLOOR_FRONTEND=90

  echo "==> configure + build coverage config (build-cov/)"
  cmake -B build-cov -S . -DSFG_COVERAGE=ON >/dev/null
  cmake --build build-cov -j "${JOBS}"

  echo "==> tier-1 tests under coverage instrumentation"
  ctest --test-dir build-cov -L tier1 --output-on-failure -j "${JOBS}"

  echo "==> gcov line-coverage summary"
  # gcov-only aggregation (no lcov in the image): `gcov -n` prints one
  # "File .../ Lines executed:P% of N" pair per source; sum executed lines
  # per directory over the per-TU .gcda files.
  find build-cov/src -name '*.gcda' -print0 \
    | xargs -0 gcov -n 2>/dev/null \
    | awk -v floor_mesh="${COV_FLOOR_MESH}" \
          -v floor_runtime="${COV_FLOOR_RUNTIME}" \
          -v floor_perf="${COV_FLOOR_PERF}" \
          -v floor_kernels="${COV_FLOOR_KERNELS}" \
          -v floor_io="${COV_FLOOR_IO}" \
          -v floor_frontend="${COV_FLOOR_FRONTEND}" '
      /^File /  { f = $2; gsub(/\x27/, "", f) }
      /^Lines executed:/ {
        # gcov ends with a grand-total "Lines executed" line that has no
        # File header; clearing f below keeps it out of every bucket.
        split($0, a, /[:% ]+/); pct = a[3]; n = a[5];
        if (f ~ /src\/mesh\/.*\.cpp$/)    { me += pct * n / 100; mt += n }
        if (f ~ /src\/runtime\/.*\.cpp$/) { re += pct * n / 100; rt += n }
        if (f ~ /src\/perf\/.*\.cpp$/)    { pe += pct * n / 100; pt += n }
        if (f ~ /src\/kernels\/.*\.cpp$/) { ke += pct * n / 100; kt += n }
        if (f ~ /src\/io\/.*\.cpp$/)      { ie += pct * n / 100; it += n }
        if (f ~ /src\/service\/(frontend|shard_ring|tiered_cache|loadgen)\.cpp$/) { fe += pct * n / 100; ft += n }
        f = ""
      }
      END {
        mp = mt ? 100 * me / mt : 0; rp = rt ? 100 * re / rt : 0;
        pp = pt ? 100 * pe / pt : 0; kp = kt ? 100 * ke / kt : 0;
        ip = it ? 100 * ie / it : 0; fp = ft ? 100 * fe / ft : 0;
        printf "    src/mesh    : %5.1f%% of %d lines (floor %d%%)\n", mp, mt, floor_mesh;
        printf "    src/runtime : %5.1f%% of %d lines (floor %d%%)\n", rp, rt, floor_runtime;
        printf "    src/perf    : %5.1f%% of %d lines (floor %d%%)\n", pp, pt, floor_perf;
        printf "    src/kernels : %5.1f%% of %d lines (floor %d%%)\n", kp, kt, floor_kernels;
        printf "    src/io      : %5.1f%% of %d lines (floor %d%%)\n", ip, it, floor_io;
        printf "    front-end   : %5.1f%% of %d lines (floor %d%%)\n", fp, ft, floor_frontend;
        fail = 0;
        if (mt == 0 || rt == 0 || pt == 0 || kt == 0 || it == 0 || ft == 0) { print "FAIL: no coverage data found"; fail = 1 }
        if (mp < floor_mesh)    { printf "FAIL: src/mesh line coverage %.1f%% below floor %d%%\n", mp, floor_mesh; fail = 1 }
        if (rp < floor_runtime) { printf "FAIL: src/runtime line coverage %.1f%% below floor %d%%\n", rp, floor_runtime; fail = 1 }
        if (pp < floor_perf)    { printf "FAIL: src/perf line coverage %.1f%% below floor %d%%\n", pp, floor_perf; fail = 1 }
        if (kp < floor_kernels) { printf "FAIL: src/kernels line coverage %.1f%% below floor %d%%\n", kp, floor_kernels; fail = 1 }
        if (ip < floor_io)      { printf "FAIL: src/io line coverage %.1f%% below floor %d%%\n", ip, floor_io; fail = 1 }
        if (fp < floor_frontend) { printf "FAIL: front-end (service frontend/ring/cache/loadgen) line coverage %.1f%% below floor %d%%\n", fp, floor_frontend; fail = 1 }
        exit fail;
      }'
fi

echo "==> all checks passed"

#!/usr/bin/env bash
# CI-style gate (ISSUE 2): build, run the fast tier-1 test suite, then
# build the ThreadSanitizer configuration and run the concurrency-heavy
# tests (threaded solver, smpi runtime, fault injection) under it.
#
# Usage: scripts/check.sh [--no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_TSAN=1
[[ "${1:-}" == "--no-tsan" ]] && RUN_TSAN=0

echo "==> configure + build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "==> tier-1 tests (ctest -L tier1)"
ctest --test-dir build -L tier1 --output-on-failure -j "${JOBS}"

if [[ "${RUN_TSAN}" == "1" ]]; then
  echo "==> configure + build ThreadSanitizer config (build-tsan/)"
  cmake -B build-tsan -S . -DSFG_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" \
    --target test_threaded_solver test_smpi test_fault_injection

  echo "==> concurrency tests under TSan"
  for t in test_threaded_solver test_smpi test_fault_injection; do
    echo "--> ${t}"
    ./build-tsan/tests/"${t}"
  done
fi

echo "==> all checks passed"

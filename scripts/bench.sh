#!/usr/bin/env bash
# Service-level benchmark runner (ISSUE 5): builds and runs the campaign
# throughput bench and captures its machine-readable record.
#
#   scripts/bench.sh [out.json]
#
# Writes BENCH_service.json (or the given path) in the repo root: one JSON
# object with jobs/minute, cache hit rate, retry overhead and the priced
# checkpoint-recovery saving versus a cold re-run. Human-readable
# narration streams to stderr while the bench runs.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_service.json}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> build bench_campaign (build/)" >&2
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}" --target bench_campaign >/dev/null

echo "==> run campaign bench" >&2
./build/bench/bench_campaign > "${OUT}"

echo "==> wrote ${OUT}:" >&2
cat "${OUT}"

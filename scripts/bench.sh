#!/usr/bin/env bash
# Benchmark runner (ISSUE 5, extended by ISSUE 6): builds and runs the
# machine-readable benches.
#
#   scripts/bench.sh [service_out.json] [kernels_out.json] [lts_out.json] \
#                    [io_out.json] [loadtest_out.json]
#
# Writes five JSON records in the repo root:
#  * BENCH_service.json  — campaign throughput (jobs/minute, cache hit
#    rate, retry overhead, checkpoint-recovery saving),
#  * BENCH_kernels.json  — per-variant force-kernel elements/s
#    (bench_sse_kernels) plus end-to-end per-step solver time under the
#    Reference vs Batched kernels (bench_threaded_solver). HARD GATES:
#    Batched >= Sse >= Reference elements/s; the script fails when the
#    bench reports gates_ok=false.
#  * BENCH_lts.json      — clustered local-time-stepping speedup vs the
#    global-dt marcher plus interpolation overhead (bench_lts). HARD
#    GATES: multi-cluster speedup >= 1.5x and single-cluster LTS within
#    3% of the legacy marcher.
#  * BENCH_io.json       — sfg_io container vs one-file-per-rank durable
#    write throughput, random-access read throughput and file counts
#    (bench_io_container). HARD GATES: container write throughput >= the
#    per-rank backend, and the container stays ONE file (the Figure 5
#    file-count axis).
#  * BENCH_loadtest.json — sharded front-end load test (bench_loadtest,
#    ISSUE 9): a seeded Poisson/zipfian workload replayed through a
#    1-shard baseline, a 4-shard fleet and a 4-shard fleet with one shard
#    killed mid-campaign. HARD GATES: bit-identical workload replay, zero
#    failed jobs in every scenario (shard death included), each distinct
#    content key computed exactly once, 4-shard cache hit rate >= the
#    1-shard baseline, p99 under a loose sanity bound.
# Human-readable narration streams to stderr while the benches run.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_service.json}"
KOUT="${2:-BENCH_kernels.json}"
LOUT="${3:-BENCH_lts.json}"
IOUT="${4:-BENCH_io.json}"
LTOUT="${5:-BENCH_loadtest.json}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> build bench targets (build/)" >&2
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}" \
  --target bench_campaign bench_sse_kernels bench_threaded_solver \
           bench_lts bench_io_container bench_loadtest >/dev/null

echo "==> run campaign bench" >&2
./build/bench/bench_campaign > "${OUT}"

echo "==> wrote ${OUT}:" >&2
cat "${OUT}"

echo "==> run force-kernel variant bench" >&2
./build/bench/bench_sse_kernels --json /tmp/bench_kernels_frag.json >&2

echo "==> run end-to-end solver step bench" >&2
./build/bench/bench_threaded_solver --json /tmp/bench_solver_frag.json >&2

jq -n \
  --slurpfile k /tmp/bench_kernels_frag.json \
  --slurpfile s /tmp/bench_solver_frag.json \
  '{kernels: $k[0], solver_step: $s[0]}' > "${KOUT}"
rm -f /tmp/bench_kernels_frag.json /tmp/bench_solver_frag.json

echo "==> wrote ${KOUT}:" >&2
cat "${KOUT}"

if [[ "$(jq -r '.kernels.gates_ok' "${KOUT}")" != "true" ]]; then
  echo "FAIL: kernel perf gates violated (need batched >= sse >= reference elements/s)" >&2
  exit 1
fi
echo "==> kernel perf gates passed (batched >= sse >= reference)" >&2

echo "==> run clustered-LTS bench" >&2
./build/bench/bench_lts --json "${LOUT}" >&2

echo "==> wrote ${LOUT}:" >&2
cat "${LOUT}"

if [[ "$(jq -r '.gates_ok' "${LOUT}")" != "true" ]]; then
  echo "FAIL: LTS perf gates violated (need multi-cluster speedup >= 1.5x and single-cluster overhead <= 3%)" >&2
  exit 1
fi
echo "==> LTS perf gates passed (multi >= 1.5x, single within 3%)" >&2

echo "==> run sfg_io container bench" >&2
./build/bench/bench_io_container --json "${IOUT}" >&2

echo "==> wrote ${IOUT}:" >&2
cat "${IOUT}"

if [[ "$(jq -r '.gates_ok' "${IOUT}")" != "true" ]]; then
  echo "FAIL: sfg_io perf gates violated (need container write MB/s >= per-rank files and container file count == 1)" >&2
  exit 1
fi
echo "==> sfg_io perf gates passed (container >= per-rank MB/s, O(1) files)" >&2

echo "==> run sharded front-end load-test bench" >&2
./build/bench/bench_loadtest > "${LTOUT}"

echo "==> wrote ${LTOUT}:" >&2
cat "${LTOUT}"

if [[ "$(jq -r '.gates_ok' "${LTOUT}")" != "true" ]]; then
  echo "FAIL: load-test gates violated (need deterministic workload, zero lost jobs incl. shard death, executed == distinct keys, sharded hit rate >= baseline, sane p99)" >&2
  exit 1
fi
echo "==> load-test gates passed (deterministic, zero lost jobs, sharded hit rate >= baseline)" >&2

// Solid-fluid coupling tests (paper §1, §3): the non-iterative
// displacement-based coupling across fluid-solid interfaces (the scheme of
// Chaljub & Valette used by SPECFEM3D_GLOBE), exercised on layered boxes
// standing in for the CMB/ICB configuration.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/cartesian.hpp"
#include "mesh/quality.hpp"
#include "solver/simulation.hpp"

namespace sfg {
namespace {

MaterialSample solid_rock() {
  MaterialSample s;
  s.rho = 2500.0;
  s.vp = 3000.0;
  s.vs = 1800.0;
  s.q_mu = 100.0;
  return s;
}

MaterialSample water() {
  MaterialSample s;
  s.rho = 1000.0;
  s.vp = 1500.0;
  s.vs = 0.0;
  s.q_mu = 0.0;
  return s;
}

/// Box with a fluid layer for z in [z_lo, z_hi), solid elsewhere, layer
/// boundaries aligned with element boundaries.
struct LayeredSetup {
  GllBasis basis{4};
  HexMesh mesh;
  MaterialFields mat;
  double dt = 0.0;

  LayeredSetup(int nz, double lz, double z_lo, double z_hi) {
    CartesianBoxSpec spec;
    spec.nx = spec.ny = 2;
    spec.nz = nz;
    spec.lx = spec.ly = 600.0;
    spec.lz = lz;
    mesh = build_cartesian_box(spec, basis);
    mat = assign_materials(mesh, [&](double, double, double z) {
      return (z >= z_lo && z < z_hi) ? water() : solid_rock();
    });
    auto q = analyze_mesh_quality(mesh, mat.vp, mat.vs);
    dt = 0.4 * q.dt_stable;
  }
};

TEST(Coupling, FluidLayerIsDetected) {
  LayeredSetup setup(6, 1800.0, 600.0, 1200.0);
  SimulationConfig cfg;
  cfg.dt = setup.dt;
  Simulation sim(setup.mesh, setup.basis, setup.mat, cfg);
  EXPECT_EQ(sim.num_fluid_elements(), 2 * 2 * 2);
  EXPECT_EQ(sim.num_solid_elements(), 2 * 2 * 4);
}

TEST(Coupling, WaveTransmitsThroughFluidLayer) {
  // Source in the bottom solid; receiver in the top solid, separated by
  // the fluid layer. Only P energy converts and crosses; the receiver must
  // record a clear arrival no earlier than the two-leg P travel time.
  LayeredSetup setup(6, 1800.0, 600.0, 1200.0);
  SimulationConfig cfg;
  cfg.dt = setup.dt;
  Simulation sim(setup.mesh, setup.basis, setup.mat, cfg);

  PointSource src;
  src.x = 300.0;
  src.y = 300.0;
  src.z = 250.0;
  src.force = {0.0, 0.0, 1e9};
  const double f0 = 10.0, t0 = 0.12;
  src.stf = ricker_wavelet(f0, t0);
  sim.add_source(src);
  const int rec = sim.add_receiver(300.0, 300.0, 1500.0);

  // travel: solid 350 m at 3000 + fluid 600 m at 1500 + solid 300 m at 3000
  const double travel = 350.0 / 3000.0 + 600.0 / 1500.0 + 300.0 / 3000.0;
  const int nsteps = static_cast<int>((t0 + travel) / cfg.dt * 1.7);
  sim.run(nsteps);

  const Seismogram& seis = sim.seismogram(rec);
  double peak = 0.0;
  for (const auto& u : seis.displ) peak = std::max(peak, std::abs(u[2]));
  EXPECT_GT(peak, 0.0);

  double arrival = -1.0;
  for (std::size_t i = 0; i < seis.time.size(); ++i) {
    if (std::abs(seis.displ[i][2]) > 0.05 * peak) {
      arrival = seis.time[i];
      break;
    }
  }
  ASSERT_GT(arrival, 0.0);
  const double expected = t0 - 1.0 / f0 + travel;
  EXPECT_NEAR(arrival, expected, 0.4 * travel);
}

TEST(Coupling, NoTransmissionWithoutCoupledFluid) {
  // Sanity check of the previous test's logic: with the fluid replaced by
  // near-vacuum (soft solid), the late-time signal above must be much
  // weaker. Uses a very soft solid layer since true vacuum is not
  // representable.
  LayeredSetup coupled(6, 1800.0, 600.0, 1200.0);

  GllBasis basis(4);
  CartesianBoxSpec spec;
  spec.nx = spec.ny = 2;
  spec.nz = 6;
  spec.lx = spec.ly = 600.0;
  spec.lz = 1800.0;
  HexMesh mesh = build_cartesian_box(spec, basis);
  MaterialSample soft;
  soft.rho = 1.0;
  soft.vp = 50.0;
  soft.vs = 25.0;
  soft.q_mu = 100.0;
  MaterialFields soft_mat =
      assign_materials(mesh, [&](double, double, double z) {
        return (z >= 600.0 && z < 1200.0) ? soft : solid_rock();
      });

  auto run_peak = [&](const HexMesh& m, const GllBasis& b,
                      MaterialFields mats, double dt) {
    SimulationConfig cfg;
    cfg.dt = dt;
    Simulation sim(m, b, std::move(mats), cfg);
    PointSource src;
    src.x = 300.0;
    src.y = 300.0;
    src.z = 250.0;
    src.force = {0.0, 0.0, 1e9};
    src.stf = ricker_wavelet(10.0, 0.12);
    sim.add_source(src);
    const int rec = sim.add_receiver(300.0, 300.0, 1500.0);
    sim.run(static_cast<int>(0.8 / cfg.dt));
    double peak = 0.0;
    for (const auto& u : sim.seismogram(rec).displ)
      peak = std::max(peak, std::abs(u[2]));
    return peak;
  };

  const double through_fluid =
      run_peak(coupled.mesh, coupled.basis, coupled.mat, coupled.dt);
  auto qsoft = analyze_mesh_quality(mesh, soft_mat.vp, soft_mat.vs);
  const double through_soft =
      run_peak(mesh, basis, soft_mat, 0.4 * qsoft.dt_stable);
  EXPECT_GT(through_fluid, 20.0 * through_soft);
}

TEST(Coupling, TotalEnergyBoundedAfterSourceStops) {
  LayeredSetup setup(6, 1800.0, 600.0, 1200.0);
  SimulationConfig cfg;
  cfg.dt = setup.dt;
  Simulation sim(setup.mesh, setup.basis, setup.mat, cfg);
  PointSource src;
  src.x = 300.0;
  src.y = 300.0;
  src.z = 250.0;
  src.force = {0.0, 0.0, 1e9};
  src.stf = ricker_wavelet(10.0, 0.1);
  sim.add_source(src);

  // Run until the wavelet has fully acted, snapshot, then verify the
  // coupled system neither gains nor loses more than a small drift.
  sim.run(static_cast<int>(0.3 / cfg.dt));
  const double e_ref = sim.compute_energy().total();
  ASSERT_GT(e_ref, 0.0);
  for (int burst = 0; burst < 5; ++burst) {
    sim.run(60);
    const double e = sim.compute_energy().total();
    EXPECT_LT(e, 1.05 * e_ref) << "burst " << burst;
    EXPECT_GT(e, 0.5 * e_ref) << "burst " << burst;
  }
}

TEST(Coupling, FluidInteriorBoxHasClosedInterface) {
  // Fluid fully enclosed by solid: interface covers all 6 sides of the
  // fluid block; still stable.
  GllBasis basis(4);
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = 4;
  spec.lx = spec.ly = spec.lz = 1200.0;
  HexMesh mesh = build_cartesian_box(spec, basis);
  MaterialFields mat = assign_materials(mesh, [&](double x, double y,
                                                  double z) {
    const bool inside = x > 300 && x < 900 && y > 300 && y < 900 &&
                        z > 300 && z < 900;
    return inside ? water() : solid_rock();
  });
  auto q = analyze_mesh_quality(mesh, mat.vp, mat.vs);
  SimulationConfig cfg;
  cfg.dt = 0.4 * q.dt_stable;
  Simulation sim(mesh, basis, mat, cfg);
  EXPECT_EQ(sim.num_fluid_elements(), 8);

  PointSource src;
  src.x = 150.0;
  src.y = 600.0;
  src.z = 600.0;
  src.force = {1e9, 0.0, 0.0};
  src.stf = ricker_wavelet(10.0, 0.1);
  sim.add_source(src);
  sim.run(static_cast<int>(0.35 / cfg.dt));
  const double e_ref = sim.compute_energy().total();
  ASSERT_GT(e_ref, 0.0);
  sim.run(200);
  const double e = sim.compute_energy().total();
  EXPECT_LT(e, 1.1 * e_ref);
  EXPECT_TRUE(std::isfinite(e));
}

TEST(Coupling, PressureContinuityExcitesFluid) {
  // After the P wave reaches the fluid layer, fluid energy must be
  // nonzero (the chi field is being driven through the interface).
  LayeredSetup setup(6, 1800.0, 600.0, 1200.0);
  SimulationConfig cfg;
  cfg.dt = setup.dt;
  Simulation sim(setup.mesh, setup.basis, setup.mat, cfg);
  PointSource src;
  src.x = 300.0;
  src.y = 300.0;
  src.z = 250.0;
  src.force = {0.0, 0.0, 1e9};
  src.stf = ricker_wavelet(10.0, 0.12);
  sim.add_source(src);

  sim.run(static_cast<int>(0.45 / cfg.dt));
  const EnergySnapshot es = sim.compute_energy();
  EXPECT_GT(es.fluid, 0.0);
  EXPECT_GT(es.fluid, 1e-4 * es.total());
}

}  // namespace
}  // namespace sfg

// Unit tests for the mesh substrate: point matching, global numbering
// (ibool), Jacobian tables, Cartesian builder, and quality analysis
// (paper §2.2, §2.4, §3).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/constants.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/jacobian.hpp"
#include "mesh/numbering.hpp"
#include "mesh/point_matcher.hpp"
#include "mesh/quality.hpp"

namespace sfg {
namespace {

TEST(PointMatcher, IdentifiesCoincidentPoints) {
  PointMatcher m(1e-9);
  const int a = m.add(1.0, 2.0, 3.0);
  const int b = m.add(1.0 + 1e-12, 2.0, 3.0 - 1e-12);
  const int c = m.add(1.0 + 1e-6, 2.0, 3.0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(m.size(), 2);
}

TEST(PointMatcher, HandlesCellBoundaryStraddle) {
  // Two evaluations of the same point landing on opposite sides of a hash
  // cell boundary must still match (the 27-cell search).
  const double tol = 1e-3;
  PointMatcher m(tol);
  const double x = 5 * tol;  // exactly on a cell boundary
  const int a = m.add(x - 1e-9, 0.0, 0.0);
  const int b = m.add(x + 1e-9, 0.0, 0.0);
  EXPECT_EQ(a, b);
}

TEST(PointMatcher, NegativeCoordinates) {
  PointMatcher m(1e-6);
  const int a = m.add(-1.5, -2.5, -3.5);
  const int b = m.add(-1.5, -2.5, -3.5);
  const int c = m.add(1.5, 2.5, 3.5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PointMatcher, ManyDistinctPointsOnLattice) {
  PointMatcher m(1e-6);
  int n = 0;
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j)
      for (int k = 0; k < 10; ++k) {
        EXPECT_EQ(m.add(i * 0.1, j * 0.1, k * 0.1), n);
        ++n;
      }
  EXPECT_EQ(m.size(), 1000);
}

TEST(PointMatcher, RejectsNonPositiveTolerance) {
  EXPECT_THROW(PointMatcher(0.0), CheckError);
  EXPECT_THROW(PointMatcher(-1.0), CheckError);
}

// Expected global point count of an nx x ny x nz box of degree-N elements:
// product of (n*N + 1) per direction.
int box_nglob(int nx, int ny, int nz, int N) {
  return (nx * N + 1) * (ny * N + 1) * (nz * N + 1);
}

TEST(CartesianMesh, GlobalPointCountMatchesClosedForm) {
  for (int N : {4, 5, 6}) {
    GllBasis b(N);
    CartesianBoxSpec spec;
    spec.nx = 3;
    spec.ny = 2;
    spec.nz = 2;
    HexMesh mesh = build_cartesian_box(spec, b);
    EXPECT_EQ(mesh.nspec, 12);
    EXPECT_EQ(mesh.nglob, box_nglob(3, 2, 2, N)) << "N=" << N;
  }
}

TEST(CartesianMesh, SingleElementHas8SharedCornersWithNeighbor) {
  // Two elements along x share exactly (N+1)^2 face points.
  GllBasis b(4);
  CartesianBoxSpec spec;
  spec.nx = 2;
  HexMesh mesh = build_cartesian_box(spec, b);
  std::set<int> pts0, pts1;
  for (int p = 0; p < mesh.ngll3(); ++p) {
    pts0.insert(mesh.ibool[static_cast<std::size_t>(p)]);
    pts1.insert(mesh.ibool[mesh.local_offset(1) + static_cast<std::size_t>(p)]);
  }
  std::set<int> shared;
  for (int g : pts0)
    if (pts1.count(g)) shared.insert(g);
  EXPECT_EQ(shared.size(), 25u);  // (4+1)^2
}

TEST(CartesianMesh, JacobianConstantForAffineElements) {
  GllBasis b(4);
  CartesianBoxSpec spec;
  spec.nx = 2;
  spec.ny = 3;
  spec.nz = 1;
  spec.lx = 4.0;
  spec.ly = 6.0;
  spec.lz = 2.0;
  HexMesh mesh = build_cartesian_box(spec, b);
  // Element is 2 x 2 x 2 in physical units -> J maps [-1,1]^3 with
  // jacobian = (hx/2)(hy/2)(hz/2) = 1*1*1 = 1.
  for (float j : mesh.jacobian) EXPECT_NEAR(j, 1.0f, 1e-5f);
  // xix = dxi/dx = 2/hx = 1; cross terms zero.
  for (std::size_t p = 0; p < mesh.num_local_points(); ++p) {
    EXPECT_NEAR(mesh.xix[p], 1.0f, 1e-6f);
    EXPECT_NEAR(mesh.xiy[p], 0.0f, 1e-6f);
    EXPECT_NEAR(mesh.etaz[p], 0.0f, 1e-6f);
    EXPECT_NEAR(mesh.gammaz[p], 1.0f, 1e-6f);
  }
}

TEST(CartesianMesh, VolumeExactForBox) {
  GllBasis b(5);
  CartesianBoxSpec spec;
  spec.nx = 3;
  spec.ny = 2;
  spec.nz = 4;
  spec.lx = 1.5;
  spec.ly = 0.7;
  spec.lz = 2.2;
  HexMesh mesh = build_cartesian_box(spec, b);
  // Jacobians are stored in float32 (solver precision), so the quadrature
  // sum carries single-precision rounding.
  EXPECT_NEAR(mesh_volume(mesh, b), 1.5 * 0.7 * 2.2, 1e-5);
}

TEST(CartesianMesh, VolumePreservedUnderSmoothDeformation) {
  // A shear deformation (x += 0.2 z) has unit Jacobian determinant, so the
  // volume must be preserved; curved-element Jacobian machinery is what is
  // actually exercised here.
  GllBasis b(6);
  CartesianBoxSpec spec;
  spec.nx = 2;
  spec.ny = 2;
  spec.nz = 2;
  spec.deform = [](double& x, double&, double& z) { x += 0.2 * z; };
  HexMesh mesh = build_cartesian_box(spec, b);
  EXPECT_NEAR(mesh_volume(mesh, b), 1.0, 1e-10);
}

TEST(CartesianMesh, InvertedElementRejected) {
  GllBasis b(4);
  CartesianBoxSpec spec;
  // Mirror x: negative Jacobian everywhere.
  spec.deform = [](double& x, double&, double&) { x = -x; };
  EXPECT_THROW(build_cartesian_box(spec, b), CheckError);
}

TEST(Numbering, FirstTouchRenumberingIsAPermutation) {
  GllBasis b(4);
  CartesianBoxSpec spec;
  spec.nx = 3;
  spec.ny = 3;
  spec.nz = 3;
  HexMesh mesh = build_cartesian_box(spec, b);
  const int nglob = mesh.nglob;
  renumber_global_points_by_first_touch(mesh);
  EXPECT_EQ(mesh.nglob, nglob);
  std::set<int> ids(mesh.ibool.begin(), mesh.ibool.end());
  EXPECT_EQ(static_cast<int>(ids.size()), nglob);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), nglob - 1);
  // First element's first point must now be global id 0.
  EXPECT_EQ(mesh.ibool[0], 0);
}

TEST(Numbering, FirstTouchIsIdentityWhenNumberingIsAlreadyFirstTouch) {
  // build_global_numbering assigns ids in element-walk order, so an
  // immediate first-touch renumbering must be a no-op.
  GllBasis b(4);
  CartesianBoxSpec spec;
  spec.nx = 4;
  spec.ny = 4;
  spec.nz = 4;
  HexMesh mesh = build_cartesian_box(spec, b);
  const std::vector<int> before = mesh.ibool;
  renumber_global_points_by_first_touch(mesh);
  EXPECT_EQ(mesh.ibool, before);
}

TEST(Numbering, MinGllSpacingMatchesAnalyticValue) {
  // For degree 4 on [-1,1], the smallest node gap is between ±1 and
  // ±sqrt(3/7); scaled by element half-width.
  GllBasis b(4);
  CartesianBoxSpec spec;
  spec.nx = 2;
  spec.lx = 2.0;  // element width 1 -> half-width 0.5
  HexMesh mesh = build_cartesian_box(spec, b);
  const double gap = (1.0 - std::sqrt(3.0 / 7.0)) * 0.5;
  EXPECT_NEAR(min_gll_spacing(mesh), gap, 1e-12);
}

TEST(Quality, CourantTimeStepScalesWithMeshSize) {
  GllBasis b(4);
  CartesianBoxSpec coarse, fine;
  coarse.nx = coarse.ny = coarse.nz = 2;
  fine.nx = fine.ny = fine.nz = 4;
  HexMesh mc = build_cartesian_box(coarse, b);
  HexMesh mf = build_cartesian_box(fine, b);
  aligned_vector<float> vp_c(mc.num_local_points(), 1.0f);
  aligned_vector<float> vs_c(mc.num_local_points(), 0.5f);
  aligned_vector<float> vp_f(mf.num_local_points(), 1.0f);
  aligned_vector<float> vs_f(mf.num_local_points(), 0.5f);
  auto qc = analyze_mesh_quality(mc, vp_c, vs_c);
  auto qf = analyze_mesh_quality(mf, vp_f, vs_f);
  EXPECT_NEAR(qc.dt_stable / qf.dt_stable, 2.0, 1e-9);
  EXPECT_NEAR(qc.shortest_period / qf.shortest_period, 2.0, 1e-9);
}

TEST(Quality, FluidPointsUseVpForResolution) {
  GllBasis b(4);
  CartesianBoxSpec spec;
  HexMesh mesh = build_cartesian_box(spec, b);
  aligned_vector<float> vp(mesh.num_local_points(), 2.0f);
  aligned_vector<float> vs(mesh.num_local_points(), 0.0f);  // fluid
  auto q = analyze_mesh_quality(mesh, vp, vs);
  // slowest wave = vp = 2; shortest period = 5 * max_spacing / 2.
  EXPECT_NEAR(q.shortest_period, kPointsPerWavelength * q.max_gll_spacing / 2.0,
              1e-12);
}

TEST(GlobalCoordinates, RoundTripThroughIbool) {
  GllBasis b(4);
  CartesianBoxSpec spec;
  spec.nx = 2;
  spec.ny = 2;
  HexMesh mesh = build_cartesian_box(spec, b);
  const GlobalCoordinates g = global_coordinates(mesh);
  for (std::size_t p = 0; p < mesh.num_local_points(); ++p) {
    const auto gi = static_cast<std::size_t>(mesh.ibool[p]);
    EXPECT_NEAR(g.x[gi], mesh.xstore[p], 1e-12);
    EXPECT_NEAR(g.y[gi], mesh.ystore[p], 1e-12);
    EXPECT_NEAR(g.z[gi], mesh.zstore[p], 1e-12);
  }
}

}  // namespace
}  // namespace sfg

// Fault-injection layer tests (ISSUE 2): the smpi runtime must survive
// dropped/duplicated/delayed messages via bounded retry-with-timeout,
// terminate ALL ranks with SimulationAborted on a planned rank death (no
// deadlock), and inject the exact same faults run after run for a given
// FaultPlan seed.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mesh/cartesian.hpp"
#include "runtime/exchanger.hpp"
#include "runtime/fault.hpp"
#include "runtime/smpi.hpp"
#include "solver/simulation.hpp"

namespace sfg {
namespace {

using smpi::CommStats;
using smpi::Communicator;
using smpi::FaultPlan;
using smpi::RecvPolicy;
using smpi::SimulationAborted;

// Short timeouts keep the failure paths fast; correctness must not depend
// on the timeout length, only liveness does.
RecvPolicy fast_policy() {
  RecvPolicy p;
  p.timeout_seconds = 0.05;
  p.max_retries = 3;
  return p;
}

TEST(FaultInjection, DroppedMessageRecoveredByRetry) {
  FaultPlan plan;
  plan.drop_messages(0, 1, 7, 1.0, 1);  // drop the first 0->1 tag-7 message

  const auto stats = smpi::run_ranks_with_faults(
      2, plan, [&](Communicator& comm) {
        if (comm.rank() == 0) {
          const int payload = 42;
          comm.send_n(1, 7, &payload, 1);
        } else {
          int got = 0;
          const std::size_t n =
              comm.recv_n_retry(0, 7, &got, 1, fast_policy());
          EXPECT_EQ(n, 1u);
          EXPECT_EQ(got, 42);
        }
      });

  EXPECT_EQ(stats[0].messages_dropped, 1u);
  EXPECT_GE(stats[1].recv_retries, 1u);
  EXPECT_GE(stats[1].retransmits_requested, 1u);
  EXPECT_EQ(stats[1].recv_count, 1u);
}

TEST(FaultInjection, DuplicateDeliveredOnceAndCounted) {
  FaultPlan plan;
  plan.duplicate_messages(0, 1, 5);

  const auto stats = smpi::run_ranks_with_faults(
      2, plan, [&](Communicator& comm) {
        if (comm.rank() == 0) {
          for (int v = 0; v < 4; ++v) comm.send_n(1, 5, &v, 1);
        } else {
          // In-order, exactly-once delivery despite every message being
          // enqueued twice.
          for (int v = 0; v < 4; ++v) {
            int got = -1;
            comm.recv_n(0, 5, &got, 1);
            EXPECT_EQ(got, v);
          }
        }
      });

  EXPECT_EQ(stats[0].messages_duplicated, 4u);
  EXPECT_EQ(stats[1].duplicates_discarded, 4u);
  EXPECT_EQ(stats[1].recv_count, 4u);
}

TEST(FaultInjection, DelayedMessageArrivesInOrder) {
  FaultPlan plan;
  plan.delay_messages(0, 1, 3, /*delay_seconds=*/0.1, 1.0, 1);

  const auto stats = smpi::run_ranks_with_faults(
      2, plan, [&](Communicator& comm) {
        if (comm.rank() == 0) {
          for (int v = 0; v < 3; ++v) comm.send_n(1, 3, &v, 1);
        } else {
          // The first message is held back 100 ms; later messages must NOT
          // overtake it (channel-sequence ordering).
          for (int v = 0; v < 3; ++v) {
            int got = -1;
            comm.recv_n(0, 3, &got, 1);
            EXPECT_EQ(got, v);
          }
        }
      });
  EXPECT_EQ(stats[0].messages_delayed, 1u);
}

TEST(FaultInjection, RankDeathAbortsAllRanksWithoutDeadlock) {
  FaultPlan plan;
  plan.kill_rank(1, 0);  // rank 1 dies at its first notify_step

  // Every OTHER rank blocks in a receive that will never be satisfied;
  // the abort must wake them all with SimulationAborted.
  EXPECT_THROW(
      smpi::run_ranks_with_faults(
          4, plan,
          [&](Communicator& comm) {
            if (comm.rank() == 1) comm.notify_step(0);
            int dummy = 0;
            comm.recv_n(1, 99, &dummy, 1);  // would deadlock without abort
            FAIL() << "recv returned after world abort";
          }),
      SimulationAborted);
}

TEST(FaultInjection, CollectiveTimeoutAbortsWorld) {
  FaultPlan plan;
  plan.timeout_collective(2, 1, 5.0);  // rank 2's first collective

  try {
    smpi::run_ranks_with_faults(3, plan, [&](Communicator& comm) {
      double v = comm.rank();
      comm.allreduce_one(v, smpi::ReduceOp::Sum);
    });
    FAIL() << "expected SimulationAborted";
  } catch (const SimulationAborted& e) {
    EXPECT_NE(std::string(e.what()).find("collective"), std::string::npos);
  }
}

TEST(FaultInjection, ExhaustedRetriesAbortInsteadOfHanging) {
  FaultPlan plan;
  plan.drop_messages(0, 1, 11);  // drop every 0->1 tag-11 message... but a
  // retransmit pulls them back from limbo, so exhaust retries by never
  // sending at all.
  EXPECT_THROW(
      smpi::run_ranks_with_faults(
          2, plan,
          [&](Communicator& comm) {
            if (comm.rank() == 1) {
              int got = 0;
              RecvPolicy p;
              p.timeout_seconds = 0.02;
              p.max_retries = 1;
              comm.recv_n_retry(0, 11, &got, 1, p);
            } else {
              // rank 0 sends nothing and just waits for the abort
              int dummy = 0;
              comm.recv_n(1, 12, &dummy, 1);
            }
          }),
      SimulationAborted);
}

TEST(FaultInjection, SeededPlanIsReproducible) {
  // Probabilistic drops decided by a pure hash of the message identity:
  // two runs with equal seeds must fault the same messages (same counts),
  // and a different seed must give a different pattern.
  auto run_with_seed = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.drop_messages(smpi::kAnyRank, smpi::kAnyRank, 21, 0.4);
    std::array<std::vector<int>, 2> received;
    const auto stats = smpi::run_ranks_with_faults(
        2, plan, [&](Communicator& comm) {
          const int peer = 1 - comm.rank();
          for (int v = 0; v < 32; ++v) comm.send_n(peer, 21, &v, 1);
          std::vector<int> got(32);
          for (int v = 0; v < 32; ++v)
            comm.recv_n_retry(peer, 21, &got[static_cast<std::size_t>(v)],
                              1, fast_policy());
          received[static_cast<std::size_t>(comm.rank())] = got;
        });
    // Payloads always arrive intact and in order...
    for (const auto& got : received)
      for (int v = 0; v < 32; ++v)
        EXPECT_EQ(got[static_cast<std::size_t>(v)], v);
    // ...and the fault pattern is the observable we compare across runs.
    return std::array<std::uint64_t, 2>{stats[0].messages_dropped,
                                        stats[1].messages_dropped};
  };

  const auto a = run_with_seed(123);
  const auto b = run_with_seed(123);
  EXPECT_EQ(a, b);
  EXPECT_GT(a[0] + a[1], 0u) << "plan injected nothing; test is vacuous";

  // With 64 messages at p=0.4 a different seed virtually never produces
  // the identical per-rank drop counts twice; accept rare equality of
  // totals but require the runs to have actually injected faults.
  const auto c = run_with_seed(987654321);
  EXPECT_GT(c[0] + c[1], 0u);
}

TEST(FaultInjection, WildcardRulesNeverTouchInternalCollectives) {
  FaultPlan plan;
  plan.drop_messages(smpi::kAnyRank, smpi::kAnyRank, smpi::kAnyTag, 1.0);

  // Allreduce/gather use internal negative tags with no retry path; a
  // wildcard plan must leave them alone (drops only user tags >= 0).
  const auto stats = smpi::run_ranks_with_faults(
      3, plan, [&](Communicator& comm) {
        double v = 1.0;
        comm.allreduce(&v, 1, smpi::ReduceOp::Sum);
        EXPECT_DOUBLE_EQ(v, 3.0);
        comm.barrier();
      });
  for (const auto& s : stats) EXPECT_EQ(s.messages_dropped, 0u);
}

TEST(FaultInjection, FaultEventsAppearInTrace) {
  FaultPlan plan;
  plan.drop_messages(0, 1, 7, 1.0, 1);

  std::vector<std::vector<smpi::TraceEvent>> traces;
  smpi::run_ranks_with_faults(
      2, plan,
      [&](Communicator& comm) {
        if (comm.rank() == 0) {
          const int payload = 1;
          comm.send_n(1, 7, &payload, 1);
        } else {
          int got = 0;
          comm.recv_n_retry(0, 7, &got, 1, fast_policy());
        }
      },
      /*enable_trace=*/true, &traces);

  std::size_t fault_events = 0;
  for (const auto& ev : traces[1])
    if (ev.kind == smpi::TraceEvent::Kind::Fault) ++fault_events;
  EXPECT_GE(fault_events, 1u);
}

// ---- solver-level: halo drops during a real parallel run ----

MaterialSample rock() {
  MaterialSample s;
  s.rho = 2500.0;
  s.vp = 3000.0;
  s.vs = 1800.0;
  s.q_mu = 80.0;
  return s;
}

TEST(FaultInjection, SolverCompletesWithHaloDropsViaRetries) {
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = 4;
  spec.lx = spec.ly = spec.lz = 1000.0;

  // Drop a bounded number of halo (assemble-tag) messages in each
  // direction; the exchanger's retry path must pull every one back.
  FaultPlan plan;
  plan.drop_messages(smpi::kAnyRank, smpi::kAnyRank,
                     smpi::Exchanger::kAssembleTag, 0.25, 40);

  const int nsteps = 20;
  const double dt = 1.5e-3;
  std::array<float, 3> faulty_tail{};

  const auto stats = smpi::run_ranks_with_faults(
      2, plan, [&](Communicator& comm) {
        GllBasis basis(4);
        const int r = comm.rank();
        CartesianSlice slice =
            build_cartesian_slice(spec, basis, 2, 1, 1, r, 0, 0);
        std::vector<smpi::PointCandidate> cands;
        for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
          cands.push_back({slice.boundary_keys[n], slice.boundary_points[n]});
        smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
        ex.set_recv_policy(fast_policy());

        MaterialFields mat = assign_materials(
            slice.mesh, [](double, double, double) { return rock(); });
        SimulationConfig cfg;
        cfg.dt = dt;
        Simulation sim(slice.mesh, basis, mat, cfg, &comm, &ex);
        if (r == 0) {
          PointSource src;
          src.x = 320.0;
          src.y = 480.0;
          src.z = 510.0;
          src.force = {1e9, 5e8, 0.0};
          src.stf = ricker_wavelet(14.0, 0.09);
          sim.add_source(src);
        }
        sim.run(nsteps);
        if (r == 1) {
          const auto& d = sim.displ();
          faulty_tail = {d[0], d[1], d[2]};
        }
      });

  std::uint64_t dropped = 0, retries = 0, retransmits = 0;
  for (const auto& s : stats) {
    dropped += s.messages_dropped;
    retries += s.recv_retries;
    retransmits += s.retransmits_requested;
  }
  EXPECT_GT(dropped, 0u) << "plan never fired; lower the probability guard";
  // One retransmit can recover several limbo messages on a channel, so
  // retries <= drops is normal; recovery just must have happened.
  EXPECT_GT(retries, 0u);
  EXPECT_GT(retransmits, 0u);

  // Faults are transport-level only: the recovered run must match a
  // fault-free run bit for bit.
  std::array<float, 3> clean_tail{};
  smpi::run_ranks(2, [&](Communicator& comm) {
    GllBasis basis(4);
    const int r = comm.rank();
    CartesianSlice slice =
        build_cartesian_slice(spec, basis, 2, 1, 1, r, 0, 0);
    std::vector<smpi::PointCandidate> cands;
    for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
      cands.push_back({slice.boundary_keys[n], slice.boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    MaterialFields mat = assign_materials(
        slice.mesh, [](double, double, double) { return rock(); });
    SimulationConfig cfg;
    cfg.dt = dt;
    Simulation sim(slice.mesh, basis, mat, cfg, &comm, &ex);
    if (r == 0) {
      PointSource src;
      src.x = 320.0;
      src.y = 480.0;
      src.z = 510.0;
      src.force = {1e9, 5e8, 0.0};
      src.stf = ricker_wavelet(14.0, 0.09);
      sim.add_source(src);
    }
    sim.run(nsteps);
    if (r == 1) {
      const auto& d = sim.displ();
      clean_tail = {d[0], d[1], d[2]};
    }
  });
  EXPECT_EQ(faulty_tail, clean_tail);
}

TEST(FaultInjection, SolverRankDeathMidRunAbortsEveryRank) {
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = 4;
  spec.lx = spec.ly = spec.lz = 1000.0;

  FaultPlan plan;
  plan.kill_rank(1, 5);  // dies entering step 5

  std::array<bool, 2> aborted{false, false};
  EXPECT_THROW(
      smpi::run_ranks_with_faults(
          2, plan,
          [&](Communicator& comm) {
            GllBasis basis(4);
            const int r = comm.rank();
            CartesianSlice slice =
                build_cartesian_slice(spec, basis, 2, 1, 1, r, 0, 0);
            std::vector<smpi::PointCandidate> cands;
            for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
              cands.push_back(
                  {slice.boundary_keys[n], slice.boundary_points[n]});
            smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
            ex.set_recv_policy(fast_policy());
            MaterialFields mat = assign_materials(
                slice.mesh, [](double, double, double) { return rock(); });
            SimulationConfig cfg;
            cfg.dt = 1.5e-3;
            Simulation sim(slice.mesh, basis, mat, cfg, &comm, &ex);
            try {
              sim.run(50);
            } catch (const SimulationAborted&) {
              aborted[static_cast<std::size_t>(r)] = true;
              throw;
            }
            FAIL() << "rank " << r << " ran to completion past a death";
          }),
      SimulationAborted);
  EXPECT_TRUE(aborted[0]);
  EXPECT_TRUE(aborted[1]);
}

}  // namespace
}  // namespace sfg

// Tests for the legacy mesher->solver file handoff (paper §4.1): exactly
// 51 files per rank, lossless round trip, disk accounting, and end-to-end
// equivalence of file-mode vs merged-mode simulations.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "common/constants.hpp"
#include "io/blob_store.hpp"
#include "io/mesh_files.hpp"
#include "io/seismogram_io.hpp"
#include "mesh/quality.hpp"
#include "solver/simulation.hpp"

namespace sfg {
namespace {

namespace fs = std::filesystem;

struct TmpDir {
  std::string path;
  TmpDir() {
    path = (fs::temp_directory_path() /
            ("sfg_io_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    fs::create_directories(path);
  }
  ~TmpDir() { fs::remove_all(path); }
  static int counter;
};
int TmpDir::counter = 0;

GlobeSlice small_prem_slice() {
  static PremModel prem;
  GlobeMeshSpec spec;
  spec.nex_xi = 4;
  spec.nchunks = 6;
  spec.model = &prem;
  GllBasis basis(4);
  return build_globe_slice(spec, basis, 0);
}

TEST(MeshFiles, WritesExactly51FilesPerRank) {
  TmpDir tmp;
  GlobeSlice slice = small_prem_slice();
  const std::uint64_t bytes = write_legacy_mesh_files(tmp.path, 0, slice);
  EXPECT_EQ(directory_file_count(tmp.path), kLegacyFilesPerRank);
  EXPECT_EQ(directory_bytes(tmp.path), bytes);
  EXPECT_GT(bytes, 100000u);
}

TEST(MeshFiles, RoundTripPreservesEverything) {
  TmpDir tmp;
  GlobeSlice slice = small_prem_slice();
  write_legacy_mesh_files(tmp.path, 3, slice);
  GlobeSlice back = read_legacy_mesh_files(tmp.path, 3);

  EXPECT_EQ(back.mesh.ngll, slice.mesh.ngll);
  EXPECT_EQ(back.mesh.nspec, slice.mesh.nspec);
  EXPECT_EQ(back.mesh.nglob, slice.mesh.nglob);
  EXPECT_EQ(back.mesh.xstore, slice.mesh.xstore);
  EXPECT_EQ(back.mesh.jacobian, slice.mesh.jacobian);
  EXPECT_EQ(back.mesh.ibool, slice.mesh.ibool);
  EXPECT_EQ(back.materials.rho, slice.materials.rho);
  EXPECT_EQ(back.materials.muv, slice.materials.muv);
  EXPECT_EQ(back.materials.element_is_fluid,
            slice.materials.element_is_fluid);
  ASSERT_EQ(back.layers.size(), slice.layers.size());
  for (std::size_t i = 0; i < back.layers.size(); ++i) {
    EXPECT_EQ(back.layers[i].r_bot, slice.layers[i].r_bot);
    EXPECT_EQ(back.layers[i].n_elem, slice.layers[i].n_elem);
    EXPECT_EQ(back.layers[i].fluid, slice.layers[i].fluid);
  }
  EXPECT_EQ(back.boundary_keys, slice.boundary_keys);
  EXPECT_EQ(back.boundary_points, slice.boundary_points);
  ASSERT_EQ(back.absorbing_faces.size(), slice.absorbing_faces.size());
}

TEST(MeshFiles, MultipleRanksCoexist) {
  TmpDir tmp;
  GlobeSlice slice = small_prem_slice();
  write_legacy_mesh_files(tmp.path, 0, slice);
  write_legacy_mesh_files(tmp.path, 1, slice);
  EXPECT_EQ(directory_file_count(tmp.path), 2 * kLegacyFilesPerRank);
  remove_legacy_mesh_files(tmp.path, 0);
  EXPECT_EQ(directory_file_count(tmp.path), kLegacyFilesPerRank);
  // rank 1 still readable
  GlobeSlice back = read_legacy_mesh_files(tmp.path, 1);
  EXPECT_EQ(back.mesh.nspec, slice.mesh.nspec);
}

TEST(MeshFiles, ReadMissingRankFails) {
  TmpDir tmp;
  EXPECT_THROW(read_legacy_mesh_files(tmp.path, 7), CheckError);
}

TEST(MeshFiles, FileModeSimulationMatchesMergedMode) {
  // The §4.1 equivalence: running the solver on a mesh read back from the
  // legacy files gives bit-identical seismograms to the merged in-memory
  // path (the arrays ARE the same bits).
  TmpDir tmp;
  GlobeSlice merged = small_prem_slice();
  write_legacy_mesh_files(tmp.path, 0, merged);
  GlobeSlice filed = read_legacy_mesh_files(tmp.path, 0);

  auto run = [](GlobeSlice& slice) {
    GllBasis basis(4);
    auto q = analyze_mesh_quality(slice.mesh, slice.materials.vp,
                                  slice.materials.vs);
    SimulationConfig cfg;
    cfg.dt = 0.8 * q.dt_stable;
    Simulation sim(slice.mesh, basis, slice.materials, cfg);
    PointSource src;
    src.x = 0.6 * kEarthRadiusM;  // inside chunk 0's slice
    src.y = 0.0;
    src.z = 0.0;
    // keep the source in the solid: radius 0.6 R is in the mantle only if
    // > CMB; 0.6 * 6371 km = 3823 km > 3480 km: OK.
    src.force = {1e15, 0.0, 0.0};
    src.stf = ricker_wavelet(1.0 / 50.0, 100.0);
    sim.add_source(src);
    const int rec =
        sim.add_receiver(0.97 * kEarthRadiusM, 1e5, 1e5, true);
    sim.run(60);
    return sim.seismogram(rec);
  };

  const Seismogram a = run(merged);
  const Seismogram b = run(filed);
  ASSERT_EQ(a.displ.size(), b.displ.size());
  for (std::size_t i = 0; i < a.displ.size(); ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_EQ(a.displ[i][c], b.displ[i][c]);  // bit-identical
}

TEST(SeismogramIo, RoundTrip) {
  TmpDir tmp;
  Seismogram seis;
  for (int i = 0; i < 100; ++i) {
    seis.time.push_back(0.01 * i);
    seis.displ.push_back({std::sin(0.3 * i), std::cos(0.2 * i), 0.001 * i});
  }
  const std::string prefix = tmp.path + "/STAT00";
  const std::uint64_t bytes = write_seismogram(prefix, seis);
  EXPECT_GT(bytes, 1000u);

  for (int c = 0; c < 3; ++c) {
    const char* names[3] = {".X.semd", ".Y.semd", ".Z.semd"};
    Seismogram back = read_seismogram_component(
        prefix + names[static_cast<std::size_t>(c)], c);
    ASSERT_EQ(back.time.size(), seis.time.size());
    for (std::size_t i = 0; i < back.time.size(); ++i) {
      EXPECT_NEAR(back.time[i], seis.time[i], 1e-8);
      EXPECT_NEAR(back.displ[i][static_cast<std::size_t>(c)],
                  seis.displ[i][static_cast<std::size_t>(c)], 1e-8);  // 10-digit ASCII
    }
  }
}

TEST(SeismogramIo, WriteToUnwritablePrefixFails) {
  TmpDir tmp;
  Seismogram seis;
  seis.time = {0.0, 0.1};
  seis.displ = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  // Directory component of the prefix does not exist: fopen fails.
  EXPECT_THROW(write_seismogram(tmp.path + "/missing_dir/STA", seis),
               CheckError);
  // A regular file in the directory position makes the prefix unwritable.
  write_seismogram(tmp.path + "/STA", seis);
  EXPECT_THROW(
      write_seismogram(tmp.path + "/STA.X.semd/nested", seis), CheckError);
}

TEST(SeismogramIo, WriteRejectsMismatchedSampleCounts) {
  TmpDir tmp;
  Seismogram seis;
  seis.time = {0.0, 0.1, 0.2};
  seis.displ = {{1.0, 2.0, 3.0}};  // fewer displ samples than times
  EXPECT_THROW(write_seismogram(tmp.path + "/BAD", seis), CheckError);
}

TEST(SeismogramIo, ReadDetectsTruncatedFile) {
  TmpDir tmp;
  const std::string path = tmp.path + "/trunc.X.semd";
  {
    std::ofstream os(path);
    os << "0.000000000e+00 1.000000000e-03\n";
    os << "1.000000000e-02\n";  // time with no displacement value
  }
  EXPECT_THROW(read_seismogram_component(path, 0), CheckError);
}

TEST(SeismogramIo, ReadDetectsGarbageFile) {
  TmpDir tmp;
  const std::string path = tmp.path + "/garbage.X.semd";
  {
    std::ofstream os(path);
    os << "this is not a seismogram\n";
  }
  EXPECT_THROW(read_seismogram_component(path, 0), CheckError);
}

TEST(SeismogramIo, ReadDetectsTrailingJunk) {
  TmpDir tmp;
  const std::string path = tmp.path + "/junk.Y.semd";
  {
    std::ofstream os(path);
    os << "0.000000000e+00 1.000000000e-03\n";
    os << "1.000000000e-02 2.000000000e-03\n";
    os << "# appended comment\n";  // valid samples, then non-numeric bytes
  }
  EXPECT_THROW(read_seismogram_component(path, 1), CheckError);
}

TEST(SeismogramIo, ReadRejectsEmptyFile) {
  TmpDir tmp;
  const std::string path = tmp.path + "/empty.Z.semd";
  { std::ofstream os(path); }
  EXPECT_THROW(read_seismogram_component(path, 2), CheckError);
  EXPECT_THROW(read_seismogram_component(tmp.path + "/absent.semd", 0),
               CheckError);
  EXPECT_THROW(read_seismogram_component(path, 3), CheckError);  // bad comp
}

TEST(DirectoryAccounting, EmptyAndMissingDirs) {
  TmpDir tmp;
  EXPECT_EQ(directory_bytes(tmp.path), 0u);
  EXPECT_EQ(directory_file_count(tmp.path), 0);
  EXPECT_EQ(directory_bytes(tmp.path + "/does_not_exist"), 0u);
}

// Regression (ISSUE 9 ride-along): globe runs route .semd output through
// the default container sink — a whole station network leaves O(1)
// filesystem objects in the run directory, not 3 loose files per station.
TEST(SeismogramSink, WholeNetworkIsOneRunDirectoryFile) {
  TmpDir tmp;
  Seismogram seis;
  for (int i = 0; i < 50; ++i) {
    seis.time.push_back(0.01 * i);
    seis.displ.push_back({std::sin(0.3 * i), std::cos(0.2 * i), 0.001 * i});
  }
  const char* network[] = {"LPAZ", "BDFB", "ANMO", "KONO", "MAJO", "SNZO"};
  {
    const std::unique_ptr<io::BlobStore> sink =
        open_seismogram_sink(tmp.path);
    // Concurrent rank writers, like the globe example's 6 threads.
    std::vector<std::thread> ranks;
    for (const char* code : network)
      ranks.emplace_back(
          [&sink, &seis, code] { write_seismogram(*sink, code, seis); });
    for (std::thread& t : ranks) t.join();
    EXPECT_EQ(sink->file_count(), 1);
    EXPECT_EQ(sink->list().size(), 3u * std::size(network));
  }

  // The run directory holds exactly ONE object: seismograms.sfgc.
  EXPECT_EQ(directory_file_count(tmp.path), 1);
  ASSERT_TRUE(fs::exists(tmp.path + "/seismograms.sfgc"));

  // Reopening the sink serves every component back, bit-for-bit the same
  // text the path writer would have produced.
  const std::unique_ptr<io::BlobStore> reopened =
      open_seismogram_sink(tmp.path);
  for (int c = 0; c < 3; ++c) {
    const char* comp[3] = {"X", "Y", "Z"};
    const Seismogram back = read_seismogram_component(
        *reopened,
        std::string("MAJO.") + comp[static_cast<std::size_t>(c)] + ".semd",
        c);
    ASSERT_EQ(back.time.size(), seis.time.size());
    for (std::size_t i = 0; i < back.time.size(); ++i)
      EXPECT_NEAR(back.displ[i][static_cast<std::size_t>(c)],
                  seis.displ[i][static_cast<std::size_t>(c)], 1e-8);
  }
}

}  // namespace
}  // namespace sfg

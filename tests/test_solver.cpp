// Serial physics validation of the SEM solver: energy conservation,
// stability (Courant), wave speeds, attenuation decay, loop-order
// invariance (§4.2), kernel-variant equivalence (§4.3), sources and
// receivers (§4.4), absorbing boundaries and rotation.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/quality.hpp"
#include "solver/simulation.hpp"

namespace sfg {
namespace {

MaterialSample rock() {
  MaterialSample s;
  s.rho = 2500.0;
  s.vp = 3000.0;
  s.vs = 1800.0;
  s.q_mu = 60.0;
  return s;
}

/// A small homogeneous solid box with a smooth initial displacement bump.
struct BoxSetup {
  GllBasis basis{4};
  HexMesh mesh;
  MaterialFields mat;
  double dt_cfl = 0.0;

  explicit BoxSetup(int n = 4, double l = 1000.0) {
    CartesianBoxSpec spec;
    spec.nx = spec.ny = spec.nz = n;
    spec.lx = spec.ly = spec.lz = l;
    mesh = build_cartesian_box(spec, basis);
    const MaterialSample s = rock();
    mat = assign_materials(mesh,
                           [&](double, double, double) { return s; });
    auto q = analyze_mesh_quality(mesh, mat.vp, mat.vs);
    dt_cfl = q.dt_stable;
  }
};

std::array<double, 3> gaussian_bump(double x, double y, double z) {
  const double cx = 500.0, cy = 500.0, cz = 500.0, w = 150.0;
  const double r2 = ((x - cx) * (x - cx) + (y - cy) * (y - cy) +
                     (z - cz) * (z - cz)) /
                    (w * w);
  return {0.01 * std::exp(-r2), 0.0, 0.0};
}

TEST(Solver, NoSourceNoMotion) {
  BoxSetup box;
  SimulationConfig cfg;
  cfg.dt = box.dt_cfl;
  Simulation sim(box.mesh, box.basis, box.mat, cfg);
  sim.run(10);
  for (float v : sim.displ()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(sim.compute_energy().total(), 0.0);
}

TEST(Solver, EnergyConservedWithFreeSurfaces) {
  BoxSetup box;
  SimulationConfig cfg;
  cfg.dt = 0.5 * box.dt_cfl;
  Simulation sim(box.mesh, box.basis, box.mat, cfg);
  sim.set_initial_condition(gaussian_bump);

  const double e0 = sim.compute_energy().total();
  ASSERT_GT(e0, 0.0);
  double max_dev = 0.0;
  for (int burst = 0; burst < 10; ++burst) {
    sim.run(20);
    const double e = sim.compute_energy().total();
    max_dev = std::max(max_dev, std::abs(e - e0) / e0);
  }
  // Explicit Newmark at half the Courant limit conserves energy to a
  // fraction of a percent over hundreds of steps.
  EXPECT_LT(max_dev, 5e-3);
}

TEST(Solver, EnergyPartitionsBetweenKineticAndPotential) {
  BoxSetup box;
  SimulationConfig cfg;
  cfg.dt = 0.5 * box.dt_cfl;
  Simulation sim(box.mesh, box.basis, box.mat, cfg);
  sim.set_initial_condition(gaussian_bump);
  const EnergySnapshot initial = sim.compute_energy();
  EXPECT_GT(initial.potential, 0.0);
  EXPECT_EQ(initial.kinetic, 0.0);  // released from rest
  sim.run(50);
  const EnergySnapshot later = sim.compute_energy();
  EXPECT_GT(later.kinetic, 0.0);
}

TEST(Solver, UnstableAboveCourantLimit) {
  BoxSetup box;
  SimulationConfig cfg;
  cfg.dt = 4.0 * box.dt_cfl;  // far beyond the stability bound
  Simulation sim(box.mesh, box.basis, box.mat, cfg);
  sim.set_initial_condition(gaussian_bump);
  const double e0 = sim.compute_energy().total();
  sim.run(100);
  const double e1 = sim.compute_energy().total();
  EXPECT_TRUE(e1 > 1e3 * e0 || std::isnan(e1) || std::isinf(e1));
}

TEST(Solver, PWaveArrivalTimeMatchesVelocity) {
  // Elongated bar; vertical point force at one end; P arrival at a
  // receiver 1500 m away along z must come at ~ d / vp.
  GllBasis basis(4);
  CartesianBoxSpec spec;
  spec.nx = spec.ny = 2;
  spec.nz = 10;
  spec.lx = spec.ly = 400.0;
  spec.lz = 2000.0;
  HexMesh mesh = build_cartesian_box(spec, basis);
  const MaterialSample s = rock();
  MaterialFields mat =
      assign_materials(mesh, [&](double, double, double) { return s; });
  auto q = analyze_mesh_quality(mesh, mat.vp, mat.vs);

  SimulationConfig cfg;
  cfg.dt = 0.5 * q.dt_stable;
  Simulation sim(mesh, basis, mat, cfg);

  PointSource src;
  src.x = 200.0;
  src.y = 200.0;
  src.z = 100.0;
  src.force = {0.0, 0.0, 1e9};
  const double f0 = 12.0, t0 = 0.1;
  src.stf = ricker_wavelet(f0, t0);
  sim.add_source(src);
  const double zrec = 1600.0;
  const int rec = sim.add_receiver(200.0, 200.0, zrec);

  const double travel = (zrec - src.z) / s.vp;
  const int nsteps = static_cast<int>((t0 + travel) / cfg.dt * 1.6);
  sim.run(nsteps);

  const Seismogram& seis = sim.seismogram(rec);
  double peak = 0.0;
  for (const auto& u : seis.displ)
    peak = std::max(peak, std::abs(u[2]));
  ASSERT_GT(peak, 0.0);
  double arrival = -1.0;
  for (std::size_t i = 0; i < seis.time.size(); ++i) {
    if (std::abs(seis.displ[i][2]) > 0.05 * peak) {
      arrival = seis.time[i];
      break;
    }
  }
  ASSERT_GT(arrival, 0.0);
  // Expected onset: source delay (~t0 - half period) + travel time.
  const double expected = t0 - 1.0 / f0 + travel;
  EXPECT_NEAR(arrival, expected, 0.35 * travel);
}

TEST(Solver, AttenuationDissipatesEnergyMonotonically) {
  BoxSetup box;
  SlsSeries sls = fit_constant_q(60.0, 1.0, 20.0, 3);
  prepare_attenuation(box.mat, sls);

  SimulationConfig cfg;
  cfg.dt = 0.5 * box.dt_cfl;
  cfg.attenuation = true;
  cfg.sls = sls;
  Simulation sim(box.mesh, box.basis, box.mat, cfg);
  sim.set_initial_condition(gaussian_bump);

  double prev = sim.compute_energy().total();
  const double e0 = prev;
  for (int burst = 0; burst < 8; ++burst) {
    sim.run(50);
    const double e = sim.compute_energy().total();
    EXPECT_LT(e, prev * 1.001) << "burst " << burst;
    prev = e;
  }
  EXPECT_LT(prev, 0.8 * e0);  // visible dissipation
}

TEST(Solver, LowerQDecaysFaster) {
  auto energy_after = [](double q_value) {
    BoxSetup box;
    for (auto& q : box.mat.q_mu) q = static_cast<float>(q_value);
    SlsSeries sls = fit_constant_q(q_value, 1.0, 20.0, 3);
    prepare_attenuation(box.mat, sls);
    SimulationConfig cfg;
    cfg.dt = 0.5 * box.dt_cfl;
    cfg.attenuation = true;
    cfg.sls = sls;
    Simulation sim(box.mesh, box.basis, box.mat, cfg);
    sim.set_initial_condition(gaussian_bump);
    const double e0 = sim.compute_energy().total();
    sim.run(400);
    return sim.compute_energy().total() / e0;
  };
  const double frac_q20 = energy_after(20.0);
  const double frac_q200 = energy_after(200.0);
  EXPECT_LT(frac_q20, frac_q200);
  EXPECT_LT(frac_q20, 0.5);
  EXPECT_GT(frac_q200, 0.6);
}

TEST(Solver, LoopOrderPermutationLeavesSeismogramsUnchanged) {
  // Paper §4.2: "the same mesh computed with different loop orders on the
  // elements give two sets of synthetic seismograms that are
  // indistinguishable when plotted superimposed."
  auto run_with_order = [](bool shuffle) {
    BoxSetup box;
    SimulationConfig cfg;
    cfg.dt = 0.5 * box.dt_cfl;
    Simulation sim(box.mesh, box.basis, box.mat, cfg);
    if (shuffle) {
      std::vector<int> order(static_cast<std::size_t>(box.mesh.nspec));
      std::iota(order.begin(), order.end(), 0);
      SplitMix64 rng(4321);
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1],
                  order[static_cast<std::size_t>(rng.next_below(i))]);
      sim.set_solid_element_order(order);
    }
    PointSource src;
    src.x = 300.0;
    src.y = 500.0;
    src.z = 500.0;
    src.force = {1e9, 0.0, 0.0};
    src.stf = ricker_wavelet(15.0, 0.08);
    sim.add_source(src);
    const int rec = sim.add_receiver(700.0, 500.0, 500.0);
    sim.run(300);
    return sim.seismogram(rec);
  };
  const Seismogram a = run_with_order(false);
  const Seismogram b = run_with_order(true);
  ASSERT_EQ(a.displ.size(), b.displ.size());
  double peak = 0.0;
  for (const auto& u : a.displ) peak = std::max(peak, std::abs(u[0]));
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < a.displ.size(); ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(a.displ[i][c], b.displ[i][c], 2e-5 * peak)
          << "i=" << i << " c=" << c;
}

TEST(Solver, KernelVariantsProduceSameSeismograms) {
  auto run_with = [](KernelVariant v) {
    BoxSetup box;
    SimulationConfig cfg;
    cfg.dt = 0.5 * box.dt_cfl;
    cfg.kernel = v;
    Simulation sim(box.mesh, box.basis, box.mat, cfg);
    PointSource src;
    src.x = 300.0;
    src.y = 500.0;
    src.z = 500.0;
    src.force = {0.0, 1e9, 0.0};
    src.stf = ricker_wavelet(15.0, 0.08);
    sim.add_source(src);
    const int rec = sim.add_receiver(700.0, 500.0, 500.0);
    sim.run(250);
    return sim.seismogram(rec);
  };
  const Seismogram ref = run_with(KernelVariant::Reference);
  const Seismogram sse = run_with(KernelVariant::Sse);
  const Seismogram blas = run_with(KernelVariant::BlasLike);
  double peak = 0.0;
  for (const auto& u : ref.displ) peak = std::max(peak, std::abs(u[1]));
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < ref.displ.size(); ++i) {
    EXPECT_NEAR(sse.displ[i][1], ref.displ[i][1], 5e-5 * peak);
    EXPECT_NEAR(blas.displ[i][1], ref.displ[i][1], 5e-5 * peak);
  }
}

TEST(Solver, MomentTensorExplosionIsSymmetric) {
  // Isotropic moment tensor at the box centre: ux at two receivers placed
  // symmetrically about the source must be opposite.
  BoxSetup box(5);
  SimulationConfig cfg;
  cfg.dt = 0.5 * box.dt_cfl;
  Simulation sim(box.mesh, box.basis, box.mat, cfg);
  PointSource src;
  src.x = src.y = src.z = 500.0;
  src.moment = {1e12, 1e12, 1e12, 0.0, 0.0, 0.0};
  src.stf = ricker_wavelet(15.0, 0.08);
  sim.add_source(src);
  const int rec_l = sim.add_receiver(250.0, 500.0, 500.0);
  const int rec_r = sim.add_receiver(750.0, 500.0, 500.0);
  sim.run(250);
  const Seismogram& sl = sim.seismogram(rec_l);
  const Seismogram& sr = sim.seismogram(rec_r);
  double peak = 0.0;
  for (const auto& u : sr.displ) peak = std::max(peak, std::abs(u[0]));
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < sl.displ.size(); ++i)
    EXPECT_NEAR(sl.displ[i][0], -sr.displ[i][0], 0.02 * peak);
}

TEST(Solver, AbsorbingBoundariesDrainEnergy) {
  auto final_energy_fraction = [](bool absorb) {
    BoxSetup box;
    SimulationConfig cfg;
    cfg.dt = 0.5 * box.dt_cfl;
    if (absorb) cfg.absorbing_faces = find_boundary_faces(box.mesh);
    Simulation sim(box.mesh, box.basis, box.mat, cfg);
    sim.set_initial_condition(gaussian_bump);
    const double e0 = sim.compute_energy().total();
    sim.run(600);
    return sim.compute_energy().total() / e0;
  };
  const double absorbed = final_energy_fraction(true);
  const double free = final_energy_fraction(false);
  EXPECT_LT(absorbed, 0.10);  // Stacey drains the box
  EXPECT_GT(free, 0.95);      // free surfaces keep it
}

TEST(Solver, RotationPreservesStabilityAndBendsMotion) {
  BoxSetup box;
  SimulationConfig cfg;
  cfg.dt = 0.5 * box.dt_cfl;
  cfg.rotation = true;
  // Exaggerated rotation rate so the Coriolis effect is visible over a
  // short run (Earth's omega would need hours of simulated time).
  cfg.omega_rad_s = 0.2;
  Simulation rot(box.mesh, box.basis, box.mat, cfg);
  cfg.rotation = false;
  Simulation norot(box.mesh, box.basis, box.mat, cfg);

  rot.set_initial_condition(gaussian_bump);
  norot.set_initial_condition(gaussian_bump);
  rot.run(300);
  norot.run(300);

  // Stability: energy bounded (Coriolis does no work, but the explicit
  // coupling is only neutrally stable, so allow some slack).
  const double e_rot = rot.compute_energy().total();
  const double e_norot = norot.compute_energy().total();
  EXPECT_LT(e_rot, 1.5 * e_norot);
  EXPECT_GT(e_rot, 0.5 * e_norot);

  // The y-velocity field must differ (x-motion is deflected).
  double diff = 0.0, norm = 0.0;
  for (std::size_t g = 0; g < rot.veloc().size(); g += 3) {
    diff += std::abs(static_cast<double>(rot.veloc()[g + 1]) -
                     norot.veloc()[g + 1]);
    norm += std::abs(static_cast<double>(norot.veloc()[g]));
  }
  EXPECT_GT(diff, 1e-6 * norm);
}

TEST(Solver, ReceiverExactVsNearestAgreeOnGridPoint) {
  BoxSetup box;
  SimulationConfig cfg;
  cfg.dt = 0.5 * box.dt_cfl;
  Simulation sim(box.mesh, box.basis, box.mat, cfg);
  PointSource src;
  src.x = 300.0;
  src.y = 500.0;
  src.z = 500.0;
  src.force = {1e9, 0.0, 0.0};
  src.stf = ricker_wavelet(15.0, 0.08);
  sim.add_source(src);
  // 750 is an element-corner lattice coordinate of the 4-element mesh.
  const int exact = sim.add_receiver(750.0, 500.0, 500.0, true);
  const int nearest = sim.add_receiver(750.0, 500.0, 500.0, false);
  sim.run(200);
  const Seismogram& se = sim.seismogram(exact);
  const Seismogram& sn = sim.seismogram(nearest);
  double peak = 0.0;
  for (const auto& u : se.displ) peak = std::max(peak, std::abs(u[0]));
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < se.displ.size(); ++i)
    EXPECT_NEAR(se.displ[i][0], sn.displ[i][0], 1e-6 * peak);
}

TEST(Solver, FlopsAndCommAccounting) {
  BoxSetup box;
  SimulationConfig cfg;
  cfg.dt = 0.5 * box.dt_cfl;
  Simulation sim(box.mesh, box.basis, box.mat, cfg);
  EXPECT_GT(sim.flops_per_step(), 1000000u);  // 64 elements x ~50 kflops
  EXPECT_EQ(sim.comm_bytes_per_step(), 0u);   // serial: no exchange
  EXPECT_EQ(sim.num_solid_elements(), 64);
  EXPECT_EQ(sim.num_fluid_elements(), 0);
}

TEST(Solver, ConfigValidation) {
  BoxSetup box;
  SimulationConfig cfg;  // dt == 0
  EXPECT_THROW(Simulation(box.mesh, box.basis, box.mat, cfg), CheckError);

  cfg.dt = 1.0;
  cfg.attenuation = true;  // no SLS provided
  EXPECT_THROW(Simulation(box.mesh, box.basis, box.mat, cfg), CheckError);
}

TEST(Solver, SourceInFluidRejected) {
  GllBasis basis(4);
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = 2;
  spec.lx = spec.ly = spec.lz = 1000.0;
  HexMesh mesh = build_cartesian_box(spec, basis);
  MaterialSample water;
  water.rho = 1000.0;
  water.vp = 1500.0;
  water.vs = 0.0;
  MaterialFields mat =
      assign_materials(mesh, [&](double, double, double) { return water; });
  SimulationConfig cfg;
  cfg.dt = 1e-3;
  Simulation sim(mesh, basis, mat, cfg);
  PointSource src;
  src.x = src.y = src.z = 500.0;
  src.force = {1.0, 0.0, 0.0};
  src.stf = ricker_wavelet(10.0, 0.1);
  EXPECT_THROW(sim.add_source(src), CheckError);
}

}  // namespace
}  // namespace sfg

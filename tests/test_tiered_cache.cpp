// Tiered-cache tests (ISSUE 9): the per-shard in-memory LRU over the
// shared on-disk ResultStore. Pins the eviction order, checks the
// hit/miss counters against a reference LRU simulation over a seeded op
// stream, and proves a memory-tier hit performs NO store I/O at all
// (ResultStore::reads() and file_count() stay frozen).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <list>
#include <map>
#include <random>
#include <set>
#include <string>

#include "service/tiered_cache.hpp"

namespace sfg::service {
namespace {

std::string temp_dir(const std::string& name) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "sfg_tiered_" + name +
                          "_" + std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

/// A tiny distinguishable result: one station, one sample tagged by key.
JobResult result_for(RequestKey key) {
  JobResult r;
  Seismogram s;
  s.time = {0.0, 1.0};
  s.displ = {{static_cast<double>(key), 0.0, 1.0},
             {0.0, static_cast<double>(key), 2.0}};
  r.seismograms = {s};
  return r;
}

TEST(TieredCache, LruEvictionOrderWithTouchOnHit) {
  ResultStore store(temp_dir("evict"), io::IoBackendKind::Container);
  TieredCache cache(store, /*max_entries=*/3);

  cache.put(1, result_for(1));
  cache.put(2, result_for(2));
  cache.put(3, result_for(3));
  EXPECT_EQ(cache.resident(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Touch key 1: it becomes MRU, so key 2 is now the LRU victim.
  CacheTier tier = CacheTier::Miss;
  ASSERT_NE(cache.get(1, &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Memory);

  cache.put(4, result_for(4));
  EXPECT_EQ(cache.resident(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);

  // Key 2 fell out of the memory tier but the store still has it.
  ASSERT_NE(cache.get(2, &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Store);
  // Keys 1, 3 were never evicted... but promoting 2 just evicted the
  // then-LRU key 3 (order after the put: 4, 1, 3).
  ASSERT_NE(cache.get(1, &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Memory);
  ASSERT_NE(cache.get(3, &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Store);
  EXPECT_EQ(cache.evictions(), 3u);
}

TEST(TieredCache, StoreHitPromotesIntoMemoryTier) {
  const std::string dir = temp_dir("promote");
  {
    ResultStore store(dir, io::IoBackendKind::Container);
    store.store(42, result_for(42));
  }
  // A fresh cache over a reopened store: first lookup is a store hit,
  // the promotion makes the second one a memory hit.
  ResultStore store(dir, io::IoBackendKind::Container);
  TieredCache cache(store, 4);
  CacheTier tier = CacheTier::Miss;
  ASSERT_NE(cache.get(42, &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Store);
  ASSERT_NE(cache.get(42, &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Memory);
  EXPECT_EQ(cache.store_hits(), 1u);
  EXPECT_EQ(cache.memory_hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(TieredCache, MemoryHitPerformsNoStoreIo) {
  ResultStore store(temp_dir("noio"), io::IoBackendKind::Container);
  TieredCache cache(store, 4);
  cache.put(7, result_for(7));
  EXPECT_EQ(store.writes(), 1u);

  const std::uint64_t reads_before = store.reads();
  const int files_before = store.file_count();
  CacheTier tier = CacheTier::Miss;
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(cache.get(7, &tier), nullptr);
    EXPECT_EQ(tier, CacheTier::Memory);
  }
  // The whole point of the memory tier: zero backend reads, no new files.
  EXPECT_EQ(store.reads(), reads_before);
  EXPECT_EQ(store.file_count(), files_before);
  EXPECT_EQ(store.writes(), 1u);
  EXPECT_EQ(cache.memory_hits(), 5u);
}

TEST(TieredCache, ZeroCapacityDisablesMemoryTier) {
  ResultStore store(temp_dir("zerocap"), io::IoBackendKind::Container);
  TieredCache cache(store, 0);
  cache.put(9, result_for(9));
  EXPECT_EQ(cache.resident(), 0u);
  CacheTier tier = CacheTier::Miss;
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(cache.get(9, &tier), nullptr);
    EXPECT_EQ(tier, CacheTier::Store);  // every hit reads the store
  }
  EXPECT_EQ(cache.memory_hits(), 0u);
  EXPECT_EQ(store.reads(), 3u);
}

TEST(TieredCache, MissReportsMissAndCountsIt) {
  ResultStore store(temp_dir("miss"), io::IoBackendKind::Container);
  TieredCache cache(store, 4);
  CacheTier tier = CacheTier::Memory;
  EXPECT_EQ(cache.get(123, &tier), nullptr);
  EXPECT_EQ(tier, CacheTier::Miss);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_FALSE(cache.contains(123));
  cache.put(123, result_for(123));
  EXPECT_TRUE(cache.contains(123));
}

/// Reference LRU the real cache must agree with, op for op.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t cap) : cap_(cap) {}

  bool in_memory(RequestKey k) const { return keys_.count(k) != 0; }

  void touch(RequestKey k) {
    order_.remove(k);
    order_.push_front(k);
  }

  void insert(RequestKey k) {
    if (keys_.insert(k).second) {
      order_.push_front(k);
      while (keys_.size() > cap_) {
        keys_.erase(order_.back());
        order_.pop_back();
      }
    } else {
      touch(k);
    }
  }

 private:
  std::size_t cap_;
  std::list<RequestKey> order_;
  std::set<RequestKey> keys_;
};

TEST(TieredCache, CountersMatchReferenceSimulationOverSeededOps) {
  ResultStore store(temp_dir("ref"), io::IoBackendKind::Container);
  TieredCache cache(store, 3);
  ReferenceLru ref(3);
  std::set<RequestKey> in_store;

  std::uint64_t want_memory = 0, want_store = 0, want_miss = 0;
  std::mt19937_64 rng(20260808);
  for (int op = 0; op < 300; ++op) {
    const RequestKey key = 1 + rng() % 8;
    if (rng() % 3 == 0) {
      cache.put(key, result_for(key));
      in_store.insert(key);
      ref.insert(key);
      continue;
    }
    CacheTier tier = CacheTier::Miss;
    const auto got = cache.get(key, &tier);
    if (ref.in_memory(key)) {
      ASSERT_NE(got, nullptr) << "op " << op;
      EXPECT_EQ(tier, CacheTier::Memory) << "op " << op;
      ++want_memory;
      ref.touch(key);
    } else if (in_store.count(key) != 0) {
      ASSERT_NE(got, nullptr) << "op " << op;
      EXPECT_EQ(tier, CacheTier::Store) << "op " << op;
      ++want_store;
      ref.insert(key);  // promotion mirrors the real cache
    } else {
      EXPECT_EQ(got, nullptr) << "op " << op;
      EXPECT_EQ(tier, CacheTier::Miss) << "op " << op;
      ++want_miss;
    }
    // The served value must always be the one stored under that key.
    if (got != nullptr) {
      ASSERT_EQ(got->seismograms.size(), 1u);
      EXPECT_EQ(got->seismograms[0].displ[0][0],
                static_cast<double>(key));
    }
  }
  EXPECT_EQ(cache.memory_hits(), want_memory);
  EXPECT_EQ(cache.store_hits(), want_store);
  EXPECT_EQ(cache.misses(), want_miss);
}

}  // namespace
}  // namespace sfg::service

// Tests for the sfg_io single-container format layer (ISSUE 8): container
// structural integrity (a truncation at EVERY byte offset is rejected,
// never partially served), CRC corruption detection, per-rank <->
// container conversion bit-identity, the pluggable BlobStore backends,
// the unique-tmp durable write protocol under concurrent writers, the
// solver checkpoint path over both backends, and the out-of-core
// MeshCache spill.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "io/blob_store.hpp"
#include "io/container.hpp"
#include "io/file_util.hpp"
#include "io/ioconv.hpp"
#include "io/mesh_files.hpp"
#include "io/snapshot.hpp"
#include "mesh/cartesian.hpp"
#include "service/service.hpp"
#include "service/worker.hpp"
#include "solver/simulation.hpp"

namespace sfg {
namespace {

namespace fs = std::filesystem;

struct TmpDir {
  std::string path;
  TmpDir() {
    path = (fs::temp_directory_path() /
            ("sfg_ioc_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    fs::create_directories(path);
  }
  ~TmpDir() { fs::remove_all(path); }
  static int counter;
};
int TmpDir::counter = 0;

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

GlobeSlice small_prem_slice() {
  static PremModel prem;
  GlobeMeshSpec spec;
  spec.nex_xi = 4;
  spec.nchunks = 6;
  spec.model = &prem;
  GllBasis basis(4);
  return build_globe_slice(spec, basis, 0);
}

// ---------------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------------

TEST(Container, RoundTripPreadAndMmap) {
  TmpDir tmp;
  const std::string path = tmp.path + "/c.sfgc";
  const std::vector<char> a = {'h', 'e', 'l', 'l', 'o'};
  std::vector<char> b(4096);  // spans multiple "pages", includes zeros
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<char>(i * 37 % 251);
  {
    io::Container c = io::Container::create(path);
    c.append("a", a.data(), a.size());
    c.append("b", b.data(), b.size());
    c.append("empty", nullptr, 0);
    c.commit();
  }
  for (const auto mode :
       {io::Container::ReadMode::Pread, io::Container::ReadMode::Mmap}) {
    io::Container c = io::Container::open_ro(path, mode);
    ASSERT_EQ(c.chunks().size(), 3u);
    EXPECT_EQ(c.chunks()[0].name, "a");  // index preserves append order
    EXPECT_EQ(c.chunks()[1].name, "b");
    EXPECT_TRUE(c.has("empty"));
    EXPECT_FALSE(c.has("missing"));
    const auto ra = c.read("a");
    ASSERT_EQ(ra.size(), a.size());
    EXPECT_EQ(std::memcmp(ra.data(), a.data(), a.size()), 0);
    const auto rb = c.read("b");
    ASSERT_EQ(rb.size(), b.size());
    EXPECT_EQ(std::memcmp(rb.data(), b.data(), b.size()), 0);
    EXPECT_TRUE(c.read("empty").empty());
    EXPECT_THROW(c.read("missing"), CheckError);
    if (mode == io::Container::ReadMode::Mmap) {
      const auto vb = c.view("b");  // zero-copy random access
      ASSERT_EQ(vb.size(), b.size());
      EXPECT_EQ(std::memcmp(vb.data(), b.data(), b.size()), 0);
    }
    EXPECT_THROW(c.append("x", "x", 1), CheckError);  // read-only
  }
}

TEST(Container, AppendSupersedesAndTracksDeadBytes) {
  TmpDir tmp;
  const std::string path = tmp.path + "/c.sfgc";
  {
    io::Container c = io::Container::create(path);
    c.append("k", "old-bytes", 9);
    c.append("k", "new", 3);
    c.commit();
  }
  io::Container c = io::Container::open_ro(path);
  ASSERT_EQ(c.chunks().size(), 1u);
  const auto r = c.read("k");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(std::memcmp(r.data(), "new", 3), 0);
  EXPECT_GT(c.dead_bytes(), 0u);  // the superseded record's bytes

  // open_rw over an existing container keeps appending.
  {
    io::Container w = io::Container::open_rw(path);
    w.append("k2", "more", 4);
    w.commit();
  }
  io::Container again = io::Container::open_ro(path);
  EXPECT_EQ(again.chunks().size(), 2u);
  EXPECT_EQ(std::memcmp(again.read("k").data(), "new", 3), 0);
}

TEST(Container, UncommittedAppendsAreInvisibleOnDisk) {
  TmpDir tmp;
  const std::string path = tmp.path + "/c.sfgc";
  io::Container w = io::Container::create(path);
  w.append("k", "payload", 7);
  EXPECT_TRUE(w.dirty());
  // No commit yet: the on-disk file has no footer, so a reader must
  // reject it wholesale (a rank killed mid-write leaves exactly this).
  EXPECT_THROW(io::Container::open_ro(path), CheckError);
  w.commit();
  EXPECT_FALSE(w.dirty());
  EXPECT_NO_THROW(io::Container::open_ro(path));
  EXPECT_THROW(io::Container::open_ro(tmp.path + "/absent.sfgc"),
               CheckError);
}

// The satellite-4 sweep: a commit torn at ANY byte offset — and trailing
// garbage after the footer — must reject the whole container.
TEST(Container, TruncationSweepRejectsEveryPrefix) {
  TmpDir tmp;
  const std::string path = tmp.path + "/c.sfgc";
  {
    io::Container c = io::Container::create(path);
    c.append("alpha", "0123456789", 10);
    c.append("beta", "abcdef", 6);
    c.commit();
  }
  const std::vector<char> whole = slurp(path);
  ASSERT_GT(whole.size(), 100u);
  const std::string trunc = tmp.path + "/trunc.sfgc";
  for (std::size_t len = 0; len < whole.size(); ++len) {
    spit(trunc, {whole.begin(), whole.begin() + static_cast<long>(len)});
    EXPECT_THROW(io::Container::open_ro(trunc), CheckError)
        << "prefix of " << len << " bytes was accepted";
    EXPECT_THROW(io::Container::open_ro(trunc, io::Container::ReadMode::Mmap),
                 CheckError)
        << "mmap accepted a prefix of " << len << " bytes";
  }
  // Footer not at EOF (torn append after the last commit).
  std::vector<char> padded = whole;
  padded.push_back('\0');
  spit(trunc, padded);
  EXPECT_THROW(io::Container::open_ro(trunc), CheckError);
}

// Flip every byte of a committed container: each flip must be caught at
// open or at chunk read — except bytes no reader can vouch for (the
// reserved header word, a record's inline name copy and trailing CRC,
// which are write-side redundancy; the INDEX copy is authoritative).
TEST(Container, BitFlipSweepIsDetected) {
  TmpDir tmp;
  const std::string path = tmp.path + "/c.sfgc";
  {
    io::Container c = io::Container::create(path);
    c.append("alpha", "0123456789", 10);
    c.append("beta", "abcdef", 6);
    c.commit();
  }
  std::set<std::uint64_t> exempt;
  for (std::uint64_t off = 12; off < 16; ++off) exempt.insert(off);
  {
    io::Container c = io::Container::open_ro(path);
    for (const io::ChunkInfo& ci : c.chunks()) {
      for (std::uint64_t o = 0; o < ci.name.size(); ++o)
        exempt.insert(ci.offset + 16 + o);  // record's inline name copy
      for (std::uint64_t o = 0; o < 4; ++o)
        exempt.insert(ci.offset + 16 + ci.name.size() + ci.bytes + o);
    }
  }
  const std::vector<char> whole = slurp(path);
  const std::string flip = tmp.path + "/flip.sfgc";
  int detected = 0;
  for (std::size_t off = 0; off < whole.size(); ++off) {
    std::vector<char> bad = whole;
    bad[off] = static_cast<char>(bad[off] ^ 0xff);
    spit(flip, bad);
    bool caught = false;
    try {
      io::Container c = io::Container::open_ro(flip);
      for (const io::ChunkInfo& ci : c.chunks()) c.read(ci.name);
    } catch (const CheckError&) {
      caught = true;
    }
    if (caught)
      ++detected;
    else
      EXPECT_TRUE(exempt.count(off))
          << "flip at offset " << off << " went undetected";
  }
  EXPECT_GT(detected, static_cast<int>(whole.size() * 3 / 4));
}

// ---------------------------------------------------------------------------
// Conversion CLI library: per-rank files <-> container, bit for bit
// ---------------------------------------------------------------------------

TEST(Ioconv, PackUnpackReproducesEveryFileBitForBit) {
  TmpDir tmp;
  const std::string src = tmp.path + "/src";
  fs::create_directories(src + "/sub/deep");
  std::vector<char> binary(3000);
  for (std::size_t i = 0; i < binary.size(); ++i)
    binary[i] = static_cast<char>((i * 131 + 7) % 256);
  spit(src + "/a.bin", binary);
  spit(src + "/empty.dat", {});
  spit(src + "/sub/deep/c.txt", {'t', 'e', 'x', 't', '\n'});

  const std::string cont = tmp.path + "/packed.sfgc";
  const io::ConvStats packed = io::pack_directory(src, cont, true);
  EXPECT_EQ(packed.files, 3);
  EXPECT_EQ(packed.bytes, binary.size() + 0 + 5);
  EXPECT_EQ(io::verify_container(cont).files, 3);

  const std::string dst = tmp.path + "/dst";
  const io::ConvStats unpacked = io::unpack_container(cont, dst, true);
  EXPECT_EQ(unpacked.files, 3);
  for (const char* rel : {"a.bin", "empty.dat", "sub/deep/c.txt"})
    EXPECT_EQ(slurp(src + "/" + rel), slurp(dst + "/" + rel)) << rel;
  EXPECT_EQ(directory_file_count(dst), 3);
}

TEST(Ioconv, MeshContainerMatchesPackedLegacyFilesBitForBit) {
  TmpDir tmp;
  const GlobeSlice slice = small_prem_slice();

  // Leg 1: legacy per-rank files, packed into a container by the CLI path.
  const std::string legacy = tmp.path + "/legacy";
  const std::uint64_t legacy_bytes =
      write_legacy_mesh_files(legacy, 0, slice);
  ASSERT_EQ(directory_file_count(legacy), kLegacyFilesPerRank);
  const std::string packed = tmp.path + "/packed.sfgc";
  const io::ConvStats ps = io::pack_directory(legacy, packed, true);
  EXPECT_EQ(ps.files, kLegacyFilesPerRank);
  EXPECT_EQ(ps.bytes, legacy_bytes);

  // Leg 2: the same slice written DIRECTLY to a container.
  const std::string direct = tmp.path + "/direct.sfgc";
  {
    io::Container c = io::Container::create(direct);
    EXPECT_EQ(write_mesh_container(c, 0, slice), legacy_bytes);
    c.commit();
  }

  // Same chunk names, same payload bytes — the formats are convertible
  // without loss in either direction.
  io::Container a = io::Container::open_ro(packed);
  io::Container b = io::Container::open_ro(direct, io::Container::ReadMode::Mmap);
  ASSERT_EQ(a.chunks().size(), b.chunks().size());
  std::set<std::string> names;
  for (const io::ChunkInfo& ci : a.chunks()) names.insert(ci.name);
  for (const io::ChunkInfo& ci : b.chunks()) {
    ASSERT_TRUE(names.count(ci.name)) << ci.name;
    EXPECT_EQ(a.read(ci.name), b.read(ci.name)) << ci.name;
  }

  // And the direct container unpacks into files identical to the legacy
  // writer's output.
  const std::string unpacked = tmp.path + "/unpacked";
  io::unpack_container(direct, unpacked, true);
  for (const auto& entry : fs::recursive_directory_iterator(legacy))
    if (entry.is_regular_file()) {
      const std::string rel =
          fs::relative(entry.path(), legacy).string();
      EXPECT_EQ(slurp(entry.path().string()),
                slurp(unpacked + "/" + rel))
          << rel;
    }

  // The in-memory read path agrees with the legacy reader.
  const GlobeSlice back = read_mesh_container(b, 0);
  const GlobeSlice filed = read_legacy_mesh_files(legacy, 0);
  EXPECT_EQ(back.mesh.xstore, filed.mesh.xstore);
  EXPECT_EQ(back.mesh.ibool, filed.mesh.ibool);
  EXPECT_EQ(back.mesh.jacobian, filed.mesh.jacobian);
  EXPECT_EQ(back.materials.rho, filed.materials.rho);
  EXPECT_EQ(back.materials.element_is_fluid,
            filed.materials.element_is_fluid);
  EXPECT_EQ(back.boundary_keys, filed.boundary_keys);
}

// ---------------------------------------------------------------------------
// Satellite 3: read_array bounds checks against the actual file size
// ---------------------------------------------------------------------------

TEST(MeshFiles, TruncatedArrayFileIsRejected) {
  TmpDir tmp;
  const GlobeSlice slice = small_prem_slice();
  write_legacy_mesh_files(tmp.path, 5, slice);
  const std::string victim = tmp.path + "/proc000005_xstore.bin";

  // Payload shorter than the header's count promises.
  std::vector<char> bytes = slurp(victim);
  ASSERT_GT(bytes.size(), 24u);
  spit(victim, {bytes.begin(), bytes.end() - 8});
  try {
    read_legacy_mesh_files(tmp.path, 5);
    FAIL() << "truncated mesh array accepted";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }

  // Count field inflated to promise more values than any file could hold:
  // the count*sizeof(T) product would overflow without the division-form
  // bounds check.
  const std::uint64_t huge = ~std::uint64_t{0} / 2;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  spit(victim, bytes);
  EXPECT_THROW(read_legacy_mesh_files(tmp.path, 5), CheckError);

  // Trailing junk after the promised payload is rejected too.
  bytes = slurp(tmp.path + "/proc000005_ystore.bin");
  bytes.push_back('x');
  spit(tmp.path + "/proc000005_ystore.bin", bytes);
  EXPECT_THROW(read_legacy_mesh_files(tmp.path, 5), CheckError);
}

// ---------------------------------------------------------------------------
// BlobStore backends
// ---------------------------------------------------------------------------

TEST(BlobStore, DirectoryAndContainerBackendsAgree) {
  TmpDir tmp;
  const std::vector<std::pair<std::string, std::string>> blobs = {
      {"rank0.snap", "payload-zero"},
      {"rank1.snap", "payload-one-longer"},
      {"note", ""}};
  auto dir_store = io::make_store(io::IoBackendKind::PerRankFiles,
                                  tmp.path + "/dir");
  auto cont_store =
      io::make_store(io::IoBackendKind::Container, tmp.path + "/cont");
  for (io::BlobStore* s : {dir_store.get(), cont_store.get()}) {
    for (const auto& [k, v] : blobs) s->write(k, v.data(), v.size());
    for (const auto& [k, v] : blobs) {
      ASSERT_TRUE(s->contains(k)) << s->describe();
      const auto r = s->read(k);
      ASSERT_EQ(r.size(), v.size());
      if (!v.empty()) EXPECT_EQ(std::memcmp(r.data(), v.data(), v.size()), 0);
    }
    EXPECT_FALSE(s->contains("missing"));
    EXPECT_THROW(s->read("missing"), CheckError);
    // Keys must be flat names: no escaping the store.
    EXPECT_THROW(s->write("../escape", "x", 1), CheckError);
    EXPECT_THROW(s->write("a/b", "x", 1), CheckError);
    std::vector<std::string> keys = s->list();
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(keys, (std::vector<std::string>{"note", "rank0.snap",
                                              "rank1.snap"}));
    // Overwrite replaces content.
    s->write("rank0.snap", "v2", 2);
    EXPECT_EQ(std::memcmp(s->read("rank0.snap").data(), "v2", 2), 0);
  }
  // The Figure 5 metric: O(blobs) files vs O(1).
  EXPECT_EQ(dir_store->file_count(), 3);
  EXPECT_EQ(cont_store->file_count(), 1);

  // A reopened container store serves the previous blobs.
  io::ContainerStore reopened(tmp.path + "/cont.sfgc");
  EXPECT_EQ(std::memcmp(reopened.read("rank0.snap").data(), "v2", 2), 0);
  EXPECT_EQ(reopened.list().size(), 3u);

  // Batched write: many blobs under one commit.
  std::vector<std::pair<std::string, std::vector<std::byte>>> batch;
  for (int i = 0; i < 4; ++i)
    batch.emplace_back("batch" + std::to_string(i),
                       std::vector<std::byte>(7, static_cast<std::byte>(i)));
  reopened.write_batch(batch);
  EXPECT_EQ(reopened.list().size(), 7u);
  EXPECT_EQ(reopened.file_count(), 1);
}

TEST(BlobStore, ConcurrentContainerWritersSerialize) {
  TmpDir tmp;
  io::ContainerStore store(tmp.path + "/shared.sfgc");
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&store, t] {
      const std::string payload(64 + t, static_cast<char>('A' + t));
      store.write("rank" + std::to_string(t) + ".snap", payload.data(),
                  payload.size());
    });
  for (auto& t : ts) t.join();
  io::Container check = io::Container::open_ro(tmp.path + "/shared.sfgc");
  ASSERT_EQ(check.chunks().size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    const auto r = check.read("rank" + std::to_string(t) + ".snap");
    ASSERT_EQ(r.size(), static_cast<std::size_t>(64 + t));
    for (const std::byte b : r)
      ASSERT_EQ(static_cast<char>(b), static_cast<char>('A' + t));
  }
}

// ---------------------------------------------------------------------------
// Satellites 1+2: the unique-tmp durable write protocol
// ---------------------------------------------------------------------------

TEST(FileUtil, UniqueTmpPathsNeverCollide) {
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(seen.insert(io::unique_tmp_path("/x/target")).second);
  const std::string one = io::unique_tmp_path("/x/target");
  EXPECT_EQ(one.find("/x/target.tmp."), 0u);
}

TEST(FileUtil, ConcurrentWritersOfOnePathNeverTearAndLeaveNoLitter) {
  TmpDir tmp;
  const std::string target = tmp.path + "/contested.bin";
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t)
    payloads.push_back(std::string(512 + 17 * t, static_cast<char>('a' + t)));
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r)
        io::atomic_write_file(target, payloads[static_cast<std::size_t>(t)].data(),
                              payloads[static_cast<std::size_t>(t)].size());
    });
  for (auto& t : ts) t.join();
  // The survivor is EXACTLY one writer's payload — rename atomicity plus
  // unique tmp names make interleaved torn output impossible.
  const std::vector<char> got = slurp(target);
  bool matches_one = false;
  for (const std::string& p : payloads)
    matches_one |= (got.size() == p.size() &&
                    std::memcmp(got.data(), p.data(), p.size()) == 0);
  EXPECT_TRUE(matches_one) << "torn write: " << got.size() << " bytes";
  // No .tmp litter: every temporary was renamed or unlinked.
  EXPECT_EQ(directory_file_count(tmp.path), 1);
}

TEST(FileUtil, FailedWriteRemovesItsTemporary) {
  TmpDir tmp;
  // Target's parent directory does not exist: open fails, nothing litters.
  EXPECT_THROW(
      io::atomic_write_file(tmp.path + "/no_dir/x.bin", "data", 4),
      CheckError);
  EXPECT_EQ(directory_file_count(tmp.path), 0);
}

// ---------------------------------------------------------------------------
// Checkpoints through the store vtable: byte and physics identity
// ---------------------------------------------------------------------------

MaterialSample rock_sample() {
  MaterialSample s;
  s.rho = 2500.0;
  s.vp = 3000.0;
  s.vs = 1800.0;
  s.q_mu = 0.0;
  return s;
}

io::SnapshotIdentity box_identity() {
  io::SnapshotIdentity id;
  id.nex = 4;
  id.nproc = 1;
  id.nchunks = 1;
  return id;
}

std::unique_ptr<Simulation> make_box_sim(const GllBasis& basis,
                                         HexMesh& mesh,
                                         MaterialFields& mat) {
  SimulationConfig cfg;
  cfg.dt = 1.5e-3;
  auto sim = std::make_unique<Simulation>(mesh, basis, mat, cfg);
  PointSource src;
  src.x = 320.0;
  src.y = 480.0;
  src.z = 510.0;
  src.force = {1e9, 5e8, 0.0};
  src.stf = ricker_wavelet(14.0, 0.09);
  sim->add_source(src);
  sim->add_receiver(700.0, 510.0, 480.0);
  return sim;
}

TEST(CheckpointStore, BackendsStoreIdenticalBytesAndRestoreBitIdentically) {
  TmpDir tmp;
  GllBasis basis(4);
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = 4;
  spec.lx = spec.ly = spec.lz = 1000.0;
  HexMesh mesh = build_cartesian_box(spec, basis);
  MaterialFields mat =
      assign_materials(mesh, [](double, double, double) { return rock_sample(); });

  auto sim = make_box_sim(basis, mesh, mat);
  for (int s = 0; s < 5; ++s) sim->step();

  const std::string path = tmp.path + "/direct.snap";
  io::DirectoryStore dstore(tmp.path + "/per_rank");
  io::ContainerStore cstore(tmp.path + "/checkpoints.sfgc");
  sim->write_checkpoint(path, box_identity());
  sim->write_checkpoint(dstore, "rank0.snap", box_identity());
  sim->write_checkpoint(cstore, "rank0.snap", box_identity());

  // One serialization, three placements: the bytes are identical.
  const std::vector<char> direct = slurp(path);
  const auto from_dir = dstore.read("rank0.snap");
  const auto from_cont = cstore.read("rank0.snap");
  ASSERT_EQ(from_dir.size(), direct.size());
  ASSERT_EQ(from_cont.size(), direct.size());
  EXPECT_EQ(std::memcmp(from_dir.data(), direct.data(), direct.size()), 0);
  EXPECT_EQ(std::memcmp(from_cont.data(), direct.data(), direct.size()), 0);

  // Restoring from the container continues the run bit-identically to the
  // uninterrupted one.
  for (int s = 5; s < 12; ++s) sim->step();
  const Seismogram want = sim->seismogram(0);

  auto resumed = make_box_sim(basis, mesh, mat);
  resumed->restore_checkpoint(cstore, "rank0.snap", box_identity());
  EXPECT_EQ(resumed->step_count(), 5);
  for (int s = 5; s < 12; ++s) resumed->step();
  const Seismogram got = resumed->seismogram(0);
  ASSERT_EQ(got.displ.size(), want.displ.size());
  for (std::size_t i = 0; i < got.displ.size(); ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_EQ(got.displ[i][static_cast<std::size_t>(c)],
                want.displ[i][static_cast<std::size_t>(c)]);

  // Identity mismatch through the store path is rejected like the file
  // path rejects it.
  io::SnapshotIdentity wrong = box_identity();
  wrong.nex = 8;
  auto fresh = make_box_sim(basis, mesh, mat);
  EXPECT_THROW(fresh->restore_checkpoint(cstore, "rank0.snap", wrong),
               CheckError);
}

// ---------------------------------------------------------------------------
// Out-of-core MeshCache spill through the container
// ---------------------------------------------------------------------------

TEST(MeshCache, SpillsLruSlicesAndReloadsThemIntact) {
  TmpDir tmp;
  GllBasis basis(4);
  service::MeshCache cache(basis);
  cache.configure_spill(tmp.path + "/mesh_cache", 1);

  service::JobRequest a;
  a.nex = 3;
  service::JobRequest b;
  b.nex = 4;

  auto sa = cache.get(a, 0);  // build A
  const auto ax = sa->mesh.xstore;
  const auto ai = sa->mesh.ibool;
  const auto ar = sa->materials.rho;

  auto sb = cache.get(b, 0);  // build B; A is now over-cap and spills
  EXPECT_GE(cache.spills(), 1u);
  EXPECT_LE(cache.resident(), 1u);

  auto sa2 = cache.get(a, 0);  // A comes back from the container
  EXPECT_GE(cache.spill_hits(), 1u);
  EXPECT_EQ(sa2->mesh.xstore, ax);
  EXPECT_EQ(sa2->mesh.ibool, ai);
  EXPECT_EQ(sa2->materials.rho, ar);
  EXPECT_EQ(sa2->mesh.nspec, sa->mesh.nspec);
  EXPECT_EQ(sa2->mesh.nglob, sa->mesh.nglob);

  // The spill store is ONE container file.
  EXPECT_EQ(directory_file_count(tmp.path), 1);
}

// ---------------------------------------------------------------------------
// End to end: a container-backend campaign occupies O(1) files
// ---------------------------------------------------------------------------

TEST(Campaign, ContainerBackendKeepsWholeCampaignInOneFile) {
  TmpDir tmp;
  service::ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.work_dir = tmp.path + "/camp";
  cfg.io_backend = io::IoBackendKind::Container;

  service::JobRequest base;
  base.nex = 4;
  base.source = {320.0, 480.0, 510.0, {1e9, 5e8, 0.0}, 14.0, 0.09};
  base.stations = {{700.0, 510.0, 480.0}};
  base.nsteps = 12;

  {
    service::CampaignService svc(cfg);
    for (int i = 0; i < 3; ++i) {
      service::JobRequest r = base;
      r.source.z = 500.0 + 10.0 * i;
      r.nranks = (i == 2) ? 2 : 1;
      if (i == 2) {  // exercise the container scratch-checkpoint path
        r.checkpoint_interval_steps = 4;
        r.fault = {1, 8};
      }
      svc.submit(r);
    }
    svc.wait_all();
    for (const service::JobRecord& j : svc.jobs())
      ASSERT_EQ(j.state, service::JobState::Done) << j.error;
    EXPECT_EQ(svc.store().size(), 3u);
    EXPECT_EQ(svc.store().file_count(), 1);
    // Scratch checkpoints are cleaned up on success; the surviving
    // footprint of the whole campaign is the one results container.
    EXPECT_EQ(directory_file_count(cfg.work_dir), 1);
    const service::JobRecord faulted = svc.jobs()[2];
    EXPECT_EQ(faulted.attempts, 2);
    EXPECT_GT(faulted.resumed_from_step, 0);  // resumed via the container
  }

  // A fresh service over the same work dir serves the cache from the
  // container (cross-campaign reuse through the sfg_io layer).
  service::CampaignService svc2(cfg);
  service::JobRequest r = base;
  r.source.z = 500.0;
  svc2.submit(r);
  svc2.wait_all();
  EXPECT_EQ(svc2.stats().cache_hits, 1u);
}

// ---------------------------------------------------------------------------
// ResultStore over the container backend
// ---------------------------------------------------------------------------

TEST(ResultStore, ContainerBackendRoundTripsAndReopens) {
  TmpDir tmp;
  Seismogram seis;
  for (int i = 0; i < 32; ++i) {
    seis.time.push_back(0.01 * i);
    seis.displ.push_back({1.0 * i, -2.0 * i, 0.5 * i});
  }
  service::JobResult result;
  result.seismograms = {seis};
  const service::RequestKey key = 0x1234abcd5678ef90ull;
  {
    service::ResultStore store(tmp.path, io::IoBackendKind::Container);
    EXPECT_FALSE(store.contains(key));
    store.store(key, result);
    EXPECT_TRUE(store.contains(key));
    EXPECT_EQ(store.file_count(), 1);
  }
  service::ResultStore reopened(tmp.path, io::IoBackendKind::Container);
  ASSERT_TRUE(reopened.contains(key));
  const auto loaded = reopened.load(key);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->seismograms.size(), 1u);
  EXPECT_EQ(loaded->seismograms[0].time, seis.time);
  EXPECT_EQ(loaded->seismograms[0].displ, seis.displ);
  EXPECT_EQ(reopened.size(), 1u);
}

}  // namespace
}  // namespace sfg

// Regression test for the duplicated source/receiver bug (ISSUE 3): a
// source sitting exactly on the interface between two slices is located by
// BOTH ranks with error ~0 — naive "add it where it locates" injects it
// twice, doubling the wavefield. add_source_global / add_receiver_global
// run a deterministic owner election (allreduce on (error, rank), lowest
// rank wins ties) so exactly one rank owns each point and the parallel
// seismogram matches the serial reference.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "mesh/cartesian.hpp"
#include "runtime/exchanger.hpp"
#include "solver/simulation.hpp"

namespace sfg {
namespace {

MaterialSample rock() {
  MaterialSample s;
  s.rho = 2500.0;
  s.vp = 3000.0;
  s.vs = 1800.0;
  s.q_mu = 80.0;
  return s;
}

CartesianBoxSpec global_spec() {
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = 4;
  spec.lx = spec.ly = spec.lz = 1000.0;
  return spec;
}

/// A source pinned EXACTLY on the x = 500 plane: the shared interface of
/// the 2x1x1 decomposition (and an element face of the serial mesh, so
/// both ranks locate it with the same ~roundoff error).
PointSource interface_source() {
  PointSource src;
  src.x = 500.0;
  src.y = 480.0;
  src.z = 510.0;
  src.force = {1e9, 5e8, 0.0};
  src.stf = ricker_wavelet(14.0, 0.09);
  return src;
}

constexpr double kRecX = 700.0, kRecY = 510.0, kRecZ = 480.0;
constexpr double kDt = 1.5e-3;
constexpr int kSteps = 150;

Seismogram run_serial() {
  GllBasis basis(4);
  HexMesh mesh = build_cartesian_box(global_spec(), basis);
  MaterialFields mat =
      assign_materials(mesh, [](double, double, double) { return rock(); });
  SimulationConfig cfg;
  cfg.dt = kDt;
  Simulation sim(mesh, basis, mat, cfg);
  EXPECT_TRUE(sim.add_source_global(interface_source()));  // serial owns all
  const int rec = sim.add_receiver_global(kRecX, kRecY, kRecZ);
  EXPECT_GE(rec, 0);
  sim.run(kSteps);
  return sim.seismogram(rec);
}

/// Two-rank run split across the source plane. `elect` switches between
/// the fixed collective API and the buggy "every rank that locates it adds
/// it" behaviour this test guards against.
Seismogram run_two_ranks(bool elect, int* owners_out = nullptr) {
  Seismogram result;
  int owners = 0;
  smpi::run_ranks(2, [&](smpi::Communicator& comm) {
    GllBasis basis(4);
    CartesianSlice slice = build_cartesian_slice(global_spec(), basis, 2, 1,
                                                 1, comm.rank(), 0, 0);
    std::vector<smpi::PointCandidate> cands;
    for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
      cands.push_back({slice.boundary_keys[n], slice.boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    MaterialFields mat = assign_materials(
        slice.mesh, [](double, double, double) { return rock(); });
    SimulationConfig cfg;
    cfg.dt = kDt;
    Simulation sim(slice.mesh, basis, mat, cfg, &comm, &ex);

    bool owns_source = false;
    if (elect) {
      owns_source = sim.add_source_global(interface_source());
    } else {
      // The pre-fix behaviour: both slices contain the x = 500 plane, both
      // locate the source with ~zero error, both inject it.
      const LocatedPoint loc = locate_point_exact(
          slice.mesh, basis, interface_source().x, interface_source().y,
          interface_source().z);
      if (loc.exact) {
        sim.add_source(interface_source());
        owns_source = true;
      }
    }
    const int n_owners = static_cast<int>(
        comm.allreduce_one(owns_source ? 1 : 0, smpi::ReduceOp::Sum));
    if (comm.rank() == 0) owners = n_owners;

    // The receiver is strictly inside rank 1's slice; the election must
    // hand it to that rank and nobody else.
    int rec = -1;
    if (elect) {
      rec = sim.add_receiver_global(kRecX, kRecY, kRecZ);
    } else if (kRecX >= comm.rank() * 500.0 &&
               (comm.rank() == 1 || kRecX < 500.0)) {
      rec = sim.add_receiver(kRecX, kRecY, kRecZ);
    }
    sim.run(kSteps);
    if (rec >= 0) result = sim.seismogram(rec);
  });
  if (owners_out != nullptr) *owners_out = owners;
  return result;
}

void expect_seismograms_match(const Seismogram& a, const Seismogram& b,
                              double rel_tol) {
  ASSERT_EQ(a.displ.size(), b.displ.size());
  ASSERT_FALSE(a.displ.empty());
  double peak = 0.0;
  for (const auto& u : a.displ)
    for (double c : u) peak = std::max(peak, std::abs(c));
  ASSERT_GT(peak, 0.0);
  for (std::size_t i = 0; i < a.displ.size(); ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(a.displ[i][c], b.displ[i][c], rel_tol * peak)
          << "sample " << i << " comp " << c;
}

double peak_amplitude(const Seismogram& s) {
  double peak = 0.0;
  for (const auto& u : s.displ)
    for (double c : u) peak = std::max(peak, std::abs(c));
  return peak;
}

TEST(SourceOwnership, InterfaceSourceInjectedExactlyOnce) {
  int owners = -1;
  const Seismogram elected = run_two_ranks(/*elect=*/true, &owners);
  EXPECT_EQ(owners, 1) << "owner election must pick exactly one rank";
  // The amplitude matches the single-rank reference: no double injection.
  const Seismogram serial = run_serial();
  expect_seismograms_match(serial, elected, 5e-5);
}

TEST(SourceOwnership, NaiveLocalAddDoublesTheSource) {
  // Demonstrate the bug the election fixes: adding the source on every
  // rank that locates it doubles the injected force, so the recorded
  // wavefield comes out ~2x the reference amplitude.
  int owners = -1;
  const Seismogram doubled = run_two_ranks(/*elect=*/false, &owners);
  EXPECT_EQ(owners, 2) << "both slices should locate an interface source";
  const Seismogram serial = run_serial();
  const double ratio = peak_amplitude(doubled) / peak_amplitude(serial);
  EXPECT_NEAR(ratio, 2.0, 0.05);
}

TEST(SourceOwnership, TieBreaksToLowestRank) {
  // Both ranks see identical (~0) location error for the interface source,
  // so the election's deterministic tie-break must hand it to rank 0.
  smpi::run_ranks(2, [&](smpi::Communicator& comm) {
    GllBasis basis(4);
    CartesianSlice slice = build_cartesian_slice(global_spec(), basis, 2, 1,
                                                 1, comm.rank(), 0, 0);
    std::vector<smpi::PointCandidate> cands;
    for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
      cands.push_back({slice.boundary_keys[n], slice.boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    MaterialFields mat = assign_materials(
        slice.mesh, [](double, double, double) { return rock(); });
    SimulationConfig cfg;
    cfg.dt = kDt;
    Simulation sim(slice.mesh, basis, mat, cfg, &comm, &ex);
    const bool owns = sim.add_source_global(interface_source());
    EXPECT_EQ(owns, comm.rank() == 0);
  });
}

TEST(SourceOwnership, InteriorPointOwnedByContainingRank) {
  // A receiver strictly inside one slice: the other rank's best location
  // error is the distance to the interface, so the election is not a tie.
  smpi::run_ranks(2, [&](smpi::Communicator& comm) {
    GllBasis basis(4);
    CartesianSlice slice = build_cartesian_slice(global_spec(), basis, 2, 1,
                                                 1, comm.rank(), 0, 0);
    std::vector<smpi::PointCandidate> cands;
    for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
      cands.push_back({slice.boundary_keys[n], slice.boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    MaterialFields mat = assign_materials(
        slice.mesh, [](double, double, double) { return rock(); });
    SimulationConfig cfg;
    cfg.dt = kDt;
    Simulation sim(slice.mesh, basis, mat, cfg, &comm, &ex);
    const int rec = sim.add_receiver_global(kRecX, kRecY, kRecZ);  // x=700
    if (comm.rank() == 1) {
      EXPECT_GE(rec, 0);
    } else {
      EXPECT_EQ(rec, -1);
    }
  });
}

}  // namespace
}  // namespace sfg

// Unit and property tests for the GLL quadrature / Lagrange basis
// (paper §2.3). Degrees 4..10 are what SEM seismic codes actually use.

#include <gtest/gtest.h>

#include <cmath>

#include "quadrature/gll.hpp"

namespace sfg {
namespace {

TEST(Legendre, KnownValues) {
  EXPECT_DOUBLE_EQ(legendre(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(legendre(1, 0.3), 0.3);
  EXPECT_NEAR(legendre(2, 0.5), 0.5 * (3 * 0.25 - 1), 1e-15);
  EXPECT_NEAR(legendre(3, -0.2),
              0.5 * (5 * std::pow(-0.2, 3) - 3 * -0.2), 1e-15);
  // P_n(1) = 1, P_n(-1) = (-1)^n
  for (int n = 0; n <= 12; ++n) {
    EXPECT_NEAR(legendre(n, 1.0), 1.0, 1e-14);
    EXPECT_NEAR(legendre(n, -1.0), n % 2 == 0 ? 1.0 : -1.0, 1e-14);
  }
}

TEST(Legendre, DerivativeMatchesFiniteDifference) {
  const double h = 1e-6;
  for (int n = 1; n <= 8; ++n) {
    for (double x : {-0.9, -0.3, 0.0, 0.42, 0.77}) {
      const double fd = (legendre(n, x + h) - legendre(n, x - h)) / (2 * h);
      EXPECT_NEAR(legendre_derivative(n, x), fd, 1e-7) << "n=" << n;
    }
  }
}

TEST(Legendre, DerivativeAtEndpoints) {
  // P_n'(1) = n(n+1)/2
  for (int n = 1; n <= 9; ++n) {
    EXPECT_NEAR(legendre_derivative(n, 1.0), 0.5 * n * (n + 1), 1e-12);
    EXPECT_NEAR(legendre_derivative(n, -1.0),
                (n % 2 == 0 ? -1.0 : 1.0) * 0.5 * n * (n + 1), 1e-12);
  }
}

TEST(GllBasis, Degree4KnownNodesAndWeights) {
  // Classical degree-4 GLL nodes: 0, ±sqrt(3/7), ±1 with weights
  // 1/10, 49/90, 32/45.
  GllBasis b(4);
  ASSERT_EQ(b.num_points(), 5);
  EXPECT_NEAR(b.node(0), -1.0, 1e-15);
  EXPECT_NEAR(b.node(1), -std::sqrt(3.0 / 7.0), 1e-13);
  EXPECT_NEAR(b.node(2), 0.0, 1e-13);
  EXPECT_NEAR(b.node(3), std::sqrt(3.0 / 7.0), 1e-13);
  EXPECT_NEAR(b.node(4), 1.0, 1e-15);
  EXPECT_NEAR(b.weight(0), 0.1, 1e-13);
  EXPECT_NEAR(b.weight(1), 49.0 / 90.0, 1e-13);
  EXPECT_NEAR(b.weight(2), 32.0 / 45.0, 1e-13);
  EXPECT_NEAR(b.weight(4), 0.1, 1e-13);
}

class GllDegrees : public ::testing::TestWithParam<int> {};

TEST_P(GllDegrees, NodesSortedSymmetricWithEndpoints) {
  GllBasis b(GetParam());
  const int np = b.num_points();
  EXPECT_DOUBLE_EQ(b.node(0), -1.0);
  EXPECT_DOUBLE_EQ(b.node(np - 1), 1.0);
  for (int i = 0; i + 1 < np; ++i) EXPECT_LT(b.node(i), b.node(i + 1));
  for (int i = 0; i < np; ++i)
    EXPECT_NEAR(b.node(i), -b.node(np - 1 - i), 1e-13) << "i=" << i;
}

TEST_P(GllDegrees, WeightsPositiveAndSumToTwo) {
  GllBasis b(GetParam());
  double sum = 0;
  for (int i = 0; i < b.num_points(); ++i) {
    EXPECT_GT(b.weight(i), 0.0);
    sum += b.weight(i);
  }
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST_P(GllDegrees, QuadratureExactToDegree2Nminus1) {
  const int N = GetParam();
  GllBasis b(N);
  // integral of x^p over [-1,1] = 0 (odd) or 2/(p+1) (even).
  for (int p = 0; p <= 2 * N - 1; ++p) {
    double q = 0;
    for (int i = 0; i < b.num_points(); ++i)
      q += b.weight(i) * std::pow(b.node(i), p);
    const double exact = (p % 2 == 1) ? 0.0 : 2.0 / (p + 1);
    EXPECT_NEAR(q, exact, 1e-12) << "N=" << N << " p=" << p;
  }
}

TEST_P(GllDegrees, QuadratureNotExactAtDegree2N) {
  // GLL is exact to 2N-1 only: x^(2N) must show a quadrature error.
  const int N = GetParam();
  GllBasis b(N);
  double q = 0;
  for (int i = 0; i < b.num_points(); ++i)
    q += b.weight(i) * std::pow(b.node(i), 2 * N);
  const double exact = 2.0 / (2 * N + 1);
  EXPECT_GT(std::abs(q - exact), 1e-8) << "N=" << N;
}

TEST_P(GllDegrees, LagrangeCardinalProperty) {
  GllBasis b(GetParam());
  for (int j = 0; j < b.num_points(); ++j)
    for (int i = 0; i < b.num_points(); ++i)
      EXPECT_NEAR(b.lagrange(j, b.node(i)), i == j ? 1.0 : 0.0, 1e-12);
}

TEST_P(GllDegrees, LagrangeFormsPartitionOfUnity) {
  GllBasis b(GetParam());
  for (double x : {-0.83, -0.11, 0.0, 0.5, 0.999}) {
    double sum = 0;
    for (int j = 0; j < b.num_points(); ++j) sum += b.lagrange(j, x);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST_P(GllDegrees, HprimeMatchesAnalyticLagrangeDerivative) {
  GllBasis b(GetParam());
  for (int i = 0; i < b.num_points(); ++i)
    for (int j = 0; j < b.num_points(); ++j)
      EXPECT_NEAR(b.hprime(i, j), b.lagrange_derivative(j, b.node(i)), 1e-10)
          << "i=" << i << " j=" << j;
}

TEST_P(GllDegrees, HprimeDifferentiatesPolynomialsExactly) {
  // For f = x^p with p <= N, sum_j hprime(i,j) f(x_j) must equal p x_i^(p-1).
  const int N = GetParam();
  GllBasis b(N);
  for (int p = 0; p <= N; ++p) {
    for (int i = 0; i < b.num_points(); ++i) {
      double d = 0;
      for (int j = 0; j < b.num_points(); ++j)
        d += b.hprime(i, j) * std::pow(b.node(j), p);
      const double exact = p == 0 ? 0.0 : p * std::pow(b.node(i), p - 1);
      EXPECT_NEAR(d, exact, 1e-10) << "N=" << N << " p=" << p << " i=" << i;
    }
  }
}

TEST_P(GllDegrees, HprimeRowsSumToZero) {
  // Derivative of the constant 1 is 0: rows of hprime sum to zero.
  GllBasis b(GetParam());
  for (int i = 0; i < b.num_points(); ++i) {
    double s = 0;
    for (int j = 0; j < b.num_points(); ++j) s += b.hprime(i, j);
    EXPECT_NEAR(s, 0.0, 1e-11);
  }
}

TEST_P(GllDegrees, HprimeWgllIsWeightTimesHprime) {
  GllBasis b(GetParam());
  for (int i = 0; i < b.num_points(); ++i)
    for (int j = 0; j < b.num_points(); ++j)
      EXPECT_DOUBLE_EQ(b.hprime_wgll(i, j), b.weight(i) * b.hprime(i, j));
}

TEST_P(GllDegrees, LagrangeDerivativeMatchesFiniteDifference) {
  GllBasis b(GetParam());
  const double h = 1e-6;
  for (int j = 0; j < b.num_points(); ++j) {
    for (double x : {-0.71, 0.23, 0.88}) {
      const double fd = (b.lagrange(j, x + h) - b.lagrange(j, x - h)) / (2 * h);
      EXPECT_NEAR(b.lagrange_derivative(j, x), fd, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees4to10, GllDegrees,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10));

TEST(GllBasis, RejectsInvalidDegrees) {
  EXPECT_THROW(GllBasis(0), CheckError);
  EXPECT_THROW(GllBasis(-3), CheckError);
  EXPECT_THROW(GllBasis(33), CheckError);
}

}  // namespace
}  // namespace sfg

// Clustered local time stepping (ISSUE 7), solver-level contract.
//
// Three gates, mirroring the schedule-property harness one level up:
//   1. DEGENERACY — single-cluster LTS (empty element_dt) is BIT-IDENTICAL
//      to the legacy global-dt marcher on every committed golden leg:
//      {1,2,4} threads x {Sequential, Interleaved} x {Reference, Batched}.
//   2. CORRECTNESS — a genuinely multi-cluster run (refined-box mesh with
//      a 4x stable-dt spread, >= 3 clusters) reproduces a committed golden
//      at 5e-6 * peak across threads, kernels and a 2-rank split, stays
//      close to the global-dt solution, and keeps its per-rate clocks on
//      the clock[r] == step >> r invariant.
//   3. REFUSAL — the Simulation must REFUSE to march on an unsound cluster
//      schedule: every injection tooth of mesh/coloring.hpp
//      (ClusterOptions::unsafe_*) forced through SimulationConfig::lts
//      must abort construction with the matching checker message, as must
//      the unsupported-feature combinations (sequential schedule,
//      attenuation, a base dt above an element's stable dt).
//
// Regenerating the refined-box golden (only when physics changes are
// intended):  SFG_REGEN_GOLDEN=1 ./test_lts   (see docs/testing.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mesh/cartesian.hpp"
#include "mesh/quality.hpp"
#include "runtime/exchanger.hpp"
#include "solver/simulation.hpp"

#ifndef SFG_GOLDEN_DIR
#error "SFG_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

namespace sfg {
namespace {

// ---- shared golden-file helpers (same format as test_golden_seismogram)

void write_golden(const std::string& path, const Seismogram& s,
                  const std::string& header) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << "# " << header << "\n"
      << "# time ux uy uz\n";
  out.precision(17);
  out << std::scientific;
  for (std::size_t i = 0; i < s.time.size(); ++i)
    out << s.time[i] << ' ' << s.displ[i][0] << ' ' << s.displ[i][1] << ' '
        << s.displ[i][2] << '\n';
  ASSERT_TRUE(out.good()) << "write to " << path << " failed";
}

Seismogram read_golden(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good())
      << "missing golden file " << path
      << " — run SFG_REGEN_GOLDEN=1 ./test_lts to create it";
  Seismogram s;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    double t, ux, uy, uz;
    ls >> t >> ux >> uy >> uz;
    EXPECT_FALSE(ls.fail()) << "malformed golden line: " << line;
    s.time.push_back(t);
    s.displ.push_back({ux, uy, uz});
  }
  return s;
}

void expect_matches_golden(const Seismogram& ref, const Seismogram& got,
                           const std::string& leg) {
  ASSERT_EQ(ref.time.size(), got.time.size()) << leg;
  double peak = 0.0;
  for (const auto& u : ref.displ)
    for (double c : u) peak = std::max(peak, std::abs(c));
  ASSERT_GT(peak, 0.0) << "golden reference is all zeros";
  const double tol = 5e-6 * peak;
  for (std::size_t i = 0; i < ref.time.size(); ++i) {
    ASSERT_NEAR(ref.time[i], got.time[i], 1e-12 * ref.time.back())
        << leg << ": time axis changed at sample " << i;
    for (int c = 0; c < 3; ++c)
      ASSERT_NEAR(ref.displ[i][c], got.displ[i][c], tol)
          << leg << ": sample " << i << " component " << c
          << " deviates from the committed reference; if this change is "
             "intended, regenerate per docs/testing.md";
  }
}

void expect_bit_identical(const Seismogram& a, const Seismogram& b,
                          const std::string& leg) {
  ASSERT_EQ(a.time.size(), b.time.size()) << leg;
  ASSERT_FALSE(a.time.empty()) << leg;
  for (std::size_t i = 0; i < a.time.size(); ++i) {
    ASSERT_EQ(a.time[i], b.time[i]) << leg << ": time sample " << i;
    for (int c = 0; c < 3; ++c)
      ASSERT_EQ(a.displ[i][c], b.displ[i][c])
          << leg << ": sample " << i << " comp " << c
          << " — single-cluster LTS must be bit-identical to global dt";
  }
}

// ---- leg 1: single-cluster degeneracy on the mixed fluid/solid box ----

CartesianBoxSpec mixed_box_spec() {
  CartesianBoxSpec spec;
  spec.nx = spec.ny = spec.nz = 4;
  spec.lx = spec.ly = spec.lz = 1000.0;
  return spec;
}

MaterialSample mixed_material(double, double, double z) {
  MaterialSample s;
  if (z < 250.0) {  // fluid bottom layer keeps the acoustic path in play
    s.rho = 1000.0;
    s.vp = 1500.0;
    s.vs = 0.0;
    s.q_mu = 0.0;
  } else {
    s.rho = 2500.0;
    s.vp = 3000.0;
    s.vs = 1800.0;
    s.q_mu = 80.0;
  }
  return s;
}

Seismogram run_mixed_box(bool lts, int num_threads, SolverSchedule schedule,
                         KernelVariant kernel) {
  GllBasis basis(4);
  HexMesh mesh = build_cartesian_box(mixed_box_spec(), basis);
  MaterialFields mat = assign_materials(mesh, mixed_material);
  SimulationConfig cfg;
  cfg.dt = 1.0e-3;
  cfg.num_threads = num_threads;
  cfg.schedule = schedule;
  cfg.kernel = kernel;
  cfg.lts.enabled = lts;  // empty element_dt: every element in cluster 0
  Simulation sim(mesh, basis, mat, cfg);
  EXPECT_EQ(sim.lts_num_levels(), 1);
  EXPECT_EQ(sim.lts_num_interface_points(), 0);
  PointSource src;
  src.x = 480.0;
  src.y = 520.0;
  src.z = 760.0;
  src.force = {0.0, 0.0, 1e9};
  src.stf = ricker_wavelet(10.0, 0.12);
  sim.add_source(src);
  const int rec = sim.add_receiver(520.0, 480.0, 810.0);
  sim.run(120);
  return sim.seismogram(rec);
}

TEST(LtsSingleCluster, BitIdenticalToGlobalDtAcrossScheduleMatrix) {
  struct Leg {
    int threads;
    SolverSchedule schedule;
    KernelVariant kernel;
    const char* name;
  };
  const Leg legs[] = {
      {1, SolverSchedule::Sequential, KernelVariant::Reference,
       "1T sequential reference"},
      {1, SolverSchedule::Sequential, KernelVariant::Batched,
       "1T sequential batched"},
      {1, SolverSchedule::Interleaved, KernelVariant::Reference,
       "1T interleaved reference"},
      {1, SolverSchedule::Interleaved, KernelVariant::Batched,
       "1T interleaved batched"},
      {2, SolverSchedule::Interleaved, KernelVariant::Reference,
       "2T interleaved reference"},
      {2, SolverSchedule::Interleaved, KernelVariant::Batched,
       "2T interleaved batched"},
      {4, SolverSchedule::Interleaved, KernelVariant::Reference,
       "4T interleaved reference"},
      {4, SolverSchedule::Interleaved, KernelVariant::Batched,
       "4T interleaved batched"},
  };
  for (const Leg& leg : legs) {
    const Seismogram off =
        run_mixed_box(false, leg.threads, leg.schedule, leg.kernel);
    const Seismogram on =
        run_mixed_box(true, leg.threads, leg.schedule, leg.kernel);
    expect_bit_identical(off, on, leg.name);
  }
}

// ---- the refined box: a 4x stable-dt spread -> three clusters ----
//
// Stiff fast layer at the bottom (vp = 6000), soft slow half on top
// (vp = 1500): the per-element stable dt spreads by exactly the velocity
// ratio, so with dt = 0.95 * min(stable) the element levels land on
// {0, 1, 2}. Source and receiver sit in the SLOW region — the signal the
// golden pins crosses both cluster interfaces on its way up.

CartesianBoxSpec refined_box_spec() {
  CartesianBoxSpec spec;
  spec.nx = spec.ny = 4;
  spec.nz = 8;
  spec.lx = spec.ly = 1000.0;
  spec.lz = 2000.0;
  return spec;
}

MaterialSample refined_material(double, double, double z) {
  MaterialSample s;
  if (z < 500.0) {  // stiff basement: the fast (level-0) cluster
    s.rho = 2700.0;
    s.vp = 6000.0;
    s.vs = 3600.0;
  } else {  // soft overburden: marches 4x slower
    s.rho = 2000.0;
    s.vp = 1500.0;
    s.vs = 900.0;
  }
  s.q_mu = 0.0;
  return s;
}

constexpr int kRefinedSteps = 200;
constexpr int kRefinedRecordEvery = 4;  // = 2^(max level): consistent samples

PointSource refined_source() {
  PointSource src;
  src.x = 480.0;
  src.y = 520.0;
  src.z = 1460.0;  // slow region
  src.force = {0.0, 0.0, 1e9};
  src.stf = ricker_wavelet(4.0, 0.3);
  return src;
}

constexpr double kRefRecX = 530.0, kRefRecY = 470.0, kRefRecZ = 1700.0;

/// The base step shared by every refined-box leg: 0.95 * the global
/// minimum per-element stable dt (deterministic — derived from the serial
/// mesh, identical for the slice legs).
double refined_base_dt() {
  GllBasis basis(4);
  HexMesh mesh = build_cartesian_box(refined_box_spec(), basis);
  MaterialFields mat = assign_materials(mesh, refined_material);
  const std::vector<double> edt = element_stable_dt(mesh, mat.vp);
  return 0.95 * *std::min_element(edt.begin(), edt.end());
}

struct RefinedRun {
  Seismogram seis;
  int num_levels = 0;
  int ninterp = 0;
  std::vector<std::int64_t> clock;
};

RefinedRun run_refined_box(bool lts, int num_threads, KernelVariant kernel,
                           int nsteps = kRefinedSteps,
                           SolverSchedule schedule = SolverSchedule::Auto) {
  GllBasis basis(4);
  HexMesh mesh = build_cartesian_box(refined_box_spec(), basis);
  MaterialFields mat = assign_materials(mesh, refined_material);
  SimulationConfig cfg;
  cfg.dt = refined_base_dt();
  cfg.num_threads = num_threads;
  cfg.schedule = schedule;
  cfg.kernel = kernel;
  cfg.record_every = kRefinedRecordEvery;
  if (lts) {
    cfg.lts.enabled = true;
    cfg.lts.element_dt = element_stable_dt(mesh, mat.vp);
  }
  Simulation sim(mesh, basis, mat, cfg);
  sim.add_source(refined_source());
  const int rec = sim.add_receiver(kRefRecX, kRefRecY, kRefRecZ);
  sim.run(nsteps);
  RefinedRun out;
  out.seis = sim.seismogram(rec);
  out.num_levels = sim.lts_num_levels();
  out.ninterp = sim.lts_num_interface_points();
  out.clock = sim.lts_clock();
  return out;
}

/// Two-rank x-split of the refined box: both ranks carry all three
/// clusters and the cluster smoothing/interface machinery runs through
/// assemble_min across the slice boundary.
Seismogram run_refined_box_two_ranks(int num_threads) {
  const double dt = refined_base_dt();
  Seismogram out;
  smpi::run_ranks(2, [&](smpi::Communicator& comm) {
    GllBasis basis(4);
    CartesianSlice slice = build_cartesian_slice(
        refined_box_spec(), basis, 2, 1, 1, comm.rank(), 0, 0);
    std::vector<smpi::PointCandidate> cands;
    for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
      cands.push_back({slice.boundary_keys[n], slice.boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    MaterialFields mat = assign_materials(slice.mesh, refined_material);
    SimulationConfig cfg;
    cfg.dt = dt;
    cfg.num_threads = num_threads;
    cfg.record_every = kRefinedRecordEvery;
    cfg.lts.enabled = true;
    cfg.lts.element_dt = element_stable_dt(slice.mesh, mat.vp);
    Simulation sim(slice.mesh, basis, mat, cfg, &comm, &ex);
    EXPECT_EQ(sim.lts_num_levels(), 3);
    sim.add_source_global(refined_source());
    const int rec = sim.add_receiver_global(kRefRecX, kRefRecY, kRefRecZ);
    sim.run(kRefinedSteps);
    if (rec >= 0) out = sim.seismogram(rec);
  });
  EXPECT_EQ(out.time.size(),
            static_cast<std::size_t>(kRefinedSteps / kRefinedRecordEvery));
  return out;
}

std::string refined_golden_path() {
  return std::string(SFG_GOLDEN_DIR) + "/box_refined_lts_seismogram.txt";
}

TEST(LtsMultiCluster, MatchesCommittedGoldenAcrossThreadsKernelsRanks) {
  const RefinedRun ref_run =
      run_refined_box(true, 1, KernelVariant::Reference);
  ASSERT_EQ(ref_run.num_levels, 3)
      << "the refined box must produce three dt clusters";
  ASSERT_GT(ref_run.ninterp, 0);
  ASSERT_EQ(ref_run.seis.time.size(),
            static_cast<std::size_t>(kRefinedSteps / kRefinedRecordEvery));

  if (std::getenv("SFG_REGEN_GOLDEN") != nullptr) {
    write_golden(refined_golden_path(), ref_run.seis,
                 "golden seismogram: 4x4x8 refined box, 3 LTS clusters, " +
                     std::to_string(kRefinedSteps) +
                     " steps, dt = 0.95 * min stable, record every " +
                     std::to_string(kRefinedRecordEvery));
    GTEST_SKIP() << "regenerated " << refined_golden_path()
                 << "; rerun without SFG_REGEN_GOLDEN to verify";
  }

  const Seismogram ref = read_golden(refined_golden_path());
  expect_matches_golden(ref, ref_run.seis, "refined 1T reference");
  expect_matches_golden(
      ref, run_refined_box(true, 1, KernelVariant::Batched).seis,
      "refined 1T batched");
  expect_matches_golden(
      ref, run_refined_box(true, 2, KernelVariant::Reference).seis,
      "refined 2T reference");
  expect_matches_golden(
      ref, run_refined_box(true, 4, KernelVariant::Batched).seis,
      "refined 4T batched");
  expect_matches_golden(ref, run_refined_box_two_ranks(2),
                        "refined 2-rank 2T");
}

TEST(LtsMultiCluster, ThreadCountsAreBitIdentical) {
  // The per-point summation order is (rate, color) lexicographic and fixed
  // at schedule build, so — as with the plain interleaved schedule — every
  // thread count produces the SAME bits, not merely close ones.
  const Seismogram t1 = run_refined_box(true, 1, KernelVariant::Reference,
                                        80, SolverSchedule::Interleaved)
                            .seis;
  const Seismogram t2 = run_refined_box(true, 2, KernelVariant::Reference,
                                        80, SolverSchedule::Interleaved)
                            .seis;
  const Seismogram t4 = run_refined_box(true, 4, KernelVariant::Reference,
                                        80, SolverSchedule::Interleaved)
                            .seis;
  expect_bit_identical(t1, t2, "multi-cluster 1T vs 2T");
  expect_bit_identical(t1, t4, "multi-cluster 1T vs 4T");
}

TEST(LtsMultiCluster, StaysCloseToGlobalDtSolution) {
  // Accuracy, not just determinism: the clustered march with interface
  // interpolation must track the global-dt solution of the SAME problem.
  // The comparison is relative L2 over the whole record — interpolation
  // is second-order in the slow strides, so a few percent covers it with
  // headroom while any dropped/garbled interface blows past it.
  const Seismogram lts = run_refined_box(true, 1, KernelVariant::Reference)
                             .seis;
  const Seismogram glob =
      run_refined_box(false, 1, KernelVariant::Reference).seis;
  ASSERT_EQ(lts.time.size(), glob.time.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < lts.time.size(); ++i)
    for (int c = 0; c < 3; ++c) {
      const double d = lts.displ[i][c] - glob.displ[i][c];
      num += d * d;
      den += glob.displ[i][c] * glob.displ[i][c];
    }
  ASSERT_GT(den, 0.0);
  const double rel = std::sqrt(num / den);
  EXPECT_LT(rel, 0.05) << "clustered LTS drifted " << rel
                       << " relative L2 from the global-dt solution";
}

TEST(LtsMultiCluster, PerRateClocksTrackTheStepIndex) {
  const int nsteps = 37;  // deliberately mid-stride for levels 1 and 2
  const RefinedRun r =
      run_refined_box(true, 1, KernelVariant::Reference, nsteps);
  ASSERT_EQ(r.num_levels, 3);
  ASSERT_EQ(r.clock.size(), 3u);
  for (int k = 0; k < 3; ++k)
    EXPECT_EQ(r.clock[static_cast<std::size_t>(k)], nsteps >> k)
        << "clock[" << k << "] must count completed rate-" << k
        << " strides";
}

// ---- leg 3: refusal of unsound cluster schedules and configs ----

SimulationConfig refined_lts_config(const HexMesh& mesh,
                                    const MaterialFields& mat) {
  SimulationConfig cfg;
  cfg.dt = refined_base_dt();
  cfg.lts.enabled = true;
  cfg.lts.element_dt = element_stable_dt(mesh, mat.vp);
  return cfg;
}

class LtsRefusal : public ::testing::Test {
 protected:
  void SetUp() override {
    basis_ = std::make_unique<GllBasis>(4);
    mesh_ = build_cartesian_box(refined_box_spec(), *basis_);
    mat_ = assign_materials(mesh_, refined_material);
  }
  void expect_ctor_throws(const SimulationConfig& cfg,
                          const std::string& needle) {
    try {
      Simulation sim(mesh_, *basis_, mat_, cfg);
      FAIL() << "construction accepted an unsound configuration (wanted: "
             << needle << ")";
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "wrong refusal message: " << e.what();
    }
  }
  std::unique_ptr<GllBasis> basis_;
  HexMesh mesh_;
  MaterialFields mat_;
};

TEST_F(LtsRefusal, DroppedInterpolationPointsAreCaught) {
  SimulationConfig cfg = refined_lts_config(mesh_, mat_);
  cfg.lts.cluster.unsafe_drop_interp_points = true;
  expect_ctor_throws(cfg, "skipped interface interpolation");
}

TEST_F(LtsRefusal, MutatedClusterAssignmentsAreCaught) {
  SimulationConfig cfg = refined_lts_config(mesh_, mat_);
  cfg.lts.cluster.unsafe_rate_from_own_level = true;
  expect_ctor_throws(cfg, "mutated assignment");
}

TEST_F(LtsRefusal, CrossClusterMergesAreCaught) {
  SimulationConfig cfg = refined_lts_config(mesh_, mat_);
  cfg.lts.cluster.unsafe_merge_slowest_rates = true;
  expect_ctor_throws(cfg, "cross-cluster merge");
}

TEST_F(LtsRefusal, SequentialScheduleIsRefused) {
  SimulationConfig cfg = refined_lts_config(mesh_, mat_);
  cfg.schedule = SolverSchedule::Sequential;
  expect_ctor_throws(cfg, "multi-cluster LTS requires a colored schedule");
}

TEST_F(LtsRefusal, AttenuationIsRefused) {
  SimulationConfig cfg = refined_lts_config(mesh_, mat_);
  const SlsSeries sls = fit_constant_q(80.0, 1.0, 20.0, 3);
  for (auto& q : mat_.q_mu) q = 80.0f;
  prepare_attenuation(mat_, sls);
  cfg.attenuation = true;
  cfg.sls = sls;
  expect_ctor_throws(cfg, "does not support attenuation");
}

TEST_F(LtsRefusal, BaseStepAboveAnElementStableDtIsRefused) {
  SimulationConfig cfg = refined_lts_config(mesh_, mat_);
  cfg.dt = cfg.lts.element_dt[0] * 2.0;  // dt above some stable dt
  expect_ctor_throws(cfg, "the base step must be the global minimum");
}

}  // namespace
}  // namespace sfg

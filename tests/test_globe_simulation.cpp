// End-to-end global simulations on the cubed-sphere PREM mesh: the full
// SPECFEM3D_GLOBE-equivalent stack (mesher -> materials -> solid/fluid
// solver -> slice decomposition -> assembly) exercised exactly as the
// paper's production runs, at miniature resolution.

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "mesh/quality.hpp"
#include "runtime/exchanger.hpp"
#include "solver/simulation.hpp"
#include "sphere/mesher.hpp"

namespace sfg {
namespace {

/// A deep-focus event (Argentina-like: the paper's §6 scenario is a deep
/// South-American earthquake) at 600 km depth under the +z chunk.
PointSource deep_quake(double f0, double t0) {
  PointSource src;
  src.x = 0.0;
  src.y = 0.0;
  src.z = kEarthRadiusM - 600e3;
  src.moment = {1e20, -5e19, -5e19, 3e19, 0.0, 2e19};
  src.stf = ricker_wavelet(f0, t0);
  return src;
}

struct GlobeRun {
  Seismogram seis;
  double energy_mid = 0.0;
  double energy_end = 0.0;
};

/// Serial PREM globe, run to fixed *simulated* times: the wavelet
/// (f0 = 1/60 Hz, t0 = 120 s) is over by ~270 s, energies sampled at
/// 320 s and 480 s must then be stable.
GlobeRun run_serial_globe(int nex, bool attenuation) {
  PremModel prem;
  GlobeMeshSpec spec;
  spec.nex_xi = nex;
  spec.nchunks = 6;
  spec.model = &prem;
  GllBasis basis(4);
  GlobeSlice globe = build_globe_serial(spec, basis);

  auto q = analyze_mesh_quality(globe.mesh, globe.materials.vp,
                                globe.materials.vs);
  SimulationConfig cfg;
  cfg.dt = 0.8 * q.dt_stable;
  if (attenuation) {
    SlsSeries sls = fit_constant_q(300.0, 1.0 / 500.0, 1.0 / 20.0, 3);
    prepare_attenuation(globe.materials, sls);
    cfg.attenuation = true;
    cfg.sls = sls;
  }
  Simulation sim(globe.mesh, basis, globe.materials, cfg);
  sim.add_source(deep_quake(1.0 / 60.0, 120.0));
  const int rec = sim.add_receiver(0.0, kEarthRadiusM * std::sin(0.7),
                                   kEarthRadiusM * std::cos(0.7));
  GlobeRun out;
  const int n_mid = static_cast<int>(320.0 / cfg.dt);
  const int n_end = static_cast<int>(480.0 / cfg.dt);
  sim.run(n_mid);
  out.energy_mid = sim.compute_energy().total();
  sim.run(n_end - n_mid);
  out.energy_end = sim.compute_energy().total();
  out.seis = sim.seismogram(rec);
  return out;
}

TEST(GlobeSimulation, SerialPremRunIsStableAndRecordsMotion) {
  const GlobeRun run = run_serial_globe(6, false);
  ASSERT_FALSE(run.seis.displ.empty());
  double peak = 0.0;
  for (const auto& u : run.seis.displ)
    for (double c : u) peak = std::max(peak, std::abs(c));
  EXPECT_GT(peak, 0.0);
  EXPECT_TRUE(std::isfinite(run.energy_end));
  EXPECT_GT(run.energy_end, 0.0);
  // Source fully finished before the mid snapshot: total energy of the
  // closed elastic system must be conserved between 320 s and 480 s.
  EXPECT_NEAR(run.energy_end / run.energy_mid, 1.0, 0.05);
}

TEST(GlobeSimulation, AttenuationReducesLateEnergy) {
  const GlobeRun elastic = run_serial_globe(6, false);
  const GlobeRun anelastic = run_serial_globe(6, true);
  EXPECT_LT(anelastic.energy_end, elastic.energy_end);
  // And the anelastic run itself dissipates between the two snapshots.
  EXPECT_LT(anelastic.energy_end, anelastic.energy_mid);
}

TEST(GlobeSimulation, SixRankDecompositionMatchesSerial) {
  const int nex = 8;
  const int nsteps = 130;
  // Shallow fast source + receiver directly above it: a real signal
  // arrives well within the short run.
  PointSource src;
  src.x = 0.0;
  src.y = 0.0;
  src.z = kEarthRadiusM - 300e3;
  src.moment = {1e20, -5e19, -5e19, 3e19, 0.0, 2e19};
  src.stf = ricker_wavelet(1.0 / 40.0, 80.0);
  const double ry = kEarthRadiusM * std::sin(0.05),
               rz = kEarthRadiusM * std::cos(0.05);

  PremModel prem;
  GlobeMeshSpec spec;
  spec.nex_xi = nex;
  spec.nchunks = 6;
  spec.model = &prem;
  GllBasis basis(4);

  GlobeSlice globe = build_globe_serial(spec, basis);
  auto q = analyze_mesh_quality(globe.mesh, globe.materials.vp,
                                globe.materials.vs);
  const double dt = 0.8 * q.dt_stable;
  SimulationConfig cfg;
  cfg.dt = dt;
  Simulation serial(globe.mesh, basis, globe.materials, cfg);
  serial.add_source(src);
  const int rec = serial.add_receiver(0.0, ry, rz);
  serial.run(nsteps);
  const Seismogram& ref = serial.seismogram(rec);
  const double ser_energy = serial.compute_energy().total();

  Seismogram par;
  double par_energy = -1.0;
  smpi::run_ranks(6, [&](smpi::Communicator& comm) {
    GllBasis b(4);
    GlobeSlice slice = build_globe_slice(spec, b, comm.rank());
    std::vector<smpi::PointCandidate> cands;
    for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
      cands.push_back({slice.boundary_keys[n], slice.boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    SimulationConfig c;
    c.dt = dt;
    Simulation sim(slice.mesh, b, slice.materials, c, &comm, &ex);
    int r = -1;
    if (comm.rank() == 4) {  // +z chunk owns source and receiver
      sim.add_source(src);
      r = sim.add_receiver(0.0, ry, rz);
    }
    sim.run(nsteps);
    const double e = sim.compute_energy().total();
    if (comm.rank() == 4) {
      par = sim.seismogram(r);
      par_energy = e;
    }
  });

  ASSERT_EQ(par.displ.size(), ref.displ.size());
  double peak = 0.0;
  for (const auto& u : ref.displ)
    for (double c : u) peak = std::max(peak, std::abs(c));
  ASSERT_GT(peak, 1e-20);
  for (std::size_t i = 0; i < ref.displ.size(); ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(par.displ[i][c], ref.displ[i][c], 1e-4 * peak)
          << "sample " << i;
  EXPECT_NEAR(par_energy / ser_energy, 1.0, 1e-3);
}

TEST(GlobeSimulation, TwentyFourRankDecompositionMatchesSerial) {
  // 6 chunks x 2^2 slices: chunk-internal AND cross-chunk interfaces.
  const int nex = 8;
  const int nsteps = 110;

  PremModel prem;
  GlobeMeshSpec spec;
  spec.nex_xi = nex;
  spec.nproc_xi = 2;
  spec.nchunks = 6;
  spec.model = &prem;
  GllBasis basis(4);

  // Shallow source strictly inside ONE slice of the +z chunk: the pole
  // and the chunk mid-lines are slice boundaries for nproc = 2, so the
  // direction must be off-axis in BOTH face coordinates.
  PointSource src;
  const double r_src = kEarthRadiusM - 300e3;
  const double dn = std::sqrt(0.31 * 0.31 + 0.27 * 0.27 + 1.0);
  src.x = r_src * 0.31 / dn;
  src.y = r_src * 0.27 / dn;
  src.z = r_src * 1.0 / dn;
  src.moment = {1e20, -5e19, -5e19, 3e19, 0.0, 2e19};
  src.stf = ricker_wavelet(1.0 / 40.0, 80.0);
  const double rn = std::sqrt(0.34 * 0.34 + 0.29 * 0.29 + 1.0);
  const double rx = kEarthRadiusM * 0.34 / rn,
               ry2 = kEarthRadiusM * 0.29 / rn,
               rz = kEarthRadiusM * 1.0 / rn;

  GlobeSlice globe = build_globe_serial(spec, basis);
  auto q = analyze_mesh_quality(globe.mesh, globe.materials.vp,
                                globe.materials.vs);
  const double dt = 0.8 * q.dt_stable;
  SimulationConfig cfg;
  cfg.dt = dt;
  Simulation serial(globe.mesh, basis, globe.materials, cfg);
  serial.add_source(src);
  const int rec = serial.add_receiver(rx, ry2, rz);
  serial.run(nsteps);
  const Seismogram& ref = serial.seismogram(rec);

  Seismogram par;
  smpi::run_ranks(globe_rank_count(spec), [&](smpi::Communicator& comm) {
    GllBasis b(4);
    GlobeSlice slice = build_globe_slice(spec, b, comm.rank());
    std::vector<smpi::PointCandidate> cands;
    for (std::size_t n = 0; n < slice.boundary_keys.size(); ++n)
      cands.push_back({slice.boundary_keys[n], slice.boundary_points[n]});
    smpi::Exchanger ex = smpi::Exchanger::build(comm, cands);
    SimulationConfig c;
    c.dt = dt;
    Simulation sim(slice.mesh, b, slice.materials, c, &comm, &ex);

    const int chunk = comm.rank() / 4;
    int r = -1;
    if (chunk == 4) {
      // Claim source/receiver only if they locate inside this slice.
      if (locate_point_exact(slice.mesh, b, src.x, src.y, src.z).error_m <
          1.0)
        sim.add_source(src);
      if (locate_point_exact(slice.mesh, b, rx, ry2, rz).error_m < 1.0)
        r = sim.add_receiver(rx, ry2, rz);
    }
    sim.run(nsteps);
    if (r >= 0) par = sim.seismogram(r);
  });

  ASSERT_EQ(par.displ.size(), ref.displ.size());
  double peak = 0.0;
  for (const auto& u : ref.displ)
    for (double c : u) peak = std::max(peak, std::abs(c));
  ASSERT_GT(peak, 1e-20);
  for (std::size_t i = 0; i < ref.displ.size(); ++i)
    for (int c = 0; c < 3; ++c)
      EXPECT_NEAR(par.displ[i][c], ref.displ[i][c], 1e-4 * peak)
          << "sample " << i;
}

TEST(GlobeSimulation, RegionalChunkWithAbsorbingBoundaries) {
  // 1-chunk regional mode: waves leaving through the absorbing sides and
  // bottom must not reflect back with significant energy.
  PremModel prem;
  GlobeMeshSpec spec;
  spec.nex_xi = 8;
  spec.nchunks = 1;
  spec.r_min = 0.82 * kEarthRadiusM;
  spec.model = &prem;
  GllBasis basis(4);
  GlobeSlice region = build_globe_serial(spec, basis);
  ASSERT_FALSE(region.absorbing_faces.empty());

  auto q = analyze_mesh_quality(region.mesh, region.materials.vp,
                                region.materials.vs);
  SimulationConfig cfg;
  cfg.dt = 0.8 * q.dt_stable;
  cfg.absorbing_faces = region.absorbing_faces;
  Simulation sim(region.mesh, basis, region.materials, cfg);

  PointSource src;
  src.x = kEarthRadiusM - 100e3;  // under the +x chunk centre
  src.y = 0.0;
  src.z = 0.0;
  src.force = {1e15, 0.0, 0.0};
  src.stf = ricker_wavelet(1.0 / 40.0, 80.0);
  sim.add_source(src);

  sim.run(200);
  const double e_mid = sim.compute_energy().total();
  ASSERT_GT(e_mid, 0.0);
  sim.run(900);
  const double e_end = sim.compute_energy().total();
  EXPECT_LT(e_end, 0.5 * e_mid);  // most energy has left the region
}

}  // namespace
}  // namespace sfg

// Load-generator determinism tests (ISSUE 9). The committed
// BENCH_loadtest.json is only trustworthy if the workload is a pure
// function of the seed: same seed => the identical request stream, bit
// for bit (arrival times included), on any machine, any run. These tests
// pin that contract plus the zipf/Poisson shape and the percentile
// helper the bench reports are built from.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "service/loadgen.hpp"

namespace sfg::service {
namespace {

std::string temp_dir(const std::string& name) {
  static std::atomic<int> counter{0};
  const std::string dir = ::testing::TempDir() + "sfg_loadgen_" + name +
                          "_" + std::to_string(::getpid()) + "_" +
                          std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

LoadgenConfig small_config(std::uint64_t seed) {
  LoadgenConfig c;
  c.seed = seed;
  c.num_requests = 300;
  c.arrivals_per_second = 40.0;
  c.num_events = 16;
  c.zipf_s = 1.1;
  c.base = loadgen_base_request();
  return c;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

TEST(Loadgen, SameSeedReplaysBitIdentically) {
  const LoadgenConfig config = small_config(17);
  const std::vector<TimedRequest> a = generate_workload(config);
  const std::vector<TimedRequest> b = generate_workload(config);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 300u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_bits(a[i].arrival_s, b[i].arrival_s)) << i;
    EXPECT_EQ(a[i].event, b[i].event) << i;
    EXPECT_EQ(a[i].request.priority, b[i].request.priority) << i;
    EXPECT_EQ(request_key(a[i].request), request_key(b[i].request)) << i;
    EXPECT_TRUE(same_bits(a[i].request.source.x, b[i].request.source.x))
        << i;
  }
}

TEST(Loadgen, DifferentSeedsProduceDifferentStreams) {
  const std::vector<TimedRequest> a = generate_workload(small_config(17));
  const std::vector<TimedRequest> b = generate_workload(small_config(18));
  ASSERT_EQ(a.size(), b.size());
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].event != b[i].event ||
        request_key(a[i].request) != request_key(b[i].request))
      ++differing;
  EXPECT_GT(differing, static_cast<int>(a.size()) / 2);
}

TEST(Loadgen, SameEventAlwaysCarriesTheSameContentKey) {
  const std::vector<TimedRequest> wl = generate_workload(small_config(5));
  std::map<int, RequestKey> key_of_event;
  for (const TimedRequest& t : wl) {
    auto [it, inserted] = key_of_event.emplace(t.event,
                                               request_key(t.request));
    if (!inserted) EXPECT_EQ(it->second, request_key(t.request));
  }
  // ... and distinct events carry distinct keys (jittered sources).
  std::set<RequestKey> distinct;
  for (const auto& [event, key] : key_of_event) distinct.insert(key);
  EXPECT_EQ(distinct.size(), key_of_event.size());
}

TEST(Loadgen, ArrivalsAreIncreasingAtRoughlyTheRequestedRate) {
  const LoadgenConfig config = small_config(29);
  const std::vector<TimedRequest> wl = generate_workload(config);
  double prev = 0.0;
  for (const TimedRequest& t : wl) {
    EXPECT_GT(t.arrival_s, prev);
    prev = t.arrival_s;
  }
  // 300 arrivals at 40/s should span ~7.5 workload seconds; the Poisson
  // spread over 300 samples stays well inside a factor of 1.5.
  const double expected_s = static_cast<double>(config.num_requests) /
                            config.arrivals_per_second;
  EXPECT_GT(prev, expected_s / 1.5);
  EXPECT_LT(prev, expected_s * 1.5);
}

TEST(Loadgen, ZipfHeadDominatesTheTail) {
  const std::vector<TimedRequest> wl = generate_workload(small_config(3));
  std::map<int, int> count;
  for (const TimedRequest& t : wl) {
    ASSERT_GE(t.event, 0);
    ASSERT_LT(t.event, 16);
    ++count[t.event];
  }
  // With s = 1.1 over 16 events, p(0) ~ 0.29 and p(k >= 4) < 0.05 each:
  // the head must beat every tail event by a wide margin at n = 300.
  for (int k = 4; k < 16; ++k) EXPECT_GT(count[0], count[k]) << "k=" << k;
}

TEST(Loadgen, PercentileIsNearestRank) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
}

TEST(Loadgen, RunWorkloadExecutesEachDistinctKeyExactlyOnce) {
  LoadgenConfig config = small_config(11);
  config.num_requests = 50;
  config.num_events = 6;
  const std::vector<TimedRequest> wl = generate_workload(config);

  FrontendConfig front;
  front.num_shards = 2;
  front.workers_per_shard = 2;
  front.work_dir = temp_dir("run");
  ShardedFrontend frontend(front);
  const LoadTestReport report =
      run_workload(frontend, wl, /*time_scale=*/0.0);
  frontend.shutdown();

  EXPECT_EQ(report.submitted, 50u);
  EXPECT_EQ(report.completed, 50u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.rejected, 0u);
  // The deterministic-coalescing invariant the bench gate stands on:
  // store-check + in-flight-insert are atomic, so each distinct content
  // key is computed EXACTLY once no matter the shard count or timing.
  EXPECT_EQ(report.executed, report.distinct_keys);
  EXPECT_EQ(report.cache_hits, report.submitted - report.executed);
  EXPECT_DOUBLE_EQ(
      report.cache_hit_rate,
      static_cast<double>(report.cache_hits) /
          static_cast<double>(report.completed));
  EXPECT_GT(report.p99_ms, 0.0);
  EXPECT_GE(report.p99_ms, report.p50_ms);
  EXPECT_GT(report.jobs_per_minute, 0.0);
}

}  // namespace
}  // namespace sfg::service

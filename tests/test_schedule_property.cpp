// Seeded property-based harness for the locality-aware element schedule
// (ISSUE 4, mesh/coloring.hpp second-level pass). Across ~50 randomized
// meshes (varying box dimensions, GLL orders, fluid/solid-style subset
// splits, slot counts and block sizes, plus small globe shells) it asserts
// the three schedule invariants INDEPENDENTLY of check_element_schedule:
//
//  1. every input element is scheduled exactly once;
//  2. no two concurrently-runnable work units (units of one round) share
//     a GLL point — interleaved-pair footprints are disjoint per slot;
//  3. per-point contributions arrive in strictly ascending color order
//     (the bit-identity property).
//
// It then proves the harness has teeth: an injected builder bug (the
// TEST-ONLY unsafe_skip_straddler_demotion option) and a mutated schedule
// must both be flagged by check_element_schedule.
//
// The clustered-LTS section (ISSUE 7) generalizes the same program to
// cluster schedules on refined-region meshes (~4x stable-dt spread, >= 3
// clusters): the three invariants are re-proven per rate bucket, plus
// cluster invariant C — every point collects a contribution from every
// touching element exactly once per cluster round, and any point gathered
// mid-stride is served by the interface interpolation set. Three more
// injection teeth (unsafe_rate_from_own_level, unsafe_merge_slowest_rates,
// unsafe_drop_interp_points) prove the cluster checkers catch mutated
// assignments, cross-cluster merges and skipped interpolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/constants.hpp"
#include "common/rng.hpp"
#include "mesh/cartesian.hpp"
#include "mesh/coloring.hpp"
#include "mesh/rcm.hpp"
#include "model/earth_model.hpp"
#include "sphere/mesher.hpp"

namespace sfg {
namespace {

// ---- independent invariant checks (deliberately NOT reusing
// check_element_schedule, which is itself under test) ----

void expect_scheduled_exactly_once(const HexMesh& mesh,
                                   const std::vector<int>& elements,
                                   const ElementSchedule& s,
                                   const std::string& ctx) {
  std::vector<int> count(static_cast<std::size_t>(mesh.nspec), 0);
  for (int e : s.items) {
    ASSERT_GE(e, 0) << ctx;
    ASSERT_LT(e, mesh.nspec) << ctx;
    ++count[static_cast<std::size_t>(e)];
  }
  std::vector<char> in_input(static_cast<std::size_t>(mesh.nspec), 0);
  for (int e : elements) in_input[static_cast<std::size_t>(e)] = 1;
  for (int e = 0; e < mesh.nspec; ++e) {
    EXPECT_EQ(count[static_cast<std::size_t>(e)],
              in_input[static_cast<std::size_t>(e)] ? 1 : 0)
        << ctx << ": element " << e;
  }
  // Units must also tile the item list: total unit coverage == items.
  EXPECT_EQ(s.work.total_items(), s.items.size()) << ctx;
}

void expect_round_footprints_disjoint(const HexMesh& mesh,
                                      const ElementSchedule& s,
                                      const std::string& ctx) {
  const int n3 = mesh.ngll3();
  const auto ng = static_cast<std::size_t>(mesh.nglob);
  // Stamp (round, unit) per point; a re-visit in the same round from a
  // different unit is a race between concurrently-runnable units.
  std::vector<long> pt_round(ng, -1);
  std::vector<std::size_t> pt_unit(ng, 0);
  for (std::size_t r = 0; r < s.work.rounds.size(); ++r) {
    const auto& units = s.work.rounds[r].units;
    for (std::size_t u = 0; u < units.size(); ++u) {
      for (std::size_t i = units[u].begin; i < units[u].end; ++i) {
        const int e = s.items[i];
        const int* ib = mesh.ibool.data() + mesh.local_offset(e);
        for (int p = 0; p < n3; ++p) {
          const auto g = static_cast<std::size_t>(ib[p]);
          if (pt_round[g] == static_cast<long>(r)) {
            ASSERT_EQ(pt_unit[g], u)
                << ctx << ": round " << r << " units " << pt_unit[g]
                << " and " << u << " share point " << g;
          }
          pt_round[g] = static_cast<long>(r);
          pt_unit[g] = u;
        }
      }
    }
  }
}

void expect_ascending_color_per_point(const HexMesh& mesh,
                                      const std::vector<int>& color_of,
                                      const ElementSchedule& s,
                                      const std::string& ctx) {
  const int n3 = mesh.ngll3();
  std::vector<int> last(static_cast<std::size_t>(mesh.nglob), -1);
  // Rounds in order; within a round the per-point order is well defined
  // because footprints are unit-disjoint (checked separately).
  for (const auto& round : s.work.rounds) {
    for (const auto& unit : round.units) {
      for (std::size_t i = unit.begin; i < unit.end; ++i) {
        const int e = s.items[i];
        const int c = color_of[static_cast<std::size_t>(e)];
        const int* ib = mesh.ibool.data() + mesh.local_offset(e);
        for (int p = 0; p < n3; ++p) {
          const auto g = static_cast<std::size_t>(ib[p]);
          ASSERT_GT(c, last[g])
              << ctx << ": point " << g << " receives color " << c
              << " after color " << last[g];
          last[g] = c;
        }
      }
    }
  }
}

void expect_residual_accounting(const ElementSchedule& s,
                                const std::string& ctx) {
  std::size_t residual_items = 0;
  for (const auto& round : s.work.rounds)
    if (round.tag == kSchedRoundResidual)
      for (const auto& u : round.units) residual_items += u.size();
  EXPECT_EQ(residual_items, static_cast<std::size_t>(s.residual_elements))
      << ctx;
}

struct RandomCase {
  HexMesh mesh;
  std::vector<int> color_of;
  std::vector<int> subset_a;  ///< "solid"-style subset, shuffled order
  std::vector<int> subset_b;  ///< "fluid"-style complement
  ScheduleOptions opts;
  std::string ctx;
};

// Build one randomized case: a box mesh with random dimensions and GLL
// order, a coloring computed in a shuffled processing order, a random
// two-way subset split (mimicking fluid/solid element lists) and random
// schedule options.
RandomCase make_random_case(SplitMix64& rng, int index) {
  RandomCase rc;
  CartesianBoxSpec spec;
  spec.nx = 1 + static_cast<int>(rng.next_below(4));
  spec.ny = 1 + static_cast<int>(rng.next_below(4));
  spec.nz = 1 + static_cast<int>(rng.next_below(5));
  spec.lx = spec.ly = spec.lz = 1000.0;
  const int ngll = 2 + static_cast<int>(rng.next_below(4));  // 2..5
  GllBasis basis(ngll);
  rc.mesh = build_cartesian_box(spec, basis);

  // Shuffled processing order (Fisher-Yates on SplitMix64).
  std::vector<int> order(static_cast<std::size_t>(rc.mesh.nspec));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);
  rc.color_of = greedy_element_coloring(element_adjacency(rc.mesh), order);

  // Random subset split: roughly `frac` of elements to subset A, in the
  // shuffled order (subsets of the solver are ordered lists, not sorted).
  const double frac = rng.uniform(0.2, 1.0);
  for (int e : order)
    (rng.next_double() < frac ? rc.subset_a : rc.subset_b).push_back(e);

  rc.opts.num_slots = 1 + static_cast<int>(rng.next_below(8));
  rc.opts.interleave_pairs = true;
  const int block_choices[] = {1, 2, 4, 8, 64};
  rc.opts.block_size = block_choices[rng.next_below(5)];
  if (rng.next_double() < 0.5) {
    const auto rcm = reverse_cuthill_mckee(element_adjacency(rc.mesh));
    rc.opts.proximity_rank.assign(
        static_cast<std::size_t>(rc.mesh.nspec), 0);
    for (std::size_t pos = 0; pos < rcm.size(); ++pos)
      rc.opts.proximity_rank[static_cast<std::size_t>(rcm[pos])] =
          static_cast<int>(pos);
  }

  rc.ctx = "case " + std::to_string(index) + " (" +
           std::to_string(spec.nx) + "x" + std::to_string(spec.ny) + "x" +
           std::to_string(spec.nz) + " ngll " + std::to_string(ngll) +
           " slots " + std::to_string(rc.opts.num_slots) + " block " +
           std::to_string(rc.opts.block_size) + ")";
  return rc;
}

void check_all_invariants(const HexMesh& mesh,
                          const std::vector<int>& color_of,
                          const std::vector<int>& elements,
                          const ElementSchedule& s, const std::string& ctx) {
  expect_scheduled_exactly_once(mesh, elements, s, ctx);
  expect_round_footprints_disjoint(mesh, s, ctx);
  expect_ascending_color_per_point(mesh, color_of, s, ctx);
  expect_residual_accounting(s, ctx);
  // The production validator must agree with the independent checks.
  EXPECT_EQ(check_element_schedule(mesh, elements, color_of, s),
            std::string())
      << ctx;
}

TEST(ScheduleProperty, RandomizedMeshesSatisfyAllInvariants) {
  SplitMix64 rng(0x5eed5eedULL);
  int interleaved_rounds_seen = 0;
  int residuals_seen = 0;
  for (int i = 0; i < 48; ++i) {
    RandomCase rc = make_random_case(rng, i);
    for (const std::vector<int>* subset : {&rc.subset_a, &rc.subset_b}) {
      const ElementSchedule s =
          build_element_schedule(rc.mesh, *subset, rc.color_of, rc.opts);
      check_all_invariants(rc.mesh, rc.color_of, *subset, s, rc.ctx);
      for (const auto& round : s.work.rounds)
        if (round.tag == kSchedRoundPaired) ++interleaved_rounds_seen;
      residuals_seen += s.residual_elements;
    }
  }
  // The sweep must actually exercise the interesting machinery, not just
  // degenerate plain rounds.
  EXPECT_GT(interleaved_rounds_seen, 20);
  EXPECT_GT(residuals_seen, 0);
}

TEST(ScheduleProperty, PlainModeSatisfiesInvariantsToo) {
  SplitMix64 rng(0xb10cULL);
  for (int i = 0; i < 8; ++i) {
    RandomCase rc = make_random_case(rng, i);
    rc.opts.interleave_pairs = false;
    const ElementSchedule s = build_element_schedule(
        rc.mesh, rc.subset_a, rc.color_of, rc.opts);
    check_all_invariants(rc.mesh, rc.color_of, rc.subset_a, s,
                         rc.ctx + " [plain]");
    for (const auto& round : s.work.rounds)
      EXPECT_EQ(round.tag, kSchedRoundPlain) << rc.ctx;
  }
}

TEST(ScheduleProperty, GlobeShellSlicesSatisfyAllInvariants) {
  MaterialSample s;
  s.rho = 3000.0;
  s.vp = 8000.0;
  s.vs = 4500.0;
  s.q_mu = 300.0;
  HomogeneousModel model(s, kEarthRadiusM);
  GlobeMeshSpec spec;
  spec.nex_xi = 4;
  spec.r_min = 0.8 * kEarthRadiusM;
  spec.model = &model;
  GllBasis basis(4);
  for (int nchunks : {1, 6}) {
    spec.nchunks = nchunks;
    GlobeSlice globe = build_globe_serial(spec, basis);
    std::vector<int> all(static_cast<std::size_t>(globe.mesh.nspec));
    std::iota(all.begin(), all.end(), 0);
    const auto color_of =
        greedy_element_coloring(element_adjacency(globe.mesh), all);
    ScheduleOptions opts;
    opts.num_slots = 4;
    const ElementSchedule sched =
        build_element_schedule(globe.mesh, all, color_of, opts);
    check_all_invariants(globe.mesh, color_of, all, sched,
                         "globe nchunks=" + std::to_string(nchunks));
  }
}

// ---- the harness must FAIL on an injected schedule bug ----

TEST(ScheduleProperty, CheckerFlagsInjectedStraddlerBug) {
  // unsafe_skip_straddler_demotion deliberately keeps footprint-straddling
  // upper-color elements inside the pair round (invariant 2 violation).
  // Across the sweep, every build whose safe twin demotes at least one
  // straddler at >= 2 slots must be flagged by check_element_schedule.
  SplitMix64 rng(0xdeadULL);
  int buggy_builds = 0, flagged = 0;
  for (int i = 0; i < 24; ++i) {
    RandomCase rc = make_random_case(rng, i);
    if (rc.opts.num_slots < 2) rc.opts.num_slots = 2;
    const ElementSchedule safe = build_element_schedule(
        rc.mesh, rc.subset_a, rc.color_of, rc.opts);
    if (safe.residual_elements == 0) continue;  // bug has nothing to bite
    ScheduleOptions bad = rc.opts;
    bad.unsafe_skip_straddler_demotion = true;
    const ElementSchedule buggy =
        build_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad);
    ++buggy_builds;
    const std::string err =
        check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, buggy);
    if (!err.empty()) {
      ++flagged;
      EXPECT_NE(err.find("share global point"), std::string::npos)
          << rc.ctx << ": unexpected violation kind: " << err;
    }
  }
  ASSERT_GT(buggy_builds, 0) << "sweep produced no straddlers to inject";
  EXPECT_EQ(flagged, buggy_builds)
      << "checker missed an injected invariant-2 violation";
}

TEST(ScheduleProperty, CheckerFlagsMutatedSchedules) {
  SplitMix64 rng(0xfaceULL);
  RandomCase rc = make_random_case(rng, 0);
  // Make sure the case is non-trivial.
  while (rc.subset_a.size() < 8) rc = make_random_case(rng, 1);
  const ElementSchedule good = build_element_schedule(
      rc.mesh, rc.subset_a, rc.color_of, rc.opts);
  ASSERT_EQ(check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, good),
            std::string());

  // Duplicate an element (drops another): invariant 1.
  {
    ElementSchedule bad = good;
    bad.items[0] = bad.items[1];
    EXPECT_NE(check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad),
              std::string());
  }
  // Truncate the last unit: an item is no longer covered by any unit.
  {
    ElementSchedule bad = good;
    for (auto rit = bad.work.rounds.rbegin(); rit != bad.work.rounds.rend();
         ++rit) {
      for (auto uit = rit->units.rbegin(); uit != rit->units.rend(); ++uit) {
        if (uit->size() > 0) {
          --uit->end;
          goto truncated;
        }
      }
    }
  truncated:
    EXPECT_NE(check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad),
              std::string());
  }
  // Swap a later-color element before an earlier-color neighbour sharing a
  // point: invariant 3. Find two adjacent-in-items elements of different
  // colors that share a point and swap them.
  {
    ElementSchedule bad = good;
    const int n3 = rc.mesh.ngll3();
    bool swapped = false;
    for (std::size_t i = 0; i + 1 < bad.items.size() && !swapped; ++i) {
      const int a = bad.items[i], b = bad.items[i + 1];
      if (rc.color_of[static_cast<std::size_t>(a)] >=
          rc.color_of[static_cast<std::size_t>(b)])
        continue;
      const int* ia = rc.mesh.ibool.data() + rc.mesh.local_offset(a);
      const int* ib = rc.mesh.ibool.data() + rc.mesh.local_offset(b);
      for (int p = 0; p < n3 && !swapped; ++p)
        for (int q = 0; q < n3; ++q)
          if (ia[p] == ib[q]) {
            std::swap(bad.items[i], bad.items[i + 1]);
            swapped = true;
            break;
          }
    }
    if (swapped) {
      EXPECT_NE(
          check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad),
          std::string());
    }
  }
}

// Bit-identity witness at the schedule level: two different slot counts
// (and the plain schedule) visit every global point in the same ascending
// color order, so the per-point float summation is literally the same
// sequence. Verified by comparing the per-point color sequences.
TEST(ScheduleProperty, PerPointColorSequenceIndependentOfSlots) {
  SplitMix64 rng(0x0b15ULL);
  RandomCase rc = make_random_case(rng, 0);
  auto point_sequence = [&](const ElementSchedule& s) {
    std::vector<std::vector<int>> seq(
        static_cast<std::size_t>(rc.mesh.nglob));
    const int n3 = rc.mesh.ngll3();
    for (const auto& round : s.work.rounds)
      for (const auto& unit : round.units)
        for (std::size_t i = unit.begin; i < unit.end; ++i) {
          const int e = s.items[i];
          const int* ib =
              rc.mesh.ibool.data() + rc.mesh.local_offset(e);
          for (int p = 0; p < n3; ++p)
            seq[static_cast<std::size_t>(ib[p])].push_back(
                rc.color_of[static_cast<std::size_t>(e)]);
        }
    return seq;
  };
  ScheduleOptions o1 = rc.opts, o4 = rc.opts, oplain = rc.opts;
  o1.num_slots = 1;
  o4.num_slots = 4;
  oplain.interleave_pairs = false;
  const auto s1 = point_sequence(
      build_element_schedule(rc.mesh, rc.subset_a, rc.color_of, o1));
  const auto s4 = point_sequence(
      build_element_schedule(rc.mesh, rc.subset_a, rc.color_of, o4));
  const auto sp = point_sequence(
      build_element_schedule(rc.mesh, rc.subset_a, rc.color_of, oplain));
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(s1, sp);
}

// ---- batched schedules (ISSUE 6) ----

// Independent batch-invariant checks (again deliberately NOT reusing
// check_element_schedule): cuts tile the item list without crossing unit
// boundaries; every batch holds at most batch_lanes same-color elements
// with pairwise-disjoint GLL footprints (invariant B).
void expect_batches_sound(const HexMesh& mesh,
                          const std::vector<int>& color_of,
                          const ElementSchedule& s, const std::string& ctx) {
  ASSERT_GT(s.batch_lanes, 1) << ctx;
  const auto& cut = s.batch_cut;
  ASSERT_FALSE(cut.empty()) << ctx;
  EXPECT_EQ(cut.front(), 0u) << ctx;
  EXPECT_EQ(cut.back(), s.items.size()) << ctx;

  std::vector<std::pair<std::size_t, std::size_t>> units;
  for (const auto& round : s.work.rounds)
    for (const auto& u : round.units)
      if (u.begin < u.end) units.emplace_back(u.begin, u.end);
  std::sort(units.begin(), units.end());

  const int n3 = mesh.ngll3();
  std::vector<long> stamp(static_cast<std::size_t>(mesh.nglob), -1);
  std::vector<int> stamp_elem(static_cast<std::size_t>(mesh.nglob), -1);
  for (std::size_t b = 0; b + 1 < cut.size(); ++b) {
    const std::size_t b0 = cut[b], b1 = cut[b + 1];
    ASSERT_LT(b0, b1) << ctx << ": batch " << b;
    EXPECT_LE(b1 - b0, static_cast<std::size_t>(s.batch_lanes))
        << ctx << ": batch " << b;
    bool inside = false;
    for (const auto& u : units)
      if (b0 >= u.first && b1 <= u.second) {
        inside = true;
        break;
      }
    EXPECT_TRUE(inside)
        << ctx << ": batch " << b << " straddles a unit boundary";
    for (std::size_t i = b0; i < b1; ++i) {
      const int e = s.items[i];
      EXPECT_EQ(color_of[static_cast<std::size_t>(e)],
                color_of[static_cast<std::size_t>(s.items[b0])])
          << ctx << ": batch " << b << " mixes colors";
      const int* ib = mesh.ibool.data() + mesh.local_offset(e);
      for (int p = 0; p < n3; ++p) {
        const auto g = static_cast<std::size_t>(ib[p]);
        ASSERT_TRUE(stamp[g] != static_cast<long>(b) || stamp_elem[g] == e)
            << ctx << ": batch " << b << " lanes share point " << g;
        stamp[g] = static_cast<long>(b);
        stamp_elem[g] = e;
      }
    }
  }
}

TEST(ScheduleProperty, BatchedSchedulesSatisfyAllInvariantsPlusB) {
  // Same corpus seed as the main sweep; every lane width the batched
  // kernel dispatches (scalar/SSE/NEON = 4, AVX2 = 8, AVX-512 = 16).
  SplitMix64 rng(0x5eed5eedULL);
  int multi_lane_batches = 0;
  for (int i = 0; i < 24; ++i) {
    RandomCase rc = make_random_case(rng, i);
    for (int lanes : {4, 8, 16}) {
      ScheduleOptions opts = rc.opts;
      opts.batch_lanes = lanes;
      opts.interleave_pairs = (i % 2 == 0);  // both schedule modes
      for (const std::vector<int>* subset : {&rc.subset_a, &rc.subset_b}) {
        const ElementSchedule s =
            build_element_schedule(rc.mesh, *subset, rc.color_of, opts);
        const std::string ctx =
            rc.ctx + " [lanes " + std::to_string(lanes) +
            (opts.interleave_pairs ? " interleaved]" : " plain]");
        check_all_invariants(rc.mesh, rc.color_of, *subset, s, ctx);
        expect_batches_sound(rc.mesh, rc.color_of, s, ctx);
        for (std::size_t b = 0; b + 1 < s.batch_cut.size(); ++b)
          if (s.batch_cut[b + 1] - s.batch_cut[b] > 1) ++multi_lane_batches;
      }
    }
  }
  // The sweep must produce real multi-element batches, not just width-1
  // degenerate cuts.
  EXPECT_GT(multi_lane_batches, 100);
}

TEST(ScheduleProperty, CheckerFlagsBatchAcrossColors) {
  // unsafe_batch_across_colors lets a batch run over a color boundary
  // inside a unit — violating invariant B. Every build where that injected
  // bug actually bites must be rejected by check_element_schedule.
  SplitMix64 rng(0xbadc0de5ULL);
  int injected = 0, flagged = 0, footprint_msgs = 0;
  for (int i = 0; i < 24; ++i) {
    RandomCase rc = make_random_case(rng, i);
    ScheduleOptions bad = rc.opts;
    bad.batch_lanes = 4;
    bad.unsafe_batch_across_colors = true;
    const ElementSchedule s =
        build_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad);
    bool crossed = false;
    for (std::size_t b = 0; b + 1 < s.batch_cut.size() && !crossed; ++b)
      for (std::size_t j = s.batch_cut[b] + 1; j < s.batch_cut[b + 1]; ++j)
        if (rc.color_of[static_cast<std::size_t>(s.items[j])] !=
            rc.color_of[static_cast<std::size_t>(
                s.items[s.batch_cut[b]])]) {
          crossed = true;
          break;
        }
    if (!crossed) continue;
    ++injected;
    const std::string err =
        check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, s);
    if (!err.empty()) ++flagged;
    if (err.find("share global point") != std::string::npos)
      ++footprint_msgs;
  }
  ASSERT_GT(injected, 0) << "sweep never produced a cross-color batch";
  EXPECT_EQ(flagged, injected)
      << "checker missed an injected invariant-B violation";
  // At least some rejections must be for intersecting lane footprints
  // (the checker tests footprints before color uniformity).
  EXPECT_GT(footprint_msgs, 0);
}

TEST(ScheduleProperty, CheckerRejectsStraddlingFootprintBatch) {
  // Hand-inject the precise failure the SoA scatter cares about: merge two
  // adjacent batches whose boundary elements share a GLL point into one
  // batch. The checker must reject it with the footprint message (it
  // checks footprints FIRST).
  SplitMix64 rng(0x0ddba11ULL);
  const auto npos = std::string::npos;
  bool exercised = false;
  for (int i = 0; i < 24 && !exercised; ++i) {
    RandomCase rc = make_random_case(rng, i);
    rc.opts.batch_lanes = 4;
    const ElementSchedule s =
        build_element_schedule(rc.mesh, rc.subset_a, rc.color_of, rc.opts);
    ASSERT_EQ(check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, s),
              std::string())
        << rc.ctx;
    const int n3 = rc.mesh.ngll3();
    auto share_point = [&](int a, int b) {
      const int* ia = rc.mesh.ibool.data() + rc.mesh.local_offset(a);
      const int* ib = rc.mesh.ibool.data() + rc.mesh.local_offset(b);
      for (int p = 0; p < n3; ++p)
        for (int q = 0; q < n3; ++q)
          if (ia[p] == ib[q]) return true;
      return false;
    };
    std::vector<std::pair<std::size_t, std::size_t>> units;
    for (const auto& round : s.work.rounds)
      for (const auto& u : round.units)
        if (u.begin < u.end) units.emplace_back(u.begin, u.end);
    auto one_unit = [&](std::size_t lo, std::size_t hi) {
      for (const auto& u : units)
        if (lo >= u.first && hi <= u.second) return true;
      return false;
    };
    for (std::size_t c = 1; c + 1 < s.batch_cut.size() && !exercised; ++c) {
      const std::size_t lo = s.batch_cut[c - 1];
      const std::size_t mid = s.batch_cut[c];
      const std::size_t hi = s.batch_cut[c + 1];
      if (hi - lo > static_cast<std::size_t>(s.batch_lanes)) continue;
      if (!one_unit(lo, hi)) continue;
      if (!share_point(s.items[mid - 1], s.items[mid])) continue;
      ElementSchedule bad = s;
      bad.batch_cut.erase(bad.batch_cut.begin() +
                          static_cast<std::ptrdiff_t>(c));
      const std::string err =
          check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad);
      ASSERT_FALSE(err.empty()) << rc.ctx;
      EXPECT_NE(err.find("share global point"), npos)
          << rc.ctx << ": unexpected violation kind: " << err;
      exercised = true;
    }
  }
  ASSERT_TRUE(exercised)
      << "sweep never found two point-sharing adjacent batches to merge";
}

TEST(ScheduleProperty, CheckerFlagsMutatedBatchCuts) {
  SplitMix64 rng(0xca7ULL);
  RandomCase rc = make_random_case(rng, 0);
  while (rc.subset_a.size() < 8) rc = make_random_case(rng, 1);
  rc.opts.batch_lanes = 4;
  const ElementSchedule good =
      build_element_schedule(rc.mesh, rc.subset_a, rc.color_of, rc.opts);
  ASSERT_EQ(check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, good),
            std::string());
  ASSERT_GE(good.batch_cut.size(), 3u);
  // Cuts that stop short of the item list do not tile it.
  {
    ElementSchedule bad = good;
    bad.batch_cut.pop_back();
    EXPECT_NE(check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad)
                  .find("tile"),
              std::string::npos);
  }
  // A batch wider than batch_lanes.
  {
    ElementSchedule bad = good;
    bad.batch_lanes = 2;  // cuts built for 4 lanes now overflow
    bool has_wide = false;
    for (std::size_t b = 0; b + 1 < bad.batch_cut.size(); ++b)
      if (bad.batch_cut[b + 1] - bad.batch_cut[b] > 2) has_wide = true;
    if (has_wide) {
      EXPECT_NE(check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad)
                    .find("more than batch_lanes"),
                std::string::npos);
    }
  }
  // Non-ascending cuts.
  {
    ElementSchedule bad = good;
    bad.batch_cut[1] = bad.batch_cut[2];
    EXPECT_NE(check_element_schedule(rc.mesh, rc.subset_a, rc.color_of, bad),
              std::string());
  }
}

// ---- clustered local time stepping (ISSUE 7) ----

// Everything the cluster invariants are phrased in, recomputed straight
// from the mesh and the element levels — deliberately NOT reusing the
// production helpers (cluster_point_levels etc.), which are themselves
// under test.
struct IndependentClusterView {
  std::vector<std::vector<int>> touching;  ///< per point, unique elements
  std::vector<int> point_level;            ///< min toucher level
  std::vector<int> rate_of;                ///< min point level over points
  std::vector<int> point_min_rate;         ///< min toucher rate
};

IndependentClusterView recompute_cluster_view(
    const HexMesh& mesh, const std::vector<int>& level_of) {
  IndependentClusterView v;
  const auto ng = static_cast<std::size_t>(mesh.nglob);
  const int n3 = mesh.ngll3();
  v.touching.resize(ng);
  for (int e = 0; e < mesh.nspec; ++e) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    for (int p = 0; p < n3; ++p) {
      auto& lst = v.touching[static_cast<std::size_t>(ib[p])];
      if (lst.empty() || lst.back() != e) lst.push_back(e);
    }
  }
  v.point_level.assign(ng, 0);
  for (std::size_t g = 0; g < ng; ++g) {
    int lv = std::numeric_limits<int>::max();
    for (int e : v.touching[g])
      lv = std::min(lv, level_of[static_cast<std::size_t>(e)]);
    v.point_level[g] = v.touching[g].empty() ? 0 : lv;
  }
  v.rate_of.assign(static_cast<std::size_t>(mesh.nspec), 0);
  for (int e = 0; e < mesh.nspec; ++e) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    int r = std::numeric_limits<int>::max();
    for (int p = 0; p < n3; ++p)
      r = std::min(r, v.point_level[static_cast<std::size_t>(ib[p])]);
    v.rate_of[static_cast<std::size_t>(e)] = r;
  }
  v.point_min_rate.assign(ng, std::numeric_limits<int>::max());
  for (std::size_t g = 0; g < ng; ++g)
    for (int e : v.touching[g])
      v.point_min_rate[g] = std::min(
          v.point_min_rate[g], v.rate_of[static_cast<std::size_t>(e)]);
  return v;
}

/// Rate-2 smoothing (cluster invariant C-C): no element's level exceeds
/// any of its points' levels by more than one.
void expect_cluster_levels_smoothed(const HexMesh& mesh,
                                    const std::vector<int>& level_of,
                                    const IndependentClusterView& v,
                                    const std::string& ctx) {
  const int n3 = mesh.ngll3();
  for (int e = 0; e < mesh.nspec; ++e) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    for (int p = 0; p < n3; ++p)
      ASSERT_LE(level_of[static_cast<std::size_t>(e)],
                v.point_level[static_cast<std::size_t>(ib[p])] + 1)
          << ctx << ": element " << e << " point " << ib[p];
  }
}

/// Cluster invariant C-A, independently: buckets tile the input exactly
/// once and each bucket holds only elements of its own marching rate.
void expect_cluster_buckets_sound(const HexMesh& mesh,
                                  const std::vector<int>& elements,
                                  const IndependentClusterView& v,
                                  const ClusterSchedule& cs,
                                  const std::string& ctx) {
  ASSERT_EQ(cs.rate_elements.size(), cs.rates.size()) << ctx;
  ASSERT_EQ(cs.rate_sched.size(), cs.rates.size()) << ctx;
  std::vector<int> count(static_cast<std::size_t>(mesh.nspec), 0);
  for (std::size_t i = 0; i < cs.rates.size(); ++i) {
    if (i > 0) {
      ASSERT_LT(cs.rates[i - 1], cs.rates[i]) << ctx;
    }
    for (int e : cs.rate_elements[i]) {
      ASSERT_GE(e, 0) << ctx;
      ASSERT_LT(e, mesh.nspec) << ctx;
      ++count[static_cast<std::size_t>(e)];
      EXPECT_EQ(v.rate_of[static_cast<std::size_t>(e)], cs.rates[i])
          << ctx << ": element " << e << " in the wrong rate bucket";
    }
  }
  std::vector<char> in_input(static_cast<std::size_t>(mesh.nspec), 0);
  for (int e : elements) in_input[static_cast<std::size_t>(e)] = 1;
  for (int e = 0; e < mesh.nspec; ++e)
    EXPECT_EQ(count[static_cast<std::size_t>(e)],
              in_input[static_cast<std::size_t>(e)] ? 1 : 0)
        << ctx << ": element " << e;
}

/// The interpolation set must be exactly the formula set: points of level
/// L > 0 with some toucher marching at a rate below L.
void expect_interp_set_exact(const HexMesh& mesh,
                             const IndependentClusterView& v,
                             const InterfaceSet& iset,
                             const std::string& ctx) {
  std::vector<int> exp_points, exp_levels;
  for (int g = 0; g < mesh.nglob; ++g) {
    const auto gs = static_cast<std::size_t>(g);
    if (v.point_level[gs] > 0 && v.point_min_rate[gs] < v.point_level[gs]) {
      exp_points.push_back(g);
      exp_levels.push_back(v.point_level[gs]);
    }
  }
  EXPECT_EQ(iset.points, exp_points) << ctx;
  EXPECT_EQ(iset.level, exp_levels) << ctx;
}

/// Cluster invariant C (C-D), independently: simulate one full fast round
/// of 2^(num_levels-1) substeps. At every substep where a point is due,
/// it must collect exactly one contribution from EVERY touching element of
/// `elements` (the solver discards junk at not-due points each substep, so
/// the count is per-substep); and any contribution landing at a substep
/// where the point is not due is a mid-stride gather that must be covered
/// by the interpolation set.
void expect_exactly_once_per_cluster_round(const HexMesh& mesh,
                                           const std::vector<int>& elements,
                                           const IndependentClusterView& v,
                                           int num_levels,
                                           const InterfaceSet& iset,
                                           const std::string& ctx) {
  const auto ng = static_cast<std::size_t>(mesh.nglob);
  const int n3 = mesh.ngll3();
  std::vector<char> interp(ng, 0);
  for (int g : iset.points) interp[static_cast<std::size_t>(g)] = 1;

  std::vector<std::vector<int>> expected(ng);
  for (int e : elements) {
    const int* ib = mesh.ibool.data() + mesh.local_offset(e);
    for (int p = 0; p < n3; ++p)
      expected[static_cast<std::size_t>(ib[p])].push_back(e);
  }
  for (auto& lst : expected) std::sort(lst.begin(), lst.end());

  const int stride = 1 << (num_levels - 1);
  std::vector<std::vector<int>> got(ng);
  for (int n = 0; n < stride; ++n) {
    for (auto& lst : got) lst.clear();
    for (int e : elements) {
      if (((n + 1) % (1 << v.rate_of[static_cast<std::size_t>(e)])) != 0)
        continue;
      const int* ib = mesh.ibool.data() + mesh.local_offset(e);
      for (int p = 0; p < n3; ++p) {
        const auto g = static_cast<std::size_t>(ib[p]);
        if (((n + 1) % (1 << v.point_level[g])) != 0) {
          EXPECT_TRUE(interp[g])
              << ctx << ": point " << ib[p] << " gathered mid-stride at "
              << "substep " << n << " without interpolation";
        }
        got[g].push_back(e);
      }
    }
    for (std::size_t g = 0; g < ng; ++g) {
      if (expected[g].empty()) continue;
      if (((n + 1) % (1 << v.point_level[g])) != 0) continue;
      std::sort(got[g].begin(), got[g].end());
      ASSERT_EQ(got[g], expected[g])
          << ctx << ": point " << g << " due at substep " << n
          << " did not collect exactly one contribution per toucher";
    }
  }
}

struct RefinedCase {
  RandomCase rc;
  std::vector<double> element_dt;
  ClusterPartition part;
  int max_levels = 0;
};

// Refined-region generator: a box with a fast (finely-resolved-style)
// band at the bottom — per-element stable dt doubles with each z quarter
// for a ~4-8x total spread plus jitter, the profile where LTS actually
// produces >= 3 occupied clusters (satellite task 1).
RefinedCase make_refined_case(SplitMix64& rng, int index) {
  RefinedCase cc;
  CartesianBoxSpec spec;
  spec.nx = 2 + static_cast<int>(rng.next_below(3));
  spec.ny = 2 + static_cast<int>(rng.next_below(3));
  spec.nz = 4 + static_cast<int>(rng.next_below(3));
  spec.lx = spec.ly = 1000.0;
  spec.lz = 2000.0;
  const int ngll = 2 + static_cast<int>(rng.next_below(3));  // 2..4
  GllBasis basis(ngll);
  cc.rc.mesh = build_cartesian_box(spec, basis);
  HexMesh& mesh = cc.rc.mesh;

  std::vector<int> order(static_cast<std::size_t>(mesh.nspec));
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);
  cc.rc.color_of = greedy_element_coloring(element_adjacency(mesh), order);

  const double frac = rng.uniform(0.3, 1.0);
  for (int e : order)
    (rng.next_double() < frac ? cc.rc.subset_a : cc.rc.subset_b).push_back(e);

  cc.rc.opts.num_slots = 1 + static_cast<int>(rng.next_below(4));
  const int block_choices[] = {1, 4, 64};
  cc.rc.opts.block_size = block_choices[rng.next_below(3)];

  const double dt0 = 1.0e-3;
  cc.element_dt.resize(static_cast<std::size_t>(mesh.nspec));
  const int n3 = mesh.ngll3();
  for (int e = 0; e < mesh.nspec; ++e) {
    const std::size_t off = mesh.local_offset(e);
    double zc = 0.0;
    for (int p = 0; p < n3; ++p)
      zc += mesh.zstore[off + static_cast<std::size_t>(p)];
    zc /= n3;
    const int band =
        std::clamp(static_cast<int>(zc / spec.lz * 4.0), 0, 3);
    cc.element_dt[static_cast<std::size_t>(e)] =
        dt0 * static_cast<double>(1 << band) * rng.uniform(1.0, 1.4);
  }
  cc.max_levels = 3 + static_cast<int>(rng.next_below(2));  // 3..4
  cc.part = build_cluster_partition(
      mesh, cluster_levels_from_dt(cc.element_dt, dt0, cc.max_levels));

  cc.rc.ctx = "refined case " + std::to_string(index) + " (" +
              std::to_string(spec.nx) + "x" + std::to_string(spec.ny) +
              "x" + std::to_string(spec.nz) + " ngll " +
              std::to_string(ngll) + " slots " +
              std::to_string(cc.rc.opts.num_slots) + " max_levels " +
              std::to_string(cc.max_levels) + ")";
  return cc;
}

TEST(ClusterScheduleProperty, RefinedCasesSatisfyAllClusterInvariants) {
  SplitMix64 rng(0xc1a57e85ULL);
  int three_plus_clusters = 0;
  std::size_t interface_points_seen = 0;
  for (int i = 0; i < 24; ++i) {
    RefinedCase cc = make_refined_case(rng, i);
    const HexMesh& mesh = cc.rc.mesh;
    const IndependentClusterView v =
        recompute_cluster_view(mesh, cc.part.level_of);

    // Partition soundness, independently recomputed.
    expect_cluster_levels_smoothed(mesh, cc.part.level_of, v, cc.rc.ctx);
    EXPECT_EQ(cc.part.point_level, v.point_level) << cc.rc.ctx;
    EXPECT_EQ(cc.part.rate_of, v.rate_of) << cc.rc.ctx;

    const InterfaceSet iset = cluster_interface_points(
        mesh, cc.part.point_level,
        cluster_point_min_rate(mesh, cc.part.rate_of));
    expect_interp_set_exact(mesh, v, iset, cc.rc.ctx);
    interface_points_seen += iset.points.size();

    int rates_full = 0;
    for (const std::vector<int>* subset :
         {&cc.rc.subset_a, &cc.rc.subset_b}) {
      const ClusterSchedule cs = build_cluster_schedule(
          mesh, *subset, cc.rc.color_of, cc.part, cc.rc.opts);
      expect_cluster_buckets_sound(mesh, *subset, v, cs, cc.rc.ctx);
      // Invariants 1-3 re-proven on every rate bucket: a cluster round is
      // just another schedule level.
      for (std::size_t r = 0; r < cs.rates.size(); ++r)
        check_all_invariants(
            mesh, cc.rc.color_of, cs.rate_elements[r], cs.rate_sched[r],
            cc.rc.ctx + " [rate " + std::to_string(cs.rates[r]) + "]");
      EXPECT_EQ(check_cluster_schedule(mesh, *subset, cc.rc.color_of,
                                       cc.part, cs),
                std::string())
          << cc.rc.ctx;
      // Cluster invariant C, dynamically: exactly once per cluster round,
      // mid-stride gathers covered by interpolation.
      expect_exactly_once_per_cluster_round(mesh, *subset, v,
                                            cc.part.num_levels, iset,
                                            cc.rc.ctx);
      EXPECT_EQ(check_cluster_interfaces(mesh, *subset, cc.part, iset),
                std::string())
          << cc.rc.ctx;
      if (subset == &cc.rc.subset_a)
        rates_full = static_cast<int>(cs.rates.size());
    }
    if (rates_full >= 3) ++three_plus_clusters;
  }
  // The refined generator must really exercise multi-cluster machinery:
  // most draws produce >= 3 occupied clusters and a real interface set.
  EXPECT_GT(three_plus_clusters, 12);
  EXPECT_GT(interface_points_seen, 200u);
}

TEST(ClusterScheduleProperty, BatchedClusterSchedulesSatisfyInvariantB) {
  SplitMix64 rng(0xc1a5b47cULL);
  int batched_buckets = 0;
  for (int i = 0; i < 8; ++i) {
    RefinedCase cc = make_refined_case(rng, i);
    ScheduleOptions opts = cc.rc.opts;
    opts.batch_lanes = 8;
    const ClusterSchedule cs = build_cluster_schedule(
        cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of, cc.part, opts);
    for (std::size_t r = 0; r < cs.rates.size(); ++r) {
      const std::string ctx =
          cc.rc.ctx + " [batched rate " + std::to_string(cs.rates[r]) + "]";
      check_all_invariants(cc.rc.mesh, cc.rc.color_of, cs.rate_elements[r],
                           cs.rate_sched[r], ctx);
      if (cs.rate_elements[r].empty()) continue;
      expect_batches_sound(cc.rc.mesh, cc.rc.color_of, cs.rate_sched[r],
                           ctx);
      ++batched_buckets;
    }
    EXPECT_EQ(check_cluster_schedule(cc.rc.mesh, cc.rc.subset_a,
                                     cc.rc.color_of, cc.part, cs),
              std::string())
        << cc.rc.ctx;
  }
  EXPECT_GT(batched_buckets, 10);
}

TEST(ClusterScheduleProperty, SingleClusterDegeneratesToElementSchedule) {
  SplitMix64 rng(0x0115c1a5ULL);
  RandomCase rc = make_random_case(rng, 0);
  while (rc.subset_a.size() < 8) rc = make_random_case(rng, 1);
  const ClusterPartition part = build_cluster_partition(
      rc.mesh, std::vector<int>(static_cast<std::size_t>(rc.mesh.nspec), 0));
  EXPECT_EQ(part.num_levels, 1);
  const InterfaceSet iset = cluster_interface_points(
      rc.mesh, part.point_level,
      cluster_point_min_rate(rc.mesh, part.rate_of));
  EXPECT_TRUE(iset.points.empty());

  const ClusterSchedule cs = build_cluster_schedule(
      rc.mesh, rc.subset_a, rc.color_of, part, rc.opts);
  ASSERT_EQ(cs.rates, std::vector<int>{0});
  const ElementSchedule ref =
      build_element_schedule(rc.mesh, rc.subset_a, rc.color_of, rc.opts);
  EXPECT_EQ(cs.rate_sched[0].items, ref.items);
  EXPECT_EQ(check_cluster_schedule(rc.mesh, rc.subset_a, rc.color_of, part,
                                   cs),
            std::string());
  EXPECT_EQ(check_cluster_interfaces(rc.mesh, rc.subset_a, part, iset),
            std::string());
}

// ---- the cluster harness must FAIL on the three injected bug classes ----

TEST(ClusterScheduleProperty, CheckerFlagsMutatedClusterAssignments) {
  // unsafe_rate_from_own_level buckets an element by its raw level even
  // when a faster neighbouring point demotes its marching rate: the
  // element misses due substeps of its fastest point. Every build where
  // the injection changes an assignment must be flagged.
  SplitMix64 rng(0x7ee7a1ULL);
  int injected = 0, flagged = 0;
  for (int i = 0; i < 16; ++i) {
    RefinedCase cc = make_refined_case(rng, i);
    bool bites = false;
    for (int e : cc.rc.subset_a)
      if (cc.part.level_of[static_cast<std::size_t>(e)] !=
          cc.part.rate_of[static_cast<std::size_t>(e)])
        bites = true;
    if (!bites) continue;
    ++injected;
    ClusterOptions bad;
    bad.unsafe_rate_from_own_level = true;
    const ClusterSchedule cs = build_cluster_schedule(
        cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of, cc.part, cc.rc.opts,
        bad);
    const std::string err = check_cluster_schedule(
        cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of, cc.part, cs);
    if (!err.empty()) {
      ++flagged;
      EXPECT_NE(err.find("mutated assignment"), std::string::npos)
          << cc.rc.ctx << ": unexpected violation kind: " << err;
    }
  }
  ASSERT_GT(injected, 0) << "sweep never demoted an element's rate";
  EXPECT_EQ(flagged, injected)
      << "checker missed an injected mutated cluster assignment";
}

TEST(ClusterScheduleProperty, CheckerFlagsCrossClusterMerge) {
  // unsafe_merge_slowest_rates splices the slowest bucket into the next
  // one, marching both at the faster rate — a cross-cluster footprint
  // merge. Every multi-rate build must be flagged.
  SplitMix64 rng(0x3e43eULL);
  int injected = 0, flagged = 0;
  for (int i = 0; i < 16; ++i) {
    RefinedCase cc = make_refined_case(rng, i);
    const ClusterSchedule good = build_cluster_schedule(
        cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of, cc.part, cc.rc.opts);
    if (good.rates.size() < 2) continue;
    ++injected;
    ClusterOptions bad;
    bad.unsafe_merge_slowest_rates = true;
    const ClusterSchedule cs = build_cluster_schedule(
        cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of, cc.part, cc.rc.opts,
        bad);
    EXPECT_EQ(cs.rates.size(), good.rates.size() - 1) << cc.rc.ctx;
    const std::string err = check_cluster_schedule(
        cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of, cc.part, cs);
    if (!err.empty()) {
      ++flagged;
      EXPECT_NE(err.find("cross-cluster merge"), std::string::npos)
          << cc.rc.ctx << ": unexpected violation kind: " << err;
    }
  }
  ASSERT_GT(injected, 0) << "sweep never produced two occupied clusters";
  EXPECT_EQ(flagged, injected)
      << "checker missed an injected cross-cluster merge";
}

TEST(ClusterScheduleProperty, CheckerFlagsSkippedInterfaceInterpolation) {
  // unsafe_drop_interp_points empties the interpolation set: mid-stride
  // gathers would read stale displacement. Every build with a non-empty
  // safe interpolation set must be flagged by check_cluster_interfaces.
  SplitMix64 rng(0xd401b7e4ULL);
  int injected = 0, flagged = 0;
  for (int i = 0; i < 16; ++i) {
    RefinedCase cc = make_refined_case(rng, i);
    const std::vector<int> min_rate =
        cluster_point_min_rate(cc.rc.mesh, cc.part.rate_of);
    const InterfaceSet good = cluster_interface_points(
        cc.rc.mesh, cc.part.point_level, min_rate);
    if (good.points.empty()) continue;
    ++injected;
    ClusterOptions bad;
    bad.unsafe_drop_interp_points = true;
    const InterfaceSet dropped = cluster_interface_points(
        cc.rc.mesh, cc.part.point_level, min_rate, bad);
    ASSERT_TRUE(dropped.points.empty()) << cc.rc.ctx;
    std::vector<int> all(static_cast<std::size_t>(cc.rc.mesh.nspec));
    std::iota(all.begin(), all.end(), 0);
    const std::string err =
        check_cluster_interfaces(cc.rc.mesh, all, cc.part, dropped);
    if (!err.empty()) {
      ++flagged;
      EXPECT_NE(err.find("skipped interface interpolation"),
                std::string::npos)
          << cc.rc.ctx << ": unexpected violation kind: " << err;
    }
  }
  ASSERT_GT(injected, 0) << "sweep never produced interface points";
  EXPECT_EQ(flagged, injected)
      << "checker missed a skipped interface interpolation";
}

TEST(ClusterScheduleProperty, CheckerFlagsMutatedClusterStructures) {
  SplitMix64 rng(0xfa57c1a5ULL);
  RefinedCase cc = make_refined_case(rng, 0);
  while (cc.rc.subset_a.size() < 8 ||
         build_cluster_schedule(cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of,
                                cc.part, cc.rc.opts)
                 .rates.size() < 2)
    cc = make_refined_case(rng, 1);
  const ClusterSchedule good = build_cluster_schedule(
      cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of, cc.part, cc.rc.opts);
  ASSERT_EQ(check_cluster_schedule(cc.rc.mesh, cc.rc.subset_a,
                                   cc.rc.color_of, cc.part, good),
            std::string());

  // An element moved to a foreign bucket (duplicate + purity violation).
  {
    ClusterSchedule bad = good;
    bad.rate_elements[0].push_back(bad.rate_elements[1].front());
    EXPECT_NE(check_cluster_schedule(cc.rc.mesh, cc.rc.subset_a,
                                     cc.rc.color_of, cc.part, bad),
              std::string());
  }
  // A dropped element: the buckets no longer tile the input list.
  {
    ClusterSchedule bad = good;
    bad.rate_elements[0].pop_back();
    bad.rate_sched[0] = build_element_schedule(
        cc.rc.mesh, bad.rate_elements[0], cc.rc.color_of, cc.rc.opts);
    EXPECT_NE(check_cluster_schedule(cc.rc.mesh, cc.rc.subset_a,
                                     cc.rc.color_of, cc.part, bad),
              std::string());
  }
  // A corrupted per-rate schedule (invariant 1 inside a bucket).
  {
    ClusterSchedule bad = good;
    ASSERT_GE(bad.rate_sched[0].items.size(), 2u);
    bad.rate_sched[0].items[0] = bad.rate_sched[0].items[1];
    const std::string err = check_cluster_schedule(
        cc.rc.mesh, cc.rc.subset_a, cc.rc.color_of, cc.part, bad);
    EXPECT_NE(err.find("schedule:"), std::string::npos) << err;
  }
  // A mutated partition rate: the rate must equal the min point level.
  {
    ClusterPartition bad_part = cc.part;
    const auto e = static_cast<std::size_t>(cc.rc.subset_a.front());
    bad_part.rate_of[e] += 1;
    EXPECT_NE(check_cluster_schedule(cc.rc.mesh, cc.rc.subset_a,
                                     cc.rc.color_of, bad_part, good),
              std::string());
  }
}

}  // namespace
}  // namespace sfg
